module github.com/tieredmem/hemem

go 1.22
