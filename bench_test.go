// Benchmarks: one per table and figure of the paper's evaluation, each
// exercising a representative core of the corresponding experiment at
// reduced length (the full sweeps live in cmd/hemem-bench; run it with
// -full for paper-scale lengths). The Ablation benchmarks cover the design
// choices DESIGN.md calls out.
package hemem_test

import (
	"io"
	"testing"

	hemem "github.com/tieredmem/hemem"
)

// run builds a machine+GUPS pair and returns the score after warm+measure.
func runGUPS(mgr hemem.Manager, cfg hemem.GUPSConfig, warm, measure int64) float64 {
	m := hemem.NewMachine(hemem.DefaultMachineConfig(), mgr)
	g := hemem.NewGUPS(m, cfg)
	m.Warm()
	m.Run(warm)
	g.ResetScore()
	m.Run(measure)
	return g.Score()
}

func BenchmarkTable1_DeviceModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hemem.RunExperiment("tab1", io.Discard, hemem.ExperimentOpts{})
	}
}

func BenchmarkFig1_ThreadScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hemem.RunExperiment("fig1", io.Discard, hemem.ExperimentOpts{})
	}
}

func BenchmarkFig2_AccessSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hemem.RunExperiment("fig2", io.Discard, hemem.ExperimentOpts{})
	}
}

func BenchmarkFig3_PageTableScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hemem.RunExperiment("fig3", io.Discard, hemem.ExperimentOpts{})
	}
}

func BenchmarkFig5_UniformGUPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(hemem.DefaultHeMemConfig()),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 128 * hemem.GB, Seed: 17},
			2*hemem.Second, 2*hemem.Second)
	}
}

func BenchmarkFig6_HotSetGUPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(hemem.DefaultHeMemConfig()),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			20*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkFig7_ThreadScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(hemem.DefaultHeMemConfig()),
			hemem.GUPSConfig{Threads: 24, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			10*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkTable2_WriteSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(hemem.DefaultHeMemConfig()),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB,
				HotSet: 256 * hemem.GB, WriteOnlyHot: 128 * hemem.GB, Seed: 17},
			20*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkFig8_Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMemPTSync(),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			10*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkFig9_DynamicHotSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), hemem.NewHeMem(hemem.DefaultHeMemConfig()))
		g := hemem.NewGUPS(m, hemem.GUPSConfig{
			Threads: 16, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17,
		})
		m.Warm()
		m.Run(10 * hemem.Second)
		g.ShiftHotSet(4*hemem.GB, 99)
		m.Run(10 * hemem.Second)
	}
}

func BenchmarkFig10_SamplePeriod(b *testing.B) {
	cfg := hemem.DefaultHeMemConfig()
	cfg.SamplePeriod = 1000
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(cfg),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			10*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkFig11_HotThreshold(b *testing.B) {
	cfg := hemem.DefaultHeMemConfig()
	cfg.HotReadThreshold = 16
	cfg.HotWriteThreshold = 8
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(cfg),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			10*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkFig12_CoolingThreshold(b *testing.B) {
	cfg := hemem.DefaultHeMemConfig()
	cfg.CoolThreshold = 30
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(cfg),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			10*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkFig13_TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), hemem.NewHeMem(hemem.DefaultHeMemConfig()))
		d := hemem.NewTPCC(m, hemem.TPCCConfig{Warehouses: 700, Seed: 5})
		m.Warm()
		m.Run(20 * hemem.Second)
		_ = d.TPS()
	}
}

func BenchmarkTable3_FlexKVS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), hemem.NewHeMem(hemem.DefaultHeMemConfig()))
		d := hemem.NewKVS(m, hemem.KVSConfig{
			WorkingSet: 700 * hemem.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: 17,
		})
		m.Warm()
		m.Run(20 * hemem.Second)
		_ = d.Mops()
	}
}

func BenchmarkTable4_Priority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := hemem.NewHeMem(hemem.DefaultHeMemConfig())
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), h)
		prio := hemem.NewKVS(m, hemem.KVSConfig{Name: "prio", WorkingSet: 16 * hemem.GB, ServerThreads: 4, Seed: 3})
		hemem.NewKVS(m, hemem.KVSConfig{Name: "reg", WorkingSet: 500 * hemem.GB, Seed: 4})
		h.PinRegion(prio.LogRegion())
		h.PinRegion(prio.TableRegion())
		m.Warm()
		m.Run(10 * hemem.Second)
	}
}

func benchBC(b *testing.B, scale int, mgr func() hemem.Manager) {
	for i := 0; i < b.N; i++ {
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), mgr())
		d := hemem.NewBC(m, hemem.BCConfig{
			Scale: scale, Iterations: 2, EdgeVisitScale: 0.02, Seed: 2,
		})
		m.Warm()
		m.RunUntilDone(1000 * hemem.Second)
		_ = d.IterationTimes()
	}
}

func BenchmarkFig14_BC28(b *testing.B) {
	benchBC(b, 28, func() hemem.Manager { return hemem.NewHeMem(hemem.DefaultHeMemConfig()) })
}

func BenchmarkFig15_BC29(b *testing.B) {
	benchBC(b, 29, func() hemem.Manager { return hemem.NewHeMem(hemem.DefaultHeMemConfig()) })
}

func BenchmarkFig16_BC29Wear(b *testing.B) {
	benchBC(b, 29, func() hemem.Manager { return hemem.NewMemoryMode() })
}

// Ablations (DESIGN.md §4): each toggles one design choice.

func BenchmarkAblationWritePriority(b *testing.B) {
	cfg := hemem.DefaultHeMemConfig()
	cfg.NoWritePriority = true
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(cfg),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB,
				HotSet: 256 * hemem.GB, WriteOnlyHot: 128 * hemem.GB, Seed: 17},
			20*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkAblationCoolingDisabled(b *testing.B) {
	cfg := hemem.DefaultHeMemConfig()
	cfg.NoCooling = true
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(cfg),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			20*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkAblationCopyThreads(b *testing.B) {
	cfg := hemem.DefaultHeMemConfig()
	cfg.NoDMA = true
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(cfg),
			hemem.GUPSConfig{Threads: 24, WorkingSet: 512 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17},
			10*hemem.Second, 5*hemem.Second)
	}
}

func BenchmarkAblationManageAllAllocations(b *testing.B) {
	cfg := hemem.DefaultHeMemConfig()
	cfg.LargeAllocThreshold = 0 // manage even small allocations
	for i := 0; i < b.N; i++ {
		runGUPS(hemem.NewHeMem(cfg),
			hemem.GUPSConfig{Threads: 16, WorkingSet: 64 * hemem.GB, Seed: 17},
			5*hemem.Second, 5*hemem.Second)
	}
}

// BenchmarkKVStore measures the real key-value store (not the simulator).
func BenchmarkKVStore(b *testing.B) {
	s := hemem.NewKVStore(hemem.KVStoreConfig{})
	key := []byte("key-000000")
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[9] = byte('0' + i%10)
		s.Set(key, val)
		s.Get(key)
	}
}

// BenchmarkSiloTPCC measures the real database engine running the TPC-C
// mix (not the simulator).
func BenchmarkSiloTPCC(b *testing.B) {
	env := hemem.NewTPCCEnv(hemem.NewDB(), 1)
	g := hemem.NewTPCCRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.RunMix(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrandesBC measures the real BC implementation.
func BenchmarkBrandesBC(b *testing.B) {
	g := hemem.Kronecker(14, 16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hemem.BetweennessCentrality(g, 1, uint64(i))
	}
}
