package hemem_test

// The simulator's contract is bit-exact reproducibility: an identically
// seeded configuration must produce identical results — scores to the
// last float bit, every engine counter, the telemetry CSV byte-for-byte,
// and the fault-injection counters. The hot-path optimizations (batched
// PEBS delivery, slab-allocated page tracking, the compacting migration
// queue) all preserve this, and this test is the tripwire for any future
// change that doesn't.

import (
	"math"
	"strings"
	"testing"

	hemem "github.com/tieredmem/hemem"
)

// outcome captures everything a run can legally differ in.
type outcome struct {
	score    uint64 // Float64bits of the workload figure of merit
	ops      uint64 // Float64bits of total operations
	stats    hemem.HeMemStats
	faults   int64
	migPages int64
	migBytes uint64
	dram     int64
	nvm      int64
	fc       hemem.FaultStats
	csv      string
}

func detRun(seed uint64, faults hemem.FaultConfig) outcome {
	cfg := hemem.DefaultHeMemConfig()
	if faults != (hemem.FaultConfig{}) {
		cfg.AdaptiveSampling = true
		cfg.SamplePeriod = 500
	}
	h := hemem.NewHeMem(cfg)
	mc := hemem.DefaultMachineConfig()
	mc.Seed = seed
	mc.Faults = faults
	m := hemem.NewMachine(mc, h)
	tel := m.EnableTelemetry(100 * hemem.Millisecond)
	g := hemem.NewGUPS(m, hemem.GUPSConfig{
		Threads: 16, WorkingSet: 256 * hemem.GB, HotSet: 16 * hemem.GB, Seed: 17,
	})
	m.Warm()
	m.Run(3 * hemem.Second)
	g.ResetScore()
	m.Run(2 * hemem.Second)
	var csv strings.Builder
	tel.WriteCSV(&csv)
	return outcome{
		score:    math.Float64bits(g.Score()),
		ops:      math.Float64bits(m.TotalOps("gups")),
		stats:    h.Stats(),
		faults:   m.Faults(),
		migPages: m.Migrator.Stats().Pages,
		migBytes: math.Float64bits(m.Migrator.Stats().Bytes),
		dram:     h.DRAMUsed(),
		nvm:      h.NVMUsed(),
		fc:       *m.FaultCounters(),
		csv:      csv.String(),
	}
}

func checkIdentical(t *testing.T, a, b outcome) {
	t.Helper()
	if a.score != b.score {
		t.Errorf("score differs: %x vs %x", a.score, b.score)
	}
	if a.ops != b.ops {
		t.Errorf("total ops differ: %x vs %x", a.ops, b.ops)
	}
	if a.stats != b.stats {
		t.Errorf("engine stats differ:\n%+v\nvs\n%+v", a.stats, b.stats)
	}
	if a.faults != b.faults {
		t.Errorf("fault counts differ: %d vs %d", a.faults, b.faults)
	}
	if a.migPages != b.migPages || a.migBytes != b.migBytes {
		t.Errorf("migration stats differ: %d/%x vs %d/%x", a.migPages, a.migBytes, b.migPages, b.migBytes)
	}
	if a.dram != b.dram || a.nvm != b.nvm {
		t.Errorf("accounting differs: %d/%d vs %d/%d", a.dram, a.nvm, b.dram, b.nvm)
	}
	if a.fc != b.fc {
		t.Errorf("fault counters differ:\n%+v\nvs\n%+v", a.fc, b.fc)
	}
	if a.csv != b.csv {
		t.Errorf("telemetry CSV differs (%d vs %d bytes)", len(a.csv), len(b.csv))
	}
}

func TestSeededRunsAreBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		a := detRun(seed, hemem.FaultConfig{})
		b := detRun(seed, hemem.FaultConfig{})
		checkIdentical(t, a, b)
	}
}

// Determinism must also hold with the fault injector's RNG, retry
// backoffs, and adaptive sampling in the loop.
func TestSeededFaultRunsAreBitIdentical(t *testing.T) {
	faults := hemem.FaultConfig{
		MigrationAbortProb:   0.05,
		NVMUncorrectableMTBF: 500 * hemem.Millisecond,
		PEBSStormMTBF:        1 * hemem.Second,
	}
	a := detRun(7, faults)
	b := detRun(7, faults)
	checkIdentical(t, a, b)
	if a.fc.MigrationAborts == 0 {
		t.Error("fault config injected no aborts; scenario lost its coverage")
	}
}

// Different seeds must actually diverge — a constant outcome would make
// the identity checks above vacuous.
func TestSeedsDiverge(t *testing.T) {
	a := detRun(1, hemem.FaultConfig{})
	b := detRun(2, hemem.FaultConfig{})
	if a.score == b.score && a.ops == b.ops {
		t.Error("seeds 1 and 2 produced identical results")
	}
}
