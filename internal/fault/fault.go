// Package fault is a deterministic, seed-driven fault-injection layer for
// the simulated testbed. Real tiered-memory systems do not live on the
// happy path: DMA channels die or degrade, NVM media develops
// uncorrectable errors and thermal-throttles under sustained writes, page
// migrations abort under destination pressure, and PEBS buffers overrun
// when sampling outpaces the reader thread. The injector provokes those
// regimes so the managers' recovery machinery (transactional migration
// with retry/backoff, software-copy fallback, page retirement with
// emergency promotion, adaptive sample periods) can be exercised and
// measured.
//
// All randomness is drawn from an internal/sim RNG derived from the
// machine seed, so faulty runs are exactly as reproducible as fault-free
// ones: the same seed and the same Config produce bit-identical histories.
// A zero Config disables injection entirely; every query then returns its
// neutral value without consulting the RNG, so a disabled injector is a
// strict no-op.
package fault

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Config selects the faults to inject and their rates. The zero value
// disables all injection. Event-style faults are parameterized by a mean
// time between events (MTBF, simulated nanoseconds; 0 disables that
// fault); episode-style faults additionally carry a duration and a
// severity factor.
type Config struct {
	// MigrationAbortProb is the probability that one page-copy attempt
	// fails its verification step (destination pressure, copy verification
	// mismatch) and rolls back. Aborted migrations retry with capped
	// exponential backoff and are abandoned after MigrationMaxRetries.
	MigrationAbortProb float64
	// MigrationMaxRetries is how many retries a migration gets after its
	// first aborted attempt before it is abandoned and the page stays in
	// place (default 5).
	MigrationMaxRetries int
	// RetryBackoff is the delay before the first retry; it doubles per
	// subsequent retry (default 100 µs).
	RetryBackoff int64
	// RetryBackoffMax caps the exponential backoff (default 10 ms).
	RetryBackoffMax int64

	// DMAChannelMTBF is the mean time between permanent DMA channel
	// failures. Each failure removes one I/OAT channel; when none remain
	// the migrator degrades to the paper's 4-thread software-copy
	// fallback.
	DMAChannelMTBF int64
	// DMADegradedMTBF starts episodes during which the surviving DMA
	// channels run at DMADegradedFactor of their bandwidth for
	// DMADegradedDuration (defaults: 50 ms, 0.5).
	DMADegradedMTBF     int64
	DMADegradedDuration int64
	DMADegradedFactor   float64

	// NVMUncorrectableMTBF is the mean time between uncorrectable media
	// errors striking a random NVM-resident page. The machine retires the
	// failing frame, remaps the page, and asks the manager for an
	// emergency promotion.
	NVMUncorrectableMTBF int64

	// NVMThermalMTBF starts thermal-throttle episodes during which the NVM
	// device runs at NVMThermalFactor of its bandwidth for
	// NVMThermalDuration (defaults: 100 ms, 0.4).
	NVMThermalMTBF     int64
	NVMThermalDuration int64
	NVMThermalFactor   float64

	// PEBSStormMTBF starts sampling storms during which PEBS sample inflow
	// is multiplied by PEBSStormFactor for PEBSStormDuration (defaults:
	// 50 ms, 8). Sustained storms overrun the sample buffer; an adaptive
	// manager responds by raising its sample period.
	PEBSStormMTBF     int64
	PEBSStormDuration int64
	PEBSStormFactor   float64

	// Chaos configures the chaos scheduler: compound episodes, whole-tier
	// offline/online events, and correctable-error storms (see
	// ChaosConfig). The zero value disables it.
	Chaos ChaosConfig
}

// Enabled reports whether any fault is configured.
func (c Config) Enabled() bool {
	return c.MigrationAbortProb > 0 ||
		c.DMAChannelMTBF > 0 ||
		c.DMADegradedMTBF > 0 ||
		c.NVMUncorrectableMTBF > 0 ||
		c.NVMThermalMTBF > 0 ||
		c.PEBSStormMTBF > 0 ||
		c.Chaos.Enabled()
}

// Validate reports the first invalid parameter, or nil. The zero Config
// is valid (injection disabled).
func (c Config) Validate() error {
	if c.MigrationAbortProb < 0 || c.MigrationAbortProb > 1 {
		return fmt.Errorf("fault: MigrationAbortProb %v outside [0,1]", c.MigrationAbortProb)
	}
	if c.MigrationMaxRetries < 0 {
		return fmt.Errorf("fault: negative MigrationMaxRetries %d", c.MigrationMaxRetries)
	}
	if c.RetryBackoff < 0 || c.RetryBackoffMax < 0 {
		return fmt.Errorf("fault: negative retry backoff")
	}
	for _, m := range []struct {
		name string
		v    int64
	}{
		{"DMAChannelMTBF", c.DMAChannelMTBF},
		{"DMADegradedMTBF", c.DMADegradedMTBF},
		{"DMADegradedDuration", c.DMADegradedDuration},
		{"NVMUncorrectableMTBF", c.NVMUncorrectableMTBF},
		{"NVMThermalMTBF", c.NVMThermalMTBF},
		{"NVMThermalDuration", c.NVMThermalDuration},
		{"PEBSStormMTBF", c.PEBSStormMTBF},
		{"PEBSStormDuration", c.PEBSStormDuration},
	} {
		if m.v < 0 {
			return fmt.Errorf("fault: negative %s %d", m.name, m.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DMADegradedFactor", c.DMADegradedFactor},
		{"NVMThermalFactor", c.NVMThermalFactor},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", f.name, f.v)
		}
	}
	if c.PEBSStormFactor < 0 {
		return fmt.Errorf("fault: negative PEBSStormFactor %v", c.PEBSStormFactor)
	}
	return c.Chaos.validate()
}

// withDefaults fills unset secondary parameters (retry policy, episode
// durations and severities) with their defaults. Rates are never
// defaulted: a zero rate means the fault is off.
func (c Config) withDefaults() Config {
	if c.MigrationMaxRetries <= 0 {
		c.MigrationMaxRetries = 5
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * sim.Microsecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 10 * sim.Millisecond
	}
	if c.DMADegradedDuration <= 0 {
		c.DMADegradedDuration = 50 * sim.Millisecond
	}
	if c.DMADegradedFactor <= 0 || c.DMADegradedFactor > 1 {
		c.DMADegradedFactor = 0.5
	}
	if c.NVMThermalDuration <= 0 {
		c.NVMThermalDuration = 100 * sim.Millisecond
	}
	if c.NVMThermalFactor <= 0 || c.NVMThermalFactor > 1 {
		c.NVMThermalFactor = 0.4
	}
	if c.PEBSStormDuration <= 0 {
		c.PEBSStormDuration = 50 * sim.Millisecond
	}
	if c.PEBSStormFactor <= 1 {
		c.PEBSStormFactor = 8
	}
	if c.MigrationAbortProb < 0 {
		c.MigrationAbortProb = 0
	}
	if c.MigrationAbortProb > 1 {
		c.MigrationAbortProb = 1
	}
	c.Chaos = c.Chaos.withDefaults()
	return c
}

// Events reports what the injector decided for one quantum.
type Events struct {
	// DMAChannelFails is how many DMA channels die this quantum.
	DMAChannelFails int
	// NVMUncorrectable is how many uncorrectable NVM errors strike this
	// quantum.
	NVMUncorrectable int
	// DMADegradedStart / NVMThermalStart / PEBSStormStart mark episode
	// onsets (an episode already in progress does not restart).
	DMADegradedStart bool
	NVMThermalStart  bool
	PEBSStormStart   bool

	// CompoundStart / CEStormStart mark chaos-scheduler episode onsets.
	CompoundStart bool
	CEStormStart  bool
	// CorrectableErrors is how many correctable media errors strike this
	// quantum (nonzero only inside a CE storm).
	CorrectableErrors int
	// TierOffline is the tier the chaos scheduler takes down this quantum
	// (TierNone if none; at most one per quantum). TierOnline marks the
	// tiers whose offline episodes end this quantum. Fixed-size so Events
	// stays comparable.
	TierOffline vm.Tier
	TierOnline  [vm.MaxTiers]bool
	// Episodes announces episode onsets for the machine's episode log
	// with their scheduled end times; the first NumEpisodes entries are
	// valid.
	Episodes    [maxEpisodeStarts]EpisodeStart
	NumEpisodes int
}

// maxEpisodeStarts bounds episode onsets per quantum: one per episode
// class (compound, DMA-degraded, thermal, storm, CE storm, tier-offline).
const maxEpisodeStarts = 6

// addEpisode records an episode onset in the fixed-size announcement
// list.
func (ev *Events) addEpisode(s EpisodeStart) {
	if ev.NumEpisodes < maxEpisodeStarts {
		ev.Episodes[ev.NumEpisodes] = s
		ev.NumEpisodes++
	}
}

// Injector draws fault decisions from a dedicated deterministic RNG and
// tracks episode state. It is queried by the machine, migrator, and
// managers; all methods are cheap and none draw randomness when the
// injector is disabled.
type Injector struct {
	cfg Config
	rng *sim.Rand
	on  bool

	dmaDegradedUntil int64
	thermalUntil     int64
	stormUntil       int64

	// chaos-scheduler state
	compoundUntil int64
	ceUntil       int64
	offlineUntil  [vm.MaxTiers]int64
	tierScratch   []vm.Tier
	cePrep        sim.PoissonPrep

	dmaDerate  float64
	nvmDerate  float64
	loadFactor float64
}

// New builds an injector. Out-of-range parameters are clamped to their
// defaults (call Config.Validate beforehand to detect them); a zero
// Config yields a disabled injector.
func New(cfg Config, rng *sim.Rand) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:        cfg,
		rng:        rng,
		on:         cfg.Enabled(),
		dmaDerate:  1,
		nvmDerate:  1,
		loadFactor: 1,
	}
}

// prepCE lazily precomputes the Poisson constants for CE arrivals at the
// machine's quantum dt (the quantum is fixed per machine, so one prep
// serves the whole run).
func (in *Injector) prepCE(dt int64) sim.PoissonPrep {
	if in.cePrep.Lambda == 0 && in.cfg.Chaos.CEInterval > 0 {
		in.cePrep = sim.NewPoissonPrep(float64(dt) / float64(in.cfg.Chaos.CEInterval))
	}
	return in.cePrep
}

// Disabled returns an injector that injects nothing.
func Disabled() *Injector { return New(Config{}, sim.NewRand(0)) }

// Enabled reports whether any fault is configured.
func (in *Injector) Enabled() bool { return in.on }

// Config returns the (default-filled) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Advance progresses episodic fault state through one quantum
// [now, now+dt) and returns the events the machine must apply. Event
// counts per quantum follow a Bernoulli(dt/MTBF) approximation, which is
// accurate for quanta much shorter than the MTBF (the simulator's 1 ms
// quantum against MTBFs of hundreds of ms or more).
func (in *Injector) Advance(now, dt int64) Events {
	var ev Events
	if !in.on {
		return ev
	}
	fire := func(mtbf int64) bool {
		return mtbf > 0 && in.rng.Bernoulli(float64(dt)/float64(mtbf))
	}
	if fire(in.cfg.DMAChannelMTBF) {
		ev.DMAChannelFails = 1
	}
	if fire(in.cfg.NVMUncorrectableMTBF) {
		ev.NVMUncorrectable = 1
	}
	if now >= in.dmaDegradedUntil && fire(in.cfg.DMADegradedMTBF) {
		in.dmaDegradedUntil = now + in.cfg.DMADegradedDuration
		ev.DMADegradedStart = true
		ev.addEpisode(EpisodeStart{Kind: EpDMADegraded, Tier: vm.TierNone, Until: in.dmaDegradedUntil})
	}
	if now >= in.thermalUntil && fire(in.cfg.NVMThermalMTBF) {
		in.thermalUntil = now + in.cfg.NVMThermalDuration
		ev.NVMThermalStart = true
		ev.addEpisode(EpisodeStart{Kind: EpNVMThermal, Tier: vm.TierNone, Until: in.thermalUntil})
	}
	if now >= in.stormUntil && fire(in.cfg.PEBSStormMTBF) {
		in.stormUntil = now + in.cfg.PEBSStormDuration
		ev.PEBSStormStart = true
		ev.addEpisode(EpisodeStart{Kind: EpPEBSStorm, Tier: vm.TierNone, Until: in.stormUntil})
	}
	if in.cfg.Chaos.Enabled() {
		in.advanceChaos(now, dt, &ev)
	}
	in.dmaDerate, in.nvmDerate, in.loadFactor = 1, 1, 1
	if now < in.dmaDegradedUntil {
		in.dmaDerate = in.cfg.DMADegradedFactor
	}
	if now < in.thermalUntil {
		in.nvmDerate = in.cfg.NVMThermalFactor
	}
	if now < in.stormUntil {
		in.loadFactor = in.cfg.PEBSStormFactor
	}
	return ev
}

// DMADerate returns the bandwidth multiplier for surviving DMA channels
// (1 outside degraded episodes).
func (in *Injector) DMADerate() float64 { return in.dmaDerate }

// NVMDerate returns the NVM bandwidth multiplier (1 outside thermal
// episodes).
func (in *Injector) NVMDerate() float64 { return in.nvmDerate }

// PEBSLoadFactor returns the sample-inflow multiplier (1 outside storms).
func (in *Injector) PEBSLoadFactor() float64 { return in.loadFactor }

// MigrationAbort draws whether one page-copy attempt fails verification.
// It consumes randomness only when the abort fault is configured.
func (in *Injector) MigrationAbort() bool {
	if !in.on {
		return false
	}
	return in.rng.Bernoulli(in.cfg.MigrationAbortProb)
}

// MaxRetries returns the retry cap for aborted migrations.
func (in *Injector) MaxRetries() int { return in.cfg.MigrationMaxRetries }

// Backoff returns the delay before retry number retry (1-based): the base
// backoff doubled per subsequent retry, capped.
func (in *Injector) Backoff(retry int) int64 {
	b := in.cfg.RetryBackoff
	for i := 1; i < retry; i++ {
		b *= 2
		if b >= in.cfg.RetryBackoffMax {
			return in.cfg.RetryBackoffMax
		}
	}
	if b > in.cfg.RetryBackoffMax {
		b = in.cfg.RetryBackoffMax
	}
	return b
}

// PickIndex draws a uniform index in [0, n) from the injector's stream
// (used to choose the NVM page an uncorrectable error strikes).
func (in *Injector) PickIndex(n int) int { return in.rng.Intn(n) }
