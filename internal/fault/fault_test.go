package fault

import (
	"testing"

	"github.com/tieredmem/hemem/internal/sim"
)

func TestDisabledInjectorIsNeutral(t *testing.T) {
	in := Disabled()
	if in.Enabled() {
		t.Fatal("zero config reported enabled")
	}
	ev := in.Advance(0, sim.Millisecond)
	if ev != (Events{}) {
		t.Fatalf("disabled injector produced events: %+v", ev)
	}
	if in.DMADerate() != 1 || in.NVMDerate() != 1 || in.PEBSLoadFactor() != 1 {
		t.Fatal("disabled injector derates not neutral")
	}
	if in.MigrationAbort() {
		t.Fatal("disabled injector aborted a migration")
	}
}

// A disabled injector must not draw randomness: two injectors sharing RNG
// state stay in lockstep regardless of how often one is queried.
func TestDisabledInjectorDrawsNothing(t *testing.T) {
	rng := sim.NewRand(42)
	in := New(Config{}, rng)
	for i := 0; i < 1000; i++ {
		in.Advance(int64(i)*sim.Millisecond, sim.Millisecond)
		in.MigrationAbort()
	}
	want := sim.NewRand(42).Uint64()
	if got := rng.Uint64(); got != want {
		t.Fatalf("disabled injector consumed randomness: next draw %d, want %d", got, want)
	}
}

func TestDeterministicStreams(t *testing.T) {
	cfg := Config{
		MigrationAbortProb:   0.3,
		DMAChannelMTBF:       200 * sim.Millisecond,
		NVMUncorrectableMTBF: 300 * sim.Millisecond,
		NVMThermalMTBF:       150 * sim.Millisecond,
		PEBSStormMTBF:        100 * sim.Millisecond,
		DMADegradedMTBF:      250 * sim.Millisecond,
	}
	run := func(seed uint64) []Events {
		in := New(cfg, sim.NewRand(seed))
		var out []Events
		for i := 0; i < 5000; i++ {
			out = append(out, in.Advance(int64(i)*sim.Millisecond, sim.Millisecond))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at quantum %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical event streams")
	}
}

func TestEpisodeDerates(t *testing.T) {
	// MTBF equal to dt makes the episode start on the first quantum.
	cfg := Config{
		NVMThermalMTBF:     sim.Millisecond,
		NVMThermalDuration: 10 * sim.Millisecond,
		NVMThermalFactor:   0.4,
	}
	in := New(cfg, sim.NewRand(1))
	ev := in.Advance(0, sim.Millisecond)
	if !ev.NVMThermalStart {
		t.Fatal("thermal episode did not start at probability 1")
	}
	if in.NVMDerate() != 0.4 {
		t.Fatalf("NVMDerate = %v during episode, want 0.4", in.NVMDerate())
	}
	// An in-progress episode does not restart.
	ev = in.Advance(5*sim.Millisecond, sim.Millisecond)
	if ev.NVMThermalStart {
		t.Fatal("episode restarted while in progress")
	}
	if in.NVMDerate() != 0.4 {
		t.Fatal("derate cleared mid-episode")
	}
	// Storm episodes expose their factor the same way.
	in3 := New(Config{
		PEBSStormMTBF:     sim.Millisecond,
		PEBSStormDuration: 2 * sim.Millisecond,
		PEBSStormFactor:   8,
	}, sim.NewRand(1))
	in3.Advance(0, sim.Millisecond)
	if in3.PEBSLoadFactor() != 8 {
		t.Fatalf("storm factor = %v, want 8", in3.PEBSLoadFactor())
	}
}

func TestBackoffCappedDoubling(t *testing.T) {
	in := New(Config{
		MigrationAbortProb: 0.5,
		RetryBackoff:       100 * sim.Microsecond,
		RetryBackoffMax:    1 * sim.Millisecond,
	}, sim.NewRand(1))
	want := []int64{
		100 * sim.Microsecond,
		200 * sim.Microsecond,
		400 * sim.Microsecond,
		800 * sim.Microsecond,
		1 * sim.Millisecond,
		1 * sim.Millisecond,
	}
	for i, w := range want {
		if got := in.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{MigrationAbortProb: -0.1},
		{MigrationAbortProb: 1.5},
		{MigrationMaxRetries: -1},
		{RetryBackoff: -1},
		{DMAChannelMTBF: -5},
		{DMADegradedFactor: 2},
		{NVMThermalFactor: -0.5},
		{PEBSStormFactor: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
}

func TestDefaults(t *testing.T) {
	in := New(Config{MigrationAbortProb: 0.1}, sim.NewRand(1))
	cfg := in.Config()
	if cfg.MigrationMaxRetries != 5 {
		t.Fatalf("default MigrationMaxRetries = %d, want 5", cfg.MigrationMaxRetries)
	}
	if cfg.RetryBackoff != 100*sim.Microsecond || cfg.RetryBackoffMax != 10*sim.Millisecond {
		t.Fatalf("default backoff = %d/%d", cfg.RetryBackoff, cfg.RetryBackoffMax)
	}
	if !in.Enabled() {
		t.Fatal("abort-only config not enabled")
	}
}

func TestMigrationAbortProbabilityOneAlwaysFires(t *testing.T) {
	in := New(Config{MigrationAbortProb: 1}, sim.NewRand(1))
	for i := 0; i < 100; i++ {
		if !in.MigrationAbort() {
			t.Fatal("abort prob 1 did not fire")
		}
	}
}
