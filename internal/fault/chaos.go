// Chaos scheduler: a seeded timeline that composes the independent
// injectors into compound episodes and adds the two fault classes PR 1's
// injectors could not express — whole-tier offline/online events (a CXL
// expander link going down, a DIMM hot-removed) and correctable-error
// storms that escalate into predictive page retirement. Like everything
// else in this package, the scheduler draws from the injector's RNG
// stream only when configured, so a zero ChaosConfig is a strict no-op
// and the same seed plus the same Config replays bit-identical episode
// timelines.
package fault

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// ChaosConfig extends Config with compound and tier-level fault classes.
// The zero value disables the chaos scheduler entirely.
type ChaosConfig struct {
	// CompoundMTBF is the mean time between compound episodes: a DMA
	// degradation, an NVM thermal throttle, and a PEBS storm all starting
	// together and running for CompoundDuration (default 50 ms). Episodes
	// already in progress are extended, not restarted.
	CompoundMTBF     int64
	CompoundDuration int64

	// TierOfflineMTBF is the mean time between whole-tier offline events.
	// Each event picks one currently-online tier uniformly from
	// OfflineTiers, takes it down for TierOfflineDuration (default
	// 500 ms), and brings it back online when the episode ends. The
	// machine refuses events that would offline its last migratable tier.
	// OfflineTiers is a fixed array (zero entries ignored) so Config
	// stays comparable; build it with OfflineSet.
	TierOfflineMTBF     int64
	TierOfflineDuration int64
	OfflineTiers        [vm.MaxTiers]vm.TierID

	// CEStormMTBF starts correctable-error storms lasting CEStormDuration
	// (default 100 ms) during which correctable media errors strike
	// random resident pages with mean inter-arrival CEInterval (default
	// 1 ms). A page accumulating CERetireThreshold correctable errors
	// (default 4) is predictively retired: its frame is discarded and the
	// page remaps, exactly like an uncorrectable strike but before data
	// loss.
	CEStormMTBF       int64
	CEStormDuration   int64
	CEInterval        int64
	CERetireThreshold int
}

// Enabled reports whether any chaos fault class is configured.
func (c ChaosConfig) Enabled() bool {
	return c.CompoundMTBF > 0 || c.TierOfflineMTBF > 0 || c.CEStormMTBF > 0
}

// validate reports the first invalid chaos parameter, or nil.
func (c ChaosConfig) validate() error {
	for _, m := range []struct {
		name string
		v    int64
	}{
		{"CompoundMTBF", c.CompoundMTBF},
		{"CompoundDuration", c.CompoundDuration},
		{"TierOfflineMTBF", c.TierOfflineMTBF},
		{"TierOfflineDuration", c.TierOfflineDuration},
		{"CEStormMTBF", c.CEStormMTBF},
		{"CEStormDuration", c.CEStormDuration},
		{"CEInterval", c.CEInterval},
	} {
		if m.v < 0 {
			return fmt.Errorf("fault: negative %s %d", m.name, m.v)
		}
	}
	if c.CERetireThreshold < 0 {
		return fmt.Errorf("fault: negative CERetireThreshold %d", c.CERetireThreshold)
	}
	n := 0
	for _, t := range c.OfflineTiers {
		if t == vm.TierNone {
			continue
		}
		if t < vm.TierNone || int(t) >= vm.MaxTiers {
			return fmt.Errorf("fault: invalid offline tier %d", t)
		}
		n++
	}
	if c.TierOfflineMTBF > 0 && n == 0 {
		return fmt.Errorf("fault: TierOfflineMTBF set but OfflineTiers empty")
	}
	return nil
}

// OfflineSet packs tier IDs into a ChaosConfig.OfflineTiers array.
func OfflineSet(tiers ...vm.TierID) [vm.MaxTiers]vm.TierID {
	var out [vm.MaxTiers]vm.TierID
	copy(out[:], tiers)
	return out
}

// withDefaults fills unset durations and thresholds.
func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.CompoundDuration <= 0 {
		c.CompoundDuration = 50 * sim.Millisecond
	}
	if c.TierOfflineDuration <= 0 {
		c.TierOfflineDuration = 500 * sim.Millisecond
	}
	if c.CEStormDuration <= 0 {
		c.CEStormDuration = 100 * sim.Millisecond
	}
	if c.CEInterval <= 0 {
		c.CEInterval = sim.Millisecond
	}
	if c.CERetireThreshold <= 0 {
		c.CERetireThreshold = 4
	}
	return c
}

// EpisodeKind identifies a fault episode class in the episode log.
type EpisodeKind int8

// The episode classes, in the order the scheduler evaluates them.
const (
	EpNone EpisodeKind = iota
	EpDMADegraded
	EpNVMThermal
	EpPEBSStorm
	EpCompound
	EpCEStorm
	EpTierOffline
)

// String returns the episode kind's log name.
func (k EpisodeKind) String() string {
	switch k {
	case EpDMADegraded:
		return "dma-degraded"
	case EpNVMThermal:
		return "nvm-thermal"
	case EpPEBSStorm:
		return "pebs-storm"
	case EpCompound:
		return "compound"
	case EpCEStorm:
		return "ce-storm"
	case EpTierOffline:
		return "tier-offline"
	}
	return "none"
}

// EpisodeStart announces an episode onset inside Events. Until is the
// scheduled end time.
type EpisodeStart struct {
	Kind  EpisodeKind
	Tier  vm.Tier // tier-offline episodes only; TierNone otherwise
	Until int64
}

// Episode is one entry of the machine's replayable episode log: an
// episode onset with its scheduled end and, for tier-offline episodes,
// the measured evacuation time (MTTR). EvacNs is -1 while evacuation is
// still in progress (or was cut short by the tier coming back online).
type Episode struct {
	Kind   EpisodeKind
	Tier   vm.Tier
	Start  int64
	End    int64
	EvacNs int64
}

// String formats one episode-log line.
func (e Episode) String() string {
	s := fmt.Sprintf("[%10.6fs] %-12s", float64(e.Start)/float64(sim.Second), e.Kind)
	if e.Kind == EpTierOffline {
		s += " " + e.Tier.String()
	}
	if e.End > 0 {
		s += fmt.Sprintf(" until %.6fs", float64(e.End)/float64(sim.Second))
	}
	if e.Kind == EpTierOffline && e.EvacNs >= 0 {
		s += fmt.Sprintf(" evac %.3fms", float64(e.EvacNs)/float64(sim.Millisecond))
	}
	return s
}

// WriteEpisodes writes the episode log, one line per episode.
func WriteEpisodes(w io.Writer, eps []Episode) error {
	for _, e := range eps {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// advanceChaos draws the chaos scheduler's decisions for one quantum.
// Called from Advance after the independent injectors so that a disabled
// ChaosConfig leaves the RNG stream untouched. Draw order is fixed
// (compound, tier offline/online, CE storm, CE strikes) so timelines
// replay bit-identically.
func (in *Injector) advanceChaos(now, dt int64, ev *Events) {
	c := in.cfg.Chaos
	fire := func(mtbf int64) bool {
		return mtbf > 0 && in.rng.Bernoulli(float64(dt)/float64(mtbf))
	}

	// Compound episode: all three derate episodes start (or extend)
	// together. Constituents not already running are announced so the
	// machine's per-class counters see them.
	if now >= in.compoundUntil && fire(c.CompoundMTBF) {
		in.compoundUntil = now + c.CompoundDuration
		until := in.compoundUntil
		ev.CompoundStart = true
		ev.addEpisode(EpisodeStart{Kind: EpCompound, Tier: vm.TierNone, Until: until})
		if now >= in.dmaDegradedUntil {
			ev.DMADegradedStart = true
		}
		if now >= in.thermalUntil {
			ev.NVMThermalStart = true
		}
		if now >= in.stormUntil {
			ev.PEBSStormStart = true
		}
		if in.dmaDegradedUntil < until {
			in.dmaDegradedUntil = until
		}
		if in.thermalUntil < until {
			in.thermalUntil = until
		}
		if in.stormUntil < until {
			in.stormUntil = until
		}
	}

	// Tier offline/online. Expired schedules come back online first, so
	// a tier can be re-offlined the same quantum it recovers only by a
	// fresh draw.
	if c.TierOfflineMTBF > 0 {
		for _, t := range c.OfflineTiers {
			if t == vm.TierNone {
				continue
			}
			if u := in.offlineUntil[t]; u != 0 && now >= u {
				in.offlineUntil[t] = 0
				ev.TierOnline[t] = true
			}
		}
		if fire(c.TierOfflineMTBF) {
			in.tierScratch = in.tierScratch[:0]
			for _, t := range c.OfflineTiers {
				if t != vm.TierNone && in.offlineUntil[t] == 0 {
					in.tierScratch = append(in.tierScratch, t)
				}
			}
			if n := len(in.tierScratch); n > 0 {
				t := in.tierScratch[in.rng.Intn(n)]
				in.offlineUntil[t] = now + c.TierOfflineDuration
				ev.TierOffline = t
				ev.addEpisode(EpisodeStart{Kind: EpTierOffline, Tier: t, Until: in.offlineUntil[t]})
			}
		}
	}

	// Correctable-error storm onset, then the strikes themselves: a
	// Poisson arrival count with mean dt/CEInterval while in a storm.
	if now >= in.ceUntil && fire(c.CEStormMTBF) {
		in.ceUntil = now + c.CEStormDuration
		ev.CEStormStart = true
		ev.addEpisode(EpisodeStart{Kind: EpCEStorm, Tier: vm.TierNone, Until: in.ceUntil})
	}
	if now < in.ceUntil {
		ev.CorrectableErrors = in.rng.PoissonCached(in.prepCE(dt))
	}
}

// CERetireThreshold returns how many correctable errors a page absorbs
// before its frame is predictively retired.
func (in *Injector) CERetireThreshold() int { return in.cfg.Chaos.CERetireThreshold }
