package dma

import (
	"testing"
	"testing/quick"

	"github.com/tieredmem/hemem/internal/sim"
)

// "Experimentally, we determine that a batch size of 4, using 2 DMA
// channels concurrently, achieves the highest DMA performance on our
// system." (§3.2). The search optimum of the calibrated model must agree
// at the 4 KB request size where ioctl overheads matter.
func TestBestConfigMatchesPaper(t *testing.T) {
	e := New(DefaultConfig())
	batch, channels := e.BestConfig(4 * sim.KB)
	if batch != 4 || channels != 2 {
		t.Fatalf("BestConfig(4KB) = batch %d × %d channels, paper says 4 × 2", batch, channels)
	}
}

func TestTwoChannelsSaturateEngine(t *testing.T) {
	e := New(DefaultConfig())
	t2 := e.Throughput(4, 2, 2*sim.MB)
	t4 := e.Throughput(4, 4, 2*sim.MB)
	if t4 > t2 {
		t.Fatalf("4 channels beat 2 on large requests: %.2f > %.2f GB/s",
			sim.BytesPerNsToGBps(t4), sim.BytesPerNsToGBps(t2))
	}
	// Large-page copies approach the engine ceiling.
	if gb := sim.BytesPerNsToGBps(t2); gb < 6.0 || gb > 6.6 {
		t.Fatalf("2MB-page copy throughput = %.2f GB/s, want near 6.6", gb)
	}
}

func TestBatchingAmortizesSyscall(t *testing.T) {
	e := New(DefaultConfig())
	one := e.Throughput(1, 2, 4*sim.KB)
	four := e.Throughput(4, 2, 4*sim.KB)
	if four <= one {
		t.Fatalf("batch 4 (%.2f GB/s) not faster than batch 1 (%.2f GB/s)",
			sim.BytesPerNsToGBps(four), sim.BytesPerNsToGBps(one))
	}
	// But unbounded batching is not free: 32 is worse than 4.
	big := e.Throughput(32, 2, 4*sim.KB)
	if big >= four {
		t.Fatalf("batch 32 (%.2f) should trail batch 4 (%.2f)",
			sim.BytesPerNsToGBps(big), sim.BytesPerNsToGBps(four))
	}
}

func TestBatchTimeClamps(t *testing.T) {
	e := New(DefaultConfig())
	if e.BatchTime(0, 0, 4*sim.KB) != e.BatchTime(1, 1, 4*sim.KB) {
		t.Fatal("out-of-range batch/channels not clamped low")
	}
	if e.BatchTime(100, 100, 4*sim.KB) != e.BatchTime(32, 8, 4*sim.KB) {
		t.Fatal("out-of-range batch/channels not clamped high")
	}
}

func TestCopyAccounting(t *testing.T) {
	e := New(DefaultConfig())
	d := e.Copy(64 * sim.MB)
	if d <= 0 {
		t.Fatal("copy duration must be positive")
	}
	// ~64MB at ~6.5GB/s ≈ 10ms.
	if d < 8*sim.Millisecond || d > 12*sim.Millisecond {
		t.Fatalf("64MB copy = %v ms, want ~10", d/sim.Millisecond)
	}
	if e.CopiedBytes() != float64(64*sim.MB) {
		t.Fatalf("CopiedBytes = %v", e.CopiedBytes())
	}
}

// "We find that 4 threads maximize copy performance using this method."
func TestThreadCopierSaturatesAtFour(t *testing.T) {
	three := NewThreadCopier(3).Throughput()
	four := NewThreadCopier(4).Throughput()
	eight := NewThreadCopier(8).Throughput()
	if four <= three {
		t.Fatal("4 threads should beat 3")
	}
	if eight > four {
		t.Fatalf("8 threads (%.2f GB/s) beat 4 (%.2f GB/s)",
			sim.BytesPerNsToGBps(eight), sim.BytesPerNsToGBps(four))
	}
	if NewThreadCopier(0).Threads != 1 {
		t.Fatal("thread count not clamped to 1")
	}
}

// DMA beats thread copy in throughput and uses no cores.
func TestDMABeatsThreads(t *testing.T) {
	e := New(DefaultConfig())
	dma := e.Throughput(4, 2, 2*sim.MB)
	threads := NewThreadCopier(4).Throughput()
	if dma <= threads {
		t.Fatalf("DMA %.2f GB/s should beat 4-thread copy %.2f GB/s",
			sim.BytesPerNsToGBps(dma), sim.BytesPerNsToGBps(threads))
	}
}

// Property: throughput is positive and bounded by the engine cap for all
// configurations.
func TestThroughputBounds(t *testing.T) {
	e := New(DefaultConfig())
	f := func(b, c uint8, sz uint16) bool {
		tp := e.Throughput(int(b%40), int(c%10), int64(sz)+1)
		return tp > 0 && tp <= e.Config().EngineCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroConfigFallsBack(t *testing.T) {
	e := New(Config{})
	if e.Config().ChannelBW == 0 {
		t.Fatal("zero config did not fall back to defaults")
	}
}
