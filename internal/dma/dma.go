// Package dma models the Intel I/OAT DMA engine HeMem offloads page
// migration to (§3.2). The paper's kernel extension exposes a copy ioctl
// that accepts batches of up to 32 requests spread over a set of DMA
// channels; the authors measure that batches of 4 requests over 2 channels
// maximize copy throughput on their system, and that without a DMA engine,
// 4 copy threads maximize software copy performance.
//
// The model captures the constants behind those optima: a per-ioctl syscall
// cost amortized by batching, a per-request descriptor cost that grows with
// batch size (descriptor-ring pressure), a per-channel setup cost, per-
// channel bandwidth, and a shared engine ceiling that two channels already
// saturate.
package dma

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/sim"
)

// Config holds the engine cost model parameters.
type Config struct {
	// ChannelBW is per-channel copy bandwidth in bytes/ns.
	ChannelBW float64
	// EngineCap is the shared ceiling across channels in bytes/ns.
	EngineCap float64
	// SyscallBase is the fixed cost of one copy ioctl (ns).
	SyscallBase int64
	// PerRequest is the kernel descriptor setup cost per request (ns).
	PerRequest int64
	// PerRequestSlope scales extra per-request cost with batch size
	// (descriptor-ring and completion-tracking pressure).
	PerRequestSlope float64
	// ChannelSetup is the per-request cost of engaging one channel (ns).
	ChannelSetup int64
	// MaxBatch is the largest batch one ioctl accepts (the paper's
	// extension allows 32).
	MaxBatch int
	// MaxChannels is how many channels the allocator may hand out.
	MaxChannels int
}

// DefaultConfig returns the calibrated I/OAT model.
func DefaultConfig() Config {
	return Config{
		ChannelBW:       sim.GBps(3.3),
		EngineCap:       sim.GBps(6.6),
		SyscallBase:     1800,
		PerRequest:      400,
		PerRequestSlope: 0.25, // +25% of PerRequest per extra batched request
		ChannelSetup:    500,
		MaxBatch:        32,
		MaxChannels:     8,
	}
}

// Validate reports the first invalid parameter, or nil. Zero values are
// valid (they fall back to defaults in New).
func (c Config) Validate() error {
	if c.ChannelBW < 0 || c.EngineCap < 0 {
		return fmt.Errorf("dma: negative bandwidth (channel %v, cap %v)", c.ChannelBW, c.EngineCap)
	}
	if c.SyscallBase < 0 || c.PerRequest < 0 || c.ChannelSetup < 0 {
		return fmt.Errorf("dma: negative per-request cost")
	}
	if c.PerRequestSlope < 0 {
		return fmt.Errorf("dma: negative PerRequestSlope %v", c.PerRequestSlope)
	}
	if c.MaxBatch < 0 || c.MaxChannels < 0 {
		return fmt.Errorf("dma: negative batch/channel limit")
	}
	return nil
}

// withDefaults fills zero-value fields field-by-field, so a caller that
// overrides only some parameters keeps the rest calibrated.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.ChannelBW == 0 {
		c.ChannelBW = def.ChannelBW
	}
	if c.EngineCap == 0 {
		c.EngineCap = def.EngineCap
	}
	if c.SyscallBase == 0 {
		c.SyscallBase = def.SyscallBase
	}
	if c.PerRequest == 0 {
		c.PerRequest = def.PerRequest
	}
	if c.PerRequestSlope == 0 {
		c.PerRequestSlope = def.PerRequestSlope
	}
	if c.ChannelSetup == 0 {
		c.ChannelSetup = def.ChannelSetup
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = def.MaxBatch
	}
	if c.MaxChannels == 0 {
		c.MaxChannels = def.MaxChannels
	}
	return c
}

// FallbackCopyThreads is the software-copy pool size engaged when the DMA
// engine becomes unavailable — the paper's measured optimum of 4 threads.
const FallbackCopyThreads = 4

// Engine is a DMA engine instance.
type Engine struct {
	cfg Config
	// copiedBytes accounts total bytes moved, for reporting.
	copiedBytes float64
	// failed counts permanently failed channels (fault injection).
	failed int
	// derate scales channel and engine bandwidth during degraded episodes;
	// 1 means full speed.
	derate float64
}

// New returns an engine with cfg; zero-value fields fall back to defaults
// field-by-field, so partially specified configs keep the remaining
// parameters calibrated.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), derate: 1}
}

// FailChannel permanently removes one channel (a hardware fault) and
// returns how many remain live.
func (e *Engine) FailChannel() int {
	if e.failed < e.cfg.MaxChannels {
		e.failed++
	}
	return e.LiveChannels()
}

// LiveChannels returns the number of channels still operational.
func (e *Engine) LiveChannels() int { return e.cfg.MaxChannels - e.failed }

// SetDerate scales the engine's bandwidth by f in (0, 1]; out-of-range
// values restore full speed. Degraded-channel episodes use this.
func (e *Engine) SetDerate(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	e.derate = f
}

// Derate returns the current bandwidth multiplier.
func (e *Engine) Derate() float64 { return e.derate }

// Config returns the engine's parameters.
func (e *Engine) Config() Config { return e.cfg }

// BatchTime returns the time in ns to complete one ioctl carrying batch
// requests of reqSize bytes each, striped over channels.
func (e *Engine) BatchTime(batch, channels int, reqSize int64) int64 {
	batch, channels = e.clamp(batch, channels)
	if channels == 0 {
		return 0 // no live channels: the engine cannot copy at all
	}
	bw := e.cfg.ChannelBW * float64(channels)
	if bw > e.cfg.EngineCap {
		bw = e.cfg.EngineCap
	}
	bw *= e.derate
	perReq := float64(e.cfg.PerRequest) * (1 + e.cfg.PerRequestSlope*float64(batch-1))
	setup := float64(e.cfg.SyscallBase) +
		float64(batch)*(perReq+float64(e.cfg.ChannelSetup)*float64(channels))
	transfer := float64(batch) * float64(reqSize) / bw
	return int64(setup + transfer)
}

// clamp bounds batch and channel counts to the engine's valid ranges,
// including channels lost to injected hardware faults.
func (e *Engine) clamp(batch, channels int) (int, int) {
	if batch < 1 {
		batch = 1
	}
	if batch > e.cfg.MaxBatch {
		batch = e.cfg.MaxBatch
	}
	if channels < 1 {
		channels = 1
	}
	if live := e.LiveChannels(); channels > live {
		channels = live
	}
	return batch, channels
}

// Throughput returns sustained copy bandwidth in bytes/ns when issuing
// back-to-back ioctls with the given batch/channel configuration.
func (e *Engine) Throughput(batch, channels int, reqSize int64) float64 {
	batch, channels = e.clamp(batch, channels)
	t := e.BatchTime(batch, channels, reqSize)
	if t <= 0 {
		return 0
	}
	return float64(batch) * float64(reqSize) / float64(t)
}

// BestConfig searches batch sizes and channel counts for the highest-
// throughput configuration at the given request size. On the default
// model with 4 KB requests this lands on batch 4, 2 channels — the paper's
// experimentally determined optimum.
func (e *Engine) BestConfig(reqSize int64) (batch, channels int) {
	best := 0.0
	batch, channels = 1, 1
	for b := 1; b <= e.cfg.MaxBatch; b++ {
		for c := 1; c <= e.cfg.MaxChannels; c++ {
			if tp := e.Throughput(b, c, reqSize); tp > best {
				best, batch, channels = tp, b, c
			}
		}
	}
	return batch, channels
}

// Copy accounts a bulk copy of size bytes and returns its duration using
// the engine's best configuration for 2 MB page requests. The engine
// consumes no CPU cores — that is its advantage over thread copying.
func (e *Engine) Copy(size int64) int64 {
	e.copiedBytes += float64(size)
	const pageReq = 2 * 1024 * 1024
	tp := e.Throughput(4, 2, pageReq)
	return int64(float64(size) / tp)
}

// CopiedBytes returns total bytes moved through the engine.
func (e *Engine) CopiedBytes() float64 { return e.copiedBytes }

// ThreadCopier models the fallback migration path: dedicated CPU threads
// copying pages with memcpy, akin to Nimble. The paper finds 4 threads
// maximize copy performance (the destination NVM write bandwidth saturates
// there); each thread occupies one core.
type ThreadCopier struct {
	// Threads is the number of copy threads (cores consumed).
	Threads int
	// PerThreadBW is the per-thread memcpy bandwidth in bytes/ns.
	PerThreadBW float64
	// CapBW bounds the aggregate (destination device ceiling).
	CapBW float64
}

// NewThreadCopier returns the calibrated software copier.
func NewThreadCopier(threads int) *ThreadCopier {
	if threads < 1 {
		threads = 1
	}
	return &ThreadCopier{
		Threads:     threads,
		PerThreadBW: sim.GBps(1.3),
		CapBW:       sim.GBps(4.8),
	}
}

// Throughput returns aggregate copy bandwidth in bytes/ns.
func (c *ThreadCopier) Throughput() float64 {
	bw := c.PerThreadBW * float64(c.Threads)
	if bw > c.CapBW {
		bw = c.CapBW
	}
	return bw
}
