package gap

import (
	"sync"
	"testing"
)

// TestCalibrationCacheMatchesDirect pins the cache's transparency: the
// cached graph and traffic summary must equal a direct (uncached)
// generation, including across the EdgeFactor 0 → 16 normalization.
func TestCalibrationCacheMatchesDirect(t *testing.T) {
	cfg := KroneckerConfig{Scale: 10, EdgeFactor: 16, Seed: 99}
	direct := Build(1<<cfg.Scale, Kronecker(cfg))
	cached := CalibrationGraph(cfg)
	if cached.N != direct.N || len(cached.Neighbors) != len(direct.Neighbors) {
		t.Fatalf("cached graph shape (%d, %d) != direct (%d, %d)",
			cached.N, len(cached.Neighbors), direct.N, len(direct.Neighbors))
	}
	for i := range direct.Neighbors {
		if cached.Neighbors[i] != direct.Neighbors[i] {
			t.Fatalf("neighbor %d: cached %d != direct %d", i, cached.Neighbors[i], direct.Neighbors[i])
		}
	}
	if def := CalibrationGraph(KroneckerConfig{Scale: 10, Seed: 99}); def != cached {
		t.Fatal("EdgeFactor 0 did not normalize to the EdgeFactor 16 entry")
	}
	const chunks = 37
	want := direct.ChunkTraffic(chunks)
	got := CalibrationTraffic(cfg, chunks)
	if len(got) != len(want) {
		t.Fatalf("traffic length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("traffic[%d]: cached %v != direct %v", i, got[i], want[i])
		}
	}
}

// TestCalibrationCacheConcurrent hammers the cache from concurrent
// workers (as parallel sweep cells do) and checks every worker saw the
// identical summary. Run under -race this also proves the build-once
// synchronization is sound.
func TestCalibrationCacheConcurrent(t *testing.T) {
	cfg := KroneckerConfig{Scale: 11, EdgeFactor: 16, Seed: 7}
	const chunks = 53
	want := Build(1<<cfg.Scale, Kronecker(cfg)).ChunkTraffic(chunks)

	const workers = 8
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := CalibrationGraph(cfg)
			_ = g.DegreeSkew(0.1)
			results[w] = CalibrationTraffic(cfg, chunks)
		}(w)
	}
	wg.Wait()
	for w, got := range results {
		if len(got) != len(want) {
			t.Fatalf("worker %d: traffic length %d, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("worker %d traffic[%d]: %v != %v", w, i, got[i], want[i])
			}
		}
	}
}
