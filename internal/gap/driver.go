package gap

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/vm"
)

// DriverConfig parameterizes the simulated BC run of §5.2.3.
type DriverConfig struct {
	// Scale is log2 of the vertex count (the paper runs 2^28, which fits
	// the 192 GB DRAM, and 2^29, which exceeds it).
	Scale int
	// EdgeFactor is directed edges per vertex (16).
	EdgeFactor int
	// Threads is the worker count.
	Threads int
	// Iterations is the number of BC source iterations (paper: 15).
	Iterations int
	// EdgeVisitScale shortens iterations for tests: the fraction of the
	// full 2·E edge visits each iteration performs (default 1).
	EdgeVisitScale float64
	// CalibrationScale is the (small) scale at which a real Kronecker
	// graph is generated to measure the page-level degree skew that
	// parameterizes the traffic zones (default 18).
	CalibrationScale int
	// Seed drives generation and source choice.
	Seed uint64
}

// BytesPerVertex is the modelled in-memory footprint per vertex: both
// CSR directions (2×16 neighbor entries × 8 B), offsets, and the BC arrays
// (scores, sigma, depth, delta, frontier and successor structures) plus
// builder slack. 400 B/vertex puts 2^28 at ~100 GB (fits DRAM) and 2^29 at
// ~200 GB (exceeds it), matching the paper's framing.
const BytesPerVertex = 400

// vertexZones is how many degree-ordered zones the vertex arrays are split
// into for traffic modelling.
const vertexZones = 3

// Driver is the simulated BC workload.
type Driver struct {
	cfg DriverConfig

	neighborsRegion *vm.Region
	vertexRegion    *vm.Region
	vertexSets      [vertexZones]*vm.PageSet
	zoneTraffic     [vertexZones]float64

	comps     []machine.Component
	opsPerIt  float64
	totalOps  float64
	iterDone  []int64   // completion time of each iteration
	iterWear  []float64 // cumulative NVM write bytes at each completion
	m         *machine.Machine
	startWear float64
}

// NewDriver maps the graph's memory on m and registers the workload. A
// real Kronecker graph at CalibrationScale measures the degree skew used
// to split the vertex arrays into hot/warm/cold zones.
func NewDriver(m *machine.Machine, cfg DriverConfig) *Driver {
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 16
	}
	if cfg.Threads == 0 {
		cfg.Threads = 16
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 15
	}
	if cfg.EdgeVisitScale == 0 {
		cfg.EdgeVisitScale = 1
	}
	if cfg.CalibrationScale == 0 {
		cfg.CalibrationScale = 18
	}
	d := &Driver{cfg: cfg, m: m}

	v := int64(1) << cfg.Scale
	// Neighbor arrays: 2 directions × EdgeFactor entries × 8 B.
	neighborBytes := 2 * int64(cfg.EdgeFactor) * v * 8
	vertexBytes := v*BytesPerVertex - neighborBytes
	d.neighborsRegion = m.AS.Map("gap-neighbors", neighborBytes)
	d.vertexRegion = m.AS.Map("gap-vertex", vertexBytes)

	// Measure page-level degree concentration on a real (small) graph:
	// chunk the vertex range as the full-scale pages chunk it. The graph
	// and summary are pure functions of (scale, edge factor, seed), so
	// they come from the process-wide calibration cache instead of being
	// rebuilt per driver/sweep cell.
	pages := d.vertexRegion.AllPages()
	traffic := CalibrationTraffic(KroneckerConfig{Scale: cfg.CalibrationScale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed}, len(pages))

	// Split pages into three zones: the hottest pages covering ~40% of
	// vertex traffic, the next ~35%, and the tail. Pages are taken in id
	// order (hubs cluster at low ids).
	type zoneDef struct{ target float64 }
	defs := [vertexZones]zoneDef{{0.40}, {0.35}, {1.0}}
	idx := 0
	for z := 0; z < vertexZones; z++ {
		var zonePages []*vm.Page
		var zoneTr float64
		for idx < len(pages) {
			zonePages = append(zonePages, pages[idx])
			zoneTr += traffic[idx]
			idx++
			if z < vertexZones-1 && zoneTr >= defs[z].target && len(pages)-idx > vertexZones-z {
				break
			}
		}
		d.vertexSets[z] = vm.NewPageSet(fmt.Sprintf("gap-vertex-z%d", z), zonePages)
		d.zoneTraffic[z] = zoneTr
	}

	// One op = one edge visit: stream the neighbor entry, then touch the
	// endpoint's vertex data — a random read (sigma/depth) and a random
	// write (sigma or delta accumulation). BC's vertex updates make the
	// hub zones write-intensive ("the BC data structures are write
	// intensive", §5.2.3).
	neighborsSet := d.neighborsRegion.AsSet()
	d.comps = []machine.Component{
		{Set: neighborsSet, Share: 1, ReadBytes: 8, Pattern: mem.Sequential},
	}
	for z := 0; z < vertexZones; z++ {
		d.comps = append(d.comps,
			machine.Component{Set: d.vertexSets[z], Share: d.zoneTraffic[z],
				ReadBytes: 16, Pattern: mem.Random},
			machine.Component{Set: d.vertexSets[z], Share: d.zoneTraffic[z],
				WriteBytes: 12, Pattern: mem.Random},
		)
	}

	d.opsPerIt = 2 * float64(cfg.EdgeFactor) * float64(v) * cfg.EdgeVisitScale
	m.AddWorkload(d)
	d.startWear = m.NVM.Wear().WriteBytes
	return d
}

// Name implements machine.Workload.
func (d *Driver) Name() string { return "gap-bc" }

// Threads implements machine.Workload.
func (d *Driver) Threads() int { return d.cfg.Threads }

// Components implements machine.Workload.
func (d *Driver) Components() []machine.Component { return d.comps }

// ComputePerOp implements machine.Computes: a few ns of instruction work
// per edge (comparisons, queueing).
func (d *Driver) ComputePerOp() float64 { return 4 }

// OnOps implements machine.Workload: track per-iteration boundaries.
func (d *Driver) OnOps(now int64, ops float64, opTime float64) {
	before := int(d.totalOps / d.opsPerIt)
	d.totalOps += ops
	after := int(d.totalOps / d.opsPerIt)
	for it := before; it < after && len(d.iterDone) < d.cfg.Iterations; it++ {
		d.iterDone = append(d.iterDone, now)
		d.iterWear = append(d.iterWear, d.m.NVM.Wear().WriteBytes)
	}
}

// Done implements machine.Workload.
func (d *Driver) Done() bool { return len(d.iterDone) >= d.cfg.Iterations }

// IterationTimes returns the wall time of each completed iteration in ns.
func (d *Driver) IterationTimes() []int64 {
	out := make([]int64, len(d.iterDone))
	prev := int64(0)
	for i, t := range d.iterDone {
		out[i] = t - prev
		prev = t
	}
	return out
}

// IterationNVMWrites returns NVM bytes written during each iteration
// (application stores, migrations, and cache writebacks — Figure 16).
func (d *Driver) IterationNVMWrites() []float64 {
	out := make([]float64, len(d.iterWear))
	prev := d.startWear
	for i, w := range d.iterWear {
		out[i] = w - prev
		prev = w
	}
	return out
}

// HotVertexPages returns the hottest vertex zone (write-hot hubs).
func (d *Driver) HotVertexPages() *vm.PageSet { return d.vertexSets[0] }

// Iterations returns the number of completed iterations.
func (d *Driver) Iterations() int { return len(d.iterDone) }

func (d *Driver) String() string {
	return fmt.Sprintf("gap-bc{2^%d, %d iters}", d.cfg.Scale, d.cfg.Iterations)
}
