package gap

import "sync"

// Calibration-graph cache. Every BC driver (and every sweep cell running
// one) generates a small "calibration" Kronecker graph to measure degree
// skew — a pure function of (Scale, EdgeFactor, Seed), since Kronecker
// seeds its own RNG from the config and Build/ChunkTraffic are
// deterministic. Rebuilding it per cell was ~10% of suite CPU
// (BENCH_pr3 profile), so identical configs share one graph and one
// traffic summary across cells and across parallel sweep workers.
//
// Entries use a sync.Once so concurrent workers requesting the same key
// build it exactly once; the maps are guarded by a mutex. Cached values
// are treated as immutable by all callers (Graph is read-only after
// Build; traffic slices are never written after ChunkTraffic).

type calibKey struct {
	scale      int
	edgeFactor int
	seed       uint64
}

type trafficKey struct {
	calibKey
	chunks int
}

type calibEntry struct {
	once sync.Once
	g    *Graph
}

var (
	calibMu      sync.Mutex
	calibGraphs  = map[calibKey]*calibEntry{}
	trafficCache = map[trafficKey][]float64{}
)

// normCalibKey applies the same defaulting Kronecker does, so callers
// that spell EdgeFactor 0 and 16 share an entry.
func normCalibKey(cfg KroneckerConfig) calibKey {
	ef := cfg.EdgeFactor
	if ef == 0 {
		ef = 16
	}
	return calibKey{scale: cfg.Scale, edgeFactor: ef, seed: cfg.Seed}
}

// CalibrationGraph returns the built (symmetrized CSR) Kronecker graph
// for cfg, generating it on first use and caching it for the life of the
// process. The result is shared and must not be mutated. Safe for
// concurrent use; concurrent first calls build the graph exactly once.
func CalibrationGraph(cfg KroneckerConfig) *Graph {
	key := normCalibKey(cfg)
	calibMu.Lock()
	e := calibGraphs[key]
	if e == nil {
		e = &calibEntry{}
		calibGraphs[key] = e
	}
	calibMu.Unlock()
	e.once.Do(func() {
		edges := Kronecker(KroneckerConfig{Scale: key.scale, EdgeFactor: key.edgeFactor, Seed: key.seed})
		e.g = Build(1<<key.scale, edges)
	})
	return e.g
}

// CalibrationTraffic returns CalibrationGraph(cfg).ChunkTraffic(chunks),
// cached per (cfg, chunks). The returned slice is shared and must not be
// mutated. Safe for concurrent use.
func CalibrationTraffic(cfg KroneckerConfig, chunks int) []float64 {
	key := trafficKey{calibKey: normCalibKey(cfg), chunks: chunks}
	calibMu.Lock()
	if t, ok := trafficCache[key]; ok {
		calibMu.Unlock()
		return t
	}
	calibMu.Unlock()
	t := CalibrationGraph(cfg).ChunkTraffic(chunks)
	calibMu.Lock()
	if prev, ok := trafficCache[key]; ok {
		t = prev
	} else {
		trafficCache[key] = t
	}
	calibMu.Unlock()
	return t
}
