package gap

import (
	"testing"
	"testing/quick"
)

func TestKroneckerDeterministic(t *testing.T) {
	cfg := KroneckerConfig{Scale: 10, EdgeFactor: 16, Seed: 7}
	a, b := Kronecker(cfg), Kronecker(cfg)
	if len(a) != len(b) || len(a) != 16<<10 {
		t.Fatalf("edge counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

// Kronecker graphs are power law: a small fraction of vertices carries a
// large fraction of edges ("Power-law graphs have locality", §5.2.3).
func TestKroneckerSkew(t *testing.T) {
	edges := Kronecker(KroneckerConfig{Scale: 14, EdgeFactor: 16, Seed: 3})
	g := Build(1<<14, edges)
	if skew := g.DegreeSkew(0.01); skew < 0.15 {
		t.Errorf("top 1%% of vertices carry %.2f of edges, want power-law concentration", skew)
	}
	if skew := g.DegreeSkew(0.10); skew < 0.4 {
		t.Errorf("top 10%% of vertices carry %.2f of edges", skew)
	}
	// Hubs cluster at low ids: the first chunk outweighs the last.
	tr := g.ChunkTraffic(64)
	if tr[0] < 4*tr[63] {
		t.Errorf("id-order locality missing: first chunk %.4f vs last %.4f", tr[0], tr[63])
	}
}

func TestBuildCSR(t *testing.T) {
	// Triangle plus a pendant vertex; one self loop dropped.
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 3}}
	g := Build(4, edges)
	if g.NumEdges() != 8 {
		t.Fatalf("directed entries = %d, want 8 (symmetrized, loop dropped)", g.NumEdges())
	}
	if g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(2), g.Degree(3))
	}
	found := false
	for _, n := range g.Adj(3) {
		if n == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("symmetrized edge 3→2 missing")
	}
}

// bcOracle computes betweenness via the pair-counting formula
// BC(v) = Σ_{s≠v≠t} [d(s,v)+d(v,t)=d(s,t)] σ_sv σ_vt / σ_st,
// independent of the Brandes implementation.
func bcOracle(g *Graph) []float64 {
	n := g.N
	dist := make([][]int32, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		d := make([]int32, n)
		sg := make([]float64, n)
		for i := range d {
			d[i] = -1
		}
		d[s], sg[s] = 0, 1
		queue := []uint32{uint32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj(u) {
				if d[v] < 0 {
					d[v] = d[u] + 1
					queue = append(queue, v)
				}
				if d[v] == d[u]+1 {
					sg[v] += sg[u]
				}
			}
		}
		dist[s], sigma[s] = d, sg
	}
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			if s == tt || dist[s][tt] < 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == tt {
					continue
				}
				if dist[s][v] >= 0 && dist[v][tt] >= 0 && dist[s][v]+dist[v][tt] == dist[s][tt] {
					bc[v] += sigma[s][v] * sigma[v][tt] / sigma[s][tt]
				}
			}
		}
	}
	return bc
}

// Brandes matches the independent pair-counting oracle on small graphs.
func TestBCMatchesOracle(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		edges := Kronecker(KroneckerConfig{Scale: 5, EdgeFactor: 4, Seed: seed})
		g := Build(1<<5, edges)
		got := BCExact(g)
		want := bcOracle(g)
		for v := range got {
			diff := got[v] - want[v]
			if diff < -1e-6 || diff > 1e-6 {
				t.Fatalf("seed %d vertex %d: Brandes %.6f != oracle %.6f", seed, v, got[v], want[v])
			}
		}
	}
}

// Property: BC scores are non-negative and pendant vertices score zero.
func TestBCProperties(t *testing.T) {
	f := func(seed uint64) bool {
		edges := Kronecker(KroneckerConfig{Scale: 4, EdgeFactor: 3, Seed: seed})
		g := Build(1<<4, edges)
		scores := BCExact(g)
		for v, s := range scores {
			if s < -1e-9 {
				return false
			}
			if g.Degree(uint32(v)) <= 1 && s > 1e-9 {
				return false // a degree-≤1 vertex lies on no shortest path
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The path graph 0-1-2-3-4: middle vertex lies on the most shortest paths.
func TestBCPathGraph(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	g := Build(5, edges)
	bc := BCExact(g)
	// Undirected path: BC(2) = 2·(2·2) = counts both directions.
	if bc[2] <= bc[1] || bc[1] <= bc[0] {
		t.Fatalf("path BC ordering wrong: %v", bc)
	}
	if bc[0] != 0 || bc[4] != 0 {
		t.Fatalf("endpoints must score 0: %v", bc)
	}
}

func TestBCSampledDeterministic(t *testing.T) {
	edges := Kronecker(KroneckerConfig{Scale: 8, EdgeFactor: 8, Seed: 5})
	g := Build(1<<8, edges)
	a := BC(g, 5, 42)
	b := BC(g, 5, 42)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("sampled BC not deterministic")
		}
	}
}
