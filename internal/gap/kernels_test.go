package gap

import (
	"math"
	"testing"
	"testing/quick"
)

func testGraph(scale int, seed uint64) *Graph {
	edges := Kronecker(KroneckerConfig{Scale: scale, EdgeFactor: 6, Seed: seed})
	return Build(1<<scale, edges)
}

// bfsOracle computes hop distances by textbook queue BFS.
func bfsOracle(g *Graph, src uint32) []int32 {
	d := make([]int32, g.N)
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	q := []uint32{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.Adj(u) {
			if d[v] < 0 {
				d[v] = d[u] + 1
				q = append(q, v)
			}
		}
	}
	return d
}

func TestBFSParentTreeValid(t *testing.T) {
	g := testGraph(8, 3)
	src := SampleSources(g, 1, 1)[0]
	parent := BFS(g, src)
	want := bfsOracle(g, src)
	depth := BFSDepths(g, src, parent)
	for v := 0; v < g.N; v++ {
		if (parent[v] < 0) != (want[v] < 0) {
			t.Fatalf("vertex %d reachability mismatch", v)
		}
		if depth[v] != want[v] {
			t.Fatalf("vertex %d depth %d, oracle %d", v, depth[v], want[v])
		}
		if parent[v] >= 0 && uint32(v) != src {
			// Parent must be exactly one hop closer.
			if want[parent[v]] != want[v]-1 {
				t.Fatalf("vertex %d: parent %d not one hop closer", v, parent[v])
			}
			// And actually adjacent.
			adjacent := false
			for _, u := range g.Adj(uint32(v)) {
				if int32(u) == parent[v] {
					adjacent = true
				}
			}
			if !adjacent {
				t.Fatalf("vertex %d: parent %d not adjacent", v, parent[v])
			}
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	g := testGraph(8, 5)
	rank, iters := PageRank(g, PageRankConfig{})
	if iters == 0 {
		t.Fatal("no iterations ran")
	}
	var sum float64
	for _, r := range rank {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
	// The highest-degree vertex should outrank the median vertex.
	var hub uint32
	for v := 0; v < g.N; v++ {
		if g.Degree(uint32(v)) > g.Degree(hub) {
			hub = uint32(v)
		}
	}
	above := 0
	for _, r := range rank {
		if rank[hub] >= r {
			above++
		}
	}
	if float64(above)/float64(g.N) < 0.99 {
		t.Fatalf("hub vertex rank not near top (beats %d/%d)", above, g.N)
	}
}

// PageRank on a 3-cycle: perfect symmetry means uniform ranks.
func TestPageRankSymmetric(t *testing.T) {
	g := Build(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	rank, _ := PageRank(g, PageRankConfig{Tolerance: 1e-12})
	for _, r := range rank {
		if math.Abs(r-1.0/3) > 1e-9 {
			t.Fatalf("asymmetric ranks on a cycle: %v", rank)
		}
	}
}

// ccOracle labels components by union-find.
func ccOracle(g *Graph) []uint32 {
	parent := make([]uint32, g.N)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Adj(uint32(v)) {
			a, b := find(uint32(v)), find(u)
			if a != b {
				if a < b {
					parent[b] = a
				} else {
					parent[a] = b
				}
			}
		}
	}
	out := make([]uint32, g.N)
	for v := range out {
		out[v] = find(uint32(v))
	}
	return out
}

func TestConnectedComponentsMatchUnionFind(t *testing.T) {
	f := func(seed uint64) bool {
		g := testGraph(6, seed)
		got := ConnectedComponents(g)
		want := ccOracle(g)
		// Labels must induce the same partition; both use min-id
		// representatives so they match exactly.
		for v := range got {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// tcOracle counts triangles by brute force over vertex triples.
func tcOracle(g *Graph) int64 {
	has := make(map[uint64]bool)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Adj(uint32(v)) {
			if u != uint32(v) {
				has[uint64(v)<<32|uint64(u)] = true
			}
		}
	}
	edge := func(a, b int) bool { return has[uint64(a)<<32|uint64(b)] }
	var n int64
	for a := 0; a < g.N; a++ {
		for b := a + 1; b < g.N; b++ {
			if !edge(a, b) {
				continue
			}
			for c := b + 1; c < g.N; c++ {
				if edge(a, c) && edge(b, c) {
					n++
				}
			}
		}
	}
	return n
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := testGraph(5, seed)
		got := TriangleCount(g)
		want := tcOracle(g)
		if got != want {
			t.Fatalf("seed %d: TriangleCount = %d, brute force %d", seed, got, want)
		}
	}
}

func TestTriangleCountKnown(t *testing.T) {
	// K4 has 4 triangles.
	g := Build(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if got := TriangleCount(g); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	// A path has none.
	p := Build(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if got := TriangleCount(p); got != 0 {
		t.Fatalf("path triangles = %d, want 0", got)
	}
}

func TestSampleSourcesValid(t *testing.T) {
	g := testGraph(8, 9)
	srcs := SampleSources(g, 10, 3)
	if len(srcs) != 10 {
		t.Fatalf("sources = %d", len(srcs))
	}
	for _, s := range srcs {
		if g.Degree(s) == 0 {
			t.Fatal("sampled isolated vertex")
		}
	}
	// Deterministic.
	again := SampleSources(g, 10, 3)
	for i := range srcs {
		if srcs[i] != again[i] {
			t.Fatal("sources not deterministic")
		}
	}
}
