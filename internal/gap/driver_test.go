package gap_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gap"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/memmode"
	"github.com/tieredmem/hemem/internal/nimble"
	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

// runBC runs shortened BC iterations under mgr and returns the driver and
// machine.
func runBC(t *testing.T, mgr machine.Manager, scale, iters int) (*gap.Driver, *machine.Machine) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(), mgr)
	d := gap.NewDriver(m, gap.DriverConfig{
		Scale: scale, Iterations: iters, EdgeVisitScale: 0.05, Seed: 2,
	})
	m.Warm()
	m.RunUntilDone(3000 * sim.Second)
	if d.Iterations() != iters {
		t.Fatalf("%s: completed %d/%d iterations", mgr.Name(), d.Iterations(), iters)
	}
	return d, m
}

func meanNs(ts []int64) float64 {
	var s int64
	for _, t := range ts {
		s += t
	}
	return float64(s) / float64(len(ts))
}

// Figure 14 (2^28 vertices, fits DRAM): HeMem ≈ DRAM-only; MM suffers
// badly (paper: HeMem 93% faster on average); Nimble lands between,
// beating MM (paper: +32% over MM) but trailing HeMem.
func TestFig14RelativeOrder(t *testing.T) {
	const scale, iters = 28, 6
	dram, _ := runBC(t, xmem.DRAMFirst(), scale, iters)
	hemem, _ := runBC(t, core.New(core.DefaultConfig()), scale, iters)
	nb, _ := runBC(t, nimble.New(), scale, iters)
	mm, _ := runBC(t, memmode.New(), scale, iters)

	tD := meanNs(dram.IterationTimes())
	tH := meanNs(hemem.IterationTimes())
	tN := meanNs(nb.IterationTimes())
	tM := meanNs(mm.IterationTimes())

	if tH > tD*1.1 {
		t.Errorf("HeMem (%.1fs) should match DRAM-only (%.1fs)", tH/1e9, tD/1e9)
	}
	if tM < tH*1.5 {
		t.Errorf("MM (%.1fs) should be well above HeMem (%.1fs); paper: +93%%", tM/1e9, tH/1e9)
	}
	if tN <= tH || tN >= tM {
		t.Errorf("Nimble (%.1fs) should sit between HeMem (%.1fs) and MM (%.1fs)", tN/1e9, tH/1e9, tM/1e9)
	}
}

// Figure 15 (2^29 vertices, exceeds DRAM): HeMem fastest; Nimble +36%-ish;
// MM slowest; PT-Async starts slower and converges.
func TestFig15RelativeOrder(t *testing.T) {
	const scale, iters = 29, 6
	hemem, _ := runBC(t, core.New(core.DefaultConfig()), scale, iters)
	pt, _ := runBC(t, ptscan.New(ptscan.HeMemPTAsync()), scale, iters)
	nb, _ := runBC(t, nimble.New(), scale, iters)
	mm, _ := runBC(t, memmode.New(), scale, iters)

	tH := meanNs(hemem.IterationTimes())
	tP := meanNs(pt.IterationTimes())
	tN := meanNs(nb.IterationTimes())
	tM := meanNs(mm.IterationTimes())

	if tN <= tH {
		t.Errorf("Nimble (%.1fs) should trail HeMem (%.1fs); paper: +36%%", tN/1e9, tH/1e9)
	}
	if tM <= tN {
		t.Errorf("MM (%.1fs) should be slowest (Nimble %.1fs); paper: HeMem +58%% over MM", tM/1e9, tN/1e9)
	}
	if tP <= tH {
		t.Errorf("PT-Async (%.1fs) should trail HeMem (%.1fs)", tP/1e9, tH/1e9)
	}
	// PT-Async's first iteration is its worst (extra migrations while it
	// identifies the hot graph parts, §5.2.3).
	ts := pt.IterationTimes()
	if ts[0] < ts[len(ts)-1] {
		t.Errorf("PT-Async first iteration (%.1fs) should be ≥ last (%.1fs)",
			float64(ts[0])/1e9, float64(ts[len(ts)-1])/1e9)
	}
}

// Figure 16: NVM writes per BC iteration on 2^29. MM writes NVM constantly
// (dirty-line evictions); HeMem identifies the write-hot vertices and
// makes ~10× fewer writes.
func TestFig16NVMWear(t *testing.T) {
	const scale, iters = 29, 6
	hemem, _ := runBC(t, core.New(core.DefaultConfig()), scale, iters)
	mm, _ := runBC(t, memmode.New(), scale, iters)

	hw := hemem.IterationNVMWrites()
	mw := mm.IterationNVMWrites()
	last := len(hw) - 1
	if mw[last] < 5*hw[last] {
		t.Errorf("steady-state NVM writes: MM %.1fGB vs HeMem %.1fGB, want ~10×",
			mw[last]/float64(sim.GB), hw[last]/float64(sim.GB))
	}
	// MM's writes are roughly constant across iterations.
	if mw[last] < mw[0]*0.8 || mw[last] > mw[0]*1.2 {
		t.Errorf("MM wear should be constant: %.1f → %.1f GB", mw[0]/float64(sim.GB), mw[last]/float64(sim.GB))
	}
}

// HeMem keeps the write-hot hub vertices in DRAM at 2^29.
func TestHubVerticesMigrateToDRAM(t *testing.T) {
	d, _ := runBC(t, core.New(core.DefaultConfig()), 29, 6)
	if f := d.HotVertexPages().Frac(vm.TierDRAM); f < 0.9 {
		t.Errorf("hub vertex pages DRAM fraction = %.2f", f)
	}
}

// The whole graph in NVM is far slower than any tiering system (the paper
// omits it from the figure at 16–17× worse).
func TestNVMOnlyFarWorse(t *testing.T) {
	const scale, iters = 28, 3
	hemem, _ := runBC(t, core.New(core.DefaultConfig()), scale, iters)
	nvm, _ := runBC(t, xmem.NVMOnly(), scale, iters)
	tH := meanNs(hemem.IterationTimes())
	tN := meanNs(nvm.IterationTimes())
	if tN < tH*3 {
		t.Errorf("NVM-only (%.1fs) should be ≫ HeMem (%.1fs); paper: 16×", tN/1e9, tH/1e9)
	}
}
