package gap

import "github.com/tieredmem/hemem/internal/sim"

// BC computes approximate betweenness centrality by Brandes' algorithm
// from iterations randomly chosen source vertices, exactly as the paper's
// experiment runs it ("15 iterations of the betweenness centrality
// algorithm ... which we choose randomly on each iteration").
//
// Each iteration is a forward BFS computing shortest-path counts (sigma)
// and depths, followed by a backward dependency accumulation (delta).
func BC(g *Graph, iterations int, seed uint64) []float64 {
	scores := make([]float64, g.N)
	rng := sim.NewRand(seed ^ 0xbc)
	for it := 0; it < iterations; it++ {
		src := uint32(rng.Intn(g.N))
		BCIteration(g, src, scores)
	}
	return scores
}

// BCIteration runs one Brandes iteration from src, accumulating into
// scores.
func BCIteration(g *Graph, src uint32, scores []float64) {
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	sigma := make([]float64, g.N)
	delta := make([]float64, g.N)

	// Forward BFS recording the level order.
	order := make([]uint32, 0, g.N)
	frontier := []uint32{src}
	depth[src] = 0
	sigma[src] = 1
	for len(frontier) > 0 {
		var next []uint32
		for _, u := range frontier {
			order = append(order, u)
			du := depth[u]
			for _, v := range g.Adj(u) {
				if depth[v] < 0 {
					depth[v] = du + 1
					next = append(next, v)
				}
				if depth[v] == du+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		frontier = next
	}

	// Backward accumulation in reverse BFS order.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		du := depth[u]
		coeff := (1 + delta[u]) / sigma[u]
		for _, v := range g.Adj(u) {
			if depth[v] == du-1 {
				delta[v] += sigma[v] * coeff
			}
		}
	}
	for v := 0; v < g.N; v++ {
		if uint32(v) != src {
			scores[v] += delta[v]
		}
	}
}

// BCExact computes exact betweenness centrality from every source — the
// O(VE) oracle used by tests on small graphs.
func BCExact(g *Graph) []float64 {
	scores := make([]float64, g.N)
	for s := 0; s < g.N; s++ {
		BCIteration(g, uint32(s), scores)
	}
	return scores
}
