package gap

import (
	"sort"

	"github.com/tieredmem/hemem/internal/sim"
)

// The GAP benchmark suite ships six kernels; the paper's evaluation uses
// betweenness centrality (bc.go), and this file implements the others that
// make the substrate a usable graph library: BFS, PageRank, connected
// components, and triangle counting.

// BFS runs a breadth-first search from src and returns the parent array
// (-1 for unreached vertices, src's parent is itself).
func BFS(g *Graph, src uint32) []int32 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int32(src)
	frontier := []uint32{src}
	for len(frontier) > 0 {
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Adj(u) {
				if parent[v] < 0 {
					parent[v] = int32(u)
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return parent
}

// BFSDepths converts a parent array into hop distances (-1 unreached).
func BFSDepths(g *Graph, src uint32, parent []int32) []int32 {
	depth := make([]int32, len(parent))
	for v := range depth {
		depth[v] = -1
	}
	depth[src] = 0
	// Vertices resolve in waves; parents always resolve before children,
	// so a fixed-point loop terminates in diameter iterations.
	changed := true
	for changed {
		changed = false
		for v := range parent {
			if depth[v] >= 0 || parent[v] < 0 {
				continue
			}
			if d := depth[parent[v]]; d >= 0 {
				depth[v] = d + 1
				changed = true
			}
		}
	}
	return depth
}

// PageRankConfig parameterizes PageRank.
type PageRankConfig struct {
	// Damping is the damping factor (0.85 standard).
	Damping float64
	// Tolerance stops iteration when the L1 delta falls below it.
	Tolerance float64
	// MaxIters bounds the iteration count.
	MaxIters int
}

// PageRank computes ranks by power iteration with the standard
// dangling-mass redistribution; ranks sum to 1.
func PageRank(g *Graph, cfg PageRankConfig) ([]float64, int) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 1e-7
	}
	if cfg.MaxIters == 0 {
		cfg.MaxIters = 100
	}
	n := float64(g.N)
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for v := range rank {
		rank[v] = 1 / n
	}
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		base := (1 - cfg.Damping) / n
		var dangling float64
		for v := 0; v < g.N; v++ {
			if g.Degree(uint32(v)) == 0 {
				dangling += rank[v]
			}
			next[v] = base
		}
		share := cfg.Damping * dangling / n
		for v := 0; v < g.N; v++ {
			next[v] += share
		}
		for v := 0; v < g.N; v++ {
			d := g.Degree(uint32(v))
			if d == 0 {
				continue
			}
			out := cfg.Damping * rank[v] / float64(d)
			for _, u := range g.Adj(uint32(v)) {
				next[u] += out
			}
		}
		var delta float64
		for v := range rank {
			d := next[v] - rank[v]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		rank, next = next, rank
		if delta < cfg.Tolerance {
			iters++
			break
		}
	}
	return rank, iters
}

// ConnectedComponents labels each vertex with its component id (the
// smallest vertex id in the component), by label propagation.
func ConnectedComponents(g *Graph) []uint32 {
	label := make([]uint32, g.N)
	for v := range label {
		label[v] = uint32(v)
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.N; v++ {
			for _, u := range g.Adj(uint32(v)) {
				if label[u] < label[v] {
					label[v] = label[u]
					changed = true
				}
			}
		}
	}
	return label
}

// TriangleCount returns the number of distinct triangles. Duplicate edges
// are deduplicated first (Kronecker multigraphs repeat edges).
func TriangleCount(g *Graph) int64 {
	// Build deduplicated sorted adjacency restricted to higher ids: each
	// triangle (a<b<c) is counted exactly once at its lowest vertex.
	adj := make([][]uint32, g.N)
	for v := 0; v < g.N; v++ {
		var list []uint32
		var last uint32 = ^uint32(0)
		for _, u := range sortedAdj(g, uint32(v)) {
			if u == last || u <= uint32(v) {
				last = u
				continue
			}
			list = append(list, u)
			last = u
		}
		adj[v] = list
	}
	var count int64
	for a := 0; a < g.N; a++ {
		for _, b := range adj[a] {
			count += intersectCount(adj[a], adj[b])
		}
	}
	return count
}

// sortedAdj returns v's neighbors in ascending order. Short lists (the
// common case at average degree 16) use insertion sort; hub vertices fall
// back to the library sort.
func sortedAdj(g *Graph, v uint32) []uint32 {
	out := append([]uint32(nil), g.Adj(v)...)
	if len(out) > 64 {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// intersectCount counts common elements of two ascending lists.
func intersectCount(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// SampleSources returns k deterministic source vertices with non-zero
// degree, the way GAP picks BFS/BC sources.
func SampleSources(g *Graph, k int, seed uint64) []uint32 {
	rng := sim.NewRand(seed ^ 0x57c)
	out := make([]uint32, 0, k)
	for len(out) < k {
		v := uint32(rng.Intn(g.N))
		if g.Degree(v) > 0 {
			out = append(out, v)
		}
	}
	return out
}
