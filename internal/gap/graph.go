// Package gap implements the pieces of the GAP benchmark suite the paper
// evaluates (§5.2.3): a Graph500-style Kronecker generator producing
// power-law graphs of average degree 16, a CSR graph representation, and
// Brandes' betweenness-centrality (BC) algorithm.
//
// The generator and BC are real implementations used by tests and the
// examples; Driver (driver.go) maps their memory footprint and per-
// iteration traffic onto the simulated machine for Figures 14–16. Vertex
// ids are not permuted after generation — as in GAP, high-degree vertices
// cluster at low ids, which is the page-level locality tiered memory
// managers exploit ("Neighbors to vertices are likely located on the same
// memory page", §5.2.3).
package gap

import (
	"sort"

	"github.com/tieredmem/hemem/internal/sim"
)

// Edge is one directed edge.
type Edge struct {
	Src, Dst uint32
}

// KroneckerConfig parameterizes the generator.
type KroneckerConfig struct {
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is edges per vertex (Graph500 and the paper use 16).
	EdgeFactor int
	// Seed makes generation deterministic.
	Seed uint64
}

// Kronecker generates edgeFactor·2^scale edges with the Graph500
// initiator probabilities (A=0.57, B=0.19, C=0.19, D=0.05).
func Kronecker(cfg KroneckerConfig) []Edge {
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 16
	}
	n := 1 << cfg.Scale
	m := n * cfg.EdgeFactor
	rng := sim.NewRand(cfg.Seed ^ 0x6b726f6e)
	edges := make([]Edge, m)
	const a, b, c = 0.57, 0.19, 0.19
	for i := range edges {
		var src, dst uint32
		for bit := 0; bit < cfg.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// both bits 0
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = Edge{Src: src, Dst: dst}
	}
	return edges
}

// Graph is a symmetrized CSR graph.
type Graph struct {
	N         int
	Offsets   []int64
	Neighbors []uint32
}

// Build constructs a symmetrized CSR graph from a directed edge list,
// dropping self-loops and keeping duplicate edges (as GAP's default
// builder does for Kronecker inputs).
func Build(n int, edges []Edge) *Graph {
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		deg[e.Src+1]++
		deg[e.Dst+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	g := &Graph{N: n, Offsets: deg, Neighbors: make([]uint32, deg[n])}
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		g.Neighbors[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
		g.Neighbors[cursor[e.Dst]] = e.Src
		cursor[e.Dst]++
	}
	return g
}

// Degree returns the (symmetrized) degree of vertex v.
func (g *Graph) Degree(v uint32) int64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// Adj returns the neighbor slice of v.
func (g *Graph) Adj(v uint32) []uint32 {
	return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
}

// NumEdges returns the number of directed neighbor entries.
func (g *Graph) NumEdges() int64 { return int64(len(g.Neighbors)) }

// DegreeSkew summarises the traffic concentration of the graph: the
// fraction of edge endpoints incident to the top frac of vertices by
// degree. Power-law graphs concentrate heavily (the locality the paper's
// page-based managers exploit).
func (g *Graph) DegreeSkew(frac float64) float64 {
	degs := make([]int64, g.N)
	var total int64
	for v := 0; v < g.N; v++ {
		degs[v] = g.Degree(uint32(v))
		total += degs[v]
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] > degs[j] })
	top := int(float64(g.N) * frac)
	if top < 1 {
		top = 1
	}
	var sum int64
	for _, d := range degs[:top] {
		sum += d
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// ChunkTraffic divides the vertex range into chunks (pages, in the
// simulator's mapping) and returns each chunk's share of edge-endpoint
// traffic, in vertex-id order. Because Kronecker hubs cluster at low ids,
// early chunks carry most of the traffic.
func (g *Graph) ChunkTraffic(chunks int) []float64 {
	out := make([]float64, chunks)
	var total float64
	per := (g.N + chunks - 1) / chunks
	for v := 0; v < g.N; v++ {
		d := float64(g.Degree(uint32(v)))
		out[v/per] += d
		total += d
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}
