package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gap"
	"github.com/tieredmem/hemem/internal/kvs"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/tpcc"
)

func init() {
	register("fig13", "Figure 13: Silo TPC-C warehouse scalability", runFig13)
	register("tab3", "Table 3: FlexKVS throughput and latency", runTab3)
	register("tab4", "Table 4: FlexKVS latency with priority", runTab4)
	register("fig14", "Figure 14: GAP BC on 2^28 vertices (fits DRAM)", runFig14)
	register("fig15", "Figure 15: GAP BC on 2^29 vertices (exceeds DRAM)", runFig15)
	register("fig16", "Figure 16: NVM writes during BC on 2^29", runFig16)
}

// runFig13: TPC-C throughput over warehouse counts for four systems.
func runFig13(w io.Writer, o Opts) {
	warm := o.scale(90, 240) * sim.Second
	measure := o.scale(20, 60) * sim.Second
	systems := []namedMgr{{"MM", newMM}, {"Nimble", newNimble}, {"HeMem", newHeMem}, {"NVM(X-Mem)", newNVM}}
	counts := []int{16, 64, 216, 432, 700, 864, 1200, 1728}
	s := NewSweep("fig13", o)
	for _, wh := range counts {
		for _, sys := range systems {
			s.Cell(fmt.Sprintf("wh=%d/%s", wh, sys.name), func(CellInfo) any {
				m := machine.New(o.machineConfig(), sys.mk())
				d := tpcc.NewDriver(m, tpcc.DriverConfig{Warehouses: wh, Seed: o.seed()})
				m.Warm()
				m.Run(warm)
				d.ResetScore()
				m.Run(measure)
				return d.TPS()
			})
		}
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "warehouses\tMM\tNimble\tHeMem\tNVM(X-Mem)")
	i := 0
	for _, wh := range counts {
		fmt.Fprintf(tw, "%d", wh)
		for range systems {
			fmt.Fprintf(tw, "\t%.0f", f64(res[i]))
			i++
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "tx/s, 16 threads; paper: HeMem up to +13% over MM and +82% over Nimble while warehouses fit DRAM (864 max); X-Mem at 32% of HeMem")
	fmt.Fprintln(w, "known deviation: beyond 864 warehouses the paper has MM +17% over HeMem; our 64B-writeback amplification model keeps MM below HeMem there")
}

// runTab3: FlexKVS throughput at three working set sizes plus latency
// percentiles at 30% load on the 700 GB set.
func runTab3(w io.Writer, o Opts) {
	// HeMem's identification of the 140 GB hot item set through 4 KB-value
	// sampling converges slowly; give it a long warm-up even in quick mode.
	warm := o.scale(300, 600) * sim.Second
	measure := o.scale(30, 60) * sim.Second
	systems := []namedMgr{{"MM", newMM}, {"HeMem", newHeMem}, {"Nimble", newNimble}, {"NVM", newNVM}}
	sizes := []int64{16, 128, 700}

	s := NewSweep("tab3", o)
	type rowIdx struct {
		mops [3]int
		lat  int
	}
	var idx []rowIdx
	for _, sys := range systems {
		var ri rowIdx
		ri.lat = -1
		for j, ws := range sizes {
			ri.mops[j] = s.Cell(fmt.Sprintf("%s/ws=%dGB", sys.name, ws), func(CellInfo) any {
				m := machine.New(o.machineConfig(), sys.mk())
				d := kvs.NewDriver(m, kvs.DriverConfig{
					WorkingSet: ws * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: o.seed(),
				})
				m.Warm()
				m.Run(warm)
				d.ResetScore()
				m.Run(measure)
				return d.Mops()
			})
		}
		// Latency at 30% load on the 700 GB working set (the paper
		// reports it for MM and HeMem).
		if sys.name == "MM" || sys.name == "HeMem" {
			ri.lat = s.Cell(sys.name+"/latency", func(CellInfo) any {
				m := machine.New(o.machineConfig(), sys.mk())
				d := kvs.NewDriver(m, kvs.DriverConfig{
					WorkingSet: 700 * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9,
					NetBase: kvs.NetBaseTAS, Seed: o.seed(),
				})
				m.Warm()
				m.Run(warm)
				d.SetTargetRate(0.3 * 8 / (10 * 1000))
				m.Run(10 * sim.Second)
				d.ResetScore()
				m.Run(measure)
				lat := d.Latency()
				var qs [4]float64
				for i, q := range []float64{0.5, 0.9, 0.99, 0.999} {
					qs[i] = lat.Quantile(q)
				}
				return qs
			})
		}
		idx = append(idx, ri)
	}
	res := s.Gather()

	tw := table(w)
	fmt.Fprintln(tw, "System\t16GB\t128GB\t700GB\t50p\t90p\t99p\t99.9p")
	for i, sys := range systems {
		fmt.Fprintf(tw, "%s", sys.name)
		for _, c := range idx[i].mops {
			fmt.Fprintf(tw, "\t%.2f", f64(res[c]))
		}
		if idx[i].lat >= 0 {
			for _, q := range res[idx[i].lat].([4]float64) {
				fmt.Fprintf(tw, "\t%.0f", q/1000)
			}
		} else {
			fmt.Fprint(tw, "\t-\t-\t-\t-")
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "Mops/s and µs; paper: MM 1.09/1.03/0.93 Mops, 35/44/53/63 µs; HeMem 1.14/1.11/1.06 Mops, 20/26/34/49 µs")
}

// runTab4: two FlexKVS instances, one priority (pinned in DRAM under
// HeMem), one regular, on the Linux TCP stack.
func runTab4(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(20, 60) * sim.Second

	type latPair struct {
		prio, reg *sim.Histogram
	}
	run := func(mk func() machine.Manager, pin bool) latPair {
		mgr := mk()
		m := machine.New(o.machineConfig(), mgr)
		prioD := kvs.NewDriver(m, kvs.DriverConfig{
			Name: "priority", WorkingSet: 16 * sim.GB, ServerThreads: 4,
			NetBase: kvs.NetBaseLinux, Seed: o.seed(),
			TargetRate: 0.5 * 4 / (26 * 1000),
		})
		// The regular instance runs closed-loop with a uniform 500 GB
		// working set, as the paper drives it.
		regD := kvs.NewDriver(m, kvs.DriverConfig{
			Name: "regular", WorkingSet: 500 * sim.GB, ServerThreads: 8,
			NetBase: kvs.NetBaseLinux, Seed: o.seed() + 1,
		})
		if pin {
			h := mgr.(*core.HeMem)
			h.PinRegion(prioD.LogRegion())
			h.PinRegion(prioD.TableRegion())
		}
		m.Warm()
		m.Run(warm)
		prioD.ResetScore()
		regD.ResetScore()
		m.Run(measure)
		return latPair{prioD.Latency(), regD.Latency()}
	}

	s := NewSweep("tab4", o)
	s.Cell("HeMem", func(CellInfo) any { return run(newHeMem, true) })
	s.Cell("MM", func(CellInfo) any { return run(newMM, false) })
	res := s.Gather()

	tw := table(w)
	fmt.Fprintln(tw, "µs\tPriority 50p\t99p\t99.9p\tRegular 50p\t99p\t99.9p")
	prow := func(name string, lp latPair) {
		p, r := lp.prio, lp.reg
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", name,
			p.Quantile(0.5)/1000, p.Quantile(0.99)/1000, p.Quantile(0.999)/1000,
			r.Quantile(0.5)/1000, r.Quantile(0.99)/1000, r.Quantile(0.999)/1000)
	}
	prow("HeMem", res[0].(latPair))
	prow("MM", res[1].(latPair))
	tw.Flush()
	fmt.Fprintln(w, "paper: priority p50 86 (HeMem) vs 127 (MM) µs — 47% better — with no tangible impact on the regular instance")
}

// bcRun executes the BC driver under mgr and returns it.
func bcRun(o Opts, mgr machine.Manager, scale, iters int, visitScale float64, seed uint64) *gap.Driver {
	m := machine.New(o.machineConfig(), mgr)
	d := gap.NewDriver(m, gap.DriverConfig{
		Scale: scale, Iterations: iters, EdgeVisitScale: visitScale, Seed: seed,
	})
	m.Warm()
	m.RunUntilDone(20000 * sim.Second)
	return d
}

// runFig14: per-iteration BC runtimes at 2^28 (fits DRAM).
func runFig14(w io.Writer, o Opts) {
	iters := int(o.scale(6, 15))
	visit := 0.05
	if o.Full {
		visit = 1
	}
	systems := []namedMgr{{"DRAM", newDRAM}, {"HeMem", newHeMem}, {"Nimble", newNimble}, {"MM", newMM}}
	printIterations(w, NewSweep("fig14", o), 28, iters, visit, systems,
		"seconds per iteration; paper: HeMem ~= DRAM, 93% faster than MM on average; Nimble between (beats MM by 32%)")
}

// runFig15: per-iteration BC runtimes at 2^29 (exceeds DRAM).
func runFig15(w io.Writer, o Opts) {
	iters := int(o.scale(6, 15))
	visit := 0.05
	if o.Full {
		visit = 1
	}
	systems := []namedMgr{{"HeMem", newHeMem}, {"HeMem-PT-Async", newPTAsync}, {"Nimble", newNimble}, {"MM", newMM}}
	printIterations(w, NewSweep("fig15", o), 29, iters, visit, systems,
		"seconds per iteration; paper: HeMem fastest (58% over MM); PT-Async slow early then equal; Nimble +36% vs HeMem")
}

func printIterations(w io.Writer, s *Sweep, scale, iters int, visit float64, systems []namedMgr, footer string) {
	o := s.o
	for _, sys := range systems {
		s.Cell(sys.name, func(CellInfo) any {
			return bcRun(o, sys.mk(), scale, iters, visit, o.seed()).IterationTimes()
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprint(tw, "iteration")
	for _, sys := range systems {
		fmt.Fprintf(tw, "\t%s", sys.name)
	}
	fmt.Fprintln(tw)
	for it := 0; it < iters; it++ {
		fmt.Fprintf(tw, "%d", it+1)
		for i := range systems {
			fmt.Fprintf(tw, "\t%.1f", float64(res[i].([]int64)[it])/1e9)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, footer)
}

// runFig16: NVM write bytes per BC iteration at 2^29.
func runFig16(w io.Writer, o Opts) {
	iters := int(o.scale(6, 15))
	visit := 0.05
	if o.Full {
		visit = 1
	}
	systems := []namedMgr{{"MM", newMM}, {"HeMem-PEBS", newHeMem}, {"HeMem-PT-Async", newPTAsync}}
	s := NewSweep("fig16", o)
	for _, sys := range systems {
		s.Cell(sys.name, func(CellInfo) any {
			return bcRun(o, sys.mk(), 29, iters, visit, o.seed()).IterationNVMWrites()
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprint(tw, "iteration")
	for _, sys := range systems {
		fmt.Fprintf(tw, "\t%s", sys.name)
	}
	fmt.Fprintln(tw)
	for it := 0; it < iters; it++ {
		fmt.Fprintf(tw, "%d", it+1)
		for i := range systems {
			fmt.Fprintf(tw, "\t%.2f", res[i].([]float64)[it]/float64(sim.GB))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GB written to NVM per iteration (log scale in the paper); paper: MM constant and ~10x HeMem; PT-Async high early, converging to PEBS")
}
