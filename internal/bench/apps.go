package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gap"
	"github.com/tieredmem/hemem/internal/kvs"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/tpcc"
)

func init() {
	register("fig13", "Figure 13: Silo TPC-C warehouse scalability", runFig13)
	register("tab3", "Table 3: FlexKVS throughput and latency", runTab3)
	register("tab4", "Table 4: FlexKVS latency with priority", runTab4)
	register("fig14", "Figure 14: GAP BC on 2^28 vertices (fits DRAM)", runFig14)
	register("fig15", "Figure 15: GAP BC on 2^29 vertices (exceeds DRAM)", runFig15)
	register("fig16", "Figure 16: NVM writes during BC on 2^29", runFig16)
}

// runFig13: TPC-C throughput over warehouse counts for four systems.
func runFig13(w io.Writer, o Opts) {
	warm := o.scale(90, 240) * sim.Second
	measure := o.scale(20, 60) * sim.Second
	systems := []struct {
		name string
		mk   func() machine.Manager
	}{{"MM", newMM}, {"Nimble", newNimble}, {"HeMem", newHeMem}, {"NVM", newNVM}}
	tw := table(w)
	fmt.Fprintln(tw, "warehouses\tMM\tNimble\tHeMem\tNVM(X-Mem)")
	counts := []int{16, 64, 216, 432, 700, 864, 1200, 1728}
	for _, wh := range counts {
		fmt.Fprintf(tw, "%d", wh)
		for _, s := range systems {
			m := machine.New(machine.DefaultConfig(), s.mk())
			d := tpcc.NewDriver(m, tpcc.DriverConfig{Warehouses: wh, Seed: o.seed()})
			m.Warm()
			m.Run(warm)
			d.ResetScore()
			m.Run(measure)
			fmt.Fprintf(tw, "\t%.0f", d.TPS())
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "tx/s, 16 threads; paper: HeMem up to +13% over MM and +82% over Nimble while warehouses fit DRAM (864 max); X-Mem at 32% of HeMem")
	fmt.Fprintln(w, "known deviation: beyond 864 warehouses the paper has MM +17% over HeMem; our 64B-writeback amplification model keeps MM below HeMem there")
}

// runTab3: FlexKVS throughput at three working set sizes plus latency
// percentiles at 30% load on the 700 GB set.
func runTab3(w io.Writer, o Opts) {
	// HeMem's identification of the 140 GB hot item set through 4 KB-value
	// sampling converges slowly; give it a long warm-up even in quick mode.
	warm := o.scale(300, 600) * sim.Second
	measure := o.scale(30, 60) * sim.Second
	systems := []struct {
		name string
		mk   func() machine.Manager
	}{{"MM", newMM}, {"HeMem", newHeMem}, {"Nimble", newNimble}, {"NVM", newNVM}}

	tw := table(w)
	fmt.Fprintln(tw, "System\t16GB\t128GB\t700GB\t50p\t90p\t99p\t99.9p")
	for _, s := range systems {
		fmt.Fprintf(tw, "%s", s.name)
		for _, ws := range []int64{16, 128, 700} {
			m := machine.New(machine.DefaultConfig(), s.mk())
			d := kvs.NewDriver(m, kvs.DriverConfig{
				WorkingSet: ws * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			d.ResetScore()
			m.Run(measure)
			fmt.Fprintf(tw, "\t%.2f", d.Mops())
		}
		// Latency at 30% load on the 700 GB working set (the paper
		// reports it for MM and HeMem).
		if s.name == "MM" || s.name == "HeMem" {
			m := machine.New(machine.DefaultConfig(), s.mk())
			d := kvs.NewDriver(m, kvs.DriverConfig{
				WorkingSet: 700 * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9,
				NetBase: kvs.NetBaseTAS, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			d.SetTargetRate(0.3 * 8 / (10 * 1000))
			m.Run(10 * sim.Second)
			d.ResetScore()
			m.Run(measure)
			lat := d.Latency()
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				fmt.Fprintf(tw, "\t%.0f", lat.Quantile(q)/1000)
			}
		} else {
			fmt.Fprint(tw, "\t-\t-\t-\t-")
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "Mops/s and µs; paper: MM 1.09/1.03/0.93 Mops, 35/44/53/63 µs; HeMem 1.14/1.11/1.06 Mops, 20/26/34/49 µs")
}

// runTab4: two FlexKVS instances, one priority (pinned in DRAM under
// HeMem), one regular, on the Linux TCP stack.
func runTab4(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(20, 60) * sim.Second

	run := func(mk func() machine.Manager, pin bool) (prio, reg *sim.Histogram) {
		mgr := mk()
		m := machine.New(machine.DefaultConfig(), mgr)
		prioD := kvs.NewDriver(m, kvs.DriverConfig{
			Name: "priority", WorkingSet: 16 * sim.GB, ServerThreads: 4,
			NetBase: kvs.NetBaseLinux, Seed: o.seed(),
			TargetRate: 0.5 * 4 / (26 * 1000),
		})
		// The regular instance runs closed-loop with a uniform 500 GB
		// working set, as the paper drives it.
		regD := kvs.NewDriver(m, kvs.DriverConfig{
			Name: "regular", WorkingSet: 500 * sim.GB, ServerThreads: 8,
			NetBase: kvs.NetBaseLinux, Seed: o.seed() + 1,
		})
		if pin {
			h := mgr.(*core.HeMem)
			h.PinRegion(prioD.LogRegion())
			h.PinRegion(prioD.TableRegion())
		}
		m.Warm()
		m.Run(warm)
		prioD.ResetScore()
		regD.ResetScore()
		m.Run(measure)
		return prioD.Latency(), regD.Latency()
	}

	hePrio, heReg := run(newHeMem, true)
	mmPrio, mmReg := run(newMM, false)

	tw := table(w)
	fmt.Fprintln(tw, "µs\tPriority 50p\t99p\t99.9p\tRegular 50p\t99p\t99.9p")
	prow := func(name string, p, r *sim.Histogram) {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", name,
			p.Quantile(0.5)/1000, p.Quantile(0.99)/1000, p.Quantile(0.999)/1000,
			r.Quantile(0.5)/1000, r.Quantile(0.99)/1000, r.Quantile(0.999)/1000)
	}
	prow("HeMem", hePrio, heReg)
	prow("MM", mmPrio, mmReg)
	tw.Flush()
	fmt.Fprintln(w, "paper: priority p50 86 (HeMem) vs 127 (MM) µs — 47% better — with no tangible impact on the regular instance")
}

// bcRun executes the BC driver under mgr and returns it.
func bcRun(mgr machine.Manager, scale, iters int, visitScale float64, seed uint64) *gap.Driver {
	m := machine.New(machine.DefaultConfig(), mgr)
	d := gap.NewDriver(m, gap.DriverConfig{
		Scale: scale, Iterations: iters, EdgeVisitScale: visitScale, Seed: seed,
	})
	m.Warm()
	m.RunUntilDone(20000 * sim.Second)
	return d
}

// runFig14: per-iteration BC runtimes at 2^28 (fits DRAM).
func runFig14(w io.Writer, o Opts) {
	iters := int(o.scale(6, 15))
	visit := 0.05
	if o.Full {
		visit = 1
	}
	systems := []struct {
		name string
		mk   func() machine.Manager
	}{{"DRAM", newDRAM}, {"HeMem", newHeMem}, {"Nimble", newNimble}, {"MM", newMM}}
	printIterations(w, o, 28, iters, visit, systems,
		"seconds per iteration; paper: HeMem ~= DRAM, 93% faster than MM on average; Nimble between (beats MM by 32%)")
}

// runFig15: per-iteration BC runtimes at 2^29 (exceeds DRAM).
func runFig15(w io.Writer, o Opts) {
	iters := int(o.scale(6, 15))
	visit := 0.05
	if o.Full {
		visit = 1
	}
	systems := []struct {
		name string
		mk   func() machine.Manager
	}{{"HeMem", newHeMem}, {"HeMem-PT-Async", newPTAsync}, {"Nimble", newNimble}, {"MM", newMM}}
	printIterations(w, o, 29, iters, visit, systems,
		"seconds per iteration; paper: HeMem fastest (58% over MM); PT-Async slow early then equal; Nimble +36% vs HeMem")
}

func printIterations(w io.Writer, o Opts, scale, iters int, visit float64, systems []struct {
	name string
	mk   func() machine.Manager
}, footer string) {
	results := make([][]int64, len(systems))
	for i, s := range systems {
		d := bcRun(s.mk(), scale, iters, visit, o.seed())
		results[i] = d.IterationTimes()
	}
	tw := table(w)
	fmt.Fprint(tw, "iteration")
	for _, s := range systems {
		fmt.Fprintf(tw, "\t%s", s.name)
	}
	fmt.Fprintln(tw)
	for it := 0; it < iters; it++ {
		fmt.Fprintf(tw, "%d", it+1)
		for i := range systems {
			fmt.Fprintf(tw, "\t%.1f", float64(results[i][it])/1e9)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, footer)
}

// runFig16: NVM write bytes per BC iteration at 2^29.
func runFig16(w io.Writer, o Opts) {
	iters := int(o.scale(6, 15))
	visit := 0.05
	if o.Full {
		visit = 1
	}
	systems := []struct {
		name string
		mk   func() machine.Manager
	}{{"MM", newMM}, {"HeMem-PEBS", newHeMem}, {"HeMem-PT-Async", newPTAsync}}
	results := make([][]float64, len(systems))
	for i, s := range systems {
		d := bcRun(s.mk(), 29, iters, visit, o.seed())
		results[i] = d.IterationNVMWrites()
	}
	tw := table(w)
	fmt.Fprint(tw, "iteration")
	for _, s := range systems {
		fmt.Fprintf(tw, "\t%s", s.name)
	}
	fmt.Fprintln(tw)
	for it := 0; it < iters; it++ {
		fmt.Fprintf(tw, "%d", it+1)
		for i := range systems {
			fmt.Fprintf(tw, "\t%.2f", results[i][it]/float64(sim.GB))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GB written to NVM per iteration (log scale in the paper); paper: MM constant and ~10x HeMem; PT-Async high early, converging to PEBS")
}
