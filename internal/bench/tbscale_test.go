package bench

import (
	"strings"
	"testing"
)

// TestTBScaleSmoke runs the quick (64 GB) tbscale variant end to end —
// both the dense fixed-step baseline and the sparse adaptive run — and
// checks the properties the experiment's table asserts: identical
// simulated outcomes, and metadata resident bytes that scale with the
// touched pages rather than the mapping. CI runs it under -race (the
// parallel sweep engine executes both cells concurrently).
func TestTBScaleSmoke(t *testing.T) {
	o := Opts{}
	dense := tbscaleRun(o, false, true)
	sparse := tbscaleRun(o, true, false)

	if dense.digest != sparse.digest {
		t.Fatalf("adaptive sparse run diverged from dense fixed baseline: %016x vs %016x",
			dense.digest, sparse.digest)
	}
	if dense.ops <= 0 || dense.faults <= 0 {
		t.Fatalf("degenerate run: ops=%v faults=%d", dense.ops, dense.faults)
	}
	if dense.touched != dense.total {
		t.Fatalf("dense row did not materialize the mapping: %d/%d", dense.touched, dense.total)
	}
	if sparse.touched >= sparse.total/2 {
		t.Fatalf("sparse row touched %d of %d pages — the schedule no longer leaves most of the mapping cold",
			sparse.touched, sparse.total)
	}
	if sparse.metaBytes >= dense.metaBytes/2 {
		t.Fatalf("sparse metadata %d B is not meaningfully below dense %d B",
			sparse.metaBytes, dense.metaBytes)
	}

	// The rendered experiment must be sweep-safe: byte-identical between
	// serial and parallel cell execution.
	render := func(jobs int) string {
		var b strings.Builder
		ro := o
		ro.Jobs = jobs
		e, err := ByID("tbscale")
		if err != nil {
			t.Fatal(err)
		}
		e.Run(&b, ro)
		return b.String()
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Fatalf("tbscale output differs between -jobs 1 and -jobs 4:\n--- serial ---\n%s\n--- jobs=4 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "digests MATCH") {
		t.Fatalf("experiment output does not report matching digests:\n%s", serial)
	}
}
