package bench

import (
	"fmt"
	"io"
	"math"

	"github.com/tieredmem/hemem/internal/diurnal"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
)

func init() {
	register("tbscale", "Extension: TB-scale diurnal workload — sparse metadata + adaptive quantum vs dense fixed-step", runTBScale)
}

// This experiment is the showcase for the event-driven simulation core:
// a huge mapping (64 GB quick, 1 TB full) sees short bursts over small
// page windows separated by long idle spans — the diurnal shape of a
// provisioned-for-peak big-data machine. Two configurations run the same
// schedule:
//
//   - dense-fixed: every page's metadata materialized up front
//     (Region.MaterializeAll) and the classic fixed 1 ms quantum;
//   - sparse-adaptive: metadata materializes lazily as bursts touch
//     their windows, and the machine runs the adaptive event-driven
//     loop, stepping idle spans policy-tick to policy-tick.
//
// The simulated outcome — burst ops, faults, migrations — must be
// identical (the adaptive loop only extends steps when extension cannot
// change the arithmetic; see DESIGN.md §11); what differs is the cost of
// simulating it: metadata resident bytes are O(touched pages) instead of
// O(mapped pages), and the idle spans take one step per policy tick
// instead of one per millisecond. Wall-clock numbers are deliberately
// absent from the table (the output is byte-compared across sweep worker
// counts); `make bench` records them in BENCH_pr8.json.
func tbscaleConfig(o Opts) (diurnal.Config, int64) {
	if o.Full {
		cfg := diurnal.Config{
			Name:       "tbscale",
			WorkingSet: 1 * sim.TB,
			Threads:    16,
			Phases: []diurnal.Phase{
				{Duration: 600 * sim.Second},
				{Duration: 60 * sim.Second, WindowLo: 0.00, WindowHi: 0.03},
				{Duration: 900 * sim.Second},
				{Duration: 60 * sim.Second, WindowLo: 0.40, WindowHi: 0.43},
				{Duration: 900 * sim.Second},
				{Duration: 60 * sim.Second, WindowLo: 0.80, WindowHi: 0.83},
				{Duration: 1020 * sim.Second},
			},
		}
		return cfg, 3600 * sim.Second
	}
	cfg := diurnal.Config{
		Name:       "tbscale",
		WorkingSet: 64 * sim.GB,
		Threads:    16,
		Phases: []diurnal.Phase{
			{Duration: 10 * sim.Second},
			{Duration: 5 * sim.Second, WindowLo: 0.00, WindowHi: 0.05},
			{Duration: 20 * sim.Second},
			{Duration: 5 * sim.Second, WindowLo: 0.50, WindowHi: 0.55},
			{Duration: 20 * sim.Second},
		},
	}
	return cfg, 60 * sim.Second
}

// tbRow is one configuration's outcome.
type tbRow struct {
	ops       float64
	faults    int64
	migPages  int64
	touched   int
	total     int
	metaBytes int64
	digest    uint64
}

// tbscaleRun executes the schedule under one simulator configuration.
func tbscaleRun(o Opts, adaptive, dense bool) tbRow {
	mc := o.machineConfig()
	mc.AdaptiveQuantum = adaptive
	mc.Seed = o.seed()
	m := machine.New(mc, newHeMem())
	cfg, span := tbscaleConfig(o)
	d := diurnal.New(m, cfg)
	if dense {
		d.Region().MaterializeAll()
	}
	m.Run(span)
	r := tbRow{
		ops:       d.ActiveOps(),
		faults:    m.Faults(),
		migPages:  int64(m.Migrator.Stats().Pages),
		touched:   m.AS.TouchedPages(),
		total:     m.AS.NumPages(),
		metaBytes: m.AS.MetadataBytes(),
	}
	dg := uint64(digestSeed)
	dg = mix(dg, math.Float64bits(r.ops))
	dg = mix(dg, uint64(r.faults))
	dg = mix(dg, uint64(r.migPages))
	r.digest = dg
	return r
}

func runTBScale(w io.Writer, o Opts) {
	s := NewSweep("tbscale", o)
	s.Cell("dense-fixed", func(CellInfo) any { return tbscaleRun(o, false, true) })
	s.Cell("sparse-adaptive", func(CellInfo) any { return tbscaleRun(o, true, false) })
	res := s.Gather()
	rows := []struct {
		name string
		r    tbRow
	}{
		{"dense-fixed", res[0].(tbRow)},
		{"sparse-adaptive", res[1].(tbRow)},
	}
	tw := table(w)
	fmt.Fprintln(tw, "mode\tburst ops\tfaults\tmig pages\ttouched/total pages\tmetadata MiB\tdigest")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%d/%d\t%.2f\t%016x\n",
			row.name, row.r.ops, row.r.faults, row.r.migPages,
			row.r.touched, row.r.total,
			float64(row.r.metaBytes)/(1<<20), row.r.digest)
	}
	tw.Flush()
	if rows[0].r.digest == rows[1].r.digest {
		fmt.Fprintln(w, "outcome digests MATCH: the adaptive sparse run reproduces the dense fixed-step run exactly")
	} else {
		fmt.Fprintln(w, "outcome digests DIFFER: adaptive run diverged from the fixed-step baseline")
	}
}
