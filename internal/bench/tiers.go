package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/kvs"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("tiers", "Extension: tier descriptor table — DRAM+CXL+NVM chain vs. the two-tier baseline", runTiers)
}

// tierChain describes one machine configuration cell: nil Tiers uses the
// classic DRAM+NVM testbed (shrunk DRAM), otherwise the explicit table.
type tierChain struct {
	name  string
	tiers []machine.TierDesc
}

// runTiers exercises the tier descriptor table end to end: the same HeMem
// policy code drives a two-tier DRAM+NVM machine and a three-tier
// DRAM+CXL+NVM machine (calibrated CXL-like device between them), running
// GUPS and FlexKVS against a hot set larger than DRAM. The interesting
// observables are where the working set settles (per-tier resident bytes)
// and which migration-graph edges fire: on the three-tier chain demotions
// must flow DRAM→CXL→NVM and promotions back up each link, with the
// middle tier catching the DRAM overflow that the baseline pushes all the
// way to NVM.
func runTiers(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(20, 60) * sim.Second

	chains := []tierChain{
		{name: "DRAM+NVM", tiers: nil},
		{name: "DRAM+CXL+NVM", tiers: []machine.TierDesc{
			{ID: vm.TierDRAM, Capacity: 16 * sim.GB},
			{ID: vm.TierCXL, Capacity: 32 * sim.GB},
			{ID: vm.TierNVM, Capacity: 768 * sim.GB, UEVictim: true},
			{ID: vm.TierDisk, Capacity: 4 * sim.TB, Swap: true},
		}},
	}
	mkMachine := func(c tierChain) (*machine.Machine, *core.HeMem) {
		mcfg := o.machineConfig()
		mcfg.DRAMSize = 16 * sim.GB // both chains get the same DRAM
		mcfg.Tiers = c.tiers
		h := core.New(core.DefaultConfig())
		return machine.New(mcfg, h), h
	}

	type res struct {
		score    float64
		resident map[vm.Tier]int64
		edges    string
	}
	finish := func(m *machine.Machine, score float64) res {
		r := res{score: score, resident: map[vm.Tier]int64{}}
		for _, reg := range m.AS.Regions {
			for _, td := range m.TierTable() {
				r.resident[td.ID] += reg.Bytes(td.ID)
			}
		}
		// Adjacent migration-graph edges, demotions then promotions per
		// link, in chain order.
		var chain []vm.Tier
		for _, td := range m.TierTable() {
			if !td.Swap {
				chain = append(chain, td.ID)
			}
		}
		var parts []string
		for i := 0; i+1 < len(chain); i++ {
			lo, hi := chain[i], chain[i+1]
			parts = append(parts,
				fmt.Sprintf("%s>%s:%d", strings.ToLower(lo.String()), strings.ToLower(hi.String()), m.Migrator.Moved(lo, hi)),
				fmt.Sprintf("%s>%s:%d", strings.ToLower(hi.String()), strings.ToLower(lo.String()), m.Migrator.Moved(hi, lo)))
		}
		r.edges = strings.Join(parts, " ")
		return r
	}

	s := NewSweep("tiers", o)
	for _, c := range chains {
		s.Cell("gups/"+c.name, func(CellInfo) any {
			m, _ := mkMachine(c)
			g := gups.New(m, gups.Config{
				Threads: 16, WorkingSet: 96 * sim.GB, HotSet: 24 * sim.GB, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			g.ResetScore()
			m.Run(measure)
			return finish(m, g.Score())
		})
	}
	for _, c := range chains {
		s.Cell("flexkvs/"+c.name, func(CellInfo) any {
			m, _ := mkMachine(c)
			d := kvs.NewDriver(m, kvs.DriverConfig{
				WorkingSet: 96 * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			d.ResetScore()
			m.Run(measure)
			return finish(m, d.Mops())
		})
	}
	out := s.Gather()

	tw := table(w)
	fmt.Fprintln(tw, "workload\ttiers\tscore\tDRAM(GB)\tCXL(GB)\tNVM(GB)\tmigrations(pages)")
	names := []string{"GUPS", "GUPS", "FlexKVS", "FlexKVS"}
	for i, v := range out {
		r := v.(res)
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%d\t%d\t%d\t%s\n",
			names[i], chains[i%2].name, r.score,
			r.resident[vm.TierDRAM]/sim.GB, r.resident[vm.TierCXL]/sim.GB, r.resident[vm.TierNVM]/sim.GB,
			r.edges)
	}
	tw.Flush()
	fmt.Fprintln(w, "96 GB working set, 16 GB DRAM; the three-tier chain adds a 32 GB CXL-like device between DRAM and NVM")
}
