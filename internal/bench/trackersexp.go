package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/kvs"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("trackers", "Extension: tracker × policy cross-product — PEBS vs DAMON vs idlepage under the HeMem and heat policies", runTrackers)
}

// trackerCells and policyCells enumerate the registered cross-product in
// canonical (sorted) registry order, optionally filtered by the -tracker
// and -policy flags.
func trackerCells(o Opts) []string { return filterNames(core.TrackerNames(), o.Tracker) }
func policyCells(o Opts) []string  { return filterNames(core.PolicyNames(), o.Policy) }

func filterNames(names []string, want string) []string {
	if want == "" {
		return names
	}
	for _, n := range names {
		if n == want {
			return []string{n}
		}
	}
	return nil
}

// runTrackers extends the paper's PEBS-vs-PT-scan dichotomy (Figs 8/9/
// 15/16) to the full tracker × policy cross-product on the pluggable
// registry: every access-observation mechanism drives every
// classification policy over GUPS and FlexKVS, on the classic testbed
// with DRAM shrunk below the hot set so tracking fidelity decides what
// gets promoted. Reported per cell: throughput score, hot-set
// classification accuracy (fraction of the workload's ground-truth hot
// pages resident in the fastest tier at the end of the measured window),
// and total migration traffic — together they separate "fast because it
// found the hot set" from "fast because it stopped migrating".
func runTrackers(w io.Writer, o Opts) {
	warm := o.scale(10, 120) * sim.Second
	measure := o.scale(5, 30) * sim.Second

	trackers := trackerCells(o)
	policies := policyCells(o)

	mkMachine := func(tracker, policy string) (*machine.Machine, *core.HeMem) {
		mcfg := o.machineConfig()
		mcfg.DRAMSize = 6 * sim.GB
		h := core.New(core.Config{Tracker: tracker, Policy: policy})
		return machine.New(mcfg, h), h
	}

	type res struct {
		score    float64
		accuracy float64
		migGB    float64
	}
	finish := func(m *machine.Machine, score float64, hotSet *vm.PageSet) res {
		r := res{score: score, migGB: m.Migrator.Stats().Bytes / float64(sim.GB)}
		if hotSet != nil && hotSet.Len() > 0 {
			r.accuracy = hotSet.Frac(m.FastestTier())
		}
		return r
	}

	type cellID struct{ workload, tracker, policy string }
	var ids []cellID
	s := NewSweep("trackers", o)
	for _, tr := range trackers {
		for _, po := range policies {
			tr, po := tr, po
			ids = append(ids, cellID{"GUPS", tr, po})
			s.Cell("gups/"+tr+"+"+po, func(CellInfo) any {
				m, _ := mkMachine(tr, po)
				g := gups.New(m, gups.Config{
					Threads: 16, WorkingSet: 32 * sim.GB, HotSet: 8 * sim.GB, Seed: o.seed(),
				})
				m.Warm()
				m.Run(warm)
				g.ResetScore()
				m.Run(measure)
				return finish(m, g.Score(), g.HotPages())
			})
		}
	}
	for _, tr := range trackers {
		for _, po := range policies {
			tr, po := tr, po
			ids = append(ids, cellID{"FlexKVS", tr, po})
			s.Cell("flexkvs/"+tr+"+"+po, func(CellInfo) any {
				m, _ := mkMachine(tr, po)
				d := kvs.NewDriver(m, kvs.DriverConfig{
					WorkingSet: 32 * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: o.seed(),
				})
				m.Warm()
				m.Run(warm)
				d.ResetScore()
				m.Run(measure)
				return finish(m, d.Mops(), d.HotItemPages())
			})
		}
	}
	out := s.Gather()

	tw := table(w)
	fmt.Fprintln(tw, "workload\ttracker\tpolicy\tscore\thot-in-fast\tmigrated(GB)")
	for i, v := range out {
		r := v.(res)
		id := ids[i]
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.4f\t%.3f\t%.1f\n",
			id.workload, id.tracker, id.policy, r.score, r.accuracy, r.migGB)
	}
	tw.Flush()
	fmt.Fprintln(w, "32 GB working set, 8 GB hot set (GUPS) / 20% hot keys (FlexKVS), 6 GB DRAM;")
	fmt.Fprintln(w, "hot-in-fast = fraction of ground-truth hot pages resident in the fastest tier after the measured window")
}
