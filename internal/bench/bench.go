// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation (§5), each regenerating the
// same rows or series the paper reports, on the simulated testbed.
//
// Experiments run in two sizes: the default "quick" parameters finish in
// seconds of real time; Full parameters approach the paper's run lengths.
// Absolute numbers come from the calibrated device models; the harness is
// judged on shape — who wins, by what rough factor, and where crossovers
// fall (see EXPERIMENTS.md for the side-by-side record).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/memmode"
	"github.com/tieredmem/hemem/internal/nimble"
	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/xmem"
)

// Opts controls an experiment run.
type Opts struct {
	// Full selects paper-scale run lengths instead of quick ones.
	Full bool
	// Seed perturbs workload layout; 0 uses the default.
	Seed uint64
	// Jobs is the sweep worker pool size; 0 uses GOMAXPROCS. Output is
	// byte-identical at every value (see sweep.go).
	Jobs int
	// Progress, when non-nil, receives per-cell completion narration
	// ("cell 13/27 fig5/ws=64GB done in 0.4s"). It is separate from the
	// experiment's table output, which stays canonical.
	Progress io.Writer
	// Tracker and Policy, when non-empty, restrict the trackers
	// experiment's cross-product to a single registered tracker/policy
	// (the CI smoke matrix runs one pair per job). Other experiments
	// ignore them.
	Tracker string
	Policy  string
	// Quantum overrides the machine step quantum in sim-ns; 0 keeps the
	// machine default (1 ms).
	Quantum int64
	// Adaptive runs machines on the event-driven adaptive-quantum loop.
	// The CLI rejects it for experiments whose goldens pin the fixed
	// step schedule.
	Adaptive bool
	// Tenants overrides the fleet experiment's tenants per machine; 0
	// keeps the scale default. Other experiments ignore it.
	Tenants int
	// Shards sizes the intra-cell worker pool (internal/shard): fleet
	// cells step groups of machines in lockstep across it, and each
	// machine's shard pool (memmode's sharded Monte-Carlo) inherits it.
	// 0 or 1 keeps the historical serial path bit for bit; fleet,
	// tbscale, and chaos output is byte-identical at every value.
	Shards int
	// QoS restricts the fleet experiment's tenant mix to a single class
	// ("gold", "silver", "besteffort"); empty keeps the mixed fleet.
	QoS string
}

// machineConfig is the default machine config with the run's quantum and
// adaptive-loop overrides applied. With zero-valued overrides it is
// machine.DefaultConfig() exactly, so default-mode output is untouched.
func (o Opts) machineConfig() machine.Config {
	mc := machine.DefaultConfig()
	if o.Quantum > 0 {
		mc.Quantum = o.Quantum
	}
	mc.AdaptiveQuantum = o.Adaptive
	mc.Shards = o.Shards
	return mc
}

func (o Opts) seed() uint64 {
	if o.Seed == 0 {
		return 17
	}
	return o.Seed
}

// jobs resolves the worker pool size.
func (o Opts) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// shards resolves the intra-cell worker pool size (1 = serial).
func (o Opts) shards() int {
	if o.Shards > 1 {
		return o.Shards
	}
	return 1
}

// scale returns quick unless Full is set.
func (o Opts) scale(quick, full int64) int64 {
	if o.Full {
		return full
	}
	return quick
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Opts)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(w io.Writer, o Opts)) {
	if _, dup := registry[id]; dup {
		panic("bench: duplicate experiment id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// IDs returns every registered experiment id, sorted. It is the single
// inventory behind All, ByID's error message, and the CLI's -list.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for k := range registry {
		ids = append(ids, k)
	}
	sort.Strings(ids)
	return ids
}

// All returns every registered experiment in id order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// ByID returns the experiment with the given id. On a miss the error
// lists every valid id, sorted.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("unknown experiment %q; valid ids: %s", id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// table starts an aligned output table.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Manager constructors used across experiments, keyed by report label.
func newHeMem() machine.Manager    { return core.New(core.DefaultConfig()) }
func newMM() machine.Manager       { return memmode.New() }
func newNimble() machine.Manager   { return nimble.New() }
func newDRAM() machine.Manager     { return xmem.DRAMFirst() }
func newNVM() machine.Manager      { return xmem.NVMOnly() }
func newPTAsync() machine.Manager  { return ptscan.New(ptscan.HeMemPTAsync()) }
func newPTSync() machine.Manager   { return ptscan.New(ptscan.HeMemPTSync()) }
func newScanOnly() machine.Manager { return ptscan.New(ptscan.ScanOnly()) }

// gupsRun builds a machine+GUPS pair, warms, runs, and returns the
// steady-window score in GUPS.
func gupsRun(o Opts, mgr machine.Manager, cfg gups.Config, warm, measure int64) float64 {
	m := machine.New(o.machineConfig(), mgr)
	g := gups.New(m, cfg)
	m.Warm()
	m.Run(warm)
	g.ResetScore()
	m.Run(measure)
	return g.Score()
}

// gb formats a byte count in GB.
func gb(b int64) string { return fmt.Sprintf("%d", b/sim.GB) }
