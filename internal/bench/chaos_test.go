package bench

import (
	"bytes"
	"os"
	"testing"

	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// soakFaults is the chaos soak configuration: every legacy injector
// plus the chaos scheduler's compound episodes, CXL offline events, and
// correctable-error storms, aggressive enough that a 40-second run sees
// several of each.
func soakFaults() fault.Config {
	return fault.Config{
		MigrationAbortProb:   0.02,
		DMAChannelMTBF:       20 * sim.Second,
		DMADegradedMTBF:      5 * sim.Second,
		NVMUncorrectableMTBF: 2 * sim.Second,
		NVMThermalMTBF:       5 * sim.Second,
		PEBSStormMTBF:        5 * sim.Second,
		Chaos: fault.ChaosConfig{
			CompoundMTBF:        8 * sim.Second,
			TierOfflineMTBF:     10 * sim.Second,
			TierOfflineDuration: 4 * sim.Second,
			OfflineTiers:        fault.OfflineSet(vm.TierCXL),
			// CE strikes spread uniformly over the whole NVM page
			// population, so accumulating a per-page threshold in a
			// 40-second run needs a dense storm and a low bar.
			CEStormMTBF:       4 * sim.Second,
			CEStormDuration:   500 * sim.Millisecond,
			CEInterval:        200 * sim.Microsecond,
			CERetireThreshold: 2,
		},
	}
}

// soakRun drives one chaos soak: GUPS on the three-tier testbed with
// the full fault menagerie and the invariant auditor checking every
// quantum (a violation panics and fails the test). Returns the machine
// for assertions. warm and run are simulated seconds — the soak proper
// runs long enough to see several of every episode class; the
// byte-identity tests use shorter runs (they compare two replays, not
// counter richness) to keep the -race soak job well inside its budget.
func soakRun(t *testing.T, seed uint64, audit bool, warm, run int64) (*machine.Machine, float64) {
	t.Helper()
	m, _ := chaosMachine(seed, soakFaults(), audit)
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 32 * sim.GB, HotSet: 6 * sim.GB, Seed: seed,
	})
	m.Warm()
	m.Run(warm * sim.Second)
	g.ResetScore()
	m.Run(run * sim.Second)
	return m, g.Score()
}

// TestChaosSoak is the bounded soak harness CI runs under -race: a
// 50-second simulated GUPS run through compound episodes, CE storms,
// and repeated CXL offline/online cycles, with the auditor verifying
// conservation invariants every quantum. The run must see at least one
// full offline→evacuate→online cycle, drain the tier completely
// (MTTR recorded), and leave the offline tier empty at every completed
// evacuation. Set CHAOS_LOG to also write the episode-log artifact.
func TestChaosSoak(t *testing.T) {
	m, score := soakRun(t, 17, true, 10, 40)
	if score <= 0 {
		t.Fatalf("GUPS score %v, want > 0 (workload ran through the chaos)", score)
	}
	fs := *m.FaultCounters()
	if fs.TierOfflineEvents == 0 {
		t.Fatalf("no tier offline events fired; FaultStats %+v", fs)
	}
	if fs.TierOnlineEvents == 0 {
		t.Fatalf("no tier came back online; FaultStats %+v", fs)
	}
	if fs.TierEvacuations == 0 || fs.TierEvacNsTotal <= 0 {
		t.Fatalf("no completed evacuation (MTTR) recorded: evacs %d, total %d ns",
			fs.TierEvacuations, fs.TierEvacNsTotal)
	}
	if fs.TierEvacuatedPages == 0 {
		t.Fatalf("no pages evacuated off the offline tier")
	}
	if fs.CompoundEpisodes == 0 {
		t.Errorf("no compound episodes fired")
	}
	if fs.CEStorms == 0 || fs.CorrectableErrors == 0 {
		t.Errorf("no correctable-error storms/strikes: %d storms, %d CEs",
			fs.CEStorms, fs.CorrectableErrors)
	}
	if fs.PagesPredictivelyRetired == 0 {
		t.Errorf("CE threshold never retired a page predictively")
	}
	eps := m.Episodes()
	if len(eps) == 0 {
		t.Fatalf("episode log empty")
	}
	// Every completed evacuation drained 100% of the tier: its episode
	// records a non-negative EvacNs and the audit's evac-done rule held
	// every quantum after (a violation would have panicked).
	evacs := 0
	for _, e := range eps {
		if e.Kind == fault.EpTierOffline && e.EvacNs >= 0 {
			evacs++
		}
	}
	if int64(evacs) != fs.TierEvacuations {
		t.Errorf("episode log records %d completed evacuations, FaultStats %d", evacs, fs.TierEvacuations)
	}
	if path := os.Getenv("CHAOS_LOG"); path != "" {
		var buf bytes.Buffer
		if err := fault.WriteEpisodes(&buf, eps); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("episode log written to %s (%d episodes)", path, len(eps))
	}
}

// TestChaosDeterminism: the same seed and the same chaos Config replay
// a bit-identical run — same episode log, same FaultStats, same score.
func TestChaosDeterminism(t *testing.T) {
	m1, s1 := soakRun(t, 99, true, 3, 12)
	m2, s2 := soakRun(t, 99, true, 3, 12)
	if s1 != s2 {
		t.Errorf("scores differ: %v vs %v", s1, s2)
	}
	if *m1.FaultCounters() != *m2.FaultCounters() {
		t.Errorf("FaultStats differ:\n%+v\n%+v", *m1.FaultCounters(), *m2.FaultCounters())
	}
	var e1, e2 bytes.Buffer
	if err := fault.WriteEpisodes(&e1, m1.Episodes()); err != nil {
		t.Fatal(err)
	}
	if err := fault.WriteEpisodes(&e2, m2.Episodes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Errorf("episode logs differ:\n%s\nvs\n%s", e1.String(), e2.String())
	}
}

// TestChaosAuditorIsPureObserver: enabling the auditor changes nothing
// about the run — score, fault counters, and episode log are identical
// with it on and off. (The complementary guarantee — zero chaos config
// is a strict no-op on the RNG stream — is pinned by the golden-output
// tests, which run with chaos and audit disabled.)
func TestChaosAuditorIsPureObserver(t *testing.T) {
	m1, s1 := soakRun(t, 7, true, 3, 12)
	m2, s2 := soakRun(t, 7, false, 3, 12)
	if s1 != s2 {
		t.Errorf("auditor changed the score: %v vs %v", s1, s2)
	}
	if *m1.FaultCounters() != *m2.FaultCounters() {
		t.Errorf("auditor changed FaultStats:\n%+v\n%+v", *m1.FaultCounters(), *m2.FaultCounters())
	}
	var e1, e2 bytes.Buffer
	fault.WriteEpisodes(&e1, m1.Episodes())
	fault.WriteEpisodes(&e2, m2.Episodes())
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Errorf("auditor changed the episode log")
	}
}

// TestChaosZeroConfigNoOp: a fault config whose chaos block is zero
// draws nothing from the chaos scheduler — the machine behaves exactly
// as it did before the scheduler existed (no episodes beyond the legacy
// injectors', no tier events, no CEs).
func TestChaosZeroConfigNoOp(t *testing.T) {
	cfg := soakFaults()
	cfg.Chaos = fault.ChaosConfig{}
	m, _ := chaosMachine(5, cfg, true)
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 32 * sim.GB, HotSet: 6 * sim.GB, Seed: 5,
	})
	m.Warm()
	m.Run(15 * sim.Second)
	_ = g
	fs := *m.FaultCounters()
	if fs.TierOfflineEvents != 0 || fs.CompoundEpisodes != 0 || fs.CEStorms != 0 || fs.CorrectableErrors != 0 {
		t.Errorf("zero chaos config moved chaos counters: %+v", fs)
	}
	for _, e := range m.Episodes() {
		if e.Kind == fault.EpTierOffline || e.Kind == fault.EpCompound || e.Kind == fault.EpCEStorm {
			t.Errorf("zero chaos config logged chaos episode %v", e)
		}
	}
}
