package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("tab1", "Table 1: main memory technology comparison", runTab1)
	register("fig1", "Figure 1: memory access throughput scalability", runFig1)
	register("fig2", "Figure 2: throughput at 16 threads, varying access size", runFig2)
	register("fig3", "Figure 3: page table scan time", runFig3)
}

// runTab1 prints the technology comparison: the spec constants plus the
// measured large-block streaming bandwidths of the device models.
func runTab1(w io.Writer, o Opts) {
	dram := mem.NewDRAM(192 * sim.GB)
	nvm := mem.NewNVM(768 * sim.GB)
	tw := table(w)
	fmt.Fprintln(tw, "Memory\tR/W Latency (ns)\tR/W GB/s\tCapacity")
	row := func(d *mem.Device, capacity string) {
		r := sim.BytesPerNsToGBps(d.Throughput(mem.Read, mem.Sequential, 256, 24))
		wr := sim.BytesPerNsToGBps(d.Throughput(mem.Write, mem.Sequential, 256, 24))
		fmt.Fprintf(tw, "%s\t%d / %d\t%.0f / %.1f\t%s\n",
			d.Spec.Name, d.Spec.ReadLatency, d.Spec.WriteLatency, r, wr, capacity)
	}
	row(dram, "1x")
	row(nvm, "8x") // 768 GB NVM vs 192 GB DRAM per socket but 8x per module
	tw.Flush()
	fmt.Fprintln(w, "paper: DRAM 82ns, 107/80 GB/s; Optane 175/94ns, 32/11.2 GB/s, 8x capacity")
}

// runFig1 sweeps thread counts at 256 B blocks for all four
// device/pattern combinations on both devices.
func runFig1(w io.Writer, o Opts) {
	dram := mem.NewDRAM(192 * sim.GB)
	nvm := mem.NewNVM(768 * sim.GB)
	tw := table(w)
	fmt.Fprint(tw, "threads")
	kinds := []struct {
		name string
		dev  *mem.Device
		kind mem.Kind
		pat  mem.Pattern
	}{
		{"dram-seq-rd", dram, mem.Read, mem.Sequential},
		{"dram-rand-rd", dram, mem.Read, mem.Random},
		{"dram-seq-wr", dram, mem.Write, mem.Sequential},
		{"dram-rand-wr", dram, mem.Write, mem.Random},
		{"nvm-seq-rd", nvm, mem.Read, mem.Sequential},
		{"nvm-rand-rd", nvm, mem.Read, mem.Random},
		{"nvm-seq-wr", nvm, mem.Write, mem.Sequential},
		{"nvm-rand-wr", nvm, mem.Write, mem.Random},
	}
	for _, k := range kinds {
		fmt.Fprintf(tw, "\t%s", k.name)
	}
	fmt.Fprintln(tw)
	for _, threads := range []int{1, 2, 4, 8, 12, 16, 20, 24} {
		fmt.Fprintf(tw, "%d", threads)
		for _, k := range kinds {
			fmt.Fprintf(tw, "\t%.1f", sim.BytesPerNsToGBps(k.dev.Throughput(k.kind, k.pat, 256, threads)))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GB/s; paper: NVM write saturates at 4 threads; DRAM rand read 2.7x NVM; NVM seq read +14% over DRAM rand read at scale")
}

// runFig2 sweeps block sizes at 16 threads.
func runFig2(w io.Writer, o Opts) {
	dram := mem.NewDRAM(192 * sim.GB)
	nvm := mem.NewNVM(768 * sim.GB)
	tw := table(w)
	fmt.Fprintln(tw, "block\tdram-seq-rd\tdram-rand-rd\tdram-seq-wr\tdram-rand-wr\tnvm-seq-rd\tnvm-rand-rd\tnvm-seq-wr\tnvm-rand-wr")
	for _, block := range []int64{64, 256, 1024, 4096, 16 << 10, 64 << 10, 256 << 10} {
		fmt.Fprintf(tw, "%d", block)
		for _, d := range []*mem.Device{dram, nvm} {
			for _, kind := range []mem.Kind{mem.Read, mem.Write} {
				for _, pat := range []mem.Pattern{mem.Sequential, mem.Random} {
					fmt.Fprintf(tw, "\t%.1f", sim.BytesPerNsToGBps(d.Throughput(kind, pat, block, 16)))
				}
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GB/s at 16 threads; paper: NVM seq read saturated regardless of size; small random reads slow on both; seq/rand gap closes with size")
}

// runFig3 prints full-scan times by capacity and page size.
func runFig3(w io.Writer, o Opts) {
	m := vm.DefaultScanModel()
	tw := table(w)
	fmt.Fprintln(tw, "capacity\t4K pages\t2M pages\t1G pages")
	for _, capGB := range []int64{1, 16, 64, 256, 1024, 2048, 4096} {
		c := capGB * sim.GB
		fmt.Fprintf(tw, "%dGB\t%.3gms\t%.3gms\t%.3gms\n",
			capGB,
			float64(m.ScanTime(c, 4<<10))/1e6,
			float64(m.ScanTime(c, 2<<20))/1e6,
			float64(m.ScanTime(c, 1<<30))/1e6)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: terabytes at base pages take seconds; small capacities fast at any page size")
}
