package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("tab1", "Table 1: main memory technology comparison", runTab1)
	register("fig1", "Figure 1: memory access throughput scalability", runFig1)
	register("fig2", "Figure 2: throughput at 16 threads, varying access size", runFig2)
	register("fig3", "Figure 3: page table scan time", runFig3)
}

// The microbenchmark sweeps are pure device-model evaluations — no
// simulation run — but they go through the sweep engine like everything
// else: one cell per row, devices built inside the cell.

// runTab1 prints the technology comparison: the spec constants plus the
// measured large-block streaming bandwidths of the device models.
func runTab1(w io.Writer, o Opts) {
	type techRow struct {
		name                string
		readLat, writeLat   int64
		readGBps, writeGBps float64
		capacity            string
	}
	mkRow := func(d *mem.Device, capacity string) techRow {
		return techRow{
			name:      d.Spec.Name,
			readLat:   d.Spec.ReadLatency,
			writeLat:  d.Spec.WriteLatency,
			readGBps:  sim.BytesPerNsToGBps(d.Throughput(mem.Read, mem.Sequential, 256, 24)),
			writeGBps: sim.BytesPerNsToGBps(d.Throughput(mem.Write, mem.Sequential, 256, 24)),
			capacity:  capacity,
		}
	}
	s := NewSweep("tab1", o)
	s.Cell("dram", func(CellInfo) any { return mkRow(mem.NewDRAM(192*sim.GB), "1x") })
	// 768 GB NVM vs 192 GB DRAM per socket but 8x per module.
	s.Cell("nvm", func(CellInfo) any { return mkRow(mem.NewNVM(768*sim.GB), "8x") })
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "Memory\tR/W Latency (ns)\tR/W GB/s\tCapacity")
	for _, v := range res {
		r := v.(techRow)
		fmt.Fprintf(tw, "%s\t%d / %d\t%.0f / %.1f\t%s\n",
			r.name, r.readLat, r.writeLat, r.readGBps, r.writeGBps, r.capacity)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: DRAM 82ns, 107/80 GB/s; Optane 175/94ns, 32/11.2 GB/s, 8x capacity")
}

// devKinds enumerates the device/kind/pattern combinations of Figures 1
// and 2, in column order.
var devKinds = []struct {
	name string
	nvm  bool
	kind mem.Kind
	pat  mem.Pattern
}{
	{"dram-seq-rd", false, mem.Read, mem.Sequential},
	{"dram-rand-rd", false, mem.Read, mem.Random},
	{"dram-seq-wr", false, mem.Write, mem.Sequential},
	{"dram-rand-wr", false, mem.Write, mem.Random},
	{"nvm-seq-rd", true, mem.Read, mem.Sequential},
	{"nvm-rand-rd", true, mem.Read, mem.Random},
	{"nvm-seq-wr", true, mem.Write, mem.Sequential},
	{"nvm-rand-wr", true, mem.Write, mem.Random},
}

// runFig1 sweeps thread counts at 256 B blocks for all four
// device/pattern combinations on both devices.
func runFig1(w io.Writer, o Opts) {
	counts := []int{1, 2, 4, 8, 12, 16, 20, 24}
	s := NewSweep("fig1", o)
	for _, threads := range counts {
		s.Cell(fmt.Sprintf("threads=%d", threads), func(CellInfo) any {
			dram := mem.NewDRAM(192 * sim.GB)
			nvm := mem.NewNVM(768 * sim.GB)
			vals := make([]float64, len(devKinds))
			for i, k := range devKinds {
				dev := dram
				if k.nvm {
					dev = nvm
				}
				vals[i] = sim.BytesPerNsToGBps(dev.Throughput(k.kind, k.pat, 256, threads))
			}
			return vals
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprint(tw, "threads")
	for _, k := range devKinds {
		fmt.Fprintf(tw, "\t%s", k.name)
	}
	fmt.Fprintln(tw)
	for i, threads := range counts {
		fmt.Fprintf(tw, "%d", threads)
		for _, v := range res[i].([]float64) {
			fmt.Fprintf(tw, "\t%.1f", v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GB/s; paper: NVM write saturates at 4 threads; DRAM rand read 2.7x NVM; NVM seq read +14% over DRAM rand read at scale")
}

// runFig2 sweeps block sizes at 16 threads.
func runFig2(w io.Writer, o Opts) {
	blocks := []int64{64, 256, 1024, 4096, 16 << 10, 64 << 10, 256 << 10}
	s := NewSweep("fig2", o)
	for _, block := range blocks {
		s.Cell(fmt.Sprintf("block=%d", block), func(CellInfo) any {
			dram := mem.NewDRAM(192 * sim.GB)
			nvm := mem.NewNVM(768 * sim.GB)
			var vals []float64
			for _, d := range []*mem.Device{dram, nvm} {
				for _, kind := range []mem.Kind{mem.Read, mem.Write} {
					for _, pat := range []mem.Pattern{mem.Sequential, mem.Random} {
						vals = append(vals, sim.BytesPerNsToGBps(d.Throughput(kind, pat, block, 16)))
					}
				}
			}
			return vals
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "block\tdram-seq-rd\tdram-rand-rd\tdram-seq-wr\tdram-rand-wr\tnvm-seq-rd\tnvm-rand-rd\tnvm-seq-wr\tnvm-rand-wr")
	for i, block := range blocks {
		fmt.Fprintf(tw, "%d", block)
		for _, v := range res[i].([]float64) {
			fmt.Fprintf(tw, "\t%.1f", v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GB/s at 16 threads; paper: NVM seq read saturated regardless of size; small random reads slow on both; seq/rand gap closes with size")
}

// runFig3 prints full-scan times by capacity and page size.
func runFig3(w io.Writer, o Opts) {
	capacities := []int64{1, 16, 64, 256, 1024, 2048, 4096}
	s := NewSweep("fig3", o)
	for _, capGB := range capacities {
		s.Cell(fmt.Sprintf("cap=%dGB", capGB), func(CellInfo) any {
			m := vm.DefaultScanModel()
			c := capGB * sim.GB
			return [3]float64{
				float64(m.ScanTime(c, 4<<10)) / 1e6,
				float64(m.ScanTime(c, 2<<20)) / 1e6,
				float64(m.ScanTime(c, 1<<30)) / 1e6,
			}
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "capacity\t4K pages\t2M pages\t1G pages")
	for i, capGB := range capacities {
		t := res[i].([3]float64)
		fmt.Fprintf(tw, "%dGB\t%.3gms\t%.3gms\t%.3gms\n", capGB, t[0], t[1], t[2])
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: terabytes at base pages take seconds; small capacities fast at any page size")
}
