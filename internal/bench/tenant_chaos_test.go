package bench

import (
	"fmt"
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// qosEvacResult is one scripted CXL-outage run against a tenanted
// machine: per-tenant CXL occupancy snapshots around the drain.
type qosEvacResult struct {
	goldAtOffline int // gold CXL pages when the tier drops
	beAtOffline   int // besteffort CXL pages when the tier drops
	goldWhenBEDry int // gold CXL pages at the first sample with BE fully drained
	sawBEDry      bool
	orderViolated bool // a gold page left CXL while BE pages remained
	cxlAfter      int64
	evacuations   int64
}

// qosEvacRun scripts the scenario: a gold and a besteffort tenant both
// spill onto the CXL expander, the expander drops mid-run, and the
// evacuation drains under the auditor. Per-quantum samples observe the
// drain order.
func qosEvacRun(t *testing.T, seed uint64) qosEvacResult {
	t.Helper()
	ccfg := core.DefaultConfig()
	ccfg.LargeAllocThreshold = 16 * sim.MB
	ccfg.FreeDRAMTarget = 16 * sim.MB
	// The default 1 GB mid-chain watermark would drain the 256 MB CXL
	// tier on its own and hide the evacuation ordering.
	ccfg.FreeTargets = map[vm.TierID]int64{vm.TierCXL: 16 * sim.MB}
	h := core.New(ccfg)
	mcfg := machine.DefaultConfig()
	mcfg.Seed = seed
	mcfg.Audit = true
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: 128 * sim.MB},
		{ID: vm.TierCXL, Capacity: 256 * sim.MB},
		{ID: vm.TierNVM, Capacity: 4 * sim.GB, UEVictim: true},
	}
	m := machine.New(mcfg, h)
	tr := m.EnableTenants()
	rng := sim.NewRand(seed)

	var gold machine.TenantSpec
	gold.Name, gold.Class = "gold", machine.Gold
	gold.Reserve[vm.TierDRAM] = 96 * sim.MB
	goldID, res := tr.Admit(gold, func(id vm.TenantID) machine.TenantApp {
		return startFleetApp(m, id, 192*sim.MB, rng)
	})
	if res != machine.Admitted {
		t.Fatalf("gold admit = %v", res)
	}
	var be machine.TenantSpec
	be.Name, be.Class = "be", machine.BestEffort
	beID, res := tr.Admit(be, func(id vm.TenantID) machine.TenantApp {
		return startFleetApp(m, id, 192*sim.MB, rng)
	})
	if res != machine.Admitted {
		t.Fatalf("besteffort admit = %v", res)
	}

	m.Run(1 * sim.Second)

	var r qosEvacResult
	r.goldAtOffline = m.AS.TenantPages(goldID, vm.TierCXL)
	r.beAtOffline = m.AS.TenantPages(beID, vm.TierCXL)
	if !m.OfflineTier(vm.TierCXL) {
		t.Fatal("CXL offline refused")
	}
	// Per-quantum drain observer: once the tier is offline, no gold page
	// may leave CXL while a besteffort page remains — besteffort ranks
	// strictly first in the evacuation order.
	const drain = 2 * sim.Second
	lastGold := r.goldAtOffline
	var watch func(now int64)
	watch = func(now int64) {
		g := m.AS.TenantPages(goldID, vm.TierCXL)
		b := m.AS.TenantPages(beID, vm.TierCXL)
		if g < lastGold && b > 0 {
			r.orderViolated = true
		}
		lastGold = g
		if b == 0 && !r.sawBEDry {
			r.sawBEDry = true
			r.goldWhenBEDry = g
		}
		if now+mcfg.Quantum < m.Clock.Now()+drain && g+b > 0 {
			m.Events.Schedule(now+mcfg.Quantum, watch)
		}
	}
	m.Events.Schedule(m.Clock.Now()+mcfg.Quantum, watch)
	m.Run(drain)

	for _, reg := range m.AS.Regions {
		r.cxlAfter += reg.Bytes(vm.TierCXL)
	}
	r.evacuations = m.FaultCounters().TierEvacuations
	return r
}

// Satellite interop: taking a tier offline on a tenanted machine
// evacuates by QoS class — every besteffort page leaves before the
// first gold page — and the drain runs to completion with the auditor
// checking tenant conservation every quantum (a violation panics).
func TestTierOfflineEvacuatesByQoSClass(t *testing.T) {
	r := qosEvacRun(t, 17)
	if r.goldAtOffline == 0 || r.beAtOffline == 0 {
		t.Fatalf("scenario needs both classes resident on CXL at offline: gold=%d be=%d",
			r.goldAtOffline, r.beAtOffline)
	}
	if r.orderViolated {
		t.Fatalf("a gold page left CXL while besteffort pages remained (gold=%d be=%d at offline)",
			r.goldAtOffline, r.beAtOffline)
	}
	if !r.sawBEDry {
		t.Fatalf("besteffort never fully drained off CXL")
	}
	if r.goldWhenBEDry == 0 {
		t.Fatalf("gold already gone when besteffort finished draining — order not observable")
	}
	if r.cxlAfter != 0 {
		t.Fatalf("%d MB still resident on the offline tier", r.cxlAfter/sim.MB)
	}
	if r.evacuations == 0 {
		t.Fatalf("no completed evacuation recorded")
	}
}

// tenantChaosRun composes a ChaosConfig (the seeded scheduler drives
// repeated CXL offline/online cycles) with a tenanted machine under the
// auditor, and returns the replay-comparison artifacts: the episode
// log, the telemetry CSV (per-tenant series included), and the fault
// counters.
func tenantChaosRun(t *testing.T, seed uint64) (string, string, machine.FaultStats) {
	t.Helper()
	ccfg := core.DefaultConfig()
	ccfg.LargeAllocThreshold = 16 * sim.MB
	ccfg.FreeDRAMTarget = 16 * sim.MB
	ccfg.FreeTargets = map[vm.TierID]int64{vm.TierCXL: 16 * sim.MB}
	h := core.New(ccfg)
	mcfg := machine.DefaultConfig()
	mcfg.Seed = seed
	mcfg.Audit = true
	mcfg.Faults = fault.Config{Chaos: fault.ChaosConfig{
		TierOfflineMTBF:     2 * sim.Second,
		TierOfflineDuration: 1 * sim.Second,
		OfflineTiers:        fault.OfflineSet(vm.TierCXL),
	}}
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: 128 * sim.MB},
		{ID: vm.TierCXL, Capacity: 256 * sim.MB},
		{ID: vm.TierNVM, Capacity: 4 * sim.GB, UEVictim: true},
	}
	m := machine.New(mcfg, h)
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	tr := m.EnableTenants()
	rng := sim.NewRand(seed)
	for i, class := range []machine.QoSClass{machine.Gold, machine.BestEffort, machine.Silver} {
		spec := machine.TenantSpec{Name: fmt.Sprintf("t%d", i), Class: class}
		if _, res := tr.Admit(spec, func(id vm.TenantID) machine.TenantApp {
			return startFleetApp(m, id, 128*sim.MB, rng)
		}); res != machine.Admitted {
			t.Fatalf("tenant %d admit = %v", i, res)
		}
	}
	m.Run(8 * sim.Second)
	if m.FaultCounters().TierOfflineEvents == 0 {
		t.Fatalf("chaos scheduler never took the tier offline; FaultStats %+v", *m.FaultCounters())
	}
	var eps, csv strings.Builder
	if err := fault.WriteEpisodes(&eps, m.Episodes()); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return eps.String(), csv.String(), *m.FaultCounters()
}

// Satellite interop: ChaosConfig composed with the tenant table replays
// byte-identically — same seed, same scheduler-driven outages, same
// auditor → identical episode log, fault counters, and telemetry CSV
// (which covers the per-tenant series too).
func TestTenantChaosReplayByteIdentical(t *testing.T) {
	eps1, csv1, fs1 := tenantChaosRun(t, 99)
	eps2, csv2, fs2 := tenantChaosRun(t, 99)
	if eps1 != eps2 {
		t.Errorf("episode logs differ:\n%s\nvs\n%s", eps1, eps2)
	}
	if fs1 != fs2 {
		t.Errorf("fault counters differ:\n%+v\nvs\n%+v", fs1, fs2)
	}
	if csv1 != csv2 {
		t.Errorf("telemetry CSVs differ between identical replays")
	}
	if len(csv1) == 0 || !strings.Contains(csv1, "tenant.1.") {
		t.Errorf("telemetry CSV missing per-tenant series")
	}
}
