package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

func init() {
	register("fig5", "Figure 5: uniform GUPS vs working set size", runFig5)
	register("fig6", "Figure 6: GUPS vs hot set size (512 GB working set)", runFig6)
	register("fig7", "Figure 7: GUPS thread scalability", runFig7)
	register("tab2", "Table 2: GUPS with skewed read/write pattern", runTab2)
	register("fig8", "Figure 8: HeMem overhead breakdown", runFig8)
	register("fig9", "Figure 9: instantaneous GUPS under a dynamic hot set", runFig9)
	register("fig10", "Figure 10: PEBS sampling period sensitivity", runFig10)
	register("fig11", "Figure 11: hot memory read threshold sensitivity", runFig11)
	register("fig12", "Figure 12: memory cooling threshold sensitivity", runFig12)
}

// runFig5: uniform random GUPS over growing working sets for five systems.
func runFig5(w io.Writer, o Opts) {
	warm := o.scale(10, 60) * sim.Second
	measure := o.scale(5, 30) * sim.Second
	systems := []struct {
		name string
		mk   func() machine.Manager
	}{
		{"DRAM", newDRAM}, {"NVM", newNVM}, {"MM", newMM}, {"Nimble", newNimble}, {"HeMem", newHeMem},
	}
	tw := table(w)
	fmt.Fprintln(tw, "ws(GB)\tDRAM\tNVM\tMM\tNimble\tHeMem\tMM-24thr\tHeMem-24thr")
	for _, wsGB := range []int64{1, 8, 32, 64, 96, 128, 160, 192, 256} {
		fmt.Fprintf(tw, "%d", wsGB)
		for _, s := range systems {
			score := gupsRun(s.mk(), gups.Config{
				Threads: 16, WorkingSet: wsGB * sim.GB, Seed: o.seed(),
			}, warm, measure)
			fmt.Fprintf(tw, "\t%.4f", score)
		}
		// The paper compares HeMem and MM explicitly with more threads.
		for _, mk := range []func() machine.Manager{newMM, newHeMem} {
			score := gupsRun(mk(), gups.Config{
				Threads: 24, WorkingSet: wsGB * sim.GB, Seed: o.seed(),
			}, warm, measure)
			fmt.Fprintf(tw, "\t%.4f", score)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GUPS, 16 threads (plus 24-thread MM/HeMem); paper: HeMem=MM=DRAM when <=32GB; HeMem 3.2x MM at 128GB (3.7x at 24 thr); all near NVM beyond DRAM")
}

// runFig6: fixed 512 GB working set, growing hot set.
func runFig6(w io.Writer, o Opts) {
	warm := o.scale(90, 300) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	tw := table(w)
	fmt.Fprintln(tw, "hot(GB)\tMM\tNimble\tHeMem\tMM-24thr\tHeMem-24thr")
	for _, hotGB := range []int64{1, 4, 8, 16, 32, 64, 128, 256} {
		fmt.Fprintf(tw, "%d", hotGB)
		for _, mk := range []func() machine.Manager{newMM, newNimble, newHeMem} {
			score := gupsRun(mk(), gups.Config{
				Threads: 16, WorkingSet: 512 * sim.GB, HotSet: hotGB * sim.GB, Seed: o.seed(),
			}, warm, measure)
			fmt.Fprintf(tw, "\t%.4f", score)
		}
		for _, mk := range []func() machine.Manager{newMM, newHeMem} {
			score := gupsRun(mk(), gups.Config{
				Threads: 24, WorkingSet: 512 * sim.GB, HotSet: hotGB * sim.GB, Seed: o.seed(),
			}, warm, measure)
			fmt.Fprintf(tw, "\t%.4f", score)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GUPS; paper: HeMem holds while hot fits DRAM (up to 2x MM); Nimble ~25% of MM; all converge once hot set exceeds DRAM; at 24 threads MM leads below 8GB hot")
}

// runFig7: thread scalability on the dynamic hot-set experiment ("we run
// the dynamic hot set experiment with different thread counts and report
// the average GUPS") — migration stays active, so the copy-thread backend
// pays its four cores where DMA pays none.
func runFig7(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(40, 120) * sim.Second
	heThreads := func() machine.Manager {
		cfg := core.DefaultConfig()
		cfg.NoDMA = true
		return core.New(cfg)
	}
	tw := table(w)
	fmt.Fprintln(tw, "threads\tMM\tHeMem(DMA)\tHeMem(4 copy thr)")
	for _, threads := range []int{1, 4, 8, 12, 16, 20, 21, 22, 24} {
		fmt.Fprintf(tw, "%d", threads)
		for _, mk := range []func() machine.Manager{newMM, newHeMem, heThreads} {
			m := machine.New(machine.DefaultConfig(), mk())
			g := gups.New(m, gups.Config{
				Threads: threads, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			g.ResetScore()
			// Shift part of the hot set so migration runs throughout
			// the measurement window.
			g.ShiftHotSet(4*sim.GB, o.seed()+31)
			m.Run(measure)
			fmt.Fprintf(tw, "\t%.4f", g.Score())
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "GUPS; paper: beyond 21 threads HeMem's background threads cost ~10% vs MM; copy threads cost a further 14%")
}

// runTab2: the asymmetric read/write experiment — 512 GB working set,
// 256 GB hot of which 128 GB is write-only.
func runTab2(w io.Writer, o Opts) {
	warm := o.scale(120, 300) * sim.Second
	measure := o.scale(30, 60) * sim.Second
	cfg := gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
		WriteOnlyHot: 128 * sim.GB, Seed: o.seed(),
	}
	type row struct {
		name  string
		score float64
	}
	var rows []row
	for _, s := range []struct {
		name string
		mk   func() machine.Manager
	}{{"Nimble", newNimble}, {"MM", newMM}, {"HeMem", newHeMem}} {
		rows = append(rows, row{s.name, gupsRun(s.mk(), cfg, warm, measure)})
	}
	he := rows[len(rows)-1].score
	tw := table(w)
	fmt.Fprintln(tw, "System\tGUPS\tx")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.2f\n", r.name, r.score, r.score/he)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: Nimble 0.020 (0.36x), MM 0.048 (0.86x), HeMem 0.056 (1x)")
}

// runFig8: the overhead breakdown — manual placement (Opt), PEBS tracking
// only, PT scanning only, then each with migration enabled.
func runFig8(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	gcfg := gups.Config{Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed()}

	// Manual placement puts the known hot set in DRAM at first touch and
	// fills remaining DRAM with cold pages (reserving room for hot pages
	// not yet touched), matching the Opt baseline's placement.
	manual := func(m *machine.Machine, g *gups.GUPS) func(p *vm.Page) vm.Tier {
		hot := make(map[vm.PageID]bool, g.HotPages().Len())
		for _, p := range g.HotPages().Pages() {
			hot[p.ID] = true
		}
		hotLeft := int64(g.HotPages().Len())
		var used int64
		return func(p *vm.Page) vm.Tier {
			ps := p.Region.PageSize
			if hot[p.ID] {
				hotLeft--
				used += ps
				return vm.TierDRAM
			}
			if used+hotLeft*ps+ps <= m.Cfg.DRAMSize {
				used += ps
				return vm.TierDRAM
			}
			return vm.TierNVM
		}
	}

	type cfgFn func(m *machine.Machine, g *gups.GUPS) machine.Manager
	bars := []struct {
		name string
		mk   cfgFn
	}{
		{"Opt", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return xmem.Opt(g.HotPages()) }},
		{"PEBS", func(m *machine.Machine, g *gups.GUPS) machine.Manager {
			cfg := core.DefaultConfig()
			cfg.NoMigration = true
			cfg.PlaceFunc = manual(m, g)
			return core.New(cfg)
		}},
		{"PT Scan", func(m *machine.Machine, g *gups.GUPS) machine.Manager {
			opt := ptscan.ScanOnly()
			opt.PlaceFunc = manual(m, g)
			return ptscan.New(opt)
		}},
		{"PEBS + Migrate", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return core.New(core.DefaultConfig()) }},
		{"PT Scan + M. Sync", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return ptscan.New(ptscan.HeMemPTSync()) }},
		{"PT Scan + M. Async", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return ptscan.New(ptscan.HeMemPTAsync()) }},
	}
	tw := table(w)
	fmt.Fprintln(tw, "Configuration\tGUPS\tvs Opt")
	var opt float64
	for _, b := range bars {
		// Two-phase construction: the manager needs the workload's hot
		// set, which needs the machine.
		boot := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
		g := gups.New(boot, gcfg)
		mgr := b.mk(boot, g)
		boot.Mgr = mgr
		mgr.Attach(boot)
		boot.Warm()
		boot.Run(warm)
		g.ResetScore()
		boot.Run(measure)
		score := g.Score()
		if b.name == "Opt" {
			opt = score
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.2f\n", b.name, score, score/opt)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: PEBS ~= Opt; PT Scan -18%; PEBS+Migrate within 5.9% of Opt; M.Sync 18% of Opt; M.Async 43% of Opt")
}

// runFig9: instantaneous GUPS over time with a hot set shift.
func runFig9(w io.Writer, o Opts) {
	pre := o.scale(60, 150) * sim.Second
	post := o.scale(60, 150) * sim.Second
	systems := []struct {
		name string
		mk   func() machine.Manager
	}{{"MM", newMM}, {"HeMem", newHeMem}, {"Nimble", newNimble}, {"HeMem-PT-Async", newPTAsync}}

	var series [][]float64
	var times []int64
	for _, s := range systems {
		m := machine.New(machine.DefaultConfig(), s.mk())
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
		})
		m.Warm()
		m.Run(pre)
		g.ShiftHotSet(4*sim.GB, o.seed()+99)
		m.Run(post)
		ts := m.Throughput(g.Name())
		var vals []float64
		if len(series) == 0 {
			step := (pre + post) / 24
			for t := step; t <= pre+post; t += step {
				times = append(times, t)
			}
		}
		for _, t := range times {
			vals = append(vals, ts.At(t)/1e9)
		}
		series = append(series, vals)
	}
	tw := table(w)
	fmt.Fprint(tw, "t(s)")
	for _, s := range systems {
		fmt.Fprintf(tw, "\t%s", s.name)
	}
	fmt.Fprintln(tw)
	for i, t := range times {
		fmt.Fprintf(tw, "%d", t/sim.Second)
		for _, vals := range series {
			fmt.Fprintf(tw, "\t%.4f", vals[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintf(w, "GUPS; hot set shifts at t=%ds; paper: HeMem and MM recover within ~20s; PT-Async stays at ~54%% of HeMem\n", pre/sim.Second)
}

// runFig10: PEBS sampling period sweep with drop fractions.
func runFig10(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	tw := table(w)
	fmt.Fprintln(tw, "period\tGUPS\tdropped")
	for _, period := range []float64{250, 1000, 5000, 20000, 100000, 500000, 1000000} {
		cfg := core.DefaultConfig()
		cfg.SamplePeriod = period
		h := core.New(cfg)
		m := machine.New(machine.DefaultConfig(), h)
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
		})
		m.Warm()
		m.Run(warm)
		g.ResetScore()
		m.Run(measure)
		fmt.Fprintf(tw, "%.0f\t%.4f\t%.2f%%\n", period, g.Score(), h.Buffer().DropFraction()*100)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: up to 30% drops below 1k; 5k-100k good; >100k too coarse to track the hot set")
}

// runFig11: hot read threshold sweep (write threshold at half).
func runFig11(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	tw := table(w)
	fmt.Fprintln(tw, "threshold\tGUPS")
	for _, th := range []int{2, 4, 6, 8, 12, 16, 24, 32} {
		cfg := core.DefaultConfig()
		cfg.HotReadThreshold = th
		cfg.HotWriteThreshold = (th + 1) / 2
		score := gupsRun(core.New(cfg), gups.Config{
			Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
		}, warm, measure)
		fmt.Fprintf(tw, "%d\t%.4f\n", th, score)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: low thresholds overestimate the hot set; 6-20 good; >20 underestimates (slow identification)")
}

// runFig12: cooling threshold sweep on the dynamic hot-set experiment —
// the score is measured after the shift, while adaptation is underway.
func runFig12(w io.Writer, o Opts) {
	pre := o.scale(90, 150) * sim.Second
	post := o.scale(60, 150) * sim.Second
	tw := table(w)
	fmt.Fprintln(tw, "cooling\tGUPS(after shift)")
	for _, ct := range []int{8, 10, 18, 30} {
		cfg := core.DefaultConfig()
		cfg.CoolThreshold = ct
		h := core.New(cfg)
		m := machine.New(machine.DefaultConfig(), h)
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
		})
		m.Warm()
		m.Run(pre)
		g.ShiftHotSet(4*sim.GB, o.seed()+7)
		g.ResetScore()
		m.Run(post)
		fmt.Fprintf(tw, "%d\t%.4f\n", ct, g.Score())
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: cooling == hot threshold (8) too aggressive; higher adapts faster; 30 keeps too many pages hot")
}
