package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

func init() {
	register("fig5", "Figure 5: uniform GUPS vs working set size", runFig5)
	register("fig6", "Figure 6: GUPS vs hot set size (512 GB working set)", runFig6)
	register("fig7", "Figure 7: GUPS thread scalability", runFig7)
	register("tab2", "Table 2: GUPS with skewed read/write pattern", runTab2)
	register("fig8", "Figure 8: HeMem overhead breakdown", runFig8)
	register("fig9", "Figure 9: instantaneous GUPS under a dynamic hot set", runFig9)
	register("fig10", "Figure 10: PEBS sampling period sensitivity", runFig10)
	register("fig11", "Figure 11: hot memory read threshold sensitivity", runFig11)
	register("fig12", "Figure 12: memory cooling threshold sensitivity", runFig12)
}

// namedMgr pairs a report label with a manager constructor.
type namedMgr struct {
	name string
	mk   func() machine.Manager
}

// scoreGrid declares one cell per (row, system) pair running a GUPS
// configuration, gathers them, and prints the row-major score table.
func scoreGrid(w io.Writer, s *Sweep, header string, rows []string, systems []namedMgr,
	run func(row int, sys namedMgr) float64, footer string) {
	for r := range rows {
		for _, sys := range systems {
			s.Cell(rows[r]+"/"+sys.name, func(CellInfo) any { return run(r, sys) })
		}
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, header)
	i := 0
	for r := range rows {
		fmt.Fprintf(tw, "%s", rows[r])
		for range systems {
			fmt.Fprintf(tw, "\t%.4f", f64(res[i]))
			i++
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, footer)
}

// runFig5: uniform random GUPS over growing working sets for five systems.
func runFig5(w io.Writer, o Opts) {
	warm := o.scale(10, 60) * sim.Second
	measure := o.scale(5, 30) * sim.Second
	systems := []namedMgr{
		{"DRAM", newDRAM}, {"NVM", newNVM}, {"MM", newMM}, {"Nimble", newNimble}, {"HeMem", newHeMem},
		// The paper compares HeMem and MM explicitly with more threads.
		{"MM-24thr", newMM}, {"HeMem-24thr", newHeMem},
	}
	sizes := []int64{1, 8, 32, 64, 96, 128, 160, 192, 256}
	rows := make([]string, len(sizes))
	for i, wsGB := range sizes {
		rows[i] = fmt.Sprintf("%d", wsGB)
	}
	scoreGrid(w, NewSweep("fig5", o),
		"ws(GB)\tDRAM\tNVM\tMM\tNimble\tHeMem\tMM-24thr\tHeMem-24thr",
		rows, systems,
		func(row int, sys namedMgr) float64 {
			threads := 16
			if sys.name == "MM-24thr" || sys.name == "HeMem-24thr" {
				threads = 24
			}
			return gupsRun(o, sys.mk(), gups.Config{
				Threads: threads, WorkingSet: sizes[row] * sim.GB, Seed: o.seed(),
			}, warm, measure)
		},
		"GUPS, 16 threads (plus 24-thread MM/HeMem); paper: HeMem=MM=DRAM when <=32GB; HeMem 3.2x MM at 128GB (3.7x at 24 thr); all near NVM beyond DRAM")
}

// runFig6: fixed 512 GB working set, growing hot set.
func runFig6(w io.Writer, o Opts) {
	warm := o.scale(90, 300) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	systems := []namedMgr{
		{"MM", newMM}, {"Nimble", newNimble}, {"HeMem", newHeMem},
		{"MM-24thr", newMM}, {"HeMem-24thr", newHeMem},
	}
	sizes := []int64{1, 4, 8, 16, 32, 64, 128, 256}
	rows := make([]string, len(sizes))
	for i, hotGB := range sizes {
		rows[i] = fmt.Sprintf("%d", hotGB)
	}
	scoreGrid(w, NewSweep("fig6", o),
		"hot(GB)\tMM\tNimble\tHeMem\tMM-24thr\tHeMem-24thr",
		rows, systems,
		func(row int, sys namedMgr) float64 {
			threads := 16
			if sys.name == "MM-24thr" || sys.name == "HeMem-24thr" {
				threads = 24
			}
			return gupsRun(o, sys.mk(), gups.Config{
				Threads: threads, WorkingSet: 512 * sim.GB, HotSet: sizes[row] * sim.GB, Seed: o.seed(),
			}, warm, measure)
		},
		"GUPS; paper: HeMem holds while hot fits DRAM (up to 2x MM); Nimble ~25% of MM; all converge once hot set exceeds DRAM; at 24 threads MM leads below 8GB hot")
}

// runFig7: thread scalability on the dynamic hot-set experiment ("we run
// the dynamic hot set experiment with different thread counts and report
// the average GUPS") — migration stays active, so the copy-thread backend
// pays its four cores where DMA pays none.
func runFig7(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(40, 120) * sim.Second
	heThreads := func() machine.Manager {
		cfg := core.DefaultConfig()
		cfg.NoDMA = true
		return core.New(cfg)
	}
	systems := []namedMgr{{"MM", newMM}, {"HeMem(DMA)", newHeMem}, {"HeMem(4 copy thr)", heThreads}}
	counts := []int{1, 4, 8, 12, 16, 20, 21, 22, 24}
	rows := make([]string, len(counts))
	for i, threads := range counts {
		rows[i] = fmt.Sprintf("%d", threads)
	}
	scoreGrid(w, NewSweep("fig7", o),
		"threads\tMM\tHeMem(DMA)\tHeMem(4 copy thr)",
		rows, systems,
		func(row int, sys namedMgr) float64 {
			m := machine.New(o.machineConfig(), sys.mk())
			g := gups.New(m, gups.Config{
				Threads: counts[row], WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			g.ResetScore()
			// Shift part of the hot set so migration runs throughout
			// the measurement window.
			g.ShiftHotSet(4*sim.GB, o.seed()+31)
			m.Run(measure)
			return g.Score()
		},
		"GUPS; paper: beyond 21 threads HeMem's background threads cost ~10% vs MM; copy threads cost a further 14%")
}

// runTab2: the asymmetric read/write experiment — 512 GB working set,
// 256 GB hot of which 128 GB is write-only.
func runTab2(w io.Writer, o Opts) {
	warm := o.scale(120, 300) * sim.Second
	measure := o.scale(30, 60) * sim.Second
	cfg := gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
		WriteOnlyHot: 128 * sim.GB, Seed: o.seed(),
	}
	systems := []namedMgr{{"Nimble", newNimble}, {"MM", newMM}, {"HeMem", newHeMem}}
	s := NewSweep("tab2", o)
	for _, sys := range systems {
		s.Cell(sys.name, func(CellInfo) any { return gupsRun(o, sys.mk(), cfg, warm, measure) })
	}
	res := s.Gather()
	he := f64(res[len(res)-1])
	tw := table(w)
	fmt.Fprintln(tw, "System\tGUPS\tx")
	for i, sys := range systems {
		fmt.Fprintf(tw, "%s\t%.4f\t%.2f\n", sys.name, f64(res[i]), f64(res[i])/he)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: Nimble 0.020 (0.36x), MM 0.048 (0.86x), HeMem 0.056 (1x)")
}

// runFig8: the overhead breakdown — manual placement (Opt), PEBS tracking
// only, PT scanning only, then each with migration enabled.
func runFig8(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	gcfg := gups.Config{Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed()}

	// Manual placement puts the known hot set in DRAM at first touch and
	// fills remaining DRAM with cold pages (reserving room for hot pages
	// not yet touched), matching the Opt baseline's placement.
	manual := func(m *machine.Machine, g *gups.GUPS) func(p *vm.Page) vm.Tier {
		hot := make(map[vm.PageID]bool, g.HotPages().Len())
		for _, p := range g.HotPages().Pages() {
			hot[p.ID] = true
		}
		hotLeft := int64(g.HotPages().Len())
		var used int64
		return func(p *vm.Page) vm.Tier {
			ps := p.Region.PageSize
			if hot[p.ID] {
				hotLeft--
				used += ps
				return vm.TierDRAM
			}
			if used+hotLeft*ps+ps <= m.Cfg.DRAMSize {
				used += ps
				return vm.TierDRAM
			}
			return vm.TierNVM
		}
	}

	type cfgFn func(m *machine.Machine, g *gups.GUPS) machine.Manager
	bars := []struct {
		name string
		mk   cfgFn
	}{
		{"Opt", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return xmem.Opt(g.HotPages()) }},
		{"PEBS", func(m *machine.Machine, g *gups.GUPS) machine.Manager {
			cfg := core.DefaultConfig()
			cfg.NoMigration = true
			cfg.PlaceFunc = manual(m, g)
			return core.New(cfg)
		}},
		{"PT Scan", func(m *machine.Machine, g *gups.GUPS) machine.Manager {
			opt := ptscan.ScanOnly()
			opt.PlaceFunc = manual(m, g)
			return ptscan.New(opt)
		}},
		{"PEBS + Migrate", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return core.New(core.DefaultConfig()) }},
		{"PT Scan + M. Sync", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return ptscan.New(ptscan.HeMemPTSync()) }},
		{"PT Scan + M. Async", func(m *machine.Machine, g *gups.GUPS) machine.Manager { return ptscan.New(ptscan.HeMemPTAsync()) }},
	}
	s := NewSweep("fig8", o)
	for _, b := range bars {
		s.Cell(b.name, func(CellInfo) any {
			// Two-phase construction: the manager needs the workload's
			// hot set, which needs the machine.
			boot := machine.New(o.machineConfig(), xmem.NVMOnly())
			g := gups.New(boot, gcfg)
			mgr := b.mk(boot, g)
			boot.Mgr = mgr
			mgr.Attach(boot)
			boot.Warm()
			boot.Run(warm)
			g.ResetScore()
			boot.Run(measure)
			return g.Score()
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "Configuration\tGUPS\tvs Opt")
	opt := f64(res[0])
	for i, b := range bars {
		fmt.Fprintf(tw, "%s\t%.4f\t%.2f\n", b.name, f64(res[i]), f64(res[i])/opt)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: PEBS ~= Opt; PT Scan -18%; PEBS+Migrate within 5.9% of Opt; M.Sync 18% of Opt; M.Async 43% of Opt")
}

// runFig9: instantaneous GUPS over time with a hot set shift.
func runFig9(w io.Writer, o Opts) {
	pre := o.scale(60, 150) * sim.Second
	post := o.scale(60, 150) * sim.Second
	systems := []namedMgr{
		{"MM", newMM}, {"HeMem", newHeMem}, {"Nimble", newNimble}, {"HeMem-PT-Async", newPTAsync},
	}
	var times []int64
	step := (pre + post) / 24
	for t := step; t <= pre+post; t += step {
		times = append(times, t)
	}
	s := NewSweep("fig9", o)
	for _, sys := range systems {
		s.Cell(sys.name, func(CellInfo) any {
			m := machine.New(o.machineConfig(), sys.mk())
			g := gups.New(m, gups.Config{
				Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
			})
			m.Warm()
			m.Run(pre)
			g.ShiftHotSet(4*sim.GB, o.seed()+99)
			m.Run(post)
			ts := m.Throughput(g.Name())
			vals := make([]float64, 0, len(times))
			for _, t := range times {
				vals = append(vals, ts.At(t)/1e9)
			}
			return vals
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprint(tw, "t(s)")
	for _, sys := range systems {
		fmt.Fprintf(tw, "\t%s", sys.name)
	}
	fmt.Fprintln(tw)
	for i, t := range times {
		fmt.Fprintf(tw, "%d", t/sim.Second)
		for _, vals := range res {
			fmt.Fprintf(tw, "\t%.4f", vals.([]float64)[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintf(w, "GUPS; hot set shifts at t=%ds; paper: HeMem and MM recover within ~20s; PT-Async stays at ~54%% of HeMem\n", pre/sim.Second)
}

// runFig10: PEBS sampling period sweep with drop fractions.
func runFig10(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	periods := []float64{250, 1000, 5000, 20000, 100000, 500000, 1000000}
	type periodRes struct {
		score, dropped float64
	}
	s := NewSweep("fig10", o)
	for _, period := range periods {
		s.Cell(fmt.Sprintf("period=%.0f", period), func(CellInfo) any {
			cfg := core.DefaultConfig()
			cfg.SamplePeriod = period
			h := core.New(cfg)
			m := machine.New(o.machineConfig(), h)
			g := gups.New(m, gups.Config{
				Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			g.ResetScore()
			m.Run(measure)
			return periodRes{g.Score(), h.Buffer().DropFraction()}
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "period\tGUPS\tdropped")
	for i, period := range periods {
		r := res[i].(periodRes)
		fmt.Fprintf(tw, "%.0f\t%.4f\t%.2f%%\n", period, r.score, r.dropped*100)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: up to 30% drops below 1k; 5k-100k good; >100k too coarse to track the hot set")
}

// runFig11: hot read threshold sweep (write threshold at half).
func runFig11(w io.Writer, o Opts) {
	warm := o.scale(60, 240) * sim.Second
	measure := o.scale(15, 60) * sim.Second
	thresholds := []int{2, 4, 6, 8, 12, 16, 24, 32}
	s := NewSweep("fig11", o)
	for _, th := range thresholds {
		s.Cell(fmt.Sprintf("threshold=%d", th), func(CellInfo) any {
			cfg := core.DefaultConfig()
			cfg.HotReadThreshold = th
			cfg.HotWriteThreshold = (th + 1) / 2
			return gupsRun(o, core.New(cfg), gups.Config{
				Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
			}, warm, measure)
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "threshold\tGUPS")
	for i, th := range thresholds {
		fmt.Fprintf(tw, "%d\t%.4f\n", th, f64(res[i]))
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: low thresholds overestimate the hot set; 6-20 good; >20 underestimates (slow identification)")
}

// runFig12: cooling threshold sweep on the dynamic hot-set experiment —
// the score is measured after the shift, while adaptation is underway.
func runFig12(w io.Writer, o Opts) {
	pre := o.scale(90, 150) * sim.Second
	post := o.scale(60, 150) * sim.Second
	thresholds := []int{8, 10, 18, 30}
	s := NewSweep("fig12", o)
	for _, ct := range thresholds {
		s.Cell(fmt.Sprintf("cooling=%d", ct), func(CellInfo) any {
			cfg := core.DefaultConfig()
			cfg.CoolThreshold = ct
			h := core.New(cfg)
			m := machine.New(o.machineConfig(), h)
			g := gups.New(m, gups.Config{
				Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: o.seed(),
			})
			m.Warm()
			m.Run(pre)
			g.ShiftHotSet(4*sim.GB, o.seed()+7)
			g.ResetScore()
			m.Run(post)
			return g.Score()
		})
	}
	res := s.Gather()
	tw := table(w)
	fmt.Fprintln(tw, "cooling\tGUPS(after shift)")
	for i, ct := range thresholds {
		fmt.Fprintf(tw, "%d\t%.4f\n", ct, f64(res[i]))
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: cooling == hot threshold (8) too aggressive; higher adapts faster; 30 keeps too many pages hot")
}
