package bench

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// The fleet table must be byte-identical at any -jobs: every machine is
// one sweep cell with a declaration-order seed, and aggregation walks
// Gather's declaration-order results.
func TestFleetByteIdenticalAcrossJobs(t *testing.T) {
	run := func(jobs int) string {
		var buf bytes.Buffer
		runFleet(&buf, Opts{Jobs: jobs, Tenants: 4})
		return buf.String()
	}
	one := run(1)
	eight := run(8)
	if one != eight {
		t.Fatalf("fleet output differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s", one, eight)
	}
	for _, want := range []string{"gold", "silver", "besteffort", "lifecycle:", "zero violations"} {
		if !strings.Contains(one, want) {
			t.Errorf("fleet output lacks %q:\n%s", want, one)
		}
	}
}

// fairnessMachine builds the single-machine testbed the fairness
// property tests run on: a DRAM tier far smaller than the summed tenant
// working sets, the auditor checking tenant conservation every quantum,
// and free targets scaled to the tier (the 1 GB defaults would drain it).
func fairnessMachine(seed uint64, dram int64) (*machine.Machine, *machine.TenantRuntime, *sim.Rand) {
	ccfg := core.DefaultConfig()
	ccfg.LargeAllocThreshold = 16 * sim.MB
	ccfg.FreeDRAMTarget = 16 * sim.MB
	h := core.New(ccfg)
	mcfg := machine.DefaultConfig()
	mcfg.Seed = seed
	mcfg.Audit = true
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: dram},
		{ID: vm.TierNVM, Capacity: 4 * sim.GB, UEVictim: true},
	}
	m := machine.New(mcfg, h)
	return m, m.EnableTenants(), sim.NewRand(seed)
}

// Satellite property: N equal-class, equal-size tenants converge to
// equal DRAM shares within tolerance — the weighted-fair selector's
// skew term demotes whoever is over its share first, and promotion
// prefers whoever is under. Checked across three seeds.
func TestEqualTenantsConvergeToFairShares(t *testing.T) {
	const n = 4
	for _, seed := range []uint64{1, 2, 3} {
		m, tr, rng := fairnessMachine(seed, 256*sim.MB)
		for i := 0; i < n; i++ {
			spec := machine.TenantSpec{Name: fmt.Sprintf("eq%d", i), Class: machine.Silver}
			if _, res := tr.Admit(spec, func(id vm.TenantID) machine.TenantApp {
				return startFleetApp(m, id, 128*sim.MB, rng)
			}); res != machine.Admitted {
				t.Fatalf("seed %d: tenant %d admit = %v", seed, i, res)
			}
		}
		m.Run(4 * sim.Second)

		var shares [n]int64
		var total int64
		for id := vm.TenantID(1); id <= n; id++ {
			shares[id-1] = m.AS.TenantBytes(id, vm.TierDRAM)
			total += shares[id-1]
		}
		if total == 0 {
			t.Fatalf("seed %d: no tenant holds DRAM", seed)
		}
		mean := float64(total) / n
		for i, s := range shares {
			if math.Abs(float64(s)-mean) > 0.5*mean {
				t.Errorf("seed %d: tenant %d holds %d MB DRAM, mean %0.f MB — outside ±50%% (all: %v)",
					seed, i+1, s/sim.MB, mean/float64(sim.MB), shares)
			}
		}
	}
}

// Satellite property: a gold tenant's DRAM footprint never drops below
// its soft reservation while best-effort tenants exist to evict, even
// as the best-effort population churns and each fresh arrival floods
// DRAM with its faulted-in pages.
func TestGoldReserveHeldUnderChurn(t *testing.T) {
	const reserve = 128 * sim.MB
	m, tr, rng := fairnessMachine(7, 256*sim.MB)

	var spec machine.TenantSpec
	spec.Name, spec.Class = "gold", machine.Gold
	spec.Reserve[vm.TierDRAM] = reserve
	goldID, res := tr.Admit(spec, func(id vm.TenantID) machine.TenantApp {
		return startFleetApp(m, id, 192*sim.MB, rng)
	})
	if res != machine.Admitted {
		t.Fatalf("gold admit = %v", res)
	}

	var beIDs []vm.TenantID
	admitBE := func() {
		var be machine.TenantSpec
		be.Name, be.Class = "be", machine.BestEffort
		be.Cap[vm.TierDRAM] = 64 * sim.MB
		id, res := tr.Admit(be, func(id vm.TenantID) machine.TenantApp {
			return startFleetApp(m, id, 128*sim.MB, rng)
		})
		if res != machine.Admitted {
			t.Fatalf("besteffort admit = %v", res)
		}
		beIDs = append(beIDs, id)
	}
	for i := 0; i < 3; i++ {
		admitBE()
	}

	const span = 5 * sim.Second
	var churn func(now int64)
	churn = func(now int64) {
		tr.Depart(beIDs[0])
		beIDs = beIDs[1:]
		admitBE()
		if now+500*sim.Millisecond < span {
			m.Events.Schedule(now+500*sim.Millisecond, churn)
		}
	}
	m.Events.Schedule(500*sim.Millisecond, churn)

	// Sample gold's DRAM footprint every 100 ms after a settling second:
	// "never drops below" is checked throughout the churn, not just at
	// the end of the run.
	minGold := int64(math.MaxInt64)
	var sample func(now int64)
	sample = func(now int64) {
		if b := m.AS.TenantBytes(goldID, vm.TierDRAM); b < minGold {
			minGold = b
		}
		if now+100*sim.Millisecond < span {
			m.Events.Schedule(now+100*sim.Millisecond, sample)
		}
	}
	m.Events.Schedule(1*sim.Second, sample)

	m.Run(span)

	if minGold < reserve {
		t.Fatalf("gold dipped to %d MB DRAM during churn, below its %d MB reservation",
			minGold/sim.MB, reserve/sim.MB)
	}
	beDRAM := int64(0)
	for _, id := range beIDs {
		beDRAM += m.AS.TenantBytes(id, vm.TierDRAM)
	}
	if beDRAM == 0 {
		t.Fatalf("no besteffort pages in DRAM — the reservation was never contested")
	}
}
