package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/shard"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("fleet", "Extension: datacenter fleet — machines × churning QoS tenants, per-class p99, DRAM share, migration traffic", runFleet)
}

// The fleet experiment is the multi-tenant QoS showcase: every machine
// hosts a churning population of gold/silver/besteffort tenants
// contending for a DRAM tier sized well below their summed working
// sets. Tenants arrive through admission control (reservations that
// don't fit queue FIFO), run a skewed random-access workload, and
// depart with their regions drained through the normal migrator — all
// on the sim timeline, with the invariant auditor checking tenant
// conservation every quantum on every machine. One machine is one sweep
// cell, so the fleet scales across the worker pool and the aggregate
// table is byte-identical at any -jobs.

// fleetDRAM/fleetNVM size each machine's tiers: DRAM holds roughly a
// third of the steady tenant working set, so QoS decides who runs from
// fast memory.
const (
	fleetDRAM = 1 * sim.GB
	fleetNVM  = 16 * sim.GB
)

// fleetApp is one tenant's workload: 90% of accesses hit a random
// quarter of its region (the hot set), the rest are uniform — GUPS
// shaped, but per-tenant, so per-class latency separates cleanly when
// gold hot sets fit DRAM and besteffort ones don't.
type fleetApp struct {
	name    string
	region  *vm.Region
	hot     *vm.PageSet
	cold    *vm.PageSet
	comps   []machine.Component
	stopped bool
}

// startFleetApp maps the tenant's owned region, faults it in, and
// registers the workload. rng draws the hot-set scatter; it fires at
// admission time, which the event timeline orders deterministically.
func startFleetApp(m *machine.Machine, id vm.TenantID, size int64, rng *sim.Rand) *fleetApp {
	name := fmt.Sprintf("tenant%d", id)
	a := &fleetApp{name: name}
	a.region = m.AS.MapOwned(name, size, id)
	m.TouchRange(a.region, 0, a.region.NumPages())
	pages := a.region.AllPages()
	perm := rng.Perm(len(pages))
	nHot := len(pages) / 4
	if nHot < 1 {
		nHot = 1
	}
	hotPages := make([]*vm.Page, 0, nHot)
	coldPages := make([]*vm.Page, 0, len(pages)-nHot)
	for i, idx := range perm {
		if i < nHot {
			hotPages = append(hotPages, pages[idx])
		} else {
			coldPages = append(coldPages, pages[idx])
		}
	}
	a.hot = vm.NewPageSet(name+"-hot", hotPages)
	a.cold = vm.NewPageSet(name+"-cold", coldPages)
	a.comps = []machine.Component{
		{Set: a.hot, Share: 0.9, ReadBytes: 8, WriteBytes: 8, Pattern: mem.Random},
		{Set: a.cold, Share: 0.1, ReadBytes: 8, WriteBytes: 8, Pattern: mem.Random},
	}
	m.AddWorkloadFor(a, id)
	return a
}

func (a *fleetApp) Name() string                         { return a.name }
func (a *fleetApp) Threads() int                         { return 1 }
func (a *fleetApp) Components() []machine.Component      { return a.comps }
func (a *fleetApp) OnOps(now int64, ops, opTime float64) {}
func (a *fleetApp) Done() bool                           { return a.stopped }
func (a *fleetApp) Stop()                                { a.stopped = true }
func (a *fleetApp) Regions() []*vm.Region                { return []*vm.Region{a.region} }

// fleetSpec builds one tenant's quota spec: gold and silver carry soft
// DRAM reservations admission control enforces; besteffort runs
// unreserved under a hard DRAM cap.
func fleetSpec(name string, class machine.QoSClass) machine.TenantSpec {
	spec := machine.TenantSpec{Name: name, Class: class}
	switch class {
	case machine.Gold:
		spec.Reserve[vm.TierDRAM] = 128 * sim.MB
	case machine.Silver:
		spec.Reserve[vm.TierDRAM] = 64 * sim.MB
	default:
		// Tighter than a typical hot set, so besteffort always runs
		// partly from NVM while DRAM is contended.
		spec.Cap[vm.TierDRAM] = 48 * sim.MB
	}
	return spec
}

// fleetClasses resolves the tenant class mix: the -qos flag pins every
// tenant to one class, otherwise the cell rng cycles the three.
func fleetClasses(o Opts) ([]machine.QoSClass, error) {
	if o.QoS == "" {
		return []machine.QoSClass{machine.Gold, machine.Silver, machine.BestEffort}, nil
	}
	c, ok := machine.ParseQoS(o.QoS)
	if !ok {
		return nil, fmt.Errorf("unknown QoS class %q (valid: %v)", o.QoS, machine.QoSNames())
	}
	return []machine.QoSClass{c}, nil
}

// fleetMachineResult is one machine's contribution to the fleet table.
type fleetMachineResult struct {
	hist      [machine.NumQoSClasses]*sim.Histogram
	dramBytes [machine.NumQoSClasses]int64
	tenants   [machine.NumQoSClasses]int64
	mig       [machine.NumQoSClasses]int64
	stats     machine.TenantStats
	audits    int64
}

// fleetChurn is one pre-drawn lifecycle event: the longest-lived active
// tenant departs and a fresh arrival takes its place.
type fleetChurn struct {
	at    int64
	class machine.QoSClass
	size  int64
}

// fleetMachineState is one fleet machine built and ready to advance; the
// sharded group path keeps states around so a cell's machines step in
// lockstep across the shard pool.
type fleetMachineState struct {
	m  *machine.Machine
	tr *machine.TenantRuntime
}

// buildFleetMachine constructs one fleet machine with its initial tenant
// population and pre-drawn churn schedule. Everything is derived from the
// machine's seed, so building machines concurrently is trivially
// deterministic.
func buildFleetMachine(o Opts, seed uint64, classes []machine.QoSClass, perMachine int, span int64) *fleetMachineState {
	rng := sim.NewRand(seed)

	ccfg := core.DefaultConfig()
	// Tenant regions are a few hundred MB — below the default 1 GB
	// growth threshold — and must be manager-tracked to migrate; the
	// default 1 GB free target would otherwise drain the whole tier.
	ccfg.LargeAllocThreshold = 64 * sim.MB
	ccfg.FreeDRAMTarget = 64 * sim.MB
	h := core.New(ccfg)

	mcfg := o.machineConfig()
	mcfg.Seed = seed
	mcfg.Audit = true
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: fleetDRAM},
		{ID: vm.TierNVM, Capacity: fleetNVM, UEVictim: true},
	}
	m := machine.New(mcfg, h)
	tr := m.EnableTenants()

	next := 0
	admitOne := func(class machine.QoSClass, size int64) {
		next++
		tr.Admit(fleetSpec(fmt.Sprintf("t%d", next), class), func(id vm.TenantID) machine.TenantApp {
			return startFleetApp(m, id, size, rng)
		})
	}
	drawSize := func() int64 { return (64 + int64(rng.Intn(97))) * 2 * sim.MB } // 128–320 MB
	drawClass := func() machine.QoSClass { return classes[rng.Intn(len(classes))] }

	for i := 0; i < perMachine; i++ {
		admitOne(drawClass(), drawSize())
	}

	// Pre-draw the churn schedule so every rng consumption is pinned to
	// declaration order; which tenant departs is resolved at fire time
	// (lowest active ID = longest-lived), which the timeline orders
	// deterministically.
	events := perMachine / 2
	if events < 1 {
		events = 1
	}
	every := span / int64(events+1)
	var churn []fleetChurn
	for k := 1; k <= events; k++ {
		churn = append(churn, fleetChurn{
			at:    int64(k)*every + rng.Int63n(every/2),
			class: drawClass(),
			size:  drawSize(),
		})
	}
	for _, ev := range churn {
		ev := ev
		m.Events.Schedule(ev.at, func(now int64) {
			for id := vm.TenantID(1); int(id) <= tr.NumTenants(); id++ {
				if tr.Active(id) {
					tr.Depart(id)
					break
				}
			}
			admitOne(ev.class, ev.size)
		})
	}

	return &fleetMachineState{m: m, tr: tr}
}

// collect reads one finished machine's contribution to the fleet table.
func (st *fleetMachineState) collect() fleetMachineResult {
	m, tr := st.m, st.tr
	var res fleetMachineResult
	for cl := 0; cl < machine.NumQoSClasses; cl++ {
		res.hist[cl] = tr.ClassHist(machine.QoSClass(cl))
		res.mig[cl] = tr.ClassMigrations(machine.QoSClass(cl))
	}
	for id := vm.TenantID(1); int(id) <= tr.NumTenants(); id++ {
		cl := tr.SpecOf(id).Class
		res.tenants[cl]++
		if tr.Active(id) {
			res.dramBytes[cl] += m.AS.TenantBytes(id, vm.TierDRAM)
		}
	}
	res.stats = tr.Stats()
	res.audits = m.AuditsRun()
	return res
}

// fleetMachine runs one machine of the fleet for span sim-ns — the
// historical serial cell body, byte for byte.
func fleetMachine(o Opts, c CellInfo, classes []machine.QoSClass, perMachine int, span int64) fleetMachineResult {
	st := buildFleetMachine(o, c.Seed, classes, perMachine, span)
	st.m.Run(span)
	return st.collect()
}

// fleetGroup runs one cell's group of machines, fanning the independent
// per-machine work across the shard pool: builds in parallel, then
// lockstep quantum stepping — every machine advances one base quantum
// before any machine starts the next — then collection in fixed machine
// order. Each machine's seed is its fleet-wide machine index's cell seed,
// and splitting a machine's span at base-quantum boundaries reproduces
// its single-Run step schedule exactly, so results are byte-identical to
// the serial one-machine-per-cell path at every worker count.
func fleetGroup(o Opts, seeds []uint64, classes []machine.QoSClass, perMachine int, span int64, pool *shard.Pool) []fleetMachineResult {
	states := make([]*fleetMachineState, len(seeds))
	pool.Run(len(states), func(i int) {
		states[i] = buildFleetMachine(o, seeds[i], classes, perMachine, span)
	})
	quantum := states[0].m.Cfg.Quantum
	for off := int64(0); off < span; {
		dt := quantum
		if left := span - off; left < dt {
			dt = left
		}
		pool.Run(len(states), func(i int) { states[i].m.Run(dt) })
		off += dt
	}
	out := make([]fleetMachineResult, len(states))
	for i, st := range states {
		out[i] = st.collect()
	}
	return out
}

func runFleet(w io.Writer, o Opts) {
	classes, err := fleetClasses(o)
	if err != nil {
		fmt.Fprintln(w, err)
		return
	}
	machines := int(o.scale(16, 200))
	perMachine := int(o.scale(12, 24))
	if o.Tenants > 0 {
		perMachine = o.Tenants
	}
	span := o.scale(8, 60) * sim.Second

	// One machine per cell on the serial path; with -shards N the
	// machines group into cells of N stepped in lockstep on the shard
	// pool. Machine i's seed is cellSeed("fleet", i, ...) either way, so
	// the flattened machine-order results — and the table built from
	// them — are byte-identical at every shard count.
	shards := o.shards()
	pool := shard.NewPool(shards)
	s := NewSweep("fleet", o)
	if shards <= 1 {
		for i := 0; i < machines; i++ {
			s.Cell(fmt.Sprintf("machine=%d", i), func(c CellInfo) any {
				return fleetMachine(o, c, classes, perMachine, span)
			})
		}
	} else {
		for lo := 0; lo < machines; lo += shards {
			hi := lo + shards
			if hi > machines {
				hi = machines
			}
			seeds := make([]uint64, 0, hi-lo)
			for i := lo; i < hi; i++ {
				seeds = append(seeds, cellSeed("fleet", i, o.seed()))
			}
			s.Cell(fmt.Sprintf("machines=%d-%d", lo, hi-1), func(c CellInfo) any {
				return fleetGroup(o, seeds, classes, perMachine, span, pool)
			})
		}
	}
	res := s.Gather()
	flat := make([]fleetMachineResult, 0, machines)
	for _, v := range res {
		switch r := v.(type) {
		case fleetMachineResult:
			flat = append(flat, r)
		case []fleetMachineResult:
			flat = append(flat, r...)
		}
	}

	// Fleet-wide aggregation in declaration order: exact histogram
	// merges per class, summed DRAM bytes, migrations, and lifecycle
	// counters.
	var hist [machine.NumQoSClasses]*sim.Histogram
	for cl := range hist {
		hist[cl] = sim.NewHistogram()
	}
	var dramBytes, tenants, mig [machine.NumQoSClasses]int64
	var stats machine.TenantStats
	var audits int64
	for _, r := range flat {
		for cl := 0; cl < machine.NumQoSClasses; cl++ {
			hist[cl].Merge(r.hist[cl])
			dramBytes[cl] += r.dramBytes[cl]
			tenants[cl] += r.tenants[cl]
			mig[cl] += r.mig[cl]
		}
		stats.Admitted += r.stats.Admitted
		stats.Queued += r.stats.Queued
		stats.Rejected += r.stats.Rejected
		stats.Departed += r.stats.Departed
		audits += r.audits
	}
	var totalDRAM int64
	for _, b := range dramBytes {
		totalDRAM += b
	}

	tw := table(w)
	fmt.Fprintln(tw, "class\ttenants\tp50 ns\tp99 ns\tdram GB\tdram share\tmigrations")
	for _, cl := range []machine.QoSClass{machine.Gold, machine.Silver, machine.BestEffort} {
		if tenants[cl] == 0 {
			continue
		}
		share := 0.0
		if totalDRAM > 0 {
			share = 100 * float64(dramBytes[cl]) / float64(totalDRAM)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.2f\t%.1f%%\t%d\n",
			cl, tenants[cl], hist[cl].Quantile(0.50), hist[cl].Quantile(0.99),
			float64(dramBytes[cl])/float64(sim.GB), share, mig[cl])
	}
	tw.Flush()
	fmt.Fprintf(w, "lifecycle: %d admitted, %d queued, %d rejected, %d departed across %d machines\n",
		stats.Admitted, stats.Queued, stats.Rejected, stats.Departed, machines)
	fmt.Fprintf(w, "auditor: every quantum on every machine (%d audits), zero violations\n", audits)
	fmt.Fprintf(w, "%d machines x %d churning tenants on %d GB DRAM + %d GB NVM; gold/silver reserve DRAM, besteffort capped\n",
		machines, perMachine, fleetDRAM/sim.GB, fleetNVM/sim.GB)
}
