package bench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The engine runs cells on workers and returns results in declaration
// order, whatever the worker count.
func TestSweepGatherOrder(t *testing.T) {
	for _, jobs := range []int{1, 3, 16} {
		s := NewSweep("unit", Opts{Jobs: jobs})
		const n = 40
		for i := 0; i < n; i++ {
			s.Cell(fmt.Sprintf("cell%d", i), func(c CellInfo) any { return c.Index * c.Index })
		}
		if s.Len() != n {
			t.Fatalf("jobs=%d: Len=%d, want %d", jobs, s.Len(), n)
		}
		res := s.Gather()
		for i, v := range res {
			if v.(int) != i*i {
				t.Fatalf("jobs=%d: res[%d]=%v, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// Cell seeds derive from (experiment id, cell index, base seed) only:
// distinct per cell, stable across runs, independent of worker count.
func TestSweepCellSeeds(t *testing.T) {
	mk := func(exp string, o Opts) []uint64 {
		s := NewSweep(exp, o)
		var seeds []uint64
		for i := 0; i < 8; i++ {
			s.Cell("c", func(c CellInfo) any { return nil })
			seeds = append(seeds, s.cells[i].info.Seed)
		}
		return seeds
	}
	a := mk("fig5", Opts{Jobs: 1})
	b := mk("fig5", Opts{Jobs: 8})
	c := mk("fig6", Opts{Jobs: 1})
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d varies with worker count", i)
		}
		if a[i] == c[i] {
			t.Errorf("seed %d identical across experiments", i)
		}
		if seen[a[i]] {
			t.Errorf("duplicate cell seed %x", a[i])
		}
		seen[a[i]] = true
	}
	if d := mk("fig5", Opts{Jobs: 1, Seed: 99}); d[0] == a[0] {
		t.Error("cell seed ignores the base seed")
	}
}

// Progress narration counts every cell exactly once.
func TestSweepProgress(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewSweep("prog", Opts{Jobs: 4, Progress: w})
	for i := 0; i < 10; i++ {
		s.Cell(fmt.Sprintf("c%d", i), func(CellInfo) any { return nil })
	}
	s.Gather()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if n := strings.Count(out, "done in"); n != 10 {
		t.Fatalf("narrated %d cells, want 10:\n%s", n, out)
	}
	if !strings.Contains(out, "/10 prog/c") {
		t.Fatalf("narration missing cell identity:\n%s", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// runExp renders one experiment with the given worker count.
func runExp(t *testing.T, id string, jobs int) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	e.Run(&buf, Opts{Jobs: jobs})
	return buf.String()
}

// Serial (-jobs 1) and parallel (-jobs 8) runs of the sweep-heavy
// experiments must produce byte-identical output: cells share no state
// and derive all randomness from declaration-time identity, so execution
// order cannot leak into results.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	for _, id := range []string{"fig5", "fig10"} {
		t.Run(id, func(t *testing.T) {
			serial := runExp(t, id, 1)
			parallel := runExp(t, id, 8)
			if serial != parallel {
				t.Fatalf("%s output differs between -jobs 1 and -jobs 8:\n--- serial ---\n%s\n--- jobs=8 ---\n%s",
					id, serial, parallel)
			}
			if len(serial) < 100 {
				t.Fatalf("%s output suspiciously short:\n%s", id, serial)
			}
		})
	}
}

// The cheap sweeps give the same guarantee instantly, so they always run.
func TestParallelOutputByteIdenticalMicro(t *testing.T) {
	for _, id := range []string{"tab1", "fig1", "fig2", "fig3"} {
		if serial, parallel := runExp(t, id, 1), runExp(t, id, 8); serial != parallel {
			t.Fatalf("%s output differs between -jobs 1 and -jobs 8", id)
		}
	}
}

// The perf cases stay seeded-deterministic: each run's digest reproduces
// bit for bit (RunPerf's own doubled runs assert the same; this pins it
// at the test level alongside the parallel-output guarantee).
func TestPerfCasesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated runs")
	}
	for _, c := range perfCases {
		t.Run(c.id, func(t *testing.T) {
			d0 := c.run(17).digest
			d1 := c.run(17).digest
			if d0 != d1 {
				t.Fatalf("%s: digests differ across identically seeded runs: %016x vs %016x", c.id, d0, d1)
			}
		})
	}
}

// The tier-table refactor is load-bearing only if the classic two-tier
// testbed is untouched: every canonical experiment must render byte for
// byte what the pre-refactor code produced. testdata/golden-*.txt were
// captured from the default config before the tier table landed; a diff
// here means the default DRAM+NVM(+swap) behavior drifted.
func TestGoldenOutputsUnchanged(t *testing.T) {
	micro := []string{"tab1", "fig1", "fig2", "fig3"}
	full := []string{"ext-swap", "fig8", "tab2"}
	ids := micro
	if !testing.Short() {
		ids = append(ids, full...)
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden-"+id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			got := runExp(t, id, 0)
			if got != string(want) {
				t.Fatalf("%s output drifted from golden capture:\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}
