//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build.
// The heavyweight determinism replays skip under it: they assert
// value-level byte-identity (which instrumentation cannot change), and
// their concurrency shape is already race-covered by the cheaper
// TestParallelOutputByteIdentical and TestChaosSoak — running them
// race-instrumented would only push the race gate past its time budget.
const raceEnabled = true
