package bench

import (
	"math"
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// The trackers cross-product must render every registered tracker and
// policy (the -tracker/-policy filters narrow it; see TestTrackersFilter)
// and report the accuracy and traffic columns per cell.
func TestTrackersGridShape(t *testing.T) {
	trackers := trackerCells(Opts{})
	policies := policyCells(Opts{})
	if len(trackers) < 3 {
		t.Fatalf("registered trackers %v, want at least pebs, damon, idlepage", trackers)
	}
	if len(policies) < 2 {
		t.Fatalf("registered policies %v, want at least hemem, heat", policies)
	}
	for _, want := range []string{"pebs", "damon", "idlepage"} {
		if filterNames(trackers, want) == nil {
			t.Errorf("tracker %q not registered", want)
		}
	}
	for _, want := range []string{"hemem", "heat"} {
		if filterNames(policies, want) == nil {
			t.Errorf("policy %q not registered", want)
		}
	}
}

// The -tracker/-policy filters restrict the cross-product to one
// registered name and drop unknown names to an empty grid rather than
// silently running everything.
func TestTrackersFilter(t *testing.T) {
	if got := trackerCells(Opts{Tracker: "damon"}); len(got) != 1 || got[0] != "damon" {
		t.Errorf("tracker filter damon -> %v", got)
	}
	if got := policyCells(Opts{Policy: "heat"}); len(got) != 1 || got[0] != "heat" {
		t.Errorf("policy filter heat -> %v", got)
	}
	if got := trackerCells(Opts{Tracker: "nope"}); got != nil {
		t.Errorf("unknown tracker filter -> %v, want nil", got)
	}
}

// Same seed ⇒ byte-identical trackers output at every worker count: the
// cross-product cells derive all randomness from declaration-time
// identity, so scheduling order cannot leak into the table.
func TestTrackersSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	if raceEnabled {
		// Sweep-engine concurrency is race-covered by the cheaper
		// TestParallelOutputByteIdentical; this test pins values, which
		// instrumentation cannot change, and costs ~10 min under -race.
		t.Skip("value-level determinism check; skipped under the race detector")
	}
	serial := runExp(t, "trackers", 1)
	parallel := runExp(t, "trackers", 8)
	if serial != parallel {
		t.Fatalf("trackers output differs between -jobs 1 and -jobs 8:\n--- serial ---\n%s\n--- jobs=8 ---\n%s",
			serial, parallel)
	}
	// The grid covers the full cross-product: every tracker × policy pair
	// appears on some row (tabwriter pads columns with spaces, so match
	// both names on one line).
	for _, tr := range trackerCells(Opts{}) {
		for _, po := range policyCells(Opts{}) {
			found := false
			for _, line := range strings.Split(serial, "\n") {
				if strings.Contains(line, tr) && strings.Contains(line, " "+po+" ") {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("cell %s×%s missing from output:\n%s", tr, po, serial)
			}
		}
	}
}

// trackerChaosOutcome digests everything a chaos replay can legally
// differ in for a given tracker.
type trackerChaosOutcome struct {
	score uint64
	ops   uint64
	stats core.Stats
	fc    machine.FaultStats
	moved [3]int64
}

// chaosTrackerRun replays one short chaos soak — compound episodes, CE
// storms, CXL offline/online cycles, the invariant auditor checking
// every quantum — with the given tracker driving the default policy on
// the chaosMachine testbed.
func chaosTrackerRun(t *testing.T, tracker string, seed uint64) (trackerChaosOutcome, string) {
	t.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.Seed = seed
	mcfg.Faults = soakFaults()
	mcfg.Audit = true
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: 8 * sim.GB},
		{ID: vm.TierCXL, Capacity: 8 * sim.GB},
		{ID: vm.TierNVM, Capacity: 256 * sim.GB, UEVictim: true},
		{ID: vm.TierDisk, Capacity: 1 * sim.TB, Swap: true},
	}
	h := core.New(core.Config{Tracker: tracker})
	m := machine.New(mcfg, h)
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 32 * sim.GB, HotSet: 6 * sim.GB, Seed: seed,
	})
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	m.Warm()
	m.Run(3 * sim.Second)
	g.ResetScore()
	m.Run(5 * sim.Second)
	var csv strings.Builder
	if err := tel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := trackerChaosOutcome{
		score: math.Float64bits(g.Score()),
		ops:   math.Float64bits(m.TotalOps("gups")),
		stats: h.Stats(),
		fc:    *m.FaultCounters(),
		moved: [3]int64{
			m.Migrator.Moved(vm.TierDRAM, vm.TierCXL),
			m.Migrator.Moved(vm.TierCXL, vm.TierNVM),
			m.Migrator.Moved(vm.TierCXL, vm.TierDRAM),
		},
	}
	if out.fc.Injected() == 0 {
		t.Fatalf("%s chaos run injected no faults; scenario lost its coverage", tracker)
	}
	return out, csv.String()
}

// The scan-based trackers replay bit-identically under the full chaos
// menagerie with the auditor on: their RNG streams derive from the
// machine seed, not from scheduling, and an auditor violation panics the
// run.
func TestTrackersChaosReplayIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated chaos replays")
	}
	if raceEnabled {
		// Two serial replays compared for equality — no concurrency beyond
		// what TestChaosSoak already runs race-instrumented. Under -race this
		// test alone costs ~9.5 min and would blow the gate's budget.
		t.Skip("value-level determinism check; skipped under the race detector")
	}
	for _, tracker := range []string{"damon", "idlepage"} {
		t.Run(tracker, func(t *testing.T) {
			a, acsv := chaosTrackerRun(t, tracker, 23)
			b, bcsv := chaosTrackerRun(t, tracker, 23)
			if a != b {
				t.Errorf("replay diverged:\n%+v\nvs\n%+v", a, b)
			}
			if acsv != bcsv {
				t.Errorf("telemetry CSV diverged (%d vs %d bytes)", len(acsv), len(bcsv))
			}
		})
	}
}
