package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the parallel sweep engine. An experiment's sweep (working
// set sizes × managers, thread counts, sample periods, ...) decomposes
// into independent *cells* — one seeded machine build + run + measurement
// each — declared up front via Sweep.Cell. Gather fans the cells out over
// a worker pool and returns their results in declaration order, so tables
// and series rendered from them are byte-identical to a serial run
// regardless of worker count: every cell's randomness derives from
// (experiment id, cell index, base seed), never from execution order, and
// nothing in the simulator shares mutable state across machines.

// CellInfo identifies one cell of a sweep.
type CellInfo struct {
	// Exp is the owning experiment's id and Index the cell's position in
	// declaration order.
	Exp   string
	Index int
	// Label names the cell for progress narration, e.g. "ws=64GB/HeMem".
	Label string
	// Seed is the cell's private random stream, derived deterministically
	// from (Exp, Index, Opts.Seed). Cells that need cell-local randomness
	// beyond their declared workload seeds must draw from it (or split
	// it), never from a source influenced by scheduling.
	Seed uint64
}

type sweepCell struct {
	info CellInfo
	run  func(CellInfo) any
}

// Sweep collects an experiment's cells and runs them on a worker pool.
type Sweep struct {
	exp   string
	o     Opts
	cells []sweepCell
	done  atomic.Int64
	mu    sync.Mutex // serializes progress narration
}

// NewSweep starts an empty sweep for the experiment with the given id.
func NewSweep(exp string, o Opts) *Sweep {
	return &Sweep{exp: exp, o: o}
}

// cellSeed derives a cell's seed from its declaration-time identity.
func cellSeed(exp string, index int, base uint64) uint64 {
	h := uint64(digestSeed)
	for i := 0; i < len(exp); i++ {
		h = mix(h, uint64(exp[i]))
	}
	h = mix(h, uint64(index))
	h = mix(h, base)
	return h
}

// Cell declares the next cell and returns its index into Gather's result
// slice. run executes on an arbitrary worker; it must touch only state it
// builds itself.
func (s *Sweep) Cell(label string, run func(c CellInfo) any) int {
	idx := len(s.cells)
	s.cells = append(s.cells, sweepCell{
		info: CellInfo{
			Exp:   s.exp,
			Index: idx,
			Label: label,
			Seed:  cellSeed(s.exp, idx, s.o.seed()),
		},
		run: run,
	})
	return idx
}

// Len returns the number of declared cells.
func (s *Sweep) Len() int { return len(s.cells) }

// Gather executes every declared cell — serially when the resolved worker
// count is 1, otherwise across the pool — and returns results indexed by
// declaration order.
func (s *Sweep) Gather() []any {
	results := make([]any, len(s.cells))
	workers := s.o.jobs()
	if workers > len(s.cells) {
		workers = len(s.cells)
	}
	if workers <= 1 {
		for i := range s.cells {
			results[i] = s.runCell(i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.cells) {
					return
				}
				results[i] = s.runCell(i)
			}
		}()
	}
	wg.Wait()
	return results
}

func (s *Sweep) runCell(i int) any {
	c := s.cells[i]
	start := time.Now()
	res := c.run(c.info)
	done := s.done.Add(1)
	if s.o.Progress != nil {
		s.mu.Lock()
		fmt.Fprintf(s.o.Progress, "cell %d/%d %s/%s done in %.1fs\n",
			done, len(s.cells), s.exp, c.info.Label, time.Since(start).Seconds())
		s.mu.Unlock()
	}
	return res
}

// f64 reads back a float64 cell result.
func f64(v any) float64 { return v.(float64) }
