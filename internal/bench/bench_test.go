package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Every table and figure of the paper's evaluation has an experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab1", "fig1", "fig2", "fig3",
		"fig5", "fig6", "fig7", "tab2", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "tab3", "tab4", "fig14", "fig15", "fig16",
		"ext-swap", "tiers", "chaos", "trackers", "tbscale", "fleet",
	}
	if len(All()) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(All()), len(want))
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID accepted unknown id")
	} else if !strings.Contains(err.Error(), "fig10") || !strings.Contains(err.Error(), "tab1") {
		t.Errorf("ByID miss error should list valid ids, got: %v", err)
	}
}

// All returns experiments sorted and with titles.
func TestAllSortedAndTitled(t *testing.T) {
	prev := ""
	for _, e := range All() {
		if e.ID <= prev {
			t.Fatalf("not sorted: %s after %s", e.ID, prev)
		}
		prev = e.ID
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

// The microbenchmark experiments run instantly and produce tables.
func TestMicroExperimentsProduceOutput(t *testing.T) {
	for _, id := range []string{"tab1", "fig1", "fig2", "fig3"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		e.Run(&buf, Opts{})
		out := buf.String()
		if len(out) < 100 {
			t.Errorf("%s: output too short:\n%s", id, out)
		}
		if !strings.Contains(out, "paper:") {
			t.Errorf("%s: missing paper expectation footer", id)
		}
	}
}

// A representative heavier experiment runs end to end at quick scale and
// emits the expected header row.
func TestFig5RunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep")
	}
	e, _ := ByID("fig5")
	var buf bytes.Buffer
	e.Run(&buf, Opts{})
	out := buf.String()
	if !strings.Contains(out, "DRAM") || !strings.Contains(out, "HeMem") {
		t.Fatalf("fig5 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "256") {
		t.Fatal("fig5 missing the 256 GB row")
	}
}

// Smoke-run a subset of mid-weight experiments end to end (the heavy app
// sweeps run via cmd/hemem-bench and the root benchmarks).
func TestExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	for _, id := range []string{"fig8", "fig11", "fig12", "tab2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := ByID(id)
			var buf bytes.Buffer
			e.Run(&buf, Opts{})
			if !strings.Contains(buf.String(), "paper:") {
				t.Fatalf("%s output missing expectation footer:\n%s", id, buf.String())
			}
		})
	}
}
