package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"github.com/tieredmem/hemem/internal/diurnal"
	"github.com/tieredmem/hemem/internal/gap"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/kvs"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/shard"
	"github.com/tieredmem/hemem/internal/sim"
)

// This file is the performance harness (as opposed to the fidelity
// experiments in the rest of the package): it measures how fast the
// simulator itself runs — wall-clock, simulated-ns per wall-second, and
// allocations — over the three workload families the paper evaluates,
// verifies that repeated seeded runs produce bit-identical simulated
// results, and times the full experiment suite serially vs on the
// parallel sweep engine (sweep.go), checking the outputs byte-identical.
// `make bench` writes the report to BENCH_pr8.json so perf regressions in
// the hot path (sampling, policy tick, migration queue) and in the
// harness show up as a diffable artifact; CI compares a fresh run against
// the committed baseline with cmd/perfdiff and warns on regressions.

// PerfResult is one scenario's measurement.
type PerfResult struct {
	ID string `json:"id"`
	// WallSeconds is the real time the timed run took.
	WallSeconds float64 `json:"wall_seconds"`
	// SimulatedNS is the simulated time the run covered.
	SimulatedNS int64 `json:"simulated_ns"`
	// SimNSPerSec is simulated nanoseconds advanced per wall-clock
	// second — the harness's primary throughput metric.
	SimNSPerSec float64 `json:"sim_ns_per_sec"`
	// Allocs and AllocBytes are heap allocations during the timed run.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Score is the workload's own figure of merit (GUPS, Mops, ...).
	Score float64 `json:"score"`
	// Digest fingerprints the simulated outcome (score bits, sample and
	// migration counters). Deterministic reports whether an identically
	// seeded rerun reproduced it bit-for-bit.
	Digest        string `json:"digest"`
	Deterministic bool   `json:"deterministic"`
	// ResidentBytes is the page-metadata footprint at the end of the run
	// (vm.AddressSpace.MetadataBytes — deterministic accounting, not heap
	// measurement). Only cases that exercise the sparse representation
	// report it; perfdiff flags >20% growth against the baseline.
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
	// IdleSimNSPerSec is simulated-ns per wall-second over the
	// phase-idle portions only, for cases with a phased schedule — the
	// portion the adaptive quantum accelerates.
	IdleSimNSPerSec float64 `json:"idle_sim_ns_per_sec,omitempty"`
}

// SweepPerf measures the parallel sweep engine: the full experiment
// suite run serially (one worker) and — when the host actually has more
// than one CPU — again on a worker pool, with the outputs compared byte
// for byte. On a 1-CPU host the parallel leg is skipped (a "speedup"
// measured there is just scheduling overhead, not a property of the
// engine) and Note says so.
type SweepPerf struct {
	// Experiments is the id set measured ("all").
	Experiments string `json:"experiments"`
	// Jobs is the worker pool size of the parallel leg, capped at NumCPU
	// so the comparison never oversubscribes the host.
	Jobs int `json:"jobs"`
	// NumCPU is runtime.NumCPU() on the measuring host — the context for
	// interpreting Speedup.
	NumCPU int `json:"num_cpu"`
	// SerialSeconds is the wall clock of the serial leg.
	// ParallelSeconds and Speedup are present only when the parallel leg
	// ran (NumCPU > 1).
	SerialSeconds   float64 `json:"serial_wall_seconds"`
	ParallelSeconds float64 `json:"parallel_wall_seconds,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	// IdenticalOutput reports whether the two legs produced byte-identical
	// experiment output (they must; see sweep.go). Absent when the
	// parallel leg was skipped.
	IdenticalOutput *bool `json:"identical_output,omitempty"`
	// OutputBytes is the size of the rendered suite output.
	OutputBytes int `json:"output_bytes"`
	// Note explains a skipped parallel leg.
	Note string `json:"note,omitempty"`
}

// ShardPerf measures the intra-cell shard engine (internal/shard): one
// fleet machine group stepped in lockstep on a 1-worker pool, then again
// at wider shard counts with the result digests compared. Like the sweep
// comparison, the scaling legs only run on a host with more than one CPU;
// on a 1-CPU host Legs is empty and Note says why (perfdiff warns when a
// baseline recorded on a multi-CPU host is missing them).
type ShardPerf struct {
	// Case names the scenario ("fleet-group").
	Case string `json:"case"`
	// Machines is the group size stepped in lockstep.
	Machines int `json:"machines"`
	// NumCPU is runtime.NumCPU() on the measuring host — the context for
	// interpreting the per-leg speedups.
	NumCPU int `json:"num_cpu"`
	// SerialSeconds is the wall clock of the 1-worker leg.
	SerialSeconds float64 `json:"serial_wall_seconds"`
	// Legs holds one measurement per shard count.
	Legs []ShardPerfLeg `json:"legs,omitempty"`
	// Note explains skipped scaling legs.
	Note string `json:"note,omitempty"`
}

// ShardPerfLeg is one shard-count measurement of the group scenario.
type ShardPerfLeg struct {
	Shards      int     `json:"shards"`
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"speedup"`
	// IdenticalOutput reports whether this leg's result digest matched the
	// serial leg's (it must; see internal/shard).
	IdenticalOutput bool `json:"identical_output"`
}

// PerfReport is the full harness output.
type PerfReport struct {
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Seed      uint64       `json:"seed"`
	Cases     []PerfResult `json:"cases"`
	Sweep     *SweepPerf   `json:"sweep,omitempty"`
	Shard     *ShardPerf   `json:"shard,omitempty"`
}

// mix folds v into an FNV-1a style accumulator.
func mix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

const digestSeed = 14695981039346656037

// perfOutcome is what one scenario run reports back to the harness.
// simNS, score and digest are always set; resident and the idle timings
// only by cases that exercise the sparse metadata / adaptive quantum.
type perfOutcome struct {
	simNS    int64
	score    float64
	digest   uint64
	resident int64
	// idleSimNS and idleWall cover the phase-idle portions of a phased
	// schedule, timed inside the case (the harness can only time the
	// whole run).
	idleSimNS int64
	idleWall  float64
}

// perfCase runs one scenario and returns the simulated span and an
// outcome digest.
type perfCase struct {
	id  string
	run func(seed uint64) perfOutcome
}

func perfGUPS(seed uint64) perfOutcome {
	h := newHeMem()
	mc := machine.DefaultConfig()
	mc.Seed = seed
	m := machine.New(mc, h)
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 17,
	})
	m.Warm()
	m.Run(10 * sim.Second)
	g.ResetScore()
	m.Run(5 * sim.Second)
	d := uint64(digestSeed)
	d = mix(d, math.Float64bits(g.Score()))
	d = mix(d, uint64(m.Faults()))
	d = mix(d, uint64(m.Migrator.Stats().Pages))
	d = mix(d, math.Float64bits(m.Migrator.Stats().Bytes))
	d = mix(d, math.Float64bits(m.TotalOps("gups")))
	return perfOutcome{simNS: m.Clock.Now(), score: g.Score(), digest: d}
}

func perfKVS(seed uint64) perfOutcome {
	h := newHeMem()
	mc := machine.DefaultConfig()
	mc.Seed = seed
	m := machine.New(mc, h)
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	d := kvs.NewDriver(m, kvs.DriverConfig{
		WorkingSet: 300 * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: 17,
	})
	m.Warm()
	m.Run(10 * sim.Second)
	var sink countingWriter
	tel.WriteCSV(&sink)
	dg := uint64(digestSeed)
	dg = mix(dg, math.Float64bits(d.Mops()))
	dg = mix(dg, uint64(m.Migrator.Stats().Pages))
	dg = mix(dg, uint64(sink.n))
	return perfOutcome{simNS: m.Clock.Now(), score: d.Mops(), digest: dg}
}

func perfGAP(seed uint64) perfOutcome {
	h := newHeMem()
	mc := machine.DefaultConfig()
	mc.Seed = seed
	m := machine.New(mc, h)
	d := gap.NewDriver(m, gap.DriverConfig{
		Scale: 28, Iterations: 3, EdgeVisitScale: 0.05, Seed: 17,
	})
	m.Warm()
	m.RunUntilDone(20000 * sim.Second)
	times := d.IterationTimes()
	dg := uint64(digestSeed)
	var last float64
	for _, t := range times {
		dg = mix(dg, uint64(t))
		last = float64(t) / 1e9
	}
	dg = mix(dg, uint64(m.Migrator.Stats().Pages))
	return perfOutcome{simNS: m.Clock.Now(), score: last, digest: dg}
}

// perfTBScale runs the quick diurnal schedule for several simulated
// cycles, timing the idle phases separately from the bursts. The dense
// variant is the fixed-quantum baseline with all page metadata
// materialized up front; the adaptive variant is the event-driven loop
// over lazily materialized metadata. Their digests must match (same
// simulated outcome); the JSON report carries the idle-portion speedup
// and the resident metadata bytes.
func perfTBScale(adaptive bool) func(seed uint64) perfOutcome {
	return func(seed uint64) perfOutcome {
		mc := machine.DefaultConfig()
		mc.Seed = seed
		mc.AdaptiveQuantum = adaptive
		m := machine.New(mc, newHeMem())
		cfg, _ := tbscaleConfig(Opts{})
		d := diurnal.New(m, cfg)
		if !adaptive {
			d.Region().MaterializeAll()
		}
		out := perfOutcome{}
		const cycles = 20
		for c := 0; c < cycles; c++ {
			var cycleSimNS int64
			var cycleWall float64
			for _, ph := range cfg.Phases {
				start := time.Now()
				m.Run(ph.Duration)
				wall := time.Since(start).Seconds()
				if ph.WindowHi <= ph.WindowLo {
					cycleSimNS += ph.Duration
					cycleWall += wall
				}
			}
			// Idle throughput is the best cycle's (min-wall benchmarking):
			// a GC pause or scheduler preemption landing in one cycle's
			// idle span must not masquerade as a simulator slowdown. The
			// first cycle never wins — it faults the windows in and builds
			// their page sets.
			if c > 0 && (out.idleWall == 0 || float64(cycleSimNS)/cycleWall > float64(out.idleSimNS)/out.idleWall) {
				out.idleSimNS, out.idleWall = cycleSimNS, cycleWall
			}
		}
		dg := uint64(digestSeed)
		dg = mix(dg, math.Float64bits(d.ActiveOps()))
		dg = mix(dg, uint64(m.Faults()))
		dg = mix(dg, uint64(m.Migrator.Stats().Pages))
		out.simNS = m.Clock.Now()
		out.score = d.ActiveOps()
		out.digest = dg
		out.resident = m.AS.MetadataBytes()
		return out
	}
}

// perfFleet runs one fleet machine — churning QoS tenants through
// admission, the weighted-fair selectors, drain-on-departure, and the
// per-quantum auditor — so regressions in the tenant path (score scans,
// per-tenant accounting, audit cost) show up in the report.
func perfFleet(seed uint64) perfOutcome {
	o := Opts{}
	classes, _ := fleetClasses(o)
	const span = 8 * sim.Second
	r := fleetMachine(o, CellInfo{Exp: "perf-fleet", Seed: seed}, classes, 12, span)
	dg := uint64(digestSeed)
	for cl := 0; cl < machine.NumQoSClasses; cl++ {
		dg = mix(dg, r.hist[cl].Count())
		dg = mix(dg, math.Float64bits(r.hist[cl].Quantile(0.99)))
		dg = mix(dg, uint64(r.dramBytes[cl]))
		dg = mix(dg, uint64(r.mig[cl]))
	}
	dg = mix(dg, uint64(r.stats.Admitted))
	dg = mix(dg, uint64(r.stats.Queued))
	dg = mix(dg, uint64(r.stats.Departed))
	return perfOutcome{simNS: span, score: r.hist[machine.Gold].Quantile(0.99), digest: dg}
}

type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) { c.n += len(p); return len(p), nil }

var perfCases = []perfCase{
	{"gups", perfGUPS},
	{"kvs", perfKVS},
	{"gap-bc", perfGAP},
	{"tbscale-dense", perfTBScale(false)},
	{"tbscale-adaptive", perfTBScale(true)},
	{"fleet", perfFleet},
}

// RunPerf executes every perf scenario twice — once to check seeded
// determinism, once timed with allocation accounting — and returns the
// report.
func RunPerf(o Opts) PerfReport {
	rep := PerfReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seed:      o.seed(),
	}
	for _, c := range perfCases {
		check := c.run(o.seed())

		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out := c.run(o.seed())
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)

		res := PerfResult{
			ID:            c.id,
			WallSeconds:   wall,
			SimulatedNS:   out.simNS,
			SimNSPerSec:   float64(out.simNS) / wall,
			Allocs:        after.Mallocs - before.Mallocs,
			AllocBytes:    after.TotalAlloc - before.TotalAlloc,
			Score:         out.score,
			Digest:        fmt.Sprintf("%016x", out.digest),
			Deterministic: check.digest == out.digest,
			ResidentBytes: out.resident,
		}
		if out.idleWall > 0 {
			res.IdleSimNSPerSec = float64(out.idleSimNS) / out.idleWall
		}
		rep.Cases = append(rep.Cases, res)
	}
	rep.Sweep = runSweepPerf(o)
	rep.Shard = runShardPerf(o)
	return rep
}

// fleetResultsDigest fingerprints a machine-ordered fleet result slice
// with the same fields perfFleet folds.
func fleetResultsDigest(rs []fleetMachineResult) uint64 {
	dg := uint64(digestSeed)
	for _, r := range rs {
		for cl := 0; cl < machine.NumQoSClasses; cl++ {
			dg = mix(dg, r.hist[cl].Count())
			dg = mix(dg, math.Float64bits(r.hist[cl].Quantile(0.99)))
			dg = mix(dg, uint64(r.dramBytes[cl]))
			dg = mix(dg, uint64(r.mig[cl]))
		}
		dg = mix(dg, uint64(r.stats.Admitted))
		dg = mix(dg, uint64(r.stats.Queued))
		dg = mix(dg, uint64(r.stats.Departed))
		dg = mix(dg, uint64(r.audits))
	}
	return dg
}

// runShardPerf times one fleet machine group on the intra-cell shard
// pool: serially, then at each scaling shard count, comparing result
// digests (the group body is fleetGroup — exactly what `-exp fleet
// -shards N` runs per cell).
func runShardPerf(o Opts) *ShardPerf {
	classes, _ := fleetClasses(Opts{})
	const (
		groupMachines = 6
		perMachine    = 12
		span          = 8 * sim.Second
	)
	seeds := make([]uint64, groupMachines)
	for i := range seeds {
		seeds[i] = cellSeed("perf-shard", i, o.seed())
	}
	run := func(shards int) (uint64, float64) {
		pool := shard.NewPool(shards)
		start := time.Now()
		rs := fleetGroup(Opts{}, seeds, classes, perMachine, span, pool)
		return fleetResultsDigest(rs), time.Since(start).Seconds()
	}
	numCPU := runtime.NumCPU()
	serialDigest, serialWall := run(1)
	s := &ShardPerf{
		Case:          "fleet-group",
		Machines:      groupMachines,
		NumCPU:        numCPU,
		SerialSeconds: serialWall,
	}
	if numCPU == 1 {
		s.Note = "shard scaling skipped: host has 1 CPU, a wider pool cannot speed it up (byte-identity at every shard count is covered by shard_identity_test.go)"
		return s
	}
	for _, shards := range []int{2, 4} {
		if shards > numCPU || shards > groupMachines {
			break
		}
		dg, wall := run(shards)
		s.Legs = append(s.Legs, ShardPerfLeg{
			Shards:          shards,
			WallSeconds:     wall,
			Speedup:         serialWall / wall,
			IdenticalOutput: dg == serialDigest,
		})
	}
	return s
}

// runSweepPerf times the full experiment suite serially and on the worker
// pool and verifies the outputs match byte for byte.
func runSweepPerf(o Opts) *SweepPerf {
	runAll := func(jobs int) (string, float64) {
		var buf strings.Builder
		ro := o
		ro.Jobs = jobs
		start := time.Now()
		for _, e := range All() {
			fmt.Fprintf(&buf, "=== %s ===\n", e.ID)
			e.Run(&buf, ro)
		}
		return buf.String(), time.Since(start).Seconds()
	}
	numCPU := runtime.NumCPU()
	jobs := runtime.GOMAXPROCS(0)
	if jobs < 4 {
		jobs = 4
	}
	// A pool wider than the host's CPUs can only add scheduling overhead;
	// the byte-identity of arbitrary widths is covered by sweep_test.go.
	if jobs > numCPU {
		jobs = numCPU
	}
	serialOut, serialWall := runAll(1)
	s := &SweepPerf{
		Experiments:   "all",
		Jobs:          jobs,
		NumCPU:        numCPU,
		SerialSeconds: serialWall,
		OutputBytes:   len(serialOut),
	}
	if numCPU == 1 {
		s.Note = "parallel comparison skipped: host has 1 CPU, a worker pool cannot speed it up"
		return s
	}
	parOut, parWall := runAll(jobs)
	ident := serialOut == parOut
	s.ParallelSeconds = parWall
	s.Speedup = serialWall / parWall
	s.IdenticalOutput = &ident
	return s
}

// WritePerf runs the harness and writes the JSON report plus a short
// human-readable summary line per case.
func WritePerf(jsonOut io.Writer, log io.Writer, o Opts) error {
	rep := RunPerf(o)
	for _, c := range rep.Cases {
		det := "deterministic"
		if !c.Deterministic {
			det = "NON-DETERMINISTIC"
		}
		extra := ""
		if c.IdleSimNSPerSec > 0 {
			extra = fmt.Sprintf("  idle %8.2e sim-ns/s", c.IdleSimNSPerSec)
		}
		if c.ResidentBytes > 0 {
			extra += fmt.Sprintf("  resident %.2f MiB", float64(c.ResidentBytes)/(1<<20))
		}
		fmt.Fprintf(log, "%-16s %6.2fs wall  %8.2e sim-ns/s  %9d allocs  score=%.4g  %s%s\n",
			c.ID, c.WallSeconds, c.SimNSPerSec, c.Allocs, c.Score, det, extra)
	}
	if s := rep.Sweep; s != nil {
		if s.IdenticalOutput == nil {
			fmt.Fprintf(log, "sweep    serial %.1fs  (%s)\n", s.SerialSeconds, s.Note)
		} else {
			ident := "byte-identical"
			if !*s.IdenticalOutput {
				ident = "OUTPUT MISMATCH"
			}
			fmt.Fprintf(log, "sweep    serial %.1fs  jobs=%d/%d cpus %.1fs  speedup %.2fx  %s\n",
				s.SerialSeconds, s.Jobs, s.NumCPU, s.ParallelSeconds, s.Speedup, ident)
		}
	}
	if s := rep.Shard; s != nil {
		if len(s.Legs) == 0 {
			fmt.Fprintf(log, "shard    %s x%d serial %.1fs  (%s)\n", s.Case, s.Machines, s.SerialSeconds, s.Note)
		} else {
			fmt.Fprintf(log, "shard    %s x%d serial %.1fs", s.Case, s.Machines, s.SerialSeconds)
			for _, l := range s.Legs {
				ident := "identical"
				if !l.IdenticalOutput {
					ident = "DIGEST MISMATCH"
				}
				fmt.Fprintf(log, "  shards=%d %.1fs %.2fx %s", l.Shards, l.WallSeconds, l.Speedup, ident)
			}
			fmt.Fprintln(log)
		}
	}
	enc := json.NewEncoder(jsonOut)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
