package bench

import (
	"bytes"
	"io"
	"testing"
)

// The intra-cell shard engine must leave every experiment's rendered
// output byte-identical at every -shards value: the fleet table (machine
// groups stepped in lockstep), the tbscale-adaptive series (sparse
// metadata on the event-driven loop), and the chaos run with its episode
// log, all under the invariant auditor where the experiment enables it.
// Serial (-shards 1) is the untouched historical path, so these replays
// also pin the sharded paths to the pre-shard output.
func TestShardOutputByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		opts Opts
		run  func(w io.Writer, o Opts)
	}{
		{"fleet", Opts{Tenants: 4}, runFleet},
		{"tbscale-adaptive", Opts{Adaptive: true}, runTBScale},
		{"chaos", Opts{}, runChaos},
	}
	counts := []int{1, 2, 4, 8}
	if raceEnabled {
		// Race instrumentation multiplies the wall clock; one widened
		// pool per experiment exercises the concurrency shape, and the
		// full width matrix is covered by the uninstrumented run. The
		// chaos replay is the most expensive cell and its shard plumbing
		// is config pass-through only, so the race job drops it.
		counts = []int{1, 4}
		cases = cases[:2]
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var base string
			for i, n := range counts {
				o := c.opts
				o.Shards = n
				var buf bytes.Buffer
				c.run(&buf, o)
				if i == 0 {
					base = buf.String()
					continue
				}
				if got := buf.String(); got != base {
					t.Fatalf("output differs between -shards %d and -shards %d:\n--- shards=%d ---\n%s\n--- shards=%d ---\n%s",
						counts[0], n, counts[0], base, n, got)
				}
			}
		})
	}
}
