package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("chaos", "Extension: graceful tier degradation — CXL offline mid-workload, evacuation MTTR and degraded throughput", runChaos)
}

// chaosMachine builds the three-tier DRAM+CXL+NVM testbed the chaos
// experiments run on, with the invariant auditor enabled: the CXL tier
// is the one taken offline, sized so it holds a meaningful slice of the
// working set and drains in well under a scripted outage.
func chaosMachine(seed uint64, faults fault.Config, audit bool) (*machine.Machine, *core.HeMem) {
	mcfg := machine.DefaultConfig()
	mcfg.Seed = seed
	mcfg.Faults = faults
	mcfg.Audit = audit
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: 8 * sim.GB},
		{ID: vm.TierCXL, Capacity: 8 * sim.GB},
		{ID: vm.TierNVM, Capacity: 256 * sim.GB, UEVictim: true},
		{ID: vm.TierDisk, Capacity: 1 * sim.TB, Swap: true},
	}
	h := core.New(core.DefaultConfig())
	return machine.New(mcfg, h), h
}

// runChaos scripts one tier outage against a running workload: GUPS
// settles on the DRAM+CXL+NVM chain, the CXL expander drops mid-run,
// HeMem evacuates every resident page under admission control, and the
// link comes back. The canonical output reports throughput in the
// normal, degraded, and recovered phases, the evacuation (page count
// and measured MTTR), and the replayable episode log — with the
// invariant auditor running every quantum throughout.
func runChaos(w io.Writer, o Opts) {
	warm := o.scale(30, 120) * sim.Second
	phase := o.scale(10, 30) * sim.Second

	m, h := chaosMachine(o.seed(), fault.Config{}, true)
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 32 * sim.GB, HotSet: 6 * sim.GB, Seed: o.seed(),
	})
	m.Warm()
	m.Run(warm)

	measure := func(d int64) float64 {
		g.ResetScore()
		m.Run(d)
		return g.Score()
	}

	cxlBefore := int64(0)
	for _, r := range m.AS.Regions {
		cxlBefore += r.Bytes(vm.TierCXL)
	}
	normal := measure(phase)
	if !m.OfflineTier(vm.TierCXL) {
		panic("bench: CXL offline refused")
	}
	degraded := measure(phase)
	cxlDuring := int64(0)
	for _, r := range m.AS.Regions {
		cxlDuring += r.Bytes(vm.TierCXL)
	}
	if !m.OnlineTier(vm.TierCXL) {
		panic("bench: CXL online refused")
	}
	recovered := measure(phase)

	fs := *m.FaultCounters()
	st := h.Stats()
	mttr := int64(0)
	if fs.TierEvacuations > 0 {
		mttr = fs.TierEvacNsTotal / fs.TierEvacuations
	}

	tw := table(w)
	fmt.Fprintln(tw, "phase\tGUPS\tvs normal")
	fmt.Fprintf(tw, "normal\t%.4f\t%.0f%%\n", normal, 100.0)
	fmt.Fprintf(tw, "cxl offline\t%.4f\t%.0f%%\n", degraded, 100*degraded/normal)
	fmt.Fprintf(tw, "recovered\t%.4f\t%.0f%%\n", recovered, 100*recovered/normal)
	tw.Flush()
	fmt.Fprintf(w, "evacuation: %d GB resident at offline, %d pages moved off, %d GB left behind, MTTR %.3fs\n",
		cxlBefore/sim.GB, fs.TierEvacuatedPages, cxlDuring/sim.GB, float64(mttr)/float64(sim.Second))
	fmt.Fprintf(w, "manager: %d evacuations, %d offline / %d online events handled\n",
		st.Evacuations, st.TierOfflines, st.TierOnlines)
	fmt.Fprintln(w, "episodes:")
	fault.WriteEpisodes(w, m.Episodes())
	fmt.Fprintln(w, "auditor: every quantum, zero violations")
	fmt.Fprintln(w, "32 GB working set on 8 GB DRAM + 8 GB CXL + NVM; the CXL expander goes away for one phase")
}
