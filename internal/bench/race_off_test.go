//go:build !race

package bench

// raceEnabled mirrors race_on_test.go for uninstrumented builds.
const raceEnabled = false
