package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("ext-swap", "Extension: three-tier swapping (§3.4), working set beyond DRAM+NVM", runExtSwap)
}

// runExtSwap exercises the §3.4 swap tier: a working set larger than
// DRAM+NVM combined, with HeMem swapping the coldest pages to a block
// device and swapping pages back in as traffic reaches them. The paper
// discusses this as future-capable ("swapping of tiered memory is
// possible") without evaluating it; this experiment is an extension.
func runExtSwap(w io.Writer, o Opts) {
	warm := o.scale(180, 600) * sim.Second
	measure := o.scale(30, 120) * sim.Second
	tw := table(w)
	fmt.Fprintln(tw, "hot(GB)\tGUPS(managed)\tGUPS(frozen)\thot-in-DRAM\tswap-ins\tswap-outs\tdisk-resident(GB)")
	for _, hotGB := range []int64{8, 16, 32} {
		row := func(migrate bool) (float64, *core.HeMem, *gups.GUPS, *machine.Machine) {
			cfg := core.DefaultConfig()
			cfg.EnableSwap = true
			cfg.NoMigration = !migrate
			h := core.New(cfg)
			m := machine.New(machine.DefaultConfig(), h)
			g := gups.New(m, gups.Config{
				Threads: 16, WorkingSet: 1100 * sim.GB, HotSet: hotGB * sim.GB, Seed: o.seed(),
			})
			m.Warm()
			m.Run(warm)
			g.ResetScore()
			m.Run(measure)
			return g.Score(), h, g, m
		}
		managed, h, g, m := row(true)
		frozen, _, _, _ := row(false)
		var diskGB int64
		for _, r := range m.AS.Regions {
			diskGB += r.Bytes(vm.TierDisk)
		}
		st := h.Stats()
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.2f\t%d\t%d\t%d\n",
			hotGB, managed, frozen, g.HotPages().Frac(vm.TierDRAM),
			st.SwapIns, st.SwapOuts, diskGB/sim.GB)
	}
	tw.Flush()
	fmt.Fprintln(w, "1100 GB working set on 192 GB DRAM + 768 GB NVM + disk; managed swapping must beat a frozen placement")
}
