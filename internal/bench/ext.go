package bench

import (
	"fmt"
	"io"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	register("ext-swap", "Extension: three-tier swapping (§3.4), working set beyond DRAM+NVM", runExtSwap)
}

// runExtSwap exercises the §3.4 swap tier: a working set larger than
// DRAM+NVM combined, with HeMem swapping the coldest pages to a block
// device and swapping pages back in as traffic reaches them. The paper
// discusses this as future-capable ("swapping of tiered memory is
// possible") without evaluating it; this experiment is an extension.
func runExtSwap(w io.Writer, o Opts) {
	warm := o.scale(180, 600) * sim.Second
	measure := o.scale(30, 120) * sim.Second
	sizes := []int64{8, 16, 32}

	// managedRes carries the swap-tier observables alongside the score.
	type managedRes struct {
		score    float64
		hotFrac  float64
		swapIns  int64
		swapOuts int64
		diskGB   int64
	}
	run := func(hotGB int64, migrate bool) (float64, *core.HeMem, *gups.GUPS, *machine.Machine) {
		cfg := core.DefaultConfig()
		cfg.EnableSwap = true
		cfg.NoMigration = !migrate
		h := core.New(cfg)
		m := machine.New(o.machineConfig(), h)
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 1100 * sim.GB, HotSet: hotGB * sim.GB, Seed: o.seed(),
		})
		m.Warm()
		m.Run(warm)
		g.ResetScore()
		m.Run(measure)
		return g.Score(), h, g, m
	}

	s := NewSweep("ext-swap", o)
	for _, hotGB := range sizes {
		s.Cell(fmt.Sprintf("hot=%dGB/managed", hotGB), func(CellInfo) any {
			score, h, g, m := run(hotGB, true)
			var diskGB int64
			for _, r := range m.AS.Regions {
				diskGB += r.Bytes(vm.TierDisk)
			}
			st := h.Stats()
			return managedRes{
				score:    score,
				hotFrac:  g.HotPages().Frac(vm.TierDRAM),
				swapIns:  st.SwapIns,
				swapOuts: st.SwapOuts,
				diskGB:   diskGB / sim.GB,
			}
		})
		s.Cell(fmt.Sprintf("hot=%dGB/frozen", hotGB), func(CellInfo) any {
			score, _, _, _ := run(hotGB, false)
			return score
		})
	}
	res := s.Gather()

	tw := table(w)
	fmt.Fprintln(tw, "hot(GB)\tGUPS(managed)\tGUPS(frozen)\thot-in-DRAM\tswap-ins\tswap-outs\tdisk-resident(GB)")
	for i, hotGB := range sizes {
		mr := res[2*i].(managedRes)
		frozen := f64(res[2*i+1])
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.2f\t%d\t%d\t%d\n",
			hotGB, mr.score, frozen, mr.hotFrac, mr.swapIns, mr.swapOuts, mr.diskGB)
	}
	tw.Flush()
	fmt.Fprintln(w, "1100 GB working set on 192 GB DRAM + 768 GB NVM + disk; managed swapping must beat a frozen placement")
}
