// Package xmem implements static tier placements: the X-Mem emulation the
// paper compares against (large heap ranges with random access placed in
// NVM, §5), plus the DRAM-only, NVM-only and "Opt" (oracle hot-set
// placement, Figure 8) configurations used throughout the evaluation.
//
// Static managers do no tracking and no migration: placement is decided
// once, at first touch.
package xmem

import (
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Static is a Manager whose placement function runs once per page at first
// touch. It enforces DRAM capacity: if the placement function asks for
// DRAM but none is left, the page falls to NVM.
type Static struct {
	name  string
	place func(p *vm.Page) vm.Tier

	m         *machine.Machine
	dramUsed  int64
	dramCap   int64
	nvmUsed   int64
	reserveGB int64
}

// New builds a static manager with the given placement function.
func New(name string, place func(p *vm.Page) vm.Tier) *Static {
	return &Static{name: name, place: place}
}

// NVMOnly places every page in NVM — the X-Mem configuration for large
// randomly-accessed heap structures ("we modify mmap to map memory from
// the NVM DAX file", §5.1).
func NVMOnly() *Static {
	return New("NVM", func(*vm.Page) vm.Tier { return vm.TierNVM })
}

// DRAMFirst fills DRAM before spilling to NVM; with a working set that
// fits in DRAM this is the paper's "DRAM" baseline.
func DRAMFirst() *Static {
	return New("DRAM", func(*vm.Page) vm.Tier { return vm.TierDRAM })
}

// Opt places the pages of hot in DRAM, then fills the remaining DRAM with
// other pages as they are touched (reserving room for hot pages not yet
// seen), with no scanning or migration: the oracle of Figure 8.
func Opt(hot *vm.PageSet) *Static {
	inHot := make(map[vm.PageID]bool, hot.Len())
	for _, p := range hot.Pages() {
		inHot[p.ID] = true
	}
	s := New("Opt", nil)
	hotLeft := int64(hot.Len())
	s.place = func(p *vm.Page) vm.Tier {
		ps := p.Region.PageSize
		if inHot[p.ID] {
			hotLeft--
			return vm.TierDRAM
		}
		// Cold page: take DRAM only if room remains after reserving
		// space for every unplaced hot page.
		if s.dramUsed+hotLeft*ps+ps <= s.dramCap {
			return vm.TierDRAM
		}
		return vm.TierNVM
	}
	return s
}

// XMem emulates X-Mem's static data tiering: regions at or above the size
// threshold go to NVM (large, long-lived ranges), smaller regions stay in
// DRAM.
func XMem(threshold int64) *Static {
	return New("X-Mem", func(p *vm.Page) vm.Tier {
		if p.Region.Size() >= threshold {
			return vm.TierNVM
		}
		return vm.TierDRAM
	})
}

// Name implements machine.Manager.
func (s *Static) Name() string { return s.name }

// Attach implements machine.Manager.
func (s *Static) Attach(m *machine.Machine) {
	s.m = m
	s.dramCap = m.Cfg.DRAMSize
}

// PageIn implements machine.Manager: place once, fall back to NVM when
// DRAM is exhausted.
func (s *Static) PageIn(p *vm.Page) {
	t := s.place(p)
	if t == vm.TierDRAM && s.dramUsed+s.m.Cfg.PageSize > s.dramCap {
		t = vm.TierNVM
	}
	if t == vm.TierDRAM {
		s.dramUsed += s.m.Cfg.PageSize
	} else {
		s.nvmUsed += s.m.Cfg.PageSize
	}
	p.SetTier(t)
}

// OnQuantum implements machine.Manager; static placement has no background
// work.
func (s *Static) OnQuantum(now, dt int64) {}

// ActiveThreads implements machine.Manager; static placement consumes no
// cores.
func (s *Static) ActiveThreads() float64 { return 0 }

// DRAMUsed returns bytes placed in DRAM.
func (s *Static) DRAMUsed() int64 { return s.dramUsed }

// DefaultXMemThreshold matches HeMem's large-allocation threshold (1 GB):
// ranges this large are the ones X-Mem tiers into NVM.
const DefaultXMemThreshold = 1 * sim.GB
