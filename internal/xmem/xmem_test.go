package xmem_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

func TestNVMOnly(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	r := m.AS.Map("a", 10*sim.MB)
	m.Warm()
	if r.Frac(vm.TierNVM) != 1 {
		t.Fatal("NVMOnly placed pages outside NVM")
	}
}

func TestDRAMFirstSpills(t *testing.T) {
	s := xmem.DRAMFirst()
	m := machine.New(machine.DefaultConfig(), s)
	r := m.AS.Map("big", m.Cfg.DRAMSize+10*sim.MB)
	m.Warm()
	if got := r.Bytes(vm.TierDRAM); got != m.Cfg.DRAMSize {
		t.Fatalf("DRAM bytes = %d, want full %d", got, m.Cfg.DRAMSize)
	}
	if r.Count(vm.TierNVM) != 5 {
		t.Fatalf("spilled pages = %d, want 5", r.Count(vm.TierNVM))
	}
	if s.DRAMUsed() != m.Cfg.DRAMSize {
		t.Fatalf("DRAMUsed = %d", s.DRAMUsed())
	}
}

func TestXMemThreshold(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.XMem(sim.GB))
	small := m.AS.Map("small", 512*sim.MB)
	large := m.AS.Map("large", 2*sim.GB)
	m.Warm()
	if small.Frac(vm.TierDRAM) != 1 {
		t.Fatal("small region should stay in DRAM")
	}
	if large.Frac(vm.TierNVM) != 1 {
		t.Fatal("large region should go to NVM")
	}
}

func TestOptPinsHotSetAndFillsDRAM(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.DRAMSize = 10 * sim.MB // 5 pages
	boot := machine.New(cfg, xmem.NVMOnly())
	r := boot.AS.Map("data", 20*sim.MB) // 10 pages
	// Hot pages sit at the END of the region: first-touch order sees six
	// cold pages first and must reserve DRAM for the hot ones.
	hot := vm.NewPageSet("hot", r.AllPages()[6:])
	opt := xmem.Opt(hot)
	boot.Mgr = opt
	opt.Attach(boot)
	boot.Warm()
	if hot.Frac(vm.TierDRAM) != 1 {
		t.Fatal("Opt did not place hot set in DRAM despite cold pages arriving first")
	}
	// Leftover DRAM (1 page) is filled with a cold page; 5 cold in NVM.
	if r.Count(vm.TierDRAM) != 5 || r.Count(vm.TierNVM) != 5 {
		t.Fatalf("placement = %d DRAM / %d NVM, want 5/5", r.Count(vm.TierDRAM), r.Count(vm.TierNVM))
	}
	if opt.Name() != "Opt" {
		t.Fatalf("name = %q", opt.Name())
	}
}

func TestManagerInterfaceBasics(t *testing.T) {
	s := xmem.DRAMFirst()
	m := machine.New(machine.DefaultConfig(), s)
	if s.ActiveThreads() != 0 {
		t.Fatal("static manager should consume no cores")
	}
	s.OnQuantum(0, 1) // no-op, must not panic
	_ = m
}
