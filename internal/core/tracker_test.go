package core_test

import (
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
)

// The registries list every built-in implementation, sorted, mirroring
// mem.RegisterModel's contract.
func TestTrackerPolicyRegistryNames(t *testing.T) {
	cases := []struct {
		what string
		got  []string
		want []string
	}{
		{"trackers", core.TrackerNames(), []string{"damon", "idlepage", "pebs"}},
		{"policies", core.PolicyNames(), []string{"heat", "hemem"}},
		{"forecasters", core.HeatForecasterNames(), []string{"ema", "static", "trend"}},
	}
	for _, tc := range cases {
		if len(tc.got) != len(tc.want) {
			t.Errorf("%s = %v, want %v", tc.what, tc.got, tc.want)
			continue
		}
		for i := range tc.want {
			if tc.got[i] != tc.want[i] {
				t.Errorf("%s = %v, want %v (sorted)", tc.what, tc.got, tc.want)
				break
			}
		}
	}
}

// New panics on an unregistered tracker or policy name, listing what is
// registered — the same contract as the machine's memory-model registry.
func TestUnknownTrackerPanics(t *testing.T) {
	for _, cfg := range []core.Config{
		{Tracker: "nope"},
		{Policy: "nope"},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("New(%+v) did not panic", cfg)
					return
				}
				msg, _ := r.(string)
				if !strings.Contains(msg, "nope") || !strings.Contains(msg, "registered:") {
					t.Errorf("panic %q should name the unknown id and list registered ones", msg)
				}
			}()
			core.New(cfg)
		}()
	}
}

// Every rival tracker × policy pair drives a machine end to end: pages
// get observed, the policy classifies, and only the PEBS tracker exposes
// a sampler (the nil sampler path is what machine.Step must tolerate).
func TestRivalTrackersSmoke(t *testing.T) {
	for _, tracker := range core.TrackerNames() {
		for _, policy := range core.PolicyNames() {
			tracker, policy := tracker, policy
			t.Run(tracker+"+"+policy, func(t *testing.T) {
				h := core.New(core.Config{Tracker: tracker, Policy: policy})
				if got := h.Tracker().Name(); got != tracker {
					t.Fatalf("Tracker().Name() = %q, want %q", got, tracker)
				}
				if got := h.Policy().Name(); got != policy {
					t.Fatalf("Policy().Name() = %q, want %q", got, policy)
				}
				mcfg := machine.DefaultConfig()
				mcfg.DRAMSize = 2 * sim.GB
				m := machine.New(mcfg, h)
				if (h.Sampler() != nil) != (tracker == "pebs") {
					t.Fatalf("Sampler() non-nil = %v for tracker %s", h.Sampler() != nil, tracker)
				}
				g := gups.New(m, gups.Config{
					Threads: 8, WorkingSet: 8 * sim.GB, HotSet: 1 * sim.GB, Seed: 7,
				})
				m.Warm()
				m.Run(3 * sim.Second)
				if g.Score() <= 0 {
					t.Fatalf("no GUPS progress under %s+%s", tracker, policy)
				}
				if h.Stats().Samples == 0 {
					t.Fatalf("%s delivered no observations to %s", tracker, policy)
				}
				if m.Migrator.Stats().Pages == 0 {
					t.Fatalf("%s+%s never migrated a page", tracker, policy)
				}
			})
		}
	}
}
