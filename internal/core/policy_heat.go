// Heat policy: classification on a decaying per-region heatmap instead
// of the paper's per-page counters (memtierd's policy_heat +
// counters_heatmap are the exemplar). Observations accumulate heat into
// fixed-size buckets of neighbouring pages, heat decays exponentially
// with simulated time, and a pluggable forecaster (Config.HeatForecaster)
// turns the bucket's trajectory into the value classified against the
// hot threshold. The threshold is relative — a multiple of the mean
// bucket heat, recomputed every tick — so the policy tracks whatever
// observation density the active tracker produces (sparse PEBS samples
// and saturated scan bits differ by orders of magnitude). Neighbouring
// pages share fate — cheaper state and earlier hot-set detection for
// dense working sets, at the price of false sharing across a bucket that
// straddles a hot/cold boundary (GUPS's scattered hot set is the
// worst case, and measuring that is the point).
package core

import (
	"math"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

const (
	// heatBucketPages is the heatmap granularity in pages.
	heatBucketPages = 8
	// heatHalfLife is the heat decay half-life in simulated time.
	heatHalfLife = 1 * sim.Second
	// heatWriteWeight scales write observations (writes are costlier to
	// leave in slow memory, mirroring the paper's lower write threshold).
	heatWriteWeight = 2.0
	// heatHotFactor: a bucket classifies hot when its forecast exceeds
	// this multiple of the mean bucket heat.
	heatHotFactor = 2.0
	// heatMinThreshold floors the hot threshold so startup noise (a few
	// samples into an otherwise cold heatmap) does not classify
	// everything hot.
	heatMinThreshold = 1.0
)

func init() {
	RegisterPolicy("heat", func(cfg Config) Policy {
		f, ok := forecasterRegistry[cfg.HeatForecaster]
		if !ok {
			// New defaults the name; Validate catches unknown ones
			// earlier with a better message.
			f = forecasterRegistry["ema"]
		}
		return &heatPolicy{fc: f(cfg)}
	})
}

// heatBucket is one heatmap cell covering heatBucketPages neighbouring
// pages of a region.
type heatBucket struct {
	heat float64 // decayed accumulated heat
	prev float64 // heat at the previous policy tick (forecaster input)
}

// regionHeat is one tracked region's heatmap.
type regionHeat struct {
	reg     *vm.Region
	buckets []heatBucket
	dead    bool
}

type heatPolicy struct {
	h  *HeMem
	fc HeatForecaster

	// regs holds the heatmaps in region-creation order — the decay sweep
	// and mean computation iterate it so their float arithmetic runs in
	// a deterministic order; byReg indexes it for the observation path.
	regs    []*regionHeat
	byReg   map[*vm.Region]*regionHeat
	hasDead bool

	// thresh is the absolute hot threshold derived from the mean bucket
	// heat at the last tick; +Inf until the first tick so an empty
	// heatmap classifies nothing.
	thresh    float64
	lastDecay int64
}

// Name implements Policy.
func (pl *heatPolicy) Name() string { return "heat" }

// Attach implements Policy.
func (pl *heatPolicy) Attach(h *HeMem) {
	pl.h = h
	pl.byReg = make(map[*vm.Region]*regionHeat)
	pl.thresh = math.Inf(1)
	pl.lastDecay = h.m.Clock.Now()
}

// bucket returns the heatmap cell covering pi's page.
func (pl *heatPolicy) bucket(pi *PageInfo) *heatBucket {
	reg := pi.Page.Region
	rh, ok := pl.byReg[reg]
	if !ok {
		rh = &regionHeat{
			reg:     reg,
			buckets: make([]heatBucket, (reg.NumPages()+heatBucketPages-1)/heatBucketPages),
		}
		pl.byReg[reg] = rh
		pl.regs = append(pl.regs, rh)
	}
	return &rh.buckets[pi.Page.Index/heatBucketPages]
}

// isHot classifies pi through its bucket's forecast.
func (pl *heatPolicy) isHot(pi *PageInfo) bool {
	b := pl.bucket(pi)
	return pl.fc.Forecast(b.heat, b.prev) >= pl.thresh
}

// Observe implements Policy: fold the observation into the page's bucket
// and re-list the page on its tier's queue if its classification flipped.
func (pl *heatPolicy) Observe(pi *PageInfo, write bool, n int) {
	h := pl.h
	h.stats.Samples += uint64(n)
	if n > 0 {
		w := float64(n)
		if write {
			w *= heatWriteWeight
		}
		pl.bucket(pi).heat += w
	}
	if pi.list == nil {
		return // in flight; re-listed on migration completion
	}
	if pl.isHot(pi) {
		if !h.inHotList(pi) {
			if write && !h.cfg.NoWritePriority {
				h.hotList(pi.Page.Tier).PushFront(pi)
			} else {
				h.hotList(pi.Page.Tier).PushBack(pi)
			}
		}
	} else if h.inHotList(pi) {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}

// PagePlaced implements Policy: fresh placements start cold and earn
// their bucket's heat through observations.
func (pl *heatPolicy) PagePlaced(pi *PageInfo) {
	pl.h.coldList(pi.Page.Tier).PushBack(pi)
}

// PageOut implements Policy: drop the region's heatmap with its last
// pages (Release tears down whole regions, so the first PageOut of a
// region already implies the rest).
func (pl *heatPolicy) PageOut(pi *PageInfo) {
	if rh, ok := pl.byReg[pi.Page.Region]; ok {
		rh.dead = true
		pl.hasDead = true
		delete(pl.byReg, pi.Page.Region)
	}
}

// Tick implements Policy: age every bucket, snapshot the forecaster
// inputs, refresh the relative hot threshold from the mean heat, then
// spend the budget through the shared migration loops.
func (pl *heatPolicy) Tick(now, budget int64) {
	if pl.hasDead {
		live := pl.regs[:0]
		for _, rh := range pl.regs {
			if !rh.dead {
				live = append(live, rh)
			}
		}
		pl.regs = live
		pl.hasDead = false
	}
	if dt := now - pl.lastDecay; dt > 0 {
		factor := math.Exp2(-float64(dt) / float64(heatHalfLife))
		total, count := 0.0, 0
		for _, rh := range pl.regs {
			bs := rh.buckets
			for i := range bs {
				b := &bs[i]
				b.prev = b.heat
				b.heat *= factor
				total += b.heat
			}
			count += len(bs)
		}
		if count > 0 {
			pl.thresh = heatHotFactor * (total / float64(count))
			if pl.thresh < heatMinThreshold {
				pl.thresh = heatMinThreshold
			}
		}
		pl.lastDecay = now
	}
	pl.h.migrateTick(budget)
}

// OnMigrated implements Policy.
func (pl *heatPolicy) OnMigrated(pi *PageInfo) {
	pl.Requeue(pi)
}

// Requeue implements Policy: back of the queue matching the bucket's
// current classification, on the tier the page actually sits on.
func (pl *heatPolicy) Requeue(pi *PageInfo) {
	h := pl.h
	if pl.isHot(pi) {
		h.hotList(pi.Page.Tier).PushBack(pi)
	} else {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}
