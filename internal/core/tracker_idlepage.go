// Idlepage/soft-dirty scan tracker: the page-table alternative to PEBS,
// built on the ptscan cost model (Linux's /sys/kernel/mm/page_idle bitmap
// plus soft-dirty PTE bits, memtierd's tracker_idlepage). Each pass walks
// every managed page's table entry, reads and clears its accessed and
// dirty bits, and charges the TLB-shootdown stalls the clearing costs.
// A bit is saturated information — "touched at least once since the last
// pass" — so over a long pass even cold pages read as accessed and the
// hot-set estimate balloons: the paper's Figure 8/9 PT-scan failure mode,
// reproduced here per page rather than per zone.
package core

import (
	"math"

	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func init() {
	RegisterTracker("idlepage", func(cfg Config) Tracker { return &idlePageTracker{} })
}

type idlePageTracker struct {
	h   *HeMem
	sc  *ptscan.Scanner
	rng *sim.Rand

	// nextDone is the completion time of the in-flight pass, or 0 before
	// the first pass starts.
	nextDone int64

	// lam maps each traffic set to its (accessed, dirty) per-page access
	// expectation accumulated over the finished pass (reused).
	lam map[*vm.PageSet][2]float64
}

// Name implements Tracker.
func (t *idlePageTracker) Name() string { return "idlepage" }

// Attach implements Tracker. The scan granularity is the machine's page
// size: idle-page tracking works on the frames backing the 2 MB tiering
// pages directly, unlike the prototype's DAX mappings which force 4 KB
// PTE walks — one scan descriptor per managed page keeps passes short
// enough to repeat several times per measurement window.
func (t *idlePageTracker) Attach(h *HeMem) {
	t.h = h
	t.sc = ptscan.NewScanner(h.m, h.m.Cfg.PageSize)
	t.rng = sim.NewRand(h.m.Cfg.Seed ^ 0x69646c65)
	t.lam = make(map[*vm.PageSet][2]float64)
}

// PageIn implements Tracker: pages join the next pass automatically (the
// scanner walks the address space).
func (t *idlePageTracker) PageIn(pi *PageInfo) {}

// PageOut implements Tracker: released pages drop out of the walk.
func (t *idlePageTracker) PageOut(pi *PageInfo) {}

// Poll implements Tracker: start a pass if none is in flight, and
// complete the pass that is due.
func (t *idlePageTracker) Poll(now, dt int64) {
	if t.nextDone == 0 {
		t.nextDone = now + t.passTime(dt)
		return
	}
	if now < t.nextDone {
		return
	}
	t.completePass()
	t.nextDone = now + t.passTime(dt)
}

// Tick implements Tracker: no per-policy-tick housekeeping.
func (t *idlePageTracker) Tick(now int64) {}

// passTime is the duration of one scan pass, never shorter than a
// quantum.
func (t *idlePageTracker) passTime(dt int64) int64 {
	pt := t.sc.PassTime()
	if pt < dt {
		pt = dt
	}
	return pt
}

// completePass converts the finished pass into per-page bit reads. The
// scanner reports per-zone access expectations; a page's own expectation
// is the sum over the zones containing it, and its accessed/dirty bits
// are Bernoulli draws on the Poisson-thinned probability — saturated
// information, deliberately: a page accessed once and a page accessed a
// thousand times since the last pass read identically, which is exactly
// the fidelity gap between bit scanning and sampling.
func (t *idlePageTracker) completePass() {
	h := t.h
	for k := range t.lam {
		delete(t.lam, k)
	}
	for _, res := range t.sc.Complete() {
		t.lam[res.Set] = [2]float64{res.ExpectedReads + res.ExpectedWrites, res.ExpectedWrites}
	}
	for _, w := range h.pages {
		if w == nil {
			continue
		}
		for _, pi := range w {
			if pi == nil {
				continue
			}
			var la, lw float64
			pi.Page.EachSet(func(s *vm.PageSet) {
				d := t.lam[s]
				la += d[0]
				lw += d[1]
			})
			accessed := la > 0 && t.rng.Bernoulli(1-math.Exp(-la))
			dirty := lw > 0 && t.rng.Bernoulli(1-math.Exp(-lw))
			// An accessed bit carries no count, so it delivers a full hot
			// threshold's worth of evidence — any touched page looks hot to a
			// bit scanner; untouched pages age.
			switch {
			case dirty:
				h.pol.Observe(pi, true, h.cfg.HotWriteThreshold)
				if accessed {
					h.pol.Observe(pi, false, h.cfg.HotReadThreshold)
				}
			case accessed:
				h.pol.Observe(pi, false, h.cfg.HotReadThreshold)
			default:
				h.pol.Observe(pi, false, 0)
			}
		}
	}
}
