package core_test

import (
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func newHeMemMachine(cfg core.Config) (*machine.Machine, *core.HeMem) {
	h := core.New(cfg)
	m := machine.New(machine.DefaultConfig(), h)
	return m, h
}

// Allocation policy: DRAM while free, NVM once full (§3.3).
func TestAllocationPrefersDRAM(t *testing.T) {
	m, h := newHeMemMachine(core.DefaultConfig())
	r := m.AS.Map("big", 256*sim.GB)
	m.Warm()
	if got := r.Bytes(vm.TierDRAM); got != m.Cfg.DRAMSize {
		t.Fatalf("DRAM bytes = %dGB, want all %dGB", got/sim.GB, m.Cfg.DRAMSize/sim.GB)
	}
	if got := r.Bytes(vm.TierNVM); got != 256*sim.GB-m.Cfg.DRAMSize {
		t.Fatalf("NVM bytes = %dGB", got/sim.GB)
	}
	if h.DRAMUsed() != m.Cfg.DRAMSize {
		t.Fatalf("accounting: DRAMUsed = %d", h.DRAMUsed())
	}
}

// Small allocations are forwarded to the kernel and stay in DRAM,
// untracked (§3.3).
func TestSmallAllocationsStayInDRAM(t *testing.T) {
	m, h := newHeMemMachine(core.DefaultConfig())
	small := m.AS.Map("stack", 64*sim.MB)
	big := m.AS.Map("heap", 2*sim.GB)
	m.Warm()
	if small.Frac(vm.TierDRAM) != 1 {
		t.Fatal("small region not in DRAM")
	}
	// Small pages are unmanaged: no hot/cold tracking entries for them.
	if h.HotBytes(vm.TierDRAM)+h.ColdBytes(vm.TierDRAM) != big.Bytes(vm.TierDRAM) {
		t.Fatalf("tracked DRAM bytes include unmanaged pages")
	}
}

// The free-DRAM watermark forces eviction so new allocations land in DRAM
// (§3.3: "HeMem keeps a set amount of DRAM free — 1 GB").
func TestFreeWatermarkMaintained(t *testing.T) {
	cfg := core.DefaultConfig()
	m, h := newHeMemMachine(cfg)
	m.AS.Map("fill", 192*sim.GB) // fills DRAM exactly
	m.Warm()
	m.Run(2 * sim.Second) // let policy run
	free := m.Cfg.DRAMSize - h.DRAMUsed()
	if free < cfg.FreeDRAMTarget {
		t.Fatalf("free DRAM = %d MB, watermark is %d MB", free/sim.MB, cfg.FreeDRAMTarget/sim.MB)
	}
	// A new small allocation lands in DRAM.
	late := m.AS.Map("late", 256*sim.MB)
	m.Warm()
	if late.Frac(vm.TierDRAM) != 1 {
		t.Fatal("post-watermark allocation did not get DRAM")
	}
}

// End-to-end: HeMem identifies a 16 GB hot set inside a 512 GB working set
// via PEBS sampling and migrates it to DRAM; throughput approaches the
// oracle placement (Figure 8: PEBS+Migrate within 5.9% of Opt — we allow
// a looser band).
func TestHotSetIdentificationAndMigration(t *testing.T) {
	m, h := newHeMemMachine(core.DefaultConfig())
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 42,
	})
	m.Warm()
	m.Run(120 * sim.Second)

	hotInDRAM := g.HotPages().Frac(vm.TierDRAM)
	if hotInDRAM < 0.85 {
		t.Errorf("hot set DRAM fraction = %.2f after 120s, want ≥0.85", hotInDRAM)
	}
	if h.Stats().Promotions == 0 || h.Stats().Samples == 0 {
		t.Fatalf("no activity: %+v", h.Stats())
	}
	// Physical DRAM occupancy never exceeds capacity.
	var dramBytes int64
	for _, r := range m.AS.Regions {
		dramBytes += r.Bytes(vm.TierDRAM)
	}
	if dramBytes > m.Cfg.DRAMSize {
		t.Fatalf("DRAM over-committed: %d > %d", dramBytes, m.Cfg.DRAMSize)
	}
}

// When the hot set exceeds DRAM, HeMem stops migrating rather than
// thrashing (§3.3).
func TestNoThrashWhenHotExceedsDRAM(t *testing.T) {
	m, h := newHeMemMachine(core.DefaultConfig())
	gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB, Seed: 1,
	})
	m.Warm()
	m.Run(30 * sim.Second)
	early := h.Stats().Promotions + h.Stats().Demotions
	m.Run(30 * sim.Second)
	late := h.Stats().Promotions + h.Stats().Demotions
	// Steady state: migration activity tails off instead of churning at
	// the full 10 GB/s budget (which would be ~150k pages per 30 s).
	if delta := late - early; delta > 40_000 {
		t.Errorf("still migrating heavily in steady state: %d pages in 30s", delta)
	}
}

// Write-heavy pages are promoted ahead of read-heavy ones (§3.3).
func TestWritePriorityOrdering(t *testing.T) {
	m, h := newHeMemMachine(core.DefaultConfig())
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
		WriteOnlyHot: 128 * sim.GB, Seed: 5,
	})
	m.Warm()
	m.Run(90 * sim.Second)
	wr := g.WriteOnlyPages().Frac(vm.TierDRAM)
	rd := g.HotPages().Frac(vm.TierDRAM)
	if wr <= rd {
		t.Errorf("write-only DRAM frac %.2f not above read-hot %.2f", wr, rd)
	}
	if wr < 0.5 {
		t.Errorf("write-only set mostly outside DRAM: %.2f", wr)
	}
	_ = h
}

// The write-priority ablation: disabling the front-of-list priority cannot
// place *more* write-only data in DRAM than enabling it (the 4-vs-8
// threshold asymmetry remains either way, so some edge persists).
func TestWritePriorityAblation(t *testing.T) {
	run := func(priority bool) float64 {
		cfg := core.DefaultConfig()
		cfg.NoWritePriority = !priority
		m, _ := newHeMemMachine(cfg)
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
			WriteOnlyHot: 128 * sim.GB, Seed: 5,
		})
		m.Warm()
		m.Run(90 * sim.Second)
		return g.WriteOnlyPages().Frac(vm.TierDRAM)
	}
	on := run(true)
	off := run(false)
	if off > on+0.05 {
		t.Errorf("disabling write priority increased write-only DRAM frac: %.2f → %.2f", on, off)
	}
}

// Migration disabled (Figure 8's "PEBS" bar): sampling runs, tiers never
// change.
func TestMigrationDisabled(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.NoMigration = true
	m, h := newHeMemMachine(cfg)
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 2,
	})
	m.Warm()
	before := g.HotPages().Frac(vm.TierDRAM)
	m.Run(20 * sim.Second)
	if got := g.HotPages().Frac(vm.TierDRAM); got != before {
		t.Fatalf("tiers changed with migration disabled: %.3f → %.3f", before, got)
	}
	if h.Stats().Samples == 0 {
		t.Fatal("sampling did not run")
	}
	if h.Stats().Promotions != 0 {
		t.Fatal("promotions with migration disabled")
	}
}

// Cooling keeps the hot estimate fresh: after the hot set shifts, the old
// hot pages cool and the new ones take their place (Figures 9/12).
func TestDynamicHotSetAdaptation(t *testing.T) {
	m, _ := newHeMemMachine(core.DefaultConfig())
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 11,
	})
	m.Warm()
	m.Run(120 * sim.Second)
	if f := g.HotPages().Frac(vm.TierDRAM); f < 0.8 {
		t.Fatalf("initial hot set not established: %.2f", f)
	}
	g.ShiftHotSet(4*sim.GB, 777)
	afterShift := g.HotPages().Frac(vm.TierDRAM)
	if afterShift > 0.9 {
		t.Fatalf("shift did not disturb placement: %.2f", afterShift)
	}
	m.Run(120 * sim.Second)
	recovered := g.HotPages().Frac(vm.TierDRAM)
	if recovered < 0.85 {
		t.Errorf("hot set not recovered after shift: %.2f → %.2f", afterShift, recovered)
	}
}

// Sampler period flows through config; drops appear at aggressive periods
// (Figure 10's left edge).
func TestAggressiveSamplePeriodDrops(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = 250
	m, h := newHeMemMachine(cfg)
	gups.New(m, gups.Config{Threads: 16, WorkingSet: 64 * sim.GB, Seed: 3})
	m.Warm()
	m.Run(10 * sim.Second)
	if h.Buffer().DropFraction() < 0.05 {
		t.Errorf("period 250 drop fraction = %.3f, want noticeable drops", h.Buffer().DropFraction())
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	h := core.New(core.Config{})
	if h.Config().HotReadThreshold != 8 || h.Config().CoolThreshold != 18 {
		t.Fatal("zero config did not default")
	}
}

// Regression: a partial Config used to be replaced wholesale by
// DefaultConfig whenever HotReadThreshold was left zero, silently
// discarding every field the caller did set. Unset fields must default
// individually instead.
func TestPartialConfigKeepsCallerFields(t *testing.T) {
	def := core.DefaultConfig()
	cfg := core.Config{
		SamplePeriod:   def.SamplePeriod * 2,
		PolicyInterval: 7 * sim.Millisecond,
		MigRateCap:     sim.GBps(3),
	}
	got := core.New(cfg).Config()
	if got.SamplePeriod != def.SamplePeriod*2 {
		t.Errorf("SamplePeriod = %v, want caller's %v", got.SamplePeriod, def.SamplePeriod*2)
	}
	if got.PolicyInterval != 7*sim.Millisecond {
		t.Errorf("PolicyInterval = %v, want caller's %v", got.PolicyInterval, 7*sim.Millisecond)
	}
	if got.MigRateCap != sim.GBps(3) {
		t.Errorf("MigRateCap = %v, want caller's %v", got.MigRateCap, sim.GBps(3))
	}
	// Fields the caller left zero still pick up paper defaults.
	if got.HotReadThreshold != def.HotReadThreshold {
		t.Errorf("HotReadThreshold = %v, want default %v", got.HotReadThreshold, def.HotReadThreshold)
	}
	if got.CoolThreshold != def.CoolThreshold {
		t.Errorf("CoolThreshold = %v, want default %v", got.CoolThreshold, def.CoolThreshold)
	}
	if got.FreeDRAMTarget != def.FreeDRAMTarget {
		t.Errorf("FreeDRAMTarget = %v, want default %v", got.FreeDRAMTarget, def.FreeDRAMTarget)
	}
	// The ablation switches are inverted so that a partial config keeps
	// full paper behavior: migration, cooling, write priority, and DMA
	// all stay on.
	if got.NoMigration || got.NoCooling || got.NoWritePriority || got.NoDMA {
		t.Errorf("partial config disabled paper-default behavior: %+v", got)
	}
	// And an explicit ablation on a partial config survives defaulting.
	abl := core.New(core.Config{SamplePeriod: 2500, NoMigration: true}).Config()
	if !abl.NoMigration {
		t.Error("explicit NoMigration lost in defaulting")
	}
	if abl.SamplePeriod != 2500 || abl.HotReadThreshold != def.HotReadThreshold {
		t.Errorf("ablation config misdefaulted: %+v", abl)
	}
}

// The tracker/policy selection knobs ride the same field-by-field
// defaulting: a partial Config that sets only Tracker must not zero the
// cooling/threshold defaults, and each unset selection string defaults
// independently of the others.
func TestTrackerPolicyConfigDefaulting(t *testing.T) {
	def := core.DefaultConfig()
	if def.Tracker != "pebs" || def.Policy != "hemem" || def.HeatForecaster != "ema" {
		t.Fatalf("paper-default selections changed: %+v", def)
	}

	got := core.New(core.Config{Tracker: "damon"}).Config()
	if got.Tracker != "damon" {
		t.Errorf("Tracker = %q, want caller's damon", got.Tracker)
	}
	if got.Policy != def.Policy || got.HeatForecaster != def.HeatForecaster {
		t.Errorf("unset selections misdefaulted: policy=%q forecaster=%q", got.Policy, got.HeatForecaster)
	}
	if got.CoolThreshold != def.CoolThreshold || got.HotReadThreshold != def.HotReadThreshold ||
		got.HotWriteThreshold != def.HotWriteThreshold || got.PolicyInterval != def.PolicyInterval ||
		got.SamplePeriod != def.SamplePeriod || got.MigRateCap != def.MigRateCap ||
		got.FreeDRAMTarget != def.FreeDRAMTarget {
		t.Errorf("Config{Tracker: damon} zeroed unrelated defaults: %+v", got)
	}

	got = core.New(core.Config{Policy: "heat", HeatForecaster: "trend"}).Config()
	if got.Policy != "heat" || got.HeatForecaster != "trend" {
		t.Errorf("caller's policy/forecaster lost: %+v", got)
	}
	if got.Tracker != def.Tracker {
		t.Errorf("Tracker = %q, want default %q", got.Tracker, def.Tracker)
	}
	if got.CoolThreshold != def.CoolThreshold || got.HotReadThreshold != def.HotReadThreshold {
		t.Errorf("Config{Policy: heat} zeroed threshold defaults: %+v", got)
	}

	// And the selections compose with an unrelated caller field.
	got = core.New(core.Config{Tracker: "idlepage", MigRateCap: sim.GBps(3)}).Config()
	if got.Tracker != "idlepage" || got.MigRateCap != sim.GBps(3) || got.Policy != def.Policy {
		t.Errorf("mixed partial config misdefaulted: %+v", got)
	}
}

// Validate rejects unknown tracker/policy/forecaster names with an error
// listing what is registered; empty strings stay valid (New defaults
// them).
func TestValidateUnknownTrackerPolicy(t *testing.T) {
	if err := (core.Config{}).Validate(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	ok := core.Config{Tracker: "damon", Policy: "heat", HeatForecaster: "trend"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("registered names rejected: %v", err)
	}
	cases := []struct {
		cfg  core.Config
		want string
	}{
		{core.Config{Tracker: "nope"}, "unknown tracker"},
		{core.Config{Policy: "nope"}, "unknown policy"},
		{core.Config{HeatForecaster: "nope"}, "unknown heat forecaster"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%+v: Validate accepted unknown name", tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), "registered:") {
			t.Errorf("%+v: error %q should say %q and list registered names", tc.cfg, err, tc.want)
		}
	}
}

// Releasing a region must return its committed bytes: dramUsed/nvmUsed
// previously only ever grew, so a multi-tenant machine that unmapped a
// tenant leaked its footprint forever and later tenants were refused
// DRAM placement.
func TestReleaseReturnsAccounting(t *testing.T) {
	m, h := newHeMemMachine(core.DefaultConfig())
	tenant := m.AS.Map("tenant", 256*sim.GB) // overflows 192 GB DRAM into NVM
	m.Warm()
	if h.DRAMUsed() != m.Cfg.DRAMSize || h.NVMUsed() != 256*sim.GB-m.Cfg.DRAMSize {
		t.Fatalf("pre-release accounting: dram=%d nvm=%d", h.DRAMUsed(), h.NVMUsed())
	}
	m.Unmap(tenant)
	if h.DRAMUsed() != 0 || h.NVMUsed() != 0 {
		t.Fatalf("release leaked: dram=%d nvm=%d", h.DRAMUsed(), h.NVMUsed())
	}
	if h.HotBytes(vm.TierDRAM)+h.ColdBytes(vm.TierDRAM)+
		h.HotBytes(vm.TierNVM)+h.ColdBytes(vm.TierNVM) != 0 {
		t.Fatal("release left pages on FIFO lists")
	}
	// A successor tenant gets the freed DRAM back.
	next := m.AS.Map("next", 64*sim.GB)
	m.Warm()
	if next.Frac(vm.TierDRAM) != 1 {
		t.Fatalf("successor tenant DRAM frac = %v, want 1", next.Frac(vm.TierDRAM))
	}
	m.Unmap(next)
	if h.DRAMUsed() != 0 || h.NVMUsed() != 0 {
		t.Fatalf("second release leaked: dram=%d nvm=%d", h.DRAMUsed(), h.NVMUsed())
	}
}

// Release with traffic still running: in-flight migrations are cancelled
// and their enqueue-time commitments undone, so accounting lands exactly
// on the surviving region's footprint.
func TestReleaseCancelsInFlightMigrations(t *testing.T) {
	m, h := newHeMemMachine(core.DefaultConfig())
	victim := m.AS.Map("victim", 200*sim.GB)
	m.AS.Map("keeper", 64*sim.GB)
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 64 * sim.GB, HotSet: 8 * sim.GB, Seed: 11})
	_ = g
	m.Warm()
	m.Run(3 * sim.Second) // migrations in flight between tiers
	m.Unmap(victim)
	// Accounting must land on the surviving regions' footprint (keeper
	// plus the GUPS workload's own mapping). Pages still migrating carry
	// enqueue-time commitments that shift bytes between the two counters,
	// so each counter may diverge by up to the queue depth — but the sum
	// is exact, and any victim leak would break it.
	var wantDRAM, wantNVM int64
	for _, r := range m.AS.Regions {
		wantDRAM += r.Bytes(vm.TierDRAM)
		wantNVM += r.Bytes(vm.TierNVM)
	}
	if got, want := h.DRAMUsed()+h.NVMUsed(), wantDRAM+wantNVM; got != want {
		t.Fatalf("DRAM+NVM accounting = %d after release, want surviving %d", got, want)
	}
	slack := int64(m.Migrator.QueueLen()) * m.Cfg.PageSize
	if diff := h.DRAMUsed() - wantDRAM; diff < -slack || diff > slack {
		t.Fatalf("DRAMUsed = %d, want %d within %d queue slack", h.DRAMUsed(), wantDRAM, slack)
	}
	m.Run(2 * sim.Second) // machine keeps running after the teardown
}
