// Graceful tier degradation: HeMem's response to whole-tier offline
// events (a CXL expander link-down, a DIMM hot-remove). The manager
// implements machine.TierEventHandler, so the machine's best-effort
// fallback never runs — instead the policy tick drains the offline
// tier's pages through the normal migration machinery, under the same
// bandwidth budget as ordinary promotions (backpressure: a survivor
// with no capacity this tick is retried next tick, never overcommitted),
// while placement stops targeting the tier (admission control). When
// the tier comes back online the ordinary watermark and promotion loops
// rebalance onto it; no special rebuild pass is needed.
package core

import (
	"github.com/tieredmem/hemem/internal/vm"
)

// OnTierOffline implements machine.TierEventHandler: chain position
// bookkeeping only — the actual drain happens in evacuate, called from
// each policy tick while any tier is offline.
func (h *HeMem) OnTierOffline(t vm.TierID) {
	r := h.rankOf(t)
	if r < 0 || h.offline[r] {
		return
	}
	h.offline[r] = true
	h.numOffline++
	h.stats.TierOfflines++
}

// OnTierOnline implements machine.TierEventHandler: the tier rejoins the
// chain and the regular policy loops rebalance onto it.
func (h *HeMem) OnTierOnline(t vm.TierID) {
	r := h.rankOf(t)
	if r < 0 || !h.offline[r] {
		return
	}
	h.offline[r] = false
	h.numOffline--
	h.stats.TierOnlines++
}

// offlineAt reports whether chain position i is offline.
func (h *HeMem) offlineAt(i int) bool {
	return i >= 0 && i < len(h.offline) && h.offline[i]
}

// firstOnline returns the fastest online chain position. The machine
// never offlines its last migratable tier, so one always exists.
func (h *HeMem) firstOnline() int {
	for i := range h.chain {
		if !h.offlineAt(i) {
			return i
		}
	}
	return 0
}

// lastOnline returns the slowest online chain position.
func (h *HeMem) lastOnline() int {
	for i := len(h.chain) - 1; i > 0; i-- {
		if !h.offlineAt(i) {
			return i
		}
	}
	return 0
}

// activePositions returns the online chain positions in order, into a
// reused scratch slice. With nothing offline it is the identity
// 0..len(chain)-1, so the policy loops walking it behave exactly as the
// historical fixed-neighbour loops did.
func (h *HeMem) activePositions() []int {
	h.act = h.act[:0]
	for i := range h.chain {
		if !h.offlineAt(i) {
			h.act = append(h.act, i)
		}
	}
	return h.act
}

// evacDst picks the surviving chain position to receive one evacuated
// page from offline position i: hot pages scan faster neighbours first
// (nearest first) and then slower ones, cold pages the reverse, taking
// the first online tier with hard capacity for the page. Returns -1
// when no survivor has room this tick (backpressure — the caller leaves
// the page queued and retries next tick).
func (h *HeMem) evacDst(i int, hotPage bool, ps int64) int {
	try := func(j int) bool {
		return !h.offlineAt(j) && h.used[h.chain[j]]+ps <= h.caps[j]
	}
	if hotPage {
		for j := i - 1; j >= 0; j-- {
			if try(j) {
				return j
			}
		}
		for j := i + 1; j < len(h.chain); j++ {
			if try(j) {
				return j
			}
		}
		return -1
	}
	for j := i + 1; j < len(h.chain); j++ {
		if try(j) {
			return j
		}
	}
	for j := i - 1; j >= 0; j-- {
		if try(j) {
			return j
		}
	}
	return -1
}

// evacuate drains the FIFO lists of every offline tier through the
// migrator, spending from the policy tick's bandwidth budget and
// returning what is left. Hot pages go first (they are the ones
// throttling the application) and prefer faster survivors; cold pages
// prefer slower ones. Capacity on the survivors is a hard admission
// limit — free-watermark targets are ignored during an evacuation, and
// the regular watermark loop restores them afterwards. When EnableSwap
// is set and no migratable survivor has room, cold pages spill to the
// swap tier as a last resort.
func (h *HeMem) evacuate(budget int64) int64 {
	ps := h.m.Cfg.PageSize
	for i := range h.chain {
		if !h.offlineAt(i) {
			continue
		}
		for budget > 0 {
			pi, hotPage := h.popEvacVictim(i)
			if pi == nil {
				break
			}
			j := h.evacDst(i, hotPage, ps)
			var dst vm.Tier
			switch {
			case j >= 0:
				dst = h.chain[j]
			case !hotPage && h.cfg.EnableSwap && h.swapTier != vm.TierNone:
				dst = h.swapTier
			default:
				// Backpressure: nowhere to put the page this tick.
				if hotPage {
					h.hot[i].PushFront(pi)
				} else {
					h.cold[i].PushFront(pi)
				}
				return budget
			}
			if !h.m.Migrator.Enqueue(pi.Page, dst) {
				if hotPage {
					h.hot[i].PushFront(pi)
				} else {
					h.cold[i].PushFront(pi)
				}
				return budget
			}
			h.moveUsed(pi.Page.Tier, dst, ps)
			h.stats.Evacuations++
			if dst == h.swapTier {
				h.stats.SwapOuts++
			} else if j < i {
				h.stats.Promotions++
			} else {
				h.stats.Demotions++
			}
			budget -= ps
		}
	}
	return budget
}
