package core

import (
	"testing"
	"testing/quick"
)

func TestListFIFO(t *testing.T) {
	var l List
	a, b, c := &PageInfo{}, &PageInfo{}, &PageInfo{}
	l.PushBack(a)
	l.PushBack(b)
	l.PushBack(c)
	if l.Len() != 3 || l.Front() != a || l.Back() != c {
		t.Fatalf("list state wrong: len=%d", l.Len())
	}
	if got := l.PopFront(); got != a {
		t.Fatal("PopFront != a")
	}
	if got := l.PopFront(); got != b {
		t.Fatal("PopFront != b")
	}
	if got := l.PopFront(); got != c {
		t.Fatal("PopFront != c")
	}
	if l.PopFront() != nil || l.Len() != 0 {
		t.Fatal("empty list not empty")
	}
}

func TestListPushFrontPriority(t *testing.T) {
	var l List
	a, b, w := &PageInfo{}, &PageInfo{}, &PageInfo{}
	l.PushBack(a)
	l.PushBack(b)
	l.PushFront(w) // write-heavy priority
	if l.PopFront() != w || l.PopFront() != a || l.PopFront() != b {
		t.Fatal("PushFront did not prioritize")
	}
}

func TestListMoveBetweenLists(t *testing.T) {
	var hot, cold List
	p := &PageInfo{}
	hot.PushBack(p)
	if p.InList() != &hot {
		t.Fatal("not on hot")
	}
	// Pushing onto another list implicitly removes from the first.
	cold.PushBack(p)
	if hot.Len() != 0 || cold.Len() != 1 || p.InList() != &cold {
		t.Fatal("implicit move failed")
	}
}

func TestListRemoveMiddle(t *testing.T) {
	var l List
	ps := make([]*PageInfo, 5)
	for i := range ps {
		ps[i] = &PageInfo{}
		l.PushBack(ps[i])
	}
	l.Remove(ps[2])
	want := []*PageInfo{ps[0], ps[1], ps[3], ps[4]}
	for _, w := range want {
		if got := l.PopFront(); got != w {
			t.Fatal("order broken after middle removal")
		}
	}
}

func TestListRemoveWrongListPanics(t *testing.T) {
	var a, b List
	p := &PageInfo{}
	a.PushBack(p)
	defer func() {
		if recover() == nil {
			t.Fatal("Remove from wrong list did not panic")
		}
	}()
	b.Remove(p)
}

// Property: any sequence of operations keeps Len consistent with an oracle
// slice and preserves FIFO order.
func TestListModelCheck(t *testing.T) {
	f := func(ops []uint8) bool {
		var l List
		var oracle []*PageInfo
		pool := make([]*PageInfo, 16)
		for i := range pool {
			pool[i] = &PageInfo{}
		}
		for _, op := range ops {
			p := pool[int(op)%len(pool)]
			switch (op / 16) % 3 {
			case 0: // PushBack
				if p.InList() == &l {
					for i, q := range oracle {
						if q == p {
							oracle = append(oracle[:i], oracle[i+1:]...)
							break
						}
					}
				}
				l.PushBack(p)
				oracle = append(oracle, p)
			case 1: // PushFront
				if p.InList() == &l {
					for i, q := range oracle {
						if q == p {
							oracle = append(oracle[:i], oracle[i+1:]...)
							break
						}
					}
				}
				l.PushFront(p)
				oracle = append([]*PageInfo{p}, oracle...)
			case 2: // PopFront
				got := l.PopFront()
				if len(oracle) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != oracle[0] {
						return false
					}
					oracle = oracle[1:]
				}
			}
			if l.Len() != len(oracle) {
				return false
			}
		}
		// Drain and compare.
		for _, w := range oracle {
			if l.PopFront() != w {
				return false
			}
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
