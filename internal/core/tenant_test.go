package core_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// tenantMachine builds a DRAM+NVM machine with a small DRAM tier so
// tenant regions contend for fast memory, with the large-allocation
// threshold lowered so the test regions are manager-tracked.
func tenantMachine(dram int64) (*machine.Machine, *core.HeMem) {
	ccfg := core.DefaultConfig()
	ccfg.LargeAllocThreshold = 16 * sim.MB
	// The defaults target 1 GB free — more than these test tiers hold,
	// which would drain DRAM entirely with no traffic to promote.
	ccfg.FreeDRAMTarget = 8 * sim.MB
	h := core.New(ccfg)
	mcfg := machine.DefaultConfig()
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: dram},
		{ID: vm.TierNVM, Capacity: 4 * sim.GB, UEVictim: true},
	}
	return machine.New(mcfg, h), h
}

func TestTenantTableLifecycle(t *testing.T) {
	_, h := tenantMachine(64 * sim.MB)
	if h.Tenants() != nil {
		t.Fatal("tenant table materialized before any admission")
	}
	spec := machine.TenantSpec{Name: "a", Class: machine.Gold}
	h.OnTenantAdmit(1, spec)
	tt := h.Tenants()
	if tt == nil || tt.NumTenants() != 1 || tt.ActiveCount() != 1 {
		t.Fatalf("admission not recorded: %+v", tt)
	}
	if got, ok := tt.SpecOf(1); !ok || got != spec {
		t.Fatalf("SpecOf(1) = %+v, %v", got, ok)
	}
	// Sparse admission grows the table; gaps stay inactive.
	h.OnTenantAdmit(3, machine.TenantSpec{Name: "c", Class: machine.BestEffort})
	if tt.NumTenants() != 3 || tt.ActiveCount() != 2 {
		t.Fatalf("sparse admit: tenants=%d active=%d", tt.NumTenants(), tt.ActiveCount())
	}
	if _, ok := tt.SpecOf(2); ok {
		t.Fatal("never-admitted id 2 reported active")
	}
	h.OnTenantDepart(1)
	if _, ok := tt.SpecOf(1); ok {
		t.Fatal("departed tenant still reported active")
	}
	if tt.ActiveCount() != 1 {
		t.Fatalf("ActiveCount after depart = %d", tt.ActiveCount())
	}
}

// A hard DRAM cap must bound first-touch placement: the capped tenant's
// overflow lands on NVM even while DRAM has free space.
func TestTenantHardCapBoundsPlacement(t *testing.T) {
	m, h := tenantMachine(256 * sim.MB)
	cap := int64(32 * sim.MB)
	spec := machine.TenantSpec{Name: "capped", Class: machine.Gold}
	spec.Cap[vm.TierDRAM] = cap
	h.OnTenantAdmit(1, spec)
	m.AS.MapOwned("capped-data", 128*sim.MB, 1)
	m.Warm()

	if got := m.AS.TenantBytes(1, vm.TierDRAM); got > cap {
		t.Fatalf("capped tenant holds %d bytes of DRAM, cap %d", got, cap)
	}
	if got := m.AS.TenantBytes(1, vm.TierNVM); got == 0 {
		t.Fatal("capped tenant's overflow never reached NVM")
	}
	// The cap must hold under migration pressure too, not just at
	// first touch.
	m.Run(50 * sim.Millisecond)
	if got := m.AS.TenantBytes(1, vm.TierDRAM); got > cap {
		t.Fatalf("migration pushed capped tenant to %d bytes of DRAM, cap %d", got, cap)
	}
}

// Under DRAM pressure, watermark demotion must land on the
// over-reservation besteffort tenant and leave the under-reservation
// gold tenant's resident set alone, even though besteffort's pages sit
// at the front of the cold FIFO (it mapped and faulted first).
func TestTenantDemotionPrefersBestEffort(t *testing.T) {
	m, h := tenantMachine(64 * sim.MB)
	gold := machine.TenantSpec{Name: "gold", Class: machine.Gold}
	gold.Reserve[vm.TierDRAM] = 48 * sim.MB
	be := machine.TenantSpec{Name: "be", Class: machine.BestEffort}
	h.OnTenantAdmit(1, be)
	h.OnTenantAdmit(2, gold)
	// Besteffort faults first and grabs most of DRAM; gold's region
	// mostly lands on NVM behind it.
	m.AS.MapOwned("be-data", 48*sim.MB, 1)
	m.AS.MapOwned("gold-data", 48*sim.MB, 2)
	m.Warm()
	beBefore := m.AS.TenantBytes(1, vm.TierDRAM)
	goldBefore := m.AS.TenantBytes(2, vm.TierDRAM)
	if beBefore == 0 || goldBefore == 0 {
		t.Fatalf("setup: be=%d gold=%d bytes in DRAM after warm", beBefore, goldBefore)
	}
	m.Run(100 * sim.Millisecond)

	bd := m.AS.TenantBytes(1, vm.TierDRAM)
	gd := m.AS.TenantBytes(2, vm.TierDRAM)
	if bd >= beBefore {
		t.Fatalf("watermark pressure never demoted besteffort (still %d of %d bytes)", bd, beBefore)
	}
	if gd < goldBefore {
		t.Fatalf("demotion took %d bytes from under-reservation gold with besteffort available", goldBefore-gd)
	}
}
