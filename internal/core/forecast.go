// Heat forecasters: small pluggable estimators the heat policy uses to
// turn a region bucket's decayed activity history into the value it
// classifies on. Registered by name like trackers and policies
// (memtierd's heatforecaster chain is the exemplar) and selected with
// Config.HeatForecaster.
package core

import "sort"

// HeatForecaster predicts a bucket's near-future heat from its current
// decayed heat and the value one policy tick earlier.
type HeatForecaster interface {
	// Name identifies the forecaster in reports and -list output.
	Name() string
	// Forecast returns the heat to classify on.
	Forecast(cur, prev float64) float64
}

// HeatForecasterFactory builds a forecaster from the engine config.
type HeatForecasterFactory func(cfg Config) HeatForecaster

var forecasterRegistry = map[string]HeatForecasterFactory{}

// RegisterHeatForecaster installs a forecaster factory under name,
// making it selectable via Config.HeatForecaster. Registering a
// duplicate name panics.
func RegisterHeatForecaster(name string, f HeatForecasterFactory) {
	if _, dup := forecasterRegistry[name]; dup {
		panic("core: duplicate heat forecaster " + name)
	}
	forecasterRegistry[name] = f
}

// HeatForecasterNames returns every registered forecaster name, sorted.
func HeatForecasterNames() []string {
	out := make([]string, 0, len(forecasterRegistry))
	for n := range forecasterRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// staticForecast classifies on the current heat alone.
type staticForecast struct{}

func (staticForecast) Name() string                       { return "static" }
func (staticForecast) Forecast(cur, prev float64) float64 { return cur }

// trendForecast extrapolates the last tick's trend one tick forward,
// clamped at zero: a bucket ramping up classifies hot one tick earlier,
// a bucket ramping down releases its fast-tier claim earlier.
type trendForecast struct{}

func (trendForecast) Name() string { return "trend" }
func (trendForecast) Forecast(cur, prev float64) float64 {
	f := 2*cur - prev
	if f < 0 {
		return 0
	}
	return f
}

// emaForecast blends the current heat with the previous value, smoothing
// single-tick spikes before they trigger migration traffic.
type emaForecast struct{}

func (emaForecast) Name() string { return "ema" }
func (emaForecast) Forecast(cur, prev float64) float64 {
	const alpha = 0.7
	return alpha*cur + (1-alpha)*prev
}

func init() {
	RegisterHeatForecaster("static", func(cfg Config) HeatForecaster { return staticForecast{} })
	RegisterHeatForecaster("trend", func(cfg Config) HeatForecaster { return trendForecast{} })
	RegisterHeatForecaster("ema", func(cfg Config) HeatForecaster { return emaForecast{} })
}
