package core_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// swapConfig returns a HeMem config with the §3.4 swap tier enabled.
func swapConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.EnableSwap = true
	return cfg
}

// With swap enabled, first-touch placement spills past NVM onto the disk
// tier instead of overcommitting NVM.
func TestSwapSpillsToDisk(t *testing.T) {
	h := core.New(swapConfig())
	m := machine.New(machine.DefaultConfig(), h)
	r := m.AS.Map("huge", 1100*sim.GB) // > 192 GB DRAM + 768 GB NVM
	m.Warm()
	if r.Count(vm.TierDisk) == 0 {
		t.Fatal("nothing spilled to disk")
	}
	if got := r.Bytes(vm.TierDRAM); got > m.Cfg.DRAMSize {
		t.Fatalf("DRAM overcommitted: %d", got)
	}
	if got := r.Bytes(vm.TierNVM); got > m.Cfg.NVMSize {
		t.Fatalf("NVM overcommitted: %d", got)
	}
	// Conservation.
	total := r.Count(vm.TierDRAM) + r.Count(vm.TierNVM) + r.Count(vm.TierDisk)
	if total != r.NumPages() {
		t.Fatalf("pages unaccounted: %d != %d", total, r.NumPages())
	}
}

// Without swap (the prototype default), the same mapping overflows into
// NVM only.
func TestNoSwapByDefault(t *testing.T) {
	h := core.New(core.DefaultConfig())
	m := machine.New(machine.DefaultConfig(), h)
	r := m.AS.Map("huge", 1100*sim.GB)
	m.Warm()
	if r.Count(vm.TierDisk) != 0 {
		t.Fatal("disk used with swap disabled")
	}
}

// Traffic reaching disk-resident pages swaps them in; an untouched cold
// majority stays out; the hot set still climbs to DRAM.
func TestSwapInOnTraffic(t *testing.T) {
	h := core.New(swapConfig())
	m := machine.New(machine.DefaultConfig(), h)
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 1100 * sim.GB, HotSet: 16 * sim.GB, Seed: 21,
	})
	m.Warm()
	hotOnDisk := g.HotPages().Count(vm.TierDisk)
	if hotOnDisk == 0 {
		t.Skip("layout put no hot pages on disk") // scattered set: ~13% expected
	}
	m.Run(240 * sim.Second)
	st := h.Stats()
	if st.SwapIns == 0 {
		t.Fatal("no swap-ins despite traffic to disk pages")
	}
	if got := g.HotPages().Count(vm.TierDisk); got >= hotOnDisk/4 {
		t.Errorf("hot pages still on disk: %d of initial %d", got, hotOnDisk)
	}
	// Identification is slow at this scale (the op rate is disk-bound
	// early on); require clear upward progress rather than full
	// convergence.
	if f := g.HotPages().Frac(vm.TierDRAM); f < 0.4 {
		t.Errorf("hot set DRAM fraction = %.2f after 240s, want ≥0.4", f)
	}
	// Disk wear happened (swap-outs write the device).
	if st.SwapOuts == 0 && m.Disk.Wear().WriteBytes == 0 {
		t.Error("no swap-out activity recorded")
	}
}

// The swap tier is strictly slower: a working set overflowing to disk
// without swap-in support (static NVM-style placement via disabled
// migration) runs slower than managed HeMem with swap.
func TestSwapManagedBeatsFrozen(t *testing.T) {
	run := func(migrate bool) float64 {
		cfg := swapConfig()
		cfg.NoMigration = !migrate
		h := core.New(cfg)
		m := machine.New(machine.DefaultConfig(), h)
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 1100 * sim.GB, HotSet: 16 * sim.GB, Seed: 21,
		})
		m.Warm()
		m.Run(150 * sim.Second)
		g.ResetScore()
		m.Run(30 * sim.Second)
		return g.Score()
	}
	managed := run(true)
	frozen := run(false)
	if managed <= frozen {
		t.Errorf("managed swap (%.4f) should beat frozen placement (%.4f)", managed, frozen)
	}
}
