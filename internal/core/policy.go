// Policy: the classification + migration-decision half of the engine.
// A Policy consumes the observation stream the active Tracker produces
// (via Observe), keeps pages sorted into the engine's shared per-tier
// hot/cold queues, and spends each tick's migration budget. The engine
// retains the mechanism — queues, capacity accounting, the migrator,
// swap, evacuation — so policies stay small and comparable.
// Implementations register by name, mirroring mem.RegisterModel, and are
// selected with Config.Policy.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Policy classifies pages and decides migrations. Implementations are
// registered with RegisterPolicy and selected by Config.Policy.
type Policy interface {
	// Name identifies the policy in reports and -list output.
	Name() string
	// Attach wires the policy to its host engine; called once from
	// HeMem.Attach, after the tier chain is initialized.
	Attach(h *HeMem)
	// Observe folds one observation batch for a page into the policy's
	// classification state: n accesses of the given kind. Trackers may
	// deliver n == 0 as a pure aging touch (cool and reclassify without
	// recording an access).
	Observe(pi *PageInfo, write bool, n int)
	// PagePlaced queues a freshly placed (first-touch or growth-adopted)
	// page; the page's tier is already set.
	PagePlaced(pi *PageInfo)
	// PageOut drops any per-page policy state; the engine unlinks the
	// page from its queue afterwards.
	PageOut(pi *PageInfo)
	// Tick spends the policy interval's migration budget (bytes). The
	// engine has already run evacuation for offline tiers and honored
	// the NoMigration ablation.
	Tick(now, budget int64)
	// OnMigrated re-queues a page that landed on its destination tier.
	OnMigrated(pi *PageInfo)
	// Requeue re-lists a page whose migration was abandoned or whose
	// emergency promotion could not be enqueued; the page sits on no
	// list and stays on its current tier.
	Requeue(pi *PageInfo)
}

// PolicyFactory builds a policy from the engine configuration.
type PolicyFactory func(cfg Config) Policy

var policyRegistry = map[string]PolicyFactory{}

// RegisterPolicy installs a policy factory under name, making it
// selectable via Config.Policy. Registering a duplicate name panics,
// like mem.RegisterModel.
func RegisterPolicy(name string, f PolicyFactory) {
	if _, dup := policyRegistry[name]; dup {
		panic("core: duplicate policy " + name)
	}
	policyRegistry[name] = f
}

// PolicyNames returns every registered policy name, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policyRegistry))
	for n := range policyRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// newPolicy resolves cfg.Policy (already defaulted) in the registry.
func newPolicy(cfg Config) Policy {
	f, ok := policyRegistry[cfg.Policy]
	if !ok {
		panic(fmt.Sprintf("core: unknown policy %q (registered: %s)",
			cfg.Policy, strings.Join(PolicyNames(), ", ")))
	}
	return f(cfg)
}

func init() {
	RegisterPolicy("hemem", func(cfg Config) Policy { return &heMemPolicy{} })
}

// heMemPolicy is the paper's policy (§3.1, §3.3): per-page read/write
// sample counters against fixed hot thresholds, a global cooling clock
// that halves counters lazily, write-heavy prioritization, and the
// watermark/swap/promotion migration loops.
type heMemPolicy struct {
	h *HeMem
}

// Name implements Policy.
func (pl *heMemPolicy) Name() string { return "hemem" }

// Attach implements Policy.
func (pl *heMemPolicy) Attach(h *HeMem) { pl.h = h }

// Observe implements Policy: the per-record classifier (§3.1): lazy
// cooling, counter update, hot/cold list movement, write-heavy
// promotion, and cooling-clock advancement. The tracker has already
// resolved the observation's PageInfo and filtered unmanaged pages.
func (pl *heMemPolicy) Observe(pi *PageInfo, write bool, n int) {
	h := pl.h
	h.stats.Samples += uint64(n)

	if !h.cfg.NoCooling && pi.CoolClock != h.clock {
		pl.cool(pi)
	}

	if write {
		pi.Writes += n
	} else {
		pi.Reads += n
	}

	// Advance the global cooling clock when any page accumulates the
	// cooling threshold of samples; other pages cool lazily when next
	// sampled (§3.1).
	if !h.cfg.NoCooling && pi.Reads+pi.Writes >= h.cfg.CoolThreshold {
		h.clock++
		h.stats.CoolEpochs++
		pl.cool(pi)
	}

	pl.classify(pi)
}

// PagePlaced implements Policy: every fresh placement starts cold and
// earns its way onto a hot list through samples.
func (pl *heMemPolicy) PagePlaced(pi *PageInfo) {
	pl.h.coldList(pi.Page.Tier).PushBack(pi)
}

// PageOut implements Policy: all per-page state lives in the PageInfo
// the engine is about to drop.
func (pl *heMemPolicy) PageOut(pi *PageInfo) {}

// cool halves the page's counters once per elapsed cooling epoch and
// refreshes its write-heavy status. A write-heavy page that cools below
// the write threshold gets a second chance on the plain hot list (§3.3).
func (pl *heMemPolicy) cool(pi *PageInfo) {
	h := pl.h
	epochs := h.clock - pi.CoolClock
	if epochs > 30 {
		epochs = 30
	}
	pi.Reads >>= epochs
	pi.Writes >>= epochs
	pi.CoolClock = h.clock
	if pi.WriteHeavy && pi.Writes < h.cfg.HotWriteThreshold {
		pi.WriteHeavy = false
		if pl.isHot(pi) && pi.list != nil {
			// Second chance: back of the hot list for its tier.
			h.hotList(pi.Page.Tier).PushBack(pi)
		}
	}
	if !pl.isHot(pi) && pi.list != nil && h.inHotList(pi) {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}

// isHot reports whether the page's counters meet a hot threshold.
func (pl *heMemPolicy) isHot(pi *PageInfo) bool {
	return pi.Reads >= pl.h.cfg.HotReadThreshold || pi.Writes >= pl.h.cfg.HotWriteThreshold
}

// classify moves the page onto the right list after a counter update.
func (pl *heMemPolicy) classify(pi *PageInfo) {
	h := pl.h
	if pi.list == nil {
		return // in flight; re-listed on migration completion
	}
	writeHeavy := !h.cfg.NoWritePriority && pi.Writes >= h.cfg.HotWriteThreshold
	if writeHeavy && !pi.WriteHeavy {
		pi.WriteHeavy = true
		h.hotList(pi.Page.Tier).PushFront(pi)
		return
	}
	if pl.isHot(pi) && !h.inHotList(pi) {
		if pi.WriteHeavy {
			h.hotList(pi.Page.Tier).PushFront(pi)
		} else {
			h.hotList(pi.Page.Tier).PushBack(pi)
		}
	}
}

// Tick implements Policy: the paper's migration tick is exactly the
// engine's shared watermark/swap/promotion loops over the hot/cold
// queues Observe maintains.
func (pl *heMemPolicy) Tick(now, budget int64) {
	pl.h.migrateTick(budget)
}

// OnMigrated implements Policy: place the landed page on the list
// matching its (possibly cooled) state.
func (pl *heMemPolicy) OnMigrated(pi *PageInfo) {
	h := pl.h
	if pl.isHot(pi) {
		if pi.WriteHeavy {
			h.hotList(pi.Page.Tier).PushFront(pi)
		} else {
			h.hotList(pi.Page.Tier).PushBack(pi)
		}
	} else {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}

// Requeue implements Policy: back of the list matching the page's
// current counters, on the tier it actually sits on.
func (pl *heMemPolicy) Requeue(pi *PageInfo) {
	h := pl.h
	if pl.isHot(pi) {
		h.hotList(pi.Page.Tier).PushBack(pi)
	} else {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}
