// Multi-tenant QoS: the TenantTable mirrors the machine runtime's
// lifecycle callbacks into the manager, and the weighted-fair selectors
// below layer tenant awareness over the shared hot/cold FIFO fabric.
// The queues stay shared — policies keep pushing through
// hotList/coldList untouched — and tenancy only changes *which* entry a
// bounded deterministic scan picks instead of the FIFO head. A manager
// that never sees OnTenantAdmit keeps h.tenants nil and every selector
// degrades to the exact historical pop, so the zero-tenant path is
// byte-identical (pinned by the PR-4 goldens).
package core

import (
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/vm"
)

// TenantTable is the manager's view of admitted tenants: QoS class and
// per-tier quota (soft reservation + hard cap) per TenantID, dense like
// the vm occupancy table. Departed tenants keep their slot, inactive.
type TenantTable struct {
	specs  []machine.TenantSpec
	active []bool
}

// set records an admission.
func (tt *TenantTable) set(id vm.TenantID, spec machine.TenantSpec) {
	for int(id) > len(tt.specs) {
		tt.specs = append(tt.specs, machine.TenantSpec{})
		tt.active = append(tt.active, false)
	}
	tt.specs[id-1] = spec
	tt.active[id-1] = true
}

// depart deactivates a tenant.
func (tt *TenantTable) depart(id vm.TenantID) {
	if id > 0 && int(id) <= len(tt.active) {
		tt.active[id-1] = false
	}
}

// SpecOf returns tenant id's spec; ok is false for unknown or departed
// tenants.
func (tt *TenantTable) SpecOf(id vm.TenantID) (machine.TenantSpec, bool) {
	if id <= 0 || int(id) > len(tt.specs) || !tt.active[id-1] {
		return machine.TenantSpec{}, false
	}
	return tt.specs[id-1], true
}

// NumTenants returns how many tenant IDs the table has seen.
func (tt *TenantTable) NumTenants() int { return len(tt.specs) }

// ActiveCount returns how many tenants are currently active.
func (tt *TenantTable) ActiveCount() int {
	n := 0
	for _, a := range tt.active {
		if a {
			n++
		}
	}
	return n
}

// OnTenantAdmit implements machine.TenantManager: the first admission
// materializes the table and flips every selector into QoS mode.
func (h *HeMem) OnTenantAdmit(id vm.TenantID, spec machine.TenantSpec) {
	if h.tenants == nil {
		h.tenants = &TenantTable{}
	}
	h.tenants.set(id, spec)
}

// OnTenantDepart implements machine.TenantManager.
func (h *HeMem) OnTenantDepart(id vm.TenantID) {
	if h.tenants != nil {
		h.tenants.depart(id)
	}
}

// Tenants returns the manager's tenant table (nil when no tenant was
// ever admitted).
func (h *HeMem) Tenants() *TenantTable { return h.tenants }

// tenantScanLimit bounds the selector scans: a pick considers at most
// this many FIFO entries, keeping the policy tick O(limit) per move
// regardless of list length. The FIFO head still wins all ties, so the
// historical eviction order survives within a score class.
const tenantScanLimit = 256

// Demotion-victim score bands. Bands are spaced wider than the maximum
// class term so pressure order is strict: over-hard-cap pages first,
// then over-reservation, then untenanted, and under-reservation pages
// only when nothing else remains. Within a band, lower classes score
// higher (demote first) and — via the usage skew — tenants holding more
// of the tier demote before tenants holding less, which is what drives
// equal-class fairness convergence.
const (
	bandUnderReserve = 1_000_000
	bandUntenanted   = 1_500_000
	bandOverReserve  = 2_000_000
	bandOverCap      = 3_000_000
	classStep        = 50_000
	skewClamp        = 40_000
)

// tenantUsage returns tenant o's resident bytes on tier t.
func (h *HeMem) tenantUsage(o vm.TenantID, t vm.Tier) int64 {
	return h.m.AS.TenantBytes(o, t)
}

// demoteScore ranks a page for demotion off tier t; higher demotes
// first.
func (h *HeMem) demoteScore(o vm.TenantID, t vm.Tier) int64 {
	if o == vm.TenantNone {
		return bandUntenanted
	}
	spec, ok := h.tenants.SpecOf(o)
	if !ok {
		// Departed-tenant residue drains like untenanted pages.
		return bandUntenanted
	}
	usage := h.tenantUsage(o, t)
	var band int64
	switch {
	case spec.Cap[t] > 0 && usage > spec.Cap[t]:
		band = bandOverCap
	case usage > spec.Reserve[t]:
		band = bandOverReserve
	default:
		band = bandUnderReserve
	}
	w := int64(spec.Class.Weight())
	skew := usage / h.m.Cfg.PageSize / w
	if skew > skewClamp {
		skew = skewClamp
	}
	return band - w*classStep + skew
}

// promoteScore ranks a hot page for promotion onto tier dst; higher
// promotes first: class-major (gold before silver before besteffort,
// untenanted between silver and besteffort), tenants still under their
// reservation on dst next, and — inverse usage skew — tenants holding
// less of dst before tenants holding more.
func (h *HeMem) promoteScore(o vm.TenantID, dst vm.Tier) int64 {
	if o == vm.TenantNone {
		return 1_500_000
	}
	spec, ok := h.tenants.SpecOf(o)
	if !ok {
		return 1_500_000
	}
	w := int64(spec.Class.Weight())
	s := w * 1_000_000
	usage := h.tenantUsage(o, dst)
	if usage < spec.Reserve[dst] {
		s += 500_000
	}
	skew := usage / h.m.Cfg.PageSize / w
	if skew > skewClamp {
		skew = skewClamp
	}
	return s - skew
}

// capAllows reports whether tenant o may take one more page on tier t
// under its hard cap (always true for untenanted pages, capless specs,
// and machines without tenants).
func (h *HeMem) capAllows(o vm.TenantID, t vm.Tier) bool {
	if h.tenants == nil || o == vm.TenantNone {
		return true
	}
	spec, ok := h.tenants.SpecOf(o)
	if !ok || spec.Cap[t] <= 0 {
		return true
	}
	return h.tenantUsage(o, t)+h.m.Cfg.PageSize <= spec.Cap[t]
}

// placeAllowed gates first-touch placement of p on tier t by its
// owner's hard cap. The slowest tier still accepts overflow
// unconditionally — a page must land somewhere.
func (h *HeMem) placeAllowed(p *vm.Page, t vm.Tier) bool {
	if h.tenants == nil {
		return true
	}
	return h.capAllows(p.Region.Owner(), t)
}

// scanBestFront walks up to limit entries from the list head and
// returns the eligible entry with the strictly highest score (earliest
// wins ties, preserving FIFO order within a score class), or nil.
func scanBestFront(l *List, limit int, score func(pi *PageInfo) (int64, bool)) *PageInfo {
	var best *PageInfo
	var bestScore int64
	for pi, i := l.Front(), 0; pi != nil && i < limit; pi, i = pi.next, i+1 {
		if s, ok := score(pi); ok && (best == nil || s > bestScore) {
			best, bestScore = pi, s
		}
	}
	return best
}

// scanBestBack is scanBestFront from the tail (the historical fallback
// victim position in the watermark loop).
func scanBestBack(l *List, limit int, score func(pi *PageInfo) (int64, bool)) *PageInfo {
	var best *PageInfo
	var bestScore int64
	for pi, i := l.Back(), 0; pi != nil && i < limit; pi, i = pi.prev, i+1 {
		if s, ok := score(pi); ok && (best == nil || s > bestScore) {
			best, bestScore = pi, s
		}
	}
	return best
}

// popColdVictim removes and returns the next demotion victim from chain
// position i's cold list: the FIFO head without tenants, the highest
// demotion score within the scan window with them.
func (h *HeMem) popColdVictim(i int) *PageInfo {
	if h.tenants == nil {
		return h.cold[i].PopFront()
	}
	t := h.chain[i]
	best := scanBestFront(&h.cold[i], tenantScanLimit, func(pi *PageInfo) (int64, bool) {
		return h.demoteScore(pi.Page.Region.Owner(), t), true
	})
	if best != nil {
		h.cold[i].Remove(best)
	}
	return best
}

// popHotBackVictim removes and returns the watermark loop's fallback
// victim from chain position i's hot list: the FIFO tail without
// tenants ("HeMem migrates random data to NVM", §3.3), the highest
// demotion score within the tail-side scan window with them.
func (h *HeMem) popHotBackVictim(i int) *PageInfo {
	if h.tenants == nil {
		pi := h.hot[i].Back()
		if pi != nil {
			h.hot[i].Remove(pi)
		}
		return pi
	}
	t := h.chain[i]
	best := scanBestBack(&h.hot[i], tenantScanLimit, func(pi *PageInfo) (int64, bool) {
		return h.demoteScore(pi.Page.Region.Owner(), t), true
	})
	if best != nil {
		h.hot[i].Remove(best)
	}
	return best
}

// promoteCandidate returns (without removing) the next promotion
// candidate from chain position down's hot list, destined for tier dst:
// the FIFO head without tenants; with them, the highest promotion score
// within the scan window among owners whose hard cap on dst allows
// another page. Nil means nothing (eligible) to promote.
func (h *HeMem) promoteCandidate(down int, dst vm.Tier) *PageInfo {
	if h.tenants == nil {
		return h.hot[down].Front()
	}
	return scanBestFront(&h.hot[down], tenantScanLimit, func(pi *PageInfo) (int64, bool) {
		o := pi.Page.Region.Owner()
		if !h.capAllows(o, dst) {
			return 0, false
		}
		return h.promoteScore(o, dst), true
	})
}

// evacRank orders evacuation off an offline tier: besteffort tenants
// leave first, then untenanted pages, then silver, then gold — the
// most-protected class keeps its (soon to be re-placed) pages queued
// behind everyone else so survivors' capacity pressure lands on the
// cheap classes first.
func (h *HeMem) evacRank(o vm.TenantID) int64 {
	if o == vm.TenantNone {
		return 1
	}
	spec, ok := h.tenants.SpecOf(o)
	if !ok {
		return 1
	}
	switch spec.Class {
	case machine.BestEffort:
		return 0
	case machine.Silver:
		return 2
	default:
		return 3
	}
}

// popEvacVictim removes and returns the next page to drain off offline
// chain position i, reporting whether it came from the hot list.
// Without tenants it is the historical hot-then-cold FIFO pop; with
// them, the lowest QoS class in either scan window goes first
// (besteffort before untenanted before silver before gold), hot
// preferred on ties since hot pages throttle the application hardest.
func (h *HeMem) popEvacVictim(i int) (*PageInfo, bool) {
	if h.tenants == nil {
		if pi := h.hot[i].PopFront(); pi != nil {
			return pi, true
		}
		return h.cold[i].PopFront(), false
	}
	score := func(pi *PageInfo) (int64, bool) {
		return -h.evacRank(pi.Page.Region.Owner()), true
	}
	hotBest := scanBestFront(&h.hot[i], tenantScanLimit, score)
	coldBest := scanBestFront(&h.cold[i], tenantScanLimit, score)
	switch {
	case hotBest == nil && coldBest == nil:
		return nil, false
	case coldBest == nil:
		h.hot[i].Remove(hotBest)
		return hotBest, true
	case hotBest == nil:
		h.cold[i].Remove(coldBest)
		return coldBest, false
	}
	if h.evacRank(coldBest.Page.Region.Owner()) < h.evacRank(hotBest.Page.Region.Owner()) {
		h.cold[i].Remove(coldBest)
		return coldBest, false
	}
	h.hot[i].Remove(hotBest)
	return hotBest, true
}
