// Package core implements HeMem itself (§3): the user-level tiered memory
// manager with PEBS-based asynchronous access sampling, hot/cold FIFO
// queues per memory type, clock-based cooling, write-heavy prioritization,
// and an asynchronous migration policy that runs every 10 ms.
package core

import "github.com/tieredmem/hemem/internal/vm"

// PageInfo is HeMem's per-page tracking state. HeMem tracks at huge-page
// granularity: counters accumulate PEBS samples, and the cooling clock
// halves them lazily (§3.1).
type PageInfo struct {
	Page *vm.Page

	// Reads and Writes count PEBS samples since the last cooling.
	Reads  int
	Writes int
	// CoolClock is the global cooling epoch this page was last cooled
	// at; a mismatch with the engine clock cools the page lazily before
	// the next sample is applied.
	CoolClock uint64
	// WriteHeavy marks pages whose store samples crossed the write
	// threshold; they get migration priority (§3.3).
	WriteHeavy bool

	list       *List
	prev, next *PageInfo
}

// InList returns the list currently holding the page, or nil (in flight).
func (pi *PageInfo) InList() *List { return pi.list }

// List is an intrusive doubly-linked FIFO queue of PageInfo, the structure
// behind HeMem's hot, cold, and free queues. PushBack enqueues normally;
// PushFront implements write-heavy priority ("HeMem moves it to the front
// of the hot list").
type List struct {
	Name       string
	head, tail *PageInfo
	n          int
	// hot marks the per-tier hot queues so membership tests
	// (HeMem.inHotList) stay O(1) with any number of tiers.
	hot bool
}

// Len returns the number of queued pages.
func (l *List) Len() int { return l.n }

// Front returns the head without removing it, or nil.
func (l *List) Front() *PageInfo { return l.head }

// Back returns the tail without removing it, or nil.
func (l *List) Back() *PageInfo { return l.tail }

// PushBack appends pi, removing it from any list it is currently on.
func (l *List) PushBack(pi *PageInfo) {
	if pi.list != nil {
		pi.list.Remove(pi)
	}
	pi.list = l
	pi.prev = l.tail
	pi.next = nil
	if l.tail != nil {
		l.tail.next = pi
	} else {
		l.head = pi
	}
	l.tail = pi
	l.n++
}

// PushFront prepends pi (priority insertion), removing it from any list it
// is currently on.
func (l *List) PushFront(pi *PageInfo) {
	if pi.list != nil {
		pi.list.Remove(pi)
	}
	pi.list = l
	pi.next = l.head
	pi.prev = nil
	if l.head != nil {
		l.head.prev = pi
	} else {
		l.tail = pi
	}
	l.head = pi
	l.n++
}

// PopFront removes and returns the head, or nil if empty.
func (l *List) PopFront() *PageInfo {
	pi := l.head
	if pi == nil {
		return nil
	}
	l.Remove(pi)
	return pi
}

// Remove unlinks pi from this list. pi must be on l.
func (l *List) Remove(pi *PageInfo) {
	if pi.list != l {
		panic("core: removing page from wrong list")
	}
	if pi.prev != nil {
		pi.prev.next = pi.next
	} else {
		l.head = pi.next
	}
	if pi.next != nil {
		pi.next.prev = pi.prev
	} else {
		l.tail = pi.prev
	}
	pi.prev, pi.next, pi.list = nil, nil, nil
	l.n--
}
