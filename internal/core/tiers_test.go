package core_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// threeTier builds a DRAM+CXL+NVM machine with small fast tiers so a
// modest region spans the whole chain. ueTier marks which tier takes
// uncorrectable media errors.
func threeTier(ccfg core.Config, ueTier vm.Tier, faults fault.Config) (*machine.Machine, *core.HeMem) {
	ccfg.LargeAllocThreshold = 64 * sim.MB
	h := core.New(ccfg)
	mcfg := machine.DefaultConfig()
	mcfg.Faults = faults
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: 64 * sim.MB},
		{ID: vm.TierCXL, Capacity: 128 * sim.MB, UEVictim: ueTier == vm.TierCXL},
		{ID: vm.TierNVM, Capacity: 1 * sim.GB, UEVictim: ueTier == vm.TierNVM},
	}
	return machine.New(mcfg, h), h
}

// An uncorrectable error on a middle-chain tier must promote the struck
// page to its faster neighbor — and a UE on the slowest tier of a 3-tier
// chain must promote to the middle tier, not jump straight to DRAM. The
// historical handler hard-coded vm.TierDRAM as the evacuation target.
func TestUEPromotesToFasterNeighbor(t *testing.T) {
	cases := []struct {
		name       string
		ueTier     vm.Tier
		wantDst    vm.Tier
		forbidDst  vm.Tier
		forbidNote string
	}{
		{"middle-tier UE to DRAM", vm.TierCXL, vm.TierDRAM, vm.TierNVM, "demoted instead of promoted"},
		{"slow-tier UE to CXL", vm.TierNVM, vm.TierCXL, vm.TierDRAM, "jumped the chain to DRAM"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ccfg := core.DefaultConfig()
			// Freeze the regular policy so every completed migration in
			// the run is an emergency promotion.
			ccfg.NoMigration = true
			m, h := threeTier(ccfg, tc.ueTier, fault.Config{NVMUncorrectableMTBF: sim.Millisecond})
			m.AS.Map("data", 512*sim.MB) // spans DRAM, CXL, and NVM
			m.Warm()
			m.Run(20 * sim.Millisecond)

			fs := *m.FaultCounters()
			if fs.UncorrectableByTier[tc.ueTier] == 0 {
				t.Fatalf("no UEs struck %v; per-tier counters %v", tc.ueTier, fs.UncorrectableByTier)
			}
			for tier, n := range fs.UncorrectableByTier {
				if vm.Tier(tier) != tc.ueTier && n != 0 {
					t.Fatalf("UE struck non-victim tier %v (%d)", vm.Tier(tier), n)
				}
			}
			if h.Stats().EmergencyPromotions == 0 {
				t.Fatal("no emergency promotions despite UEs on a promotable tier")
			}
			if got := m.Migrator.Moved(tc.ueTier, tc.wantDst); got == 0 {
				t.Fatalf("no %v→%v emergency moves completed", tc.ueTier, tc.wantDst)
			}
			if got := m.Migrator.Moved(tc.ueTier, tc.forbidDst); got != 0 {
				t.Fatalf("%d struck pages %s (%v→%v)", got, tc.forbidNote, tc.ueTier, tc.forbidDst)
			}
		})
	}
}

// Unmap must return the committed bytes of every tier — including the
// middle CXL tier and the swap-backed disk tier — to their free pools,
// and leave no pages on any FIFO list.
func TestUnmapReleasesEveryTier(t *testing.T) {
	ccfg := core.DefaultConfig()
	ccfg.EnableSwap = true
	ccfg.LargeAllocThreshold = 64 * sim.MB
	h := core.New(ccfg)
	mcfg := machine.DefaultConfig()
	mcfg.Tiers = []machine.TierDesc{
		{ID: vm.TierDRAM, Capacity: 64 * sim.MB},
		{ID: vm.TierCXL, Capacity: 64 * sim.MB},
		{ID: vm.TierNVM, Capacity: 64 * sim.MB, UEVictim: true},
		{ID: vm.TierDisk, Capacity: 4 * sim.GB, Swap: true},
	}
	m := machine.New(mcfg, h)
	r := m.AS.Map("data", 320*sim.MB) // overflows every fast tier onto disk
	m.Warm()

	for _, td := range m.TierTable() {
		if r.Bytes(td.ID) == 0 {
			t.Fatalf("setup: no pages landed on %v", td.ID)
		}
		if got, want := h.Used(td.ID), r.Bytes(td.ID); got != want {
			t.Fatalf("pre-unmap %v accounting: used=%d resident=%d", td.ID, got, want)
		}
	}

	m.Unmap(r)
	for _, td := range m.TierTable() {
		if got := h.Used(td.ID); got != 0 {
			t.Fatalf("unmap leaked %d bytes on %v", got, td.ID)
		}
		if h.HotBytes(td.ID)+h.ColdBytes(td.ID) != 0 {
			t.Fatalf("unmap left pages on %v FIFO lists", td.ID)
		}
	}
}
