// Tracker: the access-observation half of the engine. HeMem's original
// design hard-wired PEBS sampling into the manager; the Tracker interface
// breaks that monopoly so rival observation mechanisms — a DAMON-style
// adaptive region sampler, an idlepage/soft-dirty page-table scanner —
// can drive the very same policies on equal footing (the comparison the
// PEBS-applicability and HM-Keeper papers call for). Implementations
// register themselves by name, mirroring mem.RegisterModel, and are
// selected with Config.Tracker.
package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tieredmem/hemem/internal/pebs"
)

// Tracker observes memory accesses on behalf of the engine and feeds
// per-quantum observation batches to the active Policy through
// HeMem.Observe. Implementations are registered with RegisterTracker and
// selected by Config.Tracker.
type Tracker interface {
	// Name identifies the tracker in reports and -list output.
	Name() string
	// Attach wires the tracker to its host engine; called once from
	// HeMem.Attach, after the tier chain is initialized.
	Attach(h *HeMem)
	// PageIn is called when a managed page enters tracking (first touch
	// or growth adoption), after the page is placed and queued.
	PageIn(pi *PageInfo)
	// PageOut is called when a managed page leaves tracking (region
	// release), before its state is dropped.
	PageOut(pi *PageInfo)
	// Poll runs one quantum of observation work (draining sample
	// buffers, sampling regions, completing scan passes), delivering
	// observations via HeMem.Observe.
	Poll(now, dt int64)
	// Tick runs once per policy interval, before migration decisions
	// (e.g. PEBS adaptive-sampling period control).
	Tick(now int64)
}

// TrackerFactory builds a tracker from the engine configuration.
type TrackerFactory func(cfg Config) Tracker

var trackerRegistry = map[string]TrackerFactory{}

// RegisterTracker installs a tracker factory under name, making it
// selectable via Config.Tracker. Registering a duplicate name panics,
// like mem.RegisterModel.
func RegisterTracker(name string, f TrackerFactory) {
	if _, dup := trackerRegistry[name]; dup {
		panic("core: duplicate tracker " + name)
	}
	trackerRegistry[name] = f
}

// TrackerNames returns every registered tracker name, sorted.
func TrackerNames() []string {
	out := make([]string, 0, len(trackerRegistry))
	for n := range trackerRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// newTracker resolves cfg.Tracker (already defaulted) in the registry.
func newTracker(cfg Config) Tracker {
	f, ok := trackerRegistry[cfg.Tracker]
	if !ok {
		panic(fmt.Sprintf("core: unknown tracker %q (registered: %s)",
			cfg.Tracker, strings.Join(TrackerNames(), ", ")))
	}
	return f(cfg)
}

func init() {
	RegisterTracker("pebs", func(cfg Config) Tracker { return newPEBSTracker(cfg) })
}

// pebsTracker is the paper's observation mechanism (§3.1): the CPU writes
// a sample record per SamplePeriod accesses into a fixed buffer, and a
// dedicated reader thread drains it at a bounded rate. It preserves both
// Figure 10 failure modes — buffer overruns at low periods, starvation at
// high ones — and owns the adaptive-sampling response to overruns.
type pebsTracker struct {
	h       *HeMem
	buffer  *pebs.Buffer
	sampler *pebs.Sampler
	reader  *pebs.Reader

	// recScratch is the reusable record batch the reader drains into
	// each quantum.
	recScratch []pebs.Record

	// Adaptive-sampling state: buffer counters at the last policy tick
	// and the current run of overrunning ticks.
	lastPushed    uint64
	lastDropped   uint64
	overrunStreak int
}

// newPEBSTracker builds the sampler/buffer/reader pipeline from an
// already-defaulted config.
func newPEBSTracker(cfg Config) *pebsTracker {
	t := &pebsTracker{}
	var err error
	if t.buffer, err = pebs.NewBuffer(cfg.PEBSBufferCap); err == nil {
		if t.sampler, err = pebs.NewSampler(cfg.SamplePeriod, t.buffer); err == nil {
			t.reader, err = pebs.NewReader(cfg.ReaderRate)
		}
	}
	if err != nil {
		// Internal invariant: New normalized the fields to positive
		// values before constructing the tracker.
		panic("core: " + err.Error())
	}
	return t
}

// Name implements Tracker.
func (t *pebsTracker) Name() string { return "pebs" }

// Attach implements Tracker.
func (t *pebsTracker) Attach(h *HeMem) { t.h = h }

// PageIn implements Tracker: PEBS needs no per-page setup — samples
// arrive tagged with the page they hit.
func (t *pebsTracker) PageIn(pi *PageInfo) {}

// PageOut implements Tracker: stale records for a released page are
// filtered by the engine's page table on drain.
func (t *pebsTracker) PageOut(pi *PageInfo) {}

// Sampler implements the optional sampler source consulted by
// HeMem.Sampler (machine.SampleSource): the machine feeds this sampler
// from the traffic streams each quantum.
func (t *pebsTracker) Sampler() *pebs.Sampler { return t.sampler }

// Buffer exposes the sample buffer (drop statistics for Figure 10).
func (t *pebsTracker) Buffer() *pebs.Buffer { return t.buffer }

// Poll implements Tracker: the PEBS thread drains the sample buffer at
// its bounded rate and hands each record to the policy. Records are
// popped in batches into a reusable scratch slice so the per-sample path
// involves no allocation.
func (t *pebsTracker) Poll(now, dt int64) {
	if t.recScratch == nil {
		t.recScratch = make([]pebs.Record, 1024)
	}
	grant := dt
	for {
		n := t.reader.DrainBatch(t.buffer, grant, t.recScratch)
		grant = 0
		t.observeBatch(t.recScratch[:n])
		if n < len(t.recScratch) {
			break
		}
	}
	t.reader.Settle(dt)
}

// observeBatch classifies a drained batch of records. The page-info
// table lookup and unmanaged-page filter are inlined here so the batch
// loop amortizes the bounds/nil checks instead of paying a call and a
// table re-load per record.
func (t *pebsTracker) observeBatch(recs []pebs.Record) {
	pages := t.h.pages
	pol := t.h.pol
	for i := range recs {
		rec := &recs[i]
		wi := int(rec.Page) >> piWindowShift
		if wi >= len(pages) || pages[wi] == nil {
			continue // unmanaged page
		}
		pi := pages[wi][int(rec.Page)&piWindowMask]
		if pi == nil {
			continue // unmanaged page
		}
		pol.Observe(pi, rec.Kind == pebs.Store, 1)
	}
}

// Tick implements Tracker: adaptive sample-period control, run at the
// top of every policy interval when Config.AdaptiveSampling is set.
func (t *pebsTracker) Tick(now int64) {
	if t.h.cfg.AdaptiveSampling {
		t.adaptSampling()
	}
}

// adaptSampling raises the PEBS sample period when the buffer overruns
// persistently: each policy tick inspects the drop fraction of the records
// offered since the last tick, and after OverrunPatience consecutive
// overrunning ticks the period doubles, up to MaxSamplePeriod. Trading
// sample resolution for a sustainable inflow keeps the reader tracking the
// hot set instead of losing a bursty, biased slice of it to buffer
// overruns (the Figure 10 regime).
func (t *pebsTracker) adaptSampling() {
	h := t.h
	pushed, dropped := t.buffer.Pushed(), t.buffer.Dropped()
	dp, dd := pushed-t.lastPushed, dropped-t.lastDropped
	t.lastPushed, t.lastDropped = pushed, dropped
	total := dp + dd
	if total == 0 {
		return
	}
	if float64(dd)/float64(total) <= h.cfg.OverrunDropThreshold {
		t.overrunStreak = 0
		return
	}
	t.overrunStreak++
	if t.overrunStreak < h.cfg.OverrunPatience {
		return
	}
	t.overrunStreak = 0
	if t.sampler.Period >= h.cfg.MaxSamplePeriod {
		return
	}
	p := t.sampler.Period * 2
	if p > h.cfg.MaxSamplePeriod {
		p = h.cfg.MaxSamplePeriod
	}
	t.sampler.Period = p
	h.stats.PeriodRaises++
	h.m.FaultCounters().SamplePeriodRaises++
}
