package core

import (
	"testing"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/pebs"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// smallMachine builds a tiny machine so classifier mechanics are easy to
// drive by hand.
func smallMachine(cfg Config) (*machine.Machine, *HeMem, *vm.Region) {
	// Shrink the management threshold to match the tiny region.
	cfg.LargeAllocThreshold = 64 * sim.MB
	h := New(cfg)
	mcfg := machine.DefaultConfig()
	mcfg.DRAMSize = 64 * sim.MB
	mcfg.NVMSize = 256 * sim.MB
	m := machine.New(mcfg, h)
	r := m.AS.Map("data", 128*sim.MB) // 64 pages; half must live in NVM
	m.Warm()
	return m, h, r
}

// feed pushes n samples for page id and drains them through the reader.
func feed(m *machine.Machine, h *HeMem, id vm.PageID, kind pebs.Kind, n int) {
	for i := 0; i < n; i++ {
		h.Buffer().Push(pebs.Record{Page: id, Kind: kind})
	}
	h.OnQuantum(m.Clock.Now(), sim.Second) // ample drain budget
}

func TestClassifierHotOnReadThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FreeDRAMTarget = 0
	cfg.NoCooling = true
	m, h, r := smallMachine(cfg)
	nvmPage := r.PageAt(40) // beyond the 32 DRAM pages
	if nvmPage.Tier != vm.TierNVM {
		t.Fatal("test setup: expected NVM page")
	}
	feed(m, h, nvmPage.ID, pebs.LoadNVM, cfg.HotReadThreshold-1)
	if h.HotBytes(vm.TierNVM) != 0 {
		t.Fatal("page hot below threshold")
	}
	feed(m, h, nvmPage.ID, pebs.LoadNVM, 1)
	if h.HotBytes(vm.TierNVM) != m.Cfg.PageSize {
		t.Fatal("page not hot at threshold")
	}
}

func TestClassifierWriteThresholdIsHalf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoCooling = true
	m, h, r := smallMachine(cfg)
	p := r.PageAt(40)
	feed(m, h, p.ID, pebs.Store, cfg.HotWriteThreshold)
	if h.HotBytes(vm.TierNVM) != m.Cfg.PageSize {
		t.Fatal("store threshold did not mark page hot")
	}
	pi := h.info(p.ID)
	if !pi.WriteHeavy {
		t.Fatal("page not write-heavy")
	}
	// Write-heavy pages sit at the front of the hot list.
	if h.hotList(vm.TierNVM).Front() != pi {
		t.Fatal("write-heavy page not prioritized")
	}
}

func TestCoolingHalvesCounts(t *testing.T) {
	cfg := DefaultConfig()
	m, h, r := smallMachine(cfg)
	p := r.PageAt(40)
	// Drive one page to the cooling threshold: the global clock advances
	// and the page itself is cooled immediately.
	feed(m, h, p.ID, pebs.LoadNVM, cfg.CoolThreshold)
	pi := h.info(p.ID)
	if st := h.Stats(); st.CoolEpochs == 0 {
		t.Fatal("cooling clock did not advance")
	}
	if pi.Reads >= cfg.CoolThreshold {
		t.Fatalf("counts not halved: %d", pi.Reads)
	}
	// Another page cools lazily on its next sample.
	q := r.PageAt(41)
	feed(m, h, q.ID, pebs.LoadNVM, 4) // below everything
	qi := h.info(q.ID)
	if qi.CoolClock != pi.CoolClock {
		t.Fatal("lazy cooling did not synchronize clocks")
	}
}

func TestSecondChanceOnCooledWriteHeavy(t *testing.T) {
	cfg := DefaultConfig()
	m, h, r := smallMachine(cfg)
	p := r.PageAt(40)
	// Make it write-heavy, then force enough cooling epochs that writes
	// fall below the threshold while reads keep it hot.
	feed(m, h, p.ID, pebs.Store, cfg.HotWriteThreshold)
	feed(m, h, p.ID, pebs.LoadNVM, 12)
	pi := h.info(p.ID)
	if !pi.WriteHeavy {
		t.Fatal("setup: not write-heavy")
	}
	// Advance the global clock via another page and resample: epochs
	// elapse, writes halve below threshold.
	other := r.PageAt(42)
	for i := 0; i < 3; i++ {
		feed(m, h, other.ID, pebs.LoadNVM, cfg.CoolThreshold)
	}
	feed(m, h, p.ID, pebs.LoadNVM, cfg.HotReadThreshold) // re-hot via reads
	pi = h.info(p.ID)
	if pi.WriteHeavy {
		t.Fatal("write-heavy flag survived cooling")
	}
	if !h.inHotList(pi) {
		t.Fatal("second chance should keep the page on a hot list")
	}
}

// Engine invariant: every tracked page is on exactly one list (or in
// flight), and committed DRAM bytes match physical occupancy.
func TestEngineAccountingInvariant(t *testing.T) {
	h := New(DefaultConfig())
	m := machine.New(machine.DefaultConfig(), h)
	r := m.AS.Map("data", 8*sim.GB)
	m.Warm()
	m.Run(2 * sim.Second)
	listed := 0
	for i := range h.chain {
		listed += h.hot[i].Len() + h.cold[i].Len()
	}
	inflight := m.Migrator.QueueLen()
	if listed+inflight != r.NumPages() {
		t.Fatalf("listed %d + inflight %d != %d pages", listed, inflight, r.NumPages())
	}
	if h.DRAMUsed() != r.Bytes(vm.TierDRAM) {
		// In-flight promotions count as committed; allow the queue.
		diff := h.DRAMUsed() - r.Bytes(vm.TierDRAM)
		if diff < 0 || diff > int64(inflight)*m.Cfg.PageSize {
			t.Fatalf("DRAMUsed %d vs physical %d (inflight %d)", h.DRAMUsed(), r.Bytes(vm.TierDRAM), inflight)
		}
	}
}

func TestUnmanagedSamplesIgnored(t *testing.T) {
	cfg := DefaultConfig()
	m, h, _ := smallMachine(cfg)
	small := m.AS.Map("small", 2*sim.MB) // below LargeAllocThreshold
	m.Warm()
	feed(m, h, small.PageAt(0).ID, pebs.Store, 50)
	if got := h.Stats().Samples; got != 0 {
		t.Fatalf("unmanaged page samples counted: %d", got)
	}
}
