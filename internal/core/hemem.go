package core

import (
	"fmt"
	"strings"

	"github.com/tieredmem/hemem/internal/dma"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/pebs"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Config holds HeMem's policy parameters. Defaults are the prototype's
// experimentally determined values (§3, §5.1 sensitivity studies).
type Config struct {
	// HotReadThreshold is the sampled load count at which a page becomes
	// hot (paper: 8).
	HotReadThreshold int
	// HotWriteThreshold is the sampled store count at which a page
	// becomes hot and write-heavy (paper: 4 — half the read threshold).
	HotWriteThreshold int
	// CoolThreshold is the accumulated sample count on any single page
	// that advances the global cooling clock (paper: 18).
	CoolThreshold int
	// PolicyInterval is the migration policy period (paper: 10 ms).
	PolicyInterval int64
	// SamplePeriod is the PEBS sampling period in accesses (paper: 5000).
	SamplePeriod float64
	// PEBSBufferCap is the PEBS buffer capacity in records.
	PEBSBufferCap int
	// ReaderRate is the PEBS thread's record-processing capacity.
	ReaderRate float64
	// FreeDRAMTarget is the free-space watermark for the fastest tier
	// (paper: 1 GB of DRAM kept free for new allocations). It is the
	// back-compat default for FreeTargets on the machine's fastest tier.
	FreeDRAMTarget int64
	// MigRateCap bounds migration bandwidth (paper: 10 GB/s).
	MigRateCap float64
	// LargeAllocThreshold: regions at least this large are managed;
	// smaller allocations are forwarded to the kernel and stay in DRAM
	// (paper: 1 GB).
	LargeAllocThreshold int64
	// NoDMA disables the I/OAT engine, copying with CopyThreads copy
	// threads instead (the paper's Figure 7 ablation). The switches
	// below are inverted so the zero value is the paper default and a
	// partially filled Config keeps full paper behavior.
	NoDMA bool
	// CopyThreads is the software-copy thread count (paper: 4).
	CopyThreads int
	// NoWritePriority disables write-heavy page prioritization (§3.3)
	// as an ablation.
	NoWritePriority bool
	// NoCooling disables the cooling clock as an ablation.
	NoCooling bool
	// NoMigration stops the policy from moving pages (Figure 8's
	// "PEBS" bar uses it to isolate sampling overhead).
	NoMigration bool
	// BackgroundThreads is the core cost of HeMem's PEBS, policy, and
	// fault threads while the manager runs.
	BackgroundThreads float64
	// PlaceFunc, when set, overrides the default fastest-first placement
	// on first touch while keeping tracking intact. Figure 8's "Opt" and
	// "PEBS" bars use it to place the known-hot set manually.
	PlaceFunc func(p *vm.Page) vm.Tier
	// EnableSwap adds the slowest tier the paper's §3.4 sketches: when
	// the slowest migratable tier fills, the policy swaps its coldest
	// pages out to the block device, and swaps pages back in when
	// traffic reaches them again. Off by default, as in the prototype.
	EnableSwap bool
	// FreeNVMTarget is the back-compat free-space watermark for every
	// migratable tier below the fastest (historically: the NVM kept free
	// when swap is enabled). FreeTargets overrides it per tier.
	FreeNVMTarget int64
	// FreeTargets overrides the free-space watermark for individual
	// tiers, keyed by TierID. Tiers absent from the map fall back to
	// FreeDRAMTarget (fastest tier) or FreeNVMTarget (the rest), so a
	// two-tier config needs no entries and longer chains can tune each
	// link independently.
	FreeTargets map[vm.TierID]int64
	// AdaptiveSampling raises the PEBS sample period when the buffer
	// overruns persistently (Figure 10's tradeoff: fewer samples beat
	// silently losing the hot set to drops). Off by default so the
	// sensitivity experiments measure fixed periods.
	AdaptiveSampling bool
	// OverrunDropThreshold is the per-tick drop fraction above which a
	// policy tick counts as overrunning (default 0.10).
	OverrunDropThreshold float64
	// OverrunPatience is how many consecutive overrunning ticks trigger a
	// period raise (default 5).
	OverrunPatience int
	// MaxSamplePeriod caps adaptive raises (default 16× SamplePeriod).
	MaxSamplePeriod float64
	// Tracker selects the access-observation mechanism by registered
	// name (see RegisterTracker): "pebs" (the paper's sampling pipeline),
	// "damon" (adaptive region sampling), "idlepage" (page-table scan).
	// Empty selects "pebs".
	Tracker string
	// Policy selects the classification/migration policy by registered
	// name (see RegisterPolicy): "hemem" (the paper's per-page counters)
	// or "heat" (decaying region heatmap with a forecaster). Empty
	// selects "hemem".
	Policy string
	// HeatForecaster selects the heat policy's forecaster by registered
	// name (see RegisterHeatForecaster): "ema", "trend", or "static".
	// Empty selects "ema". Ignored by the hemem policy.
	HeatForecaster string
}

// DefaultConfig returns the paper's prototype parameters.
func DefaultConfig() Config {
	return Config{
		HotReadThreshold:    8,
		HotWriteThreshold:   4,
		CoolThreshold:       18,
		PolicyInterval:      10 * sim.Millisecond,
		SamplePeriod:        5000,
		PEBSBufferCap:       1 << 16,
		ReaderRate:          pebs.DefaultReaderRate,
		FreeDRAMTarget:      1 * sim.GB,
		MigRateCap:          sim.GBps(10),
		LargeAllocThreshold: 1 * sim.GB,
		CopyThreads:         4,
		BackgroundThreads:   2.5,
		FreeNVMTarget:       1 * sim.GB,
		Tracker:             "pebs",
		Policy:              "hemem",
		HeatForecaster:      "ema",
	}
}

// Validate reports the first invalid parameter, or nil. Zero values are
// valid (New falls back to defaults).
func (c Config) Validate() error {
	if c.HotReadThreshold < 0 || c.HotWriteThreshold < 0 || c.CoolThreshold < 0 {
		return fmt.Errorf("core: negative hot/cool threshold")
	}
	if c.PolicyInterval < 0 {
		return fmt.Errorf("core: negative PolicyInterval %d", c.PolicyInterval)
	}
	if c.SamplePeriod < 0 || c.PEBSBufferCap < 0 || c.ReaderRate < 0 {
		return fmt.Errorf("core: negative PEBS parameter")
	}
	if c.FreeDRAMTarget < 0 || c.FreeNVMTarget < 0 {
		return fmt.Errorf("core: negative free-memory target")
	}
	for t, v := range c.FreeTargets {
		if v < 0 {
			return fmt.Errorf("core: negative FreeTargets[%v] %d", t, v)
		}
	}
	if c.MigRateCap < 0 {
		return fmt.Errorf("core: negative MigRateCap %v", c.MigRateCap)
	}
	if c.LargeAllocThreshold < 0 {
		return fmt.Errorf("core: negative LargeAllocThreshold %d", c.LargeAllocThreshold)
	}
	if c.CopyThreads < 0 {
		return fmt.Errorf("core: negative CopyThreads %d", c.CopyThreads)
	}
	if c.BackgroundThreads < 0 {
		return fmt.Errorf("core: negative BackgroundThreads %v", c.BackgroundThreads)
	}
	if c.OverrunDropThreshold < 0 || c.OverrunDropThreshold > 1 {
		return fmt.Errorf("core: OverrunDropThreshold %v outside [0,1]", c.OverrunDropThreshold)
	}
	if c.OverrunPatience < 0 {
		return fmt.Errorf("core: negative OverrunPatience %d", c.OverrunPatience)
	}
	if c.MaxSamplePeriod < 0 {
		return fmt.Errorf("core: negative MaxSamplePeriod %v", c.MaxSamplePeriod)
	}
	if c.Tracker != "" {
		if _, ok := trackerRegistry[c.Tracker]; !ok {
			return fmt.Errorf("core: unknown tracker %q (registered: %s)",
				c.Tracker, strings.Join(TrackerNames(), ", "))
		}
	}
	if c.Policy != "" {
		if _, ok := policyRegistry[c.Policy]; !ok {
			return fmt.Errorf("core: unknown policy %q (registered: %s)",
				c.Policy, strings.Join(PolicyNames(), ", "))
		}
	}
	if c.HeatForecaster != "" {
		if _, ok := forecasterRegistry[c.HeatForecaster]; !ok {
			return fmt.Errorf("core: unknown heat forecaster %q (registered: %s)",
				c.HeatForecaster, strings.Join(HeatForecasterNames(), ", "))
		}
	}
	return nil
}

// Stats aggregates engine activity for reporting and tests.
type Stats struct {
	Samples      uint64
	CoolEpochs   uint64
	Promotions   int64
	Demotions    int64
	SwapIns      int64
	SwapOuts     int64
	WPStallPages int64
	// EmergencyPromotions counts pages evacuated from a tier after an
	// uncorrectable media error (also included in Promotions).
	EmergencyPromotions int64
	// PeriodRaises counts adaptive sample-period increases.
	PeriodRaises int64
	// TierOfflines and TierOnlines count whole-tier lifecycle events the
	// manager handled; Evacuations counts pages drained off offline
	// tiers (also included in Promotions/Demotions/SwapOuts by
	// direction).
	TierOfflines int64
	TierOnlines  int64
	Evacuations  int64
}

// HeMem is the manager: it implements machine.Manager, owning the shared
// tiering fabric — per-tier hot/cold FIFO queues, capacity accounting,
// the migration chain, swap, and offline-tier evacuation — while
// delegating access observation to a pluggable Tracker and
// classification/migration decisions to a pluggable Policy (both
// selected by Config; the defaults reproduce the paper's PEBS pipeline
// byte-for-byte). The fabric is written against the machine's tier table
// rather than a fixed DRAM/NVM pair: each migratable tier holds a hot
// and a cold queue, demotions flow to the next slower tier and
// promotions to the next faster one, so the same code drives 2-, 3-, or
// 4-tier chains (e.g. DRAM+CXL+NVM) without changes.
type HeMem struct {
	cfg Config
	m   *machine.Machine

	tracker Tracker
	pol     Policy

	// tenants is the QoS quota table (tenant.go), nil until the machine
	// runtime reports the first admission. While nil, every victim and
	// promotion selector reduces to the historical FIFO pop.
	tenants *TenantTable

	// pages maps PageID to tracking state through a sparse windowed
	// index: nil windows (and nil entries) are unmanaged. Window
	// granularity keeps the index O(touched pages), matching vm's lazy
	// page slabs, so a terabyte mapping costs nothing until tracked.
	pages []*piWindow

	// chain is the machine's migratable tiers, fastest first — the
	// migration graph is this linear order (promote = previous entry,
	// demote = next entry). swapTier is the §3.4 swap-only backing tier
	// (TierNone when the table has none), reached only through
	// swapPolicy, never through watermark demotion.
	chain    []vm.TierID
	caps     []int64 // capacity per chain position
	swapTier vm.TierID
	// tierRank maps a TierID to its chain position, or -1.
	tierRank [vm.MaxTiers]int8

	// hot and cold are the per-tier FIFO queues, indexed by chain
	// position. swapCold queues swapped-out pages; hot swap-tier pages
	// queue on the slowest migratable tier's hot list so the swap-in
	// policy moves them up before the promotion scan considers them.
	hot, cold []List
	swapCold  List

	clock uint64 // global cooling clock
	// used commits bytes per tier (including in-flight migrations, which
	// are charged to their destination at enqueue time).
	used [vm.MaxTiers]int64
	// freeTarget is the per-chain-position free-space watermark resolved
	// from Config.FreeTargets/FreeDRAMTarget/FreeNVMTarget at Attach.
	freeTarget []int64
	// pinned, managed, and released are indexed by Region.ID (dense
	// per-address-space), replacing pointer-keyed maps on the page-in and
	// policy hot paths.
	pinned   []bool
	managed  []bool // growth-promoted regions
	released []bool
	// diskCursor is indexed by the machine's rate-set order (the same
	// index swapPolicy iterates), replacing a map keyed by *vm.PageSet.
	diskCursor []int

	// offline marks chain positions taken out of service by a tier
	// offline event (see degrade.go); numOffline is the count of set
	// entries and act the reusable online-position scratch the policy
	// loops walk.
	offline    []bool
	numOffline int
	act        []int

	// piSlabs bulk-allocates PageInfo in chunks: tracking a 512 GB
	// region means ~260k PageInfos, and allocating each individually is
	// pure GC scan load. Pointers into a slab stay valid because slabs
	// are never resized, only appended.
	piSlab []PageInfo

	stats Stats
}

// New creates a HeMem manager with cfg (zero value gets defaults; call
// Config.Validate to detect invalid negative parameters beforehand).
// Unset (zero) fields fall back to DefaultConfig field-by-field, so a
// caller that sets only the knobs it cares about keeps them:
// historically HotReadThreshold == 0 silently replaced the entire config
// with the defaults, clobbering every field the caller did set. The
// ablation switches are spelled so that false is the paper default
// (NoDMA, NoWritePriority, NoCooling, NoMigration), which keeps partial
// configs on full paper behavior without a sentinel.
func New(cfg Config) *HeMem {
	def := DefaultConfig()
	if cfg.HotReadThreshold == 0 {
		cfg.HotReadThreshold = def.HotReadThreshold
	}
	if cfg.HotWriteThreshold == 0 {
		cfg.HotWriteThreshold = def.HotWriteThreshold
	}
	if cfg.CoolThreshold == 0 {
		cfg.CoolThreshold = def.CoolThreshold
	}
	if cfg.PolicyInterval == 0 {
		cfg.PolicyInterval = def.PolicyInterval
	}
	if cfg.FreeDRAMTarget == 0 {
		cfg.FreeDRAMTarget = def.FreeDRAMTarget
	}
	if cfg.MigRateCap == 0 {
		cfg.MigRateCap = def.MigRateCap
	}
	if cfg.LargeAllocThreshold == 0 {
		cfg.LargeAllocThreshold = def.LargeAllocThreshold
	}
	if cfg.CopyThreads == 0 {
		cfg.CopyThreads = def.CopyThreads
	}
	if cfg.BackgroundThreads == 0 {
		cfg.BackgroundThreads = def.BackgroundThreads
	}
	if cfg.FreeNVMTarget == 0 {
		cfg.FreeNVMTarget = def.FreeNVMTarget
	}
	if cfg.PEBSBufferCap <= 0 {
		cfg.PEBSBufferCap = def.PEBSBufferCap
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = def.SamplePeriod
	}
	if cfg.ReaderRate <= 0 {
		cfg.ReaderRate = def.ReaderRate
	}
	if cfg.MaxSamplePeriod <= 0 {
		cfg.MaxSamplePeriod = 16 * cfg.SamplePeriod
	}
	if cfg.OverrunDropThreshold <= 0 {
		cfg.OverrunDropThreshold = 0.10
	}
	if cfg.OverrunPatience <= 0 {
		cfg.OverrunPatience = 5
	}
	if cfg.Tracker == "" {
		cfg.Tracker = def.Tracker
	}
	if cfg.Policy == "" {
		cfg.Policy = def.Policy
	}
	if cfg.HeatForecaster == "" {
		cfg.HeatForecaster = def.HeatForecaster
	}
	h := &HeMem{cfg: cfg, swapTier: vm.TierNone}
	h.tracker = newTracker(cfg)
	h.pol = newPolicy(cfg)
	return h
}

// Name implements machine.Manager.
func (h *HeMem) Name() string { return "HeMem" }

// Config returns the active configuration.
func (h *HeMem) Config() Config { return h.cfg }

// Stats returns a copy of the engine counters.
func (h *HeMem) Stats() Stats { return h.stats }

// Tracker returns the active access tracker.
func (h *HeMem) Tracker() Tracker { return h.tracker }

// Policy returns the active classification/migration policy.
func (h *HeMem) Policy() Policy { return h.pol }

// Sampler implements machine.SampleSource: the machine feeds PEBS
// samples into the tracker's sampler when the tracker has one. Scan- and
// region-based trackers return nil and observe through the machine's
// traffic rates instead.
func (h *HeMem) Sampler() *pebs.Sampler {
	if s, ok := h.tracker.(interface{ Sampler() *pebs.Sampler }); ok {
		return s.Sampler()
	}
	return nil
}

// Buffer exposes the PEBS buffer (drop statistics for Figure 10), or nil
// when the active tracker does not sample through one.
func (h *HeMem) Buffer() *pebs.Buffer {
	if b, ok := h.tracker.(interface{ Buffer() *pebs.Buffer }); ok {
		return b.Buffer()
	}
	return nil
}

// Attach implements machine.Manager: build the per-tier queues from the
// machine's tier table, wire the migrator backend, attach the tracker
// and policy, and start the policy timer.
func (h *HeMem) Attach(m *machine.Machine) {
	h.m = m
	h.initTiers()
	m.Migrator.RateCap = h.cfg.MigRateCap
	if !h.cfg.NoDMA {
		m.Migrator.SetBackend(machine.DMABackend{Engine: dma.New(dma.DefaultConfig())})
	} else {
		m.Migrator.SetBackend(machine.ThreadBackend{Copier: dma.NewThreadCopier(h.cfg.CopyThreads)})
	}
	h.tracker.Attach(h)
	h.pol.Attach(h)
	var tick func(now int64)
	tick = func(now int64) {
		h.tick(now)
		m.Events.Schedule(now+h.cfg.PolicyInterval, tick)
	}
	m.Events.Schedule(m.Clock.Now()+h.cfg.PolicyInterval, tick)
}

// initTiers derives the migration chain, queues, and watermarks from the
// machine's tier table.
func (h *HeMem) initTiers() {
	for i := range h.tierRank {
		h.tierRank[i] = -1
	}
	h.chain = h.chain[:0]
	h.caps = h.caps[:0]
	h.swapTier = vm.TierNone
	for _, td := range h.m.TierTable() {
		if td.Swap {
			if h.swapTier == vm.TierNone {
				h.swapTier = td.ID
			}
			continue
		}
		if int(td.ID) < vm.MaxTiers {
			h.tierRank[td.ID] = int8(len(h.chain))
		}
		h.chain = append(h.chain, td.ID)
		h.caps = append(h.caps, td.Capacity)
	}
	if len(h.chain) == 0 {
		panic("core: tier table has no migratable tiers")
	}
	h.hot = make([]List, len(h.chain))
	h.cold = make([]List, len(h.chain))
	h.freeTarget = make([]int64, len(h.chain))
	h.offline = make([]bool, len(h.chain))
	h.numOffline = 0
	for i, t := range h.chain {
		name := strings.ToLower(t.String())
		h.hot[i] = List{Name: name + "-hot", hot: true}
		h.cold[i] = List{Name: name + "-cold"}
		ft, ok := h.cfg.FreeTargets[t]
		if !ok {
			if i == 0 {
				ft = h.cfg.FreeDRAMTarget
			} else {
				ft = h.cfg.FreeNVMTarget
			}
		}
		h.freeTarget[i] = ft
	}
	if h.swapTier != vm.TierNone {
		h.swapCold = List{Name: strings.ToLower(h.swapTier.String()) + "-cold"}
	}
}

// rankOf returns t's chain position, or -1 (swap tier / untracked).
func (h *HeMem) rankOf(t vm.Tier) int {
	if int(t) >= 0 && int(t) < vm.MaxTiers {
		return int(h.tierRank[t])
	}
	return -1
}

// addUsed adjusts the committed-byte counter for tier t.
func (h *HeMem) addUsed(t vm.Tier, delta int64) {
	if int(t) >= 0 && int(t) < vm.MaxTiers {
		h.used[t] += delta
	}
}

// moveUsed transfers a page's committed bytes from tier `from` to tier
// `to` — the single accounting rule behind placement, promotion, demotion,
// swap, and their unwinding (Release, OnMigrationFailed).
func (h *HeMem) moveUsed(from, to vm.Tier, ps int64) {
	h.addUsed(from, -ps)
	h.addUsed(to, ps)
}

// piWindow is one window of the sparse PageID → PageInfo index.
type piWindow [piWindowSize]*PageInfo

const (
	piWindowShift = 9
	piWindowSize  = 1 << piWindowShift
	piWindowMask  = piWindowSize - 1
)

// info returns the tracking state for page id, or nil if unmanaged.
func (h *HeMem) info(id vm.PageID) *PageInfo {
	wi := int(id) >> piWindowShift
	if wi >= len(h.pages) || h.pages[wi] == nil {
		return nil
	}
	return h.pages[wi][int(id)&piWindowMask]
}

// setInfo writes the index entry for page id, growing the window table
// and materializing the window as needed.
func (h *HeMem) setInfo(id vm.PageID, pi *PageInfo) {
	wi := int(id) >> piWindowShift
	for wi >= len(h.pages) {
		h.pages = append(h.pages, nil)
	}
	if h.pages[wi] == nil {
		h.pages[wi] = new(piWindow)
	}
	h.pages[wi][int(id)&piWindowMask] = pi
}

// piSlabSize is the PageInfo arena chunk size; see HeMem.piSlab.
const piSlabSize = 4096

// track creates tracking state for a managed page. PageInfos come from
// append-only slabs so that tracking hundreds of thousands of pages costs
// hundreds of allocations, not one per page; a slab is never resized, so
// pointers into it stay valid.
func (h *HeMem) track(p *vm.Page) *PageInfo {
	if len(h.piSlab) == cap(h.piSlab) {
		h.piSlab = make([]PageInfo, 0, piSlabSize)
	}
	h.piSlab = append(h.piSlab, PageInfo{Page: p, CoolClock: h.clock})
	pi := &h.piSlab[len(h.piSlab)-1]
	h.setInfo(p.ID, pi)
	return pi
}

// regionFlag reads a Region.ID-indexed boolean.
func regionFlag(flags []bool, id int) bool { return id < len(flags) && flags[id] }

// setRegionFlag sets a Region.ID-indexed boolean, growing the slice.
func setRegionFlag(flags *[]bool, id int, v bool) {
	for id >= len(*flags) {
		*flags = append(*flags, false)
	}
	(*flags)[id] = v
}

// Manage begins tracking a region that was previously left to the kernel:
// the paper's growth policy ("If HeMem observes a region growing via small
// allocations, it will start to manage it once a size threshold is
// crossed", §3.3). Already-placed pages enter the cold list of their
// current tier; untouched pages will be placed on first touch.
func (h *HeMem) Manage(r *vm.Region) {
	if regionFlag(h.managed, r.ID) {
		return
	}
	setRegionFlag(&h.managed, r.ID, true)
	// Only materialized pages can be already placed; untouched ones are
	// TierNone and would be skipped anyway.
	r.EachPage(func(p *vm.Page) {
		if p.Tier == vm.TierNone || h.info(p.ID) != nil {
			return
		}
		pi := h.track(p)
		h.pol.PagePlaced(pi)
		h.tracker.PageIn(pi)
	})
}

// Managed reports whether r is under HeMem management (either because it
// was mapped large or because growth tracking promoted it).
func (h *HeMem) Managed(r *vm.Region) bool {
	if regionFlag(h.managed, r.ID) {
		return true
	}
	if regionFlag(h.released, r.ID) {
		return false
	}
	return r.Size() >= h.cfg.LargeAllocThreshold && !regionFlag(h.pinned, r.ID)
}

// PinRegion marks a region as pinned to the fastest tier: its pages are
// always allocated from it and never demoted. This is HeMem's
// per-application flexibility at work — the paper's priority FlexKVS
// instance keeps all of its key-value pairs in DRAM this way (§5.2.2,
// Table 4).
func (h *HeMem) PinRegion(r *vm.Region) {
	setRegionFlag(&h.pinned, r.ID, true)
}

// Release undoes all tracking and accounting for region r: its pages
// leave the FIFO lists, in-flight migrations are cancelled (undoing their
// enqueue-time commitments), and the committed bytes of every tier return
// to the free pools. It implements machine.Releaser, backing
// machine.Machine.Unmap — without it a long-running multi-tenant machine
// leaks committed bytes on every region teardown and eventually refuses
// fast-tier placement.
func (h *HeMem) Release(r *vm.Region) {
	if regionFlag(h.released, r.ID) {
		return
	}
	setRegionFlag(&h.released, r.ID, true)
	ps := h.m.Cfg.PageSize
	// Untouched pages were never tracked, never placed, never migrating —
	// the sparse walk covers everything Release must undo.
	r.EachPage(func(p *vm.Page) {
		if p.Migrating {
			if dst, ok := h.m.Migrator.Cancel(p); ok {
				// Undo the enqueue-time accounting exactly as
				// OnMigrationFailed would.
				h.moveUsed(dst, p.Tier, ps)
			}
		}
		if pi := h.info(p.ID); pi != nil {
			h.tracker.PageOut(pi)
			h.pol.PageOut(pi)
			if pi.list != nil {
				pi.list.Remove(pi)
			}
			h.setInfo(p.ID, nil)
		}
		if p.Tier != vm.TierNone {
			h.addUsed(p.Tier, -ps)
		}
	})
	setRegionFlag(&h.pinned, r.ID, false)
	setRegionFlag(&h.managed, r.ID, false)
}

// NVMUsed returns committed NVM bytes.
func (h *HeMem) NVMUsed() int64 { return h.Used(vm.TierNVM) }

// Used returns the committed bytes on tier t (including in-flight
// migrations charged to their destination).
func (h *HeMem) Used(t vm.Tier) int64 {
	if int(t) >= 0 && int(t) < vm.MaxTiers {
		return h.used[t]
	}
	return 0
}

// PageIn implements machine.Manager: the userfaultfd page-missing path.
// Pinned and small regions stay in the fastest tier untracked; large
// regions are managed, walking the chain fastest-first until a tier has
// room (§3.3). The slowest migratable tier accepts the page
// unconditionally unless swap is enabled, in which case overflow lands on
// the swap tier.
// Offline tiers are skipped everywhere (admission control: a tier being
// drained must not accept fresh pages); with nothing offline the walks
// are identical to the historical fixed-chain ones.
func (h *HeMem) PageIn(p *vm.Page) {
	ps := h.m.Cfg.PageSize
	fastest := h.chain[h.firstOnline()]
	if regionFlag(h.pinned, p.Region.ID) {
		h.addUsed(fastest, ps)
		p.SetTier(fastest)
		return
	}
	last := h.lastOnline()
	if p.Region.Size() < h.cfg.LargeAllocThreshold && !regionFlag(h.managed, p.Region.ID) {
		// Kernel-managed small allocation: keep in fast memory if at
		// all possible; overflow walks the chain and the slowest online
		// tier takes the page unconditionally (the kernel path never
		// swaps).
		for i := 0; i < last; i++ {
			if !h.offlineAt(i) && h.used[h.chain[i]]+ps <= h.caps[i] && h.placeAllowed(p, h.chain[i]) {
				h.addUsed(h.chain[i], ps)
				p.SetTier(h.chain[i])
				return
			}
		}
		h.addUsed(h.chain[last], ps)
		p.SetTier(h.chain[last])
		return
	}
	pi := h.track(p)
	want := fastest
	if h.cfg.PlaceFunc != nil {
		want = h.cfg.PlaceFunc(p)
	}
	// A placement hint outside the chain (or on the swap tier) starts
	// the walk at the slowest migratable tier, matching the historical
	// "anything not DRAM goes to NVM" behavior.
	start := last
	if r := h.rankOf(want); r >= 0 {
		start = r
	}
	for i := start; i < last; i++ {
		if !h.offlineAt(i) && h.used[h.chain[i]]+ps <= h.caps[i] && h.placeAllowed(p, h.chain[i]) {
			h.addUsed(h.chain[i], ps)
			p.SetTier(h.chain[i])
			h.pol.PagePlaced(pi)
			h.tracker.PageIn(pi)
			return
		}
	}
	slowest := h.chain[last]
	if !h.cfg.EnableSwap || h.swapTier == vm.TierNone || h.used[slowest]+ps <= h.caps[last] {
		h.addUsed(slowest, ps)
		p.SetTier(slowest)
		h.pol.PagePlaced(pi)
		h.tracker.PageIn(pi)
		return
	}
	h.addUsed(h.swapTier, ps)
	p.SetTier(h.swapTier)
	h.pol.PagePlaced(pi)
	h.tracker.PageIn(pi)
}

// OnQuantum implements machine.Manager: one quantum of tracker
// observation work (for PEBS, draining the sample buffer at its bounded
// rate and classifying each record through the policy).
func (h *HeMem) OnQuantum(now, dt int64) {
	h.tracker.Poll(now, dt)
}

// ActiveThreads implements machine.Manager.
func (h *HeMem) ActiveThreads() float64 { return h.cfg.BackgroundThreads }

// inHotList reports whether pi currently sits on a hot list.
func (h *HeMem) inHotList(pi *PageInfo) bool {
	return pi.list != nil && pi.list.hot
}

// hotList returns the hot queue for pages resident on tier t. Hot
// swap-tier pages queue on the slowest migratable tier's hot list: the
// swap-in policy moves them up before the promotion scan considers them
// for the faster tiers.
func (h *HeMem) hotList(t vm.Tier) *List {
	if r := h.rankOf(t); r >= 0 {
		return &h.hot[r]
	}
	return &h.hot[len(h.hot)-1]
}

// coldList returns the cold queue for pages resident on tier t.
func (h *HeMem) coldList(t vm.Tier) *List {
	if r := h.rankOf(t); r >= 0 {
		return &h.cold[r]
	}
	if t == h.swapTier && h.swapTier != vm.TierNone {
		return &h.swapCold
	}
	return &h.cold[len(h.cold)-1]
}

// tick is the policy-interval timer body: tracker housekeeping, the
// shared budget/backlog/evacuation preamble, then the active policy's
// migration decisions.
func (h *HeMem) tick(now int64) {
	h.tracker.Tick(now)
	budget := int64(h.cfg.MigRateCap * float64(h.cfg.PolicyInterval))
	// Keep the queue bounded: don't outrun the migrator.
	if backlog := int64(h.m.Migrator.QueuedBytes()); backlog >= budget {
		return
	}
	// Offline-tier evacuation runs first and even under the NoMigration
	// ablation: an offline tier's pages are unreachable, so draining
	// them is correctness, not placement optimization.
	if h.numOffline > 0 {
		budget = h.evacuate(budget)
	}
	if h.cfg.NoMigration {
		return
	}
	h.pol.Tick(now, budget)
}

// migrateTick is the shared migration mechanism (§3.3), generalized down
// the tier chain: keep each tier's free watermark by demoting its
// coldest pages to the next slower tier, run the optional swap layer
// between the slowest migratable tier and the swap device, then promote
// hot pages up every link — write-heavy first — exchanging against cold
// pages when the faster tier is full. If a tier has neither free space
// nor cold pages, its hot set exceeds capacity and migration across that
// link stops. Policies call it from Tick once their hot/cold queues
// reflect the latest classification.
// The loops walk the online chain positions (activePositions), so an
// offline tier drops out of every link and its neighbours pair up
// directly; with nothing offline the walk is the identity 0..last and
// the loops behave exactly as the fixed-neighbour version did.
func (h *HeMem) migrateTick(budget int64) {
	ps := h.m.Cfg.PageSize
	act := h.activePositions()
	lastA := len(act) - 1

	// Watermark: force eviction when a tier's free space dips below its
	// target so new allocations keep landing in fast memory. Fastest
	// first; the slowest online migratable tier has no slower neighbor
	// to evict to (the swap layer below handles its headroom).
	for ai := 0; ai < lastA; ai++ {
		i, down := act[ai], act[ai+1]
		for h.free(i) < h.freeTarget[i] && budget > 0 {
			victim := h.popColdVictim(i)
			if victim == nil {
				// No cold data: evict from the back of the hot list
				// ("HeMem migrates random data to NVM", §3.3).
				victim = h.popHotBackVictim(i)
				if victim == nil {
					break
				}
			}
			h.demote(victim, h.chain[down])
			budget -= ps
		}
	}

	if h.cfg.EnableSwap && h.swapTier != vm.TierNone {
		// Swap work gets at most half the tick budget so promotion is
		// never starved by disk churn.
		half := budget / 2
		spent := half - h.swapPolicy(half, act[lastA])
		budget -= spent
	}

	// Promote hot pages up each link while faster slots exist, fastest
	// link first.
	for ai := 0; ai < lastA; ai++ {
		i, down := act[ai], act[ai+1]
		for budget > 0 {
			cand := h.promoteCandidate(down, h.chain[i])
			if cand == nil {
				break
			}
			if h.free(i) >= h.freeTarget[i]+ps {
				h.hot[down].Remove(cand)
				h.promote(cand, h.chain[i])
				budget -= ps
				continue
			}
			victim := h.popColdVictim(i)
			if victim == nil {
				// Hot set ≥ tier capacity: stop migrating (§3.3).
				break
			}
			h.hot[down].Remove(cand)
			h.demote(victim, h.chain[down])
			h.promote(cand, h.chain[i])
			budget -= 2 * ps
		}
	}
}

// free returns uncommitted bytes at chain position i.
func (h *HeMem) free(i int) int64 { return h.caps[i] - h.used[h.chain[i]] }

// dramFree returns uncommitted bytes on the fastest tier.
func (h *HeMem) dramFree() int64 { return h.free(0) }

// swapPolicy runs the optional swap-tier policy (§3.4) between the
// slowest online migratable tier (chain position last, passed by the
// policy tick) and the swap device: swap in any swapped-out pages that
// traffic has reached (their accesses fault synchronously, so getting
// them off disk dominates everything else), and keep headroom on that
// tier by swapping its coldest pages out.
func (h *HeMem) swapPolicy(budget int64, last int) int64 {
	ps := h.m.Cfg.PageSize
	slowest := h.chain[last]
	// Swap-in: walk sets with live traffic and swapped-out pages.
	for si, set := range h.m.RateSets() {
		r := h.m.Rates(set)
		if r.ReadRate+r.WriteRate == 0 || set.Count(h.swapTier) == 0 {
			continue
		}
		for budget > 0 && set.Count(h.swapTier) > 0 {
			if h.free(last) < h.freeTarget[last]+ps {
				// Exchange: push a cold page out to make room.
				victim := h.cold[last].PopFront()
				if victim == nil || !h.m.Migrator.Enqueue(victim.Page, h.swapTier) {
					if victim != nil {
						h.cold[last].PushBack(victim)
					}
					break
				}
				h.moveUsed(victim.Page.Tier, h.swapTier, ps)
				h.stats.SwapOuts++
				budget -= ps
			}
			p := h.pickSwapped(si, set)
			if p == nil {
				break
			}
			if h.m.Migrator.Enqueue(p, slowest) {
				h.moveUsed(p.Tier, slowest, ps)
				h.stats.SwapIns++
				budget -= ps
			} else {
				break
			}
		}
	}
	// Swap-out: keep headroom by evicting the coldest pages of the
	// slowest migratable tier.
	for h.free(last) < h.freeTarget[last] && budget > 0 {
		victim := h.cold[last].PopFront()
		if victim == nil {
			break
		}
		if h.m.Migrator.Enqueue(victim.Page, h.swapTier) {
			h.moveUsed(victim.Page.Tier, h.swapTier, ps)
			h.stats.SwapOuts++
			budget -= ps
		} else {
			h.cold[last].PushBack(victim)
			break
		}
	}
	return budget
}

// pickSwapped returns a non-migrating swap-tier-resident page of set. si
// is the set's index in the machine's rate-set order, which keys the
// per-set round-robin cursor.
func (h *HeMem) pickSwapped(si int, set *vm.PageSet) *vm.Page {
	n := set.Len()
	for si >= len(h.diskCursor) {
		h.diskCursor = append(h.diskCursor, 0)
	}
	cur := h.diskCursor[si]
	for i := 0; i < n; i++ {
		p := set.Page((cur + i) % n)
		if p.Tier == h.swapTier && !p.Migrating {
			h.diskCursor[si] = (cur + i + 1) % n
			return p
		}
	}
	return nil
}

// promote enqueues a move to the faster tier dst and commits its space.
func (h *HeMem) promote(pi *PageInfo, dst vm.Tier) {
	if h.m.Migrator.Enqueue(pi.Page, dst) {
		h.moveUsed(pi.Page.Tier, dst, h.m.Cfg.PageSize)
		h.stats.Promotions++
	} else {
		h.hotList(pi.Page.Tier).PushBack(pi)
	}
}

// demote enqueues a move to the slower tier dst and releases the faster
// tier's space.
func (h *HeMem) demote(pi *PageInfo, dst vm.Tier) {
	if h.m.Migrator.Enqueue(pi.Page, dst) {
		h.moveUsed(pi.Page.Tier, dst, h.m.Cfg.PageSize)
		h.stats.Demotions++
	} else {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}

// OnMigrated implements machine.MigrationObserver: the policy places the
// landed page on the list matching its (possibly cooled) state.
func (h *HeMem) OnMigrated(p *vm.Page) {
	pi := h.info(p.ID)
	if pi == nil {
		return
	}
	h.pol.OnMigrated(pi)
}

// OnMigrationFailed implements machine.MigrationFailureObserver: a
// migration abandoned after exhausting its retries leaves the page in its
// source tier, so the space committed at enqueue time is returned and the
// page goes back on the list matching its current state.
func (h *HeMem) OnMigrationFailed(p *vm.Page, dst vm.Tier) {
	h.moveUsed(dst, p.Tier, h.m.Cfg.PageSize)
	pi := h.info(p.ID)
	if pi == nil {
		return
	}
	h.pol.Requeue(pi)
}

// OnNVMUncorrectable implements machine.FaultHandler: a page whose frame
// took an uncorrectable media error is evacuated immediately to the next
// faster tier in the chain via an urgent promotion that jumps the
// migration queue and cannot be aborted. If the faster tier cannot be
// committed the page stays on its freshly remapped frame. Pages already
// on the fastest tier (or outside the chain) have nowhere faster to go.
func (h *HeMem) OnNVMUncorrectable(p *vm.Page) {
	pi := h.info(p.ID)
	if pi == nil || p.Migrating {
		return
	}
	r := h.rankOf(p.Tier)
	if r <= 0 {
		return
	}
	// Walk to the nearest online faster tier (the direct neighbour when
	// nothing is offline).
	up := r - 1
	for up >= 0 && h.offlineAt(up) {
		up--
	}
	if up < 0 {
		return
	}
	dst := h.chain[up]
	if pi.list != nil {
		pi.list.Remove(pi)
	}
	if h.m.Migrator.EnqueueUrgent(p, dst) {
		h.moveUsed(p.Tier, dst, h.m.Cfg.PageSize)
		h.stats.Promotions++
		h.stats.EmergencyPromotions++
		h.m.FaultCounters().EmergencyPromotions++
		return
	}
	h.pol.Requeue(pi)
}

// HotBytes returns the bytes currently on the hot list of tier t.
func (h *HeMem) HotBytes(t vm.Tier) int64 {
	return int64(h.hotList(t).Len()) * h.m.Cfg.PageSize
}

// ColdBytes returns the bytes currently on the cold list of tier t.
func (h *HeMem) ColdBytes(t vm.Tier) int64 {
	return int64(h.coldList(t).Len()) * h.m.Cfg.PageSize
}

// DRAMUsed returns committed DRAM bytes.
func (h *HeMem) DRAMUsed() int64 { return h.Used(vm.TierDRAM) }

func (h *HeMem) String() string {
	var b strings.Builder
	b.WriteString("hemem{")
	for i, t := range h.chain {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s hot=%d cold=%d", strings.ToLower(t.String()), h.hot[i].Len(), h.cold[i].Len())
	}
	fmt.Fprintf(&b, ", clock=%d}", h.clock)
	return b.String()
}
