package core

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/dma"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/pebs"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Config holds HeMem's policy parameters. Defaults are the prototype's
// experimentally determined values (§3, §5.1 sensitivity studies).
type Config struct {
	// HotReadThreshold is the sampled load count at which a page becomes
	// hot (paper: 8).
	HotReadThreshold int
	// HotWriteThreshold is the sampled store count at which a page
	// becomes hot and write-heavy (paper: 4 — half the read threshold).
	HotWriteThreshold int
	// CoolThreshold is the accumulated sample count on any single page
	// that advances the global cooling clock (paper: 18).
	CoolThreshold int
	// PolicyInterval is the migration policy period (paper: 10 ms).
	PolicyInterval int64
	// SamplePeriod is the PEBS sampling period in accesses (paper: 5000).
	SamplePeriod float64
	// PEBSBufferCap is the PEBS buffer capacity in records.
	PEBSBufferCap int
	// ReaderRate is the PEBS thread's record-processing capacity.
	ReaderRate float64
	// FreeDRAMTarget is the DRAM kept free for new allocations
	// (paper: 1 GB).
	FreeDRAMTarget int64
	// MigRateCap bounds migration bandwidth (paper: 10 GB/s).
	MigRateCap float64
	// LargeAllocThreshold: regions at least this large are managed;
	// smaller allocations are forwarded to the kernel and stay in DRAM
	// (paper: 1 GB).
	LargeAllocThreshold int64
	// NoDMA disables the I/OAT engine, copying with CopyThreads copy
	// threads instead (the paper's Figure 7 ablation). The switches
	// below are inverted so the zero value is the paper default and a
	// partially filled Config keeps full paper behavior.
	NoDMA bool
	// CopyThreads is the software-copy thread count (paper: 4).
	CopyThreads int
	// NoWritePriority disables write-heavy page prioritization (§3.3)
	// as an ablation.
	NoWritePriority bool
	// NoCooling disables the cooling clock as an ablation.
	NoCooling bool
	// NoMigration stops the policy from moving pages (Figure 8's
	// "PEBS" bar uses it to isolate sampling overhead).
	NoMigration bool
	// BackgroundThreads is the core cost of HeMem's PEBS, policy, and
	// fault threads while the manager runs.
	BackgroundThreads float64
	// PlaceFunc, when set, overrides the default DRAM-first placement on
	// first touch while keeping tracking intact. Figure 8's "Opt" and
	// "PEBS" bars use it to place the known-hot set manually.
	PlaceFunc func(p *vm.Page) vm.Tier
	// EnableSwap adds the slowest tier the paper's §3.4 sketches: when
	// NVM fills, the policy swaps the coldest NVM pages out to the block
	// device, and swaps pages back in (to NVM) when traffic reaches them
	// again. Off by default, as in the prototype.
	EnableSwap bool
	// FreeNVMTarget is the NVM kept free when swap is enabled.
	FreeNVMTarget int64
	// AdaptiveSampling raises the PEBS sample period when the buffer
	// overruns persistently (Figure 10's tradeoff: fewer samples beat
	// silently losing the hot set to drops). Off by default so the
	// sensitivity experiments measure fixed periods.
	AdaptiveSampling bool
	// OverrunDropThreshold is the per-tick drop fraction above which a
	// policy tick counts as overrunning (default 0.10).
	OverrunDropThreshold float64
	// OverrunPatience is how many consecutive overrunning ticks trigger a
	// period raise (default 5).
	OverrunPatience int
	// MaxSamplePeriod caps adaptive raises (default 16× SamplePeriod).
	MaxSamplePeriod float64
}

// DefaultConfig returns the paper's prototype parameters.
func DefaultConfig() Config {
	return Config{
		HotReadThreshold:    8,
		HotWriteThreshold:   4,
		CoolThreshold:       18,
		PolicyInterval:      10 * sim.Millisecond,
		SamplePeriod:        5000,
		PEBSBufferCap:       1 << 16,
		ReaderRate:          pebs.DefaultReaderRate,
		FreeDRAMTarget:      1 * sim.GB,
		MigRateCap:          sim.GBps(10),
		LargeAllocThreshold: 1 * sim.GB,
		CopyThreads:         4,
		BackgroundThreads:   2.5,
		FreeNVMTarget:       1 * sim.GB,
	}
}

// Validate reports the first invalid parameter, or nil. Zero values are
// valid (New falls back to defaults).
func (c Config) Validate() error {
	if c.HotReadThreshold < 0 || c.HotWriteThreshold < 0 || c.CoolThreshold < 0 {
		return fmt.Errorf("core: negative hot/cool threshold")
	}
	if c.PolicyInterval < 0 {
		return fmt.Errorf("core: negative PolicyInterval %d", c.PolicyInterval)
	}
	if c.SamplePeriod < 0 || c.PEBSBufferCap < 0 || c.ReaderRate < 0 {
		return fmt.Errorf("core: negative PEBS parameter")
	}
	if c.FreeDRAMTarget < 0 || c.FreeNVMTarget < 0 {
		return fmt.Errorf("core: negative free-memory target")
	}
	if c.MigRateCap < 0 {
		return fmt.Errorf("core: negative MigRateCap %v", c.MigRateCap)
	}
	if c.LargeAllocThreshold < 0 {
		return fmt.Errorf("core: negative LargeAllocThreshold %d", c.LargeAllocThreshold)
	}
	if c.CopyThreads < 0 {
		return fmt.Errorf("core: negative CopyThreads %d", c.CopyThreads)
	}
	if c.BackgroundThreads < 0 {
		return fmt.Errorf("core: negative BackgroundThreads %v", c.BackgroundThreads)
	}
	if c.OverrunDropThreshold < 0 || c.OverrunDropThreshold > 1 {
		return fmt.Errorf("core: OverrunDropThreshold %v outside [0,1]", c.OverrunDropThreshold)
	}
	if c.OverrunPatience < 0 {
		return fmt.Errorf("core: negative OverrunPatience %d", c.OverrunPatience)
	}
	if c.MaxSamplePeriod < 0 {
		return fmt.Errorf("core: negative MaxSamplePeriod %v", c.MaxSamplePeriod)
	}
	return nil
}

// Stats aggregates engine activity for reporting and tests.
type Stats struct {
	Samples      uint64
	CoolEpochs   uint64
	Promotions   int64
	Demotions    int64
	SwapIns      int64
	SwapOuts     int64
	WPStallPages int64
	// EmergencyPromotions counts pages evacuated from NVM after an
	// uncorrectable media error (also included in Promotions).
	EmergencyPromotions int64
	// PeriodRaises counts adaptive sample-period increases.
	PeriodRaises int64
}

// HeMem is the manager: it implements machine.Manager, consumes PEBS
// samples, classifies pages into per-tier hot/cold FIFO queues, and runs
// the 10 ms migration policy.
type HeMem struct {
	cfg Config
	m   *machine.Machine

	buffer  *pebs.Buffer
	sampler *pebs.Sampler
	reader  *pebs.Reader

	// pages maps PageID to tracking state; nil entries are unmanaged
	// (small kernel allocations).
	pages []*PageInfo

	dramHot, dramCold List
	nvmHot, nvmCold   List
	diskCold          List // swapped-out pages (EnableSwap)

	clock    uint64 // global cooling clock
	dramUsed int64  // bytes placed in DRAM (committed, incl. in-flight)
	nvmUsed  int64
	// pinned, managed, and released are indexed by Region.ID (dense
	// per-address-space), replacing pointer-keyed maps on the page-in and
	// policy hot paths.
	pinned   []bool
	managed  []bool // growth-promoted regions
	released []bool
	// diskCursor is indexed by the machine's rate-set order (the same
	// index swapPolicy iterates), replacing a map keyed by *vm.PageSet.
	diskCursor []int

	// piSlabs bulk-allocates PageInfo in chunks: tracking a 512 GB
	// region means ~260k PageInfos, and allocating each individually is
	// pure GC scan load. Pointers into a slab stay valid because slabs
	// are never resized, only appended.
	piSlab []PageInfo

	// recScratch is the reusable record batch the PEBS reader drains
	// into each quantum.
	recScratch []pebs.Record

	// Adaptive-sampling state: buffer counters at the last policy tick
	// and the current run of overrunning ticks.
	lastPushed    uint64
	lastDropped   uint64
	overrunStreak int

	stats Stats
}

// New creates a HeMem manager with cfg (zero value gets defaults; call
// Config.Validate to detect invalid negative parameters beforehand).
// Unset (zero) fields fall back to DefaultConfig field-by-field, so a
// caller that sets only the knobs it cares about keeps them:
// historically HotReadThreshold == 0 silently replaced the entire config
// with the defaults, clobbering every field the caller did set. The
// ablation switches are spelled so that false is the paper default
// (NoDMA, NoWritePriority, NoCooling, NoMigration), which keeps partial
// configs on full paper behavior without a sentinel.
func New(cfg Config) *HeMem {
	def := DefaultConfig()
	if cfg.HotReadThreshold == 0 {
		cfg.HotReadThreshold = def.HotReadThreshold
	}
	if cfg.HotWriteThreshold == 0 {
		cfg.HotWriteThreshold = def.HotWriteThreshold
	}
	if cfg.CoolThreshold == 0 {
		cfg.CoolThreshold = def.CoolThreshold
	}
	if cfg.PolicyInterval == 0 {
		cfg.PolicyInterval = def.PolicyInterval
	}
	if cfg.FreeDRAMTarget == 0 {
		cfg.FreeDRAMTarget = def.FreeDRAMTarget
	}
	if cfg.MigRateCap == 0 {
		cfg.MigRateCap = def.MigRateCap
	}
	if cfg.LargeAllocThreshold == 0 {
		cfg.LargeAllocThreshold = def.LargeAllocThreshold
	}
	if cfg.CopyThreads == 0 {
		cfg.CopyThreads = def.CopyThreads
	}
	if cfg.BackgroundThreads == 0 {
		cfg.BackgroundThreads = def.BackgroundThreads
	}
	if cfg.FreeNVMTarget == 0 {
		cfg.FreeNVMTarget = def.FreeNVMTarget
	}
	if cfg.PEBSBufferCap <= 0 {
		cfg.PEBSBufferCap = def.PEBSBufferCap
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = def.SamplePeriod
	}
	if cfg.ReaderRate <= 0 {
		cfg.ReaderRate = def.ReaderRate
	}
	if cfg.MaxSamplePeriod <= 0 {
		cfg.MaxSamplePeriod = 16 * cfg.SamplePeriod
	}
	if cfg.OverrunDropThreshold <= 0 {
		cfg.OverrunDropThreshold = 0.10
	}
	if cfg.OverrunPatience <= 0 {
		cfg.OverrunPatience = 5
	}
	h := &HeMem{cfg: cfg}
	h.dramHot.Name, h.dramCold.Name = "dram-hot", "dram-cold"
	h.nvmHot.Name, h.nvmCold.Name = "nvm-hot", "nvm-cold"
	h.diskCold.Name = "disk-cold"
	var err error
	if h.buffer, err = pebs.NewBuffer(cfg.PEBSBufferCap); err == nil {
		if h.sampler, err = pebs.NewSampler(cfg.SamplePeriod, h.buffer); err == nil {
			h.reader, err = pebs.NewReader(cfg.ReaderRate)
		}
	}
	if err != nil {
		// Internal invariant: the fields were normalized to positive
		// values above.
		panic("core: " + err.Error())
	}
	return h
}

// Name implements machine.Manager.
func (h *HeMem) Name() string { return "HeMem" }

// Config returns the active configuration.
func (h *HeMem) Config() Config { return h.cfg }

// Stats returns a copy of the engine counters.
func (h *HeMem) Stats() Stats { return h.stats }

// Sampler implements machine.SampleSource.
func (h *HeMem) Sampler() *pebs.Sampler { return h.sampler }

// Buffer exposes the PEBS buffer (drop statistics for Figure 10).
func (h *HeMem) Buffer() *pebs.Buffer { return h.buffer }

// Attach implements machine.Manager: wire the migrator backend and start
// the policy timer.
func (h *HeMem) Attach(m *machine.Machine) {
	h.m = m
	m.Migrator.RateCap = h.cfg.MigRateCap
	if !h.cfg.NoDMA {
		m.Migrator.SetBackend(machine.DMABackend{Engine: dma.New(dma.DefaultConfig())})
	} else {
		m.Migrator.SetBackend(machine.ThreadBackend{Copier: dma.NewThreadCopier(h.cfg.CopyThreads)})
	}
	var tick func(now int64)
	tick = func(now int64) {
		h.policy()
		m.Events.Schedule(now+h.cfg.PolicyInterval, tick)
	}
	m.Events.Schedule(m.Clock.Now()+h.cfg.PolicyInterval, tick)
}

// info returns the tracking state for page id, or nil if unmanaged.
func (h *HeMem) info(id vm.PageID) *PageInfo {
	if int(id) >= len(h.pages) {
		return nil
	}
	return h.pages[id]
}

// piSlabSize is the PageInfo arena chunk size; see HeMem.piSlab.
const piSlabSize = 4096

// track creates tracking state for a managed page. PageInfos come from
// append-only slabs so that tracking hundreds of thousands of pages costs
// hundreds of allocations, not one per page; a slab is never resized, so
// pointers into it stay valid.
func (h *HeMem) track(p *vm.Page) *PageInfo {
	for int(p.ID) >= len(h.pages) {
		h.pages = append(h.pages, nil)
	}
	if len(h.piSlab) == cap(h.piSlab) {
		h.piSlab = make([]PageInfo, 0, piSlabSize)
	}
	h.piSlab = append(h.piSlab, PageInfo{Page: p, CoolClock: h.clock})
	pi := &h.piSlab[len(h.piSlab)-1]
	h.pages[p.ID] = pi
	return pi
}

// regionFlag reads a Region.ID-indexed boolean.
func regionFlag(flags []bool, id int) bool { return id < len(flags) && flags[id] }

// setRegionFlag sets a Region.ID-indexed boolean, growing the slice.
func setRegionFlag(flags *[]bool, id int, v bool) {
	for id >= len(*flags) {
		*flags = append(*flags, false)
	}
	(*flags)[id] = v
}

// Manage begins tracking a region that was previously left to the kernel:
// the paper's growth policy ("If HeMem observes a region growing via small
// allocations, it will start to manage it once a size threshold is
// crossed", §3.3). Already-placed pages enter the cold list of their
// current tier; untouched pages will be placed on first touch.
func (h *HeMem) Manage(r *vm.Region) {
	if regionFlag(h.managed, r.ID) {
		return
	}
	setRegionFlag(&h.managed, r.ID, true)
	for _, p := range r.Pages {
		if p.Tier == vm.TierNone || h.info(p.ID) != nil {
			continue
		}
		pi := h.track(p)
		h.coldList(p.Tier).PushBack(pi)
	}
}

// Managed reports whether r is under HeMem management (either because it
// was mapped large or because growth tracking promoted it).
func (h *HeMem) Managed(r *vm.Region) bool {
	if regionFlag(h.managed, r.ID) {
		return true
	}
	if regionFlag(h.released, r.ID) {
		return false
	}
	return r.Size() >= h.cfg.LargeAllocThreshold && !regionFlag(h.pinned, r.ID)
}

// PinRegion marks a region as pinned to DRAM: its pages are always
// allocated from DRAM and never demoted. This is HeMem's per-application
// flexibility at work — the paper's priority FlexKVS instance keeps all of
// its key-value pairs in DRAM this way (§5.2.2, Table 4).
func (h *HeMem) PinRegion(r *vm.Region) {
	setRegionFlag(&h.pinned, r.ID, true)
}

// Release undoes all tracking and accounting for region r: its pages
// leave the FIFO lists, in-flight migrations are cancelled (undoing their
// enqueue-time commitments), and the committed DRAM/NVM bytes return to
// the free pools. It implements machine.Releaser, backing
// machine.Machine.Unmap — without it a long-running multi-tenant machine
// leaks committed bytes on every region teardown and eventually refuses
// DRAM placement.
func (h *HeMem) Release(r *vm.Region) {
	if regionFlag(h.released, r.ID) {
		return
	}
	setRegionFlag(&h.released, r.ID, true)
	ps := h.m.Cfg.PageSize
	for _, p := range r.Pages {
		if p.Migrating {
			if dst, ok := h.m.Migrator.Cancel(p); ok {
				// Undo the enqueue-time accounting exactly as
				// OnMigrationFailed would.
				switch {
				case dst == vm.TierDRAM && p.Tier == vm.TierNVM:
					h.dramUsed -= ps
					h.nvmUsed += ps
				case dst == vm.TierNVM && p.Tier == vm.TierDRAM:
					h.dramUsed += ps
					h.nvmUsed -= ps
				case dst == vm.TierNVM && p.Tier == vm.TierDisk:
					h.nvmUsed -= ps
				case dst == vm.TierDisk && p.Tier == vm.TierNVM:
					h.nvmUsed += ps
				}
			}
		}
		if pi := h.info(p.ID); pi != nil {
			if pi.list != nil {
				pi.list.Remove(pi)
			}
			h.pages[p.ID] = nil
		}
		switch p.Tier {
		case vm.TierDRAM:
			h.dramUsed -= ps
		case vm.TierNVM:
			h.nvmUsed -= ps
		}
	}
	setRegionFlag(&h.pinned, r.ID, false)
	setRegionFlag(&h.managed, r.ID, false)
}

// NVMUsed returns committed NVM bytes.
func (h *HeMem) NVMUsed() int64 { return h.nvmUsed }

// PageIn implements machine.Manager: the userfaultfd page-missing path.
// Pinned and small regions stay in DRAM untracked; large regions are
// managed, preferring DRAM while any is free and falling back to NVM
// otherwise (§3.3).
func (h *HeMem) PageIn(p *vm.Page) {
	ps := h.m.Cfg.PageSize
	if regionFlag(h.pinned, p.Region.ID) {
		h.dramUsed += ps
		p.SetTier(vm.TierDRAM)
		return
	}
	if p.Region.Size() < h.cfg.LargeAllocThreshold && !regionFlag(h.managed, p.Region.ID) {
		// Kernel-managed small allocation: keep in DRAM if at all
		// possible.
		if h.dramUsed+ps <= h.m.Cfg.DRAMSize {
			h.dramUsed += ps
			p.SetTier(vm.TierDRAM)
		} else {
			h.nvmUsed += ps
			p.SetTier(vm.TierNVM)
		}
		return
	}
	pi := h.track(p)
	want := vm.TierDRAM
	if h.cfg.PlaceFunc != nil {
		want = h.cfg.PlaceFunc(p)
	}
	switch {
	case want == vm.TierDRAM && h.dramUsed+ps <= h.m.Cfg.DRAMSize:
		h.dramUsed += ps
		p.SetTier(vm.TierDRAM)
		h.dramCold.PushBack(pi)
	case !h.cfg.EnableSwap || h.nvmUsed+ps <= h.m.Cfg.NVMSize:
		h.nvmUsed += ps
		p.SetTier(vm.TierNVM)
		h.nvmCold.PushBack(pi)
	default:
		p.SetTier(vm.TierDisk)
		h.diskCold.PushBack(pi)
	}
}

// OnQuantum implements machine.Manager: the PEBS thread drains the sample
// buffer at its bounded rate and classifies each record. Records are
// popped in batches into a reusable scratch slice so the per-sample path
// involves no allocation and no indirect call.
func (h *HeMem) OnQuantum(now, dt int64) {
	if h.recScratch == nil {
		h.recScratch = make([]pebs.Record, 1024)
	}
	grant := dt
	for {
		n := h.reader.DrainBatch(h.buffer, grant, h.recScratch)
		grant = 0
		for i := 0; i < n; i++ {
			h.onSample(h.recScratch[i])
		}
		if n < len(h.recScratch) {
			break
		}
	}
	h.reader.Settle(dt)
}

// ActiveThreads implements machine.Manager.
func (h *HeMem) ActiveThreads() float64 { return h.cfg.BackgroundThreads }

// onSample is the classifier (§3.1): lazy cooling, counter update,
// hot/cold list movement, write-heavy promotion, and cooling-clock
// advancement.
func (h *HeMem) onSample(rec pebs.Record) {
	pi := h.info(rec.Page)
	if pi == nil {
		return // unmanaged page
	}
	h.stats.Samples++

	if !h.cfg.NoCooling && pi.CoolClock != h.clock {
		h.cool(pi)
	}

	if rec.Kind == pebs.Store {
		pi.Writes++
	} else {
		pi.Reads++
	}

	// Advance the global cooling clock when any page accumulates the
	// cooling threshold of samples; other pages cool lazily when next
	// sampled (§3.1).
	if !h.cfg.NoCooling && pi.Reads+pi.Writes >= h.cfg.CoolThreshold {
		h.clock++
		h.stats.CoolEpochs++
		h.cool(pi)
	}

	h.classify(pi)
}

// cool halves the page's counters once per elapsed cooling epoch and
// refreshes its write-heavy status. A write-heavy page that cools below
// the write threshold gets a second chance on the plain hot list (§3.3).
func (h *HeMem) cool(pi *PageInfo) {
	epochs := h.clock - pi.CoolClock
	if epochs > 30 {
		epochs = 30
	}
	pi.Reads >>= epochs
	pi.Writes >>= epochs
	pi.CoolClock = h.clock
	if pi.WriteHeavy && pi.Writes < h.cfg.HotWriteThreshold {
		pi.WriteHeavy = false
		if h.isHot(pi) && pi.list != nil {
			// Second chance: back of the hot list for its tier.
			h.hotList(pi.Page.Tier).PushBack(pi)
		}
	}
	if !h.isHot(pi) && pi.list != nil && h.inHotList(pi) {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}

// isHot reports whether the page's counters meet a hot threshold.
func (h *HeMem) isHot(pi *PageInfo) bool {
	return pi.Reads >= h.cfg.HotReadThreshold || pi.Writes >= h.cfg.HotWriteThreshold
}

// inHotList reports whether pi currently sits on a hot list.
func (h *HeMem) inHotList(pi *PageInfo) bool {
	return pi.list == &h.dramHot || pi.list == &h.nvmHot
}

func (h *HeMem) hotList(t vm.Tier) *List {
	if t == vm.TierDRAM {
		return &h.dramHot
	}
	// Hot disk pages queue on the NVM hot list: the swap-in policy moves
	// them up before the promotion scan considers them for DRAM.
	return &h.nvmHot
}

func (h *HeMem) coldList(t vm.Tier) *List {
	switch t {
	case vm.TierDRAM:
		return &h.dramCold
	case vm.TierDisk:
		return &h.diskCold
	default:
		return &h.nvmCold
	}
}

// classify moves the page onto the right list after a counter update.
func (h *HeMem) classify(pi *PageInfo) {
	if pi.list == nil {
		return // in flight; re-listed on migration completion
	}
	writeHeavy := !h.cfg.NoWritePriority && pi.Writes >= h.cfg.HotWriteThreshold
	if writeHeavy && !pi.WriteHeavy {
		pi.WriteHeavy = true
		h.hotList(pi.Page.Tier).PushFront(pi)
		return
	}
	if h.isHot(pi) && !h.inHotList(pi) {
		if pi.WriteHeavy {
			h.hotList(pi.Page.Tier).PushFront(pi)
		} else {
			h.hotList(pi.Page.Tier).PushBack(pi)
		}
	}
}

// policy is the 10 ms migration tick (§3.3): keep the DRAM free watermark,
// then promote hot NVM pages — write-heavy first — swapping against cold
// DRAM pages when DRAM is full. If there are neither free nor cold DRAM
// pages, the hot set exceeds DRAM and migration stops.
func (h *HeMem) policy() {
	if h.cfg.AdaptiveSampling {
		h.adaptSampling()
	}
	if h.cfg.NoMigration {
		return
	}
	ps := h.m.Cfg.PageSize
	budget := int64(h.cfg.MigRateCap * float64(h.cfg.PolicyInterval))
	// Keep the queue bounded: don't outrun the migrator.
	if backlog := int64(h.m.Migrator.QueuedBytes()); backlog >= budget {
		return
	}

	// Watermark: force eviction when free DRAM dips below the target so
	// new allocations keep landing in fast memory.
	for h.dramFree() < h.cfg.FreeDRAMTarget && budget > 0 {
		victim := h.dramCold.PopFront()
		if victim == nil {
			// No cold data: evict from the back of the hot list
			// ("HeMem migrates random data to NVM", §3.3).
			victim = h.dramHot.Back()
			if victim == nil {
				break
			}
			h.dramHot.Remove(victim)
		}
		h.demote(victim)
		budget -= ps
	}

	if h.cfg.EnableSwap {
		// Swap work gets at most half the tick budget so DRAM
		// promotion is never starved by disk churn.
		half := budget / 2
		spent := half - h.swapPolicy(half)
		budget -= spent
	}

	// Promote hot NVM pages while DRAM slots exist.
	for budget > 0 {
		cand := h.nvmHot.Front()
		if cand == nil {
			break
		}
		if h.dramFree() >= h.cfg.FreeDRAMTarget+ps {
			h.nvmHot.Remove(cand)
			h.promote(cand)
			budget -= ps
			continue
		}
		victim := h.dramCold.PopFront()
		if victim == nil {
			// Hot set ≥ DRAM capacity: stop migrating (§3.3).
			break
		}
		h.nvmHot.Remove(cand)
		h.demote(victim)
		h.promote(cand)
		budget -= 2 * ps
	}
}

// adaptSampling raises the PEBS sample period when the buffer overruns
// persistently: each policy tick inspects the drop fraction of the records
// offered since the last tick, and after OverrunPatience consecutive
// overrunning ticks the period doubles, up to MaxSamplePeriod. Trading
// sample resolution for a sustainable inflow keeps the reader tracking the
// hot set instead of losing a bursty, biased slice of it to buffer
// overruns (the Figure 10 regime).
func (h *HeMem) adaptSampling() {
	pushed, dropped := h.buffer.Pushed(), h.buffer.Dropped()
	dp, dd := pushed-h.lastPushed, dropped-h.lastDropped
	h.lastPushed, h.lastDropped = pushed, dropped
	total := dp + dd
	if total == 0 {
		return
	}
	if float64(dd)/float64(total) <= h.cfg.OverrunDropThreshold {
		h.overrunStreak = 0
		return
	}
	h.overrunStreak++
	if h.overrunStreak < h.cfg.OverrunPatience {
		return
	}
	h.overrunStreak = 0
	if h.sampler.Period >= h.cfg.MaxSamplePeriod {
		return
	}
	p := h.sampler.Period * 2
	if p > h.cfg.MaxSamplePeriod {
		p = h.cfg.MaxSamplePeriod
	}
	h.sampler.Period = p
	h.stats.PeriodRaises++
	h.m.FaultCounters().SamplePeriodRaises++
}

// dramFree returns uncommitted DRAM bytes.
func (h *HeMem) dramFree() int64 { return h.m.Cfg.DRAMSize - h.dramUsed }

// nvmFree returns uncommitted NVM bytes.
func (h *HeMem) nvmFree() int64 { return h.m.Cfg.NVMSize - h.nvmUsed }

// swapPolicy runs the optional third-tier policy (§3.4): swap in any
// disk-resident pages that traffic has reached (their accesses fault
// synchronously, so getting them off disk dominates everything else), and
// keep an NVM headroom by swapping the coldest NVM pages out.
func (h *HeMem) swapPolicy(budget int64) int64 {
	ps := h.m.Cfg.PageSize
	// Swap-in: walk sets with live traffic and disk-resident pages.
	for si, set := range h.m.RateSets() {
		r := h.m.Rates(set)
		if r.ReadRate+r.WriteRate == 0 || set.Count(vm.TierDisk) == 0 {
			continue
		}
		for budget > 0 && set.Count(vm.TierDisk) > 0 {
			if h.nvmFree() < h.cfg.FreeNVMTarget+ps {
				// Exchange: push a cold NVM page out to make room.
				victim := h.nvmCold.PopFront()
				if victim == nil || !h.m.Migrator.Enqueue(victim.Page, vm.TierDisk) {
					if victim != nil {
						h.nvmCold.PushBack(victim)
					}
					break
				}
				h.nvmUsed -= ps
				h.stats.SwapOuts++
				budget -= ps
			}
			p := h.pickDisk(si, set)
			if p == nil {
				break
			}
			if h.m.Migrator.Enqueue(p, vm.TierNVM) {
				h.nvmUsed += ps
				h.stats.SwapIns++
				budget -= ps
			} else {
				break
			}
		}
	}
	// Swap-out: keep NVM headroom by evicting the coldest NVM pages.
	for h.nvmFree() < h.cfg.FreeNVMTarget && budget > 0 {
		victim := h.nvmCold.PopFront()
		if victim == nil {
			break
		}
		if h.m.Migrator.Enqueue(victim.Page, vm.TierDisk) {
			h.nvmUsed -= ps
			h.stats.SwapOuts++
			budget -= ps
		} else {
			h.nvmCold.PushBack(victim)
			break
		}
	}
	return budget
}

// pickDisk returns a non-migrating disk-resident page of set. si is the
// set's index in the machine's rate-set order, which keys the per-set
// round-robin cursor.
func (h *HeMem) pickDisk(si int, set *vm.PageSet) *vm.Page {
	n := set.Len()
	for si >= len(h.diskCursor) {
		h.diskCursor = append(h.diskCursor, 0)
	}
	cur := h.diskCursor[si]
	for i := 0; i < n; i++ {
		p := set.Page((cur + i) % n)
		if p.Tier == vm.TierDisk && !p.Migrating {
			h.diskCursor[si] = (cur + i + 1) % n
			return p
		}
	}
	return nil
}

// promote enqueues an NVM→DRAM move and commits the DRAM space.
func (h *HeMem) promote(pi *PageInfo) {
	if h.m.Migrator.Enqueue(pi.Page, vm.TierDRAM) {
		h.dramUsed += h.m.Cfg.PageSize
		h.nvmUsed -= h.m.Cfg.PageSize
		h.stats.Promotions++
	} else {
		h.hotList(pi.Page.Tier).PushBack(pi)
	}
}

// demote enqueues a DRAM→NVM move and releases the DRAM space.
func (h *HeMem) demote(pi *PageInfo) {
	if h.m.Migrator.Enqueue(pi.Page, vm.TierNVM) {
		h.dramUsed -= h.m.Cfg.PageSize
		h.nvmUsed += h.m.Cfg.PageSize
		h.stats.Demotions++
	} else {
		h.coldList(pi.Page.Tier).PushBack(pi)
	}
}

// OnMigrated implements machine.MigrationObserver: place the landed page
// on the list matching its (possibly cooled) state.
func (h *HeMem) OnMigrated(p *vm.Page) {
	pi := h.info(p.ID)
	if pi == nil {
		return
	}
	if h.isHot(pi) {
		if pi.WriteHeavy {
			h.hotList(p.Tier).PushFront(pi)
		} else {
			h.hotList(p.Tier).PushBack(pi)
		}
	} else {
		h.coldList(p.Tier).PushBack(pi)
	}
}

// OnMigrationFailed implements machine.MigrationFailureObserver: a
// migration abandoned after exhausting its retries leaves the page in its
// source tier, so the space committed at enqueue time is returned and the
// page goes back on the list matching its current state.
func (h *HeMem) OnMigrationFailed(p *vm.Page, dst vm.Tier) {
	ps := h.m.Cfg.PageSize
	switch {
	case dst == vm.TierDRAM && p.Tier == vm.TierNVM:
		// Failed promotion.
		h.dramUsed -= ps
		h.nvmUsed += ps
	case dst == vm.TierNVM && p.Tier == vm.TierDRAM:
		// Failed demotion.
		h.dramUsed += ps
		h.nvmUsed -= ps
	case dst == vm.TierNVM && p.Tier == vm.TierDisk:
		// Failed swap-in.
		h.nvmUsed -= ps
	case dst == vm.TierDisk && p.Tier == vm.TierNVM:
		// Failed swap-out.
		h.nvmUsed += ps
	}
	pi := h.info(p.ID)
	if pi == nil {
		return
	}
	if h.isHot(pi) {
		h.hotList(p.Tier).PushBack(pi)
	} else {
		h.coldList(p.Tier).PushBack(pi)
	}
}

// OnNVMUncorrectable implements machine.FaultHandler: a page whose NVM
// frame took an uncorrectable error is evacuated immediately via an urgent
// promotion that jumps the migration queue and cannot be aborted. If DRAM
// cannot be committed the page stays on its freshly remapped NVM frame.
func (h *HeMem) OnNVMUncorrectable(p *vm.Page) {
	pi := h.info(p.ID)
	if pi == nil || p.Tier != vm.TierNVM || p.Migrating {
		return
	}
	if pi.list != nil {
		pi.list.Remove(pi)
	}
	if h.m.Migrator.EnqueueUrgent(p, vm.TierDRAM) {
		ps := h.m.Cfg.PageSize
		h.dramUsed += ps
		h.nvmUsed -= ps
		h.stats.Promotions++
		h.stats.EmergencyPromotions++
		h.m.FaultCounters().EmergencyPromotions++
		return
	}
	if h.isHot(pi) {
		h.hotList(p.Tier).PushBack(pi)
	} else {
		h.coldList(p.Tier).PushBack(pi)
	}
}

// HotBytes returns the bytes currently on the hot list of tier t.
func (h *HeMem) HotBytes(t vm.Tier) int64 {
	return int64(h.hotList(t).Len()) * h.m.Cfg.PageSize
}

// ColdBytes returns the bytes currently on the cold list of tier t.
func (h *HeMem) ColdBytes(t vm.Tier) int64 {
	return int64(h.coldList(t).Len()) * h.m.Cfg.PageSize
}

// DRAMUsed returns committed DRAM bytes.
func (h *HeMem) DRAMUsed() int64 { return h.dramUsed }

func (h *HeMem) String() string {
	return fmt.Sprintf("hemem{dram hot=%d cold=%d, nvm hot=%d cold=%d, clock=%d}",
		h.dramHot.Len(), h.dramCold.Len(), h.nvmHot.Len(), h.nvmCold.Len(), h.clock)
}
