// DAMON-style adaptive region tracker: instead of sampling individual
// accesses (PEBS) or scanning every page-table entry (idlepage), it
// partitions each mapped region into a bounded number of contiguous
// sampling regions, probes ONE random page per region per sampling
// interval, and adaptively splits and merges regions so their boundaries
// converge on areas of uniform access frequency — kernel DAMON's design,
// and the granularity-adaptive management HM-Keeper argues for. Tracking
// cost is O(regions) per interval regardless of working-set size; the
// price is spatial resolution, bounded by the region cap.
package core

import (
	"math"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

const (
	// damonSampleInterval is the probe cadence; damonAggInterval closes
	// an aggregation window (kernel defaults: 5 ms / 100 ms).
	damonSampleInterval = 5 * sim.Millisecond
	damonAggInterval    = 100 * sim.Millisecond
	// damonMaxRegions bounds the total region count; damonMinPages is
	// the smallest region a split may produce.
	damonMaxRegions = 256
	damonMinPages   = 4
	// damonMergeThreshold: adjacent regions whose per-window access
	// counts differ by at most this merge back together.
	damonMergeThreshold = 2
	// damonTouchPages caps how many pages of a region receive the
	// region's aggregated observation per window (round-robin), bounding
	// per-window policy work on huge regions.
	damonTouchPages = 128
)

func init() {
	RegisterTracker("damon", func(cfg Config) Tracker { return &damonTracker{} })
}

// damonRegion is one contiguous sampling region within a vm.Region.
type damonRegion struct {
	reg        *vm.Region
	start, end int // page-index range [start, end) within reg.Pages
	accesses   int // sampling intervals whose probe saw an access
	writes     int // sampling intervals whose probe saw a write
	cursor     int // round-robin observation-emission cursor
}

type damonTracker struct {
	h   *HeMem
	rng *sim.Rand

	regions []damonRegion
	// known/dead are Region.ID-indexed: regions already under tracking,
	// and regions released since the last Poll (their sampling regions
	// are dropped lazily, because PageOut arrives once per page).
	known   []bool
	dead    []bool
	hasDead bool

	// snaps holds per-set access-integral snapshots at the last sampling
	// interval; deltas the per-interval difference (reused).
	snaps  map[*vm.PageSet][2]float64
	deltas map[*vm.PageSet][2]float64

	nextSample int64
	nextAgg    int64
	passes     int // sampling intervals in the current window
}

// Name implements Tracker.
func (t *damonTracker) Name() string { return "damon" }

// Attach implements Tracker.
func (t *damonTracker) Attach(h *HeMem) {
	t.h = h
	t.rng = sim.NewRand(h.m.Cfg.Seed ^ 0x64616d6f)
	t.snaps = make(map[*vm.PageSet][2]float64)
	t.deltas = make(map[*vm.PageSet][2]float64)
	now := h.m.Clock.Now()
	t.nextSample = now + damonSampleInterval
	t.nextAgg = now + damonAggInterval
}

// PageIn implements Tracker: the first tracked page of a vm.Region
// creates one sampling region spanning the whole mapping; splitting
// refines it from there. Pages that have not faulted in yet probe as
// untouched until they do.
func (t *damonTracker) PageIn(pi *PageInfo) {
	reg := pi.Page.Region
	if regionFlag(t.known, reg.ID) {
		return
	}
	setRegionFlag(&t.known, reg.ID, true)
	t.regions = append(t.regions, damonRegion{reg: reg, start: 0, end: reg.NumPages()})
}

// PageOut implements Tracker: mark the region dead; its sampling regions
// are filtered on the next Poll.
func (t *damonTracker) PageOut(pi *PageInfo) {
	setRegionFlag(&t.dead, pi.Page.Region.ID, true)
	t.hasDead = true
}

// Poll implements Tracker: run due sampling intervals and close due
// aggregation windows.
func (t *damonTracker) Poll(now, dt int64) {
	if t.hasDead {
		t.dropDead()
	}
	if now >= t.nextSample {
		t.samplePass()
		t.nextSample = now + damonSampleInterval
	}
	if now >= t.nextAgg {
		t.aggregate()
		t.nextAgg = now + damonAggInterval
	}
}

// Tick implements Tracker: DAMON has no per-policy-tick housekeeping.
func (t *damonTracker) Tick(now int64) {}

// dropDead removes sampling regions of released vm.Regions.
func (t *damonTracker) dropDead() {
	out := t.regions[:0]
	for _, r := range t.regions {
		if regionFlag(t.dead, r.reg.ID) {
			continue
		}
		out = append(out, r)
	}
	t.regions = out
	for id := range t.dead {
		if t.dead[id] {
			t.dead[id] = false
			if id < len(t.known) {
				t.known[id] = false
			}
		}
	}
	t.hasDead = false
}

// samplePass probes one random page per region. The probability that the
// probe observes the page as accessed comes from the machine's
// access-bit statistics: the expected per-page accesses of every set the
// page belongs to since the last interval, Poisson-thinned to
// P = 1 - e^-λ, exactly the model the page-table scanners use.
func (t *damonTracker) samplePass() {
	h := t.h
	for _, set := range h.m.RateSets() {
		r := h.m.Rates(set)
		snap := t.snaps[set]
		t.deltas[set] = [2]float64{r.ReadIntegral - snap[0], r.WriteIntegral - snap[1]}
		t.snaps[set] = [2]float64{r.ReadIntegral, r.WriteIntegral}
	}
	t.passes++
	for i := range t.regions {
		r := &t.regions[i]
		span := r.end - r.start
		if span <= 0 {
			continue
		}
		p := r.reg.Peek(r.start + t.rng.Intn(span))
		if p == nil || h.info(p.ID) == nil {
			continue // not faulted in yet: reads as untouched
		}
		var lr, lw float64
		p.EachSet(func(s *vm.PageSet) {
			d := t.deltas[s]
			lr += d[0]
			lw += d[1]
		})
		if t.rng.Bernoulli(1 - math.Exp(-(lr + lw))) {
			r.accesses++
		}
		if lw > 0 && t.rng.Bernoulli(1-math.Exp(-lw)) {
			r.writes++
		}
	}
}

// aggregate closes a window: convert each region's access counts into
// per-page observations for the policy, then merge similar neighbours
// and split coarse regions so the next window samples at better
// granularity (DAMON's adaptation loop).
func (t *damonTracker) aggregate() {
	h := t.h
	passes := t.passes
	if passes == 0 {
		passes = 1
	}
	for i := range t.regions {
		r := &t.regions[i]
		span := r.end - r.start
		if span <= 0 {
			continue
		}
		// Scale the observed access fraction onto the policy's hot
		// thresholds: a region accessed every interval delivers a
		// threshold's worth of accesses to each touched page, a
		// half-accessed region half that, an idle region a pure aging
		// touch.
		af := float64(r.accesses) / float64(passes)
		wf := float64(r.writes) / float64(passes)
		n := int(af*float64(h.cfg.HotReadThreshold) + 0.5)
		wn := int(wf*float64(h.cfg.HotWriteThreshold) + 0.5)
		touch := span
		if touch > damonTouchPages {
			touch = damonTouchPages
		}
		for k := 0; k < touch; k++ {
			p := r.reg.Peek(r.start + (r.cursor+k)%span)
			if p == nil {
				continue
			}
			pi := h.info(p.ID)
			if pi == nil {
				continue
			}
			if n > 0 {
				h.pol.Observe(pi, false, n)
			}
			if wn > 0 {
				h.pol.Observe(pi, true, wn)
			}
			if n == 0 && wn == 0 {
				h.pol.Observe(pi, false, 0)
			}
		}
		r.cursor = (r.cursor + touch) % span
	}
	t.mergeRegions()
	t.splitRegions()
	for i := range t.regions {
		t.regions[i].accesses, t.regions[i].writes = 0, 0
	}
	t.passes = 0
}

// mergeRegions joins adjacent regions of the same mapping whose access
// counts differ by at most the merge threshold.
func (t *damonTracker) mergeRegions() {
	out := t.regions[:0]
	for _, r := range t.regions {
		if len(out) > 0 {
			last := &out[len(out)-1]
			d := last.accesses - r.accesses
			if d < 0 {
				d = -d
			}
			if last.reg == r.reg && last.end == r.start && d <= damonMergeThreshold {
				last.end = r.end
				continue
			}
		}
		out = append(out, r)
	}
	t.regions = out
}

// splitRegions splits each region in two at a random offset while the
// region budget allows, so the next window can tell the halves apart.
func (t *damonTracker) splitRegions() {
	total := len(t.regions)
	out := make([]damonRegion, 0, 2*total)
	for _, r := range t.regions {
		span := r.end - r.start
		if total >= damonMaxRegions || span < 2*damonMinPages {
			out = append(out, r)
			continue
		}
		mid := r.start + damonMinPages + t.rng.Intn(span-2*damonMinPages+1)
		left := r
		left.end = mid
		left.cursor = 0
		out = append(out, left, damonRegion{reg: r.reg, start: mid, end: r.end})
		total++
	}
	t.regions = out
}
