package tpcc

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// DriverConfig parameterizes the simulated Silo/TPC-C workload of §5.2.1:
// 16 worker threads over a warehouse-scaled database whose access pattern
// is "random with little read and write reuse".
type DriverConfig struct {
	// Threads is the worker count (paper: 16).
	Threads int
	// Warehouses scales the database; 864 warehouses is the largest
	// count whose data fits the 192 GB DRAM.
	Warehouses int
	// WarehouseBytes is the in-memory footprint per warehouse, including
	// order growth headroom (192 GB / 864 ≈ 222 MB).
	WarehouseBytes int64
	// ComputePerTx is the CPU time per transaction outside memory stalls
	// (validation, logging, key packing; Silo-class engines run TPC-C in
	// a few µs of pure compute).
	ComputePerTx int64
	// RowsRead/RowsWritten and RowBytes shape per-transaction traffic
	// (NewOrder reads ~23 rows and writes ~13; Payment 3/4; weighted mix
	// ≈ 18 reads, 9 writes; index walks add dependent hops).
	RowsRead    int
	RowsWritten int
	RowBytes    int64
	// IndexDepth is the number of dependent pointer hops per row access.
	IndexDepth int
	// Seed scatters the hot rows.
	Seed uint64
}

func (c DriverConfig) withDefaults() DriverConfig {
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.WarehouseBytes == 0 {
		c.WarehouseBytes = 222 * sim.MB
	}
	if c.ComputePerTx == 0 {
		c.ComputePerTx = 4 * sim.Microsecond
	}
	if c.RowsRead == 0 {
		c.RowsRead = 18
	}
	if c.RowsWritten == 0 {
		c.RowsWritten = 9
	}
	if c.RowBytes == 0 {
		c.RowBytes = 192
	}
	if c.IndexDepth == 0 {
		c.IndexDepth = 3
	}
	return c
}

// Driver is the simulated TPC-C workload instance.
type Driver struct {
	cfg DriverConfig

	dbRegion  *vm.Region
	hotSet    *vm.PageSet // warehouse/district rows: touched every tx
	bulkSet   *vm.PageSet
	insertSet *vm.PageSet // order/orderline append area

	comps   []machine.Component
	txs     float64
	lastNow int64
	obsTxs  float64
	obsTime int64
}

// NewDriver maps the database on m and registers the workload.
func NewDriver(m *machine.Machine, cfg DriverConfig) *Driver {
	cfg = cfg.withDefaults()
	d := &Driver{cfg: cfg}
	total := int64(cfg.Warehouses) * cfg.WarehouseBytes
	d.dbRegion = m.AS.Map("tpcc-db", total)

	pages := d.dbRegion.AllPages()
	// Warehouse and district rows are ~0.5% of bytes but are touched by
	// every transaction — the small always-hot core.
	nHot := len(pages) / 200
	if nHot < 1 {
		nHot = 1
	}
	// Orders and order lines are appended, not revisited: give the
	// insert stream its own tail slice (~10%).
	nInsert := len(pages) / 10
	if nInsert < 1 {
		nInsert = 1
	}
	rng := sim.NewRand(cfg.Seed + 0x7bcc)
	perm := rng.Perm(len(pages))
	hot := make([]*vm.Page, 0, nHot)
	ins := make([]*vm.Page, 0, nInsert)
	bulk := make([]*vm.Page, 0, len(pages)-nHot-nInsert)
	for i, idx := range perm {
		switch {
		case i < nHot:
			hot = append(hot, pages[idx])
		case i < nHot+nInsert:
			ins = append(ins, pages[idx])
		default:
			bulk = append(bulk, pages[idx])
		}
	}
	d.hotSet = vm.NewPageSet("tpcc-hot", hot)
	d.insertSet = vm.NewPageSet("tpcc-insert", ins)
	d.bulkSet = vm.NewPageSet("tpcc-bulk", bulk)

	rb, wb := d.cfg.RowBytes, d.cfg.RowBytes
	d.comps = []machine.Component{
		// Warehouse/district header reads+updates, every transaction.
		{Set: d.hotSet, Share: 2, ReadBytes: rb, WriteBytes: wb,
			Pattern: mem.Random, Deps: cfg.IndexDepth},
		// Bulk row reads (customers, stock, items): random, little reuse.
		{Set: d.bulkSet, Share: float64(cfg.RowsRead), ReadBytes: rb,
			Pattern: mem.Random, Deps: cfg.IndexDepth},
		// Bulk row updates (stock, customer balances).
		{Set: d.bulkSet, Share: float64(cfg.RowsWritten), WriteBytes: wb,
			Pattern: mem.Random},
		// Order/order-line inserts: appends into fresh rows.
		{Set: d.insertSet, Share: 1, WriteBytes: 600, Pattern: mem.Sequential},
	}
	m.AddWorkload(d)
	return d
}

// Name implements machine.Workload.
func (d *Driver) Name() string { return "tpcc" }

// Threads implements machine.Workload.
func (d *Driver) Threads() int { return d.cfg.Threads }

// Components implements machine.Workload.
func (d *Driver) Components() []machine.Component { return d.comps }

// ComputePerOp implements machine.Computes.
func (d *Driver) ComputePerOp() float64 { return float64(d.cfg.ComputePerTx) }

// OnOps implements machine.Workload.
func (d *Driver) OnOps(now int64, ops float64, opTime float64) {
	d.txs += ops
	d.lastNow = now
}

// Done implements machine.Workload (open-ended server workload).
func (d *Driver) Done() bool { return false }

// Txs returns completed transactions.
func (d *Driver) Txs() float64 { return d.txs }

// TPS returns transactions per second since the last ResetScore.
func (d *Driver) TPS() float64 {
	el := float64(d.lastNow - d.obsTime)
	if el <= 0 {
		return 0
	}
	return (d.txs - d.obsTxs) / el * 1e9
}

// ResetScore restarts the measurement window.
func (d *Driver) ResetScore() {
	d.obsTxs = d.txs
	d.obsTime = d.lastNow
}

// Region returns the database region.
func (d *Driver) Region() *vm.Region { return d.dbRegion }

// HotPages returns the warehouse/district page set.
func (d *Driver) HotPages() *vm.PageSet { return d.hotSet }

func (d *Driver) String() string {
	return fmt.Sprintf("tpcc{%d wh, %d thr}", d.cfg.Warehouses, d.cfg.Threads)
}
