package tpcc_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/memmode"
	"github.com/tieredmem/hemem/internal/nimble"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/tpcc"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

// tps runs the simulated TPC-C workload and returns steady-state tx/s.
func tps(t *testing.T, mgr machine.Manager, warehouses int) (float64, *tpcc.Driver) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(), mgr)
	d := tpcc.NewDriver(m, tpcc.DriverConfig{Warehouses: warehouses, Seed: 5})
	m.Warm()
	m.Run(120 * sim.Second)
	d.ResetScore()
	m.Run(30 * sim.Second)
	return d.TPS(), d
}

// Figure 13, small warehouse counts: everything fits in DRAM; HeMem and MM
// are close (paper: HeMem up to +13%), Nimble trails (paper: −45%), and
// placing the working set in NVM (X-Mem) is far worse (paper: 32% of
// HeMem).
func TestFig13SmallWarehouses(t *testing.T) {
	he, _ := tps(t, core.New(core.DefaultConfig()), 64)
	mm, _ := tps(t, memmode.New(), 64)
	nb, _ := tps(t, nimble.New(), 64)
	nvm, _ := tps(t, xmem.NVMOnly(), 64)

	if he < mm {
		t.Errorf("HeMem (%.0f) below MM (%.0f) at 64 warehouses", he, mm)
	}
	if he > mm*1.3 {
		t.Errorf("HeMem/MM = %.2f at 64 warehouses, want ≈1 (paper ≤1.13)", he/mm)
	}
	if nb >= he*0.85 {
		t.Errorf("Nimble (%.0f) too close to HeMem (%.0f); paper: HeMem +82%%", nb, he)
	}
	if nvm >= nb || nvm >= he/2 {
		t.Errorf("NVM placement (%.0f) should be worst by far (HeMem %.0f)", nvm, he)
	}
}

// Near DRAM capacity MM suffers conflict misses while HeMem does not.
func TestFig13NearCapacity(t *testing.T) {
	he, d := tps(t, core.New(core.DefaultConfig()), 700)
	mm, _ := tps(t, memmode.New(), 700)
	if he <= mm {
		t.Errorf("HeMem (%.0f) should beat MM (%.0f) at 700 warehouses", he, mm)
	}
	// The warehouse/district hot rows end up in DRAM.
	if f := d.HotPages().Frac(vm.TierDRAM); f < 0.7 {
		t.Errorf("hot rows DRAM fraction = %.2f", f)
	}
}

// Beyond 864 warehouses the database exceeds DRAM and every tiering system
// loses throughput; NVM-only is flat (it never used DRAM).
func TestFig13BeyondCapacity(t *testing.T) {
	heFit, _ := tps(t, core.New(core.DefaultConfig()), 864)
	heOver, _ := tps(t, core.New(core.DefaultConfig()), 1728)
	nvmFit, _ := tps(t, xmem.NVMOnly(), 864)
	nvmOver, _ := tps(t, xmem.NVMOnly(), 1728)

	if heOver >= heFit*0.8 {
		t.Errorf("HeMem did not degrade beyond DRAM: %.0f → %.0f", heFit, heOver)
	}
	if nvmOver < nvmFit*0.95 || nvmOver > nvmFit*1.05 {
		t.Errorf("NVM-only should be flat: %.0f → %.0f", nvmFit, nvmOver)
	}
	if heOver <= nvmOver {
		t.Errorf("HeMem (%.0f) should stay above NVM-only (%.0f) even beyond DRAM", heOver, nvmOver)
	}
}
