// Package tpcc implements the TPC-C benchmark (revision 5.11 mix) over the
// silo database engine, as the paper's §5.2.1 runs it: warehouses,
// districts, customers, stock and order tables, the five-transaction mix
// dominated by NewOrder and Payment, and the standard consistency
// conditions used as test oracles.
//
// Money amounts are int64 cents. Keys are packed into uint64 with fixed
// field widths.
package tpcc

import (
	"encoding/binary"
	"sync/atomic"

	"github.com/tieredmem/hemem/internal/silo"
)

// Scale constants (TPC-C clause 1.2).
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 3000
	ItemCount             = 100000
	StockPerWarehouse     = ItemCount
	InitialOrders         = 3000
)

// Key packing: [warehouse:20][district:8][entity:36].
func wdKey(w, d uint64) uint64       { return w<<44 | d<<36 }
func wdeKey(w, d, e uint64) uint64   { return w<<44 | d<<36 | e }
func wiKey(w, i uint64) uint64       { return w<<44 | i }
func olKey(w, d, o, n uint64) uint64 { return w<<44 | d<<36 | o<<8 | n }
func custKey(w, d, c uint64) uint64  { return wdeKey(w, d, c) }
func orderKey(w, d, o uint64) uint64 { return wdeKey(w, d, o) }

// Warehouse row.
type Warehouse struct {
	ID  uint64
	YTD int64
	Tax int64 // basis points
}

// District row.
type District struct {
	W, ID    uint64
	YTD      int64
	Tax      int64
	NextOID  uint64
	NextDlvO uint64 // next order to deliver
}

// Customer row.
type Customer struct {
	W, D, ID    uint64
	Balance     int64
	YTDPayment  int64
	PaymentCnt  int64
	DeliveryCnt int64
	LastOrderID uint64
	Data        [64]byte // padding representative of the 655 B row
}

// Item row.
type Item struct {
	ID    uint64
	Price int64
}

// Stock row.
type Stock struct {
	W, I      uint64
	Quantity  int64
	YTD       int64
	OrderCnt  int64
	RemoteCnt int64
}

// Order row.
type Order struct {
	W, D, ID  uint64
	C         uint64
	OLCount   uint64
	AllLocal  bool
	Delivered bool
}

// OrderLine row.
type OrderLine struct {
	W, D, O, N uint64
	Item       uint64
	SupplyW    uint64
	Quantity   int64
	Amount     int64
}

// encode helpers: fixed-width little-endian field lists.

func putU64s(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func getU64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }

func boolU(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

func (w *Warehouse) encode() []byte { return putU64s(w.ID, uint64(w.YTD), uint64(w.Tax)) }
func decodeWarehouse(b []byte) Warehouse {
	return Warehouse{ID: getU64(b, 0), YTD: int64(getU64(b, 1)), Tax: int64(getU64(b, 2))}
}

func (d *District) encode() []byte {
	return putU64s(d.W, d.ID, uint64(d.YTD), uint64(d.Tax), d.NextOID, d.NextDlvO)
}
func decodeDistrict(b []byte) District {
	return District{W: getU64(b, 0), ID: getU64(b, 1), YTD: int64(getU64(b, 2)),
		Tax: int64(getU64(b, 3)), NextOID: getU64(b, 4), NextDlvO: getU64(b, 5)}
}

func (c *Customer) encode() []byte {
	head := putU64s(c.W, c.D, c.ID, uint64(c.Balance), uint64(c.YTDPayment),
		uint64(c.PaymentCnt), uint64(c.DeliveryCnt), c.LastOrderID)
	return append(head, c.Data[:]...)
}
func decodeCustomer(b []byte) Customer {
	c := Customer{W: getU64(b, 0), D: getU64(b, 1), ID: getU64(b, 2),
		Balance: int64(getU64(b, 3)), YTDPayment: int64(getU64(b, 4)),
		PaymentCnt: int64(getU64(b, 5)), DeliveryCnt: int64(getU64(b, 6)),
		LastOrderID: getU64(b, 7)}
	copy(c.Data[:], b[64:])
	return c
}

func (i *Item) encode() []byte { return putU64s(i.ID, uint64(i.Price)) }
func decodeItem(b []byte) Item {
	return Item{ID: getU64(b, 0), Price: int64(getU64(b, 1))}
}

func (s *Stock) encode() []byte {
	return putU64s(s.W, s.I, uint64(s.Quantity), uint64(s.YTD), uint64(s.OrderCnt), uint64(s.RemoteCnt))
}
func decodeStock(b []byte) Stock {
	return Stock{W: getU64(b, 0), I: getU64(b, 1), Quantity: int64(getU64(b, 2)),
		YTD: int64(getU64(b, 3)), OrderCnt: int64(getU64(b, 4)), RemoteCnt: int64(getU64(b, 5))}
}

func (o *Order) encode() []byte {
	return putU64s(o.W, o.D, o.ID, o.C, o.OLCount, boolU(o.AllLocal), boolU(o.Delivered))
}
func decodeOrder(b []byte) Order {
	return Order{W: getU64(b, 0), D: getU64(b, 1), ID: getU64(b, 2), C: getU64(b, 3),
		OLCount: getU64(b, 4), AllLocal: getU64(b, 5) == 1, Delivered: getU64(b, 6) == 1}
}

func (l *OrderLine) encode() []byte {
	return putU64s(l.W, l.D, l.O, l.N, l.Item, l.SupplyW, uint64(l.Quantity), uint64(l.Amount))
}
func decodeOrderLine(b []byte) OrderLine {
	return OrderLine{W: getU64(b, 0), D: getU64(b, 1), O: getU64(b, 2), N: getU64(b, 3),
		Item: getU64(b, 4), SupplyW: getU64(b, 5), Quantity: int64(getU64(b, 6)), Amount: int64(getU64(b, 7))}
}

// Env binds the TPC-C tables of one database.
type Env struct {
	DB         *silo.DB
	Warehouses uint64

	warehouse *silo.Table
	district  *silo.Table
	customer  *silo.Table
	item      *silo.Table
	stock     *silo.Table
	order     *silo.Table
	orderLine *silo.Table
	newOrder  *silo.Table
	history   *silo.Table

	histSeq atomic.Uint64
}

// NewEnv creates and populates a TPC-C database with the given number of
// warehouses (clause 4.3 population, deterministically seeded).
func NewEnv(db *silo.DB, warehouses uint64) *Env {
	e := &Env{
		DB: db, Warehouses: warehouses,
		warehouse: db.Table("warehouse"),
		district:  db.Table("district"),
		customer:  db.Table("customer"),
		item:      db.Table("item"),
		stock:     db.Table("stock"),
		order:     db.Table("order"),
		orderLine: db.Table("orderline"),
		newOrder:  db.Table("neworder"),
		history:   db.Table("history"),
	}
	e.load()
	return e
}

// load populates items, warehouses, districts, customers, and stock. Order
// history starts empty (the paper measures steady-state NewOrder/Payment
// throughput; initial orders only shift key ranges). Writes are batched
// into large transactions for loading speed.
func (e *Env) load() {
	b := newBatcher(e.DB)
	for i := uint64(1); i <= ItemCount; i++ {
		it := Item{ID: i, Price: int64(100 + (i*37)%9900)}
		b.put(e.item, i, it.encode())
	}
	for w := uint64(1); w <= e.Warehouses; w++ {
		wh := Warehouse{ID: w, Tax: int64((w * 13) % 2000)}
		b.put(e.warehouse, w, wh.encode())
		for i := uint64(1); i <= StockPerWarehouse; i++ {
			st := Stock{W: w, I: i, Quantity: 50 + int64((i*w)%50)}
			b.put(e.stock, wiKey(w, i), st.encode())
		}
		for d := uint64(1); d <= DistrictsPerWarehouse; d++ {
			dist := District{W: w, ID: d, Tax: int64((d * 17) % 2000), NextOID: 1, NextDlvO: 1}
			b.put(e.district, wdKey(w, d), dist.encode())
			for c := uint64(1); c <= CustomersPerDistrict; c++ {
				cust := Customer{W: w, D: d, ID: c, Balance: -1000}
				b.put(e.customer, custKey(w, d, c), cust.encode())
			}
		}
	}
	b.flush()
}

// batcher groups loader writes into large transactions.
type batcher struct {
	db *silo.DB
	tx *silo.Tx
	n  int
}

func newBatcher(db *silo.DB) *batcher { return &batcher{db: db, tx: db.Begin()} }

func (b *batcher) put(t *silo.Table, key uint64, val []byte) {
	b.tx.Write(t, key, val)
	b.n++
	if b.n >= 10000 {
		b.flush()
	}
}

func (b *batcher) flush() {
	if b.n == 0 {
		return
	}
	if err := b.tx.Commit(); err != nil {
		panic("tpcc: load failed: " + err.Error())
	}
	b.tx = b.db.Begin()
	b.n = 0
}
