package tpcc

import (
	"errors"
	"sync"
	"testing"

	"github.com/tieredmem/hemem/internal/silo"
)

func newEnv(t *testing.T, warehouses uint64) *Env {
	t.Helper()
	return NewEnv(silo.NewDB(), warehouses)
}

// readDistrict fetches a district row outside any workload transaction.
func (e *Env) readDistrict(t *testing.T, w, d uint64) District {
	t.Helper()
	var out District
	err := e.DB.Run(func(tx *silo.Tx) error {
		b, err := tx.Read(e.district, wdKey(w, d))
		if err != nil {
			return err
		}
		out = decodeDistrict(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkConsistency verifies the TPC-C consistency conditions the spec
// defines (clause 3.3.2): W_YTD = Σ D_YTD; for each district,
// D_NEXT_O_ID − 1 equals the maximum order id; every order has exactly
// O_OL_CNT order lines.
func checkConsistency(t *testing.T, e *Env) {
	t.Helper()
	err := e.DB.Run(func(tx *silo.Tx) error {
		for w := uint64(1); w <= e.Warehouses; w++ {
			wb, err := tx.Read(e.warehouse, w)
			if err != nil {
				return err
			}
			wh := decodeWarehouse(wb)
			var sum int64
			for d := uint64(1); d <= DistrictsPerWarehouse; d++ {
				db, err := tx.Read(e.district, wdKey(w, d))
				if err != nil {
					return err
				}
				dist := decodeDistrict(db)
				sum += dist.YTD

				// Orders 1..NextOID-1 exist with matching lines;
				// NextOID itself does not.
				for o := uint64(1); o < dist.NextOID; o++ {
					ob, err := tx.Read(e.order, orderKey(w, d, o))
					if err != nil {
						t.Errorf("w%v d%v: order %d missing", w, d, o)
						continue
					}
					ord := decodeOrder(ob)
					for n := uint64(1); n <= ord.OLCount; n++ {
						if _, err := tx.Read(e.orderLine, olKey(w, d, o, n)); err != nil {
							t.Errorf("w%v d%v o%v: line %d missing", w, d, o, n)
						}
					}
					if _, err := tx.Read(e.orderLine, olKey(w, d, o, ord.OLCount+1)); err == nil {
						t.Errorf("w%v d%v o%v: surplus order line", w, d, o)
					}
				}
				if _, err := tx.Read(e.order, orderKey(w, d, dist.NextOID)); err == nil {
					t.Errorf("w%v d%v: order at NextOID already exists", w, d)
				}
				// Undelivered orders are exactly those in [NextDlvO, NextOID).
				for o := uint64(1); o < dist.NextDlvO; o++ {
					if _, err := tx.Read(e.newOrder, orderKey(w, d, o)); err == nil {
						t.Errorf("w%v d%v: delivered order %d still in neworder", w, d, o)
					}
				}
				for o := dist.NextDlvO; o < dist.NextOID; o++ {
					if _, err := tx.Read(e.newOrder, orderKey(w, d, o)); err != nil {
						t.Errorf("w%v d%v: undelivered order %d missing from neworder", w, d, o)
					}
				}
			}
			if wh.YTD != sum {
				t.Errorf("w%v: W_YTD %d != Σ D_YTD %d", w, wh.YTD, sum)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderBasics(t *testing.T) {
	e := newEnv(t, 1)
	g := NewRand(1)
	before := e.readDistrict(t, 1, 1)
	for i := 0; i < 50; i++ {
		if err := e.NewOrder(g, 1); err != nil && !errors.Is(err, ErrInvalidItem) {
			t.Fatal(err)
		}
	}
	// Some district's NextOID advanced.
	var advanced bool
	for d := uint64(1); d <= DistrictsPerWarehouse; d++ {
		if e.readDistrict(t, 1, d).NextOID > 1 {
			advanced = true
		}
	}
	if !advanced {
		t.Fatal("no orders created")
	}
	_ = before
	checkConsistency(t, e)
}

func TestPaymentUpdatesYTD(t *testing.T) {
	e := newEnv(t, 1)
	g := NewRand(2)
	for i := 0; i < 100; i++ {
		if err := e.Payment(g, 1); err != nil {
			t.Fatal(err)
		}
	}
	checkConsistency(t, e)
	// Warehouse YTD grew.
	err := e.DB.Run(func(tx *silo.Tx) error {
		wb, _ := tx.Read(e.warehouse, uint64(1))
		if decodeWarehouse(wb).YTD <= 0 {
			t.Error("warehouse YTD did not grow")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFullMixConsistency(t *testing.T) {
	e := newEnv(t, 2)
	g := NewRand(3)
	counts := map[TxKind]int{}
	for i := 0; i < 2000; i++ {
		w := g.uniform(1, 2)
		k, err := e.RunMix(g, w)
		if err != nil {
			t.Fatalf("tx %d kind %v: %v", i, k, err)
		}
		counts[k]++
	}
	// The mix is roughly 45/43/4/4/4.
	if counts[TxNewOrder] < 700 || counts[TxPayment] < 700 {
		t.Errorf("mix off: %v", counts)
	}
	for _, k := range []TxKind{TxOrderStatus, TxDelivery, TxStockLevel} {
		if counts[k] == 0 {
			t.Errorf("kind %v never ran", k)
		}
	}
	checkConsistency(t, e)
}

// Concurrent workers preserve the consistency conditions (OCC validation).
func TestConcurrentMixConsistency(t *testing.T) {
	e := newEnv(t, 2)
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := NewRand(uint64(100 + id))
			for i := 0; i < 300; i++ {
				w := g.uniform(1, 2)
				if _, err := e.RunMix(g, w); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(worker)
	}
	wg.Wait()
	checkConsistency(t, e)
}

func TestNewOrderRollbackLeavesNoTrace(t *testing.T) {
	e := newEnv(t, 1)
	// Directly exercise the invalid-item path many times; consistency
	// must hold (no partial writes).
	g := NewRand(7)
	rollbacks := 0
	for i := 0; i < 500; i++ {
		if err := e.NewOrder(g, 1); errors.Is(err, ErrInvalidItem) {
			rollbacks++
		}
	}
	if rollbacks == 0 {
		t.Error("1% rollback path never exercised in 500 orders")
	}
	checkConsistency(t, e)
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	e := newEnv(t, 1)
	g := NewRand(9)
	for i := 0; i < 30; i++ {
		if err := e.NewOrder(g, 1); err != nil && !errors.Is(err, ErrInvalidItem) {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := e.Delivery(g, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Everything delivered.
	for d := uint64(1); d <= DistrictsPerWarehouse; d++ {
		dist := e.readDistrict(t, 1, d)
		if dist.NextDlvO != dist.NextOID {
			t.Errorf("district %d: undelivered orders remain (%d < %d)", d, dist.NextDlvO, dist.NextOID)
		}
	}
	checkConsistency(t, e)
}

func TestStockLevelRuns(t *testing.T) {
	e := newEnv(t, 1)
	g := NewRand(11)
	for i := 0; i < 20; i++ {
		if err := e.NewOrder(g, 1); err != nil && !errors.Is(err, ErrInvalidItem) {
			t.Fatal(err)
		}
	}
	if _, err := e.StockLevel(g, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNURandRanges(t *testing.T) {
	g := NewRand(13)
	for i := 0; i < 10000; i++ {
		if c := g.CustomerID(); c < 1 || c > CustomersPerDistrict {
			t.Fatalf("CustomerID out of range: %d", c)
		}
		if it := g.ItemID(); it < 1 || it > ItemCount {
			t.Fatalf("ItemID out of range: %d", it)
		}
	}
}
