package tpcc

import (
	"errors"

	"github.com/tieredmem/hemem/internal/silo"
	"github.com/tieredmem/hemem/internal/sim"
)

// Rand is the TPC-C input generator (clause 2.1.6), seeded per worker.
type Rand struct {
	r *sim.Rand
	c uint64 // NURand constant
}

// NewRand returns a generator.
func NewRand(seed uint64) *Rand {
	return &Rand{r: sim.NewRand(seed), c: 123}
}

// uniform returns a value in [lo, hi].
func (g *Rand) uniform(lo, hi uint64) uint64 {
	return lo + g.r.Uint64()%(hi-lo+1)
}

// nuRand is the non-uniform random function NURand(A, x, y).
func (g *Rand) nuRand(a, x, y uint64) uint64 {
	return ((g.uniform(0, a)|g.uniform(x, y))+g.c)%(y-x+1) + x
}

// CustomerID draws a customer id (NURand(1023, 1, 3000)).
func (g *Rand) CustomerID() uint64 { return g.nuRand(1023, 1, CustomersPerDistrict) }

// ItemID draws an item id (NURand(8191, 1, 100000)).
func (g *Rand) ItemID() uint64 { return g.nuRand(8191, 1, ItemCount) }

// TxKind enumerates the TPC-C mix.
type TxKind int

// The standard mix (clause 5.2.3 minimums).
const (
	TxNewOrder TxKind = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
)

// NextKind draws a transaction type with the standard 45/43/4/4/4 mix.
func (g *Rand) NextKind() TxKind {
	switch v := g.uniform(1, 100); {
	case v <= 45:
		return TxNewOrder
	case v <= 88:
		return TxPayment
	case v <= 92:
		return TxOrderStatus
	case v <= 96:
		return TxDelivery
	default:
		return TxStockLevel
	}
}

// ErrInvalidItem is the intentional 1% NewOrder rollback (clause 2.4.1.4's
// unused item number).
var ErrInvalidItem = errors.New("tpcc: invalid item, rollback")

// NewOrder runs the new-order transaction for home warehouse w.
func (e *Env) NewOrder(g *Rand, w uint64) error {
	d := g.uniform(1, DistrictsPerWarehouse)
	c := g.CustomerID()
	nItems := g.uniform(5, 15)
	type line struct {
		item, supply uint64
		qty          int64
	}
	lines := make([]line, nItems)
	for i := range lines {
		supply := w
		if e.Warehouses > 1 && g.uniform(1, 100) == 1 {
			for supply == w {
				supply = g.uniform(1, e.Warehouses)
			}
		}
		lines[i] = line{item: g.ItemID(), supply: supply, qty: int64(g.uniform(1, 10))}
	}
	// Clause 2.4.1.5: 1% of NewOrders use an unused item number and roll
	// back intentionally.
	if g.uniform(1, 100) == 1 {
		lines[len(lines)-1].item = ItemCount + 1
	}

	return e.DB.Run(func(tx *silo.Tx) error {
		wb, err := tx.Read(e.warehouse, w)
		if err != nil {
			return err
		}
		wh := decodeWarehouse(wb)

		db, err := tx.Read(e.district, wdKey(w, d))
		if err != nil {
			return err
		}
		dist := decodeDistrict(db)
		oid := dist.NextOID
		dist.NextOID++
		tx.Write(e.district, wdKey(w, d), dist.encode())

		cb, err := tx.Read(e.customer, custKey(w, d, c))
		if err != nil {
			return err
		}
		cust := decodeCustomer(cb)
		cust.LastOrderID = oid
		tx.Write(e.customer, custKey(w, d, c), cust.encode())

		allLocal := true
		var total int64
		for i, ln := range lines {
			ib, err := tx.Read(e.item, ln.item)
			if err != nil {
				return ErrInvalidItem
			}
			item := decodeItem(ib)

			sb, err := tx.Read(e.stock, wiKey(ln.supply, ln.item))
			if err != nil {
				return err
			}
			st := decodeStock(sb)
			if st.Quantity >= ln.qty+10 {
				st.Quantity -= ln.qty
			} else {
				st.Quantity += 91 - ln.qty
			}
			st.YTD += ln.qty
			st.OrderCnt++
			if ln.supply != w {
				st.RemoteCnt++
				allLocal = false
			}
			tx.Write(e.stock, wiKey(ln.supply, ln.item), st.encode())

			amount := ln.qty * item.Price
			total += amount
			ol := OrderLine{W: w, D: d, O: oid, N: uint64(i + 1),
				Item: ln.item, SupplyW: ln.supply, Quantity: ln.qty, Amount: amount}
			tx.Write(e.orderLine, olKey(w, d, oid, uint64(i+1)), ol.encode())
		}
		total = total * (10000 + wh.Tax + dist.Tax) / 10000

		ord := Order{W: w, D: d, ID: oid, C: c, OLCount: nItems, AllLocal: allLocal}
		tx.Write(e.order, orderKey(w, d, oid), ord.encode())
		tx.Write(e.newOrder, orderKey(w, d, oid), putU64s(oid))
		return nil
	})
}

// Payment runs the payment transaction for home warehouse w. 15% of
// payments are for a customer of a remote warehouse.
func (e *Env) Payment(g *Rand, w uint64) error {
	d := g.uniform(1, DistrictsPerWarehouse)
	cw, cd := w, d
	if e.Warehouses > 1 && g.uniform(1, 100) <= 15 {
		for cw == w {
			cw = g.uniform(1, e.Warehouses)
		}
		cd = g.uniform(1, DistrictsPerWarehouse)
	}
	c := g.CustomerID()
	amount := int64(g.uniform(100, 500000))

	return e.DB.Run(func(tx *silo.Tx) error {
		wb, err := tx.Read(e.warehouse, w)
		if err != nil {
			return err
		}
		wh := decodeWarehouse(wb)
		wh.YTD += amount
		tx.Write(e.warehouse, w, wh.encode())

		db, err := tx.Read(e.district, wdKey(w, d))
		if err != nil {
			return err
		}
		dist := decodeDistrict(db)
		dist.YTD += amount
		tx.Write(e.district, wdKey(w, d), dist.encode())

		cb, err := tx.Read(e.customer, custKey(cw, cd, c))
		if err != nil {
			return err
		}
		cust := decodeCustomer(cb)
		cust.Balance -= amount
		cust.YTDPayment += amount
		cust.PaymentCnt++
		tx.Write(e.customer, custKey(cw, cd, c), cust.encode())

		tx.Write(e.history, e.histSeq.Add(1), putU64s(w, d, cw, cd, c, uint64(amount)))
		return nil
	})
}

// OrderStatus reads a customer's most recent order and its lines.
func (e *Env) OrderStatus(g *Rand, w uint64) error {
	d := g.uniform(1, DistrictsPerWarehouse)
	c := g.CustomerID()
	return e.DB.Run(func(tx *silo.Tx) error {
		cb, err := tx.Read(e.customer, custKey(w, d, c))
		if err != nil {
			return err
		}
		cust := decodeCustomer(cb)
		if cust.LastOrderID == 0 {
			return nil // no orders yet
		}
		ob, err := tx.Read(e.order, orderKey(w, d, cust.LastOrderID))
		if err != nil {
			return nil // order may belong to a different district draw
		}
		ord := decodeOrder(ob)
		for n := uint64(1); n <= ord.OLCount; n++ {
			if _, err := tx.Read(e.orderLine, olKey(w, d, ord.ID, n)); err != nil {
				return err
			}
		}
		return nil
	})
}

// Delivery delivers the oldest undelivered order of each district,
// crediting the customer with the order total.
func (e *Env) Delivery(g *Rand, w uint64) error {
	for d := uint64(1); d <= DistrictsPerWarehouse; d++ {
		err := e.DB.Run(func(tx *silo.Tx) error {
			db, err := tx.Read(e.district, wdKey(w, d))
			if err != nil {
				return err
			}
			dist := decodeDistrict(db)
			if dist.NextDlvO >= dist.NextOID {
				return nil // nothing to deliver
			}
			oid := dist.NextDlvO
			if _, err := tx.Read(e.newOrder, orderKey(w, d, oid)); err != nil {
				return err
			}
			tx.Delete(e.newOrder, orderKey(w, d, oid))
			dist.NextDlvO++
			tx.Write(e.district, wdKey(w, d), dist.encode())

			ob, err := tx.Read(e.order, orderKey(w, d, oid))
			if err != nil {
				return err
			}
			ord := decodeOrder(ob)
			ord.Delivered = true
			tx.Write(e.order, orderKey(w, d, oid), ord.encode())

			var total int64
			for n := uint64(1); n <= ord.OLCount; n++ {
				lb, err := tx.Read(e.orderLine, olKey(w, d, oid, n))
				if err != nil {
					return err
				}
				total += decodeOrderLine(lb).Amount
			}
			cb, err := tx.Read(e.customer, custKey(w, d, ord.C))
			if err != nil {
				return err
			}
			cust := decodeCustomer(cb)
			cust.Balance += total
			cust.DeliveryCnt++
			tx.Write(e.customer, custKey(w, d, ord.C), cust.encode())
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// StockLevel counts recently ordered items with stock below a threshold.
func (e *Env) StockLevel(g *Rand, w uint64) (int, error) {
	d := g.uniform(1, DistrictsPerWarehouse)
	threshold := int64(g.uniform(10, 20))
	low := 0
	err := e.DB.Run(func(tx *silo.Tx) error {
		low = 0
		db, err := tx.Read(e.district, wdKey(w, d))
		if err != nil {
			return err
		}
		dist := decodeDistrict(db)
		start := uint64(1)
		if dist.NextOID > 20 {
			start = dist.NextOID - 20
		}
		seen := map[uint64]bool{}
		for o := start; o < dist.NextOID; o++ {
			ob, err := tx.Read(e.order, orderKey(w, d, o))
			if err != nil {
				continue
			}
			ord := decodeOrder(ob)
			for n := uint64(1); n <= ord.OLCount; n++ {
				lb, err := tx.Read(e.orderLine, olKey(w, d, o, n))
				if err != nil {
					continue
				}
				ol := decodeOrderLine(lb)
				if seen[ol.Item] {
					continue
				}
				seen[ol.Item] = true
				sb, err := tx.Read(e.stock, wiKey(w, ol.Item))
				if err != nil {
					continue
				}
				if decodeStock(sb).Quantity < threshold {
					low++
				}
			}
		}
		return nil
	})
	return low, err
}

// RunMix executes one transaction of the standard mix against home
// warehouse w, returning its kind. The 1% intentional NewOrder rollback is
// treated as a completed (aborted) transaction per the spec.
func (e *Env) RunMix(g *Rand, w uint64) (TxKind, error) {
	k := g.NextKind()
	var err error
	switch k {
	case TxNewOrder:
		if err = e.NewOrder(g, w); errors.Is(err, ErrInvalidItem) {
			err = nil
		}
	case TxPayment:
		err = e.Payment(g, w)
	case TxOrderStatus:
		err = e.OrderStatus(g, w)
	case TxDelivery:
		err = e.Delivery(g, w)
	case TxStockLevel:
		_, err = e.StockLevel(g, w)
	}
	return k, err
}
