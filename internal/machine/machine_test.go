package machine_test

import (
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

// runUniform runs uniform GUPS for a simulated duration on the given
// manager and returns the score in GUPS.
func runUniform(t *testing.T, mgr machine.Manager, ws int64, threads int, dur int64) float64 {
	t.Helper()
	m := machine.New(machine.DefaultConfig(), mgr)
	g := gups.New(m, gups.Config{Threads: threads, WorkingSet: ws})
	m.Warm()
	m.Run(dur)
	return g.Score()
}

// A 16 GB uniform working set: DRAM is roughly an order of magnitude
// faster than NVM for 8-byte random RMW (media granularity + write
// bandwidth), per §5.1's GUPS-in-NVM observations.
func TestDRAMvsNVMUniformGUPS(t *testing.T) {
	dram := runUniform(t, xmem.DRAMFirst(), 16*sim.GB, 16, 2*sim.Second)
	nvm := runUniform(t, xmem.NVMOnly(), 16*sim.GB, 16, 2*sim.Second)
	if dram <= 0 || nvm <= 0 {
		t.Fatalf("scores must be positive: dram=%v nvm=%v", dram, nvm)
	}
	ratio := dram / nvm
	if ratio < 5 || ratio > 20 {
		t.Errorf("DRAM/NVM GUPS ratio = %.1f, want ~10", ratio)
	}
	// Absolute sanity: 16 threads at ~165 ns/op ≈ 0.1 GUPS.
	if dram < 0.06 || dram > 0.15 {
		t.Errorf("DRAM GUPS = %.3f, want ~0.1", dram)
	}
}

// GUPS throughput grows with thread count until cores or bandwidth bind.
func TestThreadScaling(t *testing.T) {
	g4 := runUniform(t, xmem.DRAMFirst(), 16*sim.GB, 4, sim.Second)
	g16 := runUniform(t, xmem.DRAMFirst(), 16*sim.GB, 16, sim.Second)
	if g16 < g4*3 {
		t.Errorf("16 threads (%.3f) should be ~4× 4 threads (%.3f)", g16, g4)
	}
	// Beyond the 24-core socket, throughput stops growing.
	g24 := runUniform(t, xmem.DRAMFirst(), 16*sim.GB, 24, sim.Second)
	g48 := runUniform(t, xmem.DRAMFirst(), 16*sim.GB, 48, sim.Second)
	if g48 > g24*1.05 {
		t.Errorf("48 threads (%.3f) should not beat 24 (%.3f) on 24 cores", g48, g24)
	}
}

// NVM is write-bandwidth bound for RMW updates: wear counters should show
// media-granularity amplification (256 B per 8 B write).
func TestNVMWearAmplification(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 16 * sim.GB})
	m.Warm()
	m.NVM.ResetWear()
	m.Run(sim.Second)
	w := m.NVM.Wear()
	perOp := w.WriteBytes / g.Updates()
	if perOp < 250 || perOp > 260 {
		t.Errorf("NVM media bytes per 8B update = %.0f, want 256", perOp)
	}
}

// X-Mem places the large GUPS region in NVM even though DRAM is free.
func TestXMemPlacesLargeRegionsInNVM(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.XMem(xmem.DefaultXMemThreshold))
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 16 * sim.GB})
	small := m.AS.Map("small", 64*sim.MB)
	m.Warm()
	if got := g.Region().Frac(vm.TierNVM); got != 1 {
		t.Errorf("large region NVM frac = %v, want 1", got)
	}
	if got := small.Frac(vm.TierDRAM); got != 1 {
		t.Errorf("small region DRAM frac = %v, want 1", got)
	}
}

// DRAMFirst falls back to NVM when DRAM capacity is exhausted.
func TestDRAMCapacityEnforced(t *testing.T) {
	cfg := machine.DefaultConfig()
	m := machine.New(cfg, xmem.DRAMFirst())
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 256 * sim.GB})
	m.Warm()
	dramBytes := g.Region().Bytes(vm.TierDRAM)
	if dramBytes > cfg.DRAMSize {
		t.Fatalf("placed %d bytes in %d-byte DRAM", dramBytes, cfg.DRAMSize)
	}
	if g.Region().Frac(vm.TierNVM) < 0.2 {
		t.Fatal("overflow did not spill to NVM")
	}
}

// Opt keeps the designated hot set in DRAM; with 90% of traffic there,
// it beats NVM-only placement severalfold.
func TestOptPlacement(t *testing.T) {
	build := func(mgrFor func(hot *vm.PageSet) machine.Manager) float64 {
		// Two-phase construction: map first with a placeholder, then
		// attach the real manager. Simpler: create machine with a
		// deferred manager choice via static NVM, then recreate.
		m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 7,
		})
		_ = g
		return 0
	}
	_ = build

	// Direct construction: Opt needs the hot set, which needs the
	// machine; use a fresh machine and swap the manager before Warm.
	mOpt := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	gOpt := gups.New(mOpt, gups.Config{Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 7})
	opt := xmem.Opt(gOpt.HotPages())
	mOpt.Mgr = opt
	opt.Attach(mOpt)
	mOpt.Warm()
	mOpt.Run(2 * sim.Second)
	optScore := gOpt.Score()

	mNVM := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	gNVM := gups.New(mNVM, gups.Config{Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 7})
	mNVM.Warm()
	mNVM.Run(2 * sim.Second)
	nvmScore := gNVM.Score()

	if optScore < 3*nvmScore {
		t.Errorf("Opt (%.3f) should be ≫ NVM-only (%.3f)", optScore, nvmScore)
	}
	// Hot set is fully in DRAM.
	if gOpt.HotPages().Frac(vm.TierDRAM) != 1 {
		t.Error("Opt did not pin hot set in DRAM")
	}
}

// Migrator moves pages at bounded rate, updates wear and placement, and
// reports stats.
func TestMigratorBasics(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	r := m.AS.Map("data", 64*sim.MB)
	m.Warm()

	m.NVM.ResetWear()
	m.DRAM.ResetWear()
	for _, p := range r.AllPages() {
		if !m.Migrator.Enqueue(p, vm.TierDRAM) {
			t.Fatal("enqueue failed")
		}
	}
	// Re-enqueue while migrating is refused.
	if m.Migrator.Enqueue(r.PageAt(0), vm.TierDRAM) {
		t.Fatal("double enqueue accepted")
	}
	if m.Migrator.QueueLen() != 32 {
		t.Fatalf("queue len = %d, want 32", m.Migrator.QueueLen())
	}
	// 64 MB at ~6.5 GB/s needs ~10 ms.
	m.Run(20 * sim.Millisecond)
	if got := r.Frac(vm.TierDRAM); got != 1 {
		t.Fatalf("after migration, DRAM frac = %v, want 1", got)
	}
	st := m.Migrator.Stats()
	if st.Promotions != 32 || st.Pages != 32 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != float64(64*sim.MB) {
		t.Fatalf("migrated bytes = %v, want 64MB", st.Bytes)
	}
	// Wear: read from NVM, write to DRAM.
	if m.NVM.Wear().ReadBytes != float64(64*sim.MB) {
		t.Fatalf("NVM read wear = %v", m.NVM.Wear().ReadBytes)
	}
	if m.DRAM.Wear().WriteBytes != float64(64*sim.MB) {
		t.Fatalf("DRAM write wear = %v", m.DRAM.Wear().WriteBytes)
	}
}

// Migration rate cap bounds progress per quantum.
func TestMigratorRateCap(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	r := m.AS.Map("data", 2*sim.GB)
	m.Warm()
	m.Migrator.RateCap = sim.GBps(1)
	for _, p := range r.AllPages() {
		m.Migrator.Enqueue(p, vm.TierDRAM)
	}
	m.Run(1 * sim.Second)
	moved := r.Bytes(vm.TierDRAM)
	if moved < sim.GB*8/10 || moved > sim.GB*12/10 {
		t.Fatalf("moved %d bytes in 1s at 1GB/s cap", moved)
	}
}

// The dynamic hot-set shift changes which pages are hot without changing
// set sizes.
func TestGUPSShiftHotSet(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 64 * sim.GB, HotSet: 16 * sim.GB, Seed: 3})
	m.Warm()
	before := map[vm.PageID]bool{}
	for _, p := range g.HotPages().Pages() {
		before[p.ID] = true
	}
	hotLen, coldLen := g.HotPages().Len(), 0
	g.ShiftHotSet(4*sim.GB, 99)
	if g.HotPages().Len() != hotLen {
		t.Fatalf("hot set size changed: %d → %d", hotLen, g.HotPages().Len())
	}
	_ = coldLen
	changed := 0
	for _, p := range g.HotPages().Pages() {
		if !before[p.ID] {
			changed++
		}
	}
	wantChanged := int(4 * sim.GB / m.Cfg.PageSize)
	if changed < wantChanged*9/10 || changed > wantChanged {
		t.Fatalf("shifted %d pages, want ~%d", changed, wantChanged)
	}
}

// Write-skew configuration (Table 2) builds three disjoint components.
func TestGUPSWriteSkewComponents(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
		WriteOnlyHot: 128 * sim.GB, Seed: 1,
	})
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	var share float64
	for _, c := range comps {
		share += c.Share
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("total share = %v, want 1", share)
	}
	if comps[0].ReadBytes != 0 || comps[0].WriteBytes == 0 {
		t.Fatal("first component should be write-only")
	}
	if comps[1].WriteBytes != 0 || comps[2].WriteBytes != 0 {
		t.Fatal("read components should not write")
	}
	if g.WriteOnlyPages().Len() != int(128*sim.GB/m.Cfg.PageSize) {
		t.Fatalf("write-only pages = %d", g.WriteOnlyPages().Len())
	}
}

// Machine records instantaneous throughput series.
func TestThroughputSeries(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 8 * sim.GB})
	m.Warm()
	m.Run(2 * sim.Second)
	s := m.Throughput(g.Name())
	if s.Len() < 10 {
		t.Fatalf("series has %d points, want ≥10 over 2s at 100ms", s.Len())
	}
	if s.Mean() <= 0 {
		t.Fatal("series mean not positive")
	}
}

// Access-integral tracking accumulates per-page rates for scanners.
func TestRatesIntegralAccumulates(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 8 * sim.GB})
	m.Warm()
	m.Run(sim.Second)
	// All-set integral: total ops / pages.
	allSet := g.Components()[0].Set
	r := m.Rates(allSet)
	wantPerPage := g.Updates() / float64(allSet.Len())
	if r.ReadIntegral < wantPerPage*0.99 || r.ReadIntegral > wantPerPage*1.01 {
		t.Fatalf("ReadIntegral = %v, want %v", r.ReadIntegral, wantPerPage)
	}
	if r.WriteIntegral < wantPerPage*0.99 || r.WriteIntegral > wantPerPage*1.01 {
		t.Fatalf("WriteIntegral = %v, want %v", r.WriteIntegral, wantPerPage)
	}
	if r.ReadRate <= 0 {
		t.Fatal("ReadRate not positive")
	}
}

// StallAll slows application progress in the next quantum.
func TestStallSlowsApps(t *testing.T) {
	run := func(stall bool) float64 {
		m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
		g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 8 * sim.GB})
		m.Warm()
		for i := 0; i < 1000; i++ {
			if stall {
				m.StallAll(m.Cfg.Quantum / 2) // 50% stall
			}
			m.Step(m.Cfg.Quantum)
		}
		return g.Score()
	}
	free := run(false)
	stalled := run(true)
	if stalled > free*0.6 {
		t.Fatalf("50%% stall only reduced GUPS %.3f → %.3f", free, stalled)
	}
}

// PlacementCost splits by tier occupancy.
func TestPlacementCostTierSplit(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	r := m.AS.Map("data", 8*sim.MB)
	m.Warm()
	set := r.AsSet()
	c := machine.Component{Set: set, Share: 1, ReadBytes: 8, Pattern: mem.Random}
	allNVM := m.PlacementCost(c)
	// Move half to DRAM: cost drops.
	for i := 0; i < 2; i++ {
		r.PageAt(i).SetTier(vm.TierDRAM)
	}
	half := m.PlacementCost(c)
	if half.Time >= allNVM.Time {
		t.Fatalf("half-DRAM cost %v not below all-NVM %v", half.Time, allNVM.Time)
	}
	if half.Bytes[machine.DevDRAM][mem.Read] == 0 || half.Bytes[machine.DevNVM][mem.Read] == 0 {
		t.Fatal("split bytes missing a device")
	}
	// NVM side uses media granularity (256B per 8B read).
	if got := allNVM.Bytes[machine.DevNVM][mem.Read]; got != 256 {
		t.Fatalf("NVM media bytes per 8B read = %v, want 256", got)
	}
}

func TestWarmPlacesEverything(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	m.AS.Map("a", 10*sim.MB)
	m.AS.Map("b", 10*sim.MB)
	m.Warm()
	if m.Faults() != 10 {
		t.Fatalf("faults = %d, want 10", m.Faults())
	}
	for _, r := range m.AS.Regions {
		if r.Count(vm.TierNone) != 0 {
			t.Fatalf("region %s has unplaced pages", r.Name)
		}
	}
	// Warm is idempotent.
	m.Warm()
	if m.Faults() != 10 {
		t.Fatal("second Warm re-faulted pages")
	}
}

// Telemetry records device bandwidth within physical ceilings and exports
// aligned CSV.
func TestTelemetry(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	gups.New(m, gups.Config{Threads: 16, WorkingSet: 16 * sim.GB})
	m.Warm()
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	m.Run(2 * sim.Second)

	wr := tel.Series("nvm.write.gbps")
	if wr == nil || wr.Len() < 10 {
		t.Fatalf("nvm write series missing or short")
	}
	for i, v := range wr.Values {
		if v < 0 || v > 2.4 { // NVM random-write ceiling is 2.3 GB/s
			t.Fatalf("sample %d: NVM write %.2f GB/s outside physical ceiling", i, v)
		}
	}
	if tel.Series("stall.frac") == nil || tel.Series("migration.queue.pages") == nil {
		t.Fatal("expected series missing")
	}

	var buf strings.Builder
	if err := tel.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != wr.Len()+1 {
		t.Fatalf("CSV rows = %d, want %d", len(lines), wr.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "t_seconds,") || !strings.Contains(lines[0], "nvm.write.gbps") {
		t.Fatalf("CSV header malformed: %s", lines[0])
	}
	cols := strings.Count(lines[0], ",")
	for i, ln := range lines[1:] {
		if strings.Count(ln, ",") != cols {
			t.Fatalf("row %d column count mismatch", i+1)
		}
	}
}
