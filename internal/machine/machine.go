// Package machine is the simulated testbed: a single NUMA socket with 24
// cores, DRAM and NVM devices (plus an optional swap disk), and a
// deterministic, time-stepped execution engine. Workloads describe their memory behaviour as traffic components
// over page sets; tier managers (HeMem, Memory Mode, Nimble, static
// placement, PT-scan variants) translate components into device traffic and
// run background work; the machine solves a per-quantum contention model
// across devices and CPU cores and advances everything together.
//
// All times are simulated nanoseconds; nothing in the package consults the
// wall clock, so experiments are exactly reproducible.
package machine

import (
	"fmt"
	"math"

	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/pebs"
	"github.com/tieredmem/hemem/internal/shard"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Dev indexes the memory devices in tier-table order (fastest first).
// The named constants are the indices of the classic DRAM/NVM/disk
// testbed; machines built from an explicit Config.Tiers table may lay
// devices out differently — resolve indices through Machine.DevOf.
type Dev int

const (
	DevDRAM Dev = iota
	DevNVM
	DevDisk
)

// MaxDevs bounds the per-device arrays threaded through the contention
// solver (CompCost, utilization, wear snapshots). It is deliberately a
// fixed array size rather than a slice so the per-quantum solver state
// stays allocation-free and the structs embedding it stay comparable.
const MaxDevs = 6

// TierDesc is one row of the machine's tier descriptor table: a memory
// tier with its identity, capacity, and device model. The table is
// ordered fastest first and doubles as the migration graph — each tier's
// promotion neighbour is the previous row, its demotion neighbour the
// next row.
type TierDesc struct {
	// ID is the tier's identity in vm's tier table.
	ID vm.TierID
	// Capacity in bytes. Zero falls back to the legacy size field for the
	// built-in tiers (DRAMSize/NVMSize/DiskSize).
	Capacity int64
	// Spec optionally overrides the device model registered for ID in
	// the mem registry.
	Spec *mem.Spec
	// Swap marks a swap-only backing tier (§3.4): placement never puts
	// fresh pages here and the policy only moves pages in explicitly.
	// Defaults to true for TierDisk when no tier in the table is marked.
	Swap bool
	// UEVictim marks media subject to uncorrectable-error injection.
	// Defaults to true for TierNVM when no tier in the table is marked.
	UEVictim bool
}

// TierDev maps a vm.Tier to this machine's device index; pages not yet
// placed (TierNone) and tiers absent from the table are charged as the
// second-fastest tier, the conservative choice (NVM on the classic
// testbed).
func (m *Machine) TierDev(t vm.Tier) Dev {
	if int(t) > 0 && int(t) < len(m.tierDev) {
		if d := m.tierDev[t]; d >= 0 {
			return Dev(d)
		}
	}
	return m.noneDev
}

// Component describes one access stream of a workload: a page set, how
// often an operation touches it, and how many bytes it reads/writes per
// touch. Workloads must describe their traffic with components whose page
// sets are mutually disjoint (overlapping popularity is expressed by
// splitting shares), which lets both the placement cost model and the
// Memory Mode cache model treat each set as a homogeneous zone.
type Component struct {
	// Set is the pages this stream touches, uniformly at random within
	// the set (or as a stream for Sequential patterns).
	Set *vm.PageSet
	// Share is the expected number of occurrences of this stream per
	// workload operation.
	Share float64
	// ReadBytes and WriteBytes are moved per occurrence.
	ReadBytes  int64
	WriteBytes int64
	// Pattern selects the device bandwidth/latency profile.
	Pattern mem.Pattern
	// Deps is the number of dependent (serialized) latency visits per
	// occurrence; 1 for a simple load, 2+ for pointer chases such as a
	// hash bucket walk. Zero means 1.
	Deps int
	// WriteLatencySensitive charges the device write latency per
	// occurrence. Most stores are posted and hide latency; flag this for
	// synchronous read-modify-write paths.
	WriteLatencySensitive bool
}

func (c Component) deps() float64 {
	if c.Deps <= 0 {
		return 1
	}
	return float64(c.Deps)
}

// Workload is a running application generating traffic.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Threads is the number of application threads it runs.
	Threads() int
	// Components returns the current traffic description; it is called
	// once per quantum and may change over time (e.g. a hot-set shift).
	Components() []Component
	// OnOps reports that the workload completed ops operations in the
	// quantum, at an average per-op latency of opTime ns. Workloads use
	// it to track progress and record latency distributions.
	OnOps(now int64, ops float64, opTime float64)
	// Done reports whether the workload has finished its run.
	Done() bool
}

// CompCost is the contention-free cost of one occurrence of a component,
// as produced by a tier manager's cost model.
type CompCost struct {
	// Time is the per-occurrence latency + transfer time in ns at zero
	// contention.
	Time float64
	// Bytes is the media bytes moved per occurrence, per [device][kind];
	// it drives wear accounting and device demand. Only the first
	// NumDevs entries are meaningful on a given machine.
	Bytes [MaxDevs][2]float64
	// Util is the device-seconds consumed per occurrence per
	// [device][kind], i.e. Bytes normalized by the pattern-appropriate
	// bandwidth ceiling. The solver sums Util×rate into device
	// utilization and throttles workloads through saturated devices.
	Util [MaxDevs][2]float64
}

// Manager is a tiered-memory management system under test.
type Manager interface {
	// Name identifies the manager in reports.
	Name() string
	// Attach wires the manager to the machine before the run starts.
	Attach(m *Machine)
	// PageIn places a freshly touched page (the userfaultfd
	// page-missing path): the manager must call p.SetTier.
	PageIn(p *vm.Page)
	// OnQuantum runs the manager's background work for one quantum.
	OnQuantum(now, dt int64)
	// ActiveThreads reports how many CPU cores the manager's background
	// threads consumed this quantum (may be fractional).
	ActiveThreads() float64
}

// wstate is the per-quantum solver state for one running workload; the
// machine keeps a reusable slice of these so Step allocates nothing.
type wstate struct {
	w     Workload
	meta  *workloadMeta
	comps []Component
	costs []CompCost
	rate  float64 // ops/ns
	time  float64 // per-op ns (at achieved rate)
}

// workloadMeta is the per-workload bookkeeping (throughput series,
// cumulative ops) resolved once at AddWorkload, so the per-quantum commit
// path updates it through a pointer instead of a string-map lookup per
// workload per quantum.
type workloadMeta struct {
	w        Workload
	series   *sim.Series
	totalOps float64
	// hinter caches the PhaseHinter type assertion so the adaptive
	// horizon scan does not re-assert per step; nil when w gives no
	// phase hints.
	hinter PhaseHinter
	// tenant is the owning tenant when the workload was registered via
	// AddWorkloadFor; its per-op latencies feed that tenant's SLO
	// histogram. TenantNone for ordinary workloads.
	tenant vm.TenantID
}

// Releaser is implemented by managers that support region teardown:
// Release must drop all tracking state for the region and return its
// committed memory to the free pools. Machine.Unmap calls it before
// removing the region from the address space.
type Releaser interface {
	Release(r *vm.Region)
}

// CostModeler is implemented by managers that price traffic themselves
// (Memory Mode's DRAM cache). Managers that don't implement it get the
// default placement-based model.
type CostModeler interface {
	ComponentCost(c Component) CompCost
}

// SampleSource is implemented by managers that consume PEBS samples; the
// machine feeds their sampler from the traffic streams each quantum.
type SampleSource interface {
	Sampler() *pebs.Sampler
}

// MigrationObserver is implemented by managers that want a callback when a
// migration they enqueued completes.
type MigrationObserver interface {
	OnMigrated(p *vm.Page)
}

// Computes is implemented by workloads whose operations include CPU work
// beyond memory traffic (request parsing, network stack, transaction
// logic). ComputePerOp returns that service time in ns; it adds to the
// per-op cost alongside the memory components.
type Computes interface {
	ComputePerOp() float64
}

// RateLimited is implemented by workloads driven at a fixed offered load
// (e.g., FlexKVS latency runs at 30% load, Table 3): the machine caps the
// achieved rate at TargetRate (ops/ns; 0 means unlimited).
type RateLimited interface {
	TargetRate() float64
}

// CostBranch is one outcome of an access with its probability, used to
// build per-operation latency distributions (the FlexKVS percentile
// experiments, Tables 3–4).
type CostBranch struct {
	Prob float64
	Time float64 // ns
}

// Brancher is implemented by managers whose cost model has non-placement
// branches (Memory Mode's cache hit/miss). Placement managers get the
// default per-tier split.
type Brancher interface {
	ComponentBranches(c Component) []CostBranch
}

// TrafficObserver is implemented by managers that model traffic globally
// (Memory Mode's cache needs every stream's line rates to compute
// steady-state occupancy). The machine calls it once per quantum with each
// active component and its achieved occurrence rate in occurrences/ns.
type TrafficObserver interface {
	ObserveTraffic(now int64, comps []Component, occRates []float64)
}

// Config holds the testbed parameters (defaults mirror the paper's
// evaluation platform, §5).
type Config struct {
	Cores    int
	DRAMSize int64
	NVMSize  int64
	// DiskSize backs the optional swap tier (§3.4).
	DiskSize int64
	PageSize int64
	Quantum  int64
	Seed     uint64
	// Faults configures deterministic fault injection. The zero value
	// disables it entirely; see internal/fault.
	Faults fault.Config
	// Audit enables the runtime invariant auditor: every quantum the
	// machine verifies conservation invariants (occupancy counters vs
	// page state, manager used[] vs resident bytes, migration-queue
	// consistency) and panics with a diagnostic dump on the first
	// violation. A pure observer — it draws no randomness and changes no
	// behavior, so audited runs are bit-identical to unaudited ones.
	Audit bool
	// AdaptiveQuantum switches Run/RunUntilDone to event-driven stepping:
	// while the machine is quiescent (no traffic occurrences possible, no
	// queued migrations, no stall residue, no fault injection, no offline
	// tier), a step stretches from the fixed quantum to the next
	// interesting instant — the earliest due event (policy ticks, chaos
	// episodes), throughput-sample or telemetry instant, or hinted
	// traffic-phase boundary — accumulating ops analytically over the
	// span. Off by default: the fixed cadence is pinned by the golden
	// outputs. Direct Step calls are unaffected.
	AdaptiveQuantum bool
	// Tiers optionally declares the memory hierarchy explicitly, fastest
	// first (e.g. DRAM, CXL, NVM, disk). Nil means the classic
	// DRAM/NVM/disk testbed built from the size fields above. When set,
	// the legacy size fields are synchronized from the table so code
	// reading Cfg.DRAMSize etc. stays coherent.
	Tiers []TierDesc
	// Shards sizes the machine's intra-step worker pool (ShardPool):
	// managers with shardable per-quantum work (Memory Mode's per-zone
	// Monte-Carlo) fan it out across this many workers. 0 or 1 (the
	// default) keeps the historical serial path bit for bit; any value
	// >= 2 selects the sharded path, whose results are identical for
	// every worker count >= 2 (work items own SplitStable sub-streams and
	// reductions run in fixed item order — see internal/shard).
	Shards int
}

// Validate reports the first invalid parameter, or nil. Zero values are
// valid (they fall back to defaults in New).
func (c Config) Validate() error {
	if c.Cores < 0 {
		return fmt.Errorf("machine: negative core count %d", c.Cores)
	}
	if c.DRAMSize < 0 || c.NVMSize < 0 || c.DiskSize < 0 {
		return fmt.Errorf("machine: negative device size")
	}
	if c.PageSize < 0 {
		return fmt.Errorf("machine: negative page size %d", c.PageSize)
	}
	if c.Quantum < 0 {
		return fmt.Errorf("machine: negative quantum %d", c.Quantum)
	}
	if c.Shards < 0 {
		return fmt.Errorf("machine: negative shard count %d", c.Shards)
	}
	seen := map[vm.TierID]bool{}
	for _, td := range c.Tiers {
		if td.ID == vm.TierNone {
			return fmt.Errorf("machine: TierNone cannot appear in the tier table")
		}
		if seen[td.ID] {
			return fmt.Errorf("machine: duplicate tier %v in table", td.ID)
		}
		seen[td.ID] = true
		if td.Capacity < 0 {
			return fmt.Errorf("machine: tier %v has negative capacity", td.ID)
		}
		if td.Spec == nil {
			if _, ok := mem.ModelFor(td.ID); !ok {
				return fmt.Errorf("machine: tier %v has no registered device model and no explicit spec", td.ID)
			}
		}
	}
	if len(c.Tiers) > MaxDevs {
		return fmt.Errorf("machine: %d tiers exceed MaxDevs (%d)", len(c.Tiers), MaxDevs)
	}
	return c.Faults.Validate()
}

// withDefaults fills unset fields. A config with Cores == 0 is treated as
// fully default (the historical Config{} shorthand, including Seed 1);
// otherwise zero-value sizes fall back field-by-field and Seed is kept
// as given — 0 is a legitimate seed.
func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		def := DefaultConfig()
		def.Faults = c.Faults
		def.Tiers = c.Tiers
		def.Audit = c.Audit
		def.AdaptiveQuantum = c.AdaptiveQuantum
		def.Shards = c.Shards
		if c.Quantum != 0 {
			def.Quantum = c.Quantum
		}
		return def.resolveTiers()
	}
	def := DefaultConfig()
	if c.DRAMSize == 0 {
		c.DRAMSize = def.DRAMSize
	}
	if c.NVMSize == 0 {
		c.NVMSize = def.NVMSize
	}
	if c.DiskSize == 0 {
		c.DiskSize = def.DiskSize
	}
	if c.PageSize == 0 {
		c.PageSize = def.PageSize
	}
	if c.Quantum == 0 {
		c.Quantum = def.Quantum
	}
	return c.resolveTiers()
}

// resolveTiers normalizes the tier table: a nil table becomes the
// classic DRAM/NVM/disk chain, zero capacities of built-in tiers fall
// back to the legacy size fields, the Swap and UEVictim defaults are
// applied, and the legacy size fields are synchronized from the table.
func (c Config) resolveTiers() Config {
	if c.Tiers == nil {
		c.Tiers = []TierDesc{
			{ID: vm.TierDRAM, Capacity: c.DRAMSize},
			{ID: vm.TierNVM, Capacity: c.NVMSize, UEVictim: true},
			{ID: vm.TierDisk, Capacity: c.DiskSize, Swap: true},
		}
		return c
	}
	tiers := make([]TierDesc, len(c.Tiers))
	copy(tiers, c.Tiers)
	c.Tiers = tiers
	anySwap, anyUE := false, false
	for i := range tiers {
		td := &tiers[i]
		if td.Capacity == 0 {
			switch td.ID {
			case vm.TierDRAM:
				td.Capacity = c.DRAMSize
			case vm.TierNVM:
				td.Capacity = c.NVMSize
			case vm.TierDisk:
				td.Capacity = c.DiskSize
			}
		}
		anySwap = anySwap || td.Swap
		anyUE = anyUE || td.UEVictim
	}
	for i := range tiers {
		td := &tiers[i]
		if !anySwap && td.ID == vm.TierDisk {
			td.Swap = true
		}
		if !anyUE && td.ID == vm.TierNVM {
			td.UEVictim = true
		}
		// Keep the legacy size fields coherent with the table.
		switch td.ID {
		case vm.TierDRAM:
			c.DRAMSize = td.Capacity
		case vm.TierNVM:
			c.NVMSize = td.Capacity
		case vm.TierDisk:
			c.DiskSize = td.Capacity
		}
	}
	return c
}

// DefaultConfig is one socket of the paper's dual-socket Cascade Lake
// testbed: 24 cores, 192 GB DRAM, 768 GB Optane, 2 MB pages.
func DefaultConfig() Config {
	return Config{
		Cores:    24,
		DRAMSize: 192 * sim.GB,
		NVMSize:  768 * sim.GB,
		DiskSize: 4 * sim.TB,
		PageSize: 2 * sim.MB,
		Quantum:  sim.Millisecond,
		Seed:     1,
	}
}

// SetRates tracks the cumulative access integral of one page set, used by
// scanning-based managers to evaluate accessed/dirty bit probabilities
// lazily (per-page expected touches since a scanner's last pass).
type SetRates struct {
	// ReadIntegral and WriteIntegral are cumulative expected accesses
	// *per page* of the set since the start of the run.
	ReadIntegral  float64
	WriteIntegral float64
	// ReadRate and WriteRate are the current per-page access rates in
	// accesses/ns, from the last quantum.
	ReadRate  float64
	WriteRate float64
}

// Machine is the simulated host.
type Machine struct {
	Cfg    Config
	Clock  *sim.Clock
	Events *sim.EventQueue
	Rng    *sim.Rand

	// DRAM, NVM, and Disk are the classic testbed's devices, kept as
	// named fields for two-tier code; they are nil when the tier table
	// omits the corresponding tier. devs holds every device in table
	// order.
	DRAM *mem.Device
	NVM  *mem.Device
	Disk *mem.Device
	AS   *vm.AddressSpace

	devs []*mem.Device
	// seqBW is the tier table's hoisted sequential-bandwidth column:
	// per-device peak media bandwidth for [read, write] sequential
	// streams, captured at construction. Migration seeding divides by it
	// every quantum; only the throttle derate varies at runtime (see
	// seqBandwidth).
	seqBW [MaxDevs][2]float64
	// tierDev maps a TierID to its device index; -1 when absent.
	tierDev [vm.MaxTiers]int8
	// noneDev is the device unplaced pages are charged to (index 1 of
	// the chain — the conservative choice).
	noneDev Dev
	// fastest is the chain's top tier (DRAM on the classic testbed).
	fastest vm.TierID

	Mgr       Manager
	Workloads []Workload
	Migrator  *Migrator

	// Injector drives deterministic fault injection; always non-nil
	// (disabled when Config.Faults is zero).
	Injector   *fault.Injector
	faultStats FaultStats

	// Tier offline/online lifecycle (chaos tier faults or programmatic
	// OfflineTier calls) and the replayable episode log.
	offline      [vm.MaxTiers]bool
	offlineSince [vm.MaxTiers]int64
	evacDone     [vm.MaxTiers]bool
	episodes     []fault.Episode
	// epOpen holds, per tier, 1+index into episodes of its open
	// tier-offline episode (0 = none), so OnlineTier and the evacuation
	// sweep can patch End/EvacNs in place.
	epOpen [vm.MaxTiers]int

	// Invariant auditor (Config.Audit or SetAuditAll).
	auditing  bool
	auditsRun int64

	// tenants is the multi-tenant runtime (EnableTenants); nil on
	// single-tenant machines, which therefore skip every tenant branch.
	tenants *TenantRuntime

	// pool is the intra-step worker pool (Config.Shards); serial unless
	// the config asked for sharding.
	pool *shard.Pool

	rates     map[*vm.PageSet]*SetRates
	rateOrder []*vm.PageSet

	// stall accumulates per-thread stall time (TLB shootdowns) charged
	// by managers during the current quantum.
	stall int64

	// Per-quantum solver scratch, reused across Step calls so the hot
	// loop does not allocate per quantum.
	ws            []wstate
	obsComps      []Component
	obsRates      []float64
	sampleScratch []pebs.Record

	// Metrics
	wmeta      []*workloadMeta // parallel to Workloads
	telemetry  *Telemetry
	sampleEach int64
	lastSample int64
	faults     int64
}

// injectorSeedSalt separates the injector's RNG stream from the machine's
// main stream: fault decisions never perturb workload randomness, so a
// disabled injector leaves runs bit-identical to builds without one.
const injectorSeedSalt = 0x9e3779b97f4a7c15

// New builds a machine and attaches the manager. Zero-value config fields
// fall back to defaults (a fully zero config is the paper testbed); call
// Config.Validate to detect invalid (negative) parameters beforehand.
func New(cfg Config, mgr Manager) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		Cfg:        cfg,
		Clock:      sim.NewClock(),
		Events:     sim.NewEventQueue(),
		Rng:        sim.NewRand(cfg.Seed),
		AS:         vm.NewAddressSpace(cfg.PageSize),
		Mgr:        mgr,
		rates:      make(map[*vm.PageSet]*SetRates),
		sampleEach: 100 * sim.Millisecond,
		pool:       shard.NewPool(cfg.Shards),
	}
	m.devs = make([]*mem.Device, len(cfg.Tiers))
	for i := range m.tierDev {
		m.tierDev[i] = -1
	}
	for i, td := range cfg.Tiers {
		var dev *mem.Device
		if td.Spec != nil {
			spec := *td.Spec
			if td.Capacity != 0 {
				spec.Capacity = td.Capacity
			}
			dev = mem.New(spec)
		} else {
			var err error
			dev, err = mem.NewFor(td.ID, td.Capacity)
			if err != nil {
				panic(err)
			}
		}
		m.devs[i] = dev
		if int(td.ID) < len(m.tierDev) {
			m.tierDev[td.ID] = int8(i)
		}
		switch td.ID {
		case vm.TierDRAM:
			m.DRAM = dev
		case vm.TierNVM:
			m.NVM = dev
		case vm.TierDisk:
			m.Disk = dev
		}
	}
	for i, dev := range m.devs {
		m.seqBW[i][mem.Read] = dev.Spec.Peak[mem.Read][mem.Sequential]
		m.seqBW[i][mem.Write] = dev.Spec.Peak[mem.Write][mem.Sequential]
	}
	m.noneDev = Dev(1)
	if len(m.devs) < 2 {
		m.noneDev = 0
	}
	m.fastest = cfg.Tiers[0].ID
	m.auditing = cfg.Audit || auditAll
	m.Injector = fault.New(cfg.Faults, sim.NewRand(cfg.Seed^injectorSeedSalt))
	m.Migrator = NewMigrator(m)
	mgr.Attach(m)
	return m
}

// seqBandwidth returns the sequential media-bandwidth ceiling for device
// d from the hoisted tier-table column, applying the runtime throttle
// derate exactly as Device.EffectiveBandwidth would (peak first, derate
// multiply second, so the arithmetic is bit-identical).
func (m *Machine) seqBandwidth(d Dev, kind mem.Kind) float64 {
	if int(d) >= len(m.devs) {
		return m.Device(d).EffectiveBandwidth(kind, mem.Sequential)
	}
	bw := m.seqBW[d][kind]
	if f := m.Device(d).Derate(); f != 1 {
		bw *= f
	}
	return bw
}

// Device returns the device instance for index d; out-of-range indices
// resolve to the conservative charge device (NVM on the classic testbed).
func (m *Machine) Device(d Dev) *mem.Device {
	if d >= 0 && int(d) < len(m.devs) {
		return m.devs[d]
	}
	return m.devs[m.noneDev]
}

// NumDevs returns the number of devices in the tier table.
func (m *Machine) NumDevs() int { return len(m.devs) }

// TierTable returns the machine's resolved tier descriptor table,
// fastest first. Callers must not mutate it.
func (m *Machine) TierTable() []TierDesc { return m.Cfg.Tiers }

// TierAt returns the tier ID at device index d.
func (m *Machine) TierAt(d Dev) vm.TierID { return m.Cfg.Tiers[d].ID }

// DevOf returns the device index of tier t, or false if the tier is not
// in the table.
func (m *Machine) DevOf(t vm.TierID) (Dev, bool) {
	if int(t) > 0 && int(t) < len(m.tierDev) {
		if d := m.tierDev[t]; d >= 0 {
			return Dev(d), true
		}
	}
	return 0, false
}

// DeviceFor returns the device backing tier t (the conservative charge
// device for TierNone and absent tiers).
func (m *Machine) DeviceFor(t vm.TierID) *mem.Device { return m.devs[m.TierDev(t)] }

// CapacityOf returns the capacity of tier t, or 0 if absent.
func (m *Machine) CapacityOf(t vm.TierID) int64 {
	if d, ok := m.DevOf(t); ok {
		return m.Cfg.Tiers[d].Capacity
	}
	return 0
}

// FastestTier returns the top of the migration chain.
func (m *Machine) FastestTier() vm.TierID { return m.fastest }

// FasterTier returns the promotion neighbour of tier t — the next
// faster tier in the chain — or false at the top (or if t is absent).
func (m *Machine) FasterTier(t vm.TierID) (vm.TierID, bool) {
	d, ok := m.DevOf(t)
	if !ok || d == 0 {
		return vm.TierNone, false
	}
	return m.Cfg.Tiers[d-1].ID, true
}

// SlowerTier returns the demotion neighbour of tier t — the next slower
// tier in the chain — or false at the bottom (or if t is absent).
func (m *Machine) SlowerTier(t vm.TierID) (vm.TierID, bool) {
	d, ok := m.DevOf(t)
	if !ok || int(d) >= len(m.Cfg.Tiers)-1 {
		return vm.TierNone, false
	}
	return m.Cfg.Tiers[d+1].ID, true
}

// AddWorkload registers a workload to run. The workload's metric slots
// (throughput series, ops counter) are resolved here, once, so Step never
// consults a name-keyed map.
func (m *Machine) AddWorkload(w Workload) {
	m.Workloads = append(m.Workloads, w)
	wm := &workloadMeta{w: w, series: &sim.Series{Name: w.Name()}}
	wm.hinter, _ = w.(PhaseHinter)
	m.wmeta = append(m.wmeta, wm)
}

// StallAll charges every running application thread d nanoseconds of stall
// in the current quantum (TLB shootdown IPIs).
func (m *Machine) StallAll(d int64) { m.stall += d }

// Rates returns the access-integral tracker for set s, creating it if
// needed. Scanning managers snapshot integrals at pass boundaries.
func (m *Machine) Rates(s *vm.PageSet) *SetRates {
	r, ok := m.rates[s]
	if !ok {
		r = &SetRates{}
		m.rates[s] = r
		m.rateOrder = append(m.rateOrder, s)
	}
	return r
}

// RateSets returns every page set with tracked access rates, in first-seen
// order (deterministic). Scanning managers iterate these as the "zones"
// of managed memory.
func (m *Machine) RateSets() []*vm.PageSet { return m.rateOrder }

// Warm touches every mapped page once in address order, letting the
// manager place it (the paper's warm-up round: large ranges are allocated
// at start and pre-filled from disk). It also charges the one-time
// userfaultfd fault cost to the clock.
func (m *Machine) Warm() {
	n := 0
	for _, r := range m.AS.Regions {
		for i, np := 0, r.NumPages(); i < np; i++ {
			p := r.PageAt(i)
			if p.Tier == vm.TierNone {
				m.Mgr.PageIn(p)
				n++
				if p.Tier == vm.TierNone {
					panic("machine: manager did not place page on PageIn")
				}
			}
		}
	}
	m.faults += int64(n)
	m.Clock.Advance(int64(n) * vm.FaultCost)
}

// TouchRange faults in pages [lo, hi) of region r: metadata materializes,
// the manager places any TierNone page, and the userfaultfd fault cost is
// charged as stall spread over the running threads (unlike Warm, which
// runs before the clock starts and advances it directly). Sparse
// workloads use it to fault in exactly the windows a traffic phase
// touches, keeping metadata O(touched pages). Returns the number of
// pages faulted.
func (m *Machine) TouchRange(r *vm.Region, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if n := r.NumPages(); hi > n {
		hi = n
	}
	faulted := 0
	for i := lo; i < hi; i++ {
		p := r.PageAt(i)
		if p.Tier != vm.TierNone {
			continue
		}
		m.Mgr.PageIn(p)
		if p.Tier == vm.TierNone {
			panic("machine: manager did not place page on PageIn")
		}
		faulted++
	}
	if faulted > 0 {
		m.faults += int64(faulted)
		m.StallAll(int64(faulted) * vm.FaultCost)
	}
	return faulted
}

// Faults returns the number of page-missing faults taken so far.
func (m *Machine) Faults() int64 { return m.faults }

// ShardPool returns the machine's intra-step worker pool, sized by
// Config.Shards (serial by default). Managers with shardable
// per-quantum work fan it out here under the determinism contract
// documented in internal/shard.
func (m *Machine) ShardPool() *shard.Pool { return m.pool }

// AuditsRun returns how many per-quantum invariant audits have executed
// (0 unless the auditor is enabled).
func (m *Machine) AuditsRun() int64 { return m.auditsRun }

// Unmap tears down region r (munmap): the manager releases its tracking
// and accounting (if it implements Releaser), the pages leave every page
// set they were in, and the region is removed from the address space.
// Without this path, committed DRAM/NVM bytes leak on every region
// teardown in a long-running multi-tenant machine.
func (m *Machine) Unmap(r *vm.Region) {
	if rel, ok := m.Mgr.(Releaser); ok {
		rel.Release(r)
	}
	m.AS.Unmap(r)
	if m.auditing {
		if vs := m.auditUnmap(r); len(vs) > 0 {
			panic(m.auditDump(vs))
		}
	}
}

// Throughput returns the recorded ops/s series for workload name, or nil
// if no such workload is registered.
func (m *Machine) Throughput(name string) *sim.Series {
	for _, wm := range m.wmeta {
		if wm.w.Name() == name {
			return wm.series
		}
	}
	return nil
}

// TotalOps returns cumulative operations completed by workload name.
func (m *Machine) TotalOps(name string) float64 {
	for _, wm := range m.wmeta {
		if wm.w.Name() == name {
			return wm.totalOps
		}
	}
	return 0
}

// Run advances the machine by duration.
func (m *Machine) Run(duration int64) {
	end := m.Clock.Now() + duration
	for m.Clock.Now() < end {
		if m.Cfg.AdaptiveQuantum {
			m.stepAdaptive(end)
			continue
		}
		dt := m.Cfg.Quantum
		if left := end - m.Clock.Now(); left < dt {
			dt = left
		}
		m.Step(dt)
	}
}

// RunUntilDone advances until every workload reports Done (or maxDuration
// elapses, to bound runaway experiments).
func (m *Machine) RunUntilDone(maxDuration int64) {
	end := m.Clock.Now() + maxDuration
	for m.Clock.Now() < end {
		done := true
		for _, w := range m.Workloads {
			if !w.Done() {
				done = false
				break
			}
		}
		if done {
			return
		}
		if m.Cfg.AdaptiveQuantum {
			m.stepAdaptive(end)
			continue
		}
		m.Step(m.Cfg.Quantum)
	}
}

// PhaseHinter is an optional Workload interface consumed by the adaptive
// stepper: NextPhaseChange returns the next instant the workload's traffic
// components will change (a phase boundary), ok=false when none is
// scheduled. The adaptive horizon never crosses a hinted boundary, so a
// phase-scheduled workload wakes the solver exactly when its traffic
// turns on. Workloads that change components through event-queue
// callbacks instead need no hint — due events already bound the horizon.
type PhaseHinter interface {
	NextPhaseChange(now int64) (at int64, ok bool)
}

// quiescent reports whether nothing dt-dependent is in flight: an
// adaptive step may stretch only when the migration queue is empty, no
// stall residue is draining, fault injection is off, and no tier is
// offline (the offline sweep polls evacuation per quantum).
func (m *Machine) quiescent() bool {
	if len(m.Migrator.queue) != 0 || m.stall != 0 || m.Injector.Enabled() {
		return false
	}
	for _, off := range m.offline {
		if off {
			return false
		}
	}
	return true
}

// trafficIdle reports whether no workload component can generate device
// traffic this step: every active component either has no share, no
// pages, or moves no bytes. Zero-byte components still cost op time
// (TLB walks), but produce no wear, no access integrals, no PEBS
// records, and no utilization — so the solver's outputs are constant in
// dt and the span can be integrated analytically. Components must be
// pure accessors for this pre-pass (every in-repo workload's are).
func (m *Machine) trafficIdle() bool {
	for _, w := range m.Workloads {
		if w.Done() {
			continue
		}
		for _, c := range w.Components() {
			if c.Share > 0 && c.Set != nil && c.Set.Len() > 0 && (c.ReadBytes > 0 || c.WriteBytes > 0) {
				return false
			}
		}
	}
	return true
}

// nextEventHorizon returns the earliest upcoming instant at which the
// solver's inputs may change while the machine is quiescent: the next
// due event, the next throughput-sample and telemetry instants (their
// cadences are pinned by goldens, so adaptive steps land on the exact
// same timestamps), and any workload-hinted phase boundary, all capped
// at end.
func (m *Machine) nextEventHorizon(now, end int64) int64 {
	h := end
	if at, ok := m.Events.NextDeadline(); ok && at < h {
		h = at
	}
	if t := m.lastSample + m.sampleEach; t > now && t < h {
		h = t
	}
	if m.telemetry != nil {
		if t := m.telemetry.last + m.telemetry.every; t > now && t < h {
			h = t
		}
	}
	for _, wm := range m.wmeta {
		if wm.hinter == nil || wm.w.Done() {
			continue
		}
		if at, ok := wm.hinter.NextPhaseChange(now); ok && at > now && at < h {
			h = at
		}
	}
	return h
}

// stepAdaptive advances one event-driven step: due events fire first
// (they may start migrations, deposit stalls, or flip workload phases),
// then the step runs over either the fixed quantum or — when the machine
// is quiescent and no component moves bytes — the stretch to the next
// event horizon in one analytic span.
func (m *Machine) stepAdaptive(end int64) {
	now := m.Clock.Now()
	m.Events.RunDue(now)
	dt := m.Cfg.Quantum
	if left := end - now; left < dt {
		dt = left
	}
	if m.quiescent() && !m.sampleDue(now) && m.trafficIdle() {
		if h := m.nextEventHorizon(now, end); h-now > dt {
			dt = h - now
		}
	}
	m.stepBody(now, dt)
}

// sampleDue reports whether the step starting at now will record a
// telemetry row. Telemetry samples cumulative counters — they include
// the sampling step's own ops — so that step must advance by the base
// quantum for the recorded values to reproduce the fixed schedule's bit
// for bit. The throughput series needs no such guard: it records the
// step's rate, which under quiescence (no stall, no traffic, no
// migration) is independent of dt, and the event horizon already pins
// the sample instants themselves.
func (m *Machine) sampleDue(now int64) bool {
	return m.telemetry != nil && now-m.telemetry.last >= m.telemetry.every
}

// Step advances one quantum: fire due events, compute workload rates under
// the contention model, account traffic (wear, PEBS samples, access-bit
// integrals), advance migrations, and run manager background work.
func (m *Machine) Step(dt int64) {
	now := m.Clock.Now()
	m.Events.RunDue(now)
	m.stepBody(now, dt)
}

// stepBody is the quantum body shared by the fixed and adaptive paths;
// due events have already fired.
func (m *Machine) stepBody(now, dt int64) {
	m.applyFaults(now, dt)

	// Advance migrations first so completed moves are visible to this
	// quantum's costing, and so their bandwidth use seeds utilization.
	m.Migrator.advance(now, dt)
	m.offlineSweep(now)
	migMoved := m.Migrator.planned(dt)

	m.ws = m.ws[:0]
	appThreads := 0
	for wi, w := range m.Workloads {
		if w.Done() {
			continue
		}
		// Grow in place, keeping each slot's costs slice capacity.
		if n := len(m.ws); n < cap(m.ws) {
			m.ws = m.ws[:n+1]
		} else {
			m.ws = append(m.ws, wstate{})
		}
		s := &m.ws[len(m.ws)-1]
		s.w, s.meta, s.comps, s.rate, s.time = w, m.wmeta[wi], w.Components(), 0, 0
		appThreads += w.Threads()
	}
	ws := m.ws

	// CPU share: application threads contend with manager background
	// threads and migration copy threads for cores.
	bg := m.Mgr.ActiveThreads() + m.Migrator.activeThreads()
	cpuShare := 1.0
	if total := float64(appThreads) + bg; total > float64(m.Cfg.Cores) {
		cpuShare = float64(m.Cfg.Cores) / total
	}

	// Cost each component and compute unconstrained rates.
	nd := Dev(len(m.devs))
	var util [MaxDevs][2]float64
	// Seed utilization with migration traffic (sequential streams). Only
	// the devices that exist are visited, and the sequential bandwidth
	// ceilings come from the tier table's hoisted column instead of a
	// per-quantum device-model lookup.
	for d := Dev(0); d < nd; d++ {
		mv := &migMoved[d]
		if mv.bytes == 0 {
			continue
		}
		util[mv.srcDev][mem.Read] += mv.bytes / float64(dt) / m.seqBandwidth(mv.srcDev, mem.Read)
		util[mv.dstDev][mem.Write] += mv.bytes / float64(dt) / m.seqBandwidth(mv.dstDev, mem.Write)
	}

	// Stalls charged by managers (TLB shootdowns) drain from a reservoir,
	// smoothed over ~half a second: a scan pass deposits its whole
	// shootdown cost at completion, but the IPIs really interleave with
	// the scan, so the slowdown is spread rather than delivered as a
	// brief near-total stall.
	const stallWindow = 500 * sim.Millisecond
	stallNow := m.stall * dt / stallWindow
	if stallNow < dt/100 && m.stall > 0 {
		// Drain small residues quickly instead of asymptotically.
		stallNow = m.stall
	}
	if max := dt * 95 / 100; stallNow > max {
		stallNow = max
	}
	m.stall -= stallNow
	stallFrac := float64(stallNow) / float64(dt)
	for i := range ws {
		s := &ws[i]
		if cap(s.costs) < len(s.comps) {
			s.costs = make([]CompCost, len(s.comps))
		} else {
			s.costs = s.costs[:len(s.comps)]
		}
		var opTime float64
		if comp, ok := s.w.(Computes); ok {
			opTime += comp.ComputePerOp()
		}
		for j := range s.comps {
			c := &s.comps[j]
			cc := m.costComponent(c)
			s.costs[j] = cc
			opTime += c.Share * cc.Time
		}
		if opTime <= 0 {
			opTime = 1
		}
		s.time = opTime
		s.rate = float64(s.w.Threads()) * cpuShare * (1 - stallFrac) / opTime
		if rl, ok := s.w.(RateLimited); ok {
			if target := rl.TargetRate(); target > 0 && s.rate > target {
				s.rate = target
			}
		}
		for j := range s.comps {
			for d := Dev(0); d < nd; d++ {
				for k := 0; k < 2; k++ {
					util[d][k] += s.rate * s.comps[j].Share * s.costs[j].Util[d][k]
				}
			}
		}
	}

	// Throttle each workload by its worst saturated device-kind.
	for i := range ws {
		s := &ws[i]
		factor := 1.0
		for d := Dev(0); d < nd; d++ {
			for k := 0; k < 2; k++ {
				if util[d][k] > 1 {
					// Does this workload use (d,k)?
					uses := false
					for j := range s.comps {
						if s.costs[j].Util[d][k] > 0 {
							uses = true
							break
						}
					}
					if uses && 1/util[d][k] < factor {
						factor = 1 / util[d][k]
					}
				}
			}
		}
		s.rate *= factor
		if factor > 0 {
			s.time /= factor
		}
	}

	// Commit: ops, wear, PEBS, access integrals. The sampler is resolved
	// once up front: a manager may implement SampleSource yet report no
	// sampler (a scan- or region-based tracker is active), which must
	// disable sample feeding rather than dereference nil per component.
	var sampler *pebs.Sampler
	if ss, ok := m.Mgr.(SampleSource); ok {
		sampler = ss.Sampler()
	}
	obsComps := m.obsComps[:0]
	obsRates := m.obsRates[:0]
	obs, observing := m.Mgr.(TrafficObserver)
	for i := range ws {
		s := &ws[i]
		ops := s.rate * float64(dt)
		s.meta.totalOps += ops
		s.w.OnOps(now, ops, s.time)
		if m.tenants != nil && s.meta.tenant != vm.TenantNone {
			m.tenants.recordOps(s.meta.tenant, ops, s.time)
		}
		for j := range s.comps {
			c := &s.comps[j]
			occ := ops * c.Share
			if occ <= 0 || c.Set == nil || c.Set.Len() == 0 {
				continue
			}
			if observing {
				obsComps = append(obsComps, *c)
				obsRates = append(obsRates, s.rate*c.Share)
			}
			// Wear: charge media bytes to devices.
			for d := Dev(0); d < nd; d++ {
				if b := s.costs[j].Bytes[d][mem.Read] * occ; b > 0 {
					m.Device(d).RecordBytes(mem.Read, b)
				}
				if b := s.costs[j].Bytes[d][mem.Write] * occ; b > 0 {
					m.Device(d).RecordBytes(mem.Write, b)
				}
			}
			// Access-bit integrals (per page of the set).
			r := m.Rates(c.Set)
			per := occ / float64(c.Set.Len())
			if c.ReadBytes > 0 {
				r.ReadIntegral += per
				r.ReadRate = per / float64(dt)
			}
			if c.WriteBytes > 0 {
				r.WriteIntegral += per
				r.WriteRate = per / float64(dt)
			}
			// PEBS sampling.
			if sampler != nil {
				m.feedSamples(sampler, c, occ)
			}
		}
	}

	if observing {
		obs.ObserveTraffic(now, obsComps, obsRates)
	}
	m.obsComps, m.obsRates = obsComps, obsRates
	m.Mgr.OnQuantum(now, dt)

	// Record instantaneous throughput periodically.
	if now-m.lastSample >= m.sampleEach {
		for i := range ws {
			ws[i].meta.series.Append(now, ws[i].rate*1e9)
		}
		m.lastSample = now
	}
	if m.telemetry != nil {
		m.telemetry.sample(m, now, stallFrac)
	}
	if m.auditing {
		m.auditsRun++
		if vs := m.Audit(); len(vs) > 0 {
			panic(m.auditDump(vs))
		}
	}

	m.Clock.Advance(dt)
}

// feedSamples converts a component's traffic into PEBS records: one load
// event per cache line read and one store event per cache line written,
// sampled at the manager's configured period. Records are generated in
// batches (Sampler.Take) and pushed directly, with no closure per sample;
// the RNG is consumed in exactly the order the per-sample callback API
// did, so seeded runs stay bit-identical.
func (m *Machine) feedSamples(s *pebs.Sampler, c *Component, occ float64) {
	// PEBS storm episodes multiply the sample inflow (counter
	// misconfiguration / interrupt pressure); the factor is 1 outside
	// storms and the multiply is skipped entirely then, keeping fault-free
	// arithmetic bit-identical.
	loadF := m.Injector.PEBSLoadFactor()
	buf := s.Buffer()
	pages := c.Set.Pages()
	setLen := len(pages)
	rng := m.Rng
	if m.sampleScratch == nil {
		m.sampleScratch = make([]pebs.Record, 256)
	}
	scratch := m.sampleScratch
	if c.ReadBytes > 0 {
		lines := math.Ceil(float64(c.ReadBytes) / 64)
		n := occ * lines
		if loadF != 1 {
			n *= loadF
		}
		for k := s.Take(n, pebs.ClassLoad); k > 0; {
			batch := k
			if batch > len(scratch) {
				batch = len(scratch)
			}
			for i := 0; i < batch; i++ {
				p := pages[rng.Intn(setLen)]
				// PEBS distinguishes loads served by the top of the
				// chain from everything below it (local DRAM vs far
				// memory).
				kind := pebs.LoadDRAM
				if p.Tier != m.fastest {
					kind = pebs.LoadNVM
				}
				scratch[i] = pebs.Record{Page: p.ID, Kind: kind}
			}
			buf.PushBatch(scratch[:batch])
			k -= batch
		}
	}
	if c.WriteBytes > 0 {
		lines := math.Ceil(float64(c.WriteBytes) / 64)
		n := occ * lines
		if loadF != 1 {
			n *= loadF
		}
		for k := s.Take(n, pebs.ClassStore); k > 0; {
			batch := k
			if batch > len(scratch) {
				batch = len(scratch)
			}
			for i := 0; i < batch; i++ {
				p := pages[rng.Intn(setLen)]
				scratch[i] = pebs.Record{Page: p.ID, Kind: pebs.Store}
			}
			buf.PushBatch(scratch[:batch])
			k -= batch
		}
	}
}

// costComponent prices one component occurrence, delegating to the
// manager's cost model if it has one. It takes a pointer so the per-
// component solver loop doesn't copy the Component struct per call.
func (m *Machine) costComponent(c *Component) CompCost {
	if cm, ok := m.Mgr.(CostModeler); ok {
		return cm.ComponentCost(*c)
	}
	return m.placementCost(c)
}

// TLB model constants: a Cascade Lake-class dTLB holds ~1536 entries; a
// miss costs a page-table walk of ~60 ns on average.
const (
	tlbEntries = 1536
	tlbWalkNs  = 60.0
)

// TLBWalkCost returns the expected page-walk cost per occurrence for
// random accesses over set: sets larger than the TLB reach (1536 entries ×
// page size — 3 GB with 2 MB pages) miss almost always, which is why the
// paper tracks at huge-page granularity to begin with.
func (m *Machine) TLBWalkCost(set *vm.PageSet, pattern mem.Pattern) float64 {
	if pattern != mem.Random || set == nil {
		return 0
	}
	reach := float64(tlbEntries) * float64(m.Cfg.PageSize)
	span := float64(set.Len()) * float64(m.Cfg.PageSize)
	if span <= reach {
		return 0
	}
	return tlbWalkNs * (1 - reach/span)
}

// PlacementCost is the default cost model for placement-based managers:
// the component's set is split by current tier occupancy, and each side is
// charged the device's latency and streaming time at media granularity.
func (m *Machine) PlacementCost(c Component) CompCost { return m.placementCost(&c) }

// placementCost is PlacementCost without the per-call struct copy; the
// per-quantum solver loop calls it through costComponent with a pointer
// into the workload's component slice.
func (m *Machine) placementCost(c *Component) CompCost {
	var cc CompCost
	if c.Set == nil || c.Set.Len() == 0 {
		cc.Time = 1
		return cc
	}
	nd := Dev(len(m.devs))
	var fracs [MaxDevs]float64
	for d := Dev(0); d < nd; d++ {
		fracs[d] = c.Set.Frac(m.Cfg.Tiers[d].ID)
	}
	fracs[m.noneDev] += c.Set.Frac(vm.TierNone)
	walk := m.TLBWalkCost(c.Set, c.Pattern)
	for d := Dev(0); d < nd; d++ {
		f := fracs[d]
		if f == 0 {
			continue
		}
		dev := m.Device(d)
		cc.Time += f * walk
		if c.ReadBytes > 0 {
			cc.Time += f * c.deps() * dev.AccessTime(mem.Read, c.Pattern, c.ReadBytes/int64(c.deps()))
			media := float64(dev.MediaBytes(c.ReadBytes))
			cc.Bytes[d][mem.Read] += f * media
			cc.Util[d][mem.Read] += f * media / dev.PeakFor(mem.Read, c.Pattern, c.ReadBytes)
		}
		if c.WriteBytes > 0 {
			media := float64(dev.MediaBytes(c.WriteBytes))
			// Posted writes hide latency unless flagged; transfer
			// time is charged through utilization, with a small
			// per-store cost to keep ops from being free.
			t := media / dev.StreamRate(mem.Write, c.Pattern)
			if c.WriteLatencySensitive {
				t += dev.AccessTime(mem.Write, c.Pattern, c.WriteBytes)
			}
			cc.Time += f * t
			cc.Bytes[d][mem.Write] += f * media
			cc.Util[d][mem.Write] += f * media / dev.PeakFor(mem.Write, c.Pattern, c.WriteBytes)
		}
	}
	return cc
}

// Branches returns the latency outcomes of one occurrence of c under the
// active manager: the manager's own branches if it is a Brancher,
// otherwise the placement split — the DRAM-resident fraction of the set at
// the DRAM cost and the rest at the NVM cost.
func (m *Machine) Branches(c Component) []CostBranch {
	return m.AppendBranches(nil, c)
}

// AppendBranches is Branches with a caller-supplied buffer: the outcomes
// are appended to dst and the extended slice returned, so per-op callers
// (workload OnOps hooks pricing latency distributions every quantum) can
// reuse a scratch slice instead of allocating on every call.
func (m *Machine) AppendBranches(dst []CostBranch, c Component) []CostBranch {
	if b, ok := m.Mgr.(Brancher); ok {
		return append(dst, b.ComponentBranches(c)...)
	}
	if c.Set == nil || c.Set.Len() == 0 {
		return append(dst, CostBranch{Prob: 1, Time: 1})
	}
	base := len(dst)
	for d := Dev(0); d < Dev(len(m.devs)); d++ {
		t := m.Cfg.Tiers[d].ID
		f := c.Set.Frac(t)
		if d == m.noneDev {
			f += c.Set.Frac(vm.TierNone)
		}
		if f == 0 {
			continue
		}
		dst = append(dst, CostBranch{Prob: f, Time: m.CostIn(c, t)})
	}
	if len(dst) == base {
		dst = append(dst, CostBranch{Prob: 1, Time: m.CostIn(c, m.Cfg.Tiers[m.noneDev].ID)})
	}
	return dst
}

// CostIn prices one occurrence of c assuming its pages reside in tier t.
func (m *Machine) CostIn(c Component, t vm.Tier) float64 {
	dev := m.Device(m.TierDev(t))
	time := m.TLBWalkCost(c.Set, c.Pattern)
	if c.ReadBytes > 0 {
		deps := c.deps()
		time += deps * dev.AccessTime(mem.Read, c.Pattern, c.ReadBytes/int64(deps))
	}
	if c.WriteBytes > 0 {
		time += float64(dev.MediaBytes(c.WriteBytes)) / dev.StreamRate(mem.Write, c.Pattern)
		if c.WriteLatencySensitive {
			time += dev.AccessTime(mem.Write, c.Pattern, c.WriteBytes)
		}
	}
	return time
}

// String describes the machine configuration.
func (m *Machine) String() string {
	s := fmt.Sprintf("machine{%d cores", m.Cfg.Cores)
	for _, d := range m.devs {
		s += fmt.Sprintf(", %s", d)
	}
	return s + fmt.Sprintf(", mgr=%s}", m.Mgr.Name())
}
