package machine

import (
	"github.com/tieredmem/hemem/internal/dma"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// CopyBackend moves page contents between tiers: either the I/OAT DMA
// engine (no CPU cost) or a pool of copy threads (à la Nimble).
type CopyBackend interface {
	// Throughput is sustained copy bandwidth in bytes/ns.
	Throughput() float64
	// Threads is the number of CPU cores consumed while copying.
	Threads() float64
}

// DMABackend adapts dma.Engine as a CopyBackend.
type DMABackend struct{ Engine *dma.Engine }

// Throughput returns the engine's sustained page-copy bandwidth.
func (b DMABackend) Throughput() float64 {
	return b.Engine.Throughput(4, 2, 2*sim.MB)
}

// Threads is zero: DMA offload frees the CPU entirely.
func (b DMABackend) Threads() float64 { return 0 }

// ThreadBackend adapts dma.ThreadCopier as a CopyBackend. The copy pool is
// dedicated — like Nimble's migration kthreads, the workers hold their
// cores whether or not a migration is in flight, which is why the paper
// measures a persistent throughput cost for the no-DMA configuration at
// high thread counts (Figure 7).
type ThreadBackend struct{ Copier *dma.ThreadCopier }

// Throughput returns aggregate memcpy bandwidth.
func (b ThreadBackend) Throughput() float64 { return b.Copier.Throughput() }

// Threads is the copy thread count; the pool occupies its cores
// continuously.
func (b ThreadBackend) Threads() float64 { return float64(b.Copier.Threads) }

// Dedicated marks the pool as holding cores even while idle.
func (b ThreadBackend) Dedicated() bool { return true }

// MigStats aggregates migration activity. Promotions move pages up the
// chain (toward faster tiers), demotions down it.
type MigStats struct {
	Pages      int64
	Bytes      float64
	Promotions int64
	Demotions  int64
}

// migReq is one in-flight page move. Migration is transactional: the copy
// accumulates in done, a verification step at full copy may abort (fault
// injection), and only commit flips the page's tier — rollback merely
// resets done, leaving the source page intact.
type migReq struct {
	page *vm.Page
	dst  vm.Tier
	// done is the bytes copied in the current attempt.
	done float64
	// attempts counts aborted attempts so far.
	attempts int
	// notBefore delays the next attempt until the retry backoff expires.
	notBefore int64
	// urgent marks emergency moves (page retirement after an uncorrectable
	// error); they jump the queue and are never aborted.
	urgent bool
}

// moved summarizes the bytes a quantum's migrations put on each device.
type moved struct {
	bytes  float64
	srcDev Dev
	dstDev Dev
}

// Migrator executes page migrations asynchronously against a bandwidth
// budget: the policy's rate cap (the paper sets 10 GB/s so migration never
// disturbs the application) and the copy backend's own throughput.
type Migrator struct {
	m       *Machine
	backend CopyBackend
	// RateCap bounds migration bandwidth in bytes/ns.
	RateCap float64

	queue []*migReq
	busy  bool
	// free recycles completed migReq structs; sustained migration at
	// policy-tick rates would otherwise allocate one per page move.
	free []*migReq

	lastMoved [MaxDevs]moved // per direction (index: dst device)
	stats     MigStats
	// edges counts completed page moves per (src, dst) tier pair — the
	// traversal counts of the migration graph.
	edges [vm.MaxTiers][vm.MaxTiers]int64
}

// NewMigrator returns a migrator using the DMA engine backend and the
// paper's 10 GB/s cap.
func NewMigrator(m *Machine) *Migrator {
	return &Migrator{
		m:       m,
		backend: DMABackend{Engine: dma.New(dma.DefaultConfig())},
		RateCap: sim.GBps(10),
	}
}

// SetBackend switches the copy backend (e.g., to 4 copy threads).
func (g *Migrator) SetBackend(b CopyBackend) { g.backend = b }

// Backend returns the current copy backend.
func (g *Migrator) Backend() CopyBackend { return g.backend }

// newReq takes a request from the freelist (or allocates one) and
// initializes it.
func (g *Migrator) newReq(p *vm.Page, dst vm.Tier, urgent bool) *migReq {
	var req *migReq
	if n := len(g.free); n > 0 {
		req = g.free[n-1]
		g.free[n-1] = nil
		g.free = g.free[:n-1]
		*req = migReq{}
	} else {
		req = &migReq{}
	}
	req.page, req.dst, req.urgent = p, dst, urgent
	return req
}

// release returns a finished request to the freelist.
func (g *Migrator) release(req *migReq) {
	req.page = nil
	g.free = append(g.free, req)
}

// Enqueue schedules page p to move to tier dst. Pages already migrating or
// already in dst are ignored. The page is write-protected for the duration
// of the copy (userfaultfd WP), which the simulation marks via
// p.Migrating.
func (g *Migrator) Enqueue(p *vm.Page, dst vm.Tier) bool {
	if p.Migrating || p.Tier == dst || dst == vm.TierNone {
		return false
	}
	p.Migrating = true
	g.queue = append(g.queue, g.newReq(p, dst, false))
	return true
}

// EnqueueUrgent schedules an emergency migration (e.g. evacuating a page
// whose NVM frame took an uncorrectable error) at the head of the queue.
// Urgent moves are never aborted by fault injection.
func (g *Migrator) EnqueueUrgent(p *vm.Page, dst vm.Tier) bool {
	if p.Migrating || p.Tier == dst || dst == vm.TierNone {
		return false
	}
	p.Migrating = true
	g.queue = append(g.queue, nil)
	copy(g.queue[1:], g.queue)
	g.queue[0] = g.newReq(p, dst, true)
	return true
}

// Cancel removes any queued migration of p without completing it: the
// page stays in its source tier and its write protection is lifted. The
// bytes of a partial copy attempt are discarded (wear stays charged — the
// traffic really hit the media). It returns the destination tier of the
// cancelled request so the manager can unwind enqueue-time accounting.
func (g *Migrator) Cancel(p *vm.Page) (dst vm.Tier, cancelled bool) {
	for i, req := range g.queue {
		if req.page == p {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.queue = g.queue[:len(g.queue):cap(g.queue)]
			p.Migrating = false
			dst = req.dst
			g.release(req)
			return dst, true
		}
	}
	return vm.TierNone, false
}

// QueueLen returns the number of pages waiting to move.
func (g *Migrator) QueueLen() int { return len(g.queue) }

// QueuedBytes returns the bytes still to be copied.
func (g *Migrator) QueuedBytes() float64 {
	ps := float64(g.m.Cfg.PageSize)
	total := 0.0
	for _, req := range g.queue {
		total += ps - req.done
	}
	return total
}

// FailDMAChannel removes one DMA channel after an injected hardware fault.
// It returns the number of channels still live and whether this failure
// exhausted the engine, triggering the fall back to the paper's 4-thread
// software-copy pool. A migrator already on a non-DMA backend returns
// (-1, false).
func (g *Migrator) FailDMAChannel() (live int, fellBack bool) {
	db, ok := g.backend.(DMABackend)
	if !ok {
		return -1, false
	}
	live = db.Engine.FailChannel()
	if live == 0 {
		g.backend = ThreadBackend{Copier: dma.NewThreadCopier(dma.FallbackCopyThreads)}
		return 0, true
	}
	return live, false
}

// Stats returns cumulative migration statistics.
func (g *Migrator) Stats() MigStats { return g.stats }

// advance runs up to one quantum's worth of copying: budget-limited FIFO
// processing with wear charged to both devices. Requests still waiting out
// a retry backoff are skipped without head-of-line blocking. It is called
// by Machine.Step before traffic costing so completed moves are visible
// immediately.
func (g *Migrator) advance(now, dt int64) {
	g.lastMoved = [MaxDevs]moved{}
	if len(g.queue) == 0 {
		g.busy = false
		return
	}
	g.busy = true
	rate := g.RateCap
	if bt := g.backend.Throughput(); bt < rate {
		rate = bt
	}
	budget := rate * float64(dt)
	ps := float64(g.m.Cfg.PageSize)
	// Compact the queue in place: surviving requests slide to the front in
	// order instead of paying an O(n) slice removal per completed page.
	// finish may append retries to the tail mid-loop; they carry a future
	// notBefore, so the sweep keeps them without reprocessing.
	i, w := 0, 0
	for i < len(g.queue) {
		req := g.queue[i]
		i++
		if budget <= 0 || req.notBefore > now {
			g.queue[w] = req
			w++
			continue
		}
		need := ps - req.done
		chunk := need
		if chunk > budget {
			chunk = budget
		}
		budget -= chunk
		req.done += chunk
		g.charge(req.page.Tier, req.dst, chunk)
		if req.done >= ps {
			g.finish(req, now)
		} else {
			g.queue[w] = req
			w++
		}
	}
	for j := w; j < len(g.queue); j++ {
		g.queue[j] = nil
	}
	g.queue = g.queue[:w]
	if len(g.queue) == 0 {
		g.busy = false
	}
}

// charge accounts one chunk of copy traffic on devices and in the
// per-direction summary used for utilization seeding.
func (g *Migrator) charge(src, dst vm.Tier, bytes float64) {
	sd, dd := g.m.TierDev(src), g.m.TierDev(dst)
	g.m.Device(sd).RecordBytes(mem.Read, bytes)
	g.m.Device(dd).RecordBytes(mem.Write, bytes)
	mv := &g.lastMoved[dd]
	mv.bytes += bytes
	mv.srcDev, mv.dstDev = sd, dd
	g.stats.Bytes += bytes
}

// finish runs the verification step at the end of one full page copy: the
// move either aborts (injected verification failure / destination
// pressure) and rolls back, or commits. Urgent moves never abort.
func (g *Migrator) finish(req *migReq, now int64) {
	if !req.urgent && g.m.Injector.MigrationAbort() {
		g.abort(req, now)
		return
	}
	g.complete(req)
}

// abort rolls back a failed copy attempt. The copied bytes are discarded —
// wear stays charged, since the traffic really hit the media — and the
// source page remains intact in place. The request retries after a capped
// exponential backoff, or is abandoned once it exhausts its retries (the
// page stays put and the manager is told to undo its accounting).
func (g *Migrator) abort(req *migReq, now int64) {
	st := g.m.FaultCounters()
	st.MigrationAborts++
	src, dst := req.page.Tier, req.dst
	edgeOK := int(src) >= 0 && int(src) < vm.MaxTiers && int(dst) >= 0 && int(dst) < vm.MaxTiers
	req.done = 0
	req.attempts++
	if req.attempts > g.m.Injector.MaxRetries() {
		st.MigrationsAbandoned++
		if edgeOK {
			st.MigrationsAbandonedByEdge[src][dst]++
		}
		page := req.page
		page.Migrating = false
		g.release(req)
		if obs, ok := g.m.Mgr.(MigrationFailureObserver); ok {
			obs.OnMigrationFailed(page, dst)
		}
		return
	}
	st.MigrationRetries++
	if edgeOK {
		st.MigrationRetriesByEdge[src][dst]++
	}
	req.notBefore = now + g.m.Injector.Backoff(req.attempts)
	g.queue = append(g.queue, req)
}

// complete commits one page move. A move to a faster tier (smaller
// device index) is a promotion, anything else a demotion.
func (g *Migrator) complete(req *migReq) {
	src := req.page.Tier
	if g.m.TierDev(req.dst) < g.m.TierDev(src) {
		g.stats.Promotions++
	} else {
		g.stats.Demotions++
	}
	if int(src) >= 0 && int(src) < vm.MaxTiers && int(req.dst) >= 0 && int(req.dst) < vm.MaxTiers {
		g.edges[src][req.dst]++
	}
	if int(src) > 0 && int(src) < vm.MaxTiers && g.m.offline[src] {
		g.m.faultStats.TierEvacuatedPages++
	}
	g.stats.Pages++
	page := req.page
	if tr := g.m.tenants; tr != nil {
		if o := page.Region.Owner(); o != vm.TenantNone {
			tr.noteMigration(o)
		}
	}
	page.SetTier(req.dst)
	page.Migrating = false
	g.release(req)
	if obs, ok := g.m.Mgr.(MigrationObserver); ok {
		obs.OnMigrated(page)
	}
}

// Moved returns how many pages have completed a src→dst move — one edge
// of the migration graph.
func (g *Migrator) Moved(src, dst vm.TierID) int64 {
	if int(src) < 0 || int(src) >= vm.MaxTiers || int(dst) < 0 || int(dst) >= vm.MaxTiers {
		return 0
	}
	return g.edges[src][dst]
}

// planned reports the traffic moved in the most recent advance, for the
// contention solver.
func (g *Migrator) planned(dt int64) [MaxDevs]moved { return g.lastMoved }

// activeThreads reports copy-thread core consumption for the CPU model.
// Dedicated pools (copy threads) hold their cores always; the DMA engine
// costs nothing either way.
func (g *Migrator) activeThreads() float64 {
	type dedicated interface{ Dedicated() bool }
	if d, ok := g.backend.(dedicated); ok && d.Dedicated() {
		return g.backend.Threads()
	}
	if !g.busy {
		return 0
	}
	return g.backend.Threads()
}
