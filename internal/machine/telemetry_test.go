package machine

import (
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// nopManager is the minimal Manager for white-box telemetry tests: every
// page lands in DRAM and no background work runs.
type nopManager struct{}

func (nopManager) Name() string            { return "nop" }
func (nopManager) Attach(*Machine)         {}
func (nopManager) PageIn(p *vm.Page)       { p.SetTier(vm.TierDRAM) }
func (nopManager) OnQuantum(now, dt int64) {}
func (nopManager) ActiveThreads() float64  { return 0 }

// fixedWorkload drives a constant single-component access stream.
type fixedWorkload struct {
	name string
	comp []Component
}

func (w *fixedWorkload) Name() string                  { return w.name }
func (w *fixedWorkload) Threads() int                  { return 1 }
func (w *fixedWorkload) Components() []Component       { return w.comp }
func (w *fixedWorkload) OnOps(int64, float64, float64) {}
func (w *fixedWorkload) Done() bool                    { return false }

// Regression: WriteCSV used to walk only the timestamps of whichever
// series sorted first alphabetically. A series created later (the fault
// counters appear on the first injected fault) or sampling on its own
// cadence either lost rows or sheared every column against the wrong
// clock. Rows must cover the union of all series' timestamps.
func TestWriteCSVAlignsLateSeries(t *testing.T) {
	tel := &Telemetry{series: make(map[string]*sim.Series)}
	// "aaa" sorts first but records only early points; "zzz" starts late.
	tel.get("aaa").Append(100, 1)
	tel.get("aaa").Append(200, 2)
	tel.get("zzz").Append(200, 20)
	tel.get("zzz").Append(300, 30)
	tel.get("zzz").Append(400, 40)

	var sb strings.Builder
	if err := tel.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t_seconds,aaa,zzz" {
		t.Fatalf("header = %q", lines[0])
	}
	want := []string{
		"0.000,1,0",  // t=100ns
		"0.000,2,20", // t=200ns
		"0.000,2,30", // t=300: aaa holds its last value
		"0.000,2,40", // t=400
	}
	if len(lines)-1 != len(want) {
		t.Fatalf("got %d rows, want %d (union of timestamps):\n%s", len(lines)-1, len(want), sb.String())
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Errorf("row %d = %q, want %q", i, lines[i+1], w)
		}
	}
}

// Telemetry records the per-workload cumulative ops series the Series
// docs promise.
func TestTelemetryRecordsWorkloadOps(t *testing.T) {
	m := New(DefaultConfig(), nopManager{})
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	r := m.AS.Map("w1-data", 1*sim.GB)
	m.AddWorkload(&fixedWorkload{name: "w1", comp: []Component{
		{Set: r.AsSet(), Share: 1, ReadBytes: 64},
	}})
	m.Warm()
	m.Run(1 * sim.Second)
	s := tel.Series("workload.w1.ops")
	if s == nil || s.Len() == 0 {
		t.Fatal("workload.w1.ops series missing")
	}
	// The series is cumulative: non-decreasing, positive once traffic
	// flows, and never ahead of the machine's own op counter (the final
	// sample predates the last few quanta).
	for i := 1; i < s.Len(); i++ {
		if s.Values[i] < s.Values[i-1] {
			t.Fatalf("ops series decreased at %d: %v -> %v", i, s.Values[i-1], s.Values[i])
		}
	}
	last := s.Values[s.Len()-1]
	if last <= 0 || last > m.TotalOps("w1") {
		t.Fatalf("ops series last = %v, TotalOps = %v", last, m.TotalOps("w1"))
	}
}
