package machine

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// nopManager is the minimal Manager for white-box telemetry tests: every
// page lands in DRAM and no background work runs.
type nopManager struct{}

func (nopManager) Name() string            { return "nop" }
func (nopManager) Attach(*Machine)         {}
func (nopManager) PageIn(p *vm.Page)       { p.SetTier(vm.TierDRAM) }
func (nopManager) OnQuantum(now, dt int64) {}
func (nopManager) ActiveThreads() float64  { return 0 }

// fixedWorkload drives a constant single-component access stream.
type fixedWorkload struct {
	name string
	comp []Component
}

func (w *fixedWorkload) Name() string                  { return w.name }
func (w *fixedWorkload) Threads() int                  { return 1 }
func (w *fixedWorkload) Components() []Component       { return w.comp }
func (w *fixedWorkload) OnOps(int64, float64, float64) {}
func (w *fixedWorkload) Done() bool                    { return false }

// Regression: WriteCSV used to walk only the timestamps of whichever
// series sorted first alphabetically. A series created later (the fault
// counters appear on the first injected fault) or sampling on its own
// cadence either lost rows or sheared every column against the wrong
// clock. Rows must cover the union of all series' timestamps.
func TestWriteCSVAlignsLateSeries(t *testing.T) {
	tel := &Telemetry{series: make(map[string]*sim.Series)}
	// "aaa" sorts first but records only early points; "zzz" starts late.
	tel.get("aaa").Append(100, 1)
	tel.get("aaa").Append(200, 2)
	tel.get("zzz").Append(200, 20)
	tel.get("zzz").Append(300, 30)
	tel.get("zzz").Append(400, 40)

	var sb strings.Builder
	if err := tel.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t_seconds,aaa,zzz" {
		t.Fatalf("header = %q", lines[0])
	}
	want := []string{
		"0.000,1,0",  // t=100ns
		"0.000,2,20", // t=200ns
		"0.000,2,30", // t=300: aaa holds its last value
		"0.000,2,40", // t=400
	}
	if len(lines)-1 != len(want) {
		t.Fatalf("got %d rows, want %d (union of timestamps):\n%s", len(lines)-1, len(want), sb.String())
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Errorf("row %d = %q, want %q", i, lines[i+1], w)
		}
	}
}

// Telemetry series names derive from the machine's tier table, not the
// classic {dram,nvm,disk} set the old Series doc promised: every
// device-backed tier gets its bandwidth pair, and every traversed
// migration-graph edge gets its lazy per-edge series.
func TestTelemetrySeriesCoverTierTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tiers = []TierDesc{
		{ID: vm.TierDRAM, Capacity: 4 * sim.GB},
		{ID: vm.TierCXL, Capacity: 8 * sim.GB},
		{ID: vm.TierNVM, Capacity: 64 * sim.GB, UEVictim: true},
		{ID: vm.TierDisk, Capacity: 256 * sim.GB, Swap: true},
	}
	m := New(cfg, nopManager{})
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	r := m.AS.Map("w1-data", 1*sim.GB)
	m.AddWorkload(&fixedWorkload{name: "w1", comp: []Component{
		{Set: r.AsSet(), Share: 1, ReadBytes: 64},
	}})
	m.Warm()
	m.Run(1 * sim.Second)

	// Drive one migration over each link of the DRAM→CXL→NVM chain and
	// one promotion back, so both directions of every edge traverse.
	p := r.PageAt(0)
	for _, dst := range []vm.Tier{vm.TierCXL, vm.TierNVM, vm.TierCXL, vm.TierDRAM} {
		if !m.Migrator.Enqueue(p, dst) {
			t.Fatalf("Enqueue(%v) refused", dst)
		}
		m.Run(1 * sim.Second)
		if got := p.Tier; got != dst {
			t.Fatalf("page on %v, want %v", got, dst)
		}
	}

	names := make(map[string]bool)
	for _, n := range tel.Names() {
		names[n] = true
	}
	// Every device-backed tier — including CXL, which the stale doc's
	// fixed set omitted — emits its bandwidth pair.
	want := m.BandwidthSeriesNames()
	if len(want) != 2*len(cfg.Tiers) {
		t.Fatalf("BandwidthSeriesNames = %v, want 2 per tier", want)
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("missing bandwidth series %q (have %v)", n, tel.Names())
		}
	}
	// Every traversed migration edge emits its per-edge series; untouched
	// edges stay absent (laziness keeps old CSV column sets stable).
	for _, sd := range cfg.Tiers {
		for _, dd := range cfg.Tiers {
			name := "migration." + edgeName(sd.ID, dd.ID) + ".pages"
			if m.Migrator.Moved(sd.ID, dd.ID) > 0 {
				if !names[name] {
					t.Errorf("edge %s moved pages but series %q missing", edgeName(sd.ID, dd.ID), name)
				}
			} else if names[name] {
				t.Errorf("series %q exists but edge never moved a page", name)
			}
		}
	}
	for _, edge := range [][2]vm.Tier{
		{vm.TierDRAM, vm.TierCXL}, {vm.TierCXL, vm.TierNVM},
		{vm.TierNVM, vm.TierCXL}, {vm.TierCXL, vm.TierDRAM},
	} {
		if m.Migrator.Moved(edge[0], edge[1]) == 0 {
			t.Errorf("edge %s never traversed; test drove it", edgeName(edge[0], edge[1]))
		}
	}
}

// refWriteCSV is the pre-merge-cursor writer — a binary search per cell
// via Series.At — kept verbatim as the byte-identity reference for the
// cursor-based WriteCSV.
func refWriteCSV(t *Telemetry, w io.Writer) {
	names := t.Names()
	if len(names) == 0 {
		return
	}
	fmt.Fprint(w, "t_seconds")
	for _, n := range names {
		fmt.Fprintf(w, ",%s", n)
	}
	fmt.Fprintln(w)
	var times []int64
	for _, n := range names {
		times = append(times, t.series[n].Times...)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	uniq := times[:0]
	for i, ts := range times {
		if i == 0 || ts != times[i-1] {
			uniq = append(uniq, ts)
		}
	}
	for _, ts := range uniq {
		fmt.Fprintf(w, "%.3f", float64(ts)/1e9)
		for _, n := range names {
			fmt.Fprintf(w, ",%.6g", t.series[n].At(ts))
		}
		fmt.Fprintln(w)
	}
}

// The merge-cursor WriteCSV is byte-identical to the binary-search
// reference, on a synthetic recording with staggered and gappy series and
// on a real machine run.
func TestWriteCSVMatchesBinarySearchReference(t *testing.T) {
	check := func(name string, tel *Telemetry) {
		t.Helper()
		var got, want strings.Builder
		if err := tel.WriteCSV(&got); err != nil {
			t.Fatalf("%s: WriteCSV: %v", name, err)
		}
		refWriteCSV(tel, &want)
		if got.String() != want.String() {
			t.Errorf("%s: cursor writer diverges from reference\ngot:\n%s\nwant:\n%s",
				name, got.String(), want.String())
		}
	}

	// Synthetic: series starting late, ending early, sampling on their
	// own cadences, and sharing only some timestamps.
	syn := &Telemetry{series: make(map[string]*sim.Series)}
	syn.get("early").Append(100, 1)
	syn.get("early").Append(200, 2)
	syn.get("late").Append(250, 10)
	syn.get("late").Append(400, 11)
	syn.get("sparse").Append(100, 5)
	syn.get("sparse").Append(400, 6)
	syn.get("dense").Append(100, 1)
	syn.get("dense").Append(150, 2)
	syn.get("dense").Append(200, 3)
	syn.get("dense").Append(250, 4)
	check("synthetic", syn)

	// Recorded run: a real machine with lazily created series (workload
	// ops, per-edge migration) layered over the fixed-cadence ones.
	m := New(DefaultConfig(), nopManager{})
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	r := m.AS.Map("w1-data", 1*sim.GB)
	m.AddWorkload(&fixedWorkload{name: "w1", comp: []Component{
		{Set: r.AsSet(), Share: 1, ReadBytes: 64},
	}})
	m.Warm()
	m.Run(1 * sim.Second)
	m.Migrator.Enqueue(r.PageAt(0), vm.TierNVM)
	m.Run(1 * sim.Second)
	check("recorded", tel)
}

// Telemetry records the per-workload cumulative ops series the Series
// docs promise.
func TestTelemetryRecordsWorkloadOps(t *testing.T) {
	m := New(DefaultConfig(), nopManager{})
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	r := m.AS.Map("w1-data", 1*sim.GB)
	m.AddWorkload(&fixedWorkload{name: "w1", comp: []Component{
		{Set: r.AsSet(), Share: 1, ReadBytes: 64},
	}})
	m.Warm()
	m.Run(1 * sim.Second)
	s := tel.Series("workload.w1.ops")
	if s == nil || s.Len() == 0 {
		t.Fatal("workload.w1.ops series missing")
	}
	// The series is cumulative: non-decreasing, positive once traffic
	// flows, and never ahead of the machine's own op counter (the final
	// sample predates the last few quanta).
	for i := 1; i < s.Len(); i++ {
		if s.Values[i] < s.Values[i-1] {
			t.Fatalf("ops series decreased at %d: %v -> %v", i, s.Values[i-1], s.Values[i])
		}
	}
	last := s.Values[s.Len()-1]
	if last <= 0 || last > m.TotalOps("w1") {
		t.Fatalf("ops series last = %v, TotalOps = %v", last, m.TotalOps("w1"))
	}
}
