package machine

import (
	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/vm"
)

// FaultHandler is implemented by managers that react to hardware faults
// the machine injects. OnNVMUncorrectable reports that an uncorrectable
// media error struck p while resident on a UE-prone tier (NVM on the
// classic testbed; any tier marked UEVictim in the table): the machine
// has already retired the failing frame and remapped the page
// (vm.AddressSpace.RetireFrame); the manager should respond, e.g. by
// queueing an emergency promotion to the next faster tier. Managers that
// do not implement the interface still get the retire-and-remap; they
// simply take no placement action.
type FaultHandler interface {
	OnNVMUncorrectable(p *vm.Page)
}

// MigrationFailureObserver is implemented by managers that want a callback
// when a migration they enqueued is abandoned after exhausting its
// retries. The page stays in its source tier with Migrating cleared; the
// manager must undo any space accounting it committed at enqueue time and
// return the page to its bookkeeping.
type MigrationFailureObserver interface {
	OnMigrationFailed(p *vm.Page, dst vm.Tier)
}

// applyFaults draws this quantum's fault decisions and applies them to the
// devices and the migrator. It is a strict no-op when injection is
// disabled: no randomness is drawn, no derates are touched, and no
// counters move.
func (m *Machine) applyFaults(now, dt int64) {
	inj := m.Injector
	if !inj.Enabled() {
		return
	}
	ev := inj.Advance(now, dt)
	if ev.DMADegradedStart {
		m.faultStats.DMADegradedEpisodes++
	}
	if ev.NVMThermalStart {
		m.faultStats.NVMThermalEpisodes++
	}
	if ev.PEBSStormStart {
		m.faultStats.PEBSStorms++
	}
	if ev.CompoundStart {
		m.faultStats.CompoundEpisodes++
	}
	if ev.CEStormStart {
		m.faultStats.CEStorms++
	}
	// Episode log. Tier-offline episodes are logged by offlineTier, which
	// also tracks their evacuation; everything else is recorded here.
	for i := 0; i < ev.NumEpisodes; i++ {
		ep := ev.Episodes[i]
		if ep.Kind == fault.EpTierOffline {
			continue
		}
		m.episodes = append(m.episodes, fault.Episode{
			Kind: ep.Kind, Tier: ep.Tier, Start: now, End: ep.Until,
		})
	}
	// Tier lifecycle: onlining first (the injector emits recoveries
	// before fresh offline draws), then the quantum's offline event.
	for t := vm.Tier(1); int(t) < vm.MaxTiers; t++ {
		if ev.TierOnline[t] {
			m.OnlineTier(t)
		}
	}
	if ev.TierOffline != vm.TierNone {
		m.offlineTier(ev.TierOffline, now+inj.Config().Chaos.TierOfflineDuration)
	}
	for i := 0; i < ev.DMAChannelFails; i++ {
		live, fellBack := m.Migrator.FailDMAChannel()
		if live < 0 {
			break // already on the software-copy path; nothing left to fail
		}
		m.faultStats.DMAChannelFailures++
		if fellBack {
			m.faultStats.SoftwareCopyFallbacks++
		}
	}
	m.NVM.SetDerate(inj.NVMDerate())
	if db, ok := m.Migrator.Backend().(DMABackend); ok {
		db.Engine.SetDerate(inj.DMADerate())
	}
	for i := 0; i < ev.NVMUncorrectable; i++ {
		m.injectUE()
	}
	for i := 0; i < ev.CorrectableErrors; i++ {
		m.injectCE()
	}
}

// ueTier reports whether tier t is marked UEVictim in the tier table.
func (m *Machine) ueTier(t vm.TierID) bool {
	for _, td := range m.Cfg.Tiers {
		if td.ID == t {
			return td.UEVictim
		}
	}
	return false
}

// pickUEVictim selects a uniformly random page resident on a UE-prone
// tier, drawing one index from the injector's strike stream. Victim
// selection is uniform over the combined population of every UEVictim
// tier, iterated in region order then table order, so a
// single-victim-tier machine draws exactly the sequence the NVM-only
// implementation did. Returns nil when no candidate page exists.
func (m *Machine) pickUEVictim() *vm.Page {
	total := 0
	for _, r := range m.AS.Regions {
		for _, td := range m.Cfg.Tiers {
			if td.UEVictim {
				total += r.Count(td.ID)
			}
		}
	}
	if total == 0 {
		return nil
	}
	k := m.Injector.PickIndex(total)
	for _, r := range m.AS.Regions {
		n := 0
		for _, td := range m.Cfg.Tiers {
			if td.UEVictim {
				n += r.Count(td.ID)
			}
		}
		if k >= n {
			k -= n
			continue
		}
		// Only materialized pages can be resident on a UE-prone tier, so
		// the sparse walk (ascending index order, like the dense one) sees
		// every candidate.
		for i, np := 0, r.NumPages(); i < np; i++ {
			p := r.Peek(i)
			if p == nil || !m.ueTier(p.Tier) {
				continue
			}
			if k == 0 {
				return p
			}
			k--
		}
		break
	}
	return nil
}

// injectUE strikes a uniformly random page resident on a UE-prone tier
// with an uncorrectable media error: the frame is retired and the page
// remapped (keeping its tier and contents — the error was caught on
// scrub, not on a demand read), and a FaultHandler manager is asked to
// react.
func (m *Machine) injectUE() {
	victim := m.pickUEVictim()
	if victim == nil {
		return
	}
	m.AS.RetireFrame(victim)
	m.faultStats.NVMUncorrectable++
	if int(victim.Tier) >= 0 && int(victim.Tier) < vm.MaxTiers {
		m.faultStats.UncorrectableByTier[victim.Tier]++
	}
	m.faultStats.PagesRetired++
	if h, ok := m.Mgr.(FaultHandler); ok {
		h.OnNVMUncorrectable(victim)
	}
}

// injectCE lands a correctable media error on a uniformly random page of
// a UE-prone tier. Correctable errors are absorbed by ECC — no data is
// lost and the page stays mapped — but a page accumulating the chaos
// config's retire threshold is predictively retired: the failing frame is
// discarded before it can produce an uncorrectable error, the page
// remaps (RetireFrame zeroes the page's error count with the frame), and
// a FaultHandler manager may queue an emergency promotion exactly as for
// a UE.
func (m *Machine) injectCE() {
	victim := m.pickUEVictim()
	if victim == nil {
		return
	}
	m.faultStats.CorrectableErrors++
	victim.CorrectableErrors++
	if victim.CorrectableErrors < m.Injector.CERetireThreshold() {
		return
	}
	m.AS.RetireFrame(victim)
	m.faultStats.PagesPredictivelyRetired++
	m.faultStats.PagesRetired++
	if h, ok := m.Mgr.(FaultHandler); ok {
		h.OnNVMUncorrectable(victim)
	}
}
