package machine

import (
	"github.com/tieredmem/hemem/internal/vm"
)

// FaultHandler is implemented by managers that react to hardware faults
// the machine injects. OnNVMUncorrectable reports that an uncorrectable
// media error struck p while NVM-resident: the machine has already retired
// the failing frame and remapped the page (vm.AddressSpace.RetireFrame);
// the manager should respond, e.g. by queueing an emergency promotion to
// DRAM. Managers that do not implement the interface still get the
// retire-and-remap; they simply take no placement action.
type FaultHandler interface {
	OnNVMUncorrectable(p *vm.Page)
}

// MigrationFailureObserver is implemented by managers that want a callback
// when a migration they enqueued is abandoned after exhausting its
// retries. The page stays in its source tier with Migrating cleared; the
// manager must undo any space accounting it committed at enqueue time and
// return the page to its bookkeeping.
type MigrationFailureObserver interface {
	OnMigrationFailed(p *vm.Page, dst vm.Tier)
}

// applyFaults draws this quantum's fault decisions and applies them to the
// devices and the migrator. It is a strict no-op when injection is
// disabled: no randomness is drawn, no derates are touched, and no
// counters move.
func (m *Machine) applyFaults(now, dt int64) {
	inj := m.Injector
	if !inj.Enabled() {
		return
	}
	ev := inj.Advance(now, dt)
	if ev.DMADegradedStart {
		m.faultStats.DMADegradedEpisodes++
	}
	if ev.NVMThermalStart {
		m.faultStats.NVMThermalEpisodes++
	}
	if ev.PEBSStormStart {
		m.faultStats.PEBSStorms++
	}
	for i := 0; i < ev.DMAChannelFails; i++ {
		live, fellBack := m.Migrator.FailDMAChannel()
		if live < 0 {
			break // already on the software-copy path; nothing left to fail
		}
		m.faultStats.DMAChannelFailures++
		if fellBack {
			m.faultStats.SoftwareCopyFallbacks++
		}
	}
	m.NVM.SetDerate(inj.NVMDerate())
	if db, ok := m.Migrator.Backend().(DMABackend); ok {
		db.Engine.SetDerate(inj.DMADerate())
	}
	for i := 0; i < ev.NVMUncorrectable; i++ {
		m.injectNVMUE()
	}
}

// injectNVMUE strikes a uniformly random NVM-resident page with an
// uncorrectable media error: the frame is retired and the page remapped
// (keeping its tier and contents — the error was caught on scrub, not on
// a demand read), and a FaultHandler manager is asked to react.
func (m *Machine) injectNVMUE() {
	total := 0
	for _, r := range m.AS.Regions {
		total += r.Count(vm.TierNVM)
	}
	if total == 0 {
		return
	}
	k := m.Injector.PickIndex(total)
	var victim *vm.Page
	for _, r := range m.AS.Regions {
		n := r.Count(vm.TierNVM)
		if k >= n {
			k -= n
			continue
		}
		for _, p := range r.Pages {
			if p.Tier != vm.TierNVM {
				continue
			}
			if k == 0 {
				victim = p
				break
			}
			k--
		}
		break
	}
	if victim == nil {
		return
	}
	m.AS.RetireFrame(victim)
	m.faultStats.NVMUncorrectable++
	m.faultStats.PagesRetired++
	if h, ok := m.Mgr.(FaultHandler); ok {
		h.OnNVMUncorrectable(victim)
	}
}
