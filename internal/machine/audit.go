// Runtime invariant auditor: opt-in conservation checks run once per
// quantum (Config.Audit, the hemem-bench -audit flag, or SetAuditAll in
// tests). The auditor is a pure observer — it draws no randomness and
// mutates nothing, so an audited run is bit-identical to an unaudited
// one; it exists to turn silent accounting drift (a leaked page charge,
// a double-resident page, a migration-queue ghost) into an immediate,
// diagnosable failure instead of a subtly wrong experiment.
package machine

import (
	"fmt"
	"strings"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// auditAll force-enables the auditor on every machine built while set,
// regardless of Config.Audit. Package tests flip it so the whole
// existing suite doubles as an invariant soak.
var auditAll bool

// SetAuditAll toggles force-auditing of every subsequently built
// machine and returns the previous value. Intended for tests:
//
//	defer machine.SetAuditAll(machine.SetAuditAll(true))
func SetAuditAll(v bool) bool {
	prev := auditAll
	auditAll = v
	return prev
}

// UsedReporter is implemented by managers that account committed bytes
// per tier (HeMem's used[]). The auditor cross-checks the report against
// the bytes actually resident in vm, adjusted for in-flight migrations
// (which managers charge to the destination at enqueue time).
type UsedReporter interface {
	Used(t vm.Tier) int64
}

// AuditViolation is one failed invariant.
type AuditViolation struct {
	// Rule names the invariant class (e.g. "region-counts", "used-conservation").
	Rule string
	// Detail describes the specific failure with its numbers.
	Detail string
}

func (v AuditViolation) String() string { return v.Rule + ": " + v.Detail }

// Audit verifies the machine's conservation invariants and returns every
// violation found (nil when all hold):
//
//   - region-counts: each region's per-tier occupancy counters equal a
//     recount of its pages' Tier fields (no page resident in two tiers,
//     no lost pages).
//   - set-counts: each rate-tracked page set's per-tier counters equal a
//     recount of its members.
//   - migrating-queue: the Migrating flag and the migration queue are a
//     bijection — every flagged page appears exactly once in the queue,
//     every queued request's page is flagged, and no request targets the
//     page's current tier.
//   - used-conservation: a UsedReporter manager's per-tier committed
//     bytes equal the resident bytes per tier, adjusted by in-flight
//     migrations (charged to the destination at enqueue).
//   - edge-counters: the migration graph's per-edge completion counters
//     sum to the total completed pages, and promotions + demotions
//     equal that total.
//   - evac-done: an offline tier whose evacuation is recorded complete
//     has no resident pages and no inbound queued migration.
//   - tenant-counts: the address space's per-tenant occupancy table
//     equals a recount over owned regions, per tenant and tier.
//   - tenant-conservation: per tier, the tenant occupancy sums to the
//     pages of owned regions resident there (nothing charged to a
//     tenant that isn't resident, nothing owned that isn't charged).
//   - tenant-orphan: no region owned by a departed tenant remains
//     mapped (teardown bugs leak here first).
//
// The tenant rules run only on machines with a tenant runtime.
//
// Audit never mutates machine state; Step panics with auditDump on the
// first non-empty return.
func (m *Machine) Audit() []AuditViolation {
	var vs []AuditViolation

	// Region occupancy recount, and the resident-bytes tally reused by
	// the used-conservation check below.
	var resident [vm.MaxTiers]int64
	var recount [vm.MaxTiers]int
	for _, r := range m.AS.Regions {
		for i := range recount {
			recount[i] = 0
		}
		r.EachPage(func(p *vm.Page) {
			if int(p.Tier) < 0 || int(p.Tier) >= vm.MaxTiers {
				vs = append(vs, AuditViolation{"region-counts",
					fmt.Sprintf("%s: page %d has out-of-range tier %d", r.Name, p.ID, p.Tier)})
				return
			}
			recount[p.Tier]++
			resident[p.Tier] += r.PageSize
		})
		// Unmaterialized pages are TierNone by construction.
		untouched := r.NumPages() - r.TouchedPages()
		recount[vm.TierNone] += untouched
		resident[vm.TierNone] += int64(untouched) * r.PageSize
		for t := vm.Tier(0); int(t) < vm.NumTiers() && int(t) < vm.MaxTiers; t++ {
			if got := r.Count(t); got != recount[t] {
				vs = append(vs, AuditViolation{"region-counts",
					fmt.Sprintf("%s: counter says %d pages in %v, recount says %d", r.Name, got, t, recount[t])})
			}
		}
	}

	// Rate-tracked page sets (the workloads' traffic sets).
	for _, s := range m.rateOrder {
		for i := range recount {
			recount[i] = 0
		}
		for _, p := range s.Pages() {
			if int(p.Tier) >= 0 && int(p.Tier) < vm.MaxTiers {
				recount[p.Tier]++
			}
		}
		for t := vm.Tier(0); int(t) < vm.NumTiers() && int(t) < vm.MaxTiers; t++ {
			if got := s.Count(t); got != recount[t] {
				vs = append(vs, AuditViolation{"set-counts",
					fmt.Sprintf("set %s: counter says %d pages in %v, recount says %d", s.Name, got, t, recount[t])})
			}
		}
	}

	// Migrating flag ↔ queue bijection.
	queued := make(map[*vm.Page]int, len(m.Migrator.queue))
	for _, req := range m.Migrator.queue {
		queued[req.page]++
		if !req.page.Migrating {
			vs = append(vs, AuditViolation{"migrating-queue",
				fmt.Sprintf("page %d queued %v→%v without Migrating flag", req.page.ID, req.page.Tier, req.dst)})
		}
		if req.page.Tier == req.dst {
			vs = append(vs, AuditViolation{"migrating-queue",
				fmt.Sprintf("page %d queued to its current tier %v", req.page.ID, req.dst)})
		}
	}
	for p, n := range queued {
		if n > 1 {
			vs = append(vs, AuditViolation{"migrating-queue",
				fmt.Sprintf("page %d queued %d times", p.ID, n)})
		}
	}
	for _, r := range m.AS.Regions {
		r.EachPage(func(p *vm.Page) {
			if p.Migrating && queued[p] == 0 {
				vs = append(vs, AuditViolation{"migrating-queue",
					fmt.Sprintf("page %d has Migrating flag but no queue entry", p.ID)})
			}
		})
	}

	// Manager committed-bytes conservation. In-flight migrations are
	// charged to the destination at enqueue, so the expected figure
	// moves each queued page's bytes from its (still-resident) source
	// to its destination before comparing.
	if ur, ok := m.Mgr.(UsedReporter); ok {
		expected := resident
		ps := m.Cfg.PageSize
		for _, req := range m.Migrator.queue {
			if int(req.page.Tier) > 0 && int(req.page.Tier) < vm.MaxTiers {
				expected[req.page.Tier] -= ps
			}
			if int(req.dst) > 0 && int(req.dst) < vm.MaxTiers {
				expected[req.dst] += ps
			}
		}
		for _, td := range m.Cfg.Tiers {
			if got := ur.Used(td.ID); got != expected[td.ID] {
				vs = append(vs, AuditViolation{"used-conservation",
					fmt.Sprintf("%v: manager reports %d bytes used, resident+in-flight is %d (Δ %+d pages)",
						td.ID, got, expected[td.ID], (got-expected[td.ID])/ps)})
			}
		}
	}

	// Migration-graph edge counters.
	st := m.Migrator.Stats()
	var edgeSum int64
	for s := 0; s < vm.MaxTiers; s++ {
		for d := 0; d < vm.MaxTiers; d++ {
			edgeSum += m.Migrator.edges[s][d]
		}
	}
	if edgeSum != st.Pages {
		vs = append(vs, AuditViolation{"edge-counters",
			fmt.Sprintf("per-edge moves sum to %d, completed pages %d", edgeSum, st.Pages)})
	}
	if st.Promotions+st.Demotions != st.Pages {
		vs = append(vs, AuditViolation{"edge-counters",
			fmt.Sprintf("promotions %d + demotions %d ≠ pages %d", st.Promotions, st.Demotions, st.Pages)})
	}

	if m.tenants != nil {
		vs = append(vs, m.auditTenants()...)
	}

	// Completed evacuations stay drained while the tier is offline.
	for _, td := range m.Cfg.Tiers {
		t := td.ID
		if !m.offline[t] || !m.evacDone[t] {
			continue
		}
		res := 0
		for _, r := range m.AS.Regions {
			res += r.Count(t)
		}
		if res != 0 {
			vs = append(vs, AuditViolation{"evac-done",
				fmt.Sprintf("%v evacuated but %d pages resident", t, res)})
		}
		for _, req := range m.Migrator.queue {
			if req.dst == t {
				vs = append(vs, AuditViolation{"evac-done",
					fmt.Sprintf("%v evacuated but page %d queued into it", t, req.page.ID)})
				break
			}
		}
	}

	return vs
}

// auditTenants verifies the tenant conservation invariants (see Audit's
// rule list): the per-tenant occupancy table against a recount of owned
// regions, the per-tier tenant sums against owned-region residency, and
// the absence of regions still mapped for departed tenants.
func (m *Machine) auditTenants() []AuditViolation {
	var vs []AuditViolation
	nt := m.AS.NumTenants()
	recount := make([][vm.MaxTiers]int, nt)
	var owned [vm.MaxTiers]int
	for _, r := range m.AS.Regions {
		o := r.Owner()
		if o == vm.TenantNone {
			continue
		}
		if m.tenants.Departed(o) {
			vs = append(vs, AuditViolation{"tenant-orphan",
				fmt.Sprintf("region %s still mapped for departed tenant %d", r.Name, o)})
		}
		if int(o) > nt {
			vs = append(vs, AuditViolation{"tenant-counts",
				fmt.Sprintf("region %s owned by tenant %d beyond the occupancy table (%d tenants)", r.Name, o, nt)})
			continue
		}
		rc := &recount[o-1]
		r.EachPage(func(p *vm.Page) {
			if int(p.Tier) >= 0 && int(p.Tier) < vm.MaxTiers {
				rc[p.Tier]++
				owned[p.Tier]++
			}
		})
		untouched := r.NumPages() - r.TouchedPages()
		rc[vm.TierNone] += untouched
		owned[vm.TierNone] += untouched
	}
	var sum [vm.MaxTiers]int
	for id := vm.TenantID(1); int(id) <= nt; id++ {
		for t := vm.Tier(0); int(t) < vm.NumTiers() && int(t) < vm.MaxTiers; t++ {
			got := m.AS.TenantPages(id, t)
			sum[t] += got
			if got != recount[id-1][t] {
				vs = append(vs, AuditViolation{"tenant-counts",
					fmt.Sprintf("tenant %d: counter says %d pages in %v, recount says %d",
						id, got, t, recount[id-1][t])})
			}
		}
	}
	for t := vm.Tier(0); int(t) < vm.NumTiers() && int(t) < vm.MaxTiers; t++ {
		if sum[t] != owned[t] {
			vs = append(vs, AuditViolation{"tenant-conservation",
				fmt.Sprintf("%v: tenant occupancy sums to %d pages, owned regions hold %d", t, sum[t], owned[t])})
		}
	}
	return vs
}

// auditUnmap verifies that tearing down region r left no residue: every
// page unplaced, no lingering write protection or queued migration, no
// set membership. Called by Machine.Unmap after AddressSpace.Unmap.
func (m *Machine) auditUnmap(r *vm.Region) []AuditViolation {
	var vs []AuditViolation
	r.EachPage(func(p *vm.Page) {
		if p.Tier != vm.TierNone {
			vs = append(vs, AuditViolation{"unmap-residue",
				fmt.Sprintf("%s: page %d still resident in %v after unmap", r.Name, p.ID, p.Tier)})
		}
		if len(p.InSets()) != 0 {
			vs = append(vs, AuditViolation{"unmap-residue",
				fmt.Sprintf("%s: page %d still in %d sets after unmap", r.Name, p.ID, len(p.InSets()))})
		}
		if p.Migrating {
			vs = append(vs, AuditViolation{"unmap-residue",
				fmt.Sprintf("%s: page %d still write-protected (migrating) after unmap", r.Name, p.ID)})
		}
	})
	for _, req := range m.Migrator.queue {
		if req.page.Region == r {
			vs = append(vs, AuditViolation{"unmap-residue",
				fmt.Sprintf("%s: page %d still queued for migration after unmap", r.Name, req.page.ID)})
		}
	}
	return vs
}

// auditDump renders the violations with a machine-state snapshot —
// clock, tier occupancy, migration queue, fault counters — so a failed
// soak run is diagnosable from the panic message alone.
func (m *Machine) auditDump(vs []AuditViolation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine: audit failed at t=%.6fs (%d audits run): %d violation(s)\n",
		float64(m.Clock.Now())/float64(sim.Second), m.auditsRun, len(vs))
	for _, v := range vs {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	b.WriteString("state:\n")
	for _, td := range m.Cfg.Tiers {
		res := 0
		for _, r := range m.AS.Regions {
			res += r.Count(td.ID)
		}
		status := "online"
		if m.offline[td.ID] {
			status = "OFFLINE"
		}
		fmt.Fprintf(&b, "  %-6v %s: %d pages resident, cap %d", td.ID, status, res, td.Capacity)
		if ur, ok := m.Mgr.(UsedReporter); ok {
			fmt.Fprintf(&b, ", mgr used %d", ur.Used(td.ID))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  migration queue: %d pages, stats %+v\n", m.Migrator.QueueLen(), m.Migrator.Stats())
	fmt.Fprintf(&b, "  faults: %+v\n", m.faultStats)
	fmt.Fprintf(&b, "  episodes: %d logged\n", len(m.episodes))
	return b.String()
}
