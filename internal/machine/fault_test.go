package machine_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

// stubMgr is a minimal NVM-first manager that records abandoned-migration
// callbacks.
type stubMgr struct {
	m      *machine.Machine
	failed []vm.PageID
	dsts   []vm.Tier
}

func (s *stubMgr) Name() string              { return "stub" }
func (s *stubMgr) Attach(m *machine.Machine) { s.m = m }
func (s *stubMgr) PageIn(p *vm.Page)         { p.SetTier(vm.TierNVM) }
func (s *stubMgr) OnQuantum(now, dt int64)   {}
func (s *stubMgr) ActiveThreads() float64    { return 0 }
func (s *stubMgr) OnMigrationFailed(p *vm.Page, dst vm.Tier) {
	s.failed = append(s.failed, p.ID)
	s.dsts = append(s.dsts, dst)
}

// With abort probability 1 and two retries, a migration makes exactly
// three attempts and is then abandoned with the page left intact in its
// source tier and every counter consistent.
func TestMigrationAbortRollbackAndAbandon(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Faults = fault.Config{
		MigrationAbortProb:  1,
		MigrationMaxRetries: 2,
	}
	mgr := &stubMgr{}
	m := machine.New(cfg, mgr)
	r := m.AS.Map("data", 2*sim.MB) // one page
	set := r.AsSet()
	m.Warm()
	m.NVM.ResetWear()
	m.DRAM.ResetWear()

	p := r.PageAt(0)
	if !m.Migrator.Enqueue(p, vm.TierDRAM) {
		t.Fatal("enqueue failed")
	}
	m.Run(50 * sim.Millisecond)

	fs := *m.FaultCounters()
	if fs.MigrationAborts != 3 || fs.MigrationRetries != 2 || fs.MigrationsAbandoned != 1 {
		t.Fatalf("aborts=%d retries=%d abandoned=%d, want 3/2/1",
			fs.MigrationAborts, fs.MigrationRetries, fs.MigrationsAbandoned)
	}
	// Rollback left the page in place with consistent occupancy.
	if p.Tier != vm.TierNVM {
		t.Fatalf("page tier = %v after abandon, want NVM", p.Tier)
	}
	if p.Migrating {
		t.Fatal("Migrating still set after abandon")
	}
	if r.Count(vm.TierNVM) != 1 || r.Count(vm.TierDRAM) != 0 {
		t.Fatalf("region counts NVM=%d DRAM=%d, want 1/0", r.Count(vm.TierNVM), r.Count(vm.TierDRAM))
	}
	if set.Count(vm.TierNVM) != 1 || set.Count(vm.TierDRAM) != 0 {
		t.Fatalf("set counts NVM=%d DRAM=%d, want 1/0", set.Count(vm.TierNVM), set.Count(vm.TierDRAM))
	}
	if m.Migrator.QueueLen() != 0 || m.Migrator.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: len=%d bytes=%v", m.Migrator.QueueLen(), m.Migrator.QueuedBytes())
	}
	// Wear accounts every attempted copy exactly once: 3 attempts × 2 MB.
	want := float64(3 * 2 * sim.MB)
	if got := m.NVM.Wear().ReadBytes; got != want {
		t.Fatalf("NVM read wear = %v, want %v", got, want)
	}
	if got := m.DRAM.Wear().WriteBytes; got != want {
		t.Fatalf("DRAM write wear = %v, want %v", got, want)
	}
	// No committed migration.
	if st := m.Migrator.Stats(); st.Pages != 0 || st.Promotions != 0 {
		t.Fatalf("stats count abandoned move as committed: %+v", st)
	}
	// The manager was told exactly once.
	if len(mgr.failed) != 1 || mgr.failed[0] != p.ID || mgr.dsts[0] != vm.TierDRAM {
		t.Fatalf("failure callback = %v → %v, want [%d] → DRAM", mgr.failed, mgr.dsts, p.ID)
	}
}

// Urgent (emergency) migrations are exempt from injected aborts.
func TestUrgentMigrationNeverAborts(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Faults = fault.Config{MigrationAbortProb: 1}
	mgr := &stubMgr{}
	m := machine.New(cfg, mgr)
	r := m.AS.Map("data", 2*sim.MB)
	m.Warm()

	p := r.PageAt(0)
	if !m.Migrator.EnqueueUrgent(p, vm.TierDRAM) {
		t.Fatal("urgent enqueue failed")
	}
	m.Run(10 * sim.Millisecond)
	if p.Tier != vm.TierDRAM {
		t.Fatalf("urgent migration did not commit: tier = %v", p.Tier)
	}
	if fs := m.FaultCounters(); fs.MigrationAborts != 0 {
		t.Fatalf("urgent migration aborted %d times", fs.MigrationAborts)
	}
}

// Losing every DMA channel degrades to the 4-thread software-copy pool,
// and migrations still complete afterwards.
func TestDMAChannelExhaustionFallsBackToThreads(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Faults = fault.Config{DMAChannelMTBF: sim.Millisecond} // one failure per quantum
	m := machine.New(cfg, xmem.NVMOnly())
	r := m.AS.Map("data", 64*sim.MB)
	m.Warm()

	m.Run(20 * sim.Millisecond) // 8 channels die in the first 8 quanta
	fs := *m.FaultCounters()
	if fs.DMAChannelFailures != 8 {
		t.Fatalf("channel failures = %d, want 8 (then engine dead)", fs.DMAChannelFailures)
	}
	if fs.SoftwareCopyFallbacks != 1 {
		t.Fatalf("software fallbacks = %d, want 1", fs.SoftwareCopyFallbacks)
	}
	tb, ok := m.Migrator.Backend().(machine.ThreadBackend)
	if !ok {
		t.Fatalf("backend is %T, want ThreadBackend", m.Migrator.Backend())
	}
	if tb.Copier.Threads != 4 {
		t.Fatalf("fallback threads = %d, want 4", tb.Copier.Threads)
	}
	// The fallback still moves pages.
	for _, p := range r.AllPages() {
		m.Migrator.Enqueue(p, vm.TierDRAM)
	}
	m.Run(100 * sim.Millisecond)
	if got := r.Frac(vm.TierDRAM); got != 1 {
		t.Fatalf("post-fallback migration incomplete: DRAM frac = %v", got)
	}
}

// Uncorrectable NVM errors retire frames and remap pages; a manager that
// does not implement FaultHandler keeps its placement untouched.
func TestNVMUncorrectableRetiresFrames(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Faults = fault.Config{NVMUncorrectableMTBF: sim.Millisecond} // one UE per quantum
	mgr := &stubMgr{}
	m := machine.New(cfg, mgr)
	r := m.AS.Map("data", 64*sim.MB)
	m.Warm()

	m.Run(10 * sim.Millisecond)
	fs := *m.FaultCounters()
	if fs.NVMUncorrectable != 10 || fs.PagesRetired != 10 {
		t.Fatalf("UEs=%d retired=%d, want 10/10", fs.NVMUncorrectable, fs.PagesRetired)
	}
	if got := m.AS.RetiredFrames(); got != 10 {
		t.Fatalf("AS retired frames = %d, want 10", got)
	}
	remaps := 0
	for _, p := range r.AllPages() {
		remaps += p.Remaps
		if p.Tier != vm.TierNVM {
			t.Fatalf("page %d left NVM under non-FaultHandler manager", p.ID)
		}
	}
	if remaps != 10 {
		t.Fatalf("total page remaps = %d, want 10", remaps)
	}
	if fs.Injected() == 0 || fs.Recoveries() == 0 {
		t.Fatalf("aggregate counters empty: injected=%d recoveries=%d", fs.Injected(), fs.Recoveries())
	}
}

// With injection disabled the injector must stay silent even across a
// long run; the machine's RNG stream is untouched.
func TestNoFaultsWithoutConfig(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.NVMOnly())
	r := m.AS.Map("data", 64*sim.MB)
	m.Warm()
	for _, p := range r.AllPages() {
		m.Migrator.Enqueue(p, vm.TierDRAM)
	}
	m.Run(100 * sim.Millisecond)
	if fs := *m.FaultCounters(); fs != (machine.FaultStats{}) {
		t.Fatalf("fault counters moved without injection: %+v", fs)
	}
	if m.Injector.Enabled() {
		t.Fatal("injector enabled with zero config")
	}
	if got := r.Frac(vm.TierDRAM); got != 1 {
		t.Fatalf("migrations incomplete: %v", got)
	}
}

// Config validation flags negative parameters and accepts defaults.
func TestMachineConfigValidate(t *testing.T) {
	if err := (machine.Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if err := machine.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := machine.Config{Cores: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative cores validated")
	}
	bad = machine.DefaultConfig()
	bad.Faults.MigrationAbortProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("invalid fault config validated")
	}
	bad = machine.DefaultConfig()
	bad.Shards = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative shard count validated")
	}
}

// Shards must survive the historical Config{} defaulting shorthand
// (field-by-field carry-over, like Audit and AdaptiveQuantum) and size
// the machine's intra-step pool; the zero value stays serial.
func TestConfigShardsCarriedAndPooled(t *testing.T) {
	m := machine.New(machine.Config{Shards: 4}, xmem.NVMOnly())
	if got := m.Cfg.Shards; got != 4 {
		t.Fatalf("Shards dropped by defaulting: %d", got)
	}
	if got := m.ShardPool().Workers(); got != 4 {
		t.Fatalf("ShardPool workers = %d, want 4", got)
	}
	m = machine.New(machine.Config{}, xmem.NVMOnly())
	if got := m.ShardPool().Workers(); got != 1 {
		t.Fatalf("default ShardPool workers = %d, want 1 (serial)", got)
	}
}
