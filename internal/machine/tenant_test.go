package machine

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// testTenantApp is the minimal tenant app for white-box runtime tests:
// one owned region driven by a constant access stream.
type testTenantApp struct {
	name    string
	region  *vm.Region
	comps   []Component
	stopped bool
}

func (a *testTenantApp) Name() string                  { return a.name }
func (a *testTenantApp) Threads() int                  { return 1 }
func (a *testTenantApp) Components() []Component       { return a.comps }
func (a *testTenantApp) OnOps(int64, float64, float64) {}
func (a *testTenantApp) Done() bool                    { return a.stopped }
func (a *testTenantApp) Stop()                         { a.stopped = true }
func (a *testTenantApp) Regions() []*vm.Region         { return []*vm.Region{a.region} }

func startTestTenant(m *Machine, id vm.TenantID, size int64) TenantApp {
	name := fmt.Sprintf("tt%d", id)
	a := &testTenantApp{name: name}
	a.region = m.AS.MapOwned(name, size, id)
	m.TouchRange(a.region, 0, a.region.NumPages())
	a.comps = []Component{{Set: a.region.AsSet(), Share: 1, ReadBytes: 64}}
	m.AddWorkloadFor(a, id)
	return a
}

// Admission control: reservations that fit start immediately, ones that
// don't wait FIFO and start when a departure frees reservation, and ones
// no machine state could satisfy are rejected outright.
func TestAdmissionControlQueueAndReject(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tiers = []TierDesc{
		{ID: vm.TierDRAM, Capacity: 256 * sim.MB},
		{ID: vm.TierNVM, Capacity: 4 * sim.GB, UEVictim: true},
	}
	m := New(cfg, nopManager{})
	tr := m.EnableTenants()

	var spec TenantSpec
	spec.Name, spec.Class = "big", Gold
	spec.Reserve[vm.TierDRAM] = 192 * sim.MB
	id1, res := tr.Admit(spec, func(id vm.TenantID) TenantApp { return startTestTenant(m, id, 64*sim.MB) })
	if res != Admitted || id1 != 1 {
		t.Fatalf("first admit = (%v, %v), want (1, admitted)", id1, res)
	}

	spec.Name = "waits"
	spec.Reserve[vm.TierDRAM] = 128 * sim.MB
	if _, res := tr.Admit(spec, func(id vm.TenantID) TenantApp { return startTestTenant(m, id, 64*sim.MB) }); res != AdmitQueued {
		t.Fatalf("second admit = %v, want queued (192+128 MB > 256 MB)", res)
	}
	if tr.PendingAdmits() != 1 {
		t.Fatalf("PendingAdmits = %d, want 1", tr.PendingAdmits())
	}

	spec.Name = "impossible"
	spec.Reserve[vm.TierDRAM] = 512 * sim.MB
	if _, res := tr.Admit(spec, nil); res != AdmitRejected {
		t.Fatalf("oversized admit = %v, want rejected (512 MB > 256 MB tier)", res)
	}

	// Departure drains on the sim timeline, then the queued arrival starts.
	tr.Depart(id1)
	m.Run(100 * sim.Millisecond)
	if !tr.Departed(id1) {
		t.Fatalf("tenant 1 not departed after drain window")
	}
	if tr.PendingAdmits() != 0 || !tr.Active(2) {
		t.Fatalf("queued arrival not admitted after departure: pending=%d active2=%v",
			tr.PendingAdmits(), tr.Active(2))
	}
	if got := tr.SpecOf(2).Name; got != "waits" {
		t.Fatalf("tenant 2 spec = %q, want the queued arrival", got)
	}
	// The departed tenant's pages and reservation are gone.
	if n := m.AS.TenantPages(id1, vm.TierDRAM); n != 0 {
		t.Fatalf("departed tenant still owns %d DRAM pages", n)
	}
	if got := tr.Reserved(vm.TierDRAM); got != 128*sim.MB {
		t.Fatalf("Reserved(DRAM) = %d MB, want the successor's 128 MB", got/sim.MB)
	}
	st := tr.Stats()
	if st.Admitted != 2 || st.Queued != 1 || st.Rejected != 1 || st.Departed != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

// Satellite regression: per-tenant telemetry series created mid-run (a
// tenant admitted while the machine is already running) must land in
// WriteCSV with correct union-of-timestamps alignment — rows before the
// series' first sample read 0, and no row shears against the columns
// that existed from the start.
func TestTenantSeriesCreatedMidRunAlign(t *testing.T) {
	m := New(DefaultConfig(), nopManager{})
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	tr := m.EnableTenants()

	start := func(id vm.TenantID) TenantApp { return startTestTenant(m, id, 64*sim.MB) }
	if _, res := tr.Admit(TenantSpec{Name: "first"}, start); res != Admitted {
		t.Fatalf("pre-run admit = %v", res)
	}
	const arrival = 500 * sim.Millisecond
	m.Events.Schedule(arrival, func(now int64) {
		if _, res := tr.Admit(TenantSpec{Name: "late"}, start); res != Admitted {
			t.Fatalf("mid-run admit = %v", res)
		}
	})
	m.Run(1 * sim.Second)

	late := tel.Series("tenant.2.dram.pages")
	if late == nil || late.Len() == 0 {
		t.Fatalf("tenant.2.dram.pages missing; have %v", tel.Names())
	}
	if late.Times[0] < arrival {
		t.Fatalf("late tenant's series starts at %d ns, before its admission at %d", late.Times[0], arrival)
	}
	early := tel.Series("tenant.1.dram.pages")
	if early == nil || early.Times[0] >= arrival {
		t.Fatalf("tenant.1's series should predate the second admission")
	}

	var sb strings.Builder
	if err := tel.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	header := strings.Split(lines[0], ",")
	col := -1
	for i, n := range header {
		if n == "tenant.2.dram.pages" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("CSV header lacks tenant.2.dram.pages: %q", lines[0])
	}
	sawZeroRow, sawLiveRow := false, false
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			t.Fatalf("sheared row: %d fields vs %d header columns: %q", len(fields), len(header), line)
		}
		ts, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad timestamp in %q: %v", line, err)
		}
		v, err := strconv.ParseFloat(fields[col], 64)
		if err != nil {
			t.Fatalf("bad cell in %q: %v", line, err)
		}
		if int64(ts*1e9) < late.Times[0] {
			if v != 0 {
				t.Fatalf("row at %.3fs predates the late series but reads %v, want backfilled 0", ts, v)
			}
			sawZeroRow = true
		} else if v > 0 {
			sawLiveRow = true
		}
	}
	if !sawZeroRow || !sawLiveRow {
		t.Fatalf("CSV should cover both the backfilled and live phases of the late series (zero=%v live=%v)",
			sawZeroRow, sawLiveRow)
	}
}
