package machine

import (
	"github.com/tieredmem/hemem/internal/fault"
	"github.com/tieredmem/hemem/internal/vm"
)

// TierEventHandler is implemented by managers that handle whole-tier
// offline/online events themselves (graceful degradation: drain the
// offline tier through their own policy with admission control and
// backpressure, rebalance when the tier returns). Managers without the
// interface get the machine's best-effort fallback — a direct evacuation
// of every resident page to the nearest online neighbour — which does not
// consult manager-internal space accounting and is therefore only
// suitable for managers that derive occupancy from vm state.
type TierEventHandler interface {
	OnTierOffline(t vm.TierID)
	OnTierOnline(t vm.TierID)
}

// OfflineTier takes tier t out of service (a CXL expander link-down, a
// DIMM hot-remove): placement must stop targeting it and its resident
// pages evacuate to the surviving tiers. It refuses tiers that are not in
// the table, swap tiers, tiers already offline, and the last online
// migratable tier (a machine must keep somewhere to run). Returns whether
// the tier went offline.
func (m *Machine) OfflineTier(t vm.TierID) bool { return m.offlineTier(t, 0) }

// offlineTier is OfflineTier with the chaos scheduler's scheduled online
// time (0 when unknown: programmatic calls bring the tier back with
// OnlineTier).
func (m *Machine) offlineTier(t vm.TierID, until int64) bool {
	d, ok := m.DevOf(t)
	if !ok || m.Cfg.Tiers[d].Swap || m.offline[t] {
		return false
	}
	online := 0
	for _, td := range m.Cfg.Tiers {
		if !td.Swap && !m.offline[td.ID] {
			online++
		}
	}
	if online <= 1 {
		return false
	}
	now := m.Clock.Now()
	m.offline[t] = true
	m.offlineSince[t] = now
	m.evacDone[t] = false
	m.faultStats.TierOfflineEvents++
	m.episodes = append(m.episodes, fault.Episode{
		Kind: fault.EpTierOffline, Tier: t, Start: now, End: until, EvacNs: -1,
	})
	m.epOpen[t] = len(m.episodes)
	if h, ok := m.Mgr.(TierEventHandler); ok {
		h.OnTierOffline(t)
	} else {
		m.fallbackEvacuate(t)
	}
	return true
}

// OnlineTier brings tier t back into service: placement may target it
// again and managers rebalance onto it. Returns whether the tier was
// offline.
func (m *Machine) OnlineTier(t vm.TierID) bool {
	if int(t) <= 0 || int(t) >= vm.MaxTiers || !m.offline[t] {
		return false
	}
	m.offline[t] = false
	m.faultStats.TierOnlineEvents++
	if i := m.epOpen[t]; i > 0 {
		m.episodes[i-1].End = m.Clock.Now()
		m.epOpen[t] = 0
	}
	if h, ok := m.Mgr.(TierEventHandler); ok {
		h.OnTierOnline(t)
	}
	return true
}

// TierIsOffline reports whether tier t is currently offline.
func (m *Machine) TierIsOffline(t vm.TierID) bool {
	return int(t) > 0 && int(t) < vm.MaxTiers && m.offline[t]
}

// Episodes returns the replayable fault-episode log: every episode onset
// the injector or the tier lifecycle recorded, in order, with scheduled
// ends and measured evacuation times. Callers must not mutate it.
func (m *Machine) Episodes() []fault.Episode { return m.episodes }

// offlineSweep tracks evacuation progress of offline tiers once per
// quantum: when the last resident page has left (and nothing in the
// migration queue still targets the tier), the drain is complete and its
// duration — the tier's MTTR — is recorded. Managers without their own
// TierEventHandler are re-kicked each quantum so aborted evacuation
// migrations are re-enqueued.
func (m *Machine) offlineSweep(now int64) {
	for _, td := range m.Cfg.Tiers {
		t := td.ID
		if !m.offline[t] || m.evacDone[t] {
			continue
		}
		resident := 0
		for _, r := range m.AS.Regions {
			resident += r.Count(t)
		}
		inbound := false
		for _, req := range m.Migrator.queue {
			if req.dst == t {
				inbound = true
				break
			}
		}
		if resident == 0 && !inbound {
			m.evacDone[t] = true
			mttr := now - m.offlineSince[t]
			m.faultStats.TierEvacuations++
			m.faultStats.TierEvacNsTotal += mttr
			if i := m.epOpen[t]; i > 0 {
				m.episodes[i-1].EvacNs = mttr
			}
			continue
		}
		if _, ok := m.Mgr.(TierEventHandler); !ok {
			m.fallbackEvacuate(t)
		}
	}
}

// fallbackEvacuate enqueues every page resident on offline tier t to the
// nearest online migratable neighbour (faster preferred). Best-effort
// path for managers without TierEventHandler; see the interface comment.
func (m *Machine) fallbackEvacuate(t vm.TierID) {
	dst, ok := m.nearestOnline(t)
	if !ok {
		return
	}
	for _, r := range m.AS.Regions {
		if r.Count(t) == 0 {
			continue
		}
		r.EachPage(func(p *vm.Page) {
			if p.Tier == t && !p.Migrating {
				m.Migrator.Enqueue(p, dst)
			}
		})
	}
}

// nearestOnline returns the online migratable tier closest to t in the
// table, preferring faster tiers.
func (m *Machine) nearestOnline(t vm.TierID) (vm.TierID, bool) {
	d, ok := m.DevOf(t)
	if !ok {
		return vm.TierNone, false
	}
	for i := int(d) - 1; i >= 0; i-- {
		if td := m.Cfg.Tiers[i]; !td.Swap && !m.offline[td.ID] {
			return td.ID, true
		}
	}
	for i := int(d) + 1; i < len(m.Cfg.Tiers); i++ {
		if td := m.Cfg.Tiers[i]; !td.Swap && !m.offline[td.ID] {
			return td.ID, true
		}
	}
	return vm.TierNone, false
}
