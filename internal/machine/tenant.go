// Multi-tenant lifecycle: QoS classes, per-tier quota specs, admission
// control, and drain-on-departure, all on the simulated timeline. The
// runtime lives in machine (below the managers, like TierEventHandler)
// so a QoS-aware manager can observe tenant arrivals and departures
// without machine importing it; a machine that never calls
// EnableTenants carries no tenant state and runs byte-identically to a
// build without this file.
package machine

import (
	"fmt"
	"strings"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// QoSClass ranks tenants for quota enforcement and eviction ordering.
// Higher classes are protected: demotion pressure and tier evacuations
// land on lower classes first.
type QoSClass int8

const (
	// BestEffort tenants have no protection: they are evicted first and
	// their reservations are advisory.
	BestEffort QoSClass = iota
	// Silver tenants get weighted-fair protection between gold and
	// best-effort.
	Silver
	// Gold tenants are evicted last and their soft reservations hold
	// whenever lower-class pages exist to evict.
	Gold

	// NumQoSClasses bounds per-class arrays.
	NumQoSClasses = 3
)

// Weight is the tenant's share weight in the weighted-fair selector:
// gold 4, silver 2, besteffort 1.
func (c QoSClass) Weight() int { return 1 << c }

// String returns the class's flag-facing name.
func (c QoSClass) String() string {
	switch c {
	case Gold:
		return "gold"
	case Silver:
		return "silver"
	case BestEffort:
		return "besteffort"
	}
	return fmt.Sprintf("qos(%d)", int8(c))
}

// ParseQoS maps a class name ("gold", "silver", "besteffort") back to
// its QoSClass; ok is false for unknown names.
func ParseQoS(name string) (QoSClass, bool) {
	switch strings.ToLower(name) {
	case "gold":
		return Gold, true
	case "silver":
		return Silver, true
	case "besteffort", "best-effort":
		return BestEffort, true
	}
	return BestEffort, false
}

// QoSNames lists the class names accepted by ParseQoS, best first.
func QoSNames() []string { return []string{"gold", "silver", "besteffort"} }

// TenantSpec declares one tenant's identity and per-tier quotas. Both
// quota tables are keyed by TierID (fixed arrays, like the fault
// counters, so specs stay comparable).
type TenantSpec struct {
	Name  string
	Class QoSClass
	// Reserve is the soft reservation in bytes per tier: admission
	// control guarantees the sum of active reservations fits each tier,
	// and the fair selector shields a tenant below its reservation from
	// demotion while over-quota or lower-class pages exist.
	Reserve [vm.MaxTiers]int64
	// Cap is the hard cap in bytes per tier (0 = uncapped): placement
	// and promotion never push a tenant past it.
	Cap [vm.MaxTiers]int64
}

// TenantManager is implemented by managers that want tenant lifecycle
// callbacks (the QoS-aware selector in core). Admit fires after the
// tenant is admitted and before its app starts; Depart fires after its
// regions are drained and unmapped.
type TenantManager interface {
	OnTenantAdmit(id vm.TenantID, spec TenantSpec)
	OnTenantDepart(id vm.TenantID)
}

// TenantApp is the running side of a tenant: the workload(s) and
// regions its start function created. Stop must make the workloads
// report Done; Regions returns every region to drain and unmap on
// departure.
type TenantApp interface {
	Stop()
	Regions() []*vm.Region
}

// AdmitResult is the outcome of a TenantRuntime.Admit call.
type AdmitResult int8

const (
	// Admitted: reservations fit, the app was started.
	Admitted AdmitResult = iota
	// AdmitQueued: reservations don't fit right now; the arrival waits
	// FIFO and starts when departures free enough reservation.
	AdmitQueued
	// AdmitRejected: the reservation exceeds a tier's total capacity and
	// can never be met.
	AdmitRejected
)

func (r AdmitResult) String() string {
	switch r {
	case Admitted:
		return "admitted"
	case AdmitQueued:
		return "queued"
	case AdmitRejected:
		return "rejected"
	}
	return fmt.Sprintf("admit(%d)", int8(r))
}

// TenantStats counts lifecycle outcomes.
type TenantStats struct {
	Admitted int64
	Queued   int64
	Rejected int64
	Departed int64
}

// pendingAdmit is one queued arrival waiting for reservation space.
type pendingAdmit struct {
	spec  TenantSpec
	start func(id vm.TenantID) TenantApp
}

// tenantState is the runtime's per-tenant slot (index id-1). Slots are
// never reused: departed tenants keep their ID, histogram, and counters
// for end-of-run reporting.
type tenantState struct {
	spec       TenantSpec
	app        TenantApp
	active     bool
	departed   bool
	hist       *sim.Histogram
	migrations int64
}

// TenantRuntime manages tenant lifecycle on one machine: admission
// control against per-tier reservations, FIFO queueing of arrivals that
// don't fit, departure draining through the normal migrator, and
// per-tenant / per-class SLO accounting.
type TenantRuntime struct {
	m       *Machine
	tenants []tenantState
	pending []pendingAdmit
	// reserved is the summed soft reservation of active tenants per
	// tier; admission keeps it within each tier's capacity.
	reserved  [vm.MaxTiers]int64
	classHist [NumQoSClasses]*sim.Histogram
	classMig  [NumQoSClasses]int64
	stats     TenantStats
}

// EnableTenants attaches a tenant runtime to the machine (idempotent).
// Machines without one carry zero tenant state.
func (m *Machine) EnableTenants() *TenantRuntime {
	if m.tenants == nil {
		tr := &TenantRuntime{m: m}
		for i := range tr.classHist {
			tr.classHist[i] = sim.NewHistogram()
		}
		m.tenants = tr
	}
	return m.tenants
}

// Tenants returns the machine's tenant runtime, or nil when tenancy was
// never enabled.
func (m *Machine) Tenants() *TenantRuntime { return m.tenants }

// AddWorkloadFor registers a workload owned by tenant id: its per-op
// latencies feed the tenant's (and its class's) SLO histogram. Tenant
// app start functions use it in place of AddWorkload.
func (m *Machine) AddWorkloadFor(w Workload, owner vm.TenantID) {
	m.AddWorkload(w)
	m.wmeta[len(m.wmeta)-1].tenant = owner
}

// Admit runs admission control for spec: if the sum of active
// reservations plus spec's fits every tier, a dense TenantID is
// assigned, the manager is notified, and start is called to launch the
// tenant's app. Arrivals that don't fit wait FIFO (head-of-line, so
// admission order is deterministic) and start on a later departure;
// reservations no machine state could ever satisfy are rejected.
func (tr *TenantRuntime) Admit(spec TenantSpec, start func(id vm.TenantID) TenantApp) (vm.TenantID, AdmitResult) {
	for _, td := range tr.m.Cfg.Tiers {
		if spec.Reserve[td.ID] > td.Capacity {
			tr.stats.Rejected++
			return vm.TenantNone, AdmitRejected
		}
	}
	if len(tr.pending) > 0 || !tr.fits(spec) {
		tr.pending = append(tr.pending, pendingAdmit{spec: spec, start: start})
		tr.stats.Queued++
		return vm.TenantNone, AdmitQueued
	}
	return tr.admit(spec, start), Admitted
}

// fits reports whether spec's reservation fits next to the active ones.
func (tr *TenantRuntime) fits(spec TenantSpec) bool {
	for _, td := range tr.m.Cfg.Tiers {
		if tr.reserved[td.ID]+spec.Reserve[td.ID] > td.Capacity {
			return false
		}
	}
	return true
}

// admit commits one admission.
func (tr *TenantRuntime) admit(spec TenantSpec, start func(id vm.TenantID) TenantApp) vm.TenantID {
	tr.tenants = append(tr.tenants, tenantState{spec: spec, active: true, hist: sim.NewHistogram()})
	id := vm.TenantID(len(tr.tenants))
	for _, td := range tr.m.Cfg.Tiers {
		tr.reserved[td.ID] += spec.Reserve[td.ID]
	}
	tr.stats.Admitted++
	if tm, ok := tr.m.Mgr.(TenantManager); ok {
		tm.OnTenantAdmit(id, spec)
	}
	tr.tenants[id-1].app = start(id)
	return id
}

// Depart begins tenant id's departure: its app stops generating traffic
// immediately, and its regions drain through the normal migrator — the
// runtime polls once per quantum (an event on the sim timeline, so
// adaptive horizons see it) until no page of the tenant is still
// write-protected by an in-flight migration, then unmaps the regions,
// releases the reservation, notifies the manager, and retries queued
// arrivals. Unknown, departed, or still-launching IDs are no-ops.
func (tr *TenantRuntime) Depart(id vm.TenantID) {
	if id <= 0 || int(id) > len(tr.tenants) {
		return
	}
	ts := &tr.tenants[id-1]
	if !ts.active || ts.app == nil {
		return
	}
	ts.active = false
	ts.app.Stop()
	tr.pollDrain(id, tr.m.Clock.Now())
}

// pollDrain completes the departure once the tenant's pages have no
// in-flight migrations, rescheduling itself one quantum out otherwise.
func (tr *TenantRuntime) pollDrain(id vm.TenantID, now int64) {
	ts := &tr.tenants[id-1]
	if tr.draining(ts) {
		tr.m.Events.Schedule(now+tr.m.Cfg.Quantum, func(at int64) { tr.pollDrain(id, at) })
		return
	}
	for _, r := range ts.app.Regions() {
		tr.m.Unmap(r)
	}
	for _, td := range tr.m.Cfg.Tiers {
		tr.reserved[td.ID] -= ts.spec.Reserve[td.ID]
	}
	ts.app = nil
	ts.departed = true
	tr.stats.Departed++
	if tm, ok := tr.m.Mgr.(TenantManager); ok {
		tm.OnTenantDepart(id)
	}
	tr.retryPending()
}

// draining reports whether any page of the tenant's regions is still
// mid-copy (Enqueue write-protects at enqueue time, so the Migrating
// flag covers queued and in-flight moves alike).
func (tr *TenantRuntime) draining(ts *tenantState) bool {
	for _, r := range ts.app.Regions() {
		busy := false
		r.EachPage(func(p *vm.Page) { busy = busy || p.Migrating })
		if busy {
			return true
		}
	}
	return false
}

// retryPending admits queued arrivals strictly FIFO: the head starts as
// soon as it fits; a head that still doesn't fit keeps the queue waiting
// (no overtaking, so admission order never depends on spec sizes).
func (tr *TenantRuntime) retryPending() {
	for len(tr.pending) > 0 && tr.fits(tr.pending[0].spec) {
		p := tr.pending[0]
		tr.pending = tr.pending[1:]
		tr.admit(p.spec, p.start)
	}
}

// recordOps feeds one quantum's achieved per-op latency into the
// tenant's and its class's SLO histograms, weighted by the op count.
func (tr *TenantRuntime) recordOps(id vm.TenantID, ops, opTime float64) {
	if id <= 0 || int(id) > len(tr.tenants) {
		return
	}
	n := uint64(ops + 0.5)
	if n == 0 {
		return
	}
	ts := &tr.tenants[id-1]
	ts.hist.ObserveN(opTime, n)
	tr.classHist[ts.spec.Class].ObserveN(opTime, n)
}

// noteMigration attributes one completed page move to its owner.
func (tr *TenantRuntime) noteMigration(id vm.TenantID) {
	if id <= 0 || int(id) > len(tr.tenants) {
		return
	}
	ts := &tr.tenants[id-1]
	ts.migrations++
	tr.classMig[ts.spec.Class]++
}

// sampleTelemetry emits the per-tenant series for every tenant admitted
// so far: "tenant.<id>.<fastest>.pages" (DRAM share on the classic
// testbed), ".migrations", and ".slo.p99" (ns). Series are lazy — they
// first appear at the sample after the tenant's admission — and the
// CSV writer's union-of-timestamps alignment backfills earlier rows
// with 0.
func (tr *TenantRuntime) sampleTelemetry(t *Telemetry, m *Machine, now int64) {
	fast := strings.ToLower(m.fastest.String())
	for i := range tr.tenants {
		ts := &tr.tenants[i]
		if ts.departed {
			continue
		}
		id := vm.TenantID(i + 1)
		prefix := fmt.Sprintf("tenant.%d.", id)
		t.get(prefix+fast+".pages").Append(now, float64(m.AS.TenantPages(id, m.fastest)))
		t.get(prefix+"migrations").Append(now, float64(ts.migrations))
		t.get(prefix+"slo.p99").Append(now, ts.hist.Quantile(0.99))
	}
}

// NumTenants returns how many tenants were ever admitted (IDs run
// 1..NumTenants).
func (tr *TenantRuntime) NumTenants() int { return len(tr.tenants) }

// Active reports whether tenant id is admitted and not departing.
func (tr *TenantRuntime) Active(id vm.TenantID) bool {
	return id > 0 && int(id) <= len(tr.tenants) && tr.tenants[id-1].active
}

// Departed reports whether tenant id has fully departed (regions
// unmapped, reservation released).
func (tr *TenantRuntime) Departed(id vm.TenantID) bool {
	return id > 0 && int(id) <= len(tr.tenants) && tr.tenants[id-1].departed
}

// SpecOf returns tenant id's spec (zero value for unknown IDs).
func (tr *TenantRuntime) SpecOf(id vm.TenantID) TenantSpec {
	if id <= 0 || int(id) > len(tr.tenants) {
		return TenantSpec{}
	}
	return tr.tenants[id-1].spec
}

// Hist returns tenant id's SLO histogram (nil for unknown IDs).
func (tr *TenantRuntime) Hist(id vm.TenantID) *sim.Histogram {
	if id <= 0 || int(id) > len(tr.tenants) {
		return nil
	}
	return tr.tenants[id-1].hist
}

// Migrations returns completed page moves attributed to tenant id.
func (tr *TenantRuntime) Migrations(id vm.TenantID) int64 {
	if id <= 0 || int(id) > len(tr.tenants) {
		return 0
	}
	return tr.tenants[id-1].migrations
}

// ClassHist returns the aggregate SLO histogram of class c.
func (tr *TenantRuntime) ClassHist(c QoSClass) *sim.Histogram { return tr.classHist[c] }

// ClassMigrations returns completed page moves attributed to class c.
func (tr *TenantRuntime) ClassMigrations(c QoSClass) int64 { return tr.classMig[c] }

// Reserved returns the summed active soft reservation on tier t.
func (tr *TenantRuntime) Reserved(t vm.TierID) int64 {
	if int(t) < 0 || int(t) >= vm.MaxTiers {
		return 0
	}
	return tr.reserved[t]
}

// PendingAdmits returns how many arrivals are queued for admission.
func (tr *TenantRuntime) PendingAdmits() int { return len(tr.pending) }

// Stats returns the lifecycle counters.
func (tr *TenantRuntime) Stats() TenantStats { return tr.stats }
