package machine

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// FaultStats counts injected faults and the recovery actions they
// triggered, split by mechanism. Counters only move when fault injection
// is enabled.
type FaultStats struct {
	// Injected faults.
	MigrationAborts     int64 // copy attempts failing verification
	DMAChannelFailures  int64 // permanent channel losses
	DMADegradedEpisodes int64 // degraded-bandwidth episode onsets
	NVMUncorrectable    int64 // uncorrectable media errors struck (all UE tiers)
	NVMThermalEpisodes  int64 // thermal-throttle episode onsets
	PEBSStorms          int64 // sampling-storm episode onsets
	CompoundEpisodes    int64 // chaos compound-episode onsets
	CEStorms            int64 // correctable-error storm onsets
	CorrectableErrors   int64 // ECC-corrected media errors struck
	TierOfflineEvents   int64 // whole-tier offline events (link-down, hot-remove)

	// UncorrectableByTier splits the media UEs by the TierID of the
	// struck page (NVMUncorrectable is their sum). A fixed array keyed
	// by TierID so FaultStats stays comparable.
	UncorrectableByTier [vm.MaxTiers]int64

	// Recovery actions.
	MigrationRetries         int64 // aborted copies re-queued with backoff
	MigrationsAbandoned      int64 // migrations given up after max retries
	SoftwareCopyFallbacks    int64 // DMA engine dead → thread-copy pool
	PagesRetired             int64 // frames retired and pages remapped
	EmergencyPromotions      int64 // struck pages promoted out of NVM
	SamplePeriodRaises       int64 // adaptive PEBS period increases
	PagesPredictivelyRetired int64 // frames retired at the CE threshold, pre-UE
	TierOnlineEvents         int64 // offline tiers brought back into service
	TierEvacuations          int64 // offline-tier drains that ran to completion
	TierEvacuatedPages       int64 // pages moved off a tier while it was offline
	TierEvacNsTotal          int64 // summed drain times (MTTR = total/evacuations)

	// Per-edge recovery splits, keyed [src][dst] by TierID (fixed arrays
	// so FaultStats stays comparable). MigrationRetries and
	// MigrationsAbandoned are their respective sums.
	MigrationRetriesByEdge    [vm.MaxTiers][vm.MaxTiers]int64
	MigrationsAbandonedByEdge [vm.MaxTiers][vm.MaxTiers]int64
}

// Injected sums the injected-fault counts.
func (s FaultStats) Injected() int64 {
	return s.MigrationAborts + s.DMAChannelFailures + s.DMADegradedEpisodes +
		s.NVMUncorrectable + s.NVMThermalEpisodes + s.PEBSStorms +
		s.CompoundEpisodes + s.CEStorms + s.CorrectableErrors + s.TierOfflineEvents
}

// Recoveries sums the recovery-action counts. PagesPredictivelyRetired
// is a subset of PagesRetired and TierEvacNsTotal is a duration, so
// neither contributes separately.
func (s FaultStats) Recoveries() int64 {
	return s.MigrationRetries + s.MigrationsAbandoned + s.SoftwareCopyFallbacks +
		s.PagesRetired + s.EmergencyPromotions + s.SamplePeriodRaises +
		s.TierOnlineEvents + s.TierEvacuations + s.TierEvacuatedPages
}

// FaultCounters returns the machine's fault/recovery counters. Managers
// increment recovery counts through it (e.g. emergency promotions).
func (m *Machine) FaultCounters() *FaultStats { return &m.faultStats }

// Telemetry records machine-level time series while the simulation runs:
// per-device read/write bandwidth (from wear-counter deltas, so it covers
// application traffic, migrations, and cache writebacks alike), migration
// backlog, and the TLB-stall fraction. It backs instantaneous plots like
// the paper's Figures 9 and 16 for any experiment, and exports CSV.
type Telemetry struct {
	every int64
	last  int64

	lastWear [MaxDevs]mem.Wear
	series   map[string]*sim.Series
}

// EnableTelemetry starts recording a sample every interval of simulated
// time (e.g. 100 ms). Calling it again resets the recording.
func (m *Machine) EnableTelemetry(interval int64) *Telemetry {
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	t := &Telemetry{every: interval, series: make(map[string]*sim.Series), last: m.Clock.Now()}
	for d := Dev(0); d < Dev(m.NumDevs()); d++ {
		t.lastWear[d] = m.Device(d).Wear()
	}
	m.telemetry = t
	return t
}

// Telemetry returns the active recorder, or nil.
func (m *Machine) Telemetry() *Telemetry { return m.telemetry }

// get returns (creating) the named series.
func (t *Telemetry) get(name string) *sim.Series {
	s, ok := t.series[name]
	if !ok {
		s = &sim.Series{Name: name}
		t.series[name] = s
	}
	return s
}

// sample is called by Machine.Step once per interval.
func (t *Telemetry) sample(m *Machine, now int64, stallFrac float64) {
	if now-t.last < t.every {
		return
	}
	dt := float64(now - t.last)
	t.last = now
	// Series names come from the tier table (lowercased tier names), not
	// a fixed set: whatever tiers the machine declares get bandwidth
	// series. BandwidthSeriesNames enumerates them.
	for d := Dev(0); d < Dev(m.NumDevs()); d++ {
		name := m.tierSeriesPrefix(d)
		w := m.Device(d).Wear()
		prev := t.lastWear[d]
		t.lastWear[d] = w
		t.get(name+".read.gbps").Append(now, sim.BytesPerNsToGBps((w.ReadBytes-prev.ReadBytes)/dt))
		t.get(name+".write.gbps").Append(now, sim.BytesPerNsToGBps((w.WriteBytes-prev.WriteBytes)/dt))
	}
	t.get("migration.queue.pages").Append(now, float64(m.Migrator.QueueLen()))
	t.get("migration.total.gb").Append(now, m.Migrator.Stats().Bytes/float64(sim.GB))
	// Per-edge migration traffic: one lazy series per traversed edge of
	// the migration graph, named from the tier table. Lazy keeps CSVs of
	// migration-free runs (and all pre-existing recordings) byte-stable.
	for _, sd := range m.Cfg.Tiers {
		for _, dd := range m.Cfg.Tiers {
			if n := m.Migrator.Moved(sd.ID, dd.ID); n > 0 {
				t.get("migration."+edgeName(sd.ID, dd.ID)+".pages").Append(now, float64(n))
			}
		}
	}
	t.get("stall.frac").Append(now, stallFrac)
	for _, wm := range m.wmeta {
		t.get("workload."+wm.w.Name()+".ops").Append(now, wm.totalOps)
	}
	// Per-tenant series exist only on machines with a tenant runtime, so
	// single-tenant telemetry keeps its exact column set. Each tenant's
	// series are lazy — created at the first sample after its admission
	// (possibly mid-run) and frozen at departure.
	if m.tenants != nil {
		m.tenants.sampleTelemetry(t, m, now)
	}
	// Fault series exist only when injection is enabled, so fault-free
	// telemetry (and its CSV) is byte-identical to builds without the
	// fault layer.
	if m.Injector.Enabled() {
		fs := m.faultStats
		t.get("fault.injected.total").Append(now, float64(fs.Injected()))
		t.get("fault.recovery.total").Append(now, float64(fs.Recoveries()))
		t.get("fault.migration.aborts").Append(now, float64(fs.MigrationAborts))
		t.get("fault.migration.abandoned").Append(now, float64(fs.MigrationsAbandoned))
		t.get("fault.nvm.retired").Append(now, float64(fs.PagesRetired))
		// Chaos-layer series appear lazily, only once their counter first
		// moves, so runs without a chaos config (and all pre-chaos golden
		// CSVs) keep the exact column set they had. WriteCSV's
		// union-of-timestamps alignment backfills late starters with 0.
		if fs.CorrectableErrors > 0 {
			t.get("fault.ce.injected").Append(now, float64(fs.CorrectableErrors))
			t.get("fault.ce.retired").Append(now, float64(fs.PagesPredictivelyRetired))
		}
		if fs.TierOfflineEvents > 0 {
			t.get("fault.tier.offline.events").Append(now, float64(fs.TierOfflineEvents))
			t.get("fault.tier.online.events").Append(now, float64(fs.TierOnlineEvents))
			t.get("fault.tier.evacuated.pages").Append(now, float64(fs.TierEvacuatedPages))
			mttr := 0.0
			if fs.TierEvacuations > 0 {
				mttr = float64(fs.TierEvacNsTotal) / float64(fs.TierEvacuations) / float64(sim.Millisecond)
			}
			t.get("fault.tier.mttr.ms").Append(now, mttr)
		}
		// Per-edge retry/abandon splits, one lazy series per migration
		// edge that has seen the event, named by the tier pair.
		for _, sd := range m.Cfg.Tiers {
			for _, dd := range m.Cfg.Tiers {
				src, dst := sd.ID, dd.ID
				if n := fs.MigrationRetriesByEdge[src][dst]; n > 0 {
					t.get("fault.migration.retries."+edgeName(src, dst)).Append(now, float64(n))
				}
				if n := fs.MigrationsAbandonedByEdge[src][dst]; n > 0 {
					t.get("fault.migration.abandoned."+edgeName(src, dst)).Append(now, float64(n))
				}
			}
		}
	}
}

// edgeName names a migration edge for telemetry series: "nvm-dram".
func edgeName(src, dst vm.TierID) string {
	return strings.ToLower(src.String()) + "-" + strings.ToLower(dst.String())
}

// tierSeriesPrefix is the telemetry name prefix for device d's tier: the
// lowercased tier-table name ("dram", "cxl", "nvm", "disk", ...).
func (m *Machine) tierSeriesPrefix(d Dev) string {
	return strings.ToLower(m.TierAt(d).String())
}

// BandwidthSeriesNames enumerates the per-tier bandwidth series the
// machine's telemetry records: "<tier>.read.gbps" and "<tier>.write.gbps"
// for every device-backed tier in the tier table, in device order. The
// names derive from the table — a DRAM+CXL+NVM+disk machine records
// eight, not the classic testbed's six.
func (m *Machine) BandwidthSeriesNames() []string {
	out := make([]string, 0, 2*m.NumDevs())
	for d := Dev(0); d < Dev(m.NumDevs()); d++ {
		p := m.tierSeriesPrefix(d)
		out = append(out, p+".read.gbps", p+".write.gbps")
	}
	return out
}

// Series returns the named series, or nil. Names derive from the
// machine's tier table rather than a fixed tier set:
//
//	<tier>.{read,write}.gbps      per device-backed tier (lowercased
//	                              tier-table name; see
//	                              Machine.BandwidthSeriesNames)
//	migration.<src>-<dst>.pages   per traversed migration-graph edge
//	                              (lazy: appears once the edge moves a page)
//	migration.queue.pages         migration backlog
//	migration.total.gb            cumulative migrated bytes
//	stall.frac                    TLB/fault stall fraction
//	workload.<name>.ops           cumulative ops per workload
//	fault.*                       only while fault injection is enabled
func (t *Telemetry) Series(name string) *sim.Series { return t.series[name] }

// Names returns all recorded series names, sorted.
func (t *Telemetry) Names() []string {
	out := make([]string, 0, len(t.series))
	for n := range t.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteCSV emits every series aligned on the sampling timestamps: one
// "t_seconds" column plus one column per series. Rows cover the union of
// every series' timestamps — a series that starts late (e.g. the fault
// counters, created on the first injected fault) or samples on its own
// cadence holds its last value rather than shearing the columns against
// whichever series happens to sort first.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	names := t.Names()
	if len(names) == 0 {
		return nil
	}
	if _, err := fmt.Fprint(w, "t_seconds"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	var times []int64
	for _, n := range names {
		times = append(times, t.series[n].Times...)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	uniq := times[:0]
	for i, ts := range times {
		if i == 0 || ts != times[i-1] {
			uniq = append(uniq, ts)
		}
	}
	// One merge cursor per series: row timestamps are ascending, so each
	// column's value comes from advancing its cursor monotonically —
	// O(rows·series + Σ points) overall, where a binary search per cell
	// (Series.At) would cost an extra log factor on every cell. The value
	// emitted is At's: the one at the greatest recorded time ≤ ts, 0
	// before the series starts.
	cols := make([]*sim.Series, len(names))
	for i, n := range names {
		cols[i] = t.series[n]
	}
	cur := make([]int, len(names))
	for _, ts := range uniq {
		if _, err := fmt.Fprintf(w, "%.3f", float64(ts)/1e9); err != nil {
			return err
		}
		for i, s := range cols {
			for cur[i] < len(s.Times) && s.Times[cur[i]] <= ts {
				cur[i]++
			}
			v := 0.0
			if cur[i] > 0 {
				v = s.Values[cur[i]-1]
			}
			if _, err := fmt.Fprintf(w, ",%.6g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
