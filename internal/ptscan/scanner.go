// Package ptscan implements page-table-scanning tier management: the
// HeMem-PT-Sync and HeMem-PT-Async ablations of Figures 8, 9, 15 and 16,
// and the machinery behind the Nimble baseline (internal/nimble).
//
// Scanning managers read page-table accessed/dirty bits instead of PEBS
// samples. The simulation evaluates bits lazily and statistically: each
// workload page set ("zone") accumulates an expected-accesses-per-page
// integral; at the end of a scan pass the scanner converts the integral
// delta into the probability that a page (and its constituent small-page
// PTEs) was touched since the previous pass. Clearing the bits costs TLB
// shootdowns, charged to every running thread.
//
// The failure mode the paper demonstrates emerges naturally: over a long
// pass, even cold pages are touched at least once, so every zone looks
// accessed, the hot-set estimate balloons (the paper measures up to 300 GB
// of a 512 GB working set considered hot), and migration placement becomes
// arbitrary.
package ptscan

import (
	"math"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/vm"
)

// SetScan is the result of one scan pass for one zone.
type SetScan struct {
	Set *vm.PageSet
	// ExpectedReads/ExpectedWrites are expected accesses per page of the
	// zone since the previous pass.
	ExpectedReads  float64
	ExpectedWrites float64
	// FracAccessed and FracDirty are the probabilities that a page of
	// the zone has its accessed/dirty bit set at this pass.
	FracAccessed float64
	FracDirty    float64
}

// Scanner models the page-table walk.
type Scanner struct {
	m *machine.Machine
	// Granularity is the page-table leaf size scanned. The DAX mappings
	// of the prototype expose base-page tables, so scans walk 4 KB PTEs
	// even though tiering happens on 2 MB pages.
	Granularity int64
	Model       vm.ScanModel

	snaps map[*vm.PageSet][2]float64 // integral snapshot at last pass
}

// NewScanner returns a scanner over m's address space.
func NewScanner(m *machine.Machine, granularity int64) *Scanner {
	if granularity <= 0 {
		granularity = 4 * 1024
	}
	return &Scanner{
		m:           m,
		Granularity: granularity,
		Model:       vm.DefaultScanModel(),
		snaps:       make(map[*vm.PageSet][2]float64),
	}
}

// PassTime returns the duration of one full scan pass over all mapped
// memory at the configured granularity (Figure 3's cost).
func (s *Scanner) PassTime() int64 {
	return s.Model.ScanTime(s.m.AS.TotalBytes(), s.Granularity)
}

// Complete finishes a pass: returns per-zone scan results, snapshots the
// integrals, and charges TLB-shootdown stalls for the scanned range to all
// running threads (the kernel flushes at a fixed interval as it scans and
// clears).
func (s *Scanner) Complete() []SetScan {
	var out []SetScan
	for _, set := range s.m.RateSets() {
		r := s.m.Rates(set)
		snap := s.snaps[set]
		lr := r.ReadIntegral - snap[0]
		lw := r.WriteIntegral - snap[1]
		s.snaps[set] = [2]float64{r.ReadIntegral, r.WriteIntegral}
		res := SetScan{
			Set:            set,
			ExpectedReads:  lr,
			ExpectedWrites: lw,
			FracAccessed:   1 - math.Exp(-(lr + lw)),
			FracDirty:      1 - math.Exp(-lw),
		}
		out = append(out, res)
	}
	scanned := s.m.AS.TotalBytes() / s.Granularity
	s.m.StallAll(s.Model.ShootdownStall(int(scanned)))
	return out
}
