package ptscan_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/nimble"
	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func run(mgr machine.Manager, cfg gups.Config, dur int64) (float64, *machine.Machine, *gups.GUPS) {
	m := machine.New(machine.DefaultConfig(), mgr)
	g := gups.New(m, cfg)
	m.Warm()
	m.Run(dur)
	return g.Score(), m, g
}

// Scanning a 512 GB working set at 4 KB granularity takes over a second
// per pass; within one pass even the cold zone is touched, so the scanner
// sees everything as accessed — the over-estimation of §5.1.
func TestScannerOverestimatesHotSet(t *testing.T) {
	mgr := ptscan.New(ptscan.HeMemPTAsync())
	_, _, g := run(mgr, gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 1,
	}, 20*sim.Second)
	if mgr.Scans() == 0 {
		t.Fatal("no scan passes completed")
	}
	coldSet := g.Components()[1].Set
	e, ok := mgr.Estimate(coldSet)
	if !ok {
		t.Fatal("no estimate for cold zone")
	}
	if e.FracAccessed < 0.8 {
		t.Errorf("cold zone accessed frac = %.2f; long passes should see ~1", e.FracAccessed)
	}
	// The paper: M.Async considers up to 300 GB of 512 GB hot. Ours
	// should likewise report a hot estimate far above the real 16 GB.
	if hot := mgr.EstimatedHotBytes(); hot < 200*sim.GB {
		t.Errorf("estimated hot = %d GB, want ≫ 16 GB (paper: up to 300 GB)", hot/sim.GB)
	}
}

// Figure 8: PEBS-based HeMem beats both PT-scan variants, and async
// scanning beats the serialized scan+migrate loop.
func TestPEBSBeatsPTScan(t *testing.T) {
	cfg := gups.Config{Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 9}
	const dur = 120 * sim.Second
	pebsScore, _, _ := run(core.New(core.DefaultConfig()), cfg, dur)
	asyncScore, _, _ := run(ptscan.New(ptscan.HeMemPTAsync()), cfg, dur)
	syncScore, _, _ := run(ptscan.New(ptscan.HeMemPTSync()), cfg, dur)

	if pebsScore <= asyncScore {
		t.Errorf("PEBS (%.4f) should beat PT-Async (%.4f)", pebsScore, asyncScore)
	}
	if asyncScore < syncScore {
		t.Errorf("PT-Async (%.4f) should be ≥ PT-Sync (%.4f)", asyncScore, syncScore)
	}
	// Paper: M.Async ≈ 43% of Opt, M.Sync ≈ 18% — well below PEBS.
	if asyncScore > pebsScore*0.8 {
		t.Errorf("PT-Async (%.4f) suspiciously close to PEBS (%.4f)", asyncScore, pebsScore)
	}
}

// Figure 8's "PT Scan" bar: scanning alone (no migration) costs throughput
// via TLB shootdowns — the paper measures 18% versus PEBS sampling. Both
// configurations get the oracle placement (hot set in DRAM) so throughput
// is latency-bound and the stall is visible; with the hot set in NVM both
// would pin against the NVM write-bandwidth ceiling and hide it.
func TestScanOnlyOverhead(t *testing.T) {
	gcfg := gups.Config{Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 4}

	runWithOptPlacement := func(mk func(place func(*vm.Page) vm.Tier) machine.Manager) float64 {
		boot := machine.New(machine.DefaultConfig(), ptscan.New(ptscan.ScanOnly()))
		g := gups.New(boot, gcfg)
		hot := make(map[vm.PageID]bool)
		for _, p := range g.HotPages().Pages() {
			hot[p.ID] = true
		}
		place := func(p *vm.Page) vm.Tier {
			if hot[p.ID] {
				return vm.TierDRAM
			}
			return vm.TierNVM
		}
		mgr := mk(place)
		boot.Mgr = mgr
		mgr.Attach(boot)
		boot.Warm()
		boot.Run(30 * sim.Second)
		return g.Score()
	}

	pebsScore := runWithOptPlacement(func(place func(*vm.Page) vm.Tier) machine.Manager {
		cfg := core.DefaultConfig()
		cfg.NoMigration = true
		cfg.PlaceFunc = place
		return core.New(cfg)
	})
	scanScore := runWithOptPlacement(func(place func(*vm.Page) vm.Tier) machine.Manager {
		opt := ptscan.ScanOnly()
		opt.PlaceFunc = place
		return ptscan.New(opt)
	})
	loss := 1 - scanScore/pebsScore
	if loss < 0.05 || loss > 0.40 {
		t.Errorf("PT scanning overhead = %.0f%%, paper says ~18%%", loss*100)
	}
}

// Nimble: sequential scan+migrate on one kernel thread with copy threads.
// On the hot-set benchmark it trails both HeMem and MM-class performance
// (Figure 6: Nimble reaches only ~25% of MM even when the hot set fits).
func TestNimbleTrailsHeMem(t *testing.T) {
	cfg := gups.Config{Threads: 16, WorkingSet: 256 * sim.GB, HotSet: 16 * sim.GB, Seed: 8}
	const dur = 90 * sim.Second
	he, _, _ := run(core.New(core.DefaultConfig()), cfg, dur)
	nb, _, _ := run(nimble.New(), cfg, dur)
	if nb >= he {
		t.Errorf("Nimble (%.4f) should trail HeMem (%.4f)", nb, he)
	}
	if nb < he*0.05 {
		t.Errorf("Nimble (%.4f) implausibly bad vs HeMem (%.4f)", nb, he)
	}
}

// Nimble uses migration copy threads, which consume cores while busy.
func TestNimbleUsesCopyThreads(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), nimble.New())
	gups.New(m, gups.Config{Threads: 16, WorkingSet: 256 * sim.GB, HotSet: 16 * sim.GB, Seed: 2})
	m.Warm()
	m.Run(20 * sim.Second)
	if m.Migrator.Stats().Pages == 0 {
		t.Fatal("Nimble never migrated")
	}
	if m.Migrator.Backend().Threads() != 4 {
		t.Fatalf("Nimble backend threads = %v, want 4", m.Migrator.Backend().Threads())
	}
}

// DRAM accounting: scanning managers never over-commit DRAM.
func TestPTScanDRAMCapacity(t *testing.T) {
	for _, opt := range []ptscan.Options{ptscan.HeMemPTAsync(), ptscan.HeMemPTSync(), nimble.Options()} {
		_, m, _ := run(ptscan.New(opt), gups.Config{
			Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 16 * sim.GB, Seed: 5,
		}, 30*sim.Second)
		var dram int64
		for _, r := range m.AS.Regions {
			dram += r.Bytes(vm.TierDRAM)
		}
		if dram > m.Cfg.DRAMSize {
			t.Errorf("%s: DRAM over-committed (%d GB)", opt.Name, dram/sim.GB)
		}
	}
}

// Sync mode delays scanning behind migration ("long-running migrations may
// delay scanning and statistics gathering", §2.4): with migration kept
// busy by a shifting hot set, the sync variant completes fewer passes.
func TestSyncDelaysScanning(t *testing.T) {
	// The write-skew workload keeps migration busy: the dirty zone's key
	// dominates, so the policy continually promotes toward DRAM, and in
	// sync mode each batch delays the next scan pass.
	cfg := gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
		WriteOnlyHot: 128 * sim.GB, Seed: 6,
	}
	async := ptscan.New(ptscan.HeMemPTAsync())
	run(async, cfg, 60*sim.Second)
	syncm := ptscan.New(ptscan.HeMemPTSync())
	run(syncm, cfg, 60*sim.Second)
	if syncm.Scans() >= async.Scans() {
		t.Errorf("sync scans (%d) should be < async scans (%d)", syncm.Scans(), async.Scans())
	}
}
