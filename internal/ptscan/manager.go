package ptscan

import (
	"github.com/tieredmem/hemem/internal/dma"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Options configures a scanning tier manager.
type Options struct {
	// Name labels the manager in reports ("HeMem-PT-Async", "Nimble").
	Name string
	// Async runs scanning on its own thread so passes are not delayed by
	// migration (the paper's M.Async); otherwise one thread serializes
	// scan → migrate → scan (M.Sync, and Nimble's kernel thread).
	Async bool
	// UseDMA selects the I/OAT copy engine; Nimble uses copy threads.
	UseDMA bool
	// CopyThreads is the software-copy thread count when !UseDMA.
	CopyThreads int
	// Granularity is the scanned page-table leaf size (default 4 KB).
	Granularity int64
	// HotCut: zones with accessed fraction ≥ HotCut are promotion
	// candidates; ColdCut: DRAM pages of zones below it are evictable.
	HotCut, ColdCut float64
	// MigRateCap bounds migration bandwidth.
	MigRateCap float64
	// FreeDRAMTarget keeps DRAM headroom for allocations.
	FreeDRAMTarget int64
	// PolicyInterval is the async-mode migration tick.
	PolicyInterval int64
	// MaxCycleBytes caps migration enqueued per scan cycle (sync mode).
	MaxCycleBytes int64
	// BGThreads is the constant background core consumption (the
	// scanning/policy threads); migration copy threads are counted by
	// the migrator while active.
	BGThreads float64
	// MigrationEnabled disables all movement when false (Figure 8's
	// "PT Scan" bar: scanning overhead in isolation).
	MigrationEnabled bool
	// WritePriority promotes dirty zones first.
	WritePriority bool
	// PlaceFunc, when set, overrides DRAM-first placement on first touch
	// (Figure 8's manual-placement configurations).
	PlaceFunc func(p *vm.Page) vm.Tier
}

// HeMemPTAsync returns options for HeMem with asynchronous page-table
// scanning in place of PEBS (Figures 8, 9, 15, 16).
func HeMemPTAsync() Options {
	return Options{
		Name: "HeMem-PT-Async", Async: true, UseDMA: true,
		Granularity: 4 * 1024, HotCut: 0.5, ColdCut: 0.5,
		MigRateCap: sim.GBps(10), FreeDRAMTarget: sim.GB,
		PolicyInterval: 10 * sim.Millisecond, MaxCycleBytes: 4 * sim.GB,
		BGThreads: 2.5, MigrationEnabled: true, WritePriority: true,
	}
}

// HeMemPTSync returns options for the fully serialized variant: one thread
// scans and migrates in turn (Figure 8's M.Sync).
func HeMemPTSync() Options {
	o := HeMemPTAsync()
	o.Name = "HeMem-PT-Sync"
	o.Async = false
	o.BGThreads = 1.5
	return o
}

// ScanOnly returns options for Figure 8's "PT Scan" bar: page-table
// scanning runs (with its shootdown cost) but nothing migrates.
func ScanOnly() Options {
	o := HeMemPTAsync()
	o.Name = "HeMem-PT-ScanOnly"
	o.MigrationEnabled = false
	return o
}

// Manager is a scanning-based tier manager.
type Manager struct {
	opt     Options
	m       *machine.Machine
	scanner *Scanner

	rng        *sim.Rand
	est        map[*vm.PageSet]SetScan
	estOrder   []*vm.PageSet
	cursors    map[*vm.PageSet]int
	dramUsed   int64
	lastPolicy int64
	scans      int64
}

// New builds a scanning manager from options.
func New(opt Options) *Manager {
	if opt.Granularity == 0 {
		opt = HeMemPTAsync()
	}
	return &Manager{
		opt:     opt,
		est:     make(map[*vm.PageSet]SetScan),
		cursors: make(map[*vm.PageSet]int),
	}
}

// Name implements machine.Manager.
func (g *Manager) Name() string { return g.opt.Name }

// Scans returns the number of completed scan passes.
func (g *Manager) Scans() int64 { return g.scans }

// Estimate returns the manager's current scan estimate for a zone.
func (g *Manager) Estimate(set *vm.PageSet) (SetScan, bool) {
	e, ok := g.est[set]
	return e, ok
}

// EstimatedHotBytes reports how much memory the scanner currently
// considers hot — the paper's over-estimation metric (M.Sync considers
// nearly all of 512 GB hot; M.Async up to 300 GB).
func (g *Manager) EstimatedHotBytes() int64 {
	var b float64
	for _, set := range g.estOrder {
		e := g.est[set]
		if e.FracAccessed >= g.opt.HotCut {
			b += e.FracAccessed * float64(set.Bytes())
		}
	}
	return int64(b)
}

// Attach implements machine.Manager.
func (g *Manager) Attach(m *machine.Machine) {
	g.m = m
	g.rng = sim.NewRand(m.Cfg.Seed ^ 0x9751)
	g.scanner = NewScanner(m, g.opt.Granularity)
	m.Migrator.RateCap = g.opt.MigRateCap
	if g.opt.UseDMA {
		m.Migrator.SetBackend(machine.DMABackend{Engine: dma.New(dma.DefaultConfig())})
	} else {
		ct := g.opt.CopyThreads
		if ct <= 0 {
			ct = 4
		}
		m.Migrator.SetBackend(machine.ThreadBackend{Copier: dma.NewThreadCopier(ct)})
	}
	g.scheduleScan(m.Clock.Now())
	if g.opt.Async && g.opt.MigrationEnabled {
		var tick func(now int64)
		tick = func(now int64) {
			g.policy(now)
			m.Events.Schedule(now+g.opt.PolicyInterval, tick)
		}
		m.Events.Schedule(m.Clock.Now()+g.opt.PolicyInterval, tick)
	}
}

// scheduleScan queues the completion of the next scan pass. Passes take at
// least one quantum so an empty address space cannot spin the event loop.
func (g *Manager) scheduleScan(now int64) {
	pass := g.scanner.PassTime()
	if pass < g.m.Cfg.Quantum {
		pass = g.m.Cfg.Quantum
	}
	g.m.Events.Schedule(now+pass, g.scanDone)
}

// scanDone finishes a pass: refresh estimates; in sync mode, run migration
// inline and delay the next pass by the time the migrations take on the
// shared thread (the mechanism that starves Nimble's statistics).
func (g *Manager) scanDone(now int64) {
	g.scans++
	for _, res := range g.scanner.Complete() {
		if _, seen := g.est[res.Set]; !seen {
			g.estOrder = append(g.estOrder, res.Set)
		}
		g.est[res.Set] = res
	}
	delay := int64(0)
	if !g.opt.Async && g.opt.MigrationEnabled {
		enq := g.policy(now)
		if tp := g.m.Migrator.Backend().Throughput(); tp > 0 {
			delay = int64(float64(enq) / tp)
		}
	}
	g.scheduleScan(now + delay)
}

// PageIn implements machine.Manager: DRAM-first allocation, like the
// kernel would do for a NUMA node ordering local before far memory.
func (g *Manager) PageIn(p *vm.Page) {
	ps := g.m.Cfg.PageSize
	want := vm.TierDRAM
	if g.opt.PlaceFunc != nil {
		want = g.opt.PlaceFunc(p)
	}
	if want == vm.TierDRAM && g.dramUsed+ps <= g.m.Cfg.DRAMSize {
		g.dramUsed += ps
		p.SetTier(vm.TierDRAM)
	} else {
		p.SetTier(vm.TierNVM)
	}
}

// OnQuantum implements machine.Manager.
func (g *Manager) OnQuantum(now, dt int64) {}

// ActiveThreads implements machine.Manager.
func (g *Manager) ActiveThreads() float64 { return g.opt.BGThreads }

// OnMigrated implements machine.MigrationObserver (placement bookkeeping
// happens eagerly at enqueue time; nothing to do on completion).
func (g *Manager) OnMigrated(p *vm.Page) {}

// OnMigrationFailed implements machine.MigrationFailureObserver: undo the
// DRAM space committed (or released) at enqueue time when a migration is
// abandoned after exhausting its retries.
func (g *Manager) OnMigrationFailed(p *vm.Page, dst vm.Tier) {
	ps := g.m.Cfg.PageSize
	switch {
	case dst == vm.TierDRAM:
		g.dramUsed -= ps // failed promotion
	case dst == vm.TierNVM && p.Tier == vm.TierDRAM:
		g.dramUsed += ps // failed demotion
	}
}

// policy makes one round of migration decisions from the zone estimates
// and returns the bytes enqueued. Budgeting: async mode uses the rate cap
// times the elapsed interval; sync mode uses MaxCycleBytes.
func (g *Manager) policy(now int64) int64 {
	ps := g.m.Cfg.PageSize
	var budget int64
	if g.opt.Async {
		elapsed := now - g.lastPolicy
		g.lastPolicy = now
		budget = int64(g.opt.MigRateCap * float64(elapsed))
		if backlog := int64(g.m.Migrator.QueuedBytes()); backlog >= budget {
			return 0
		}
	} else {
		budget = g.opt.MaxCycleBytes
		if backlog := int64(g.m.Migrator.QueuedBytes()); backlog >= budget {
			return 0
		}
	}

	// Order zones: eviction candidates coldest-first, promotion
	// candidates dirtiest/hottest-first. Accessed/dirty bits are binary,
	// so after a long pass distinct zones collapse onto the same
	// quantized key — the scanner genuinely cannot tell them apart. Ties
	// are then broken by picking weighted by zone size, never by the
	// order the workload happened to declare its sets.
	zones := make([]SetScan, 0, len(g.estOrder))
	for _, s := range g.estOrder {
		zones = append(zones, g.est[s])
	}

	var enq int64
	// Maintain free-DRAM headroom by evicting cold-zone pages.
	for g.dramFree() < g.opt.FreeDRAMTarget && budget > 0 {
		ez := g.chooseEvict(zones, 1<<30)
		if ez == nil || !g.demoteFrom(ez) {
			break
		}
		budget -= ps
		enq += ps
	}
	// Promote accessed zones' NVM pages, swapping against colder DRAM.
	for budget > 0 {
		pz := g.choosePromote(zones)
		if pz == nil {
			break
		}
		if g.dramFree() < g.opt.FreeDRAMTarget+ps {
			// Swap only against a zone that looks clearly colder
			// (two quantization levels): with binary accessed bits
			// saturating under load, a zero-margin swap degenerates
			// into bursts of same-temperature churn whenever the
			// estimate flickers.
			ez := g.chooseEvict(zones, g.key(g.estOf(pz))-1)
			if ez == nil || !g.demoteFrom(ez) {
				break // no colder DRAM: stop migrating
			}
			budget -= ps
			enq += ps
		}
		if g.promoteFrom(pz) {
			budget -= ps
			enq += ps
		} else {
			break
		}
	}
	return enq
}

// key quantizes a zone's scan estimate into a priority: dirty-dominant
// when write priority is on, coarsened to what binary bits can resolve.
func (g *Manager) key(e SetScan) int {
	acc := int(e.FracAccessed*8 + 0.5)
	if !g.opt.WritePriority {
		return acc
	}
	return int(e.FracDirty*8+0.5)*16 + acc
}

// estOf returns the current estimate for the zone containing set.
func (g *Manager) estOf(set *vm.PageSet) SetScan { return g.est[set] }

// choosePromote picks a zone to promote from: among the zones with the
// highest key that still have NVM pages and look accessed, weighted by
// NVM page count.
func (g *Manager) choosePromote(zones []SetScan) *vm.PageSet {
	best := -1
	for _, z := range zones {
		if z.FracAccessed < g.opt.HotCut || z.Set.Count(vm.TierNVM) == 0 {
			continue
		}
		if k := g.key(z); k > best {
			best = k
		}
	}
	if best < 0 {
		return nil
	}
	return g.weighted(zones, func(z SetScan) int {
		if z.FracAccessed < g.opt.HotCut || g.key(z) != best {
			return 0
		}
		return z.Set.Count(vm.TierNVM)
	})
}

// chooseEvict picks a zone to evict from: among zones with DRAM pages and
// key strictly below limit, the lowest key wins; ties weighted by DRAM
// page count.
func (g *Manager) chooseEvict(zones []SetScan, limit int) *vm.PageSet {
	best := limit
	found := false
	for _, z := range zones {
		if z.Set.Count(vm.TierDRAM) == 0 {
			continue
		}
		if k := g.key(z); k < best {
			best = k
			found = true
		} else if k == best && k < limit {
			found = true
		}
	}
	if !found {
		return nil
	}
	return g.weighted(zones, func(z SetScan) int {
		if g.key(z) != best {
			return 0
		}
		return z.Set.Count(vm.TierDRAM)
	})
}

// weighted picks a zone with probability proportional to weight.
func (g *Manager) weighted(zones []SetScan, weight func(SetScan) int) *vm.PageSet {
	total := 0
	for _, z := range zones {
		total += weight(z)
	}
	if total == 0 {
		return nil
	}
	pick := g.rng.Intn(total)
	for _, z := range zones {
		w := weight(z)
		if pick < w {
			return z.Set
		}
		pick -= w
	}
	return nil
}

// dramFree returns uncommitted DRAM bytes.
func (g *Manager) dramFree() int64 { return g.m.Cfg.DRAMSize - g.dramUsed }

// promoteFrom moves one NVM page of set to DRAM.
func (g *Manager) promoteFrom(set *vm.PageSet) bool {
	p := g.pick(set, vm.TierNVM)
	if p == nil || !g.m.Migrator.Enqueue(p, vm.TierDRAM) {
		return false
	}
	g.dramUsed += g.m.Cfg.PageSize
	return true
}

// demoteFrom moves one DRAM page of set to NVM.
func (g *Manager) demoteFrom(set *vm.PageSet) bool {
	p := g.pick(set, vm.TierDRAM)
	if p == nil || !g.m.Migrator.Enqueue(p, vm.TierNVM) {
		return false
	}
	g.dramUsed -= g.m.Cfg.PageSize
	return true
}

// pick returns a non-migrating page of set in tier t, walking a persistent
// cursor (pages within a zone are statistically identical).
func (g *Manager) pick(set *vm.PageSet, t vm.Tier) *vm.Page {
	if set.Count(t) == 0 {
		return nil
	}
	n := set.Len()
	cur := g.cursors[set]
	for i := 0; i < n; i++ {
		p := set.Page((cur + i) % n)
		if p.Tier == t && !p.Migrating {
			g.cursors[set] = (cur + i + 1) % n
			return p
		}
	}
	return nil
}
