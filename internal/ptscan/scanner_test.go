package ptscan

import (
	"math"
	"testing"

	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/xmem"
)

func TestPassTimeMatchesScanModel(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	m.AS.Map("data", 64*sim.GB)
	s := NewScanner(m, 4*1024)
	want := s.Model.ScanTime(64*sim.GB, 4*1024)
	if got := s.PassTime(); got != want {
		t.Fatalf("PassTime = %d, want %d", got, want)
	}
	// Default granularity falls back to 4K.
	if s2 := NewScanner(m, 0); s2.Granularity != 4*1024 {
		t.Fatalf("default granularity = %d", s2.Granularity)
	}
}

// Scan results convert access integrals into bit probabilities: the first
// pass sees everything accumulated so far, the second only the delta.
func TestCompleteIntegralDeltas(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 8 * sim.GB})
	m.Warm()
	s := NewScanner(m, 4*1024)

	m.Run(200 * sim.Millisecond)
	res1 := s.Complete()
	if len(res1) != 1 {
		t.Fatalf("zones = %d, want 1", len(res1))
	}
	set := g.Components()[0].Set
	wantPerPage := g.Updates() / float64(set.Len())
	if math.Abs(res1[0].ExpectedReads-wantPerPage)/wantPerPage > 0.02 {
		t.Fatalf("first pass reads/page = %v, want %v", res1[0].ExpectedReads, wantPerPage)
	}
	wantFrac := 1 - math.Exp(-(res1[0].ExpectedReads + res1[0].ExpectedWrites))
	if math.Abs(res1[0].FracAccessed-wantFrac) > 1e-9 {
		t.Fatalf("FracAccessed = %v, want %v", res1[0].FracAccessed, wantFrac)
	}

	// Without further traffic, the next pass sees zero delta.
	res2 := s.Complete()
	if res2[0].ExpectedReads != 0 || res2[0].FracAccessed != 0 {
		t.Fatalf("second pass without traffic = %+v", res2[0])
	}
}

// Dirty-bit probabilities track only the write integral.
func TestCompleteDirtySplit(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 64 * sim.GB, HotSet: 32 * sim.GB,
		WriteOnlyHot: 16 * sim.GB, Seed: 2,
	})
	m.Warm()
	s := NewScanner(m, 4*1024)
	m.Run(sim.Second)
	var sawWriteOnly, sawReadOnly bool
	for _, r := range s.Complete() {
		switch r.Set {
		case g.WriteOnlyPages():
			sawWriteOnly = true
			if r.ExpectedReads != 0 || r.ExpectedWrites == 0 {
				t.Fatalf("write-only zone: %+v", r)
			}
			if r.FracDirty != r.FracAccessed {
				t.Fatal("write-only zone should be fully dirty among accessed")
			}
		case g.HotPages():
			sawReadOnly = true
			if r.ExpectedWrites != 0 {
				t.Fatalf("read-only zone has writes: %+v", r)
			}
			if r.FracDirty != 0 {
				t.Fatal("read-only zone should have no dirty bits")
			}
		}
	}
	if !sawWriteOnly || !sawReadOnly {
		t.Fatal("expected zones missing from scan results")
	}
}

// Completing a pass charges the shootdown stall for the scanned range.
func TestCompleteChargesStall(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	g := gups.New(m, gups.Config{Threads: 16, WorkingSet: 8 * sim.GB})
	m.Warm()
	m.Run(100 * sim.Millisecond)
	base := g.Updates()
	m.Run(100 * sim.Millisecond)
	freeRate := g.Updates() - base

	s := NewScanner(m, 4*1024)
	s.Complete() // deposits the stall for ~2M scanned entries
	before := g.Updates()
	m.Run(100 * sim.Millisecond)
	stalled := g.Updates() - before
	if stalled >= freeRate*0.99 {
		t.Fatalf("stall had no effect: %v vs %v ops per 100ms", stalled, freeRate)
	}
}
