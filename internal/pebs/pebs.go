// Package pebs models processor event-based sampling as HeMem uses it
// (§3.1): the CPU writes a record into a preallocated buffer once every
// sample-period memory accesses, distinguishing loads served from DRAM
// (MEM_LOAD_L3_MISS_RETIRED.LOCAL_DRAM), loads served from NVM
// (MEM_LOAD_RETIRED.LOCAL_PMM), and all stores
// (MEM_INST_RETIRED.ALL_STORES), each tagged with the virtual address (here:
// the page) of the sampled instruction.
//
// The model preserves the two failure modes the paper's sensitivity study
// (Figure 10) exposes: at low sample periods the PEBS thread cannot keep up
// and records are dropped from the full buffer; at high periods samples
// arrive too rarely to track the hot set.
package pebs

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/vm"
)

// Kind classifies a sample by the performance counter that produced it.
type Kind uint8

const (
	LoadDRAM Kind = iota
	LoadNVM
	Store
)

func (k Kind) String() string {
	switch k {
	case LoadDRAM:
		return "load-dram"
	case LoadNVM:
		return "load-nvm"
	default:
		return "store"
	}
}

// Record is one PEBS sample.
type Record struct {
	Page vm.PageID
	Kind Kind
}

// Buffer is the fixed-capacity sample buffer shared between the (simulated)
// CPU and the PEBS reader thread. When full, new samples are dropped and
// counted, exactly like a real PEBS buffer overrun.
type Buffer struct {
	buf     []Record
	head    int
	n       int
	pushed  uint64
	dropped uint64
}

// NewBuffer allocates a buffer holding capacity records. Capacity must be
// positive.
func NewBuffer(capacity int) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("pebs: buffer capacity must be positive, got %d", capacity)
	}
	return &Buffer{buf: make([]Record, capacity)}, nil
}

// Push appends a record, returning false (and counting a drop) if full.
func (b *Buffer) Push(r Record) bool {
	if b.n == len(b.buf) {
		b.dropped++
		return false
	}
	b.buf[(b.head+b.n)%len(b.buf)] = r
	b.n++
	b.pushed++
	return true
}

// PushBatch appends recs, dropping (and counting) the suffix that does
// not fit. It is the bulk form of Push: the ring is written with at most
// two copies instead of a modulo and a call per record. Accepted count,
// ring contents, and the pushed/dropped counters match a sequential
// Push of the same records exactly. Returns how many were accepted.
func (b *Buffer) PushBatch(recs []Record) int {
	n := len(recs)
	if free := len(b.buf) - b.n; n > free {
		b.dropped += uint64(n - free)
		n = free
	}
	if n == 0 {
		return 0
	}
	tail := (b.head + b.n) % len(b.buf)
	first := len(b.buf) - tail
	if first > n {
		first = n
	}
	copy(b.buf[tail:tail+first], recs[:first])
	copy(b.buf[:n-first], recs[first:n])
	b.n += n
	b.pushed += uint64(n)
	return n
}

// Pop removes the oldest record.
func (b *Buffer) Pop() (Record, bool) {
	if b.n == 0 {
		return Record{}, false
	}
	r := b.buf[b.head]
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	return r, true
}

// PopBatch removes up to len(dst) of the oldest records into dst and
// returns how many were copied. It is the bulk form of Pop: the ring is
// drained with at most two copies instead of a call per record, which is
// what keeps the reader's hot path allocation- and call-free.
func (b *Buffer) PopBatch(dst []Record) int {
	n := b.n
	if n > len(dst) {
		n = len(dst)
	}
	if n == 0 {
		return 0
	}
	first := len(b.buf) - b.head
	if first > n {
		first = n
	}
	copy(dst, b.buf[b.head:b.head+first])
	copy(dst[first:], b.buf[:n-first])
	b.head = (b.head + n) % len(b.buf)
	b.n -= n
	return n
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int { return b.n }

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return len(b.buf) }

// Pushed returns the total number of records successfully written.
func (b *Buffer) Pushed() uint64 { return b.pushed }

// Dropped returns the number of records lost to buffer overruns.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// DropFraction returns dropped/(dropped+pushed), the metric of Figure 10.
func (b *Buffer) DropFraction() float64 {
	total := b.pushed + b.dropped
	if total == 0 {
		return 0
	}
	return float64(b.dropped) / float64(total)
}

// Class distinguishes the two counter groups HeMem programs: loads (which
// PEBS further attributes to DRAM or NVM by the serving memory) and stores.
type Class uint8

const (
	ClassLoad Class = iota
	ClassStore
)

// Sampler turns an analytic stream of memory accesses into discrete PEBS
// records at the configured period. The machine feeds it fractional access
// counts each quantum; a carry accumulator keeps long-run sample counts
// exact regardless of quantum size.
type Sampler struct {
	// Period is the number of memory accesses per sample (the paper's
	// default is 5,000).
	Period float64

	buf   *Buffer
	carry [2]float64
}

// NewSampler creates a sampler with the given period writing into buf.
// Period must be positive and buf non-nil.
func NewSampler(period float64, buf *Buffer) (*Sampler, error) {
	if period <= 0 {
		return nil, fmt.Errorf("pebs: sample period must be positive, got %v", period)
	}
	if buf == nil {
		return nil, fmt.Errorf("pebs: sampler needs a buffer")
	}
	return &Sampler{Period: period, buf: buf}, nil
}

// Buffer returns the buffer the sampler writes to.
func (s *Sampler) Buffer() *Buffer { return s.buf }

// Take records that n accesses of class c occurred and returns how many
// samples they produce at the configured period. The caller generates that
// many records and pushes them into Buffer directly; this is the batch
// form of Feed, avoiding a closure call per sample on the machine's
// per-quantum hot path.
//
// The carry arithmetic is bit-compatible with the historical one-at-a-time
// decrement loop: for carry < 2^52, subtracting the integer sample count in
// one step yields the same float64 as repeated unit decrements, so seeded
// runs are reproducible across both APIs.
func (s *Sampler) Take(n float64, c Class) int {
	s.carry[c] += n / s.Period
	k := int(s.carry[c])
	if k > 0 {
		s.carry[c] -= float64(k)
	}
	return k
}

// Feed records that n accesses of class c occurred, sampling records via
// pick. pick is called once per emitted sample and must return the page
// the sampled instruction touched — drawn from the workload's current
// access distribution — along with the counter that fired (for loads,
// LoadDRAM vs LoadNVM depending on which memory served it).
func (s *Sampler) Feed(n float64, c Class, pick func() Record) {
	for k := s.Take(n, c); k > 0; k-- {
		s.buf.Push(pick())
	}
}

// Reader models HeMem's dedicated PEBS thread: it drains the buffer at a
// bounded processing rate, handing each record to the classifier. If the
// sampler outpaces the reader, the buffer fills and samples drop.
type Reader struct {
	// RatePerSec is the reader's processing capacity in records per
	// second of simulated time (classification involves a page lookup and
	// counter updates per record).
	RatePerSec float64

	carry float64
}

// DefaultReaderRate is the calibrated per-thread record-processing
// capacity. With GUPS at ~0.1 Gops/s, sample periods below ~1k outpace
// this rate and drop a large fraction of samples (the paper observes up to
// 30% dropped), while the default 5k period drops essentially none,
// matching Figure 10.
const DefaultReaderRate = 200_000

// NewReader returns a reader with the given capacity (records/second).
// The rate must be positive.
func NewReader(ratePerSec float64) (*Reader, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("pebs: reader rate must be positive, got %v", ratePerSec)
	}
	return &Reader{RatePerSec: ratePerSec}, nil
}

// Drain processes up to its rate budget for a quantum of dt nanoseconds,
// invoking consume for each record, and returns the number processed.
func (r *Reader) Drain(buf *Buffer, dt int64, consume func(Record)) int {
	r.carry += r.RatePerSec * float64(dt) / 1e9
	processed := 0
	for r.carry >= 1 {
		rec, ok := buf.Pop()
		if !ok {
			break
		}
		r.carry--
		consume(rec)
		processed++
	}
	r.Settle(dt)
	return processed
}

// DrainBatch pops up to the rate budget for dt (bounded by len(dst))
// into dst and returns how many records were copied. Call it with dt for
// the first batch of a quantum and dt = 0 for follow-up batches when dst
// filled completely, then Settle(dt) once the quantum's draining is done.
// The budget arithmetic matches Drain exactly, so seeded runs produce
// bit-identical results through either API.
func (r *Reader) DrainBatch(buf *Buffer, dt int64, dst []Record) int {
	if dt > 0 {
		r.carry += r.RatePerSec * float64(dt) / 1e9
	}
	k := int(r.carry)
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	n := buf.PopBatch(dst[:k])
	if n > 0 {
		r.carry -= float64(n)
	}
	return n
}

// Settle caps banked budget at one quantum's allowance: an idle reader
// cannot "save up" capacity it didn't use.
func (r *Reader) Settle(dt int64) {
	if max := r.RatePerSec * float64(dt) / 1e9; r.carry > max {
		r.carry = max
	}
}
