package pebs

import (
	"testing"
	"testing/quick"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// mustBuffer/mustSampler/mustReader wrap the error-returning constructors
// for tests that only use valid parameters.
func mustBuffer(t *testing.T, capacity int) *Buffer {
	t.Helper()
	b, err := NewBuffer(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustSampler(t *testing.T, period float64, buf *Buffer) *Sampler {
	t.Helper()
	s, err := NewSampler(period, buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustReader(t *testing.T, rate float64) *Reader {
	t.Helper()
	r, err := NewReader(rate)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBufferFIFO(t *testing.T) {
	b := mustBuffer(t, 4)
	for i := 0; i < 3; i++ {
		if !b.Push(Record{Page: vm.PageID(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 0; i < 3; i++ {
		r, ok := b.Pop()
		if !ok || r.Page != vm.PageID(i) {
			t.Fatalf("pop %d = %v,%v", i, r.Page, ok)
		}
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestBufferOverrunDrops(t *testing.T) {
	b := mustBuffer(t, 2)
	b.Push(Record{Page: 1})
	b.Push(Record{Page: 2})
	if b.Push(Record{Page: 3}) {
		t.Fatal("push into full buffer succeeded")
	}
	if b.Dropped() != 1 || b.Pushed() != 2 {
		t.Fatalf("dropped=%d pushed=%d", b.Dropped(), b.Pushed())
	}
	if got := b.DropFraction(); got < 0.33 || got > 0.34 {
		t.Fatalf("DropFraction = %v, want 1/3", got)
	}
	// Draining frees space again.
	b.Pop()
	if !b.Push(Record{Page: 4}) {
		t.Fatal("push after pop failed")
	}
}

func TestBufferWrapAround(t *testing.T) {
	b := mustBuffer(t, 3)
	next := vm.PageID(0)
	expect := vm.PageID(0)
	for round := 0; round < 50; round++ {
		for b.Push(Record{Page: next}) {
			next++
		}
		for {
			r, ok := b.Pop()
			if !ok {
				break
			}
			if r.Page != expect {
				t.Fatalf("round %d: got %d want %d", round, r.Page, expect)
			}
			expect++
		}
	}
}

func TestSamplerPeriod(t *testing.T) {
	b := mustBuffer(t, 1<<20)
	s := mustSampler(t, 5000, b)
	picked := 0
	pick := func() Record { picked++; return Record{Page: 7, Kind: Store} }

	// 1M accesses at period 5000 → exactly 200 samples.
	for i := 0; i < 100; i++ {
		s.Feed(10_000, ClassStore, pick)
	}
	if b.Len() != 200 || picked != 200 {
		t.Fatalf("samples = %d (picked %d), want 200", b.Len(), picked)
	}
	r, _ := b.Pop()
	if r.Kind != Store || r.Page != 7 {
		t.Fatalf("record = %+v", r)
	}
}

func TestSamplerFractionalCarry(t *testing.T) {
	b := mustBuffer(t, 1<<16)
	s := mustSampler(t, 1000, b)
	// Feed 0.1 accesses 20,000 times = 2000 accesses = 2 samples.
	for i := 0; i < 20000; i++ {
		s.Feed(0.1, ClassLoad, func() Record { return Record{Page: 1, Kind: LoadNVM} })
	}
	if got := int(b.Pushed()); got < 1 || got > 3 {
		t.Fatalf("fractional feed produced %d samples, want ~2", got)
	}
}

func TestSamplerKindsIndependent(t *testing.T) {
	b := mustBuffer(t, 1<<16)
	s := mustSampler(t, 100, b)
	s.Feed(99, ClassStore, func() Record { return Record{Page: 1, Kind: Store} })
	s.Feed(99, ClassLoad, func() Record { return Record{Page: 1, Kind: LoadNVM} })
	if b.Len() != 0 {
		t.Fatal("kinds should carry independently below one period")
	}
	s.Feed(1, ClassStore, func() Record { return Record{Page: 1, Kind: Store} })
	if b.Len() != 1 {
		t.Fatal("store carry lost")
	}
}

func TestReaderBoundedRate(t *testing.T) {
	b := mustBuffer(t, 1<<16)
	for i := 0; i < 1000; i++ {
		b.Push(Record{Page: vm.PageID(i)})
	}
	r := mustReader(t, 100_000) // 100k/s
	var got []Record
	n := r.Drain(b, 1*sim.Millisecond, func(rec Record) { got = append(got, rec) })
	if n != 100 {
		t.Fatalf("drained %d in 1ms at 100k/s, want 100", n)
	}
	if b.Len() != 900 {
		t.Fatalf("buffer len = %d, want 900", b.Len())
	}
	// Budget does not bank across idle quanta beyond one quantum.
	empty := mustBuffer(t, 16)
	r2 := mustReader(t, 100_000)
	r2.Drain(empty, 100*sim.Millisecond, func(Record) {})
	for i := 0; i < 16; i++ {
		empty.Push(Record{})
	}
	n = r2.Drain(empty, 1*sim.Millisecond, func(Record) {})
	if n > 16 {
		t.Fatalf("reader banked unbounded budget: %d", n)
	}
}

// End-to-end: when generation rate exceeds reader rate, drops occur; when
// below, none do (the Figure 10 mechanism).
func TestDropsOnlyWhenOutpaced(t *testing.T) {
	run := func(period float64) float64 {
		b := mustBuffer(t, 4096)
		s := mustSampler(t, period, b)
		r := mustReader(t, DefaultReaderRate)
		// 0.1 Gops/s for 2 simulated seconds, 1 ms quanta.
		for i := 0; i < 2000; i++ {
			s.Feed(100_000, ClassStore, func() Record { return Record{Page: 1, Kind: Store} })
			r.Drain(b, sim.Millisecond, func(Record) {})
		}
		return b.DropFraction()
	}
	if d := run(250); d < 0.1 {
		t.Errorf("period 250: drop fraction %.3f, want >10%% (paper: up to 30%%)", d)
	}
	if d := run(5000); d > 0.001 {
		t.Errorf("period 5000: drop fraction %.4f, want ~0", d)
	}
}

// Property: pushed + dropped equals total offered, and Len never exceeds
// capacity.
func TestBufferConservation(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%64) + 1
		b, err := NewBuffer(capacity)
		if err != nil {
			return false
		}
		var offered, popped uint64
		for _, push := range ops {
			if push {
				b.Push(Record{})
				offered++
			} else if _, ok := b.Pop(); ok {
				popped++
			}
			if b.Len() > b.Cap() {
				return false
			}
		}
		return b.Pushed()+b.Dropped() == offered && b.Pushed()-popped == uint64(b.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewBuffer(0); err == nil {
		t.Error("NewBuffer(0): no error on invalid capacity")
	}
	if _, err := NewBuffer(-5); err == nil {
		t.Error("NewBuffer(-5): no error on negative capacity")
	}
	if _, err := NewSampler(0, mustBuffer(t, 1)); err == nil {
		t.Error("NewSampler(0, buf): no error on invalid period")
	}
	if _, err := NewSampler(100, nil); err == nil {
		t.Error("NewSampler(_, nil): no error on nil buffer")
	}
	if _, err := NewReader(0); err == nil {
		t.Error("NewReader(0): no error on invalid rate")
	}
}

func TestKindString(t *testing.T) {
	if LoadDRAM.String() != "load-dram" || LoadNVM.String() != "load-nvm" || Store.String() != "store" {
		t.Fatal("Kind strings wrong")
	}
}

// TestPushBatchMatchesSequentialPush drives two buffers through the same
// record stream — one via PushBatch, one via per-record Push — across
// fills, drains, wrap-around, and overflow, and requires identical ring
// contents and pushed/dropped counters throughout.
func TestPushBatchMatchesSequentialPush(t *testing.T) {
	a, _ := NewBuffer(7)
	b, _ := NewBuffer(7)
	next := vm.PageID(0)
	gen := func(n int) []Record {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{Page: next, Kind: Kind(int(next) % 3)}
			next++
		}
		return recs
	}
	check := func(step string) {
		t.Helper()
		if a.Len() != b.Len() || a.Pushed() != b.Pushed() || a.Dropped() != b.Dropped() {
			t.Fatalf("%s: batch len/pushed/dropped = %d/%d/%d, sequential = %d/%d/%d",
				step, a.Len(), a.Pushed(), a.Dropped(), b.Len(), b.Pushed(), b.Dropped())
		}
	}
	drainBoth := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			ra, oka := a.Pop()
			rb, okb := b.Pop()
			if oka != okb || ra != rb {
				t.Fatalf("drain %d: batch (%v, %v) != sequential (%v, %v)", i, ra, oka, rb, okb)
			}
		}
	}
	// Batch sizes chosen to hit: partial fill, exact fill, overflow of a
	// full buffer, overflow of a partly full wrapped buffer, empty batch.
	for _, n := range []int{3, 4, 9, 0, 2, 5} {
		recs := gen(n)
		accepted := a.PushBatch(recs)
		wantAccepted := 0
		for _, r := range recs {
			if b.Push(r) {
				wantAccepted++
			}
		}
		if accepted != wantAccepted {
			t.Fatalf("PushBatch(%d recs) accepted %d, sequential accepted %d", n, accepted, wantAccepted)
		}
		check("after push")
		drainBoth(2)
		check("after drain")
	}
	drainBoth(a.Len() + 1) // includes the empty-pop case
	check("after full drain")
}
