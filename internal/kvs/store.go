// Package kvs implements FlexKVS, the Memcached-compatible key-value store
// of the paper's §5.2.2: a segmented log for item storage (reducing
// synchronization on allocation, after log-structured memory) and a
// block-chain hash table (entry blocks sized to cache lines to minimize
// coherence traffic on lookups, after MICA).
//
// The store is a real, concurrency-safe in-memory KVS used directly by the
// examples and tests; Driver (driver.go) additionally describes its memory
// traffic to the simulated machine for the tiering experiments (Tables 3
// and 4).
package kvs

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrTooLarge is returned when an item exceeds the segment size.
var ErrTooLarge = errors.New("kvs: item larger than segment")

// itemRef locates an item in the log.
type itemRef struct {
	seg int32
	off int32
}

const (
	itemHeader = 6 // keyLen uint16 + valLen uint32
	// entriesPerBlock sizes a hash block at 7 entries + next pointer ≈
	// two cache lines, the block-chain layout that keeps most lookups to
	// a single chained block.
	entriesPerBlock = 7
)

// entry is one hash-table slot.
type entry struct {
	hash uint64
	ref  itemRef
	used bool
}

// block is a chained group of entries.
type block struct {
	entries [entriesPerBlock]entry
	next    *block
}

// segment is one log segment.
type segment struct {
	buf  []byte
	used int32
	live int32 // live bytes (for cleaning)
}

// Config parameterizes a Store.
type Config struct {
	// SegmentSize is the log segment size (default 2 MB, matching the
	// huge pages the tiering layer manages).
	SegmentSize int
	// Buckets is the number of hash chains (default 1<<16).
	Buckets int
	// CleanThreshold triggers segment cleaning when a sealed segment's
	// live fraction drops below it (default 0.25).
	CleanThreshold float64
	// Stripes is the lock striping factor (default 64).
	Stripes int
}

func (c Config) withDefaults() Config {
	if c.SegmentSize == 0 {
		c.SegmentSize = 2 << 20
	}
	if c.Buckets == 0 {
		c.Buckets = 1 << 16
	}
	if c.CleanThreshold == 0 {
		c.CleanThreshold = 0.25
	}
	if c.Stripes == 0 {
		c.Stripes = 64
	}
	return c
}

// Store is the key-value store.
type Store struct {
	cfg Config

	locks []sync.RWMutex // striped over buckets

	buckets []block

	mu       sync.Mutex // guards the log structure
	segs     []*segment
	segsPub  atomic.Pointer[[]*segment] // lock-free view for readers
	active   int32
	freeSegs []int32
	cleaning atomic.Bool

	liveItems  int64
	liveBytes  int64
	deadBytes  int64
	cleanRuns  int64
	cleanMoved int64
}

// NewStore creates an empty store.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		buckets: make([]block, cfg.Buckets),
		locks:   make([]sync.RWMutex, cfg.Stripes),
	}
	s.segs = append(s.segs, &segment{buf: make([]byte, cfg.SegmentSize)})
	s.publishSegs()
	return s
}

// publishSegs republishes the segment slice for lock-free readers. Caller
// holds s.mu (or is the constructor). Segment pointers are immutable once
// created, so readers only need a consistent slice header.
func (s *Store) publishSegs() {
	v := s.segs
	s.segsPub.Store(&v)
}

// fnv1a hashes a key.
func fnv1a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (s *Store) stripe(h uint64) *sync.RWMutex {
	return &s.locks[h%uint64(len(s.locks))]
}

func (s *Store) bucket(h uint64) *block {
	return &s.buckets[h%uint64(len(s.buckets))]
}

// appendItem writes the item into the log and returns its ref. Caller
// holds s.mu.
func (s *Store) appendItem(key, value []byte) (itemRef, error) {
	need := itemHeader + len(key) + len(value)
	if need > s.cfg.SegmentSize {
		return itemRef{}, ErrTooLarge
	}
	seg := s.segs[s.active]
	if int(seg.used)+need > s.cfg.SegmentSize {
		// Seal and move to a fresh segment.
		if n := len(s.freeSegs); n > 0 {
			s.active = s.freeSegs[n-1]
			s.freeSegs = s.freeSegs[:n-1]
			seg = s.segs[s.active]
			seg.used, seg.live = 0, 0
		} else {
			s.segs = append(s.segs, &segment{buf: make([]byte, s.cfg.SegmentSize)})
			s.publishSegs()
			s.active = int32(len(s.segs) - 1)
			seg = s.segs[s.active]
		}
	}
	off := seg.used
	buf := seg.buf[off:]
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(value)))
	copy(buf[itemHeader:], key)
	copy(buf[itemHeader+len(key):], value)
	seg.used += int32(need)
	seg.live += int32(need)
	return itemRef{seg: s.active, off: off}, nil
}

// readItem decodes the item at ref. It is safe without locks: the segment
// slice is published atomically and item bytes are written before the
// entry referencing them is published under the stripe lock.
func (s *Store) readItem(ref itemRef) (key, value []byte) {
	seg := (*s.segsPub.Load())[ref.seg]
	buf := seg.buf[ref.off:]
	kl := int(binary.LittleEndian.Uint16(buf[0:2]))
	vl := int(binary.LittleEndian.Uint32(buf[2:6]))
	key = buf[itemHeader : itemHeader+kl]
	value = buf[itemHeader+kl : itemHeader+kl+vl]
	return key, value
}

// itemSize returns the log footprint of the item at ref.
func (s *Store) itemSize(ref itemRef) int32 {
	seg := (*s.segsPub.Load())[ref.seg]
	buf := seg.buf[ref.off:]
	kl := int32(binary.LittleEndian.Uint16(buf[0:2]))
	vl := int32(binary.LittleEndian.Uint32(buf[2:6]))
	return itemHeader + kl + vl
}

// findEntry walks the block chain for key; returns the entry or nil.
func (s *Store) findEntry(h uint64, key []byte) *entry {
	for b := s.bucket(h); b != nil; b = b.next {
		for i := range b.entries {
			e := &b.entries[i]
			if e.used && e.hash == h {
				k, _ := s.readItem(e.ref)
				if string(k) == string(key) {
					return e
				}
			}
		}
	}
	return nil
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	out, ok := s.GetAppend(nil, key)
	if !ok {
		return nil, false
	}
	return out, true
}

// GetAppend appends the value stored under key to dst and returns the
// extended slice, so per-op callers (the server's GET path) can reuse one
// buffer across requests instead of allocating a copy per Get. On a miss
// dst is returned unchanged with ok false.
func (s *Store) GetAppend(dst []byte, key []byte) ([]byte, bool) {
	h := fnv1a(key)
	l := s.stripe(h)
	l.RLock()
	defer l.RUnlock()
	e := s.findEntry(h, key)
	if e == nil {
		return dst, false
	}
	_, v := s.readItem(e.ref)
	return append(dst, v...), true
}

// Set stores value under key, replacing any previous value.
func (s *Store) Set(key, value []byte) error {
	if err := s.set(key, value); err != nil {
		return err
	}
	// Clean outside the stripe lock: the cleaner takes other stripes'
	// locks (and possibly this one again) while repointing entries.
	s.maybeClean()
	return nil
}

func (s *Store) set(key, value []byte) error {
	h := fnv1a(key)
	l := s.stripe(h)
	l.Lock()
	defer l.Unlock()

	s.mu.Lock()
	ref, err := s.appendItem(key, value)
	s.mu.Unlock()
	if err != nil {
		return err
	}

	if e := s.findEntry(h, key); e != nil {
		s.retire(e.ref)
		e.ref = ref
		s.mu.Lock()
		s.liveBytes += int64(itemHeader + len(key) + len(value))
		s.mu.Unlock()
		return nil
	}
	// Insert into the first free slot, extending the chain if needed.
	b := s.bucket(h)
	for {
		for i := range b.entries {
			e := &b.entries[i]
			if !e.used {
				*e = entry{hash: h, ref: ref, used: true}
				s.mu.Lock()
				s.liveItems++
				s.liveBytes += int64(itemHeader + len(key) + len(value))
				s.mu.Unlock()
				return nil
			}
		}
		if b.next == nil {
			b.next = &block{}
		}
		b = b.next
	}
}

// Delete removes key; it reports whether the key was present.
func (s *Store) Delete(key []byte) bool {
	ok := s.del(key)
	if ok {
		s.maybeClean()
	}
	return ok
}

func (s *Store) del(key []byte) bool {
	h := fnv1a(key)
	l := s.stripe(h)
	l.Lock()
	defer l.Unlock()
	e := s.findEntry(h, key)
	if e == nil {
		return false
	}
	s.retire(e.ref)
	e.used = false
	s.mu.Lock()
	s.liveItems--
	s.mu.Unlock()
	return true
}

// retire marks the bytes behind ref dead.
func (s *Store) retire(ref itemRef) {
	size := s.itemSize(ref)
	s.mu.Lock()
	s.segs[ref.seg].live -= size
	s.liveBytes -= int64(size)
	s.deadBytes += int64(size)
	s.mu.Unlock()
}

// maybeClean compacts one sealed segment whose live fraction fell below
// the threshold: live items are re-appended and their table entries
// repointed, then the segment is recycled.
//
// Lock order everywhere is stripe → mu, so the cleaner must not hold mu
// while repointing. It snapshots the victim's contents under mu, repoints
// item by item under each item's stripe lock (re-checking liveness there —
// a concurrent Set may have replaced the item), and only recycles the
// segment once no entry can reference it.
func (s *Store) maybeClean() {
	if !s.cleaning.CompareAndSwap(false, true) {
		return // one cleaner at a time
	}
	defer s.cleaning.Store(false)

	s.mu.Lock()
	victim := int32(-1)
	for i, seg := range s.segs {
		if int32(i) == s.active || seg.used == 0 {
			continue
		}
		if float64(seg.live)/float64(seg.used) < s.cfg.CleanThreshold {
			victim = int32(i)
			break
		}
	}
	if victim < 0 {
		s.mu.Unlock()
		return
	}
	seg := s.segs[victim]
	snapshot := append([]byte(nil), seg.buf[:seg.used]...)
	deadInSeg := int64(seg.used - seg.live)
	s.mu.Unlock()

	moved := 0
	for off := 0; off < len(snapshot); {
		kl := int(binary.LittleEndian.Uint16(snapshot[off : off+2]))
		vl := int(binary.LittleEndian.Uint32(snapshot[off+2 : off+6]))
		key := snapshot[off+itemHeader : off+itemHeader+kl]
		val := snapshot[off+itemHeader+kl : off+itemHeader+kl+vl]
		ref := itemRef{seg: victim, off: int32(off)}
		h := fnv1a(key)

		l := s.stripe(h)
		l.Lock()
		if e := s.findEntry(h, key); e != nil && e.ref == ref {
			s.mu.Lock()
			newRef, err := s.appendItem(key, val)
			s.mu.Unlock()
			if err == nil {
				e.ref = newRef
				moved++
			}
		}
		l.Unlock()
		off += itemHeader + kl + vl
	}

	s.mu.Lock()
	seg.used, seg.live = 0, 0
	s.freeSegs = append(s.freeSegs, victim)
	s.deadBytes -= deadInSeg
	s.cleanMoved += int64(moved)
	s.cleanRuns++
	s.mu.Unlock()
}

// Len returns the number of live items.
func (s *Store) Len() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveItems
}

// LogBytes returns the total log capacity allocated.
func (s *Store) LogBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.segs)) * int64(s.cfg.SegmentSize)
}

// LiveBytes returns bytes occupied by live items.
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// CleanRuns returns how many segments were compacted.
func (s *Store) CleanRuns() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cleanRuns
}
