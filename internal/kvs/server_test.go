package kvs

import (
	"fmt"
	"sync"
	"testing"
)

// startServer runs a server on a loopback listener and returns a connected
// client plus a cleanup func.
func startServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	s := NewServer(NewStore(Config{}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Error(err)
		}
	}()
	// Wait until the listener is up.
	for s.Addr() == nil {
	}
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
		<-done
	})
	return c, s
}

func TestProtocolSetGetDelete(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Set("hello", 42, []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, flags, ok, err := c.Get("hello")
	if err != nil || !ok || string(v) != "world" || flags != 42 {
		t.Fatalf("get = %q flags=%d ok=%v err=%v", v, flags, ok, err)
	}
	// Miss.
	if _, _, ok, err := c.Get("missing"); err != nil || ok {
		t.Fatalf("miss returned ok=%v err=%v", ok, err)
	}
	// Delete.
	found, err := c.Delete("hello")
	if err != nil || !found {
		t.Fatalf("delete = %v, %v", found, err)
	}
	if found, _ := c.Delete("hello"); found {
		t.Fatal("double delete found the key")
	}
}

func TestProtocolBinaryValues(t *testing.T) {
	c, _ := startServer(t)
	// Values containing \r\n and NULs round-trip (length-prefixed data).
	val := []byte("a\r\nb\x00c\r\n\r\nend")
	if err := c.Set("bin", 0, val); err != nil {
		t.Fatal(err)
	}
	v, _, ok, _ := c.Get("bin")
	if !ok || string(v) != string(val) {
		t.Fatalf("binary roundtrip = %q", v)
	}
}

func TestProtocolOverwrite(t *testing.T) {
	c, _ := startServer(t)
	c.Set("k", 1, []byte("v1"))
	c.Set("k", 2, []byte("v2-longer"))
	v, flags, ok, _ := c.Get("k")
	if !ok || string(v) != "v2-longer" || flags != 2 {
		t.Fatalf("overwrite = %q flags=%d", v, flags)
	}
}

func TestProtocolStats(t *testing.T) {
	c, _ := startServer(t)
	c.Set("a", 0, []byte("1"))
	c.Get("a")
	c.Get("nope")
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["cmd_set"] != 1 || st["cmd_get"] != 2 || st["get_misses"] != 1 || st["curr_items"] != 1 {
		t.Fatalf("stats = %v", st)
	}
}

func TestProtocolConcurrentClients(t *testing.T) {
	_, s := startServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("key-%d-%d", id, i%10)
				if err := c.Set(key, 0, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Error(err)
					return
				}
				if _, _, ok, err := c.Get(key); err != nil || !ok {
					t.Errorf("get after set failed: %v %v", ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestServerCloseUnblocksClients(t *testing.T) {
	c, s := startServer(t)
	c.Set("k", 0, []byte("v"))
	s.Close()
	// Further requests fail rather than hang.
	if err := c.Set("k2", 0, []byte("v")); err == nil {
		t.Fatal("set after close succeeded")
	}
}
