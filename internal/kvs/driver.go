package kvs

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// DriverConfig parameterizes the simulated FlexKVS workload (§5.2.2): a
// server with 8 threads, 4 KB values, 90% GETs / 10% SETs, 20% of the keys
// hot and receiving 90% of the traffic.
type DriverConfig struct {
	// Name lets multiple instances coexist (the priority experiment).
	Name string
	// ServerThreads is the number of serving threads (paper: 8).
	ServerThreads int
	// ValueSize is bytes per value (paper: 4 KB).
	ValueSize int64
	// WorkingSet is the aggregate item bytes (keys × value size).
	WorkingSet int64
	// GetFrac is the GET share of operations (paper: 0.9).
	GetFrac float64
	// HotKeyFrac of the keys are hot (paper: 0.2); HotTrafficFrac of
	// key accesses go to them (paper: 0.9). HotKeyFrac = 0 disables the
	// skew (uniform access).
	HotKeyFrac     float64
	HotTrafficFrac float64
	// NetBase is the non-memory service time per request in ns: network
	// stack, parsing, copying. ~24 µs round trip on the Linux TCP stack,
	// ~8 µs on the TAS accelerated stack the paper uses for latency
	// measurements.
	NetBase int64
	// TargetRate throttles offered load in ops/ns (0 = closed loop).
	TargetRate float64
	// Seed scatters the hot item pages.
	Seed uint64
}

// NetBaseTAS and NetBaseLinux are calibrated service-time floors.
const (
	NetBaseTAS   = 8 * sim.Microsecond
	NetBaseLinux = 24 * sim.Microsecond
)

// Driver is the simulated FlexKVS instance.
type Driver struct {
	cfg DriverConfig

	logRegion   *vm.Region
	tableRegion *vm.Region
	hotItems    *vm.PageSet
	coldItems   *vm.PageSet
	tableSet    *vm.PageSet

	m       *machine.Machine
	comps   []machine.Component
	ops     float64
	latency *sim.Histogram
	lastNow int64
	obsOps  float64
	obsTime int64
	// branchBuf is scratch for machine.AppendBranches: OnOps prices the
	// latency mixture five times per quantum, which must not allocate.
	branchBuf []machine.CostBranch
}

// NewDriver maps the store's memory on m and registers the workload. The
// item log is the large, long-lived range HeMem manages; the hash table is
// sized at ~2% of the log and lives alongside it.
func NewDriver(m *machine.Machine, cfg DriverConfig) *Driver {
	if cfg.Name == "" {
		cfg.Name = "flexkvs"
	}
	if cfg.ServerThreads == 0 {
		cfg.ServerThreads = 8
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 4 * sim.KB
	}
	if cfg.GetFrac == 0 {
		cfg.GetFrac = 0.9
	}
	if cfg.NetBase == 0 {
		cfg.NetBase = NetBaseTAS
	}
	d := &Driver{cfg: cfg, m: m, latency: sim.NewHistogram()}
	// The hash table is allocated at server startup, before items stream
	// in, so first-touch placement puts it in DRAM.
	// Block-chain table sizing: ~4 buckets per item at 64 B blocks comes
	// to roughly 1/128 of the item bytes for 4 KB values.
	tableBytes := cfg.WorkingSet / 128
	if tableBytes < 2*sim.MB {
		tableBytes = 2 * sim.MB
	}
	d.tableRegion = m.AS.Map(cfg.Name+"-table", tableBytes)
	d.tableSet = d.tableRegion.AsSet()
	d.logRegion = m.AS.Map(cfg.Name+"-log", cfg.WorkingSet)

	pages := d.logRegion.AllPages()
	if cfg.HotKeyFrac > 0 && cfg.HotKeyFrac < 1 {
		rng := sim.NewRand(cfg.Seed + 0x6b7673)
		perm := rng.Perm(len(pages))
		nHot := int(float64(len(pages)) * cfg.HotKeyFrac)
		hot := make([]*vm.Page, 0, nHot)
		cold := make([]*vm.Page, 0, len(pages)-nHot)
		for i, idx := range perm {
			if i < nHot {
				hot = append(hot, pages[idx])
			} else {
				cold = append(cold, pages[idx])
			}
		}
		d.hotItems = vm.NewPageSet(cfg.Name+"-hot", hot)
		d.coldItems = vm.NewPageSet(cfg.Name+"-cold", cold)
	} else {
		d.coldItems = vm.NewPageSet(cfg.Name+"-items", pages)
	}
	d.rebuild()
	m.AddWorkload(d)
	return d
}

// rebuild constructs the traffic components. Every op does a hash-table
// walk (two dependent cache-line reads); GETs read the value from the item
// log, SETs append a fresh copy (sequential write) and update the table.
func (d *Driver) rebuild() {
	c := d.cfg
	hotShare, coldShare := 0.0, 1.0
	if d.hotItems != nil {
		// Disjoint decomposition of the key-popularity mixture.
		hotShare = c.HotTrafficFrac
		coldShare = 1 - c.HotTrafficFrac
	}
	var comps []machine.Component
	// Hash-table walk on every op: bucket block + item key check.
	comps = append(comps, machine.Component{
		Set: d.tableSet, Share: 1, ReadBytes: 128, Deps: 2, Pattern: mem.Random,
	})
	// Table update on SETs.
	comps = append(comps, machine.Component{
		Set: d.tableSet, Share: 1 - c.GetFrac, WriteBytes: 64, Pattern: mem.Random,
	})
	value := func(set *vm.PageSet, share float64) {
		if set == nil || share == 0 {
			return
		}
		// GET: read the value. SET: append a new copy of the item
		// (write) — charged to the key's popularity class because hot
		// keys are rewritten into the log head which stays hot.
		comps = append(comps,
			machine.Component{
				Set: set, Share: share * c.GetFrac,
				ReadBytes: c.ValueSize, Pattern: mem.Random,
			},
			machine.Component{
				Set: set, Share: share * (1 - c.GetFrac),
				WriteBytes: c.ValueSize, Pattern: mem.Sequential,
			},
		)
	}
	value(d.hotItems, hotShare)
	value(d.coldItems, coldShare)
	d.comps = comps
}

// Name implements machine.Workload.
func (d *Driver) Name() string { return d.cfg.Name }

// Threads implements machine.Workload.
func (d *Driver) Threads() int { return d.cfg.ServerThreads }

// Components implements machine.Workload.
func (d *Driver) Components() []machine.Component { return d.comps }

// TargetRate implements machine.RateLimited.
func (d *Driver) TargetRate() float64 { return d.cfg.TargetRate }

// SetTargetRate changes the offered load (ops/ns; 0 = closed loop). The
// latency experiments warm up closed-loop, then measure at partial load.
func (d *Driver) SetTargetRate(r float64) { d.cfg.TargetRate = r }

// ComputePerOp implements machine.Computes: the network/parse service
// floor occupies server threads in addition to memory accesses.
func (d *Driver) ComputePerOp() float64 { return float64(d.cfg.NetBase) }

// OnOps implements machine.Workload: track progress and synthesize the
// request latency distribution from the per-component cost branches.
//
// When the driver is rate-limited (an open-loop client at fixed offered
// load, as in the paper's 30%-load latency measurements), recorded
// latencies include M/M/1-style queueing inflation 1/(1−ρ), where ρ is
// the servers' busy fraction at the achieved rate. This is what turns a
// modest service-time difference between tiering systems into the large
// median/tail gaps of Tables 3 and 4.
func (d *Driver) OnOps(now int64, ops float64, opTime float64) {
	d.ops += ops
	d.lastNow = now
	if ops <= 0 {
		return
	}
	inflate := 1.0
	if d.cfg.TargetRate > 0 {
		// opTime already includes the NetBase service floor via
		// machine.Computes.
		rho := d.cfg.TargetRate * opTime / float64(d.cfg.ServerThreads)
		if rho > 0.95 {
			rho = 0.95
		}
		inflate = 1 / (1 - rho)
	}
	base := float64(d.cfg.NetBase) * inflate
	table := d.branchMean(d.comps[0])
	record := func(set *vm.PageSet, prob float64, read bool) {
		if set == nil || prob <= 0 {
			return
		}
		var comp machine.Component
		if read {
			comp = machine.Component{Set: set, ReadBytes: d.cfg.ValueSize, Pattern: mem.Random}
		} else {
			comp = machine.Component{Set: set, WriteBytes: d.cfg.ValueSize, Pattern: mem.Sequential}
		}
		d.branchBuf = d.m.AppendBranches(d.branchBuf[:0], comp)
		for _, br := range d.branchBuf {
			n := uint64(ops * prob * br.Prob)
			if n > 0 {
				d.latency.ObserveN(base+(table+br.Time)*inflate, n)
			}
		}
	}
	hotShare, coldShare := 0.0, 1.0
	if d.hotItems != nil {
		hotShare, coldShare = d.cfg.HotTrafficFrac, 1-d.cfg.HotTrafficFrac
	}
	record(d.hotItems, hotShare*d.cfg.GetFrac, true)
	record(d.coldItems, coldShare*d.cfg.GetFrac, true)
	record(d.hotItems, hotShare*(1-d.cfg.GetFrac), false)
	record(d.coldItems, coldShare*(1-d.cfg.GetFrac), false)
}

// branchMean returns the expected cost of one occurrence of c.
func (d *Driver) branchMean(c machine.Component) float64 {
	var t float64
	d.branchBuf = d.m.AppendBranches(d.branchBuf[:0], c)
	for _, br := range d.branchBuf {
		t += br.Prob * br.Time
	}
	return t
}

// Done implements machine.Workload: the server runs until stopped.
func (d *Driver) Done() bool { return false }

// Ops returns completed operations.
func (d *Driver) Ops() float64 { return d.ops }

// Mops returns throughput in million operations per second since the last
// ResetScore.
func (d *Driver) Mops() float64 {
	el := float64(d.lastNow - d.obsTime)
	if el <= 0 {
		return 0
	}
	return (d.ops - d.obsOps) / el * 1e3
}

// ResetScore restarts the measurement window and latency histogram.
func (d *Driver) ResetScore() {
	d.obsOps = d.ops
	d.obsTime = d.lastNow
	d.latency.Reset()
}

// Latency returns the request latency histogram (ns).
func (d *Driver) Latency() *sim.Histogram { return d.latency }

// HotItemPages returns the hot item page set (nil when uniform).
func (d *Driver) HotItemPages() *vm.PageSet { return d.hotItems }

// LogRegion returns the item-log region (for pinning in the priority
// experiment).
func (d *Driver) LogRegion() *vm.Region { return d.logRegion }

// TableRegion returns the hash-table region.
func (d *Driver) TableRegion() *vm.Region { return d.tableRegion }

func (d *Driver) String() string {
	return fmt.Sprintf("%s{%d thr, ws=%dGB}", d.cfg.Name, d.cfg.ServerThreads, d.cfg.WorkingSet/sim.GB)
}
