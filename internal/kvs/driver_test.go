package kvs_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/kvs"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/memmode"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

// runKVS measures steady-state throughput in Mops/s.
func runKVS(mgr machine.Manager, ws int64, warm, measure int64) (*kvs.Driver, *machine.Machine) {
	m := machine.New(machine.DefaultConfig(), mgr)
	d := kvs.NewDriver(m, kvs.DriverConfig{
		WorkingSet: ws, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: 17,
	})
	m.Warm()
	m.Run(warm)
	d.ResetScore()
	m.Run(measure)
	return d, m
}

// Table 3, small working sets: all systems perform similarly when
// everything fits in DRAM, at around 1 Mops/s for 8 server threads.
func TestThroughputSmallWorkingSet(t *testing.T) {
	he, _ := runKVS(core.New(core.DefaultConfig()), 16*sim.GB, 5*sim.Second, 5*sim.Second)
	mm, _ := runKVS(memmode.New(), 16*sim.GB, 5*sim.Second, 5*sim.Second)
	if he.Mops() < 0.5 || he.Mops() > 2 {
		t.Errorf("HeMem 16GB throughput = %.2f Mops, want ~1", he.Mops())
	}
	ratio := he.Mops() / mm.Mops()
	if ratio < 0.9 || ratio > 1.3 {
		t.Errorf("HeMem/MM at 16GB = %.2f, want ≈1 (paper: 1.09 vs 1.14)", ratio)
	}
}

// Table 3, 700 GB working set: the 140 GB hot set still fits in DRAM, so
// HeMem beats MM (paper: +14%), Nimble (+15%), and static NVM placement
// (X-Mem, −18% vs HeMem).
func TestThroughput700GB(t *testing.T) {
	const warm, measure = 300 * sim.Second, 60 * sim.Second
	he, _ := runKVS(core.New(core.DefaultConfig()), 700*sim.GB, warm, measure)
	mm, _ := runKVS(memmode.New(), 700*sim.GB, warm, measure)
	nvm, _ := runKVS(xmem.NVMOnly(), 700*sim.GB, warm, measure)

	if he.Mops() <= mm.Mops() {
		t.Errorf("700GB: HeMem %.3f should beat MM %.3f (paper: 1.06 vs 0.93)", he.Mops(), mm.Mops())
	}
	if he.Mops() <= nvm.Mops() {
		t.Errorf("700GB: HeMem %.3f should beat NVM placement %.3f", he.Mops(), nvm.Mops())
	}
	// HeMem got the hot items into DRAM.
	if f := he.HotItemPages().Frac(vm.TierDRAM); f < 0.7 {
		t.Errorf("hot items DRAM fraction = %.2f", f)
	}
}

// Table 3 latency columns: at 30% load on the 700 GB working set, HeMem's
// median and tail are below MM's (paper: p50 20 vs 35 µs, p99 34 vs 53).
func TestLatencyAt30PercentLoad(t *testing.T) {
	measureLat := func(mgr machine.Manager) *sim.Histogram {
		m := machine.New(machine.DefaultConfig(), mgr)
		d := kvs.NewDriver(m, kvs.DriverConfig{
			WorkingSet: 700 * sim.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9,
			NetBase: kvs.NetBaseTAS, Seed: 17,
		})
		m.Warm()
		// Converge placement closed-loop, then measure at 30% load.
		m.Run(300 * sim.Second)
		d.SetTargetRate(0.3 * 8 / (10 * 1000))
		m.Run(10 * sim.Second)
		d.ResetScore()
		m.Run(30 * sim.Second)
		return d.Latency()
	}
	he := measureLat(core.New(core.DefaultConfig()))
	mm := measureLat(memmode.New())
	if he.Count() == 0 || mm.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if he.Quantile(0.5) >= mm.Quantile(0.5) {
		t.Errorf("p50: HeMem %.0f ns should beat MM %.0f ns", he.Quantile(0.5), mm.Quantile(0.5))
	}
	// p90 and p99 sit inside the cold-GET NVM branch for both systems at
	// this model's resolution; HeMem must not be worse there (the paper's
	// residual gap comes from finer queueing effects).
	if he.Quantile(0.9) > mm.Quantile(0.9) {
		t.Errorf("p90: HeMem %.0f ns worse than MM %.0f ns", he.Quantile(0.9), mm.Quantile(0.9))
	}
	if he.Quantile(0.99) > mm.Quantile(0.99) {
		t.Errorf("p99: HeMem %.0f ns worse than MM %.0f ns", he.Quantile(0.99), mm.Quantile(0.99))
	}
}

// Table 4: a pinned priority instance under HeMem gets better latency than
// under MM, where the regular instance's bulk traffic pollutes the cache.
func TestPriorityIsolation(t *testing.T) {
	runPair := func(mgr machine.Manager, pin func(*kvs.Driver)) (prio *sim.Histogram) {
		m := machine.New(machine.DefaultConfig(), mgr)
		prioD := kvs.NewDriver(m, kvs.DriverConfig{
			Name: "priority", WorkingSet: 16 * sim.GB, ServerThreads: 4,
			NetBase: kvs.NetBaseLinux, Seed: 3,
			TargetRate: 0.5 * 4 / (26 * 1000),
		})
		kvs.NewDriver(m, kvs.DriverConfig{
			Name: "regular", WorkingSet: 500 * sim.GB, ServerThreads: 8,
			NetBase: kvs.NetBaseLinux, Seed: 4,
		})
		if pin != nil {
			pin(prioD)
		}
		m.Warm()
		m.Run(60 * sim.Second)
		prioD.ResetScore()
		m.Run(20 * sim.Second)
		return prioD.Latency()
	}

	heMgr := core.New(core.DefaultConfig())
	hePrio := runPair(heMgr, func(d *kvs.Driver) {
		heMgr.PinRegion(d.LogRegion())
		heMgr.PinRegion(d.TableRegion())
	})
	mmPrio := runPair(memmode.New(), nil)

	// The abstract's headline: "16% lower tail-latency under performance
	// isolation". The pinned instance never misses to NVM under HeMem;
	// under MM the regular instance's bulk traffic evicts its lines.
	if hePrio.Quantile(0.99) >= mmPrio.Quantile(0.99) {
		t.Errorf("priority p99: HeMem %.0f ns should beat MM %.0f ns (paper: 239 vs 278 µs)",
			hePrio.Quantile(0.99), mmPrio.Quantile(0.99))
	}
	if hePrio.Quantile(0.5) > mmPrio.Quantile(0.5) {
		t.Errorf("priority p50: HeMem %.0f ns worse than MM %.0f ns",
			hePrio.Quantile(0.5), mmPrio.Quantile(0.5))
	}
}

// Pinned regions stay wholly in DRAM under HeMem.
func TestPinRegionKeepsDRAM(t *testing.T) {
	h := core.New(core.DefaultConfig())
	m := machine.New(machine.DefaultConfig(), h)
	d := kvs.NewDriver(m, kvs.DriverConfig{Name: "prio", WorkingSet: 16 * sim.GB, Seed: 1})
	kvs.NewDriver(m, kvs.DriverConfig{Name: "bulk", WorkingSet: 400 * sim.GB, Seed: 2})
	h.PinRegion(d.LogRegion())
	h.PinRegion(d.TableRegion())
	m.Warm()
	m.Run(30 * sim.Second)
	if f := d.LogRegion().Frac(vm.TierDRAM); f != 1 {
		t.Fatalf("pinned log region DRAM frac = %v, want 1", f)
	}
}
