package kvs

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetDelete(t *testing.T) {
	s := NewStore(Config{})
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("Get on empty store succeeded")
	}
	if err := s.Set([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("k1"))
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	// Overwrite.
	s.Set([]byte("k1"), []byte("v2"))
	v, _ = s.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Fatalf("after overwrite: %q", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Delete([]byte("k1")) {
		t.Fatal("Delete failed")
	}
	if s.Delete([]byte("k1")) {
		t.Fatal("double Delete succeeded")
	}
	if _, ok := s.Get([]byte("k1")); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestValueIsolation(t *testing.T) {
	s := NewStore(Config{})
	s.Set([]byte("k"), []byte("abc"))
	v, _ := s.Get([]byte("k"))
	v[0] = 'X' // mutate the returned copy
	v2, _ := s.Get([]byte("k"))
	if string(v2) != "abc" {
		t.Fatal("returned value aliases store memory")
	}
}

func TestLargeItemRejected(t *testing.T) {
	s := NewStore(Config{SegmentSize: 1 << 12})
	if err := s.Set([]byte("k"), make([]byte, 1<<13)); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestSegmentRollover(t *testing.T) {
	s := NewStore(Config{SegmentSize: 4096})
	for i := 0; i < 100; i++ {
		key := fmt.Appendf(nil, "key-%03d", i)
		val := make([]byte, 300)
		val[0] = byte(i)
		if err := s.Set(key, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Appendf(nil, "key-%03d", i)
		v, ok := s.Get(key)
		if !ok || v[0] != byte(i) || len(v) != 300 {
			t.Fatalf("key %d lost after rollover", i)
		}
	}
	if s.LogBytes() < 8192 {
		t.Fatal("log did not grow segments")
	}
}

// Cleaning reclaims segments dominated by dead items and preserves every
// live item.
func TestCleaningPreservesLiveItems(t *testing.T) {
	s := NewStore(Config{SegmentSize: 4096, CleanThreshold: 0.5})
	// Churn a small key set so old versions accumulate.
	for round := 0; round < 50; round++ {
		for i := 0; i < 8; i++ {
			key := fmt.Appendf(nil, "key-%d", i)
			val := fmt.Appendf(nil, "val-%d-%d", i, round)
			if err := s.Set(key, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.CleanRuns() == 0 {
		t.Fatal("cleaner never ran")
	}
	for i := 0; i < 8; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		v, ok := s.Get(key)
		if !ok || string(v) != fmt.Sprintf("val-%d-49", i) {
			t.Fatalf("key %d = %q,%v after cleaning", i, v, ok)
		}
	}
	// The log stays bounded: far less than one segment per write.
	if s.LogBytes() > 64*4096 {
		t.Fatalf("log grew unboundedly: %d bytes", s.LogBytes())
	}
}

// Property: the store behaves like a map under random operations.
func TestStoreMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore(Config{SegmentSize: 1 << 14, Buckets: 64})
		oracle := map[string]string{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%32)
			switch (op / 32) % 3 {
			case 0:
				val := fmt.Sprintf("v%d", op)
				s.Set([]byte(key), []byte(val))
				oracle[key] = val
			case 1:
				got, ok := s.Get([]byte(key))
				want, wok := oracle[key]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			case 2:
				ok := s.Delete([]byte(key))
				_, wok := oracle[key]
				if ok != wok {
					return false
				}
				delete(oracle, key)
			}
		}
		if s.Len() != int64(len(oracle)) {
			return false
		}
		for k, want := range oracle {
			got, ok := s.Get([]byte(k))
			if !ok || string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Concurrency: parallel writers and readers over overlapping keys; run
// with -race in CI.
func TestConcurrentAccess(t *testing.T) {
	s := NewStore(Config{SegmentSize: 1 << 14, CleanThreshold: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Appendf(nil, "key-%d", i%64)
				if i%3 == 0 {
					s.Set(key, fmt.Appendf(nil, "v-%d-%d", w, i))
				} else {
					s.Get(key)
				}
			}
		}(w)
	}
	wg.Wait()
	// All keys readable and well-formed afterwards.
	for i := 0; i < 64; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		if v, ok := s.Get(key); ok && len(v) < 5 {
			t.Fatalf("corrupt value %q", v)
		}
	}
}

func TestHashChainsExtend(t *testing.T) {
	// Force chains: 1 bucket.
	s := NewStore(Config{Buckets: 1, Stripes: 1})
	for i := 0; i < 100; i++ {
		s.Set(fmt.Appendf(nil, "key-%d", i), []byte("v"))
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 100; i++ {
		if _, ok := s.Get(fmt.Appendf(nil, "key-%d", i)); !ok {
			t.Fatalf("key %d lost in chain", i)
		}
	}
}
