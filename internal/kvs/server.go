package kvs

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
)

// Server exposes a Store over the memcached text protocol (FlexKVS is
// "Memcached compatible", §5.2.2). The subset implemented covers the
// commands the paper's workloads use: get, set, delete, plus stats and
// quit. Each connection is served by its own goroutine, as FlexKVS serves
// each with its own thread.
type Server struct {
	store *Store

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	gets   atomic.Int64
	sets   atomic.Int64
	misses atomic.Int64
	wg     sync.WaitGroup
}

// NewServer wraps store.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close is called.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("kvs: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every connection, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// serveConn runs the text protocol on one connection.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	sc := &connScratch{}
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch string(fields[0]) {
		case "get", "gets":
			s.handleGet(w, fields[1:], sc)
		case "set":
			if err := s.handleSet(r, w, fields[1:], sc); err != nil {
				return
			}
		case "delete":
			s.handleDelete(w, fields[1:])
		case "stats":
			s.handleStats(w)
		case "quit":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERROR\r\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// readLine reads a \r\n-terminated protocol line.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

// connScratch holds one connection's reusable per-op buffers: the store
// copies keys and values on Set and GetAppend appends into a caller
// buffer, so the request loop can serve steady-state traffic without
// per-op allocation.
type connScratch struct {
	val  []byte // GET: fetched flags+value bytes
	data []byte // SET: 4-byte flags prefix + payload + trailing \r\n
}

// sized returns b with length n, reallocating only when capacity is short.
func sized(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// Stored value layout: the 32-bit client flags are kept as a 4-byte
// little-endian prefix so gets can echo them back. putFlags writes the
// prefix into out[:4].
func putFlags(out []byte, flags uint32) {
	out[0] = byte(flags)
	out[1] = byte(flags >> 8)
	out[2] = byte(flags >> 16)
	out[3] = byte(flags >> 24)
}

func decodeFlags(stored []byte) (uint32, []byte) {
	if len(stored) < 4 {
		return 0, stored
	}
	f := uint32(stored[0]) | uint32(stored[1])<<8 | uint32(stored[2])<<16 | uint32(stored[3])<<24
	return f, stored[4:]
}

func (s *Server) handleGet(w *bufio.Writer, keys [][]byte, sc *connScratch) {
	for _, key := range keys {
		s.gets.Add(1)
		stored, ok := s.store.GetAppend(sc.val[:0], key)
		sc.val = stored[:0]
		if !ok {
			s.misses.Add(1)
			continue
		}
		flags, value := decodeFlags(stored)
		fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(value))
		w.Write(value)
		w.WriteString("\r\n")
	}
	w.WriteString("END\r\n")
}

func (s *Server) handleSet(r *bufio.Reader, w *bufio.Writer, args [][]byte, sc *connScratch) error {
	// set <key> <flags> <exptime> <bytes> [noreply]
	if len(args) < 4 {
		w.WriteString("CLIENT_ERROR bad command line format\r\n")
		return nil
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(string(args[1]), 10, 32)
	size, err2 := strconv.Atoi(string(args[3]))
	if err1 != nil || err2 != nil || size < 0 {
		w.WriteString("CLIENT_ERROR bad command line format\r\n")
		return nil
	}
	noreply := len(args) >= 5 && string(args[4]) == "noreply"
	// The stored layout is the 4-byte flags prefix followed by the value,
	// so read the payload straight into the scratch buffer at offset 4
	// and hand the store a subslice — Set copies, so the buffer is free
	// for the next request.
	sc.data = sized(sc.data, 4+size+2)
	putFlags(sc.data, uint32(flags))
	if _, err := io.ReadFull(r, sc.data[4:]); err != nil {
		return err
	}
	if !bytes.HasSuffix(sc.data, []byte("\r\n")) {
		if !noreply {
			w.WriteString("CLIENT_ERROR bad data chunk\r\n")
		}
		return nil
	}
	s.sets.Add(1)
	if err := s.store.Set(key, sc.data[:4+size]); err != nil {
		if !noreply {
			w.WriteString("SERVER_ERROR object too large for cache\r\n")
		}
		return nil
	}
	if !noreply {
		w.WriteString("STORED\r\n")
	}
	return nil
}

func (s *Server) handleDelete(w *bufio.Writer, args [][]byte) {
	if len(args) < 1 {
		w.WriteString("CLIENT_ERROR bad command line format\r\n")
		return
	}
	if s.store.Delete(args[0]) {
		w.WriteString("DELETED\r\n")
	} else {
		w.WriteString("NOT_FOUND\r\n")
	}
}

func (s *Server) handleStats(w *bufio.Writer) {
	fmt.Fprintf(w, "STAT cmd_get %d\r\n", s.gets.Load())
	fmt.Fprintf(w, "STAT cmd_set %d\r\n", s.sets.Load())
	fmt.Fprintf(w, "STAT get_misses %d\r\n", s.misses.Load())
	fmt.Fprintf(w, "STAT curr_items %d\r\n", s.store.Len())
	fmt.Fprintf(w, "STAT bytes %d\r\n", s.store.LiveBytes())
	w.WriteString("END\r\n")
}

// Client is a minimal memcached text-protocol client for tests, examples
// and load generators.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a memcached-compatible server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Set stores value under key with flags.
func (c *Client) Set(key string, flags uint32, value []byte) error {
	fmt.Fprintf(c.w, "set %s %d 0 %d\r\n", key, flags, len(value))
	c.w.Write(value)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := readLine(c.r)
	if err != nil {
		return err
	}
	if string(line) != "STORED" {
		return fmt.Errorf("kvs: set: %s", line)
	}
	return nil
}

// Get fetches key; ok is false on a miss.
func (c *Client) Get(key string) (value []byte, flags uint32, ok bool, err error) {
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err = c.w.Flush(); err != nil {
		return nil, 0, false, err
	}
	for {
		line, err := readLine(c.r)
		if err != nil {
			return nil, 0, false, err
		}
		if string(line) == "END" {
			return value, flags, ok, nil
		}
		var k string
		var f uint32
		var n int
		if _, err := fmt.Sscanf(string(line), "VALUE %s %d %d", &k, &f, &n); err != nil {
			return nil, 0, false, fmt.Errorf("kvs: get: %s", line)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, 0, false, err
		}
		value, flags, ok = buf[:n], f, true
	}
}

// Delete removes key; found is false if it was absent.
func (c *Client) Delete(key string) (found bool, err error) {
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := readLine(c.r)
	if err != nil {
		return false, err
	}
	switch string(line) {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("kvs: delete: %s", line)
	}
}

// Stats fetches the server's counters.
func (c *Client) Stats() (map[string]int64, error) {
	fmt.Fprintf(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for {
		line, err := readLine(c.r)
		if err != nil {
			return nil, err
		}
		if string(line) == "END" {
			return out, nil
		}
		var name string
		var v int64
		if _, err := fmt.Sscanf(string(line), "STAT %s %d", &name, &v); err == nil {
			out[name] = v
		}
	}
}
