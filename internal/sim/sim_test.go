package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(5 * Millisecond)
	c.Advance(0)
	if got := c.Now(); got != 5*Millisecond {
		t.Fatalf("Now() = %d, want %d", got, 5*Millisecond)
	}
}

func TestClockPanicsOnBackwards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.Schedule(30, func(int64) { fired = append(fired, 3) })
	q.Schedule(10, func(int64) { fired = append(fired, 1) })
	q.Schedule(20, func(int64) { fired = append(fired, 2) })
	// Same deadline: FIFO within the deadline.
	q.Schedule(20, func(int64) { fired = append(fired, 22) })

	q.RunDue(20)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 22 {
		t.Fatalf("fired = %v, want [1 2 22]", fired)
	}
	if at, ok := q.NextDeadline(); !ok || at != 30 {
		t.Fatalf("NextDeadline = %d,%v want 30,true", at, ok)
	}
	q.RunDue(100)
	if len(fired) != 4 || fired[3] != 3 {
		t.Fatalf("fired = %v, want trailing 3", fired)
	}
}

func TestEventQueueReschedulingWithinRun(t *testing.T) {
	q := NewEventQueue()
	var n int
	var reschedule func(now int64)
	reschedule = func(now int64) {
		n++
		if n < 5 {
			q.Schedule(now+10, reschedule)
		}
	}
	q.Schedule(0, reschedule)
	q.RunDue(100)
	if n != 5 {
		t.Fatalf("periodic event fired %d times, want 5", n)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams identical")
	}
}

// SplitStable must not consume from the parent stream, must depend only
// on (parent state, label), and must give distinct streams for distinct
// labels — the contract sharded workers rely on for order-independence.
func TestRandSplitStableOrderIndependent(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	// Derive in opposite orders: the sub-streams must match pairwise.
	a1, a2 := a.SplitStable(1), a.SplitStable(2)
	b2, b1 := b.SplitStable(2), b.SplitStable(1)
	for i := 0; i < 100; i++ {
		if a1.Uint64() != b1.Uint64() || a2.Uint64() != b2.Uint64() {
			t.Fatalf("SplitStable stream depends on derivation order at draw %d", i)
		}
	}
	// The parent stream is untouched: it matches a fresh generator.
	ref := NewRand(7)
	if a.Uint64() != ref.Uint64() {
		t.Fatal("SplitStable consumed from the parent stream")
	}
	// Distinct labels give distinct streams; same label reproduces.
	r := NewRand(7)
	if r.SplitStable(1).Uint64() == r.SplitStable(2).Uint64() {
		t.Fatal("SplitStable streams for labels 1 and 2 collide")
	}
	if r.SplitStable(3).Uint64() != r.SplitStable(3).Uint64() {
		t.Fatal("SplitStable not reproducible for equal labels")
	}
	// Adjacent labels decorrelate (no shared low-bit structure).
	x, y := r.SplitStable(0).Uint64(), r.SplitStable(1).Uint64()
	if x == y || x^y == 1 {
		t.Fatalf("adjacent SplitStable streams correlated: %x %x", x, y)
	}
}

func TestRandSplitLabel(t *testing.T) {
	r := NewRand(9)
	a := r.SplitLabel("zone-mc")
	b := r.SplitLabel("zone-mc")
	c := r.SplitLabel("fleet")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitLabel not reproducible for equal labels")
	}
	if a.Uint64() == c.Uint64() {
		t.Fatal("SplitLabel streams for distinct labels collide")
	}
	ref := NewRand(9)
	if r.Uint64() != ref.Uint64() {
		t.Fatal("SplitLabel consumed from the parent stream")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandIntnUniformish(t *testing.T) {
	r := NewRand(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Fatalf("bucket %d count %d far from uniform %d", i, c, draws/n)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandBernoulliEdges(t *testing.T) {
	r := NewRand(9)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(11)
	z := NewZipf(r, 1000, 0.99)
	const draws = 200000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be much more popular than rank 500.
	if counts[0] < 10*counts[500] {
		t.Fatalf("zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// And the head should hold a large share of mass.
	var head int
	for _, c := range counts[:100] {
		head += c
	}
	if float64(head)/draws < 0.4 {
		t.Fatalf("zipf head mass %.2f too small", float64(head)/draws)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0.5); math.Abs(got-500) > 25 {
		t.Fatalf("p50 = %v, want ~500", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-990) > 50 {
		t.Fatalf("p99 = %v, want ~990", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("max = %v, want 1000", got)
	}
	if got := h.Mean(); math.Abs(got-500.5) > 0.01 {
		t.Fatalf("mean = %v, want 500.5", got)
	}
}

func TestHistogramObserveNEquivalence(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(123)
	}
	b.ObserveN(123, 100)
	if a.Count() != b.Count() || a.Quantile(0.5) != b.Quantile(0.5) {
		t.Fatal("ObserveN(v, n) != n×Observe(v)")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

// Property: quantile is monotone in q.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(float64(v))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram buckets have bounded relative error.
func TestHistogramRelativeError(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw%1_000_000) + 1
		h := NewHistogram()
		h.Observe(v)
		got := h.Quantile(0.5)
		return math.Abs(got-v)/v < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(10, 1.0)
	s.Append(20, 2.0)
	s.Append(30, 3.0)
	if got := s.At(25); got != 2.0 {
		t.Fatalf("At(25) = %v, want 2", got)
	}
	if got := s.At(5); got != 0 {
		t.Fatalf("At(5) = %v, want 0", got)
	}
	if got := s.At(30); got != 3.0 {
		t.Fatalf("At(30) = %v, want 3", got)
	}
	if got := s.Mean(); got != 2.0 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestUnits(t *testing.T) {
	if GB != 1<<30 || TB != 1024*GB {
		t.Fatal("unit constants wrong")
	}
	// 1 GB/s is ~1.07 bytes/ns.
	bpns := GBps(1)
	if math.Abs(bpns-1.0737) > 0.01 {
		t.Fatalf("GBps(1) = %v", bpns)
	}
	if math.Abs(BytesPerNsToGBps(bpns)-1) > 1e-9 {
		t.Fatal("GBps round trip failed")
	}
}

// poissonInline replicates the pre-memoization Poisson draw, with the
// transcendentals computed inline on every call. PoissonCached must
// reproduce it bit for bit: same results, same RNG consumption.
func poissonInline(r *Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		u1, u2 := r.Float64(), r.Float64()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		n := int(lambda + z*math.Sqrt(lambda) + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func TestPoissonPrepConstantsExact(t *testing.T) {
	for _, lambda := range []float64{1e-9, 0.001, 0.1, 0.5, 1, 2.5, 7, 29.999, 30} {
		prep := NewPoissonPrep(lambda)
		if want := math.Exp(-lambda); prep.ExpNegLambda != want {
			t.Fatalf("λ=%v: ExpNegLambda = %x, want %x (math.Exp)",
				lambda, math.Float64bits(prep.ExpNegLambda), math.Float64bits(want))
		}
	}
	for _, lambda := range []float64{30.001, 100, 1e6} {
		prep := NewPoissonPrep(lambda)
		if want := math.Sqrt(lambda); prep.SqrtLambda != want {
			t.Fatalf("λ=%v: SqrtLambda = %x, want %x (math.Sqrt)",
				lambda, math.Float64bits(prep.SqrtLambda), math.Float64bits(want))
		}
	}
}

func TestPoissonCachedBitIdentical(t *testing.T) {
	lambdas := []float64{-3, 0, 1e-6, 0.25, 1, 3.75, 29.5, 30, 30.5, 500}
	for _, lambda := range lambdas {
		prep := NewPoissonPrep(lambda)
		ra, rb, rc := NewRand(42), NewRand(42), NewRand(42)
		for i := 0; i < 5000; i++ {
			want := poissonInline(ra, lambda)
			if got := rb.PoissonCached(prep); got != want {
				t.Fatalf("λ=%v draw %d: PoissonCached = %d, want %d", lambda, i, got, want)
			}
			if got := rc.Poisson(lambda); got != want {
				t.Fatalf("λ=%v draw %d: Poisson = %d, want %d", lambda, i, got, want)
			}
		}
		// Identical results could still hide divergent RNG consumption;
		// the streams must be in lock-step afterwards.
		if a, b, c := ra.Uint64(), rb.Uint64(), rc.Uint64(); a != b || a != c {
			t.Fatalf("λ=%v: RNG states diverged after draws (%x, %x, %x)", lambda, a, b, c)
		}
	}
}
