// Package sim provides the deterministic simulation kernel used by the
// HeMem reproduction: a virtual nanosecond clock, a seeded random number
// generator, an event queue, latency histograms, and time-series recording.
//
// Everything in this package is deterministic given a seed. No wall-clock
// time is consulted anywhere; experiments that simulate minutes of machine
// time complete in milliseconds and always produce identical results.
package sim

// Byte-size units. All capacities in the simulator are expressed in bytes.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Time units. The simulated clock counts nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000 * Nanosecond
	Millisecond int64 = 1000 * Microsecond
	Second      int64 = 1000 * Millisecond
)

// GBps converts a rate in gigabytes per second into bytes per simulated
// nanosecond, the internal bandwidth unit.
func GBps(gb float64) float64 { return gb * float64(GB) / float64(Second) }

// BytesPerNsToGBps converts the internal bandwidth unit back to GB/s for
// reporting.
func BytesPerNsToGBps(bpns float64) float64 { return bpns * float64(Second) / float64(GB) }
