package sim

import "container/heap"

// Clock is the simulated nanosecond clock. Components read it; only the
// machine's step loop advances it.
type Clock struct {
	now int64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by dt nanoseconds. dt must be
// non-negative.
func (c *Clock) Advance(dt int64) {
	if dt < 0 {
		panic("sim: clock cannot move backwards")
	}
	c.now += dt
}

// Event is a scheduled callback. Events with equal deadlines fire in the
// order they were scheduled (FIFO), which keeps runs deterministic.
type Event struct {
	At  int64
	Fn  func(now int64)
	seq uint64
	idx int
}

// EventQueue is a deterministic priority queue of timed events. It backs
// periodic work such as HeMem's 10 ms policy tick and Nimble's kernel
// thread cycle.
type EventQueue struct {
	h    eventHeap
	next uint64
	// free recycles fired events so a periodic tick that reschedules
	// itself every 10 ms runs allocation-free.
	free []*Event
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule enqueues fn to run at time at. The returned event is owned by
// the queue and only valid until it fires; it is recycled afterwards.
func (q *EventQueue) Schedule(at int64, fn func(now int64)) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		*e = Event{}
	} else {
		e = &Event{}
	}
	e.At, e.Fn, e.seq = at, fn, q.next
	q.next++
	heap.Push(&q.h, e)
	return e
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// NextDeadline returns the deadline of the earliest event, or ok=false if
// the queue is empty.
func (q *EventQueue) NextDeadline() (at int64, ok bool) {
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// RunDue pops and runs every event with deadline <= now, in deadline order.
// Events scheduled by callbacks are honored if they are also due.
func (q *EventQueue) RunDue(now int64) {
	for q.h.Len() > 0 && q.h[0].At <= now {
		e := heap.Pop(&q.h).(*Event)
		at, fn := e.At, e.Fn
		e.Fn = nil
		q.free = append(q.free, e)
		fn(at)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
