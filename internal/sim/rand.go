package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random number generator based
// on splitmix64. It is not safe for concurrent use; the simulator is
// single-threaded by design, and each component that needs randomness holds
// its own Rand derived from the experiment seed so that adding a component
// never perturbs the random stream of another.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent generator from r, keyed by label. The
// derived stream is stable: it depends only on r's seed history and label.
// Split consumes one value from r's stream, so successive Split calls
// with the same label yield distinct streams; use SplitStable when the
// derivation must not depend on how often r has been consulted.
func (r *Rand) Split(label uint64) *Rand {
	return NewRand(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// splitFinalize decorrelates a (state, label) pair into a fresh seed with
// the splitmix64 finalizer, so sibling sub-streams with adjacent labels
// share no low-bit structure.
func splitFinalize(state, label uint64) uint64 {
	z := state + label*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitStable derives an independent generator keyed by label WITHOUT
// consuming from r's stream: the sub-stream depends only on (r's current
// seed state, label), never on execution order, so sharded workers that
// each take their own labelled sub-stream produce identical draws at any
// worker count and under any scheduling. It is safe to call SplitStable
// concurrently on a shared parent as long as nothing draws from the
// parent meanwhile (it only reads the state). Calling it twice with the
// same label yields the same stream — labels must identify work items.
func (r *Rand) SplitStable(label uint64) *Rand {
	return NewRand(splitFinalize(r.state, label))
}

// SplitLabel is SplitStable keyed by a stable string label (an FNV-1a
// fold of the label selects the sub-stream). Like SplitStable it does
// not consume from r's stream.
func (r *Rand) SplitLabel(label string) *Rand {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRand(splitFinalize(r.state, h))
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Poisson draws from a Poisson distribution with mean lambda, using
// Knuth's method for small lambda and a normal approximation for large.
func (r *Rand) Poisson(lambda float64) int {
	return r.PoissonCached(NewPoissonPrep(lambda))
}

// PoissonPrep caches the λ-dependent constants of a Poisson draw —
// exp(-λ) for the Knuth path, sqrt(λ) for the normal approximation — so
// hot loops that sample the same mean repeatedly (the Memory-Mode
// Monte-Carlo occupancy model draws zones × MCSamples times per refresh)
// don't pay a transcendental per draw. NewPoissonPrep(λ) followed by
// Rand.PoissonCached is bit-compatible with Rand.Poisson(λ): the cached
// constants are the exact float64s Poisson computed inline, and the RNG
// draw sequence is unchanged, so seeded results are identical.
type PoissonPrep struct {
	// Lambda is the distribution mean.
	Lambda float64
	// ExpNegLambda is exp(-Lambda); meaningful only for 0 < Lambda ≤ 30
	// (the Knuth path).
	ExpNegLambda float64
	// SqrtLambda is sqrt(Lambda); meaningful only for Lambda > 30 (the
	// normal-approximation path).
	SqrtLambda float64
}

// NewPoissonPrep precomputes the draw constants for mean lambda.
func NewPoissonPrep(lambda float64) PoissonPrep {
	p := PoissonPrep{Lambda: lambda}
	switch {
	case lambda <= 0:
	case lambda > 30:
		p.SqrtLambda = math.Sqrt(lambda)
	default:
		p.ExpNegLambda = math.Exp(-lambda)
	}
	return p
}

// PoissonCached draws from a Poisson distribution whose constants were
// precomputed by NewPoissonPrep. The draw sequence and arithmetic match
// Poisson(prep.Lambda) bit for bit.
func (r *Rand) PoissonCached(prep PoissonPrep) int {
	lambda := prep.Lambda
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		u1, u2 := r.Float64(), r.Float64()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		n := int(lambda + z*prep.SqrtLambda + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := prep.ExpNegLambda
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s > 0
// using inverse-CDF approximation. It is used by the key-value store driver
// to model skewed key popularity.
type Zipf struct {
	r    *Rand
	n    int64
	s    float64
	hInt float64 // integral-based normalizer H(n)
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s (s != 1 is
// handled via the generalized harmonic integral approximation).
func NewZipf(r *Rand, n int64, s float64) *Zipf {
	z := &Zipf{r: r, n: n, s: s}
	z.hInt = z.h(float64(n) + 0.5)
	return z
}

// h is the antiderivative of x^-s, shifted so h(0.5) == 0.
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return math.Log(x) - math.Log(0.5)
	}
	e := 1 - z.s
	return (math.Pow(x, e) - math.Pow(0.5, e)) / e
}

// hInv inverts h.
func (z *Zipf) hInv(y float64) float64 {
	if z.s == 1 {
		return 0.5 * math.Exp(y)
	}
	e := 1 - z.s
	return math.Pow(y*e+math.Pow(0.5, e), 1/e)
}

// Next draws the next sample in [0, n), where 0 is the most popular rank.
func (z *Zipf) Next() int64 {
	u := z.r.Float64() * z.hInt
	x := int64(z.hInv(u)+0.5) - 1
	if x < 0 {
		x = 0
	}
	if x >= z.n {
		x = z.n - 1
	}
	return x
}
