package sim

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records latency observations in log-spaced buckets and answers
// percentile queries. It mirrors what the FlexKVS latency experiments in
// the paper (Tables 3 and 4) report: p50/p90/p99/p99.9.
//
// Buckets are spaced at ~2% relative resolution, which is far finer than
// the differences the paper reports.
type Histogram struct {
	counts []uint64
	total  uint64
	min    float64
	max    float64
	sum    float64
}

const (
	histBucketsPerOctave = 36 // ~2% resolution
	histBuckets          = 64 * histBucketsPerOctave
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets), min: math.Inf(1), max: math.Inf(-1)}
}

func histBucket(v float64) int {
	if v < 1 {
		v = 1
	}
	b := int(math.Log2(v) * histBucketsPerOctave)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func histBucketValue(b int) float64 {
	return math.Exp2((float64(b) + 0.5) / histBucketsPerOctave)
}

// Observe records one observation of value v (e.g., a latency in
// nanoseconds). Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations; the simulator uses this to
// record whole batches of operations that share an analytic latency.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)] += n
	h.total += n
	h.sum += v * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the value at quantile q in [0,1]. Results interpolate
// bucket midpoints; exact min/max are returned at the extremes.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.total))
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > target {
			return h.clamp(histBucketValue(b))
		}
	}
	return h.max
}

// clamp bounds a bucket-midpoint estimate by the exact observed extremes so
// quantiles are monotone in q.
func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Merge adds other's observations into h. Buckets are fixed and shared
// across all histograms, so the merge is exact: quantiles of the merged
// histogram equal quantiles of the pooled observations (at bucket
// resolution). The fleet experiment aggregates per-class latency across
// machines this way.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum = 0, 0
	h.min, h.max = math.Inf(1), math.Inf(-1)
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f p999=%.0f",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999))
}

// Series records a value over simulated time, e.g., instantaneous GUPS for
// Figure 9 or per-iteration NVM writes for Figure 16.
type Series struct {
	Name   string
	Times  []int64
	Values []float64
}

// Append adds a point. Times are expected to be non-decreasing.
func (s *Series) Append(t int64, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the value at the greatest recorded time <= t, or 0 if none.
func (s *Series) At(t int64) float64 {
	i := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t })
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// Mean returns the average of all recorded values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}
