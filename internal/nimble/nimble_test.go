package nimble_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/nimble"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Nimble's configuration matches the paper's description: one kernel
// thread serializing scan and migration, four copy threads, no DMA, blind
// to read/write asymmetry.
func TestOptionsMatchPaper(t *testing.T) {
	o := nimble.Options()
	if o.Async {
		t.Error("Nimble must serialize scan and migration on one thread")
	}
	if o.UseDMA {
		t.Error("Nimble copies with threads, not DMA")
	}
	if o.CopyThreads != 4 {
		t.Errorf("copy threads = %d, want 4 (§5)", o.CopyThreads)
	}
	if o.WritePriority {
		t.Error("Nimble is blind to read/write asymmetry (Table 2)")
	}
	if o.Granularity != 4*1024 {
		t.Errorf("scan granularity = %d, want 4K", o.Granularity)
	}
}

// On GUPS, scan passes are long enough that even cold pages look
// accessed, so Nimble cannot tell the hot set apart (the over-estimation
// of §2.3): placement stays near the initial proportional split — no
// catastrophic churn, but no improvement either — while the watermark
// keeps free DRAM available.
func TestNimbleBlindOnSaturatedBits(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), nimble.New())
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 256 * sim.GB, HotSet: 8 * sim.GB, Seed: 4,
	})
	m.Warm()
	before := g.HotPages().Frac(vm.TierDRAM)
	m.Run(60 * sim.Second)
	after := g.HotPages().Frac(vm.TierDRAM)
	if after < before-0.05 || after > before+0.1 {
		t.Fatalf("placement should stay near the initial split: %.2f → %.2f", before, after)
	}
	// The free-DRAM watermark did force some eviction traffic.
	if m.Migrator.Stats().Pages == 0 {
		t.Fatal("Nimble never migrated")
	}
}
