// Package nimble models the Nimble tiered memory baseline (Yan et al.,
// ASPLOS '19) as the paper deploys it (§2.4, §5): NVM exposed as a far
// NUMA node, with a single kernel thread that sequentially scans page
// tables for accessed/dirty bits and then migrates pages, plus four
// dedicated migration copy threads. Because scanning and migration share
// one thread, long migrations delay statistics gathering, and long scans
// over large memories overestimate the hot set — the two effects behind
// Nimble's losses in Figures 5, 6, 14 and 15.
package nimble

import (
	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
)

// Options mirrors the paper's Nimble configuration.
func Options() ptscan.Options {
	return ptscan.Options{
		Name:  "Nimble",
		Async: false, // one kernel thread: scan, then migrate
		// Four migration threads maximize copy throughput (§5).
		UseDMA:      false,
		CopyThreads: 4,
		Granularity: 4 * 1024,
		HotCut:      0.5,
		ColdCut:     0.5,
		// Kernel NUMA migration is not rate-capped like HeMem; bound it
		// by the copy threads' own throughput.
		MigRateCap:     sim.GBps(100),
		FreeDRAMTarget: sim.GB,
		PolicyInterval: 10 * sim.Millisecond,
		MaxCycleBytes:  4 * sim.GB,
		// The kernel thread itself.
		BGThreads:        1,
		MigrationEnabled: true,
		// Nimble is blind to read/write asymmetry (Table 2).
		WritePriority: false,
	}
}

// New returns a Nimble manager.
func New() *ptscan.Manager { return ptscan.New(Options()) }
