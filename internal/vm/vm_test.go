package vm

import (
	"testing"
	"testing/quick"

	"github.com/tieredmem/hemem/internal/sim"
)

func TestMapCreatesPages(t *testing.T) {
	a := NewAddressSpace(2 * sim.MB)
	r := a.Map("heap", 10*sim.MB)
	if r.NumPages() != 5 {
		t.Fatalf("pages = %d, want 5", r.NumPages())
	}
	if r.Size() != 10*sim.MB {
		t.Fatalf("size = %d", r.Size())
	}
	if r.Count(TierNone) != 5 {
		t.Fatalf("new pages should be TierNone, got %d", r.Count(TierNone))
	}
	// Rounds up partial pages.
	r2 := a.Map("odd", 3*sim.MB)
	if r2.NumPages() != 2 {
		t.Fatalf("odd-sized region pages = %d, want 2", r2.NumPages())
	}
	if a.NumPages() != 7 {
		t.Fatalf("NumPages = %d, want 7", a.NumPages())
	}
	// Global IDs resolve.
	for _, p := range r2.AllPages() {
		if a.Page(p.ID) != p {
			t.Fatal("Page(ID) mismatch")
		}
	}
	// Regions do not overlap.
	if r2.Start < r.Start+r.Size() {
		t.Fatal("regions overlap")
	}
}

func TestSetTierMaintainsCounts(t *testing.T) {
	a := NewAddressSpace(2 * sim.MB)
	r := a.Map("heap", 20*sim.MB)
	hot := NewPageSet("hot", r.AllPages()[:4])

	r.PageAt(0).SetTier(TierDRAM)
	r.PageAt(1).SetTier(TierNVM)
	r.PageAt(5).SetTier(TierNVM)

	if r.Count(TierDRAM) != 1 || r.Count(TierNVM) != 2 || r.Count(TierNone) != 7 {
		t.Fatalf("region counts = %d/%d/%d", r.Count(TierDRAM), r.Count(TierNVM), r.Count(TierNone))
	}
	if hot.Count(TierDRAM) != 1 || hot.Count(TierNVM) != 1 {
		t.Fatalf("set counts = %d/%d", hot.Count(TierDRAM), hot.Count(TierNVM))
	}
	// Idempotent.
	r.PageAt(0).SetTier(TierDRAM)
	if r.Count(TierDRAM) != 1 {
		t.Fatal("SetTier not idempotent")
	}
	// Move between tiers.
	r.PageAt(0).SetTier(TierNVM)
	if r.Count(TierDRAM) != 0 || r.Count(TierNVM) != 3 {
		t.Fatal("tier move miscounted")
	}
	if hot.Frac(TierNVM) != 0.5 {
		t.Fatalf("hot NVM frac = %v, want 0.5", hot.Frac(TierNVM))
	}
}

func TestPageSetAddRemove(t *testing.T) {
	a := NewAddressSpace(2 * sim.MB)
	r := a.Map("heap", 8*sim.MB)
	for _, p := range r.AllPages() {
		p.SetTier(TierDRAM)
	}
	s := NewPageSet("s", r.AllPages())
	if s.Len() != 4 || s.Count(TierDRAM) != 4 {
		t.Fatalf("set len/count = %d/%d", s.Len(), s.Count(TierDRAM))
	}
	p := s.Remove(1)
	if s.Len() != 3 || s.Count(TierDRAM) != 3 {
		t.Fatalf("after remove: len/count = %d/%d", s.Len(), s.Count(TierDRAM))
	}
	// The removed page no longer tracks the set.
	p.SetTier(TierNVM)
	if s.Count(TierNVM) != 0 {
		t.Fatal("removed page still updates set counts")
	}
	// Remaining pages still track it.
	s.Page(0).SetTier(TierNVM)
	if s.Count(TierNVM) != 1 {
		t.Fatal("remaining page does not update set counts")
	}
	if s.Bytes() != 3*2*sim.MB {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

// Property: under any sequence of tier moves, per-tier counts of a set
// always sum to its length and match a naive recount.
func TestSetCountConservation(t *testing.T) {
	f := func(moves []uint16) bool {
		a := NewAddressSpace(2 * sim.MB)
		r := a.Map("heap", 64*sim.MB) // 32 pages
		s := NewPageSet("s", r.AllPages()[8:24])
		for _, mv := range moves {
			p := r.PageAt(int(mv) % r.NumPages())
			p.SetTier(Tier(int(mv/64)%3 + 0)) // TierNone..TierNVM
		}
		var want [3]int
		for _, p := range s.Pages() {
			want[p.Tier]++
		}
		total := 0
		for tier := TierNone; tier <= TierNVM; tier++ {
			if s.Count(tier) != want[tier] {
				return false
			}
			total += s.Count(tier)
		}
		return total == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Figure 3: scanning terabytes of base pages takes seconds; huge pages
// milliseconds; gigantic pages microseconds. Small capacities are fast for
// all page sizes.
func TestScanTimeShape(t *testing.T) {
	m := DefaultScanModel()

	oneTB4K := m.ScanTime(sim.TB, 4*1024)
	if oneTB4K < 1*sim.Second || oneTB4K > 10*sim.Second {
		t.Errorf("1TB @4K scan = %v ms, want seconds", oneTB4K/sim.Millisecond)
	}
	oneTB2M := m.ScanTime(sim.TB, 2*sim.MB)
	if oneTB2M > 50*sim.Millisecond {
		t.Errorf("1TB @2M scan = %v ms, want few ms", oneTB2M/sim.Millisecond)
	}
	oneTB1G := m.ScanTime(sim.TB, sim.GB)
	if oneTB1G > sim.Millisecond {
		t.Errorf("1TB @1G scan = %v µs, want µs", oneTB1G/sim.Microsecond)
	}
	// Small memory is fast regardless of page size.
	if m.ScanTime(10*sim.GB, 4*1024) > 100*sim.Millisecond {
		t.Error("10GB @4K scan should be well under 100ms")
	}
	// Monotone in capacity.
	if m.ScanTime(2*sim.TB, 4*1024) <= oneTB4K {
		t.Error("scan time not monotone in capacity")
	}
	// Partial page rounds up.
	if m.ScanTime(1, 4*1024) == 0 {
		t.Error("scan of 1 byte should cost one PTE visit")
	}
}

func TestShootdownStall(t *testing.T) {
	m := DefaultScanModel()
	if m.ShootdownStall(0) != 0 {
		t.Fatal("no pages cleared should cost nothing")
	}
	one := m.ShootdownStall(1)
	if one != m.IPIStall {
		t.Fatalf("one page = %d, want one IPI %d", one, m.IPIStall)
	}
	batch := m.ShootdownStall(m.ShootdownBatch)
	if batch != m.IPIStall {
		t.Fatalf("full batch = %d, want one IPI", batch)
	}
	two := m.ShootdownStall(m.ShootdownBatch + 1)
	if two != 2*m.IPIStall {
		t.Fatalf("batch+1 = %d, want two IPIs", two)
	}
}

func TestTierString(t *testing.T) {
	if TierDRAM.String() != "DRAM" || TierNVM.String() != "NVM" || TierNone.String() != "none" {
		t.Fatal("Tier strings wrong")
	}
	if TierDisk.String() != "disk" || TierCXL.String() != "CXL" {
		t.Fatal("Tier strings wrong for disk/CXL")
	}
	// Values outside the table must not silently alias a real tier.
	if s := Tier(MaxTiers + 3).String(); s != "tier(11)" {
		t.Fatalf("unknown tier prints %q, want explicit tier(11)", s)
	}
	if s := Tier(-1).String(); s != "tier(-1)" {
		t.Fatalf("negative tier prints %q, want explicit tier(-1)", s)
	}
}

// Every registered tier's name round-trips through ParseTier, and a newly
// registered tier joins the table with a fresh, stable ID.
func TestTierStringRoundTrip(t *testing.T) {
	for id := Tier(0); int(id) < NumTiers(); id++ {
		got, ok := ParseTier(id.String())
		if !ok || got != id {
			t.Fatalf("ParseTier(%q) = %v, %v; want %v, true", id.String(), got, ok, id)
		}
	}
	if _, ok := ParseTier("no-such-tier"); ok {
		t.Fatal("ParseTier accepted an unregistered name")
	}
	id := RegisterTier("hbm-test")
	if again := RegisterTier("hbm-test"); again != id {
		t.Fatalf("re-registering returned %v, want %v", again, id)
	}
	if got, ok := ParseTier("hbm-test"); !ok || got != id {
		t.Fatalf("registered tier does not round-trip: %v, %v", got, ok)
	}
	if id.String() != "hbm-test" {
		t.Fatalf("String() = %q, want hbm-test", id.String())
	}
}

// Counter slices allocated before a tier registration grow transparently
// when pages move into the new tier.
func TestCountsGrowAcrossRegistration(t *testing.T) {
	a := NewAddressSpace(2 * sim.MB)
	r := a.Map("heap", 10*sim.MB)
	s := NewPageSet("all", r.AllPages())
	late := RegisterTier("late-test")
	r.PageAt(0).SetTier(late)
	if r.Count(late) != 1 || s.Count(late) != 1 {
		t.Fatalf("late-tier counts = %d/%d, want 1/1", r.Count(late), s.Count(late))
	}
	if r.Count(TierNone) != r.NumPages()-1 {
		t.Fatalf("TierNone count = %d", r.Count(TierNone))
	}
}

func TestMapPanicsOnBadPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAddressSpace(0) did not panic")
		}
	}()
	NewAddressSpace(0)
}
