// Package vm is the virtual-memory substrate of the simulator: virtual
// address regions, per-page metadata (tier placement, accessed/dirty bits,
// migration and write-protect state), page sets for describing workload
// traffic, a page-table scan-time model calibrated to the paper's Figure 3,
// and a TLB-shootdown cost model.
//
// The real HeMem registers anonymous mmap ranges with userfaultfd and backs
// them with DAX files; here a Region plays the role of such a managed
// range, and tier managers receive fault-like callbacks when pages are
// first touched.
package vm

import (
	"fmt"
	"unsafe"

	"github.com/tieredmem/hemem/internal/sim"
)

// Tier identifies where a page currently resides. Tier values index the
// tier descriptor table: the built-in tiers below are pre-registered, and
// RegisterTier extends the table for machines with additional memory
// kinds. TierID is the index-flavoured alias used by table-keyed APIs
// (device-model registry, per-tier fault counters, free targets).
type Tier int8

// TierID is an alias for Tier, used where a value is a table index rather
// than a residency tag.
type TierID = Tier

const (
	TierNone Tier = iota // not yet backed (never touched)
	TierDRAM
	TierNVM
	// TierDisk is the optional slowest tier: pages swapped out to a
	// block device (§3.4's "Swapping" discussion).
	TierDisk
	// TierCXL is a CXL-attached memory expander: slower than DRAM,
	// faster than NVM, with symmetric read/write bandwidth.
	TierCXL
)

// MaxTiers bounds the tier table. Fixed-size per-tier arrays (fault
// counters, migration edge counts) are sized by it so the structs that
// embed them stay comparable.
const MaxTiers = 8

// tierNames is the descriptor table's name column; the index is the
// TierID. RegisterTier appends to it.
var tierNames = []string{"none", "DRAM", "NVM", "disk", "CXL"}

// NumTiers returns the current size of the tier table (including
// TierNone).
func NumTiers() int { return len(tierNames) }

// RegisterTier adds a named tier to the table and returns its TierID. If
// the name is already registered the existing ID is returned, so
// registration is idempotent and deterministic regardless of how many
// machines are constructed.
func RegisterTier(name string) Tier {
	for i, n := range tierNames {
		if n == name {
			return Tier(i)
		}
	}
	if len(tierNames) >= MaxTiers {
		panic("vm: tier table full (MaxTiers)")
	}
	tierNames = append(tierNames, name)
	return Tier(len(tierNames) - 1)
}

// String returns the tier's registered name. TierNone and values outside
// the table are reported explicitly — an unknown tier prints as
// "tier(<n>)" rather than silently aliasing a real one.
func (t Tier) String() string {
	switch t {
	case TierNone:
		return "none"
	case TierDRAM:
		return "DRAM"
	case TierNVM:
		return "NVM"
	case TierDisk:
		return "disk"
	case TierCXL:
		return "CXL"
	}
	if int(t) > 0 && int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ParseTier maps a registered tier name back to its TierID; ok is false
// for unknown names.
func ParseTier(name string) (Tier, bool) {
	for i, n := range tierNames {
		if n == name {
			return Tier(i), true
		}
	}
	return TierNone, false
}

// PageID is a global page index within an AddressSpace.
type PageID int32

// Page is the metadata for one virtual page. HeMem's prototype tracks at
// huge-page (2 MB) granularity; the page size is a property of the
// AddressSpace.
type Page struct {
	ID     PageID
	Region *Region
	Index  int // page index within its region

	Tier Tier

	// Accessed and Dirty model the page-table bits that scanning-based
	// managers (Nimble, HeMem-PT) consume. The machine sets them
	// statistically from traffic rates; scanners read and clear them.
	Accessed bool
	Dirty    bool

	// Migrating marks a page whose contents are being copied between
	// tiers; writes to it stall (userfaultfd write-protection, §3.2).
	Migrating bool

	// Remaps counts how many times this page was remapped to a fresh
	// physical frame after an uncorrectable media error retired the frame
	// backing it (AddressSpace.RetireFrame).
	Remaps int

	// CorrectableErrors counts ECC-corrected media errors absorbed by the
	// frame currently backing this page. The fault layer retires frames
	// predictively once the count crosses its threshold; RetireFrame
	// zeroes it, since the replacement frame starts with a clean history.
	CorrectableErrors int

	// Set membership is stored inline for the common case (a page joins
	// at most two sets: e.g. GUPS hot + write-only partitions) so that
	// building million-page sets does not allocate a slice header per
	// page; extra memberships spill to setsOv.
	set0, set1 *PageSet
	setsOv     []*PageSet
}

// EachSet calls f for every page set this page belongs to, without
// allocating — the accessor for hot paths (e.g. per-page scan and
// region-sampling loops) that InSets is too expensive for.
func (p *Page) EachSet(f func(*PageSet)) {
	if p.set0 != nil {
		f(p.set0)
	}
	if p.set1 != nil {
		f(p.set1)
	}
	for _, s := range p.setsOv {
		f(s)
	}
}

// InSets returns the page sets this page belongs to. The slice is freshly
// allocated; hot paths should not call this.
func (p *Page) InSets() []*PageSet {
	var out []*PageSet
	if p.set0 != nil {
		out = append(out, p.set0)
	}
	if p.set1 != nil {
		out = append(out, p.set1)
	}
	return append(out, p.setsOv...)
}

// addSet registers membership of p in s.
func (p *Page) addSet(s *PageSet) {
	switch {
	case p.set0 == nil:
		p.set0 = s
	case p.set1 == nil:
		p.set1 = s
	default:
		p.setsOv = append(p.setsOv, s)
	}
}

// removeSet unregisters membership of p in s.
func (p *Page) removeSet(s *PageSet) {
	switch {
	case p.set0 == s:
		p.set0 = nil
	case p.set1 == s:
		p.set1 = nil
	default:
		for j, ps := range p.setsOv {
			if ps == s {
				p.setsOv[j] = p.setsOv[len(p.setsOv)-1]
				p.setsOv = p.setsOv[:len(p.setsOv)-1]
				return
			}
		}
	}
}

// SetTier moves the page to tier t, maintaining the occupancy counters of
// its region and of every page set that contains it.
func (p *Page) SetTier(t Tier) {
	if p.Tier == t {
		return
	}
	p.Region.counts = bump(p.Region.counts, p.Tier, t)
	if s := p.set0; s != nil {
		s.counts = bump(s.counts, p.Tier, t)
	}
	if s := p.set1; s != nil {
		s.counts = bump(s.counts, p.Tier, t)
	}
	for _, s := range p.setsOv {
		s.counts = bump(s.counts, p.Tier, t)
	}
	if o := p.Region.owner; o != TenantNone {
		p.Region.space.bumpTenant(o, p.Tier, t)
	}
	p.Tier = t
}

// bump moves one page's worth of occupancy from tier `from` to tier `to`
// in a table-sized counter slice, growing the slice if a tier was
// registered after the slice was allocated.
func bump(c []int, from, to Tier) []int {
	if int(to) >= len(c) || int(from) >= len(c) {
		c = growCounts(c)
	}
	c[from]--
	c[to]++
	return c
}

// growCounts resizes a counter slice to the current tier-table size.
func growCounts(c []int) []int {
	n := make([]int, NumTiers())
	copy(n, c)
	return n
}

// countOf reads a counter slice at tier t, tolerating slices allocated
// before t was registered.
func countOf(c []int, t Tier) int {
	if int(t) >= 0 && int(t) < len(c) {
		return c[t]
	}
	return 0
}

// Page metadata is materialized in fixed-size chunks so that terabyte
// regions cost memory proportional to the pages actually touched, not the
// mapped size. A chunk is a value array: page pointers handed out by
// PageAt stay stable for the life of the region.
const (
	chunkShift = 6
	chunkPages = 1 << chunkShift
	chunkMask  = chunkPages - 1
)

type pageChunk [chunkPages]Page

// Region is a contiguous virtual address range created by an (intercepted)
// mmap call. Page metadata is materialized lazily on first touch (tracker
// sample, migration, fault, or explicit access through PageAt); untouched
// pages exist only as the TierNone residue of the occupancy counters.
type Region struct {
	// ID is the region's dense index within its AddressSpace; managers
	// use it to keep per-region state in slices instead of pointer maps.
	ID       int
	Name     string
	Start    int64
	PageSize int64

	n    int    // pages in the region
	base PageID // global ID of page 0
	// chunks holds the lazily materialized page slabs; a nil entry means
	// no page in that 64-page window has ever been touched.
	chunks  []*pageChunk
	touched int
	space   *AddressSpace

	// counts is indexed by TierID and sized by the tier table. The
	// TierNone count includes unmaterialized pages.
	counts []int

	// owner is the tenant this region is charged to, or TenantNone for
	// untenanted regions (the default: Map never sets it). Owned regions
	// mirror every tier transition into the address space's per-tenant
	// occupancy table (see tenant.go).
	owner TenantID
}

// Size returns the region length in bytes.
func (r *Region) Size() int64 { return int64(r.n) * r.PageSize }

// NumPages returns the number of pages the region spans (touched or not).
func (r *Region) NumPages() int { return r.n }

// TouchedPages returns how many of the region's pages have materialized
// metadata.
func (r *Region) TouchedPages() int { return r.touched }

// PageAt returns the page at index i, materializing its metadata on first
// touch. The returned pointer is stable for the life of the region.
func (r *Region) PageAt(i int) *Page {
	ci := i >> chunkShift
	c := r.chunks[ci]
	if c == nil {
		c = new(pageChunk)
		r.chunks[ci] = c
	}
	p := &c[i&chunkMask]
	if p.Region == nil {
		p.ID, p.Region, p.Index = r.base+PageID(i), r, i
		r.touched++
		if r.space != nil {
			r.space.touched++
		}
	}
	return p
}

// Peek returns the page at index i if its metadata has materialized, nil
// otherwise. An unmaterialized page is by definition in TierNone with no
// set memberships, so observers can skip it.
func (r *Region) Peek(i int) *Page {
	c := r.chunks[i>>chunkShift]
	if c == nil {
		return nil
	}
	p := &c[i&chunkMask]
	if p.Region == nil {
		return nil
	}
	return p
}

// EachPage calls f for every materialized page, in ascending index order.
// Untouched pages are skipped: they are in TierNone and belong to no set,
// so occupancy observers lose nothing.
func (r *Region) EachPage(f func(*Page)) {
	for _, c := range r.chunks {
		if c == nil {
			continue
		}
		for j := range c {
			if p := &c[j]; p.Region != nil {
				f(p)
			}
		}
	}
}

// MaterializeAll forces metadata for every page in the region — the dense
// baseline against which the sparse path is measured, and what Warm-style
// whole-region placement naturally produces.
func (r *Region) MaterializeAll() {
	for i := 0; i < r.n; i++ {
		r.PageAt(i)
	}
}

// AllPages returns a fresh slice of every page in index order,
// materializing the whole region. Workloads that address their entire
// mapping (perm-based hot/cold splits) use this; sparse-friendly
// workloads should address windows through PageAt instead.
func (r *Region) AllPages() []*Page {
	out := make([]*Page, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.PageAt(i)
	}
	return out
}

// Count returns how many of the region's pages are in tier t.
func (r *Region) Count(t Tier) int { return countOf(r.counts, t) }

// Frac returns the fraction of the region's pages in tier t.
func (r *Region) Frac(t Tier) float64 {
	if r.n == 0 {
		return 0
	}
	return float64(countOf(r.counts, t)) / float64(r.n)
}

// Bytes returns the bytes of the region resident in tier t.
func (r *Region) Bytes(t Tier) int64 { return int64(countOf(r.counts, t)) * r.PageSize }

// AsSet returns a PageSet covering the whole region (materializing it).
func (r *Region) AsSet() *PageSet {
	s := &PageSet{Name: r.Name, pages: make([]*Page, 0, r.n), counts: make([]int, NumTiers())}
	for i := 0; i < r.n; i++ {
		s.Add(r.PageAt(i))
	}
	return s
}

func (r *Region) String() string {
	return fmt.Sprintf("%s[%d pages × %d]", r.Name, r.n, r.PageSize)
}

// PageSet is an arbitrary (possibly non-contiguous) set of pages used to
// describe workload traffic: e.g., GUPS' 16 GB hot set scattered through a
// 512 GB working set. Sets maintain per-tier occupancy so the machine can
// split a traffic component across devices in O(1).
type PageSet struct {
	Name  string
	pages []*Page
	// counts is indexed by TierID and sized by the tier table.
	counts []int
}

// NewPageSet builds a set over the given pages and registers the
// membership on each page.
func NewPageSet(name string, pages []*Page) *PageSet {
	s := &PageSet{Name: name, pages: make([]*Page, 0, len(pages)), counts: make([]int, NumTiers())}
	for _, p := range pages {
		s.Add(p)
	}
	return s
}

// Add inserts page p into the set.
func (s *PageSet) Add(p *Page) {
	s.pages = append(s.pages, p)
	if int(p.Tier) >= len(s.counts) {
		s.counts = growCounts(s.counts)
	}
	s.counts[p.Tier]++
	p.addSet(s)
}

// Remove deletes the page at index i (swap-with-last; order is not
// preserved). It unregisters the set from the page.
func (s *PageSet) Remove(i int) *Page {
	p := s.pages[i]
	last := len(s.pages) - 1
	s.pages[i] = s.pages[last]
	s.pages[last] = nil
	s.pages = s.pages[:last]
	if int(p.Tier) >= len(s.counts) {
		s.counts = growCounts(s.counts)
	}
	s.counts[p.Tier]--
	p.removeSet(s)
	return p
}

// Len returns the number of pages in the set.
func (s *PageSet) Len() int { return len(s.pages) }

// Page returns the i-th page.
func (s *PageSet) Page(i int) *Page { return s.pages[i] }

// Pages returns the backing slice (callers must not mutate it).
func (s *PageSet) Pages() []*Page { return s.pages }

// Count returns how many pages of the set are in tier t.
func (s *PageSet) Count(t Tier) int { return countOf(s.counts, t) }

// Frac returns the fraction of the set's pages in tier t. Pages still in
// TierNone count toward neither.
func (s *PageSet) Frac(t Tier) float64 {
	if len(s.pages) == 0 {
		return 0
	}
	return float64(countOf(s.counts, t)) / float64(len(s.pages))
}

// Bytes returns set bytes, assuming a uniform page size.
func (s *PageSet) Bytes() int64 {
	if len(s.pages) == 0 {
		return 0
	}
	return int64(len(s.pages)) * s.pages[0].Region.PageSize
}

// AddressSpace owns all regions and pages of one simulated process.
type AddressSpace struct {
	PageSize int64
	Regions  []*Region

	// spans maps global PageID ranges back to their regions. Entries are
	// append-only: an unmapped region keeps its span so stale PageIDs in
	// flight still resolve (to a TierNone page with no sets), matching the
	// old dense index's behavior.
	spans         []pageSpan
	numPages      int
	touched       int
	nextVA        int64
	nextRegionID  int
	retiredFrames int

	// tenants holds one tier-table-sized occupancy counter slice per
	// tenant ID ever charged in this space (index id-1; see tenant.go).
	// Like the per-region counts, each slice's TierNone slot includes
	// unmaterialized pages of owned regions.
	tenants [][]int
}

// pageSpan is one region's slice of the global PageID space.
type pageSpan struct {
	base PageID
	n    int
	r    *Region
}

// NumRegions returns how many regions were ever mapped (unmapped regions
// keep their IDs, so this is also the upper bound on Region.ID + 1).
func (a *AddressSpace) NumRegions() int { return a.nextRegionID }

// NewAddressSpace creates an empty address space with the given page size
// (HeMem's prototype uses 2 MB huge pages).
func NewAddressSpace(pageSize int64) *AddressSpace {
	if pageSize <= 0 {
		panic("vm: page size must be positive")
	}
	return &AddressSpace{PageSize: pageSize, nextVA: 1 << 40}
}

// Map creates a region of the given size (rounded up to whole pages),
// modelling an intercepted mmap of anonymous memory. All pages start in
// TierNone; the active tier manager places them on first touch.
func (a *AddressSpace) Map(name string, size int64) *Region {
	n := int((size + a.PageSize - 1) / a.PageSize)
	r := &Region{ID: a.nextRegionID, Name: name, Start: a.nextVA, PageSize: a.PageSize}
	a.nextRegionID++
	r.n = n
	r.base = PageID(a.numPages)
	r.space = a
	// Page metadata materializes lazily in 64-page chunks (see PageAt);
	// mapping a terabyte costs one pointer per chunk window, not a Page
	// per 2 MB.
	r.chunks = make([]*pageChunk, (n+chunkPages-1)/chunkPages)
	r.counts = make([]int, NumTiers())
	r.counts[TierNone] = n
	a.spans = append(a.spans, pageSpan{base: r.base, n: n, r: r})
	a.numPages += n
	a.nextVA += int64(n) * a.PageSize
	a.Regions = append(a.Regions, r)
	return r
}

// Unmap removes region r from the address space, modelling munmap of the
// whole range. The pages keep their IDs (stale PageIDs in flight resolve
// to a page in TierNone with no sets) but leave every page set they were
// in; the active tier manager must have released its own tracking first
// (see machine.Machine.Unmap).
func (a *AddressSpace) Unmap(r *Region) {
	owner := r.owner
	r.EachPage(func(p *Page) {
		if p.set0 != nil {
			removePageFromSet(p.set0, p)
		}
		if p.set1 != nil {
			removePageFromSet(p.set1, p)
		}
		for len(p.setsOv) > 0 {
			removePageFromSet(p.setsOv[0], p)
		}
		p.SetTier(TierNone)
	})
	if owner != TenantNone {
		// Every page is back in TierNone now (touched pages just moved
		// there, untouched ones never left), so the tenant's whole charge
		// for this region sits in the TierNone slot. Drop it, and clear
		// the owner so stale PageIDs resolving into the dead region can
		// never bump tenant counters again.
		a.chargeTenant(owner, TierNone, -r.n)
		r.owner = TenantNone
	}
	for i, reg := range a.Regions {
		if reg == r {
			a.Regions = append(a.Regions[:i], a.Regions[i+1:]...)
			break
		}
	}
}

// removePageFromSet removes p from s by scanning for its index.
func removePageFromSet(s *PageSet, p *Page) {
	for i, q := range s.pages {
		if q == p {
			s.Remove(i)
			return
		}
	}
}

// Page returns the page with the given global ID, materializing its
// metadata if needed. IDs from unmapped regions still resolve (the page is
// in TierNone with no sets).
func (a *AddressSpace) Page(id PageID) *Page {
	lo, hi := 0, len(a.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if s := &a.spans[mid]; id >= s.base+PageID(s.n) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s := &a.spans[lo]
	return s.r.PageAt(int(id - s.base))
}

// NumPages returns the total number of pages ever mapped (unmapped
// regions keep their IDs, so this never shrinks).
func (a *AddressSpace) NumPages() int { return a.numPages }

// TouchedPages returns how many pages across all spans (including
// unmapped ones) have materialized metadata.
func (a *AddressSpace) TouchedPages() int { return a.touched }

// MetadataBytes returns the deterministic footprint of the page-metadata
// slabs: materialized chunks plus the per-region chunk-pointer tables.
// It is an accounting figure (what the sparse representation pays for the
// pages touched so far), not a live heap measurement, so dense-vs-sparse
// comparisons are reproducible across runs and hosts.
func (a *AddressSpace) MetadataBytes() int64 {
	const pageBytes = int64(unsafe.Sizeof(Page{}))
	const ptrBytes = int64(unsafe.Sizeof((*pageChunk)(nil)))
	var total int64
	for _, s := range a.spans {
		total += int64(len(s.r.chunks)) * ptrBytes
		for _, c := range s.r.chunks {
			if c != nil {
				total += chunkPages * pageBytes
			}
		}
	}
	return total
}

// RetireFrame records that the physical frame backing p suffered an
// uncorrectable media error (or crossed the correctable-error retirement
// threshold) and was taken out of service: p is remapped to a fresh frame
// (the OS hwpoison/soft-offline path) and keeps its virtual address,
// tier, and set memberships. The fresh frame has a clean error history.
func (a *AddressSpace) RetireFrame(p *Page) {
	p.Remaps++
	p.CorrectableErrors = 0
	a.retiredFrames++
}

// RetiredFrames returns how many physical frames were retired after
// uncorrectable errors.
func (a *AddressSpace) RetiredFrames() int { return a.retiredFrames }

// TotalBytes returns the bytes mapped across all regions.
func (a *AddressSpace) TotalBytes() int64 { return int64(a.numPages) * a.PageSize }

// ScanModel is the cost model for page-table access/dirty-bit scanning and
// the TLB shootdowns required when clearing bits (§2.3, Figure 3).
type ScanModel struct {
	// PTECost4K/2M/1G is the per-entry visit cost in ns. Smaller pages
	// mean more entries and a deeper table, so the per-entry cost rises
	// slightly while the entry count explodes.
	PTECost4K int64
	PTECost2M int64
	PTECost1G int64

	// ShootdownBatch is how many cleared entries share one TLB shootdown
	// (Linux batches invalidations); IPIStall is the per-shootdown stall
	// charged to every running thread.
	ShootdownBatch int
	IPIStall       int64
}

// DefaultScanModel returns the calibrated model: scanning 1 TB of 4 KB
// pages takes seconds (Figure 3), and clearing bits costs app threads
// roughly 15–20% of throughput when scans run back to back (Figure 8's "PT
// Scan" bar).
func DefaultScanModel() ScanModel {
	return ScanModel{
		PTECost4K:      12,
		PTECost2M:      11,
		PTECost1G:      10,
		ShootdownBatch: 2048,
		IPIStall:       4 * sim.Microsecond,
	}
}

// perPTE returns the per-entry cost for the given page size.
func (m ScanModel) perPTE(pageSize int64) int64 {
	switch {
	case pageSize >= sim.GB:
		return m.PTECost1G
	case pageSize >= 2*sim.MB:
		return m.PTECost2M
	default:
		return m.PTECost4K
	}
}

// ScanTime returns how long one full scan pass over capacity bytes of
// memory mapped at pageSize takes (Figure 3).
func (m ScanModel) ScanTime(capacity int64, pageSize int64) int64 {
	entries := capacity / pageSize
	if capacity%pageSize != 0 {
		entries++
	}
	return entries * m.perPTE(pageSize)
}

// ShootdownStall returns the stall in ns charged to each running thread
// when a scan pass visits and clears entriesScanned page-table entries.
// The kernel batches invalidations at a fixed entry interval as it scans,
// so the stall is proportional to the scanned range: with the default
// parameters it costs application threads ~16% of the scan duration — the
// overhead the paper's Figure 8 "PT Scan" bar measures at 18%.
func (m ScanModel) ShootdownStall(entriesScanned int) int64 {
	if entriesScanned <= 0 {
		return 0
	}
	shootdowns := (entriesScanned + m.ShootdownBatch - 1) / m.ShootdownBatch
	return int64(shootdowns) * m.IPIStall
}

// FaultCost is the modelled cost of one userfaultfd page-missing fault:
// kernel forwarding to the handler thread, zero-page mapping, and waking
// the faulting thread. The paper measures this overhead as negligible for
// its applications (one fault per page, ever); it matters only during
// warm-up.
const FaultCost = 4 * sim.Microsecond
