package vm

import "testing"

// Owned regions mirror every tier transition into the per-tenant table,
// and Unmap releases the whole charge (touched and untouched pages).
func TestTenantOccupancyCounters(t *testing.T) {
	as := NewAddressSpace(2 << 20)
	r1 := as.MapOwned("t1-a", 8<<21, 1) // 8 pages, tenant 1
	r2 := as.MapOwned("t2-a", 4<<21, 2) // 4 pages, tenant 2
	plain := as.Map("shared", 4<<21)    // untenanted

	if got := as.NumTenants(); got != 2 {
		t.Fatalf("NumTenants = %d, want 2", got)
	}
	if got := as.TenantPages(1, TierNone); got != 8 {
		t.Fatalf("tenant 1 TierNone = %d, want 8", got)
	}
	if got := as.TenantPages(2, TierNone); got != 4 {
		t.Fatalf("tenant 2 TierNone = %d, want 4", got)
	}

	r1.PageAt(0).SetTier(TierDRAM)
	r1.PageAt(1).SetTier(TierDRAM)
	r1.PageAt(2).SetTier(TierNVM)
	r2.PageAt(0).SetTier(TierNVM)
	plain.PageAt(0).SetTier(TierDRAM)

	if got := as.TenantPages(1, TierDRAM); got != 2 {
		t.Fatalf("tenant 1 DRAM = %d, want 2", got)
	}
	if got := as.TenantPages(1, TierNVM); got != 1 {
		t.Fatalf("tenant 1 NVM = %d, want 1", got)
	}
	if got := as.TenantPages(1, TierNone); got != 5 {
		t.Fatalf("tenant 1 TierNone = %d, want 5", got)
	}
	if got := as.TenantPages(2, TierNVM); got != 1 {
		t.Fatalf("tenant 2 NVM = %d, want 1", got)
	}
	// The untenanted region never touches the table.
	if got := as.TenantPages(0, TierDRAM); got != 0 {
		t.Fatalf("TenantNone DRAM = %d, want 0", got)
	}

	// Tier moves keep the charge with the owner.
	r1.PageAt(2).SetTier(TierDRAM)
	if got := as.TenantPages(1, TierDRAM); got != 3 {
		t.Fatalf("tenant 1 DRAM after promote = %d, want 3", got)
	}
	if got := as.TenantPages(1, TierNVM); got != 0 {
		t.Fatalf("tenant 1 NVM after promote = %d, want 0", got)
	}

	// Unmap releases the full charge and detaches the owner.
	as.Unmap(r1)
	for tier := Tier(0); int(tier) < NumTiers(); tier++ {
		if got := as.TenantPages(1, tier); got != 0 {
			t.Fatalf("tenant 1 %v after Unmap = %d, want 0", tier, got)
		}
	}
	if r1.Owner() != TenantNone {
		t.Fatalf("unmapped region still owned by %d", r1.Owner())
	}
	// Tenant 2 is untouched by tenant 1's teardown.
	if got := as.TenantPages(2, TierNVM); got != 1 {
		t.Fatalf("tenant 2 NVM after peer Unmap = %d, want 1", got)
	}
}

// MapOwned with TenantNone degrades to a plain Map.
func TestMapOwnedNoneIsPlainMap(t *testing.T) {
	as := NewAddressSpace(2 << 20)
	r := as.MapOwned("anon", 4<<21, TenantNone)
	if r.Owner() != TenantNone {
		t.Fatalf("owner = %d, want TenantNone", r.Owner())
	}
	if as.NumTenants() != 0 {
		t.Fatalf("NumTenants = %d, want 0", as.NumTenants())
	}
	r.PageAt(0).SetTier(TierDRAM)
	if as.NumTenants() != 0 {
		t.Fatalf("SetTier on untenanted page grew the tenant table")
	}
}

// Counter slices grow when a tier is registered after the tenant's first
// charge (registry-sized idiom shared with region/set counts).
func TestTenantCountsGrowWithRegistry(t *testing.T) {
	as := NewAddressSpace(2 << 20)
	r := as.MapOwned("grow", 2<<21, 7) // sparse ID: table grows to 7 slots
	if got := as.NumTenants(); got != 7 {
		t.Fatalf("NumTenants = %d, want 7", got)
	}
	tier := RegisterTier("tenant-test-tier")
	r.PageAt(0).SetTier(tier)
	if got := as.TenantPages(7, tier); got != 1 {
		t.Fatalf("tenant 7 in late tier = %d, want 1", got)
	}
}
