package vm

// Tenant ownership of regions. A TenantID tags a Region with the tenant
// it is charged to; the AddressSpace mirrors every tier transition of an
// owned page into a per-tenant, per-tier occupancy table sized by the
// tier registry (the same idiom as the per-region and per-set counter
// slices). Untenanted regions — everything created through Map — never
// touch the table, so the zero-tenant path is byte-identical to a build
// without tenancy.

// TenantID identifies a tenant within an AddressSpace. IDs are dense and
// start at 1; TenantNone (0) marks untenanted regions.
type TenantID int32

// TenantNone is the zero TenantID: the region is not charged to any
// tenant.
const TenantNone TenantID = 0

// MapOwned creates a region like Map and charges it to the given tenant:
// all pages start in the tenant's TierNone count and follow every
// SetTier transition until Unmap releases the whole charge. A TenantNone
// owner degrades to a plain Map.
func (a *AddressSpace) MapOwned(name string, size int64, owner TenantID) *Region {
	r := a.Map(name, size)
	if owner != TenantNone {
		r.owner = owner
		a.chargeTenant(owner, TierNone, r.n)
	}
	return r
}

// Owner returns the tenant this region is charged to (TenantNone for
// untenanted regions).
func (r *Region) Owner() TenantID { return r.owner }

// NumTenants returns the number of tenant IDs ever charged in this
// address space (IDs run 1..NumTenants; departed tenants keep their
// slot, zeroed).
func (a *AddressSpace) NumTenants() int { return len(a.tenants) }

// TenantPages returns how many pages tenant id currently holds in tier
// t. Unknown IDs and tiers read as zero.
func (a *AddressSpace) TenantPages(id TenantID, t Tier) int {
	if id <= 0 || int(id) > len(a.tenants) {
		return 0
	}
	return countOf(a.tenants[id-1], t)
}

// TenantBytes returns tenant id's resident bytes in tier t.
func (a *AddressSpace) TenantBytes(id TenantID, t Tier) int64 {
	return int64(a.TenantPages(id, t)) * a.PageSize
}

// bumpTenant moves one owned page's charge from tier `from` to tier
// `to`.
func (a *AddressSpace) bumpTenant(id TenantID, from, to Tier) {
	c := a.tenantCounts(id)
	a.tenants[id-1] = bump(c, from, to)
}

// chargeTenant adds n pages (possibly negative) to tenant id's count in
// tier t — the bulk entry/exit path used by MapOwned and Unmap.
func (a *AddressSpace) chargeTenant(id TenantID, t Tier, n int) {
	c := a.tenantCounts(id)
	if int(t) >= len(c) {
		c = growCounts(c)
		a.tenants[id-1] = c
	}
	c[t] += n
}

// tenantCounts returns tenant id's counter slice, growing the table for
// newly seen IDs.
func (a *AddressSpace) tenantCounts(id TenantID) []int {
	for int(id) > len(a.tenants) {
		a.tenants = append(a.tenants, make([]int, NumTiers()))
	}
	return a.tenants[id-1]
}
