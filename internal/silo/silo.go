// Package silo implements a Silo-style in-memory transactional database
// (Tu et al., SOSP '13), the substrate of the paper's TPC-C experiments
// (§5.2.1): named tables with hash primary indexes and optimistic
// concurrency control — transactions buffer reads and writes, then commit
// with the Silo protocol (lock write set in deterministic order, validate
// the read set's TIDs, install new versions under a fresh TID).
//
// The engine is a real concurrent database used by internal/tpcc and the
// examples; the simulator models its memory traffic separately.
package silo

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrConflict aborts a transaction whose read set changed before commit.
var ErrConflict = errors.New("silo: conflict, transaction aborted")

// ErrNotFound is returned for reads of missing keys.
var ErrNotFound = errors.New("silo: key not found")

// rowSeq hands out creation-order identities used for deterministic,
// deadlock-free write-set lock ordering.
var rowSeq atomic.Uint64

// row is a versioned record.
type row struct {
	seq  uint64
	mu   sync.Mutex
	tid  uint64
	data []byte
	dead bool
}

// Table is a hash-indexed table of rows keyed by uint64.
type Table struct {
	name   string
	shards [64]struct {
		mu   sync.RWMutex
		rows map[uint64]*row
	}
}

func newTable(name string) *Table {
	t := &Table{name: name}
	for i := range t.shards {
		t.shards[i].rows = make(map[uint64]*row)
	}
	return t
}

func (t *Table) shard(key uint64) *struct {
	mu   sync.RWMutex
	rows map[uint64]*row
} {
	return &t.shards[(key*0x9e3779b97f4a7c15)>>58]
}

// get returns the row for key, or nil.
func (t *Table) get(key uint64) *row {
	s := t.shard(key)
	s.mu.RLock()
	r := s.rows[key]
	s.mu.RUnlock()
	return r
}

// ensure returns the row for key, creating an empty (absent) one so that
// inserts can lock it.
func (t *Table) ensure(key uint64) *row {
	s := t.shard(key)
	s.mu.Lock()
	r := s.rows[key]
	if r == nil {
		r = &row{seq: rowSeq.Add(1), dead: true}
		s.rows[key] = r
	}
	s.mu.Unlock()
	return r
}

// DB is the database: a set of tables and a TID generator.
type DB struct {
	mu     sync.Mutex
	tables map[string]*Table
	tid    atomic.Uint64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Table returns the named table, creating it on first use.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[name]
	if t == nil {
		t = newTable(name)
		db.tables[name] = t
	}
	return t
}

// Tx is a transaction. A Tx is not safe for concurrent use; each worker
// runs its own.
type Tx struct {
	db     *DB
	reads  map[*row]uint64 // row → tid observed
	writes map[*row][]byte // row → new value (nil = delete)
	order  []*row          // write locking order
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{
		db:     db,
		reads:  make(map[*row]uint64),
		writes: make(map[*row][]byte),
	}
}

// Read returns the value of key in table, observing its version. Values
// previously written in this transaction are returned from the write set.
func (tx *Tx) Read(t *Table, key uint64) ([]byte, error) {
	r := t.get(key)
	if r == nil {
		return nil, ErrNotFound
	}
	if v, ok := tx.writes[r]; ok {
		if v == nil {
			return nil, ErrNotFound
		}
		return v, nil
	}
	r.mu.Lock()
	tid, data, dead := r.tid, r.data, r.dead
	r.mu.Unlock()
	tx.reads[r] = tid
	if dead {
		return nil, ErrNotFound
	}
	return data, nil
}

// Write buffers a write of key in table. The value is captured by
// reference; callers must not mutate it afterwards.
func (tx *Tx) Write(t *Table, key uint64, value []byte) {
	r := t.ensure(key)
	if _, seen := tx.writes[r]; !seen {
		tx.order = append(tx.order, r)
	}
	tx.writes[r] = value
}

// Delete buffers a deletion of key.
func (tx *Tx) Delete(t *Table, key uint64) {
	tx.Write(t, key, nil)
}

// Commit runs Silo's commit protocol: lock the write set in a global
// deterministic order, validate that no read row changed, then install the
// writes under a fresh TID.
func (tx *Tx) Commit() error {
	// Phase 1: lock writes in address order (deadlock freedom).
	sort.Slice(tx.order, func(i, j int) bool {
		return rowLess(tx.order[i], tx.order[j])
	})
	for _, r := range tx.order {
		r.mu.Lock()
	}
	unlock := func() {
		for _, r := range tx.order {
			r.mu.Unlock()
		}
	}
	// Phase 2: validate the read set.
	for r, tid := range tx.reads {
		if _, own := tx.writes[r]; own {
			continue // already locked by us; check version directly
		}
		r.mu.Lock()
		cur := r.tid
		r.mu.Unlock()
		if cur != tid {
			unlock()
			return ErrConflict
		}
	}
	for r, tid := range tx.reads {
		if _, own := tx.writes[r]; own && r.tid != tid {
			unlock()
			return ErrConflict
		}
	}
	// Phase 3: install.
	tid := tx.db.tid.Add(1)
	for r, v := range tx.writes {
		r.tid = tid
		if v == nil {
			r.dead = true
			r.data = nil
		} else {
			r.dead = false
			r.data = v
		}
	}
	unlock()
	return nil
}

// rowLess orders rows for deadlock-free locking.
func rowLess(a, b *row) bool { return a.seq < b.seq }

// validateReads re-checks the observed version of every row in the read
// set and reports whether the snapshot is still current. Commit performs
// the same check under the write locks; this standalone form lets Run
// distinguish a transaction body that failed on a torn snapshot (retry)
// from one that failed on current data (a real error).
func (tx *Tx) validateReads() bool {
	for r, tid := range tx.reads {
		r.mu.Lock()
		cur := r.tid
		r.mu.Unlock()
		if cur != tid {
			return false
		}
	}
	return true
}

// Run executes fn in a transaction, retrying on conflicts — both
// conflicts detected at commit and conflicts surfacing inside fn. A
// transaction body reads one row at a time, so between two reads a
// concurrent commit can tear the snapshot (e.g. it consumes the order
// our district read pointed at and deletes its row); fn then fails with
// an error like ErrNotFound that is really a serialization conflict,
// not a data error. Errors from fn are therefore returned only when the
// read set still validates — on a stale snapshot the transaction
// retries exactly as a commit-time conflict would, which is what Silo's
// protocol guarantees for transactions that reach validation.
func (db *DB) Run(fn func(tx *Tx) error) error {
	for {
		tx := db.Begin()
		if err := fn(tx); err != nil {
			if errors.Is(err, ErrConflict) || !tx.validateReads() {
				continue
			}
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
	}
}
