package silo

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadYourWrites(t *testing.T) {
	db := NewDB()
	tbl := db.Table("t")
	tx := db.Begin()
	if _, err := tx.Read(tbl, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read missing = %v", err)
	}
	tx.Write(tbl, 1, []byte("a"))
	v, err := tx.Read(tbl, 1)
	if err != nil || string(v) != "a" {
		t.Fatalf("read own write = %q, %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Visible to later transactions.
	tx2 := db.Begin()
	v, err = tx2.Read(tbl, 1)
	if err != nil || string(v) != "a" {
		t.Fatalf("read after commit = %q, %v", v, err)
	}
}

func TestDeleteVisibility(t *testing.T) {
	db := NewDB()
	tbl := db.Table("t")
	if err := db.Run(func(tx *Tx) error { tx.Write(tbl, 5, []byte("x")); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := db.Run(func(tx *Tx) error { tx.Delete(tbl, 5); return nil }); err != nil {
		t.Fatal(err)
	}
	err := db.Run(func(tx *Tx) error {
		_, err := tx.Read(tbl, 5)
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("read deleted = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A transaction whose read set changed before commit aborts.
func TestConflictDetection(t *testing.T) {
	db := NewDB()
	tbl := db.Table("t")
	db.Run(func(tx *Tx) error { tx.Write(tbl, 1, []byte("v0")); return nil })

	t1 := db.Begin()
	if _, err := t1.Read(tbl, 1); err != nil {
		t.Fatal(err)
	}
	// Interleaved writer commits first.
	db.Run(func(tx *Tx) error { tx.Write(tbl, 1, []byte("v1")); return nil })

	t1.Write(tbl, 2, []byte("dep"))
	if err := t1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale read committed: %v", err)
	}
	// The aborted transaction's write is not visible.
	db.Run(func(tx *Tx) error {
		if _, err := tx.Read(tbl, 2); !errors.Is(err, ErrNotFound) {
			t.Error("aborted write leaked")
		}
		return nil
	})
}

// Blind writes (no reads) never conflict.
func TestBlindWritesCommit(t *testing.T) {
	db := NewDB()
	tbl := db.Table("t")
	t1, t2 := db.Begin(), db.Begin()
	t1.Write(tbl, 1, []byte("a"))
	t2.Write(tbl, 1, []byte("b"))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Run(func(tx *Tx) error {
		v, _ := tx.Read(tbl, 1)
		if string(v) != "b" {
			t.Errorf("last write = %q", v)
		}
		return nil
	})
}

// Concurrent increments with Run (retry loop) lose no updates — the
// classical OCC serializability check.
func TestConcurrentIncrements(t *testing.T) {
	db := NewDB()
	tbl := db.Table("counter")
	db.Run(func(tx *Tx) error { tx.Write(tbl, 0, []byte{0, 0}); return nil })

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := db.Run(func(tx *Tx) error {
					v, err := tx.Read(tbl, 0)
					if err != nil {
						return err
					}
					n := int(v[0]) | int(v[1])<<8
					n++
					tx.Write(tbl, 0, []byte{byte(n), byte(n >> 8)})
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	db.Run(func(tx *Tx) error {
		v, _ := tx.Read(tbl, 0)
		n := int(v[0]) | int(v[1])<<8
		if n != workers*iters {
			t.Errorf("lost updates: %d != %d", n, workers*iters)
		}
		return nil
	})
}

// Property: a sequence of single-threaded committed transactions behaves
// like a map.
func TestSerialMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		db := NewDB()
		tbl := db.Table("t")
		oracle := map[uint64][]byte{}
		for _, op := range ops {
			key := uint64(op % 16)
			switch (op / 16) % 3 {
			case 0:
				val := []byte{byte(op), byte(op >> 8)}
				db.Run(func(tx *Tx) error { tx.Write(tbl, key, val); return nil })
				oracle[key] = val
			case 1:
				var got []byte
				var gotErr error
				db.Run(func(tx *Tx) error { got, gotErr = tx.Read(tbl, key); return nil })
				want, ok := oracle[key]
				if ok != (gotErr == nil) {
					return false
				}
				if ok && string(got) != string(want) {
					return false
				}
			case 2:
				db.Run(func(tx *Tx) error { tx.Delete(tbl, key); return nil })
				delete(oracle, key)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTablesAreIndependent(t *testing.T) {
	db := NewDB()
	a, b := db.Table("a"), db.Table("b")
	if a == b {
		t.Fatal("distinct names returned same table")
	}
	if db.Table("a") != a {
		t.Fatal("table identity not stable")
	}
	db.Run(func(tx *Tx) error { tx.Write(a, 1, []byte("x")); return nil })
	db.Run(func(tx *Tx) error {
		if _, err := tx.Read(b, 1); !errors.Is(err, ErrNotFound) {
			t.Error("write leaked across tables")
		}
		return nil
	})
}

// A transaction body that fails because a concurrent commit tore its
// snapshot mid-read is retried by Run, not surfaced as an error: the
// first attempt reads a pointer row, a simulated concurrent transaction
// then consumes the pointed-at row and advances the pointer, and the
// body's second read hits ErrNotFound. Run must detect the stale read
// set and rerun the body against the new state. This is the exact shape
// of the TPC-C Delivery race (district.NextDlvO → deleted new-order
// row).
func TestRunRetriesTornSnapshot(t *testing.T) {
	db := NewDB()
	ptr := db.Table("ptr")
	items := db.Table("items")
	if err := db.Run(func(tx *Tx) error {
		tx.Write(ptr, 0, []byte{1})
		tx.Write(items, 1, []byte("order-1"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err := db.Run(func(tx *Tx) error {
		attempts++
		next, err := tx.Read(ptr, 0)
		if err != nil {
			return err
		}
		if attempts == 1 {
			// Concurrent transaction consumes item 1 and bumps the
			// pointer between our two reads.
			if err := db.Run(func(tx2 *Tx) error {
				tx2.Delete(items, 1)
				tx2.Write(ptr, 0, []byte{2})
				tx2.Write(items, 2, []byte("order-2"))
				return nil
			}); err != nil {
				return err
			}
		}
		v, err := tx.Read(items, uint64(next[0]))
		if err != nil {
			return err // first attempt: ErrNotFound on a torn snapshot
		}
		tx.Delete(items, uint64(next[0]))
		tx.Write(ptr, 0, []byte{next[0] + 1})
		_ = v
		return nil
	})
	if err != nil {
		t.Fatalf("Run = %v, want retry and success", err)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want ≥ 2 (torn first attempt retried)", attempts)
	}
	// The retried body must have consumed order 2 (the current pointer),
	// not order 1.
	db.Run(func(tx *Tx) error {
		if _, err := tx.Read(items, 2); !errors.Is(err, ErrNotFound) {
			t.Errorf("item 2 = %v, want consumed (ErrNotFound)", err)
		}
		next, err := tx.Read(ptr, 0)
		if err != nil || next[0] != 3 {
			t.Errorf("ptr = %v, %v, want 3", next, err)
		}
		return nil
	})
}

// Genuine errors from the transaction body — ones not caused by a stale
// read set — still surface through Run instead of retrying forever.
func TestRunSurfacesGenuineErrors(t *testing.T) {
	db := NewDB()
	tbl := db.Table("t")
	attempts := 0
	err := db.Run(func(tx *Tx) error {
		attempts++
		_, err := tx.Read(tbl, 42)
		return err
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Run = %v, want ErrNotFound", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on valid snapshot)", attempts)
	}
}
