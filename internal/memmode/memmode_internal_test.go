package memmode

import (
	"testing"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
)

// A scratch row served from the per-zone cache must equal the row a full
// rebuild would produce, field for field — the incremental path is a pure
// memoization, never an approximation.
func TestReusedRowsMatchRecomputation(t *testing.T) {
	mm := New()
	m := machine.New(machine.DefaultConfig(), mm)
	setA := m.AS.Map("a", 64*sim.MB).AsSet()
	setB := m.AS.Map("b", 256*sim.MB).AsSet()
	comps := []machine.Component{
		{Set: setA, Share: 1, ReadBytes: 64, WriteBytes: 8},
		{Set: setB, Share: 1, ReadBytes: 128},
	}
	rates := []float64{0.25, 0.125}
	mm.ObserveTraffic(0, comps, rates)
	mm.ObserveTraffic(50*sim.Millisecond, comps, rates) // second pass reuses both rows
	if mm.rowsReused != 2 {
		t.Fatalf("reused %d rows, want 2", mm.rowsReused)
	}
	for i, z := range mm.order {
		if !z.modelCached || !z.modelActive {
			t.Fatalf("zone %d: cached=%v active=%v", i, z.modelCached, z.modelActive)
		}
		want := zoneModel{
			z:       z,
			perLine: z.perLineRate(),
			dirty:   z.dirtyFrac(),
			prep:    sim.NewPoissonPrep(z.lines / mm.cacheSets),
		}
		if z.modelRow != want {
			t.Errorf("zone %d: cached row %+v != recomputed %+v", i, z.modelRow, want)
		}
	}
}
