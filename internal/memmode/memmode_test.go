package memmode_test

import (
	"math"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/memmode"
	"github.com/tieredmem/hemem/internal/sim"
)

// runGUPS runs uniform or hot-set GUPS under a manager and returns score
// and machine.
func runGUPS(mgr machine.Manager, cfg gups.Config, dur int64) (float64, *machine.Machine, *gups.GUPS) {
	m := machine.New(machine.DefaultConfig(), mgr)
	g := gups.New(m, cfg)
	m.Warm()
	m.Run(dur)
	return g.Score(), m, g
}

// For a single uniform zone the Monte-Carlo occupancy estimator must match
// the closed form (1−e^{−λ})/λ.
func TestHitRateMatchesClosedForm(t *testing.T) {
	for _, wsGB := range []int64{64, 128, 256} {
		mm := memmode.New()
		_, _, g := runGUPS(mm, gups.Config{Threads: 16, WorkingSet: wsGB * sim.GB}, 500*sim.Millisecond)
		set := g.Components()[0].Set
		lambda := float64(wsGB*sim.GB/64) / float64(192*sim.GB/64)
		want := (1 - math.Exp(-lambda)) / lambda
		got := mm.HitRate(set)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("ws=%dGB: hit rate %.3f, closed form %.3f", wsGB, got, want)
		}
	}
}

// Figure 5, small working sets: MM performs like DRAM (all hits).
func TestMMMatchesDRAMWhenSmall(t *testing.T) {
	mmScore, _, _ := runGUPS(memmode.New(), gups.Config{Threads: 16, WorkingSet: 16 * sim.GB}, 2*sim.Second)
	heScore, _, _ := runGUPS(core.New(core.DefaultConfig()), gups.Config{Threads: 16, WorkingSet: 16 * sim.GB}, 2*sim.Second)
	if mmScore < heScore*0.85 || mmScore > heScore*1.15 {
		t.Errorf("small WS: MM %.3f vs HeMem %.3f, want ≈equal", mmScore, heScore)
	}
}

// Figure 5 at 128 GB (working set still under DRAM capacity): MM suffers
// conflict misses that HeMem does not; the paper reports HeMem at 3.2× MM.
func TestConflictMissGapAt128GB(t *testing.T) {
	mmScore, mMM, _ := runGUPS(memmode.New(), gups.Config{Threads: 16, WorkingSet: 128 * sim.GB}, 3*sim.Second)
	heScore, mHe, _ := runGUPS(core.New(core.DefaultConfig()), gups.Config{Threads: 16, WorkingSet: 128 * sim.GB}, 3*sim.Second)
	ratio := heScore / mmScore
	if ratio < 2 || ratio > 5 {
		t.Errorf("HeMem/MM at 128GB = %.2f, paper says 3.2", ratio)
	}
	// MM writes NVM constantly (dirty evictions); HeMem should not.
	if mMM.NVM.Wear().WriteBytes < 100*float64(mHe.NVM.Wear().WriteBytes+1) {
		t.Errorf("MM NVM writes %.2e not ≫ HeMem %.2e",
			mMM.NVM.Wear().WriteBytes, mHe.NVM.Wear().WriteBytes)
	}
}

// Figure 6: with a fixed 512 GB working set, MM degrades as the hot set
// grows toward DRAM capacity while HeMem holds up (paper: up to 2×).
func TestHotSetGrowthDegradesMM(t *testing.T) {
	small, _, _ := runGUPS(memmode.New(), gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 8 * sim.GB, Seed: 3}, 3*sim.Second)
	big, _, _ := runGUPS(memmode.New(), gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 128 * sim.GB, Seed: 3}, 3*sim.Second)
	if big > small*0.8 {
		t.Errorf("MM with 128GB hot (%.3f) should trail 8GB hot (%.3f)", big, small)
	}
}

// MM uses zero cores: at 24 application threads it should not lose
// throughput to background work (Figure 7's divergence).
func TestMMZeroCPUOverhead(t *testing.T) {
	mm := memmode.New()
	if mm.ActiveThreads() != 0 {
		t.Fatal("MM must consume no cores")
	}
}

// Write-skew blindness (Table 2): MM cannot keep the write-only partition
// out of NVM writebacks, so HeMem beats it.
func TestWriteSkewMMvsHeMem(t *testing.T) {
	cfg := gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
		WriteOnlyHot: 128 * sim.GB, Seed: 7,
	}
	// Let each system converge, then score a steady-state window.
	steady := func(mgr machine.Manager) float64 {
		m := machine.New(machine.DefaultConfig(), mgr)
		g := gups.New(m, cfg)
		m.Warm()
		m.Run(240 * sim.Second)
		g.ResetScore()
		m.Run(60 * sim.Second)
		return g.Score()
	}
	mmScore := steady(memmode.New())
	heScore := steady(core.New(core.DefaultConfig()))
	if heScore <= mmScore {
		t.Errorf("write skew: HeMem %.4f should beat MM %.4f (paper: MM = 0.86× HeMem)", heScore, mmScore)
	}
}

// Zones whose traffic inputs are unchanged between refreshes must reuse
// their cached scratch rows instead of rebuilding them, and a rate change
// in one zone must rebuild exactly that zone's row. (Byte-identity of a
// reused row vs recomputation is checked by the white-box test in
// memmode_internal_test.go; the pre-cache model is pinned by the repo
// goldens.)
func TestIncrementalModelRowsReused(t *testing.T) {
	mm := memmode.New()
	m := machine.New(machine.DefaultConfig(), mm)
	setA := m.AS.Map("a", 64*sim.MB).AsSet()
	setB := m.AS.Map("b", 256*sim.MB).AsSet()
	comps := []machine.Component{
		{Set: setA, Share: 1, ReadBytes: 64, WriteBytes: 8},
		{Set: setB, Share: 1, ReadBytes: 128},
	}
	rates := []float64{0.25, 0.125}

	mm.ObserveTraffic(0, comps, rates) // first pass builds both rows
	if b, r := mm.ModelRowStats(); b != 2 || r != 0 {
		t.Fatalf("first refresh: built=%d reused=%d, want 2/0", b, r)
	}
	// Identical inputs: both rows reused, model still refreshed.
	hitA := mm.HitRate(setA)
	mm.ObserveTraffic(50*sim.Millisecond, comps, rates)
	if b, r := mm.ModelRowStats(); b != 2 || r != 2 {
		t.Fatalf("unchanged refresh: built=%d reused=%d, want 2/2", b, r)
	}
	if got := mm.HitRate(setA); math.Abs(got-hitA) > 0.05 {
		t.Fatalf("cached-row refresh drifted: hit %v vs %v", got, hitA)
	}
	// One zone's rate changes: exactly its row is rebuilt.
	rates[1] = 0.5
	mm.ObserveTraffic(100*sim.Millisecond, comps, rates)
	if b, r := mm.ModelRowStats(); b != 3 || r != 3 {
		t.Fatalf("changed-zone refresh: built=%d reused=%d, want 3/3", b, r)
	}
}

// The sharded Monte-Carlo path must produce identical results at every
// worker count >= 2: each target zone draws from its own sub-stream keyed
// by (pass, target index), independent of which worker runs it.
func TestShardedModelIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(shards int) (float64, float64) {
		cfg := machine.DefaultConfig()
		cfg.Shards = shards
		mm := memmode.New()
		m := machine.New(cfg, mm)
		g := gups.New(m, gups.Config{
			Threads: 16, WorkingSet: 64 * sim.GB, HotSet: 8 * sim.GB, Seed: 17,
		})
		m.Warm()
		m.Run(2 * sim.Second)
		return g.Score(), mm.HitRate(g.HotPages())
	}
	s2, h2 := run(2)
	for _, shards := range []int{4, 8} {
		if s, h := run(shards); s != s2 || h != h2 {
			t.Fatalf("shards=%d: score %v vs %v, hot hit rate %v vs %v — sharded MC depends on worker count",
				shards, s, s2, h, h2)
		}
	}
}

// Identically seeded multi-zone runs must reproduce bit-identical scores
// and hit rates. The occupancy model samples zones in first-observed
// order; iterating the zones map instead would randomize the RNG draw
// sequence and summation order, making MM results differ run to run.
func TestMultiZoneDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		mm := memmode.New()
		score, _, g := runGUPS(mm, gups.Config{
			Threads: 16, WorkingSet: 64 * sim.GB, HotSet: 8 * sim.GB, Seed: 17,
		}, 2*sim.Second)
		return score, mm.HitRate(g.HotPages())
	}
	s0, h0 := run()
	for i := 0; i < 3; i++ {
		if s1, h1 := run(); s1 != s0 || h1 != h0 {
			t.Fatalf("rerun %d: score %v vs %v, hot hit rate %v vs %v — multi-zone MM model is order-dependent",
				i, s1, s0, h1, h0)
		}
	}
}
