package memmode_test

import (
	"math"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/memmode"
	"github.com/tieredmem/hemem/internal/sim"
)

// runGUPS runs uniform or hot-set GUPS under a manager and returns score
// and machine.
func runGUPS(mgr machine.Manager, cfg gups.Config, dur int64) (float64, *machine.Machine, *gups.GUPS) {
	m := machine.New(machine.DefaultConfig(), mgr)
	g := gups.New(m, cfg)
	m.Warm()
	m.Run(dur)
	return g.Score(), m, g
}

// For a single uniform zone the Monte-Carlo occupancy estimator must match
// the closed form (1−e^{−λ})/λ.
func TestHitRateMatchesClosedForm(t *testing.T) {
	for _, wsGB := range []int64{64, 128, 256} {
		mm := memmode.New()
		_, _, g := runGUPS(mm, gups.Config{Threads: 16, WorkingSet: wsGB * sim.GB}, 500*sim.Millisecond)
		set := g.Components()[0].Set
		lambda := float64(wsGB*sim.GB/64) / float64(192*sim.GB/64)
		want := (1 - math.Exp(-lambda)) / lambda
		got := mm.HitRate(set)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("ws=%dGB: hit rate %.3f, closed form %.3f", wsGB, got, want)
		}
	}
}

// Figure 5, small working sets: MM performs like DRAM (all hits).
func TestMMMatchesDRAMWhenSmall(t *testing.T) {
	mmScore, _, _ := runGUPS(memmode.New(), gups.Config{Threads: 16, WorkingSet: 16 * sim.GB}, 2*sim.Second)
	heScore, _, _ := runGUPS(core.New(core.DefaultConfig()), gups.Config{Threads: 16, WorkingSet: 16 * sim.GB}, 2*sim.Second)
	if mmScore < heScore*0.85 || mmScore > heScore*1.15 {
		t.Errorf("small WS: MM %.3f vs HeMem %.3f, want ≈equal", mmScore, heScore)
	}
}

// Figure 5 at 128 GB (working set still under DRAM capacity): MM suffers
// conflict misses that HeMem does not; the paper reports HeMem at 3.2× MM.
func TestConflictMissGapAt128GB(t *testing.T) {
	mmScore, mMM, _ := runGUPS(memmode.New(), gups.Config{Threads: 16, WorkingSet: 128 * sim.GB}, 3*sim.Second)
	heScore, mHe, _ := runGUPS(core.New(core.DefaultConfig()), gups.Config{Threads: 16, WorkingSet: 128 * sim.GB}, 3*sim.Second)
	ratio := heScore / mmScore
	if ratio < 2 || ratio > 5 {
		t.Errorf("HeMem/MM at 128GB = %.2f, paper says 3.2", ratio)
	}
	// MM writes NVM constantly (dirty evictions); HeMem should not.
	if mMM.NVM.Wear().WriteBytes < 100*float64(mHe.NVM.Wear().WriteBytes+1) {
		t.Errorf("MM NVM writes %.2e not ≫ HeMem %.2e",
			mMM.NVM.Wear().WriteBytes, mHe.NVM.Wear().WriteBytes)
	}
}

// Figure 6: with a fixed 512 GB working set, MM degrades as the hot set
// grows toward DRAM capacity while HeMem holds up (paper: up to 2×).
func TestHotSetGrowthDegradesMM(t *testing.T) {
	small, _, _ := runGUPS(memmode.New(), gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 8 * sim.GB, Seed: 3}, 3*sim.Second)
	big, _, _ := runGUPS(memmode.New(), gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 128 * sim.GB, Seed: 3}, 3*sim.Second)
	if big > small*0.8 {
		t.Errorf("MM with 128GB hot (%.3f) should trail 8GB hot (%.3f)", big, small)
	}
}

// MM uses zero cores: at 24 application threads it should not lose
// throughput to background work (Figure 7's divergence).
func TestMMZeroCPUOverhead(t *testing.T) {
	mm := memmode.New()
	if mm.ActiveThreads() != 0 {
		t.Fatal("MM must consume no cores")
	}
}

// Write-skew blindness (Table 2): MM cannot keep the write-only partition
// out of NVM writebacks, so HeMem beats it.
func TestWriteSkewMMvsHeMem(t *testing.T) {
	cfg := gups.Config{
		Threads: 16, WorkingSet: 512 * sim.GB, HotSet: 256 * sim.GB,
		WriteOnlyHot: 128 * sim.GB, Seed: 7,
	}
	// Let each system converge, then score a steady-state window.
	steady := func(mgr machine.Manager) float64 {
		m := machine.New(machine.DefaultConfig(), mgr)
		g := gups.New(m, cfg)
		m.Warm()
		m.Run(240 * sim.Second)
		g.ResetScore()
		m.Run(60 * sim.Second)
		return g.Score()
	}
	mmScore := steady(memmode.New())
	heScore := steady(core.New(core.DefaultConfig()))
	if heScore <= mmScore {
		t.Errorf("write skew: HeMem %.4f should beat MM %.4f (paper: MM = 0.86× HeMem)", heScore, mmScore)
	}
}

// Identically seeded multi-zone runs must reproduce bit-identical scores
// and hit rates. The occupancy model samples zones in first-observed
// order; iterating the zones map instead would randomize the RNG draw
// sequence and summation order, making MM results differ run to run.
func TestMultiZoneDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		mm := memmode.New()
		score, _, g := runGUPS(mm, gups.Config{
			Threads: 16, WorkingSet: 64 * sim.GB, HotSet: 8 * sim.GB, Seed: 17,
		}, 2*sim.Second)
		return score, mm.HitRate(g.HotPages())
	}
	s0, h0 := run()
	for i := 0; i < 3; i++ {
		if s1, h1 := run(); s1 != s0 || h1 != h0 {
			t.Fatalf("rerun %d: score %v vs %v, hot hit rate %v vs %v — multi-zone MM model is order-dependent",
				i, s1, s0, h1, h0)
		}
	}
}
