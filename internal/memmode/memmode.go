// Package memmode implements Intel Optane DC "memory mode" (§2.4): all
// data physically lives in NVM, and DRAM acts as a hardware-managed
// direct-mapped cache with 64 B lines. Software sees one flat memory and
// has no control; there is no hot/cold tracking, no policy, and no CPU
// overhead — but conflict misses grow as occupancy rises, every miss
// fetches a 256 B NVM media block, and dirty evictions write NVM
// constantly (the wear behaviour of Figure 16).
//
// The cache is modelled analytically. Workload traffic decomposes into
// disjoint zones (one per component page set). Cache-set composition is
// Poisson per zone (n_z/S lines expected per set), and within a set the
// cached line is the most recently accessed, so a specific line of zone z
// is resident with probability E[a_z / (a_z + Σ_j k_j·a_j)], estimated by
// deterministic Monte Carlo over set compositions. For a single uniform
// zone this reduces to the closed form (1−e^{−λ})/λ — the unit tests check
// the estimator against it.
package memmode

import (
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/shard"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

const lineSize = 64

// zone is the cache model's view of one component page set.
type zone struct {
	set   *vm.PageSet
	lines float64 // cacheable lines in the zone
	// readLineRate/writeLineRate are line accesses per ns (smoothed).
	readLineRate  float64
	writeLineRate float64
	pattern       mem.Pattern

	hit   float64 // P(access to a line of this zone hits)
	wb    float64 // expected dirty-victim writebacks per miss
	valid bool

	// seenGen marks the last ObserveTraffic pass that updated this zone's
	// rates, so repeated components over the same set within one pass
	// accumulate while a new pass overwrites — without a per-quantum
	// "seen" map allocation.
	seenGen uint64

	// Incremental scratch-row cache: modelRead/modelWrite stamp the
	// traffic inputs the cached row was derived from, so refreshModel
	// skips recomputing perLineRate/dirtyFrac/NewPoissonPrep (the exp(-λ)
	// transcendental) for zones whose rates are unchanged since the last
	// pass. The cached values are pure functions of the inputs, so reuse
	// is byte-identical to recomputation.
	modelCached bool
	modelActive bool // cached perLineRate > 0: the zone joins the scratch table
	modelRead   float64
	modelWrite  float64
	modelRow    zoneModel
}

// zoneModel is one zone's invariant state for a refreshModel pass,
// flattened out of the zone structs so the Monte-Carlo inner loop walks a
// compact slice, touches no maps, and calls no transcendentals: the
// per-line rate and dirty fraction are hoisted, and the Poisson mean
// λ = lines/cacheSets is prepped once so each of the zones × MCSamples
// draws reuses the cached exp(-λ) instead of recomputing it.
type zoneModel struct {
	z       *zone
	perLine float64
	dirty   float64
	prep    sim.PoissonPrep
}

// perLineRate is the access rate of one line of the zone.
func (z *zone) perLineRate() float64 {
	if z.lines == 0 {
		return 0
	}
	return (z.readLineRate + z.writeLineRate) / z.lines
}

// dirtyFrac is the probability a cached line of this zone is dirty.
func (z *zone) dirtyFrac() float64 {
	t := z.readLineRate + z.writeLineRate
	if t == 0 {
		return 0
	}
	// A line that receives any writes is dirty essentially always once
	// cached; approximate by the write share of traffic, saturating
	// quickly.
	f := z.writeLineRate / t * 2
	if f > 1 {
		f = 1
	}
	return f
}

// MemoryMode is the hardware tiering manager.
type MemoryMode struct {
	m   *machine.Machine
	rng *sim.Rand

	// devDRAM and devNVM are the cache and backing device indices,
	// resolved from the machine's tier table at Attach (memory mode is
	// inherently two-tier: DRAM cache over NVM).
	devDRAM, devNVM machine.Dev

	cacheSets float64
	zones     map[*vm.PageSet]*zone
	// order lists zones in first-observed order. The model must never
	// iterate the zones map: map order would randomize the RNG draw
	// sequence and float summation order in refreshModel, making MM
	// results differ run to run.
	order []*zone
	// scratch is the reusable flattened zone table refreshModel builds
	// each pass (see zoneModel).
	scratch []zoneModel
	// gen counts ObserveTraffic passes; see zone.seenGen.
	gen       uint64
	lastModel int64
	// rowsBuilt/rowsReused count scratch-row recomputations vs cache hits
	// across refreshModel passes (see zone.modelCached), for tests and
	// reports.
	rowsBuilt  int64
	rowsReused int64
	// pool is the machine's intra-step worker pool. With >= 2 workers
	// refreshModel shards target zones across it: each target draws from
	// its own SplitStable sub-stream of shardRoot keyed by (pass, target
	// index), so results are identical for every worker count >= 2 — but
	// they are a different (equally seeded) Monte-Carlo stream than the
	// serial path, which is pinned bit for bit by the goldens and so
	// never changes. passes counts sharded refreshes to key the streams.
	pool      *shard.Pool
	shardRoot *sim.Rand
	passes    uint64
	// ModelRefresh controls how often the Monte-Carlo occupancy model is
	// recomputed (simulated ns).
	ModelRefresh int64
	// MCSamples is the number of set compositions sampled per zone.
	MCSamples int
}

// New returns a memory-mode manager.
func New() *MemoryMode {
	return &MemoryMode{
		zones:        make(map[*vm.PageSet]*zone),
		ModelRefresh: 50 * sim.Millisecond,
		MCSamples:    2000,
	}
}

// Name implements machine.Manager.
func (mm *MemoryMode) Name() string { return "MM" }

// Attach implements machine.Manager.
func (mm *MemoryMode) Attach(m *machine.Machine) {
	mm.m = m
	mm.rng = sim.NewRand(m.Cfg.Seed ^ 0x3153)
	mm.pool = m.ShardPool()
	mm.shardRoot = sim.NewRand(m.Cfg.Seed ^ 0x3153).SplitLabel("mm-shard")
	mm.cacheSets = float64(m.Cfg.DRAMSize / lineSize)
	mm.lastModel = -1
	var ok bool
	if mm.devDRAM, ok = m.DevOf(vm.TierDRAM); !ok {
		panic("memmode: machine has no DRAM tier")
	}
	if mm.devNVM, ok = m.DevOf(vm.TierNVM); !ok {
		panic("memmode: machine has no NVM tier")
	}
}

// PageIn implements machine.Manager: in memory mode everything is backed
// by NVM; the DRAM cache is invisible to placement.
func (mm *MemoryMode) PageIn(p *vm.Page) { p.SetTier(vm.TierNVM) }

// OnQuantum implements machine.Manager.
func (mm *MemoryMode) OnQuantum(now, dt int64) {}

// ActiveThreads implements machine.Manager: pure hardware, zero cores.
func (mm *MemoryMode) ActiveThreads() float64 { return 0 }

// ObserveTraffic implements machine.TrafficObserver: update zone rates and
// periodically refresh the occupancy model.
func (mm *MemoryMode) ObserveTraffic(now int64, comps []machine.Component, occRates []float64) {
	mm.gen++
	for i := range comps {
		c := &comps[i]
		z, ok := mm.zones[c.Set]
		if !ok {
			z = &zone{set: c.Set, lines: float64(c.Set.Bytes() / lineSize)}
			mm.zones[c.Set] = z
			mm.order = append(mm.order, z)
		}
		z.pattern = c.Pattern
		rl := occRates[i] * linesOf(c.ReadBytes)
		wl := occRates[i] * linesOf(c.WriteBytes)
		if z.seenGen == mm.gen {
			z.readLineRate += rl
			z.writeLineRate += wl
		} else {
			z.readLineRate = rl
			z.writeLineRate = wl
			z.seenGen = mm.gen
		}
	}
	if mm.lastModel < 0 || now-mm.lastModel >= mm.ModelRefresh {
		mm.refreshModel()
		mm.lastModel = now
	}
}

func linesOf(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	n := (bytes + lineSize - 1) / lineSize
	return float64(n)
}

// refreshModel recomputes per-zone hit rates and writeback expectations by
// Monte Carlo over cache-set compositions. The active zones are flattened
// into a reusable scratch table with their per-line rate, dirty fraction,
// and prepped Poisson constants, so the sampling loops below perform only
// multiplies, divides, and RNG draws. Scratch rows are cached per zone and
// rebuilt only when the zone's traffic inputs changed since the last pass
// (steady workloads reuse nearly every row); the cached values are pure
// functions of the inputs, so reuse is byte-identical to recomputation.
//
// The Monte Carlo runs serially on mm.rng when the machine's shard pool is
// serial — the draw sequence and float summation order are exactly those
// of the original unflattened model, keeping seeded MM results
// bit-identical — and shards target zones across the pool otherwise (see
// the pool field for the stream-splitting contract).
func (mm *MemoryMode) refreshModel() {
	zs := mm.scratch[:0]
	for _, z := range mm.order {
		if !z.modelCached || z.readLineRate != z.modelRead || z.writeLineRate != z.modelWrite {
			pl := z.perLineRate()
			z.modelActive = pl > 0
			if z.modelActive {
				z.modelRow = zoneModel{
					z:       z,
					perLine: pl,
					dirty:   z.dirtyFrac(),
					prep:    sim.NewPoissonPrep(z.lines / mm.cacheSets),
				}
			}
			z.modelCached = true
			z.modelRead = z.readLineRate
			z.modelWrite = z.writeLineRate
			mm.rowsBuilt++
		} else {
			mm.rowsReused++
		}
		if z.modelActive {
			zs = append(zs, z.modelRow)
		}
	}
	mm.scratch = zs
	if mm.pool.Workers() <= 1 {
		for ti := range zs {
			mcTarget(zs, ti, mm.rng, mm.MCSamples)
		}
		return
	}
	mm.passes++
	passRoot := mm.shardRoot.SplitStable(mm.passes)
	mm.pool.Run(len(zs), func(ti int) {
		mcTarget(zs, ti, passRoot.SplitStable(uint64(ti)), mm.MCSamples)
	})
}

// mcTarget runs the Monte-Carlo sampling loop for one target zone of the
// scratch table, drawing set compositions from rng. Each call touches only
// its own row (and the shared read-only table), so sharded passes may run
// targets concurrently.
func mcTarget(zs []zoneModel, ti int, rng *sim.Rand, samples int) {
	target := &zs[ti]
	a := target.perLine
	var hitSum, wbSum, missSum float64
	for s := 0; s < samples; s++ {
		// Competing line-rate mass in this cache set.
		var compete float64
		var rateByZone [16]float64
		for j := range zs {
			k := rng.PoissonCached(zs[j].prep)
			r := float64(k) * zs[j].perLine
			compete += r
			if j < len(rateByZone) {
				rateByZone[j] = r
			}
		}
		// The target line hits iff it was the last access to
		// its set: probability a/(a+compete). (Poissonization:
		// the other lines of its own zone are already in
		// compete.)
		hit := a / (a + compete)
		hitSum += hit
		// On a miss the victim is the currently cached line,
		// which belongs to zone j with probability ∝ its rate
		// mass and writes back if dirty. Condition on the miss
		// actually happening: sets with no competitors produce
		// (almost) no misses and no victims.
		if compete > 0 {
			miss := 1 - hit
			missSum += miss
			var wb float64
			for j := range zs {
				if j < len(rateByZone) {
					wb += rateByZone[j] / compete * zs[j].dirty
				}
			}
			wbSum += miss * wb
		}
	}
	target.z.hit = hitSum / float64(samples)
	if missSum > 0 {
		target.z.wb = wbSum / missSum
	} else {
		target.z.wb = 0
	}
	target.z.valid = true
}

// ModelRowStats reports how many scratch-table rows refreshModel rebuilt
// vs reused from the per-zone cache across all passes so far, for tests
// and reports.
func (mm *MemoryMode) ModelRowStats() (built, reused int64) {
	return mm.rowsBuilt, mm.rowsReused
}

// HitRate returns the modelled hit rate for the zone backing set, for
// tests and reports.
func (mm *MemoryMode) HitRate(set *vm.PageSet) float64 {
	if z, ok := mm.zones[set]; ok && z.valid {
		return z.hit
	}
	return 1
}

// ComponentBranches implements machine.Brancher: an access either hits the
// DRAM cache or misses to NVM (plus the fill), which is what spreads MM's
// latency tail in Tables 3 and 4.
func (mm *MemoryMode) ComponentBranches(c machine.Component) []machine.CostBranch {
	hit := 1.0
	if z, ok := mm.zones[c.Set]; ok && z.valid {
		hit = z.hit
	}
	dramTime := mm.m.CostIn(c, vm.TierDRAM)
	nvmTime := mm.m.CostIn(c, vm.TierNVM)
	return []machine.CostBranch{
		{Prob: hit, Time: dramTime},
		{Prob: 1 - hit, Time: nvmTime},
	}
}

// ComponentCost implements machine.CostModeler: price accesses through the
// DRAM cache.
func (mm *MemoryMode) ComponentCost(c machine.Component) machine.CompCost {
	var cc machine.CompCost
	if c.Set == nil || c.Set.Len() == 0 {
		cc.Time = 1
		return cc
	}
	dram, nvm := mm.m.DRAM, mm.m.NVM
	z, ok := mm.zones[c.Set]
	hit, wb := 1.0, 0.0
	if ok && z.valid {
		hit, wb = z.hit, z.wb
	}
	miss := 1 - hit

	cc.Time += mm.m.TLBWalkCost(c.Set, c.Pattern)

	// Reads: hits from DRAM; misses fetch a 256 B NVM media block, fill
	// DRAM, and evict (writeback if dirty).
	if c.ReadBytes > 0 {
		lines := linesOf(c.ReadBytes)
		deps := float64(c.Deps)
		if deps <= 0 {
			deps = 1
		}
		perDep := c.ReadBytes / int64(deps)
		cc.Time += deps * hit * dram.AccessTime(mem.Read, c.Pattern, perDep)
		cc.Time += deps * miss * nvm.AccessTime(mem.Read, c.Pattern, perDep)

		dramBytes := hit * float64(dram.MediaBytes(c.ReadBytes))
		nvmBytes := miss * lines * float64(nvm.MediaBytes(lineSize))
		fill := miss * lines * lineSize
		wbBytes := miss * wb * lines * float64(nvm.MediaBytes(lineSize))

		cc.Bytes[mm.devDRAM][mem.Read] += dramBytes
		cc.Bytes[mm.devNVM][mem.Read] += nvmBytes
		cc.Bytes[mm.devDRAM][mem.Write] += fill
		cc.Bytes[mm.devNVM][mem.Write] += wbBytes

		cc.Util[mm.devDRAM][mem.Read] += dramBytes / dram.PeakFor(mem.Read, c.Pattern, c.ReadBytes)
		cc.Util[mm.devNVM][mem.Read] += nvmBytes / nvm.PeakFor(mem.Read, c.Pattern, lineSize)
		cc.Util[mm.devDRAM][mem.Write] += fill / dram.PeakFor(mem.Write, c.Pattern, lineSize)
		cc.Util[mm.devNVM][mem.Write] += wbBytes / nvm.PeakFor(mem.Write, mem.Random, lineSize)
	}

	// Writes: stores land in the DRAM cache. If the component also reads
	// the same lines (read-modify-write), the store always hits the
	// just-fetched line; otherwise it write-allocates on a miss.
	if c.WriteBytes > 0 {
		lines := linesOf(c.WriteBytes)
		storeMiss := miss
		if c.ReadBytes > 0 {
			storeMiss = 0
		}
		dramBytes := float64(dram.MediaBytes(c.WriteBytes))
		cc.Time += dramBytes / dram.Spec.Stream[mem.Write]
		cc.Bytes[mm.devDRAM][mem.Write] += dramBytes
		cc.Util[mm.devDRAM][mem.Write] += dramBytes / dram.PeakFor(mem.Write, c.Pattern, c.WriteBytes)

		if storeMiss > 0 {
			fetch := storeMiss * lines * float64(nvm.MediaBytes(lineSize))
			wbBytes := storeMiss * wb * lines * float64(nvm.MediaBytes(lineSize))
			cc.Time += storeMiss * nvm.AccessTime(mem.Read, c.Pattern, lineSize)
			cc.Bytes[mm.devNVM][mem.Read] += fetch
			cc.Bytes[mm.devNVM][mem.Write] += wbBytes
			cc.Util[mm.devNVM][mem.Read] += fetch / nvm.PeakFor(mem.Read, c.Pattern, lineSize)
			cc.Util[mm.devNVM][mem.Write] += wbBytes / nvm.PeakFor(mem.Write, mem.Random, lineSize)
		}
	}
	return cc
}
