// Package mem models the two main-memory technologies of the paper's
// testbed: DDR4 DRAM and Intel Optane DC NVM (Table 1). The models are
// analytic — latency plus per-thread streaming bandwidth with per-pattern
// saturation ceilings — and are calibrated so that the microbenchmark
// observations of the paper's §2.2 hold:
//
//   - DRAM sequential/random write throughput is 16.5×/10.7× Optane's.
//   - DRAM random read throughput is 2.7× Optane's.
//   - Optane sequential read exceeds DRAM random read by 14%.
//   - Optane write bandwidth saturates at ~4 threads; reads scale further.
//   - Optane media access granularity is 256 B: smaller accesses pay for a
//     full 256 B media transfer (and wear NVM by 256 B on writes).
//
// Devices also keep wear counters (bytes and operations, read and write at
// media granularity), which back the paper's Figure 16 NVM-wear comparison.
package mem

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/sim"
)

// Kind distinguishes reads from writes. NVM bandwidth is strongly
// asymmetric between the two, which is the root of HeMem's write-heavy
// page policy.
type Kind int

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Pattern distinguishes sequential streams (prefetchable, latency hidden)
// from random accesses (latency exposed per block).
type Pattern int

const (
	Sequential Pattern = iota
	Random
)

func (p Pattern) String() string {
	if p == Sequential {
		return "seq"
	}
	return "rand"
}

// Spec is the full parameter set of one memory device.
type Spec struct {
	Name     string
	Capacity int64

	// ReadLatency and WriteLatency are exposed per random access, in ns.
	// Sequential accesses instead pay SeqOverhead (prefetched).
	ReadLatency  int64
	WriteLatency int64
	SeqOverhead  int64

	// Stream is the per-thread transfer bandwidth once a sequential
	// access has started, in bytes/ns, per kind.
	Stream [2]float64

	// StreamRand is the per-thread transfer bandwidth for random
	// accesses, per kind. Random chunks are assembled from
	// media-granularity blocks with limited memory-level parallelism, so
	// a random 4 KB NVM read achieves ~2.3 GB/s per thread where a
	// sequential one streams at 8 GB/s — the penalty behind "accessing
	// small objects randomly on Optane is slow" (§2.2).
	StreamRand [2]float64

	// Peak caps aggregate throughput, in bytes/ns, per [kind][pattern].
	Peak [2][2]float64

	// MediaGranularity is the smallest unit the media transfers. Accesses
	// below it are rounded up (Optane: 256 B; §2.2).
	MediaGranularity int64
}

// Wear aggregates device traffic counters at media granularity.
type Wear struct {
	ReadBytes  float64
	WriteBytes float64
	ReadOps    float64
	WriteOps   float64
}

// Validate reports the first invalid spec parameter, or nil.
func (s Spec) Validate() error {
	if s.Capacity < 0 {
		return fmt.Errorf("mem: %s capacity %d negative", s.Name, s.Capacity)
	}
	if s.ReadLatency < 0 || s.WriteLatency < 0 || s.SeqOverhead < 0 {
		return fmt.Errorf("mem: %s has negative latency", s.Name)
	}
	for k := 0; k < 2; k++ {
		if s.Stream[k] <= 0 || s.StreamRand[k] <= 0 {
			return fmt.Errorf("mem: %s stream bandwidth must be positive", s.Name)
		}
		for p := 0; p < 2; p++ {
			if s.Peak[k][p] <= 0 {
				return fmt.Errorf("mem: %s peak bandwidth must be positive", s.Name)
			}
		}
	}
	if s.MediaGranularity < 0 {
		return fmt.Errorf("mem: %s media granularity %d negative", s.Name, s.MediaGranularity)
	}
	return nil
}

// Device is a memory device instance with live wear counters.
type Device struct {
	Spec Spec
	wear Wear
	// derate scales bandwidth during injected throttle episodes (NVM
	// thermal throttling); 1 means full speed.
	derate float64
}

// New returns a device with the given spec.
func New(spec Spec) *Device { return &Device{Spec: spec, derate: 1} }

// SetDerate scales the device's bandwidth (stream rates and saturation
// ceilings) by f in (0, 1]; out-of-range values restore full speed.
// Latency is unaffected: throttling caps transfer rates, it does not slow
// the first access.
func (d *Device) SetDerate(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	d.derate = f
}

// Derate returns the current bandwidth multiplier.
func (d *Device) Derate() float64 {
	if d.derate == 0 {
		return 1 // zero-value Device constructed without New
	}
	return d.derate
}

// DRAMSpec returns the calibrated DDR4 spec of the paper's testbed socket
// (192 GB, 6 channels) scaled to the given capacity.
func DRAMSpec(capacity int64) Spec {
	return Spec{
		Name:             "DRAM",
		Capacity:         capacity,
		ReadLatency:      82,
		WriteLatency:     82,
		SeqOverhead:      5,
		Stream:           [2]float64{sim.GBps(12.9), sim.GBps(10.5)},
		StreamRand:       [2]float64{sim.GBps(7.5), sim.GBps(8)},
		Peak:             [2][2]float64{{sim.GBps(107), sim.GBps(28)}, {sim.GBps(80), sim.GBps(25)}},
		MediaGranularity: 64,
	}
}

// NVMSpec returns the calibrated Intel Optane DC spec (768 GB per socket in
// the paper) scaled to the given capacity.
func NVMSpec(capacity int64) Spec {
	return Spec{
		Name:             "NVM",
		Capacity:         capacity,
		ReadLatency:      175,
		WriteLatency:     94,
		SeqOverhead:      5,
		Stream:           [2]float64{sim.GBps(8.0), sim.GBps(1.3)},
		StreamRand:       [2]float64{sim.GBps(2.3), sim.GBps(1.3)},
		Peak:             [2][2]float64{{sim.GBps(32), sim.GBps(10.5)}, {sim.GBps(4.8), sim.GBps(2.3)}},
		MediaGranularity: 256,
	}
}

// DiskSpec returns an NVMe-flash spec for the optional swap tier the
// paper's §3.4 discusses ("Swapping to a block device can provide an
// additional, slowest, memory tier"): ~80 µs read latency, 4 KB media
// granularity, and single-digit GB/s streaming.
func DiskSpec(capacity int64) Spec {
	return Spec{
		Name:             "Disk",
		Capacity:         capacity,
		ReadLatency:      80_000,
		WriteLatency:     20_000, // buffered writes
		SeqOverhead:      5_000,
		Stream:           [2]float64{sim.GBps(3.0), sim.GBps(2.0)},
		StreamRand:       [2]float64{sim.GBps(1.2), sim.GBps(0.9)},
		Peak:             [2][2]float64{{sim.GBps(3.5), sim.GBps(1.5)}, {sim.GBps(2.5), sim.GBps(1.0)}},
		MediaGranularity: 4096,
	}
}

// NewDisk returns a calibrated swap device of the given capacity.
func NewDisk(capacity int64) *Device { return New(DiskSpec(capacity)) }

// NewDRAM returns a calibrated DRAM device of the given capacity.
func NewDRAM(capacity int64) *Device { return New(DRAMSpec(capacity)) }

// NewNVM returns a calibrated Optane device of the given capacity.
func NewNVM(capacity int64) *Device { return New(NVMSpec(capacity)) }

// MediaBytes rounds size up to the media access granularity.
func (d *Device) MediaBytes(size int64) int64 {
	g := d.Spec.MediaGranularity
	if size <= 0 {
		return 0
	}
	if g <= 1 {
		return size
	}
	return (size + g - 1) / g * g
}

// latency returns the exposed per-access startup cost in ns.
func (d *Device) latency(kind Kind, pattern Pattern) float64 {
	if pattern == Sequential {
		return float64(d.Spec.SeqOverhead)
	}
	if kind == Read {
		return float64(d.Spec.ReadLatency)
	}
	return float64(d.Spec.WriteLatency)
}

// StreamRate returns the per-thread transfer bandwidth in bytes/ns for
// the given kind and pattern, reduced by any active throttle derate.
func (d *Device) StreamRate(kind Kind, pattern Pattern) float64 {
	r := d.Spec.Stream[kind]
	if pattern == Random {
		r = d.Spec.StreamRand[kind]
	}
	if f := d.Derate(); f != 1 {
		r *= f
	}
	return r
}

// AccessTime returns the time in ns one thread needs for a single access of
// size bytes, ignoring aggregate contention (see Throughput for that).
func (d *Device) AccessTime(kind Kind, pattern Pattern, size int64) float64 {
	media := float64(d.MediaBytes(size))
	return d.latency(kind, pattern) + media/d.StreamRate(kind, pattern)
}

// PerThread returns single-thread throughput in bytes/ns for blockSize
// accesses of the given kind and pattern. Throughput counts application
// bytes, not media bytes: an 8 B random NVM access still moves 256 B of
// media, so small accesses see heavily deflated throughput (Figure 2).
func (d *Device) PerThread(kind Kind, pattern Pattern, blockSize int64) float64 {
	if blockSize <= 0 {
		return 0
	}
	t := d.AccessTime(kind, pattern, blockSize)
	// Large random blocks converge to sequential streaming (the block is
	// internally contiguous), mirroring PeakFor's blending.
	if pattern == Random {
		const blend = 16 * 1024
		w := float64(blockSize) / (float64(blockSize) + blend)
		seq := d.AccessTime(kind, Sequential, blockSize)
		t = t*(1-w) + seq*w
	}
	return float64(blockSize) / t
}

// Throughput returns aggregate application-byte throughput in bytes/ns for
// threads concurrent threads issuing blockSize accesses. It is the model
// behind Figures 1 and 2: linear per-thread scaling clipped by the
// per-(kind,pattern) device ceiling, with the ceiling itself deflated by
// media-granularity waste for small blocks.
func (d *Device) Throughput(kind Kind, pattern Pattern, blockSize int64, threads int) float64 {
	if threads <= 0 || blockSize <= 0 {
		return 0
	}
	per := d.PerThread(kind, pattern, blockSize)
	amp := float64(blockSize) / float64(d.MediaBytes(blockSize))
	peak := d.PeakFor(kind, pattern, blockSize) * amp
	agg := per * float64(threads)
	if agg > peak {
		return peak
	}
	return agg
}

// PeakFor returns the aggregate media-byte ceiling for accesses of the
// given block size. A large "random" access is internally a sequential
// burst, so the random ceiling converges toward the sequential one as the
// block size grows (visible in the paper's Figure 2, where the seq/rand
// gap closes with size).
func (d *Device) PeakFor(kind Kind, pattern Pattern, blockSize int64) float64 {
	p := d.Spec.Peak[kind][pattern]
	if pattern == Random {
		const blend = 16 * 1024 // bytes at which random is half-way to seq
		w := float64(blockSize) / (float64(blockSize) + blend)
		p += (d.Spec.Peak[kind][Sequential] - p) * w
	}
	if f := d.Derate(); f != 1 {
		p *= f
	}
	return p
}

// EffectiveBandwidth returns the media-byte bandwidth ceiling for the given
// kind and pattern in bytes/ns; the machine's contention solver divides
// this among all consumers (application accesses plus migrations).
func (d *Device) EffectiveBandwidth(kind Kind, pattern Pattern) float64 {
	p := d.Spec.Peak[kind][pattern]
	if f := d.Derate(); f != 1 {
		p *= f
	}
	return p
}

// Record charges traffic to the device's wear counters. size is in
// application bytes per op; ops may be fractional (analytic quanta).
func (d *Device) Record(kind Kind, size int64, ops float64) {
	media := float64(d.MediaBytes(size)) * ops
	if kind == Read {
		d.wear.ReadBytes += media
		d.wear.ReadOps += ops
	} else {
		d.wear.WriteBytes += media
		d.wear.WriteOps += ops
	}
}

// RecordBytes charges raw media-byte traffic (used by migrations, which
// stream at media granularity already).
func (d *Device) RecordBytes(kind Kind, bytes float64) {
	if kind == Read {
		d.wear.ReadBytes += bytes
	} else {
		d.wear.WriteBytes += bytes
	}
}

// Wear returns a copy of the device's wear counters.
func (d *Device) Wear() Wear { return d.wear }

// ResetWear zeroes the wear counters (used between benchmark phases).
func (d *Device) ResetWear() { d.wear = Wear{} }

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%d GB)", d.Spec.Name, d.Spec.Capacity/sim.GB)
}
