package mem

import (
	"testing"

	"github.com/tieredmem/hemem/internal/vm"
)

// The built-in tiers all have registered models, and NewFor builds a
// device whose spec matches the direct constructor.
func TestRegistryBuiltins(t *testing.T) {
	for _, tier := range []vm.TierID{vm.TierDRAM, vm.TierNVM, vm.TierDisk, vm.TierCXL} {
		d, err := NewFor(tier, 16)
		if err != nil {
			t.Fatalf("NewFor(%v): %v", tier, err)
		}
		if d.Spec.Capacity != 16 {
			t.Fatalf("%v capacity = %d", tier, d.Spec.Capacity)
		}
		if err := d.Spec.Validate(); err != nil {
			t.Fatalf("%v spec invalid: %v", tier, err)
		}
	}
	if _, err := NewFor(vm.TierNone, 1); err == nil {
		t.Fatal("NewFor(TierNone) should fail: no model registered")
	}
	got := RegisteredTiers()
	want := []vm.TierID{vm.TierDRAM, vm.TierNVM, vm.TierDisk, vm.TierCXL}
	if len(got) != len(want) {
		t.Fatalf("RegisteredTiers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RegisteredTiers = %v, want sorted %v", got, want)
		}
	}
}

// The CXL calibration sits strictly between DRAM and NVM on latency, and
// unlike NVM is read/write symmetric.
func TestCXLCalibration(t *testing.T) {
	cxl, dram, nvm := CXLSpec(1), DRAMSpec(1), NVMSpec(1)
	if !(cxl.ReadLatency > dram.ReadLatency && cxl.ReadLatency < nvm.ReadLatency+100) {
		t.Fatalf("CXL read latency %d out of band (DRAM %d, NVM %d)",
			cxl.ReadLatency, dram.ReadLatency, nvm.ReadLatency)
	}
	if cxl.ReadLatency != cxl.WriteLatency {
		t.Fatalf("CXL latency asymmetric: %d vs %d", cxl.ReadLatency, cxl.WriteLatency)
	}
	if cxl.Peak[Write][Sequential] < nvm.Peak[Write][Sequential]*2 {
		t.Fatal("CXL write bandwidth should far exceed Optane's")
	}
	if cxl.Peak[Read][Sequential] > dram.Peak[Read][Sequential] {
		t.Fatal("CXL link bandwidth should not exceed local DRAM's")
	}
	if cxl.MediaGranularity != 64 {
		t.Fatalf("CXL media granularity = %d, want 64 (plain DRAM media)", cxl.MediaGranularity)
	}
}
