package mem

import (
	"fmt"
	"sort"

	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Model builds the calibrated Spec of one memory technology at a given
// capacity. The registry maps TierIDs to models so machine construction
// can turn a tier descriptor table into devices without switching on the
// tier enum.
type Model func(capacity int64) Spec

var models = map[vm.TierID]Model{}

// RegisterModel binds a device model to a tier ID. Later registrations
// replace earlier ones, so tests can substitute calibrations.
func RegisterModel(t vm.TierID, m Model) { models[t] = m }

// ModelFor returns the device model registered for tier t.
func ModelFor(t vm.TierID) (Model, bool) {
	m, ok := models[t]
	return m, ok
}

// NewFor builds a device for tier t at the given capacity, or an error if
// no model is registered.
func NewFor(t vm.TierID, capacity int64) (*Device, error) {
	m, ok := models[t]
	if !ok {
		return nil, fmt.Errorf("mem: no device model registered for tier %v", t)
	}
	return New(m(capacity)), nil
}

// RegisteredTiers returns the tier IDs with registered models, sorted.
func RegisteredTiers() []vm.TierID {
	out := make([]vm.TierID, 0, len(models))
	for t := range models {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func init() {
	RegisterModel(vm.TierDRAM, DRAMSpec)
	RegisterModel(vm.TierNVM, NVMSpec)
	RegisterModel(vm.TierDisk, DiskSpec)
	RegisterModel(vm.TierCXL, CXLSpec)
}

// CXLSpec returns a calibrated CXL-attached DRAM expander: DDR behind a
// CXL 2.0 x8 link. Load-to-use latency sits between local DRAM and
// Optane (~210 ns, the extra ~130 ns being link + controller traversal,
// consistent with published Pond/TPP measurements), bandwidth is
// link-limited and — unlike Optane — symmetric between reads and writes,
// and the media is ordinary DRAM with 64 B granularity and no wear
// asymmetry.
func CXLSpec(capacity int64) Spec {
	return Spec{
		Name:             "CXL",
		Capacity:         capacity,
		ReadLatency:      210,
		WriteLatency:     210,
		SeqOverhead:      12,
		Stream:           [2]float64{sim.GBps(9.0), sim.GBps(8.5)},
		StreamRand:       [2]float64{sim.GBps(4.5), sim.GBps(4.5)},
		Peak:             [2][2]float64{{sim.GBps(26), sim.GBps(16)}, {sim.GBps(24), sim.GBps(15)}},
		MediaGranularity: 64,
	}
}

// NewCXL returns a calibrated CXL memory device of the given capacity.
func NewCXL(capacity int64) *Device { return New(CXLSpec(capacity)) }
