package mem

import (
	"testing"
	"testing/quick"

	"github.com/tieredmem/hemem/internal/sim"
)

func gbps(d *Device, k Kind, p Pattern, block int64, threads int) float64 {
	return sim.BytesPerNsToGBps(d.Throughput(k, p, block, threads))
}

// The §2.2 calibration facts from the paper, verified at scale (24
// threads, 256 B blocks, matching the paper's microbenchmark).
func TestPaperBandwidthRatios(t *testing.T) {
	dram := NewDRAM(192 * sim.GB)
	nvm := NewNVM(768 * sim.GB)
	const block, threads = 256, 24

	seqW := gbps(dram, Write, Sequential, block, threads) / gbps(nvm, Write, Sequential, block, threads)
	if seqW < 15 || seqW > 18 {
		t.Errorf("DRAM/NVM seq write ratio = %.1f, paper says 16.5", seqW)
	}
	randW := gbps(dram, Write, Random, block, threads) / gbps(nvm, Write, Random, block, threads)
	if randW < 9.5 || randW > 12 {
		t.Errorf("DRAM/NVM rand write ratio = %.1f, paper says 10.7", randW)
	}
	randR := gbps(dram, Read, Random, block, threads) / gbps(nvm, Read, Random, block, threads)
	if randR < 2.4 || randR > 3.0 {
		t.Errorf("DRAM/NVM rand read ratio = %.1f, paper says 2.7", randR)
	}
	// "sequential Optane read throughput is even able to surpass DRAM
	// random access throughput by 14% at scale."
	cross := gbps(nvm, Read, Sequential, block, threads) / gbps(dram, Read, Random, block, threads)
	if cross < 1.05 || cross > 1.25 {
		t.Errorf("NVM seq read / DRAM rand read = %.2f, paper says 1.14", cross)
	}
}

// "Optane write bandwidth is saturated with four threads, regardless of
// access pattern."
func TestNVMWriteSaturatesAtFourThreads(t *testing.T) {
	nvm := NewNVM(768 * sim.GB)
	for _, p := range []Pattern{Sequential, Random} {
		at4 := nvm.Throughput(Write, p, 256, 4)
		at16 := nvm.Throughput(Write, p, 256, 16)
		if at16 > at4*1.05 {
			t.Errorf("NVM %v write grew from 4→16 threads: %.2f → %.2f GB/s",
				p, sim.BytesPerNsToGBps(at4), sim.BytesPerNsToGBps(at16))
		}
	}
	// Reads keep scaling past 4 threads.
	r4 := nvm.Throughput(Read, Random, 256, 4)
	r8 := nvm.Throughput(Read, Random, 256, 8)
	if r8 < r4*1.5 {
		t.Errorf("NVM random read should scale past 4 threads: %.2f → %.2f GB/s",
			sim.BytesPerNsToGBps(r4), sim.BytesPerNsToGBps(r8))
	}
}

// Figure 2: NVM sequential read is saturated almost immediately and block
// size has little effect; small random reads suffer on both devices.
func TestAccessSizeEffects(t *testing.T) {
	dram := NewDRAM(192 * sim.GB)
	nvm := NewNVM(768 * sim.GB)

	small := nvm.Throughput(Read, Sequential, 256, 16)
	large := nvm.Throughput(Read, Sequential, 64*sim.KB, 16)
	if large > small*1.2 {
		t.Errorf("NVM seq read grew too much with block size: %.1f → %.1f GB/s",
			sim.BytesPerNsToGBps(small), sim.BytesPerNsToGBps(large))
	}

	// Small random reads are far below seq on both devices.
	for _, d := range []*Device{dram, nvm} {
		r := d.Throughput(Read, Random, 64, 16)
		s := d.Throughput(Read, Sequential, 64*sim.KB, 16)
		if r > s/2 {
			t.Errorf("%s: 64B random read %.1f not well below large seq %.1f",
				d.Spec.Name, sim.BytesPerNsToGBps(r), sim.BytesPerNsToGBps(s))
		}
	}

	// The seq/rand gap closes as block size increases (Figure 2).
	gapSmall := dram.Throughput(Read, Sequential, 256, 16) / dram.Throughput(Read, Random, 256, 16)
	gapLarge := dram.Throughput(Read, Sequential, 256*sim.KB, 16) / dram.Throughput(Read, Random, 256*sim.KB, 16)
	if gapLarge >= gapSmall {
		t.Errorf("seq/rand gap did not close with size: %.2f → %.2f", gapSmall, gapLarge)
	}
}

// "Accessing small (≤4KB) objects randomly on Optane is slow" — media
// granularity makes an 8 B NVM access cost a full 256 B transfer.
func TestMediaGranularity(t *testing.T) {
	nvm := NewNVM(768 * sim.GB)
	if got := nvm.MediaBytes(8); got != 256 {
		t.Fatalf("MediaBytes(8) = %d, want 256", got)
	}
	if got := nvm.MediaBytes(256); got != 256 {
		t.Fatalf("MediaBytes(256) = %d, want 256", got)
	}
	if got := nvm.MediaBytes(257); got != 512 {
		t.Fatalf("MediaBytes(257) = %d, want 512", got)
	}
	if got := nvm.MediaBytes(0); got != 0 {
		t.Fatalf("MediaBytes(0) = %d, want 0", got)
	}
	dram := NewDRAM(192 * sim.GB)
	if got := dram.MediaBytes(8); got != 64 {
		t.Fatalf("DRAM MediaBytes(8) = %d, want 64", got)
	}
}

func TestAccessTimeLatencies(t *testing.T) {
	dram := NewDRAM(192 * sim.GB)
	nvm := NewNVM(768 * sim.GB)
	// Random read latency floor: Table 1 (82 ns DRAM, 175 ns NVM).
	if at := dram.AccessTime(Read, Random, 8); at < 82 || at > 120 {
		t.Errorf("DRAM 8B random read = %.0f ns, want ~82+transfer", at)
	}
	if at := nvm.AccessTime(Read, Random, 8); at < 175 || at > 320 {
		t.Errorf("NVM 8B random read = %.0f ns, want ~175+transfer", at)
	}
	// NVM write latency is lower than read latency (Table 1: 94 vs 175).
	if nvm.Spec.WriteLatency >= nvm.Spec.ReadLatency {
		t.Error("NVM write latency should be below read latency")
	}
}

func TestWearAccounting(t *testing.T) {
	nvm := NewNVM(768 * sim.GB)
	nvm.Record(Write, 8, 100) // 100 8-byte writes => 100 × 256 media bytes
	w := nvm.Wear()
	if w.WriteBytes != 100*256 {
		t.Fatalf("WriteBytes = %v, want 25600", w.WriteBytes)
	}
	if w.WriteOps != 100 {
		t.Fatalf("WriteOps = %v, want 100", w.WriteOps)
	}
	nvm.Record(Read, 256, 2)
	if got := nvm.Wear().ReadBytes; got != 512 {
		t.Fatalf("ReadBytes = %v, want 512", got)
	}
	nvm.RecordBytes(Write, 1000)
	if got := nvm.Wear().WriteBytes; got != 100*256+1000 {
		t.Fatalf("WriteBytes after RecordBytes = %v", got)
	}
	nvm.ResetWear()
	if nvm.Wear() != (Wear{}) {
		t.Fatal("ResetWear did not zero counters")
	}
}

// Property: throughput is monotone non-decreasing in thread count and never
// exceeds the device ceiling.
func TestThroughputMonotoneAndCapped(t *testing.T) {
	nvm := NewNVM(768 * sim.GB)
	dram := NewDRAM(192 * sim.GB)
	f := func(kindRaw, patRaw uint8, blockRaw uint16, threadsRaw uint8) bool {
		kind := Kind(kindRaw % 2)
		pat := Pattern(patRaw % 2)
		block := int64(blockRaw%4096) + 1
		threads := int(threadsRaw%32) + 1
		for _, d := range []*Device{nvm, dram} {
			t1 := d.Throughput(kind, pat, block, threads)
			t2 := d.Throughput(kind, pat, block, threads+1)
			if t2 < t1 {
				return false
			}
			amp := float64(block) / float64(d.MediaBytes(block))
			if t2 > d.PeakFor(kind, pat, block)*amp*1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: media bytes are a multiple of granularity and >= size.
func TestMediaBytesProperty(t *testing.T) {
	nvm := NewNVM(768 * sim.GB)
	f := func(sizeRaw uint32) bool {
		size := int64(sizeRaw % 1_000_000)
		m := nvm.MediaBytes(size)
		if size == 0 {
			return m == 0
		}
		return m >= size && m%256 == 0 && m-size < 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceString(t *testing.T) {
	d := NewNVM(768 * sim.GB)
	if got := d.String(); got != "NVM(768 GB)" {
		t.Fatalf("String() = %q", got)
	}
}
