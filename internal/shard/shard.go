// Package shard is the deterministic intra-cell parallel engine: it fans
// the independent work *inside* one simulation step — the per-machine
// quantum steps of a fleet cell, Memory Mode's per-zone Monte-Carlo —
// across a worker pool, one level below the sweep engine's per-cell
// parallelism (internal/bench/sweep.go).
//
// The determinism contract mirrors the sweep engine's: results must be
// byte-identical at every worker count. Pool provides only the fan-out;
// callers keep the contract by construction:
//
//   - each work item touches only state it owns (its slot of a result
//     slice, its own machine, its own scratch row);
//   - any randomness an item needs comes from a sub-stream keyed to the
//     item's stable identity (sim.Rand.SplitStable), never from a shared
//     generator consumed in scheduling order;
//   - reductions over item results happen after Run returns, in fixed
//     item order, so float summation order never depends on which worker
//     finished first.
//
// A Pool with Workers() <= 1 runs every item inline on the caller's
// goroutine in index order — the exact serial path, with no goroutines
// and no synchronization.
package shard

import (
	"sync"
	"sync/atomic"
)

// Pool fans independent work items across a fixed number of workers. It
// is stateless between Run calls and safe for concurrent use: sweep
// cells running on different sweep workers may share one Pool.
type Pool struct {
	workers int
}

// NewPool returns a pool of n workers. Any n <= 1 (including 0, the
// zero-config default) yields the serial pool.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{workers: n}
}

// Serial is the shared serial pool, for callers whose config did not
// request sharding.
var Serial = NewPool(1)

// Workers returns the pool's worker count (1 = serial).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(i) for every i in [0, n), returning when all items are
// done. With more than one worker the items run concurrently in an
// unspecified order, so fn must only touch state owned by item i; merge
// results after Run returns, in index order. A serial pool runs the
// items inline in index order.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
