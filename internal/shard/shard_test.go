package shard

import (
	"sync/atomic"
	"testing"
)

// Every item must run exactly once, at every worker count, including
// pools wider than the item count and the degenerate n=0.
func TestPoolRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 100
		var counts [n]atomic.Int32
		p.Run(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
		p.Run(0, func(i int) { t.Fatalf("workers=%d: fn called for n=0", workers) })
	}
}

// A serial pool runs items inline in index order on the caller's
// goroutine — the exact legacy path.
func TestSerialPoolInlineInOrder(t *testing.T) {
	var order []int
	Serial.Run(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran item %d at position %d", v, i)
		}
	}
	if len(order) != 10 {
		t.Fatalf("serial pool ran %d of 10 items", len(order))
	}
	if Serial.Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Fatal("serial pools must report 1 worker")
	}
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Fatal("nil pool must degrade to serial")
	}
}

// Disjoint-slot writes merged in index order give identical results at
// any worker count — the reduction rule sharded callers follow.
func TestPoolFixedOrderReduction(t *testing.T) {
	sum := func(workers int) float64 {
		p := NewPool(workers)
		res := make([]float64, 64)
		p.Run(len(res), func(i int) { res[i] = 1.0 / float64(i+1) })
		s := 0.0
		for _, v := range res {
			s += v
		}
		return s
	}
	want := sum(1)
	for _, w := range []int{2, 3, 8} {
		if got := sum(w); got != want {
			t.Fatalf("workers=%d: fixed-order reduction %v != serial %v", w, got, want)
		}
	}
}

// Concurrent Run calls on one shared pool (sweep cells sharing the shard
// pool) must not interfere; exercised under -race by the CI subset.
func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	done := make(chan struct{})
	for c := 0; c < 3; c++ {
		go func() {
			p.Run(50, func(i int) { total.Add(int64(i)) })
			done <- struct{}{}
		}()
	}
	for c := 0; c < 3; c++ {
		<-done
	}
	if got := total.Load(); got != 3*(49*50/2) {
		t.Fatalf("concurrent runs summed %d, want %d", got, 3*49*50/2)
	}
}
