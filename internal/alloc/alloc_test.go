package alloc_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/alloc"
	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

func setup() (*machine.Machine, *core.HeMem, *alloc.Interceptor) {
	h := core.New(core.DefaultConfig())
	m := machine.New(machine.DefaultConfig(), h)
	return m, h, alloc.New(m)
}

func TestLargeMmapIsManaged(t *testing.T) {
	m, h, i := setup()
	r := i.Mmap("heap", 4*sim.GB)
	if !h.Managed(r) {
		t.Fatal("large mmap not managed")
	}
	if r.Count(vm.TierNone) != 0 {
		t.Fatal("mmap did not fault pages in")
	}
	_ = m
}

func TestSmallMmapForwardedToKernel(t *testing.T) {
	_, h, i := setup()
	r := i.Mmap("stack", 64*sim.MB)
	if h.Managed(r) {
		t.Fatal("small mmap should be kernel-managed")
	}
	if r.Frac(vm.TierDRAM) != 1 {
		t.Fatal("small allocation not in DRAM")
	}
	mm, small, _ := i.Stats()
	if mm != 1 || small != 1 {
		t.Fatalf("stats = %d/%d", mm, small)
	}
}

// The §3.3 growth policy: an arena of small chunks is adopted once its
// cumulative size crosses 1 GB, including retroactively.
func TestArenaAdoptedAtThreshold(t *testing.T) {
	_, h, i := setup()
	a := i.NewArena("query-state")
	var first *vm.Region
	for k := 0; k < 7; k++ { // 7 × 128 MB = 896 MB — below threshold
		r := a.Grow(128 * sim.MB)
		if k == 0 {
			first = r
		}
	}
	if a.Managed() {
		t.Fatal("arena adopted below threshold")
	}
	if h.Managed(first) {
		t.Fatal("chunk managed before adoption")
	}
	last := a.Grow(128 * sim.MB) // crosses 1 GB
	if !a.Managed() {
		t.Fatal("arena not adopted at threshold")
	}
	// Retroactive adoption covers earlier chunks, and later chunks join
	// automatically.
	if !h.Managed(first) || !h.Managed(last) {
		t.Fatal("adoption did not cover all chunks")
	}
	next := a.Grow(128 * sim.MB)
	if !h.Managed(next) {
		t.Fatal("post-adoption chunk not managed")
	}
	if _, _, adopts := i.Stats(); adopts != 1 {
		t.Fatalf("adopts = %d, want 1", adopts)
	}
}

// After adoption, grown-arena pages participate in tiering: under DRAM
// pressure from a hot workload, the cold arena is demoted to NVM; an
// unadopted small allocation stays pinned in DRAM.
func TestAdoptedArenaPagesAreDemotable(t *testing.T) {
	m, _, i := setup()
	a := i.NewArena("grown")
	for k := 0; k < 10; k++ {
		a.Grow(512 * sim.MB) // 5 GB total, adopted at 1 GB
	}
	small := i.Mmap("buffers", 256*sim.MB)

	// A hot workload that wants all of DRAM: 250 GB working set with a
	// 150 GB hot set.
	g := gups.New(m, gups.Config{
		Threads: 16, WorkingSet: 250 * sim.GB, HotSet: 150 * sim.GB, Seed: 9,
	})
	m.Warm()
	m.Run(120 * sim.Second)

	arenaPages := a.Pages()
	if arenaPages.Frac(vm.TierNVM) < 0.5 {
		t.Errorf("cold adopted arena largely still in DRAM (NVM frac %.2f)",
			arenaPages.Frac(vm.TierNVM))
	}
	if small.Frac(vm.TierDRAM) != 1 {
		t.Error("kernel-managed small allocation was demoted")
	}
	_ = g
}
