// Package alloc models HeMem's allocation interception layer (§3.2): in
// the real system, libHeMem is LD_PRELOADed and intercepts mmap and C
// library allocation calls via libsyscall_intercept, learning the size and
// growth of every heap range. Large ranges are managed; small ones are
// forwarded to the kernel (and thereby stay in DRAM); and a range that
// grows through many small allocations is adopted once its cumulative size
// crosses the management threshold (1 GB).
//
// Here the Interceptor plays libHeMem's interception role against the
// simulated machine: workloads allocate through it instead of calling
// machine.AS.Map directly, and it notifies the manager when a growing
// arena crosses the threshold.
package alloc

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// GrowthManager is implemented by managers that can adopt a region after
// allocation time (core.HeMem.Manage).
type GrowthManager interface {
	Manage(r *vm.Region)
}

// Interceptor is the mmap/malloc interception layer.
type Interceptor struct {
	m *machine.Machine
	// Threshold is the management threshold (paper: 1 GB).
	Threshold int64

	mmaps  int64
	small  int64
	adopts int64
}

// New returns an interceptor over m with the paper's 1 GB threshold.
func New(m *machine.Machine) *Interceptor {
	return &Interceptor{m: m, Threshold: 1 * sim.GB}
}

// Mmap models an intercepted anonymous mmap: the region is created and
// faulted in (placement decided by the active manager, which sees its size
// — large regions are managed, small ones forwarded to the kernel).
func (i *Interceptor) Mmap(name string, size int64) *vm.Region {
	i.mmaps++
	if size < i.Threshold {
		i.small++
	}
	r := i.m.AS.Map(name, size)
	i.m.Warm()
	return r
}

// Arena is a heap range that grows through small allocations — the
// paper's example of query state or application buffers that may turn out
// to be large after all. Once cumulative growth crosses the threshold the
// arena's regions are handed to the manager.
type Arena struct {
	i    *Interceptor
	name string

	regions   []*vm.Region
	allocated int64
	managed   bool
	chunks    int
}

// NewArena creates an empty growing arena.
func (i *Interceptor) NewArena(name string) *Arena {
	return &Arena{i: i, name: name}
}

// Grow extends the arena by size bytes (one or more small mmap chunks).
// Crossing the interceptor threshold adopts every chunk — past and future
// — into management.
func (a *Arena) Grow(size int64) *vm.Region {
	a.chunks++
	r := a.i.m.AS.Map(fmt.Sprintf("%s#%d", a.name, a.chunks), size)
	a.regions = append(a.regions, r)
	a.allocated += size
	a.i.m.Warm()
	if !a.managed && a.allocated >= a.i.Threshold {
		a.managed = true
		a.i.adopts++
		if gm, ok := a.i.m.Mgr.(GrowthManager); ok {
			for _, reg := range a.regions {
				gm.Manage(reg)
			}
		}
	} else if a.managed {
		if gm, ok := a.i.m.Mgr.(GrowthManager); ok {
			gm.Manage(r)
		}
	}
	return r
}

// Managed reports whether the arena has been adopted.
func (a *Arena) Managed() bool { return a.managed }

// Allocated returns cumulative arena bytes.
func (a *Arena) Allocated() int64 { return a.allocated }

// Regions returns the arena's chunks.
func (a *Arena) Regions() []*vm.Region { return a.regions }

// Pages returns a PageSet over every arena page (for building workload
// traffic over a grown arena).
func (a *Arena) Pages() *vm.PageSet {
	var pages []*vm.Page
	for _, r := range a.regions {
		for i, n := 0, r.NumPages(); i < n; i++ {
			pages = append(pages, r.PageAt(i))
		}
	}
	return vm.NewPageSet(a.name, pages)
}

// Stats returns (total mmaps, small mmaps forwarded to the kernel, arenas
// adopted into management).
func (i *Interceptor) Stats() (mmaps, small, adopts int64) {
	return i.mmaps, i.small, i.adopts
}
