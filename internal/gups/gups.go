// Package gups implements the GUPS (giga-updates-per-second)
// microbenchmark the paper uses throughout §5.1: parallel read-modify-write
// operations on fixed-size objects over a configurable working set, with an
// optional skewed hot set, an optional write-only partition (the asymmetric
// experiment of Table 2), and support for shifting the hot set mid-run
// (the dynamic experiment of Figure 9).
package gups

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// Config parameterizes a GUPS run.
type Config struct {
	// Threads is the number of update threads (paper default: 16).
	Threads int
	// WorkingSet is the aggregate working set in bytes.
	WorkingSet int64
	// HotSet is the aggregate hot set in bytes; 0 means uniform access.
	HotSet int64
	// HotFrac is the fraction of operations that touch the hot set
	// (paper: 0.9).
	HotFrac float64
	// ObjectSize is bytes per update (paper: 8).
	ObjectSize int64
	// TotalUpdates ends the run after this many updates; 0 = unbounded.
	TotalUpdates float64
	// WriteOnlyHot makes this many bytes of the hot set write-only while
	// the rest of all memory is read-only (Table 2's skewed R/W
	// pattern). 0 disables.
	WriteOnlyHot int64
	// Seed scatters the hot set pages through the working set.
	Seed uint64
}

// GUPS is the workload instance.
type GUPS struct {
	cfg    Config
	region *vm.Region

	hot      *vm.PageSet // nil when uniform
	hotWr    *vm.PageSet // write-only partition of hot (Table 2)
	cold     *vm.PageSet
	comps    []machine.Component
	updates  float64
	started  int64
	lastNow  int64
	obsStart float64 // updates at last Reset, for interval scoring
	obsTime  int64
}

// New maps the working set on m and builds the access components. The hot
// set is a random, non-contiguous subset of pages ("a random set of each
// thread's objects", §5.1) so migration cannot exploit contiguity.
func New(m *machine.Machine, cfg Config) *GUPS {
	if cfg.Threads <= 0 {
		cfg.Threads = 16
	}
	if cfg.ObjectSize <= 0 {
		cfg.ObjectSize = 8
	}
	if cfg.HotFrac == 0 {
		cfg.HotFrac = 0.9
	}
	g := &GUPS{cfg: cfg}
	g.region = m.AS.Map("gups", cfg.WorkingSet)
	pages := g.region.AllPages()

	if cfg.HotSet > 0 && cfg.HotSet < cfg.WorkingSet {
		rng := sim.NewRand(cfg.Seed + 0x9d5)
		perm := rng.Perm(len(pages))
		nHot := int(cfg.HotSet / m.Cfg.PageSize)
		hotPages := make([]*vm.Page, 0, nHot)
		coldPages := make([]*vm.Page, 0, len(pages)-nHot)
		for i, idx := range perm {
			if i < nHot {
				hotPages = append(hotPages, pages[idx])
			} else {
				coldPages = append(coldPages, pages[idx])
			}
		}
		if cfg.WriteOnlyHot > 0 {
			nWr := int(cfg.WriteOnlyHot / m.Cfg.PageSize)
			if nWr > len(hotPages) {
				nWr = len(hotPages)
			}
			g.hotWr = vm.NewPageSet("gups-hot-wr", hotPages[:nWr])
			g.hot = vm.NewPageSet("gups-hot-rd", hotPages[nWr:])
		} else {
			g.hot = vm.NewPageSet("gups-hot", hotPages)
		}
		g.cold = vm.NewPageSet("gups-cold", coldPages)
	} else {
		g.cold = vm.NewPageSet("gups-all", pages)
	}
	g.rebuild()
	m.AddWorkload(g)
	g.started = m.Clock.Now()
	return g
}

// rebuild recomputes the component list from current set sizes.
func (g *GUPS) rebuild() {
	c := g.cfg
	rw := func(set *vm.PageSet, share float64) machine.Component {
		return machine.Component{
			Set: set, Share: share,
			ReadBytes: c.ObjectSize, WriteBytes: c.ObjectSize,
			Pattern: mem.Random,
		}
	}
	switch {
	case g.hot == nil && g.hotWr == nil:
		// Uniform random over the whole working set.
		g.comps = []machine.Component{rw(g.cold, 1)}
	case g.hotWr != nil:
		// Table 2: hot split into write-only and read-only halves;
		// the cold remainder is read-only.
		hotBytes := float64(g.hot.Len() + g.hotWr.Len())
		wrShare := c.HotFrac * float64(g.hotWr.Len()) / hotBytes
		rdShare := c.HotFrac * float64(g.hot.Len()) / hotBytes
		g.comps = []machine.Component{
			{Set: g.hotWr, Share: wrShare, WriteBytes: c.ObjectSize, Pattern: mem.Random},
			{Set: g.hot, Share: rdShare, ReadBytes: c.ObjectSize, Pattern: mem.Random},
			{Set: g.cold, Share: 1 - c.HotFrac, ReadBytes: c.ObjectSize, Pattern: mem.Random},
		}
	default:
		// HotFrac of ops hit the hot set; the rest are uniform over
		// the whole working set, which decomposes into disjoint
		// hot/cold components by size.
		total := float64(g.hot.Len() + g.cold.Len())
		uniformHot := (1 - c.HotFrac) * float64(g.hot.Len()) / total
		uniformCold := (1 - c.HotFrac) * float64(g.cold.Len()) / total
		g.comps = []machine.Component{
			rw(g.hot, c.HotFrac+uniformHot),
			rw(g.cold, uniformCold),
		}
	}
}

// ShiftHotSet makes bytes of the hot set cold and an equal amount of the
// cold set hot (Figure 9's dynamic hot set), preserving set sizes.
func (g *GUPS) ShiftHotSet(bytes int64, seed uint64) {
	if g.hot == nil || g.cold == nil {
		return
	}
	n := int(bytes / g.region.PageSize)
	if n > g.hot.Len() {
		n = g.hot.Len()
	}
	if n > g.cold.Len() {
		n = g.cold.Len()
	}
	rng := sim.NewRand(seed + 0x51f7)
	// Remove all swapped pages first so a freshly added page can never be
	// picked again within the same shift.
	fromHot := make([]*vm.Page, n)
	fromCold := make([]*vm.Page, n)
	for i := 0; i < n; i++ {
		fromHot[i] = g.hot.Remove(rng.Intn(g.hot.Len()))
		fromCold[i] = g.cold.Remove(rng.Intn(g.cold.Len()))
	}
	for i := 0; i < n; i++ {
		g.hot.Add(fromCold[i])
		g.cold.Add(fromHot[i])
	}
	g.rebuild()
}

// Name implements machine.Workload.
func (g *GUPS) Name() string { return "gups" }

// Threads implements machine.Workload.
func (g *GUPS) Threads() int { return g.cfg.Threads }

// Components implements machine.Workload.
func (g *GUPS) Components() []machine.Component { return g.comps }

// OnOps implements machine.Workload.
func (g *GUPS) OnOps(now int64, ops float64, opTime float64) {
	g.updates += ops
	g.lastNow = now
}

// Done implements machine.Workload.
func (g *GUPS) Done() bool {
	return g.cfg.TotalUpdates > 0 && g.updates >= g.cfg.TotalUpdates
}

// Updates returns completed update operations.
func (g *GUPS) Updates() float64 { return g.updates }

// Score returns giga-updates-per-second since the workload started (or
// since the last ResetScore).
func (g *GUPS) Score() float64 {
	elapsed := float64(g.lastNow - g.obsTime)
	if elapsed <= 0 {
		return 0
	}
	return (g.updates - g.obsStart) / elapsed
}

// ResetScore restarts the scoring window (after a warm-up phase).
func (g *GUPS) ResetScore() {
	g.obsStart = g.updates
	g.obsTime = g.lastNow
}

// Region returns the mapped working-set region.
func (g *GUPS) Region() *vm.Region { return g.region }

// HotPages returns the current hot page set (including the write-only
// partition if configured), or nil for uniform runs.
func (g *GUPS) HotPages() *vm.PageSet { return g.hot }

// WriteOnlyPages returns the write-only hot partition, or nil.
func (g *GUPS) WriteOnlyPages() *vm.PageSet { return g.hotWr }

func (g *GUPS) String() string {
	return fmt.Sprintf("gups{%d thr, ws=%dGB hot=%dGB}", g.cfg.Threads,
		g.cfg.WorkingSet/sim.GB, g.cfg.HotSet/sim.GB)
}
