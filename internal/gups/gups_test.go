package gups_test

import (
	"testing"

	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/xmem"
)

func newGUPS(cfg gups.Config) (*machine.Machine, *gups.GUPS) {
	m := machine.New(machine.DefaultConfig(), xmem.DRAMFirst())
	g := gups.New(m, cfg)
	return m, g
}

func TestDefaults(t *testing.T) {
	_, g := newGUPS(gups.Config{WorkingSet: 8 * sim.GB})
	if g.Threads() != 16 {
		t.Fatalf("default threads = %d, want 16", g.Threads())
	}
	comps := g.Components()
	if len(comps) != 1 {
		t.Fatalf("uniform GUPS should have 1 component, got %d", len(comps))
	}
	if comps[0].Share != 1 || comps[0].ReadBytes != 8 || comps[0].WriteBytes != 8 {
		t.Fatalf("uniform component wrong: %+v", comps[0])
	}
}

func TestHotColdDecomposition(t *testing.T) {
	m, g := newGUPS(gups.Config{WorkingSet: 64 * sim.GB, HotSet: 16 * sim.GB, Seed: 1})
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	// Shares sum to 1 and are disjoint-set weighted: hot gets 0.9 plus
	// its share of the uniform 10%.
	total := comps[0].Share + comps[1].Share
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v", total)
	}
	wantHot := 0.9 + 0.1*16.0/64.0
	if comps[0].Share < wantHot-0.001 || comps[0].Share > wantHot+0.001 {
		t.Fatalf("hot share = %v, want %v", comps[0].Share, wantHot)
	}
	// Page sets are disjoint and cover the region.
	if g.HotPages().Len()+comps[1].Set.Len() != g.Region().NumPages() {
		t.Fatal("hot+cold do not partition the region")
	}
	_ = m
}

func TestDoneAfterTotalUpdates(t *testing.T) {
	m, g := newGUPS(gups.Config{WorkingSet: 8 * sim.GB, TotalUpdates: 1e6})
	m.Warm()
	m.RunUntilDone(60 * sim.Second)
	if !g.Done() {
		t.Fatal("workload never finished")
	}
	if g.Updates() < 1e6 {
		t.Fatalf("updates = %v, want >= 1e6", g.Updates())
	}
}

func TestScoreWindow(t *testing.T) {
	m, g := newGUPS(gups.Config{WorkingSet: 8 * sim.GB})
	m.Warm()
	m.Run(sim.Second)
	first := g.Score()
	if first <= 0 {
		t.Fatal("score not positive")
	}
	g.ResetScore()
	m.Run(sim.Second)
	second := g.Score()
	// Steady workload: windows should agree closely.
	if second < first*0.9 || second > first*1.1 {
		t.Fatalf("windows disagree: %v vs %v", first, second)
	}
}

func TestHotSetSeedsDiffer(t *testing.T) {
	_, a := newGUPS(gups.Config{WorkingSet: 16 * sim.GB, HotSet: 4 * sim.GB, Seed: 1})
	_, b := newGUPS(gups.Config{WorkingSet: 16 * sim.GB, HotSet: 4 * sim.GB, Seed: 2})
	same := 0
	inB := map[int]bool{}
	for _, p := range b.HotPages().Pages() {
		inB[p.Index] = true
	}
	for _, p := range a.HotPages().Pages() {
		if inB[p.Index] {
			same++
		}
	}
	if same == a.HotPages().Len() {
		t.Fatal("different seeds produced identical hot sets")
	}
}
