// Package diurnal is a phase-scheduled workload for TB-scale machines:
// traffic alternates between idle spans and bursts over page windows of a
// huge mapping, on a repeating daily schedule. It is the companion of the
// machine's adaptive quantum — during the idle phases the contention
// solver's inputs are constant, so an event-driven run skips from policy
// tick to policy tick instead of grinding fixed quanta — and of vm's
// sparse metadata: only the windows a burst touches ever materialize
// page metadata, so a 1 TB mapping costs memory proportional to the
// touched fraction.
//
// The workload faults windows in through Machine.TouchRange on first
// entry to a phase (the burst's working set pages in on demand, not via
// a whole-region warm), and implements machine.PhaseHinter so the
// adaptive horizon never crosses a phase boundary.
package diurnal

import (
	"fmt"

	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/mem"
	"github.com/tieredmem/hemem/internal/vm"
)

// Phase is one span of the repeating schedule. A zero-width window is an
// idle phase: threads run but move no bytes.
type Phase struct {
	// Duration of the phase in sim-ns. Keep it a multiple of the machine
	// quantum so fixed and adaptive runs cross boundaries on the same
	// step starts.
	Duration int64
	// WindowLo and WindowHi bound the page window touched by the phase,
	// as fractions of the region [0, 1). Lo == Hi means idle.
	WindowLo, WindowHi float64
}

// Config describes the workload.
type Config struct {
	// Name labels the region and traffic sets (default "diurnal").
	Name string
	// WorkingSet is the mapped size (e.g. 1 TB).
	WorkingSet int64
	// Threads is the application thread count (default 16).
	Threads int
	// ReadBytes and WriteBytes are moved per op during a burst (default
	// 64 read, 64 written — a GUPS-like random read-modify-write).
	ReadBytes, WriteBytes int64
	// Phases is the repeating schedule; it must contain at least one
	// phase with positive duration.
	Phases []Phase
}

// Workload runs the schedule on a machine.
type Workload struct {
	cfg    Config
	m      *machine.Machine
	region *vm.Region

	phaseIdx int
	phaseEnd int64
	comps    []machine.Component

	// sets caches each phase's window set: a window is faulted in and
	// its PageSet built once, on first entry; later days reuse it.
	sets []*vm.PageSet

	// activeOps counts ops completed during burst phases only (idle
	// "ops" are compute spins, not memory work); obsStart/obsTime give
	// ResetScore semantics like the other drivers.
	activeOps float64
	obsStart  float64
	lastNow   int64
	obsTime   int64
	faulted   int
}

// New maps the working set on m and registers the workload. No pages are
// touched until the first burst phase begins.
func New(m *machine.Machine, cfg Config) *Workload {
	if cfg.Name == "" {
		cfg.Name = "diurnal"
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 16
	}
	if cfg.ReadBytes <= 0 {
		cfg.ReadBytes = 64
	}
	if cfg.WriteBytes < 0 {
		cfg.WriteBytes = 64
	}
	if len(cfg.Phases) == 0 {
		panic("diurnal: empty phase schedule")
	}
	for _, ph := range cfg.Phases {
		if ph.Duration <= 0 {
			panic("diurnal: phase duration must be positive")
		}
		if ph.WindowLo < 0 || ph.WindowHi > 1 || ph.WindowLo > ph.WindowHi {
			panic(fmt.Sprintf("diurnal: bad window [%v,%v)", ph.WindowLo, ph.WindowHi))
		}
	}
	d := &Workload{cfg: cfg, m: m}
	d.region = m.AS.Map(cfg.Name, cfg.WorkingSet)
	d.sets = make([]*vm.PageSet, len(cfg.Phases))
	d.phaseIdx = 0
	d.phaseEnd = m.Clock.Now() + cfg.Phases[0].Duration
	d.lastNow = m.Clock.Now()
	d.enterPhase(0)
	m.AddWorkload(d)
	return d
}

// Region returns the mapped region.
func (d *Workload) Region() *vm.Region { return d.region }

// rollTo advances the schedule to cover instant now. Entering a burst
// phase faults its window in (first entry only) and swaps the traffic
// component; entering an idle phase drops it.
func (d *Workload) rollTo(now int64) {
	for now >= d.phaseEnd {
		d.phaseIdx = (d.phaseIdx + 1) % len(d.cfg.Phases)
		d.phaseEnd += d.cfg.Phases[d.phaseIdx].Duration
		d.enterPhase(d.phaseIdx)
	}
}

// enterPhase installs phase i's traffic.
func (d *Workload) enterPhase(i int) {
	ph := d.cfg.Phases[i]
	if ph.WindowHi <= ph.WindowLo {
		d.comps = d.comps[:0]
		return
	}
	set := d.sets[i]
	if set == nil {
		n := d.region.NumPages()
		lo := int(ph.WindowLo * float64(n))
		hi := int(ph.WindowHi * float64(n))
		if hi <= lo {
			hi = lo + 1
		}
		d.faulted += d.m.TouchRange(d.region, lo, hi)
		pages := make([]*vm.Page, 0, hi-lo)
		for j := lo; j < hi; j++ {
			pages = append(pages, d.region.PageAt(j))
		}
		set = vm.NewPageSet(fmt.Sprintf("%s-w%d", d.cfg.Name, i), pages)
		d.sets[i] = set
	}
	d.comps = append(d.comps[:0], machine.Component{
		Set:        set,
		Share:      1,
		ReadBytes:  d.cfg.ReadBytes,
		WriteBytes: d.cfg.WriteBytes,
		Pattern:    mem.Random,
	})
}

// Name implements machine.Workload.
func (d *Workload) Name() string { return d.cfg.Name }

// Threads implements machine.Workload.
func (d *Workload) Threads() int { return d.cfg.Threads }

// Components implements machine.Workload: it rolls the schedule to the
// current instant first, so phase transitions take effect on the step
// that starts at the boundary. It is a pure accessor within a step
// (rollTo is idempotent at a fixed clock), as the adaptive pre-pass
// requires.
func (d *Workload) Components() []machine.Component {
	d.rollTo(d.m.Clock.Now())
	return d.comps
}

// NextPhaseChange implements machine.PhaseHinter. It rolls the schedule
// first (idempotent at a fixed clock) so a boundary that coincides with
// now reports the following one.
func (d *Workload) NextPhaseChange(now int64) (int64, bool) {
	d.rollTo(now)
	return d.phaseEnd, true
}

// OnOps implements machine.Workload: burst ops count toward the score,
// idle spins do not.
func (d *Workload) OnOps(now int64, ops float64, opTime float64) {
	if len(d.comps) > 0 {
		d.activeOps += ops
	}
	d.lastNow = now
}

// Done implements machine.Workload; the schedule repeats forever.
func (d *Workload) Done() bool { return false }

// ResetScore starts a fresh measurement window.
func (d *Workload) ResetScore() {
	d.obsStart = d.activeOps
	d.obsTime = d.m.Clock.Now()
}

// Score returns burst ops per second since the last ResetScore.
func (d *Workload) Score() float64 {
	elapsed := d.m.Clock.Now() - d.obsTime
	if elapsed <= 0 {
		return 0
	}
	return (d.activeOps - d.obsStart) / (float64(elapsed) / 1e9)
}

// ActiveOps returns cumulative burst ops.
func (d *Workload) ActiveOps() float64 { return d.activeOps }

// FaultedPages returns how many pages the schedule has faulted in.
func (d *Workload) FaultedPages() int { return d.faulted }
