package diurnal_test

import (
	"math"
	"strings"
	"testing"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/diurnal"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
)

// testSchedule is a small two-burst day: idle spans dominate, the two
// windows overlap nothing, and every duration is a whole number of
// 1 ms quanta so fixed and adaptive runs share step boundaries.
func testSchedule(ws int64) diurnal.Config {
	return diurnal.Config{
		WorkingSet: ws,
		Threads:    8,
		Phases: []diurnal.Phase{
			{Duration: 2 * sim.Second},
			{Duration: 1 * sim.Second, WindowLo: 0.00, WindowHi: 0.25},
			{Duration: 3 * sim.Second},
			{Duration: 1 * sim.Second, WindowLo: 0.50, WindowHi: 0.75},
			{Duration: 3 * sim.Second},
		},
	}
}

func TestScheduleRollsAndFaultsLazily(t *testing.T) {
	m := machine.New(machine.DefaultConfig(), core.New(core.DefaultConfig()))
	d := diurnal.New(m, testSchedule(16*sim.GB))

	if got := d.Region().TouchedPages(); got != 0 {
		t.Fatalf("pages touched before any burst: %d", got)
	}
	if d.ActiveOps() != 0 {
		t.Fatalf("ops before run: %v", d.ActiveOps())
	}
	// First idle phase: still nothing materialized.
	m.Run(2 * sim.Second)
	if got := d.Region().TouchedPages(); got != 0 {
		t.Fatalf("idle phase materialized %d pages", got)
	}
	// First burst: exactly the window's quarter of the region faults in.
	m.Run(1 * sim.Second)
	quarter := d.Region().NumPages() / 4
	if got := d.FaultedPages(); got != quarter {
		t.Fatalf("first burst faulted %d pages, want %d", got, quarter)
	}
	if d.ActiveOps() <= 0 {
		t.Fatalf("burst produced no ops")
	}
	// Run through the rest of the day plus a full repeat: the second
	// burst adds its quarter, the repeat adds nothing new.
	ops := d.ActiveOps()
	m.Run(7 * sim.Second)
	if got := d.FaultedPages(); got != 2*quarter {
		t.Fatalf("after both bursts faulted %d pages, want %d", got, 2*quarter)
	}
	m.Run(10 * sim.Second)
	if got := d.FaultedPages(); got != 2*quarter {
		t.Fatalf("repeat day faulted new pages: %d, want %d", d.FaultedPages(), 2*quarter)
	}
	if d.ActiveOps() <= ops {
		t.Fatalf("repeat day produced no ops")
	}
	if at, ok := d.NextPhaseChange(m.Clock.Now()); !ok || at <= m.Clock.Now() {
		t.Fatalf("NextPhaseChange = %d, %v at now=%d", at, ok, m.Clock.Now())
	}
}

// run executes the schedule on one machine configuration and returns the
// machine and workload for comparison.
func runOnce(t *testing.T, adaptive bool, seed uint64, span int64) (*machine.Machine, *diurnal.Workload, string) {
	t.Helper()
	mc := machine.DefaultConfig()
	// Small DRAM so the 4 GB burst windows overflow it: placement spills
	// to NVM and the policy migrates during and after bursts, exercising
	// the non-quiescent paths of the adaptive loop.
	mc.DRAMSize = 2 * sim.GB
	mc.Seed = seed
	mc.AdaptiveQuantum = adaptive
	m := machine.New(mc, core.New(core.DefaultConfig()))
	tel := m.EnableTelemetry(100 * sim.Millisecond)
	d := diurnal.New(m, testSchedule(16*sim.GB))
	m.Run(span)
	var csv strings.Builder
	if err := tel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return m, d, csv.String()
}

// TestAdaptiveMatchesFixed is the exactness property: with a phased
// workload whose idle spans move no bytes, the adaptive event-driven run
// must reproduce the fixed 1 ms schedule bit for bit — scores, faults,
// per-edge migration counters, and the telemetry CSV.
func TestAdaptiveMatchesFixed(t *testing.T) {
	tiers := []vm.Tier{vm.TierDRAM, vm.TierNVM, vm.TierDisk}
	for _, seed := range []uint64{1, 17, 99} {
		span := int64(20 * sim.Second) // two full days of the 10 s schedule
		fm, fd, fcsv := runOnce(t, false, seed, span)
		am, ad, acsv := runOnce(t, true, seed, span)

		if f, a := fd.ActiveOps(), ad.ActiveOps(); math.Float64bits(f) != math.Float64bits(a) {
			t.Errorf("seed %d: ops diverged: fixed %v adaptive %v", seed, f, a)
		}
		if f, a := fm.Faults(), am.Faults(); f != a {
			t.Errorf("seed %d: faults diverged: fixed %d adaptive %d", seed, f, a)
		}
		fs, as := fm.Migrator.Stats(), am.Migrator.Stats()
		if fs.Pages != as.Pages || math.Float64bits(fs.Bytes) != math.Float64bits(as.Bytes) {
			t.Errorf("seed %d: migration stats diverged: fixed %+v adaptive %+v", seed, fs, as)
		}
		if fs.Pages == 0 {
			t.Errorf("seed %d: no migrations at all — the test lost its pressure", seed)
		}
		for _, src := range tiers {
			for _, dst := range tiers {
				if f, a := fm.Migrator.Moved(src, dst), am.Migrator.Moved(src, dst); f != a {
					t.Errorf("seed %d: edge %v->%v diverged: fixed %d adaptive %d", seed, src, dst, f, a)
				}
			}
		}
		if f, a := fm.AS.TouchedPages(), am.AS.TouchedPages(); f != a {
			t.Errorf("seed %d: touched pages diverged: fixed %d adaptive %d", seed, f, a)
		}
		if fcsv != acsv {
			t.Errorf("seed %d: telemetry CSV diverged (%d vs %d bytes)", seed, len(fcsv), len(acsv))
		}
	}
}

// TestAdaptiveAudited runs the adaptive loop with the runtime invariant
// auditor recounting occupancy every step: the variable-dt path must
// keep the same conservation invariants as the fixed path, including
// over sparse regions where most pages never materialize.
func TestAdaptiveAudited(t *testing.T) {
	mc := machine.DefaultConfig()
	mc.DRAMSize = 2 * sim.GB
	mc.AdaptiveQuantum = true
	mc.Audit = true
	m := machine.New(mc, core.New(core.DefaultConfig()))
	diurnal.New(m, testSchedule(16*sim.GB))
	m.Run(20 * sim.Second) // panics on any invariant violation
}
