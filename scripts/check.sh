#!/bin/sh
# Tier-1 verification gate: vet, build, and race-enabled tests.
# Equivalent to `make check`; kept as a script for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "OK"
