# Tier-1 verification targets. `make check` is the full gate: vet,
# build, and the test suite under the race detector.

GO ?= go

.PHONY: check vet build test race

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
