# Tier-1 verification targets. `make check` is the full gate: vet,
# build, and the test suite under the race detector.

GO ?= go
BENCH_OUT ?= BENCH_pr10.json

.PHONY: check vet build test race bench soak prof

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Simulator performance harness: GUPS/KVS/GAP scenarios plus the sweep
# engine (full suite serial vs parallel, outputs byte-compared),
# reporting wall clock, simulated-ns per second, allocations, and
# seeded-determinism checks as JSON.
bench:
	$(GO) run ./cmd/hemem-bench -perf -out $(BENCH_OUT)

# Profile the perf harness: CPU + allocation pprof profiles alongside
# the JSON report (the recipe behind the top-of-profile tables in
# EXPERIMENTS.md). Inspect with `go tool pprof cpu.pprof`.
prof:
	$(GO) run ./cmd/hemem-bench -perf -cpuprofile cpu.pprof -memprofile mem.pprof -out $(BENCH_OUT)

# Bounded chaos soak: the seeded chaos scheduler drives compound fault
# episodes, correctable-error storms, and CXL offline/online cycles
# through a GUPS run under the race detector, with the invariant
# auditor checking conservation every quantum. CHAOS_LOG names the
# replayable episode-log artifact.
CHAOS_LOG ?= chaos-episodes.log
soak:
	CHAOS_LOG=$(CHAOS_LOG) $(GO) test -race -run Chaos -timeout 10m -v ./internal/bench/
