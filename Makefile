# Tier-1 verification targets. `make check` is the full gate: vet,
# build, and the test suite under the race detector.

GO ?= go
BENCH_OUT ?= BENCH_pr5.json

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Simulator performance harness: GUPS/KVS/GAP scenarios plus the sweep
# engine (full suite serial vs parallel, outputs byte-compared),
# reporting wall clock, simulated-ns per second, allocations, and
# seeded-determinism checks as JSON.
bench:
	$(GO) run ./cmd/hemem-bench -perf -out $(BENCH_OUT)
