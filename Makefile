# Tier-1 verification targets. `make check` is the full gate: vet,
# build, and the test suite under the race detector.

GO ?= go
BENCH_OUT ?= BENCH_pr9.json

.PHONY: check vet build test race bench soak

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Simulator performance harness: GUPS/KVS/GAP scenarios plus the sweep
# engine (full suite serial vs parallel, outputs byte-compared),
# reporting wall clock, simulated-ns per second, allocations, and
# seeded-determinism checks as JSON.
bench:
	$(GO) run ./cmd/hemem-bench -perf -out $(BENCH_OUT)

# Bounded chaos soak: the seeded chaos scheduler drives compound fault
# episodes, correctable-error storms, and CXL offline/online cycles
# through a GUPS run under the race detector, with the invariant
# auditor checking conservation every quantum. CHAOS_LOG names the
# replayable episode-log artifact.
CHAOS_LOG ?= chaos-episodes.log
soak:
	CHAOS_LOG=$(CHAOS_LOG) $(GO) test -race -run Chaos -timeout 10m -v ./internal/bench/
