// Tests of the public API surface: the façade must be sufficient to build
// machines, run workloads, and drive the real data-structure
// implementations without touching internal packages.
package hemem_test

import (
	"bytes"
	"strings"
	"testing"

	hemem "github.com/tieredmem/hemem"
)

func TestPublicGUPSFlow(t *testing.T) {
	mgr := hemem.NewHeMem(hemem.DefaultHeMemConfig())
	m := hemem.NewMachine(hemem.DefaultMachineConfig(), mgr)
	g := hemem.NewGUPS(m, hemem.GUPSConfig{
		Threads: 16, WorkingSet: 64 * hemem.GB, HotSet: 8 * hemem.GB, Seed: 1,
	})
	m.Warm()
	m.Run(30 * hemem.Second)
	if g.Score() <= 0 {
		t.Fatal("no progress through public API")
	}
	if g.HotPages().Frac(hemem.TierDRAM) <= 0 {
		t.Fatal("placement not visible through public API")
	}
}

func TestPublicManagersConstruct(t *testing.T) {
	for name, mgr := range map[string]hemem.Manager{
		"hemem":    hemem.NewHeMem(hemem.DefaultHeMemConfig()),
		"mm":       hemem.NewMemoryMode(),
		"nimble":   hemem.NewNimble(),
		"pt-async": hemem.NewHeMemPTAsync(),
		"pt-sync":  hemem.NewHeMemPTSync(),
		"dram":     hemem.DRAMOnly(),
		"nvm":      hemem.NVMOnly(),
		"xmem":     hemem.XMem(hemem.GB),
	} {
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), mgr)
		hemem.NewGUPS(m, hemem.GUPSConfig{Threads: 4, WorkingSet: 4 * hemem.GB})
		m.Warm()
		m.Run(100 * hemem.Millisecond)
		if m.TotalOps("gups") <= 0 {
			t.Errorf("%s: no ops", name)
		}
	}
}

func TestPublicKVStore(t *testing.T) {
	s := hemem.NewKVStore(hemem.KVStoreConfig{})
	s.Set([]byte("k"), []byte("v"))
	if v, ok := s.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatal("store roundtrip failed")
	}
}

func TestPublicSiloTPCC(t *testing.T) {
	env := hemem.NewTPCCEnv(hemem.NewDB(), 1)
	g := hemem.NewTPCCRand(1)
	for i := 0; i < 50; i++ {
		if _, err := env.RunMix(g, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicGraph(t *testing.T) {
	g := hemem.Kronecker(8, 8, 1)
	scores := hemem.BetweennessCentrality(g, 3, 1)
	if len(scores) != g.N {
		t.Fatal("score length mismatch")
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(hemem.Experiments()) != 25 {
		t.Fatalf("experiments = %d, want 25", len(hemem.Experiments()))
	}
	var buf bytes.Buffer
	if !hemem.RunExperiment("tab1", &buf, hemem.ExperimentOpts{}) {
		t.Fatal("tab1 missing")
	}
	if !strings.Contains(buf.String(), "DRAM") {
		t.Fatal("tab1 output malformed")
	}
	if hemem.RunExperiment("bogus", &buf, hemem.ExperimentOpts{}) {
		t.Fatal("bogus experiment accepted")
	}
}

func TestPublicTierTable(t *testing.T) {
	mcfg := hemem.DefaultMachineConfig()
	mcfg.Tiers = []hemem.TierDesc{
		{ID: hemem.TierDRAM, Capacity: 4 * hemem.GB},
		{ID: hemem.TierCXL, Capacity: 8 * hemem.GB},
		{ID: hemem.TierNVM, Capacity: 64 * hemem.GB, UEVictim: true},
	}
	mgr := hemem.NewHeMem(hemem.DefaultHeMemConfig())
	m := hemem.NewMachine(mcfg, mgr)
	r := m.AS.Map("data", 8*hemem.GB)
	m.Warm()
	if r.Bytes(hemem.TierCXL) == 0 {
		t.Fatal("no pages landed on the CXL middle tier")
	}
	if got := mgr.Used(hemem.TierCXL); got != r.Bytes(hemem.TierCXL) {
		t.Fatalf("manager CXL accounting %d != resident %d", got, r.Bytes(hemem.TierCXL))
	}
	// Custom tier registration is idempotent and Stringer-visible.
	id := hemem.RegisterTier("hbm")
	if again := hemem.RegisterTier("hbm"); again != id {
		t.Fatalf("re-registration moved the tier id: %v vs %v", again, id)
	}
	if id.String() != "hbm" {
		t.Fatalf("custom tier name = %q", id.String())
	}
}

// The tracker/policy registry is reachable through the façade: built-in
// names enumerate, rival selections build working managers, and a custom
// heat forecaster registers and drives the heat policy by name.
func TestPublicTrackerPolicyRegistry(t *testing.T) {
	want := map[string][]string{
		"trackers":    hemem.TrackerNames(),
		"policies":    hemem.PolicyNames(),
		"forecasters": hemem.HeatForecasterNames(),
	}
	for _, name := range []string{"pebs", "damon", "idlepage"} {
		if !containsStr(want["trackers"], name) {
			t.Fatalf("tracker %q missing from %v", name, want["trackers"])
		}
	}
	for _, name := range []string{"hemem", "heat"} {
		if !containsStr(want["policies"], name) {
			t.Fatalf("policy %q missing from %v", name, want["policies"])
		}
	}

	hemem.RegisterHeatForecaster("api-test-flat", func(hemem.HeMemConfig) hemem.HeatForecaster {
		return flatForecast{}
	})
	if !containsStr(hemem.HeatForecasterNames(), "api-test-flat") {
		t.Fatal("custom forecaster not listed after registration")
	}

	cfg := hemem.HeMemConfig{Tracker: "damon", Policy: "heat", HeatForecaster: "api-test-flat"}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected registered names: %v", err)
	}
	mgr := hemem.NewHeMem(cfg)
	m := hemem.NewMachine(hemem.DefaultMachineConfig(), mgr)
	g := hemem.NewGUPS(m, hemem.GUPSConfig{
		Threads: 8, WorkingSet: 16 * hemem.GB, HotSet: 2 * hemem.GB, Seed: 1,
	})
	m.Warm()
	m.Run(2 * hemem.Second)
	if g.Score() <= 0 {
		t.Fatal("no progress with damon+heat through public API")
	}
	if mgr.Stats().Samples == 0 {
		t.Fatal("custom-configured manager observed no accesses")
	}
}

type flatForecast struct{}

func (flatForecast) Name() string                    { return "api-test-flat" }
func (flatForecast) Forecast(cur, _ float64) float64 { return cur }

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
