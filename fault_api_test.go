// Acceptance tests for the fault-injection layer through the public
// API: determinism under a fixed seed, graceful degradation under
// combined faults, and adaptive sampling under PEBS storms.
package hemem_test

import (
	"strings"
	"testing"

	hemem "github.com/tieredmem/hemem"
)

// faultyGUPSRun executes a short GUPS run with fault injection enabled
// and returns the telemetry CSV plus the machine for further asserts.
func faultyGUPSRun(t *testing.T, seed uint64, faults hemem.FaultConfig) (string, *hemem.Machine) {
	t.Helper()
	cfg := hemem.DefaultMachineConfig()
	cfg.Seed = seed
	cfg.DRAMSize = 16 * hemem.GB // force tiering so migrations run
	cfg.Faults = faults
	m := hemem.NewMachine(cfg, hemem.NewHeMem(hemem.DefaultHeMemConfig()))
	hemem.NewGUPS(m, hemem.GUPSConfig{
		Threads: 16, WorkingSet: 64 * hemem.GB, HotSet: 8 * hemem.GB, Seed: 1,
	})
	tel := m.EnableTelemetry(10 * hemem.Millisecond)
	m.Warm()
	m.Run(2 * hemem.Second)
	var sb strings.Builder
	if err := tel.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return sb.String(), m
}

// The same seed and fault configuration must reproduce the run
// bit-identically; a different seed must not.
func TestFaultInjectionDeterminism(t *testing.T) {
	faults := hemem.FaultConfig{
		MigrationAbortProb:   0.2,
		DMADegradedMTBF:      50 * hemem.Millisecond,
		NVMThermalMTBF:       80 * hemem.Millisecond,
		PEBSStormMTBF:        60 * hemem.Millisecond,
		NVMUncorrectableMTBF: 200 * hemem.Millisecond,
	}
	a, ma := faultyGUPSRun(t, 7, faults)
	b, _ := faultyGUPSRun(t, 7, faults)
	if a != b {
		t.Fatal("same seed and fault config produced different telemetry")
	}
	if fs := ma.FaultCounters(); fs.Injected() == 0 {
		t.Fatal("fault config injected nothing; determinism test is vacuous")
	}
	c, _ := faultyGUPSRun(t, 8, faults)
	if a == c {
		t.Fatal("different seeds produced identical telemetry under faults")
	}
}

// With injection disabled the machine must not emit fault telemetry
// series at all — the layer is a strict no-op.
func TestNoFaultSeriesWhenDisabled(t *testing.T) {
	_, m := faultyGUPSRun(t, 1, hemem.FaultConfig{})
	if m.Injector.Enabled() {
		t.Fatal("injector enabled with zero fault config")
	}
	if s := m.Telemetry().Series("fault.injected.total"); s != nil {
		t.Fatal("fault series recorded with injection disabled")
	}
	if fs := *m.FaultCounters(); fs != (hemem.FaultStats{}) {
		t.Fatalf("fault counters moved with injection disabled: %+v", fs)
	}
}

// GUPS under migration aborts, DMA channel loss, and NVM errors must
// complete without panics, make progress, recover via retries and the
// software-copy fallback, and lose no pages.
func TestGUPSWithFaultsDegradesGracefully(t *testing.T) {
	cfg := hemem.DefaultMachineConfig()
	cfg.DRAMSize = 16 * hemem.GB // force tiering so migrations run
	cfg.Faults = hemem.FaultConfig{
		MigrationAbortProb:   0.3,
		DMAChannelMTBF:       10 * hemem.Millisecond,
		NVMUncorrectableMTBF: 100 * hemem.Millisecond,
	}
	m := hemem.NewMachine(cfg, hemem.NewHeMem(hemem.DefaultHeMemConfig()))
	g := hemem.NewGUPS(m, hemem.GUPSConfig{
		Threads: 16, WorkingSet: 64 * hemem.GB, HotSet: 8 * hemem.GB, Seed: 1,
	})
	m.Warm()
	m.Run(5 * hemem.Second)

	if g.Score() <= 0 {
		t.Fatal("no GUPS progress under faults")
	}
	fs := *m.FaultCounters()
	if fs.Injected() == 0 || fs.Recoveries() == 0 {
		t.Fatalf("counters empty: injected=%d recoveries=%d", fs.Injected(), fs.Recoveries())
	}
	if fs.MigrationAborts == 0 || fs.MigrationRetries == 0 {
		t.Fatalf("no transactional migration activity: aborts=%d retries=%d",
			fs.MigrationAborts, fs.MigrationRetries)
	}
	// A 10 ms channel MTBF kills all 8 channels early in a 5 s run.
	if fs.DMAChannelFailures < 8 || fs.SoftwareCopyFallbacks != 1 {
		t.Fatalf("DMA degradation incomplete: failures=%d fallbacks=%d",
			fs.DMAChannelFailures, fs.SoftwareCopyFallbacks)
	}
	if fs.NVMUncorrectable == 0 || fs.PagesRetired != fs.NVMUncorrectable {
		t.Fatalf("NVM UE accounting: errors=%d retired=%d", fs.NVMUncorrectable, fs.PagesRetired)
	}
	// No page is ever lost: every mapped page still occupies exactly one
	// tier, even after aborted and abandoned migrations.
	for _, r := range m.AS.Regions {
		got := r.Count(hemem.TierDRAM) + r.Count(hemem.TierNVM) + r.Count(hemem.TierDisk)
		if got != r.NumPages() {
			t.Fatalf("region %s lost pages: %d of %d accounted", r.Name, got, r.NumPages())
		}
	}
}

// Sustained PEBS overrun storms make the manager raise its sample
// period when adaptive sampling is on.
func TestAdaptiveSamplingUnderPEBSStorms(t *testing.T) {
	hcfg := hemem.DefaultHeMemConfig()
	hcfg.AdaptiveSampling = true
	mgr := hemem.NewHeMem(hcfg)
	cfg := hemem.DefaultMachineConfig()
	cfg.Faults = hemem.FaultConfig{
		PEBSStormMTBF:     20 * hemem.Millisecond,
		PEBSStormDuration: 500 * hemem.Millisecond,
		PEBSStormFactor:   64,
	}
	m := hemem.NewMachine(cfg, mgr)
	hemem.NewGUPS(m, hemem.GUPSConfig{
		Threads: 16, WorkingSet: 64 * hemem.GB, HotSet: 8 * hemem.GB, Seed: 1,
	})
	m.Warm()
	m.Run(3 * hemem.Second)

	if got := mgr.Stats().PeriodRaises; got == 0 {
		t.Fatal("adaptive sampling never raised the period under storms")
	}
	if got, base := mgr.Sampler().Period, mgr.Config().SamplePeriod; got <= base {
		t.Fatalf("sample period %v not raised above base %v", got, base)
	}
	if m.FaultCounters().SamplePeriodRaises == 0 {
		t.Fatal("machine counter missed period raises")
	}
}
