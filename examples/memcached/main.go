// memcached: serve the real FlexKVS store over the memcached text protocol
// (FlexKVS is "Memcached compatible", §5.2.2), drive it with concurrent
// clients, and print server statistics.
package main

import (
	"fmt"
	"sync"

	hemem "github.com/tieredmem/hemem"
)

func main() {
	server := hemem.NewKVServer(hemem.NewKVStore(hemem.KVStoreConfig{}))
	go func() {
		if err := server.ListenAndServe("127.0.0.1:0"); err != nil {
			panic(err)
		}
	}()
	for server.Addr() == nil {
	}
	addr := server.Addr().String()
	fmt.Printf("flexkvs listening on %s (memcached text protocol)\n", addr)

	// Eight concurrent clients, 90% GETs / 10% SETs over a shared key
	// space — the paper's workload mix in miniature.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := hemem.DialKV(addr)
			if err != nil {
				panic(err)
			}
			defer cl.Close()
			value := make([]byte, 512)
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("key-%04d", (id*131+i*7)%512)
				if i%10 == 0 {
					if err := cl.Set(key, uint32(id), value); err != nil {
						panic(err)
					}
				} else {
					cl.Get(key)
				}
			}
		}(c)
	}
	wg.Wait()

	cl, _ := hemem.DialKV(addr)
	stats, err := cl.Stats()
	if err != nil {
		panic(err)
	}
	fmt.Printf("cmd_get=%d cmd_set=%d get_misses=%d curr_items=%d bytes=%d\n",
		stats["cmd_get"], stats["cmd_set"], stats["get_misses"],
		stats["curr_items"], stats["bytes"])
	cl.Close()
	server.Close()
}
