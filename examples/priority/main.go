// priority: the paper's performance-isolation experiment (Table 4). Two
// key-value store instances share the machine: a small priority instance
// and a large regular one. Under HeMem, per-application policy pins the
// priority instance's memory in DRAM; hardware memory mode cannot
// prioritize, so the regular instance's bulk traffic evicts the priority
// instance's cache lines.
package main

import (
	"fmt"

	hemem "github.com/tieredmem/hemem"
)

func run(name string, mgr hemem.Manager, pin func(*hemem.KVS)) {
	m := hemem.NewMachine(hemem.DefaultMachineConfig(), mgr)
	prio := hemem.NewKVS(m, hemem.KVSConfig{
		Name: "priority", WorkingSet: 16 * hemem.GB, ServerThreads: 4,
		NetBase: 24 * hemem.Microsecond, Seed: 3,
		TargetRate: 0.5 * 4 / float64(26*hemem.Microsecond),
	})
	// The regular instance runs closed-loop (the paper drives it with two
	// 48-thread clients), hammering the cache with a uniformly random
	// 500 GB working set.
	reg := hemem.NewKVS(m, hemem.KVSConfig{
		Name: "regular", WorkingSet: 500 * hemem.GB, ServerThreads: 8,
		NetBase: 24 * hemem.Microsecond, Seed: 4,
	})
	if pin != nil {
		pin(prio)
	}
	m.Warm()
	m.Run(120 * hemem.Second)
	prio.ResetScore()
	reg.ResetScore()
	m.Run(30 * hemem.Second)

	pl, rl := prio.Latency(), reg.Latency()
	fmt.Printf("%-8s priority p50=%3.0fµs p99=%3.0fµs   regular p50=%3.0fµs p99=%3.0fµs   priority-in-DRAM=%.0f%%\n",
		name,
		pl.Quantile(0.5)/1000, pl.Quantile(0.99)/1000,
		rl.Quantile(0.5)/1000, rl.Quantile(0.99)/1000,
		prio.LogRegion().Frac(hemem.TierDRAM)*100)
}

func main() {
	fmt.Println("two FlexKVS instances: 16 GB priority + 500 GB regular (Table 4)")

	h := hemem.NewHeMem(hemem.DefaultHeMemConfig())
	run("HeMem", h, func(d *hemem.KVS) {
		// HeMem's user-level flexibility: this application's policy is
		// "keep everything in DRAM".
		h.PinRegion(d.LogRegion())
		h.PinRegion(d.TableRegion())
	})

	run("MM", hemem.NewMemoryMode(), nil)

	fmt.Println("\npaper: priority p50 86µs (HeMem) vs 127µs (MM), p99 239 vs 278 — the abstract's \"16% lower tail latency under performance isolation\"")
}
