// graphanalytics: generate a real Kronecker power-law graph and run
// betweenness centrality on it, then replay the paper's Figure 15/16
// experiment (BC on a graph exceeding DRAM) on the simulated machine.
package main

import (
	"fmt"
	"sort"

	hemem "github.com/tieredmem/hemem"
)

func main() {
	// Part 1: real graph + real algorithm at laptop scale.
	g := hemem.Kronecker(16, 16, 7) // 65k vertices, ~1M directed edges
	fmt.Printf("graph: %d vertices, %d CSR entries\n", g.N, g.NumEdges())
	fmt.Printf("degree skew: top 1%% of vertices carry %.0f%% of edges\n\n",
		g.DegreeSkew(0.01)*100)

	scores := hemem.BetweennessCentrality(g, 15, 42)
	type vs struct {
		v int
		s float64
	}
	top := make([]vs, 0, g.N)
	for v, s := range scores {
		top = append(top, vs{v, s})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].s > top[j].s })
	fmt.Println("most central vertices (15 sampled sources):")
	for _, t := range top[:5] {
		fmt.Printf("  v%-8d bc=%.0f degree=%d\n", t.v, t.s, g.Degree(uint32(t.v)))
	}

	// Part 2: the tiering experiment at paper scale (2^29 vertices,
	// ~200 GB — exceeds the 192 GB DRAM). Iterations are shortened so
	// the demo finishes quickly.
	fmt.Println("\nBC on 2^29 vertices (exceeds DRAM), 4 shortened iterations:")
	for _, mk := range []struct {
		name string
		mgr  hemem.Manager
	}{
		{"HeMem", hemem.NewHeMem(hemem.DefaultHeMemConfig())},
		{"Memory Mode", hemem.NewMemoryMode()},
	} {
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), mk.mgr)
		d := hemem.NewBC(m, hemem.BCConfig{
			Scale: 29, Iterations: 4, EdgeVisitScale: 0.05, Seed: 2,
		})
		m.Warm()
		m.RunUntilDone(3000 * hemem.Second)
		fmt.Printf("%-12s iteration times:", mk.name)
		for _, t := range d.IterationTimes() {
			fmt.Printf(" %.1fs", float64(t)/1e9)
		}
		fmt.Printf("   NVM written last iter: %.1f GB\n",
			d.IterationNVMWrites()[d.Iterations()-1]/float64(hemem.GB))
	}
	fmt.Println("\npaper (Figs 15-16): HeMem 58% faster than MM; MM writes ~10x more NVM per iteration")
}
