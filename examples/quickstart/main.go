// Quickstart: run the GUPS microbenchmark on the simulated tiered-memory
// testbed under HeMem, and watch it identify and migrate a hot set that
// starts mostly in NVM.
package main

import (
	"fmt"

	hemem "github.com/tieredmem/hemem"
)

func main() {
	// One socket of the paper's testbed: 24 cores, 192 GB DRAM, 768 GB
	// Optane NVM, managed by HeMem with the paper's default parameters.
	mgr := hemem.NewHeMem(hemem.DefaultHeMemConfig())
	m := hemem.NewMachine(hemem.DefaultMachineConfig(), mgr)

	// GUPS: 16 threads doing random 8-byte read-modify-writes over a
	// 512 GB working set; 90% of operations hit a 16 GB hot set
	// scattered through it.
	g := hemem.NewGUPS(m, hemem.GUPSConfig{
		Threads:    16,
		WorkingSet: 512 * hemem.GB,
		HotSet:     16 * hemem.GB,
		Seed:       42,
	})

	// First touch: HeMem places pages DRAM-first until DRAM fills, then
	// spills to NVM. The scattered hot set starts mostly in NVM.
	m.Warm()
	fmt.Printf("after warm-up: %.0f%% of the hot set is in DRAM\n",
		g.HotPages().Frac(hemem.TierDRAM)*100)

	// Run one simulated minute at a time: PEBS samples accumulate,
	// pages cross the hot thresholds, and the 10 ms policy migrates
	// them to DRAM over the DMA engine.
	for i := 1; i <= 3; i++ {
		m.Run(60 * hemem.Second)
		fmt.Printf("t=%3ds  GUPS=%.4f  hot-in-DRAM=%.0f%%  migrated=%d pages\n",
			i*60, g.Score(), g.HotPages().Frac(hemem.TierDRAM)*100,
			m.Migrator.Stats().Pages)
	}

	st := mgr.Stats()
	fmt.Printf("\nPEBS samples processed: %d (dropped %.2f%%)\n",
		st.Samples, mgr.Buffer().DropFraction()*100)
	fmt.Printf("promotions: %d, demotions: %d, cooling epochs: %d\n",
		st.Promotions, st.Demotions, st.CoolEpochs)
	fmt.Printf("NVM bytes written (wear): %.1f GB\n",
		m.NVM.Wear().WriteBytes/float64(hemem.GB))
}
