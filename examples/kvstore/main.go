// kvstore: use the real FlexKVS-style store (segmented log + block-chain
// hash table), then compare tiered-memory managers serving the same store
// at 700 GB scale on the simulated machine — the paper's Table 3 scenario.
package main

import (
	"fmt"

	hemem "github.com/tieredmem/hemem"
)

func main() {
	// Part 1: the real store. Values live in a segmented log; a
	// block-chain hash table indexes them; overwritten versions are
	// compacted away by the segment cleaner.
	s := hemem.NewKVStore(hemem.KVStoreConfig{SegmentSize: 1 << 20})
	for i := 0; i < 10000; i++ {
		key := fmt.Appendf(nil, "user:%05d", i)
		val := fmt.Appendf(nil, `{"id":%d,"name":"user-%d"}`, i, i)
		if err := s.Set(key, val); err != nil {
			panic(err)
		}
	}
	// Overwrite a hot subset repeatedly to leave garbage behind.
	for round := 0; round < 20; round++ {
		for i := 0; i < 500; i++ {
			key := fmt.Appendf(nil, "user:%05d", i)
			s.Set(key, fmt.Appendf(nil, `{"id":%d,"round":%d}`, i, round))
		}
	}
	v, _ := s.Get([]byte("user:00042"))
	fmt.Printf("store: %d live items, %.1f MB log, %d cleaning runs\n",
		s.Len(), float64(s.LogBytes())/float64(hemem.MB), s.CleanRuns())
	fmt.Printf("user:00042 = %s\n\n", v)

	// Part 2: the tiered-memory experiment. A 700 GB working set (the
	// paper's largest), 20% hot keys taking 90% of traffic, served under
	// HeMem and under hardware memory mode.
	for _, mk := range []struct {
		name string
		mgr  hemem.Manager
	}{
		{"HeMem", hemem.NewHeMem(hemem.DefaultHeMemConfig())},
		{"Memory Mode", hemem.NewMemoryMode()},
	} {
		m := hemem.NewMachine(hemem.DefaultMachineConfig(), mk.mgr)
		d := hemem.NewKVS(m, hemem.KVSConfig{
			WorkingSet: 700 * hemem.GB, HotKeyFrac: 0.2, HotTrafficFrac: 0.9, Seed: 17,
		})
		m.Warm()
		m.Run(300 * hemem.Second) // converge
		d.ResetScore()
		m.Run(60 * hemem.Second)
		lat := d.Latency()
		fmt.Printf("%-12s %.2f Mops/s   p50=%.0fµs p99=%.0fµs   hot-in-DRAM=%.0f%%\n",
			mk.name, d.Mops(), lat.Quantile(0.5)/1000, lat.Quantile(0.99)/1000,
			d.HotItemPages().Frac(hemem.TierDRAM)*100)
	}
	fmt.Println("\npaper (Table 3, 700 GB): HeMem 1.06 Mops vs MM 0.93; p50 20µs vs 35µs")
}
