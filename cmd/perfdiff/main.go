// Command perfdiff compares two performance-harness reports (the JSON
// written by `hemem-bench -perf`, see internal/bench/perf.go) and flags
// per-case regressions. It is a soft gate: regressions and digest
// mismatches are reported as warnings (GitHub-annotation formatted when
// running in CI) and the exit status is always 0, because shared CI
// runners are too noisy for a hard wall-clock threshold.
//
// Usage:
//
//	perfdiff -baseline BENCH_pr8.json -current bench-ci.json [-threshold 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/tieredmem/hemem/internal/bench"
)

func load(path string) (bench.PerfReport, error) {
	var rep bench.PerfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline report (JSON)")
	current := flag.String("current", "", "freshly measured report (JSON)")
	threshold := flag.Float64("threshold", 0.20, "warn when sim_ns_per_sec drops by more than this fraction")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "perfdiff: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(2)
	}

	warn := func(format string, args ...any) {
		// ::warning:: renders as an annotation on GitHub Actions and as
		// a plain line everywhere else.
		fmt.Printf("::warning ::"+format+"\n", args...)
	}

	baseCases := map[string]bench.PerfResult{}
	for _, c := range base.Cases {
		baseCases[c.ID] = c
	}
	for _, c := range cur.Cases {
		b, ok := baseCases[c.ID]
		if !ok {
			fmt.Printf("%-8s new case (no baseline)\n", c.ID)
			continue
		}
		ratio := c.SimNSPerSec / b.SimNSPerSec
		fmt.Printf("%-8s sim-ns/s %.3g -> %.3g (%.2fx)  allocs %d -> %d\n",
			c.ID, b.SimNSPerSec, c.SimNSPerSec, ratio, b.Allocs, c.Allocs)
		if c.Digest != b.Digest {
			warn("%s: digest changed %s -> %s (simulated results differ from baseline)", c.ID, b.Digest, c.Digest)
		}
		if !c.Deterministic {
			warn("%s: run was not deterministic", c.ID)
		}
		if ratio < 1-*threshold {
			warn("%s: sim_ns_per_sec regressed %.0f%% vs baseline (%.3g -> %.3g)",
				c.ID, (1-ratio)*100, b.SimNSPerSec, c.SimNSPerSec)
		}
		// Resident metadata is deterministic accounting, not wall clock,
		// so growth past the threshold is a real sparse-bookkeeping
		// regression rather than runner noise.
		if b.ResidentBytes > 0 && c.ResidentBytes > 0 {
			if g := float64(c.ResidentBytes) / float64(b.ResidentBytes); g > 1+*threshold {
				warn("%s: resident_bytes grew %.0f%% vs baseline (%d -> %d)",
					c.ID, (g-1)*100, b.ResidentBytes, c.ResidentBytes)
			}
		}
	}

	// The parallel comparisons (sweep worker pool, intra-cell shard pool)
	// are legitimately skipped on a 1-CPU host — but a multi-CPU host that
	// skipped or omitted them measured less than it should have: the
	// speedup and byte-identity evidence is missing from the report.
	if cur.NumCPU > 1 {
		if s := cur.Sweep; s == nil {
			warn("sweep comparison missing from report on a %d-CPU host", cur.NumCPU)
		} else if s.IdenticalOutput == nil {
			warn("sweep parallel leg skipped on a %d-CPU host (%s)", cur.NumCPU, s.Note)
		}
		if s := cur.Shard; s == nil {
			warn("shard scaling missing from report on a %d-CPU host", cur.NumCPU)
		} else if len(s.Legs) == 0 {
			warn("shard scaling legs skipped on a %d-CPU host (%s)", cur.NumCPU, s.Note)
		} else {
			for _, l := range s.Legs {
				if !l.IdenticalOutput {
					warn("shard %s: shards=%d result digest differs from serial", s.Case, l.Shards)
				}
			}
		}
	}
}
