// Command gups runs the GUPS microbenchmark (§5.1) on the simulated tiered
// machine under a selectable memory manager.
//
// Example:
//
//	gups -mgr hemem -ws 512 -hot 16 -threads 16 -dur 60
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/gups"
	"github.com/tieredmem/hemem/internal/machine"
	"github.com/tieredmem/hemem/internal/memmode"
	"github.com/tieredmem/hemem/internal/nimble"
	"github.com/tieredmem/hemem/internal/ptscan"
	"github.com/tieredmem/hemem/internal/sim"
	"github.com/tieredmem/hemem/internal/vm"
	"github.com/tieredmem/hemem/internal/xmem"
)

func main() {
	var (
		mgrName = flag.String("mgr", "hemem", "manager: hemem, mm, nimble, dram, nvm, pt-async, pt-sync")
		ws      = flag.Int64("ws", 512, "working set (GB)")
		hot     = flag.Int64("hot", 16, "hot set (GB); 0 = uniform")
		threads = flag.Int("threads", 16, "update threads")
		warm    = flag.Int64("warm", 60, "warm-up (simulated seconds)")
		dur     = flag.Int64("dur", 30, "measurement (simulated seconds)")
		shift   = flag.Int64("shift", 0, "shift this many GB of hot set after warm-up")
		seed    = flag.Uint64("seed", 17, "layout seed")
		telem   = flag.String("telemetry", "", "write machine telemetry CSV to this file")
	)
	flag.Parse()

	var mgr machine.Manager
	switch *mgrName {
	case "hemem":
		mgr = core.New(core.DefaultConfig())
	case "mm":
		mgr = memmode.New()
	case "nimble":
		mgr = nimble.New()
	case "dram":
		mgr = xmem.DRAMFirst()
	case "nvm":
		mgr = xmem.NVMOnly()
	case "pt-async":
		mgr = ptscan.New(ptscan.HeMemPTAsync())
	case "pt-sync":
		mgr = ptscan.New(ptscan.HeMemPTSync())
	default:
		fmt.Fprintf(os.Stderr, "unknown manager %q\n", *mgrName)
		os.Exit(1)
	}

	m := machine.New(machine.DefaultConfig(), mgr)
	g := gups.New(m, gups.Config{
		Threads: *threads, WorkingSet: *ws * sim.GB, HotSet: *hot * sim.GB, Seed: *seed,
	})
	fmt.Printf("%s on %s\n", g, m)
	m.Warm()
	if *telem != "" {
		m.EnableTelemetry(0)
	}
	m.Run(*warm * sim.Second)
	if *shift > 0 {
		g.ShiftHotSet(*shift*sim.GB, *seed+1)
		fmt.Printf("shifted %d GB of the hot set\n", *shift)
	}
	g.ResetScore()
	m.Run(*dur * sim.Second)

	fmt.Printf("GUPS: %.4f\n", g.Score())
	if hp := g.HotPages(); hp != nil {
		fmt.Printf("hot set in DRAM: %.1f%%\n", hp.Frac(vm.TierDRAM)*100)
	}
	fmt.Printf("NVM writes: %.2f GB, migrations: %d pages (%.2f GB)\n",
		m.NVM.Wear().WriteBytes/float64(sim.GB),
		m.Migrator.Stats().Pages, m.Migrator.Stats().Bytes/float64(sim.GB))

	if *telem != "" {
		f, err := os.Create(*telem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := m.Telemetry().WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry written to %s\n", *telem)
	}
}
