// Command hemem-bench regenerates the tables and figures of the HeMem
// paper's evaluation (§5) on the simulated testbed.
//
// Usage:
//
//	hemem-bench -list              list experiments
//	hemem-bench -exp fig5          run one experiment (quick parameters)
//	hemem-bench -exp all -full     run everything at paper-scale lengths
//	hemem-bench -perf -out BENCH_pr2.json
//	                               measure simulator performance (wall
//	                               clock, sim-ns/sec, allocations) and
//	                               verify seeded determinism
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tieredmem/hemem/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id (or 'all')")
		full = flag.Bool("full", false, "paper-scale run lengths")
		seed = flag.Uint64("seed", 0, "workload layout seed (0 = default)")
		list = flag.Bool("list", false, "list experiments")
		perf = flag.Bool("perf", false, "run the simulator performance harness")
		out  = flag.String("out", "", "with -perf: write the JSON report to this file (default stdout)")
	)
	flag.Parse()

	if *perf {
		jsonOut := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			jsonOut = f
		}
		if err := bench.WritePerf(jsonOut, os.Stderr, bench.Opts{Full: *full, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := bench.Opts{Full: *full, Seed: *seed}
	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		e.Run(os.Stdout, opts)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(e)
}
