// Command hemem-bench regenerates the tables and figures of the HeMem
// paper's evaluation (§5) on the simulated testbed.
//
// Usage:
//
//	hemem-bench -list              list experiments, registered trackers,
//	                               policies, and heat forecasters
//	hemem-bench -exp trackers -tracker damon -policy heat
//	                               run one cell of the tracker × policy
//	                               cross-product
//	hemem-bench -exp fig5          run one experiment (quick parameters)
//	hemem-bench -exp all -full     run everything at paper-scale lengths
//	hemem-bench -exp all -jobs 8   fan experiment cells out over 8 workers
//	                               (output is byte-identical to -jobs 1)
//	hemem-bench -exp all -v        narrate per-cell completion to stderr
//	hemem-bench -perf -out BENCH_pr3.json
//	                               measure simulator performance (wall
//	                               clock, sim-ns/sec, allocations, sweep
//	                               parallel speedup) and verify seeded
//	                               determinism
//	hemem-bench -exp chaos -audit  run with the runtime invariant
//	                               auditor checking conservation
//	                               invariants every quantum
//	hemem-bench -exp tbscale -adaptive
//	                               run on the event-driven adaptive-
//	                               quantum loop (refused for experiments
//	                               whose goldens pin the fixed schedule)
//	hemem-bench -exp tiers -quantum 500us
//	                               override the fixed step quantum
//	hemem-bench -exp fleet -tenants 24 -qos gold
//	                               size the fleet's per-machine tenant
//	                               population and pin its QoS class mix
//	hemem-bench -exp fleet -shards 4
//	                               step groups of 4 machines in lockstep
//	                               on the intra-cell shard pool (output
//	                               is byte-identical to -shards 1)
//	hemem-bench -exp fig5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	                               write pprof profiles of the run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/tieredmem/hemem/internal/bench"
	"github.com/tieredmem/hemem/internal/core"
	"github.com/tieredmem/hemem/internal/machine"
)

// goldenPinned lists the experiments whose output is captured byte for
// byte under the default fixed-quantum schedule — golden files in
// internal/bench/testdata plus the chaos episode log — so -adaptive is
// refused for them (it could only produce a spurious diff).
var goldenPinned = map[string]bool{
	"fig1": true, "fig2": true, "fig3": true, "fig8": true,
	"tab1": true, "tab2": true, "ext-swap": true, "chaos": true,
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (or 'all')")
		full       = flag.Bool("full", false, "paper-scale run lengths")
		seed       = flag.Uint64("seed", 0, "workload layout seed (0 = default)")
		jobs       = flag.Int("jobs", 0, "sweep worker pool size (0 = GOMAXPROCS); any value produces identical output")
		verbose    = flag.Bool("v", false, "narrate per-cell completion to stderr")
		list       = flag.Bool("list", false, "list experiments, trackers, policies, and heat forecasters")
		tracker    = flag.String("tracker", "", "restrict the trackers experiment to one registered tracker")
		policy     = flag.String("policy", "", "restrict the trackers experiment to one registered policy")
		audit      = flag.Bool("audit", false, "run the invariant auditor every quantum on every machine (panics with a diagnostic dump on a violation)")
		quantum    = flag.Duration("quantum", 0, "override the machine step quantum (e.g. 500us, 2ms); 0 keeps the default 1ms")
		adaptive   = flag.Bool("adaptive", false, "run machines on the event-driven adaptive-quantum loop (rejected for golden-pinned experiments)")
		tenants    = flag.Int("tenants", 0, "fleet experiment: tenants per machine (0 = scale default)")
		shards     = flag.Int("shards", 1, "intra-cell worker pool size: fleet cells step machine groups in lockstep, memmode shards its Monte-Carlo (1 = serial; fleet/tbscale/chaos output is byte-identical at every value)")
		qos        = flag.String("qos", "", "fleet experiment: pin every tenant to one QoS class (gold, silver, besteffort)")
		perf       = flag.Bool("perf", false, "run the simulator performance harness")
		out        = flag.String("out", "", "with -perf: write the JSON report to this file (default stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *audit {
		machine.SetAuditAll(true)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if flagSet("quantum") && *quantum <= 0 {
		fmt.Fprintln(os.Stderr, "hemem-bench: -quantum must be a positive duration")
		os.Exit(2)
	}
	if *qos != "" {
		if _, ok := machine.ParseQoS(*qos); !ok {
			fmt.Fprintf(os.Stderr, "hemem-bench: unknown -qos class %q (valid: %s)\n", *qos, strings.Join(machine.QoSNames(), ", "))
			os.Exit(2)
		}
	}
	if *tenants < 0 {
		fmt.Fprintln(os.Stderr, "hemem-bench: -tenants must be non-negative")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "hemem-bench: -shards must be >= 1")
		os.Exit(2)
	}
	opts := bench.Opts{
		Full: *full, Seed: *seed, Jobs: *jobs, Tracker: *tracker, Policy: *policy,
		Quantum: quantum.Nanoseconds(), Adaptive: *adaptive,
		Tenants: *tenants, QoS: *qos, Shards: *shards,
	}
	if *verbose {
		opts.Progress = os.Stderr
	}

	if *adaptive {
		// These experiments' outputs are pinned byte-for-byte to the fixed
		// 1 ms step schedule (golden files and chaos episode logs), and the
		// perf harness sweeps them all; -adaptive would just trip the
		// golden comparison downstream, so refuse it up front.
		if *perf {
			fmt.Fprintln(os.Stderr, "hemem-bench: -adaptive cannot combine with -perf (the harness runs the golden-pinned suite; the tbscale-adaptive case covers the adaptive loop)")
			os.Exit(2)
		}
		if *exp == "all" || goldenPinned[*exp] {
			fmt.Fprintf(os.Stderr, "hemem-bench: -adaptive cannot run experiment %q: its output is pinned to the fixed step schedule (try tiers, trackers, or tbscale)\n", *exp)
			os.Exit(2)
		}
	}

	if *perf {
		jsonOut := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			jsonOut = f
		}
		if err := bench.WritePerf(jsonOut, os.Stderr, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		exps := bench.All()
		width := 0
		for _, e := range exps {
			if len(e.ID) > width {
				width = len(e.ID)
			}
		}
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-*s  %s\n", width, e.ID, e.Title)
		}
		fmt.Printf("\ntrackers (-tracker):         %s\n", strings.Join(core.TrackerNames(), ", "))
		fmt.Printf("policies (-policy):          %s\n", strings.Join(core.PolicyNames(), ", "))
		fmt.Printf("heat forecasters (config):   %s\n", strings.Join(core.HeatForecasterNames(), ", "))
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		e.Run(os.Stdout, opts)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, err := bench.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run(e)
}
